// KVStore: a wait-free key-value map with mixed readers and writers,
// contrasting plain and strongly wait-free replay costs.
//
// The universal construction logs every invocation; without the Section 4.1
// truncation a reader replays the whole history, while with it no replay
// exceeds the number of processes. This example runs the same workload both
// ways and prints the measured replay statistics.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"waitfree"
)

const (
	workers = 6
	opsPer  = 500
	keys    = 16
)

func run(truncate bool) {
	var opts []waitfree.Option
	label := "strongly wait-free (snapshots on)"
	if !truncate {
		opts = append(opts, waitfree.WithoutTruncation())
		label = "plain wait-free (snapshots off)"
	}
	kv := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), workers, opts...)

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < opsPer; i++ {
				k := rng.Int63n(keys)
				switch rng.Intn(3) {
				case 0:
					kv.Invoke(p, waitfree.Op{Kind: "put", Args: []int64{k, rng.Int63n(1000)}})
				case 1:
					kv.Invoke(p, waitfree.Op{Kind: "get", Args: []int64{k}})
				default:
					kv.Invoke(p, waitfree.Op{Kind: "del", Args: []int64{k}})
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ops, mean, max := kv.ReplayStats()
	fmt.Printf("%s:\n", label)
	fmt.Printf("  %d ops in %v; replay per op: mean %.1f entries, max %d entries\n",
		ops, elapsed.Round(time.Millisecond), mean, max)
}

func main() {
	fmt.Printf("%d workers, %d ops each, over a shared wait-free KV store\n\n", workers, opsPer)
	run(true)
	run(false)
	fmt.Printf("\nWith snapshots the worst replay is bounded by the process count (%d);\n", workers)
	fmt.Println("without them it grows with the age of the object — the Section 4.1 contrast.")
}
