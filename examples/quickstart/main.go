// Quickstart: make any sequential object wait-free in a few lines.
//
// A FIFO queue has consensus number 2 (Theorem 9), so no amount of
// cleverness yields a wait-free multi-process queue from reads and writes —
// but the universal construction over any consensus object does it
// mechanically (Theorem 26). Here four producers and four consumers share a
// queue built from compare-and-swap consensus.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"fmt"
	"log"
	"sync"

	"waitfree"
)

func main() {
	const (
		producers = 4
		consumers = 4
		perWorker = 1000
	)
	n := producers + consumers

	// A wait-free FIFO queue: sequential spec + fetch-and-cons from
	// compare-and-swap consensus (the full Theorem 26 reduction).
	fac := waitfree.NewConsensusFetchAndCons(n, func() waitfree.Consensus {
		return waitfree.NewCASConsensus(n)
	})
	q := waitfree.New(waitfree.Queue{}, fac, n)

	var wg sync.WaitGroup
	var got sync.Map
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Invoke(p, waitfree.Op{Kind: "enq", Args: []int64{int64(p*perWorker + i)}})
			}
		}()
	}
	var consumed sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for c := 0; c < consumers; c++ {
		pid := producers + c
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				v := q.Invoke(pid, waitfree.Op{Kind: "deq"})
				if v == waitfree.Empty {
					mu.Lock()
					done := count == producers*perWorker
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					log.Fatalf("item %d dequeued twice — not linearizable!", v)
				}
				mu.Lock()
				count++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	consumed.Wait()
	fmt.Printf("moved %d items through a wait-free queue with %d processes; no item lost or duplicated\n",
		producers*perWorker, n)
}
