// Bank: a multi-account object under concurrent transfers, with failure
// injection.
//
// Atomic multi-account transfer is exactly the kind of operation that
// cannot be built wait-free from registers (it easily solves 2-process
// consensus), and that locks make fragile: a teller that stalls while
// holding the lock freezes the whole bank. The universal construction gives
// atomic transfers where a stalled teller harms nobody — and money is
// conserved either way, which this example verifies.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"waitfree"
)

const (
	tellers  = 6
	accounts = 8
	initial  = 1000
	transfer = 400 // transfers per teller
)

// stallingFAC makes teller 0 nap mid-operation, after its entry is
// published but before it stores a snapshot — the worst case for everyone
// else, who must replay past it.
type stallingFAC struct {
	inner waitfree.FetchAndCons
	count atomic.Int64
}

func (s *stallingFAC) FetchAndCons(pid int, e *waitfree.Entry) *waitfree.Node {
	out := s.inner.FetchAndCons(pid, e)
	if pid == 0 && s.count.Add(1)%50 == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	return out
}

func (s *stallingFAC) Observe() *waitfree.Node { return s.inner.Observe() }

func main() {
	fac := &stallingFAC{inner: waitfree.NewSwapFetchAndCons()}
	bank := waitfree.New(waitfree.Bank{Accounts: accounts}, fac, tellers)

	// Seed every account, then record the expected total.
	for a := 0; a < accounts; a++ {
		bank.Invoke(0, waitfree.Op{Kind: "deposit", Args: []int64{int64(a), initial}})
	}
	want := int64(accounts * initial)

	start := time.Now()
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < tellers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < transfer; i++ {
				from, to := rng.Int63n(accounts), rng.Int63n(accounts)
				amt := 1 + rng.Int63n(300)
				if bank.Invoke(p, waitfree.Op{Kind: "transfer", Args: []int64{from, to, amt}}) == 1 {
					ok.Add(1)
				} else {
					rejected.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := bank.Invoke(0, waitfree.Op{Kind: "total"})
	if total != want {
		log.Fatalf("money not conserved: total %d, want %d", total, want)
	}
	fmt.Printf("%d tellers, %d transfers (%d ok, %d rejected for insufficient funds) in %v\n",
		tellers, tellers*transfer, ok.Load(), rejected.Load(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("final balance across %d accounts: %d (conserved), with teller 0 stalling mid-operation\n",
		accounts, total)
}
