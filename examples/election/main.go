// Election: one-shot leader election with every universal primitive in
// Figure 1-1.
//
// Consensus *is* election (the paper treats it that way): each process
// submits its own candidacy and all processes agree on one participant.
// This example runs the same election over every consensus object at the
// top of the hierarchy — compare-and-swap, augmented queue, memory-to-memory
// move and swap, n-register assignment, and the (2n-2)-process two-phase
// assignment — and checks that each protocol elects a single leader even
// when some candidates crash before voting.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"waitfree"
)

const n = 6

func main() {
	protocols := []struct {
		name string
		mk   func() waitfree.Consensus
	}{
		{"compare-and-swap (Thm 7)", func() waitfree.Consensus { return waitfree.NewCASConsensus(n) }},
		{"augmented queue (Thm 12)", func() waitfree.Consensus { return waitfree.NewAugQueueConsensus(n) }},
		{"memory-to-memory move (Thm 15)", func() waitfree.Consensus { return waitfree.NewMoveConsensus(n) }},
		{"memory-to-memory swap (Thm 16)", func() waitfree.Consensus { return waitfree.NewMemSwapConsensus(n) }},
		{"n-register assignment (Thm 19)", func() waitfree.Consensus { return waitfree.NewAssignConsensus(n) }},
		{"2-phase assignment (Thms 20/21)", func() waitfree.Consensus { return waitfree.NewAssign2PhaseConsensus(n/2 + 1) }},
	}

	rng := rand.New(rand.NewSource(2026))
	for _, proto := range protocols {
		obj := proto.mk()
		// A random non-empty subset of candidates participates; the rest
		// have crashed before the election. Wait-freedom means the
		// participants still elect.
		var candidates []int
		for p := 0; p < n; p++ {
			if rng.Intn(3) > 0 {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			candidates = []int{rng.Intn(n)}
		}

		leaders := make([]int64, n)
		var wg sync.WaitGroup
		for _, p := range candidates {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				leaders[p] = obj.Decide(p, int64(p))
			}()
		}
		wg.Wait()

		leader := leaders[candidates[0]]
		for _, p := range candidates {
			if leaders[p] != leader {
				log.Fatalf("%s: split brain! P%d sees %d, P%d sees %d",
					proto.name, candidates[0], leader, p, leaders[p])
			}
		}
		isCandidate := false
		for _, p := range candidates {
			if int64(p) == leader {
				isCandidate = true
			}
		}
		if !isCandidate {
			log.Fatalf("%s: elected a crashed process %d", proto.name, leader)
		}
		fmt.Printf("%-34s candidates=%v -> leader P%d\n", proto.name, candidates, leader)
	}
	fmt.Println("\nEvery universal primitive elects exactly one live leader.")
}
