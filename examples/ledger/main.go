// Ledger: fetch-and-cons as a primitive, used directly.
//
// Section 4.1's insight is that one operation — atomically prepend an item
// and observe everything that came before — is universal. Used directly it
// is a perfect audit log: every append returns the complete, immutable
// history it extended, so each writer can timestamp, hash or validate its
// entry against a consistent prior state with no locks and no waiting.
//
// Here several auditors append events concurrently; each computes a chained
// checksum over the history it observed. Afterwards the chains are
// validated against the final log: every observed view must be a prefix of
// history (Lemma 24's coherence), so every checksum re-verifies.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"fmt"
	"log"
	"sync"

	"waitfree"
)

const (
	auditors = 5
	perAud   = 200
)

// checksum chains a value onto a running digest (a toy hash).
func checksum(prev int64, pid int, seq int64) int64 {
	return prev*1000003 + int64(pid)*31 + seq
}

func main() {
	ledger := waitfree.NewSwapFetchAndCons()

	type appended struct {
		entry *waitfree.Entry
		view  int   // entries preceding it
		sum   int64 // chained checksum over its view
	}
	records := make([][]appended, auditors)

	var wg sync.WaitGroup
	for a := 0; a < auditors; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perAud; i++ {
				e := &waitfree.Entry{Pid: a, Seq: int64(i)}
				prior := ledger.FetchAndCons(a, e)
				sum := int64(0)
				n := 0
				for node := prior; node != nil; node = node.Rest() {
					sum = checksum(sum, node.Entry.Pid, node.Entry.Seq)
					n++
				}
				records[a] = append(records[a], appended{entry: e, view: n, sum: sum})
			}
		}()
	}
	wg.Wait()

	// Validate every auditor's checksums against the final history: each
	// append's view is exactly the suffix below its own entry, so walking
	// the final list reproduces every recorded checksum.
	head := ledger.(headLister).Head()
	total := 0
	validated := 0
	for node := head; node != nil; node = node.Rest() {
		total++
		sum := int64(0)
		for m := node.Rest(); m != nil; m = m.Rest() {
			sum = checksum(sum, m.Entry.Pid, m.Entry.Seq)
		}
		rec := records[node.Entry.Pid][node.Entry.Seq-1]
		if rec.entry != node.Entry {
			log.Fatalf("entry identity mismatch for P%d#%d", node.Entry.Pid, node.Entry.Seq)
		}
		if rec.sum != sum {
			log.Fatalf("checksum mismatch for P%d#%d: recorded %d, history says %d",
				node.Entry.Pid, node.Entry.Seq, rec.sum, sum)
		}
		validated++
	}
	if total != auditors*perAud {
		log.Fatalf("ledger has %d entries, want %d", total, auditors*perAud)
	}
	fmt.Printf("%d auditors appended %d events; all %d chained checksums re-verified\n",
		auditors, total, validated)
	fmt.Println("every append observed a consistent, immutable prefix of the final history")
}

// headLister is the inspection capability of the swap-based ledger.
type headLister interface {
	Head() *waitfree.Node
}
