// Package linearize records concurrent histories and decides
// linearizability against a sequential specification.
//
// Linearizability (Section 2.3, after Herlihy & Wing) is the paper's
// correctness condition: every concurrent history must be equivalent to
// some sequential history that respects real-time order — each operation
// appears to take effect atomically between its invocation and response.
// The checker is the classic Wing–Gould search: pick a minimal operation
// (one not really-time-preceded by any other pending operation), apply it to
// the sequential specification, match the response, recurse; memoize on the
// (remaining-set, state) pair.
//
//wf:blocking test instrumentation: history recording takes a lock and the checker is an offline search, not a protocol
package linearize

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"waitfree/internal/seqspec"
)

// Event is one completed operation in a concurrent history.
type Event struct {
	Pid    int
	Op     seqspec.Op
	Resp   int64
	Invoke int64 // logical invocation timestamp
	Return int64 // logical response timestamp
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("P%d %s=%d [%d,%d]", e.Pid, e.Op, e.Resp, e.Invoke, e.Return)
}

// Recorder captures a concurrent history with a logical clock. It is safe
// for concurrent use.
type Recorder struct {
	clock  atomic.Int64
	mu     sync.Mutex
	events []Event
}

// Invoke stamps the start of an operation; pass the result to Complete.
func (r *Recorder) Invoke() int64 { return r.clock.Add(1) }

// Complete records a finished operation.
func (r *Recorder) Complete(pid int, op seqspec.Op, resp int64, invokeTS int64) {
	ret := r.clock.Add(1)
	r.mu.Lock()
	r.events = append(r.events, Event{Pid: pid, Op: op, Resp: resp, Invoke: invokeTS, Return: ret})
	r.mu.Unlock()
}

// History returns the recorded events sorted by invocation time.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Event(nil), r.events...)
	sort.Slice(out, func(i, j int) bool { return out[i].Invoke < out[j].Invoke })
	return out
}

// Result reports a linearizability check.
type Result struct {
	OK bool
	// Order, when OK, is one witnessing linearization (indices into the
	// checked history).
	Order []int
	// States is the number of distinct search states visited.
	States int
}

// Check decides whether history h is linearizable with respect to obj,
// starting from obj.Init().
func Check(obj seqspec.Object, h []Event) Result {
	return CheckWithPending(obj, h, nil)
}

// CheckWithPending decides linearizability of a history that also contains
// pending invocations — operations that were invoked but never returned
// (crashed processes). Per the linearizability definition, each pending
// operation either did not take effect or took effect at some point after
// its invocation; its response is unconstrained. The checker may therefore
// insert each pending op anywhere consistent with real time, or drop it.
func CheckWithPending(obj seqspec.Object, h []Event, pending []Event) Result {
	events := append([]Event(nil), h...)
	sort.Slice(events, func(i, j int) bool { return events[i].Invoke < events[j].Invoke })
	nc := len(events)
	events = append(events, pending...)
	c := &checker{
		events:    events,
		completed: nc,
		memo:      make(map[string]bool),
	}
	// Only completed events are obligations; pending ones are optional, so
	// the remaining-set tracks completed events and a separate set tracks
	// which pending events were already used.
	remaining := newBitset(len(events))
	for i := 0; i < nc; i++ {
		remaining.set(i)
	}
	order := make([]int, 0, len(events))
	ok := c.search(remaining, obj.Init(), &order)
	res := Result{OK: ok, States: len(c.memo)}
	if ok {
		res.Order = order
	}
	return res
}

type checker struct {
	events    []Event
	completed int // events[:completed] must linearize; the rest may
	memo      map[string]bool
}

// search tries to linearize all remaining completed events from state,
// optionally interleaving unused pending events. order accumulates the
// witnessing sequence. For pending events the remaining-set bit is reused
// inverted: a set bit above c.completed means "already used".
func (c *checker) search(remaining *bitset, state seqspec.State, order *[]int) bool {
	done := true
	for i := 0; i < c.completed; i++ {
		if remaining.get(i) {
			done = false
			break
		}
	}
	if done {
		return true // leftover pending ops simply did not take effect
	}
	key := remaining.key() + "#" + state.Key()
	if c.memo[key] {
		return false // known dead end
	}

	// An event e may be linearized next iff no remaining *completed* event
	// returned before e was invoked.
	minOtherReturn := func(skip int) int64 {
		min := int64(1) << 62
		for i := 0; i < c.completed; i++ {
			if i == skip || !remaining.get(i) {
				continue
			}
			if c.events[i].Return < min {
				min = c.events[i].Return
			}
		}
		return min
	}
	for i := 0; i < len(c.events); i++ {
		pending := i >= c.completed
		if pending {
			if remaining.get(i) {
				continue // this pending op was already used
			}
		} else if !remaining.get(i) {
			continue
		}
		e := c.events[i]
		if e.Invoke > minOtherReturn(i) {
			continue // some remaining completed op really precedes e
		}
		next := state.Clone()
		resp := next.Apply(e.Op)
		if !pending && resp != e.Resp {
			continue // response would not match (pending responses are free)
		}
		if pending {
			remaining.set(i)
		} else {
			remaining.clear(i)
		}
		*order = append(*order, i)
		if c.search(remaining, next, order) {
			return true
		}
		*order = (*order)[:len(*order)-1]
		if pending {
			remaining.clear(i)
		} else {
			remaining.set(i)
		}
	}
	c.memo[key] = true
	return false
}

// bitset is a small dynamic bitset keyed for memoization.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitset) set(i int)      { b.words[i/64] |= 1 << uint(i%64) }
func (b *bitset) clear(i int)    { b.words[i/64] &^= 1 << uint(i%64) }
func (b *bitset) get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b *bitset) key() string {
	var sb strings.Builder
	for _, w := range b.words {
		sb.WriteString(strconv.FormatUint(w, 16))
		sb.WriteByte('.')
	}
	return sb.String()
}
