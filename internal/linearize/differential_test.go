package linearize

import (
	"math/rand"
	"testing"

	"waitfree/internal/seqspec"
)

// naiveCheck decides linearizability by brute force: try every permutation
// of the events, accept if one respects real-time order and the sequential
// specification. It is exponential and exists only to differentially test
// the memoized checker.
func naiveCheck(obj seqspec.Object, h []Event) bool {
	n := len(h)
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(k int, state seqspec.State) bool
	rec = func(k int, state seqspec.State) bool {
		if k == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Real-time: every unused event must not strictly precede h[i].
			ok := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && h[j].Return < h[i].Invoke {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next := state.Clone()
			if next.Apply(h[i].Op) != h[i].Resp {
				continue
			}
			used[i] = true
			perm[k] = i
			if rec(k+1, next) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, obj.Init())
}

// randomHistory builds a small history with random overlap structure and
// random (frequently wrong) responses, so verdicts split both ways.
func randomHistory(rng *rand.Rand, obj string, events int) []Event {
	var h []Event
	clock := int64(0)
	var openEnds []int64
	for i := 0; i < events; i++ {
		clock++
		inv := clock
		// Random overlap: the return may land before or after other events.
		clock += int64(1 + rng.Intn(4))
		ret := clock
		var op seqspec.Op
		switch obj {
		case "register":
			if rng.Intn(2) == 0 {
				op = seqspec.Op{Kind: "read"}
			} else {
				op = seqspec.Op{Kind: "write", Args: []int64{int64(rng.Intn(3))}}
			}
		case "queue":
			if rng.Intn(2) == 0 {
				op = seqspec.Op{Kind: "enq", Args: []int64{int64(rng.Intn(3))}}
			} else {
				op = seqspec.Op{Kind: "deq"}
			}
		}
		resp := int64(rng.Intn(3))
		if rng.Intn(3) == 0 {
			resp = seqspec.Empty
		}
		if op.Kind == "enq" || op.Kind == "write" {
			resp = 0
		}
		h = append(h, Event{Pid: i % 3, Op: op, Resp: resp, Invoke: inv, Return: ret})
		openEnds = append(openEnds, ret)
	}
	// Shuffle intervals a little: swap some invoke times to create overlap.
	for i := 0; i+1 < len(h); i += 2 {
		if rng.Intn(2) == 0 {
			h[i].Return, h[i+1].Invoke = h[i+1].Invoke+1, h[i].Return-1
			if h[i].Return < h[i].Invoke {
				h[i].Return = h[i].Invoke + 1
			}
			if h[i+1].Return < h[i+1].Invoke {
				h[i+1].Return = h[i+1].Invoke + 1
			}
		}
	}
	return h
}

// TestDifferentialRegister: the memoized checker and the brute-force
// checker agree on thousands of random register histories.
func TestDifferentialRegister(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reg := seqspec.Register{}
	agreeYes, agreeNo := 0, 0
	for trial := 0; trial < 3000; trial++ {
		h := randomHistory(rng, "register", 2+rng.Intn(5))
		fast := Check(reg, h).OK
		slow := naiveCheck(reg, h)
		if fast != slow {
			for _, e := range h {
				t.Logf("  %s", e)
			}
			t.Fatalf("trial %d: Check=%v naive=%v", trial, fast, slow)
		}
		if fast {
			agreeYes++
		} else {
			agreeNo++
		}
	}
	t.Logf("agreed on %d linearizable and %d non-linearizable histories", agreeYes, agreeNo)
	if agreeYes == 0 || agreeNo == 0 {
		t.Error("differential corpus did not cover both verdicts")
	}
}

// TestDifferentialQueue: same for queue histories.
func TestDifferentialQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := seqspec.Queue{}
	agreeYes, agreeNo := 0, 0
	for trial := 0; trial < 3000; trial++ {
		h := randomHistory(rng, "queue", 2+rng.Intn(5))
		fast := Check(q, h).OK
		slow := naiveCheck(q, h)
		if fast != slow {
			for _, e := range h {
				t.Logf("  %s", e)
			}
			t.Fatalf("trial %d: Check=%v naive=%v", trial, fast, slow)
		}
		if fast {
			agreeYes++
		} else {
			agreeNo++
		}
	}
	t.Logf("agreed on %d linearizable and %d non-linearizable histories", agreeYes, agreeNo)
	if agreeYes == 0 || agreeNo == 0 {
		t.Error("differential corpus did not cover both verdicts")
	}
}

// TestWitnessOrderIsValid: when the checker says yes, its witness order
// must replay to the recorded responses and respect real time.
func TestWitnessOrderIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	q := seqspec.Queue{}
	validated := 0
	for trial := 0; trial < 2000; trial++ {
		h := randomHistory(rng, "queue", 2+rng.Intn(5))
		res := Check(q, h)
		if !res.OK {
			continue
		}
		validated++
		// The checker sorts events by invocation internally; reconstruct
		// that view to interpret the witness indices.
		sorted := append([]Event(nil), h...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].Invoke < sorted[i].Invoke {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		state := q.Init()
		for k, idx := range res.Order {
			e := sorted[idx]
			if state.Apply(e.Op) != e.Resp {
				t.Fatalf("trial %d: witness replay diverges at position %d", trial, k)
			}
			for _, later := range res.Order[k+1:] {
				if sorted[later].Return < e.Invoke {
					t.Fatalf("trial %d: witness violates real-time order", trial)
				}
			}
		}
	}
	if validated == 0 {
		t.Error("no linearizable histories to validate witnesses on")
	}
}
