package linearize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waitfree/internal/seqspec"
)

func ev(pid int, kind string, args []int64, resp, inv, ret int64) Event {
	return Event{Pid: pid, Op: seqspec.Op{Kind: kind, Args: args}, Resp: resp, Invoke: inv, Return: ret}
}

func TestRegisterHistories(t *testing.T) {
	reg := seqspec.Register{}
	tests := []struct {
		name string
		h    []Event
		want bool
	}{
		{
			name: "sequential write then read",
			h: []Event{
				ev(0, "write", []int64{5}, 0, 1, 2),
				ev(1, "read", nil, 5, 3, 4),
			},
			want: true,
		},
		{
			name: "read misses completed write",
			h: []Event{
				ev(0, "write", []int64{5}, 0, 1, 2),
				ev(1, "read", nil, 0, 3, 4),
			},
			want: false,
		},
		{
			name: "concurrent read may miss write",
			h: []Event{
				ev(0, "write", []int64{5}, 0, 1, 4),
				ev(1, "read", nil, 0, 2, 3),
			},
			want: true,
		},
		{
			name: "new-old read inversion",
			h: []Event{
				ev(0, "write", []int64{5}, 0, 1, 6),
				ev(1, "read", nil, 5, 2, 3),
				ev(1, "read", nil, 0, 4, 5),
			},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Check(reg, tt.h).OK; got != tt.want {
				t.Errorf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQueueHistories(t *testing.T) {
	q := seqspec.Queue{}
	tests := []struct {
		name string
		h    []Event
		want bool
	}{
		{
			name: "fifo order respected",
			h: []Event{
				ev(0, "enq", []int64{1}, 0, 1, 2),
				ev(0, "enq", []int64{2}, 0, 3, 4),
				ev(1, "deq", nil, 1, 5, 6),
				ev(1, "deq", nil, 2, 7, 8),
			},
			want: true,
		},
		{
			name: "fifo order violated",
			h: []Event{
				ev(0, "enq", []int64{1}, 0, 1, 2),
				ev(0, "enq", []int64{2}, 0, 3, 4),
				ev(1, "deq", nil, 2, 5, 6),
				ev(1, "deq", nil, 1, 7, 8),
			},
			want: false,
		},
		{
			name: "concurrent enqs allow either order",
			h: []Event{
				ev(0, "enq", []int64{1}, 0, 1, 4),
				ev(1, "enq", []int64{2}, 0, 2, 3),
				ev(2, "deq", nil, 2, 5, 6),
				ev(2, "deq", nil, 1, 7, 8),
			},
			want: true,
		},
		{
			name: "deq of never-enqueued value",
			h: []Event{
				ev(0, "enq", []int64{1}, 0, 1, 2),
				ev(1, "deq", nil, 9, 3, 4),
			},
			want: false,
		},
		{
			name: "empty deq before any enq completes",
			h: []Event{
				ev(1, "deq", nil, seqspec.Empty, 1, 2),
				ev(0, "enq", []int64{1}, 0, 3, 4),
			},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Check(q, tt.h).OK; got != tt.want {
				t.Errorf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPendingOperations(t *testing.T) {
	reg := seqspec.Register{}
	// A crashed write(7) explains a read of 7 only if its invocation
	// precedes the read's response.
	completed := []Event{ev(1, "read", nil, 7, 3, 4)}
	crashedEarly := []Event{ev(0, "write", []int64{7}, 0, 1, 0)}
	if !CheckWithPending(reg, completed, crashedEarly).OK {
		t.Error("pending write should explain the read")
	}
	// Without the pending write the read of 7 is impossible.
	if Check(reg, completed).OK {
		t.Error("read of 7 with no write should not linearize")
	}
	// A pending op may also simply not take effect.
	completed2 := []Event{ev(1, "read", nil, 0, 3, 4)}
	if !CheckWithPending(reg, completed2, crashedEarly).OK {
		t.Error("pending write must be droppable")
	}
	// Real time still binds pending ops: a write invoked after the reader
	// returned cannot explain it.
	crashedLate := []Event{ev(0, "write", []int64{7}, 0, 9, 0)}
	if CheckWithPending(reg, completed, crashedLate).OK {
		t.Error("pending write invoked after the read returned must not explain it")
	}
}

// TestSequentialAlwaysLinearizable: any actually-sequential execution of any
// object is linearizable; the recorder timestamps make it so by
// construction. Uses testing/quick over random op streams.
func TestSequentialAlwaysLinearizable(t *testing.T) {
	objects := []seqspec.Object{
		seqspec.Register{}, seqspec.Counter{}, seqspec.Queue{},
		seqspec.Stack{}, seqspec.Set{}, seqspec.PQueue{}, seqspec.KV{},
		seqspec.Bank{Accounts: 4}, seqspec.List{},
	}
	opKinds := map[string][]string{
		"register": {"read", "write"},
		"counter":  {"get", "inc", "add"},
		"queue":    {"enq", "deq", "peek", "len"},
		"stack":    {"push", "pop", "len"},
		"set":      {"insert", "contains", "removeMin", "len"},
		"pqueue":   {"insert", "deleteMin", "min", "len"},
		"kv":       {"put", "get", "del", "len"},
		"bank":     {"deposit", "withdraw", "transfer", "balance", "total"},
		"list":     {"cons", "head", "nth", "len"},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		obj := objects[rng.Intn(len(objects))]
		kinds := opKinds[obj.Name()]
		state := obj.Init()
		var h []Event
		ts := int64(0)
		for i := 0; i < 24; i++ {
			op := seqspec.Op{
				Kind: kinds[rng.Intn(len(kinds))],
				Args: []int64{int64(rng.Intn(5)), int64(rng.Intn(5)), int64(rng.Intn(3))},
			}
			resp := state.Apply(op)
			h = append(h, Event{Pid: 0, Op: op, Resp: resp, Invoke: ts + 1, Return: ts + 2})
			ts += 2
		}
		return Check(obj, h).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
