package registers

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicBasics(t *testing.T) {
	var r Atomic
	if got := r.Load(); got != 0 {
		t.Errorf("zero value = %d, want 0", got)
	}
	r.Store(42)
	if got := r.Load(); got != 42 {
		t.Errorf("after Store(42): %d", got)
	}
}

func TestRMWSemantics(t *testing.T) {
	r := NewRMW(7)
	if got := r.Load(); got != 7 {
		t.Fatalf("init = %d", got)
	}
	if old := r.TestAndSet(); old != 7 {
		t.Errorf("TestAndSet returned %d, want 7", old)
	}
	if got := r.Load(); got != 1 {
		t.Errorf("after TAS: %d, want 1", got)
	}
	if old := r.Swap(5); old != 1 {
		t.Errorf("Swap returned %d, want 1", old)
	}
	if old := r.FetchAndAdd(3); old != 5 {
		t.Errorf("FetchAndAdd returned %d, want 5", old)
	}
	if got := r.Load(); got != 8 {
		t.Errorf("after FAA: %d, want 8", got)
	}
	if old := r.CompareAndSwap(8, 20); old != 8 {
		t.Errorf("successful CAS returned %d, want 8", old)
	}
	if old := r.CompareAndSwap(8, 30); old != 20 {
		t.Errorf("failed CAS returned %d, want 20", old)
	}
	if got := r.Load(); got != 20 {
		t.Errorf("after failed CAS: %d, want 20", got)
	}
}

// TestRMWApplyAtomic: concurrent Apply calls must not lose updates.
func TestRMWApplyAtomic(t *testing.T) {
	r := NewRMW(0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Apply(func(v int64) int64 { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if got := r.Load(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
}

// TestRMWTASWinner: exactly one of many concurrent TestAndSet calls sees 0.
func TestRMWTASWinner(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		r := NewRMW(0)
		const workers = 8
		wins := make(chan int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				if r.TestAndSet() == 0 {
					wins <- w
				}
			}()
		}
		wg.Wait()
		close(wins)
		var winners []int
		for w := range wins {
			winners = append(winners, w)
		}
		if len(winners) != 1 {
			t.Fatalf("trial %d: %d winners %v, want exactly 1", trial, len(winners), winners)
		}
	}
}

// TestSafeRegisterSequential: without overlap, safe registers behave like
// atomic ones (the definition's only guarantee).
func TestSafeRegisterSequential(t *testing.T) {
	r := NewSafeRegister(nil)
	f := func(v int64) bool {
		r.Write(v)
		return r.Read() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSafeRegisterCanTear: with overlapping accesses, a safe register can
// return a value that was never written — which is exactly why the paper's
// Section 3.1 treats safe registers as no stronger than atomic ones. The
// two alternating values differ in both halves, so an interleaved read
// observes a hybrid.
func TestSafeRegisterCanTear(t *testing.T) {
	const (
		a = int64(0x00000001_00000001)
		b = int64(0x00000002_00000002)
	)
	r := NewSafeRegister(runtime.Gosched)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.Write(a)
			} else {
				r.Write(b)
			}
		}
	}()
	torn := false
	for i := 0; i < 2_000_000 && !torn; i++ {
		v := r.Read()
		if v != a && v != b && v != 0 {
			torn = true
		}
	}
	close(stop)
	wg.Wait()
	if !torn {
		t.Skip("no torn read observed (scheduling-dependent); the property is demonstrative")
	}
}

func TestMemoryOperations(t *testing.T) {
	m := NewMemory([]int64{10, 20, 30, 40})
	if m.Size() != 4 {
		t.Fatalf("size = %d", m.Size())
	}
	m.Move(0, 3) // cell 3 := cell 0
	if got := m.Read(3); got != 10 {
		t.Errorf("after Move: cell 3 = %d, want 10", got)
	}
	m.SwapCells(1, 2)
	if m.Read(1) != 30 || m.Read(2) != 20 {
		t.Errorf("after SwapCells: %v", m.Snapshot())
	}
	m.Assign([]int{0, 2}, 99)
	want := []int64{99, 30, 99, 10}
	got := m.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("after Assign: %v, want %v", got, want)
			break
		}
	}
}

// TestMemorySwapConservation: concurrent SwapCells calls permute values but
// never lose or duplicate them (multiset invariant under all interleavings).
func TestMemorySwapConservation(t *testing.T) {
	const cells, workers, per = 8, 6, 500
	init := make([]int64, cells)
	for i := range init {
		init[i] = int64(i)
	}
	m := NewMemory(init)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				m.SwapCells(rng.Intn(cells), rng.Intn(cells))
			}
		}()
	}
	wg.Wait()
	seen := make(map[int64]bool)
	for _, v := range m.Snapshot() {
		if seen[v] {
			t.Fatalf("value %d duplicated: %v", v, m.Snapshot())
		}
		seen[v] = true
	}
	for i := int64(0); i < cells; i++ {
		if !seen[i] {
			t.Fatalf("value %d lost: %v", i, m.Snapshot())
		}
	}
}

// TestMemoryAssignAtomicity: a reader never observes a partially applied
// multi-register assignment (all cells in a set always agree).
func TestMemoryAssignAtomicity(t *testing.T) {
	const cells = 4
	m := NewMemory(make([]int64, cells))
	set := []int{0, 1, 2, 3}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
				m.Assign(set, v)
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		snap := m.Snapshot()
		for j := 1; j < cells; j++ {
			if snap[j] != snap[0] {
				t.Fatalf("torn assignment observed: %v", snap)
			}
		}
	}
	close(stop)
	wg.Wait()
}
