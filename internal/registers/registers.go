// Package registers provides the native shared-memory substrate: the
// register families whose relative power Herlihy's PODC 1988 paper
// classifies.
//
//   - Atomic read/write registers (consensus number 1): sync/atomic.
//   - Read-modify-write registers (consensus number 2 for interfering
//     families such as test-and-set, swap and fetch-and-add; unbounded for
//     compare-and-swap): sync/atomic, with general RMW built from a CAS
//     retry loop. The retry loop is lock-free rather than wait-free, which
//     is faithful: real hardware exposes CAS, and Theorem 7 is about the
//     primitive's power, not about building RMW from CAS.
//   - Safe registers (Section 3.1, after Lamport): reads that overlap a
//     write may return arbitrary values. SafeRegister simulates that
//     adversarially so tests can observe the safe/atomic distinction.
//   - Memory-to-memory move and swap, and atomic m-register assignment
//     (Sections 3.5 and 3.6): hardware primitives Go does not have. Memory
//     simulates them behind an internal gate (see Memory's documentation
//     and DESIGN.md's substitution table).
//
//wf:bounded each gated operation is one simulated primitive step (DESIGN.md substitution table)
package registers

import (
	"sync"
	"sync/atomic"
)

// Atomic is an atomic read/write register holding an int64. The zero value
// holds 0 and is ready to use. Per Theorem 2, a collection of these cannot
// solve two-process wait-free consensus.
type Atomic struct {
	v atomic.Int64
}

// Load returns the register's current value.
//
//wf:waitfree
func (r *Atomic) Load() int64 { return r.v.Load() }

// Store sets the register's value.
//
//wf:waitfree
func (r *Atomic) Store(v int64) { r.v.Store(v) }

// RMW is a register supporting read-modify-write operations (Section 3.2):
// RMW(r, f) atomically replaces the value v with f(v) and returns v. The
// zero value holds 0 and is ready to use.
type RMW struct {
	v atomic.Int64
}

// NewRMW builds an RMW register with the given initial value.
func NewRMW(init int64) *RMW {
	r := &RMW{}
	r.v.Store(init)
	return r
}

// Load returns the current value (the trivial RMW with f = identity).
//
//wf:waitfree
func (r *RMW) Load() int64 { return r.v.Load() }

// Store sets the value.
//
//wf:waitfree
func (r *RMW) Store(v int64) { r.v.Store(v) }

// Apply atomically replaces the value v with f(v) and returns v. f must be
// pure; it may be called multiple times. In the paper's model the whole
// read-modify-write is one primitive instruction (Section 3.2); the Go
// simulation realizes that instruction with a lock-free CAS retry,
// acknowledged on the loop below.
//
//wf:bounded one RMW instruction in the paper's model (Section 3.2, DESIGN.md substitution table)
func (r *RMW) Apply(f func(int64) int64) int64 {
	//wf:lockfree simulation artifact: a retry means another process's RMW landed; the modeled instruction is atomic
	for {
		old := r.v.Load()
		if r.v.CompareAndSwap(old, f(old)) {
			return old
		}
	}
}

// TestAndSet sets the register to 1 and returns the old value.
//
//wf:bounded one test-and-set instruction in the paper's model (Section 3.3): a single Apply
func (r *RMW) TestAndSet() int64 {
	return r.Apply(func(int64) int64 { return 1 })
}

// Swap stores v and returns the old value.
//
//wf:waitfree
func (r *RMW) Swap(v int64) int64 { return r.v.Swap(v) }

// FetchAndAdd adds d and returns the old value.
//
//wf:waitfree
func (r *RMW) FetchAndAdd(d int64) int64 { return r.v.Add(d) - d }

// CompareAndSwap stores new if the current value is old, returning the value
// observed before the operation (the paper's compare-and-swap returns the
// old value rather than a boolean). One instruction in the paper's model
// (Theorem 7); the retry below only re-reads the observed value to return
// it, acknowledged as the simulation's lock-free artifact.
//
//wf:bounded one compare-and-swap instruction in the paper's model (Theorem 7, DESIGN.md substitution table)
func (r *RMW) CompareAndSwap(old, new int64) int64 {
	//wf:lockfree simulation artifact: a retry re-reads the value another process just changed; the modeled instruction is atomic
	for {
		cur := r.v.Load()
		if cur != old {
			return cur
		}
		if r.v.CompareAndSwap(old, new) {
			return old
		}
	}
}

// SafeRegister simulates Lamport's safe register: correct when accesses do
// not overlap, but a read that overlaps a write may return an arbitrary
// value of the register's type. The simulation stores the value in two
// halves written non-atomically with a scheduling point between them, so
// overlapping readers can observe genuinely torn values. Safe registers are
// no stronger than atomic ones (the paper, Section 3.1), and strictly
// harder to program against; tests use this type to exhibit the difference.
type SafeRegister struct {
	lo, hi atomic.Uint32
	yield  func() // scheduling point between half-writes; tests may widen it
}

// NewSafeRegister builds a safe register with the given scheduling point
// between the two half-writes; nil means no explicit yield.
func NewSafeRegister(yield func()) *SafeRegister {
	if yield == nil {
		yield = func() {}
	}
	return &SafeRegister{yield: yield}
}

// Write stores v non-atomically.
//
//wf:waitfree
func (r *SafeRegister) Write(v int64) {
	u := uint64(v)
	r.lo.Store(uint32(u))
	r.yield()
	r.hi.Store(uint32(u >> 32))
}

// Read returns the register's value; overlapping a Write it may return a
// value that was never written.
//
//wf:waitfree
func (r *SafeRegister) Read() int64 {
	lo := r.lo.Load()
	hi := r.hi.Load()
	return int64(uint64(hi)<<32 | uint64(lo))
}

// Memory is a vector of registers supporting, in addition to reads and
// writes, the paper's memory-to-memory operations (Section 3.5) and atomic
// m-register assignment (Section 3.6).
//
// Substitution note (see DESIGN.md): these are *hardware primitives* in the
// paper — single atomic instructions touching more than one memory cell. No
// mainstream ISA or Go's sync/atomic provides them, so Memory makes each
// operation atomic with an internal mutex gate. The gate is an
// implementation detail of the simulated primitive, invisible at the API:
// client protocols remain wait-free in the model where each primitive costs
// one constant-time step, which is exactly the paper's model. Single-cell
// reads and writes also take the gate so that they linearize with the
// multi-cell operations.
type Memory struct {
	mu    sync.Mutex
	cells []int64
	hook  func(pid int, op string)
}

// NewMemory builds a Memory with the given initial cell contents.
func NewMemory(init []int64) *Memory {
	m := &Memory{cells: make([]int64, len(init))}
	copy(m.cells, init)
	return m
}

// SetHook installs a fault-injection callback invoked before every
// operation, outside the atomic gate, with the acting process id and the
// operation name. Hooks may yield the scheduler or panic (simulating a
// crash between primitive steps); they run only on the *Pid variants used
// by the consensus protocols' chaos tests. A nil pid-less operation calls
// the hook with pid -1.
func (m *Memory) SetHook(hook func(pid int, op string)) { m.hook = hook }

func (m *Memory) callHook(pid int, op string) {
	if m.hook != nil {
		m.hook(pid, op)
	}
}

// ReadPid, WritePid, MovePid, SwapCellsPid and AssignPid are the
// hook-instrumented variants; without a hook they behave identically to
// their plain counterparts.

// ReadPid returns cell i on behalf of process pid.
func (m *Memory) ReadPid(pid, i int) int64 {
	m.callHook(pid, "read")
	return m.Read(i)
}

// WritePid sets cell i on behalf of process pid.
func (m *Memory) WritePid(pid, i int, v int64) {
	m.callHook(pid, "write")
	m.Write(i, v)
}

// MovePid atomically copies src into dst on behalf of process pid.
func (m *Memory) MovePid(pid, src, dst int) {
	m.callHook(pid, "move")
	m.Move(src, dst)
}

// SwapCellsPid atomically exchanges cells on behalf of process pid.
func (m *Memory) SwapCellsPid(pid, i, j int) {
	m.callHook(pid, "swap")
	m.SwapCells(i, j)
}

// AssignPid atomically writes v to idxs on behalf of process pid.
func (m *Memory) AssignPid(pid int, idxs []int, v int64) {
	m.callHook(pid, "assign")
	m.Assign(idxs, v)
}

// Size returns the number of cells.
func (m *Memory) Size() int { return len(m.cells) }

// Read returns cell i.
func (m *Memory) Read(i int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cells[i]
}

// Write sets cell i to v.
func (m *Memory) Write(i int, v int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[i] = v
}

// Move atomically copies cell src into cell dst (Theorem 15's primitive).
func (m *Memory) Move(src, dst int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[dst] = m.cells[src]
}

// SwapCells atomically exchanges cells i and j (Theorem 16's primitive;
// note this is memory-to-memory swap, not the register-to-processor swap of
// Section 3.2).
func (m *Memory) SwapCells(i, j int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[i], m.cells[j] = m.cells[j], m.cells[i]
}

// Assign atomically writes v to every cell in idxs (Section 3.6's
// m-register assignment, m = len(idxs)).
func (m *Memory) Assign(idxs []int, v int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, i := range idxs {
		m.cells[i] = v
	}
}

// Snapshot returns a copy of all cells, atomically. The paper's protocols
// never need it, but tests use it to state invariants.
func (m *Memory) Snapshot() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.cells))
	copy(out, m.cells)
	return out
}
