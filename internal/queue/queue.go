// Package queue provides the native typed-object substrate of Sections 3.3
// and 3.4: FIFO queues, the augmented queue with peek, stacks, priority
// queues, sets and lists, plus Lamport's wait-free single-enqueuer/
// single-dequeuer queue built from atomic registers alone.
//
// Except for Lamport's queue, these objects are linearizable substrate
// primitives in the sense of the paper — the paper *assumes* their
// existence and asks what they can implement. Natively they are realized
// with an internal mutex gate, the same substitution as registers.Memory:
// each operation is one atomic primitive step.
//
//wf:bounded each gated operation is one simulated primitive step of the paper's substrate (DESIGN.md substitution table)
package queue

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Empty is returned by Deq/Pop/Peek on an empty container, matching the
// paper's requirement that operations be total (Section 2.2).
const Empty int64 = -1 << 62

// FIFO is a linearizable FIFO queue with total operations.
type FIFO struct {
	mu    sync.Mutex
	items []int64
	head  int
}

// NewFIFO builds a queue initialized with the given items, head first.
func NewFIFO(items ...int64) *FIFO {
	return &FIFO{items: append([]int64(nil), items...)}
}

// Enq appends v to the tail.
func (q *FIFO) Enq(v int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Deq removes and returns the head item, or Empty if the queue is empty.
func (q *FIFO) Deq() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return Empty
	}
	v := q.items[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]int64(nil), q.items[q.head:]...)
		q.head = 0
	}
	return v
}

// Len returns the current number of items.
func (q *FIFO) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Augmented is the augmented queue of Section 3.4: a FIFO queue with peek.
// Adding peek lifts the consensus number from 2 to infinity (Theorem 12),
// and by Corollary 14 an Augmented queue cannot be wait-free implemented
// from regular queues.
type Augmented struct {
	FIFO
}

// NewAugmented builds an augmented queue initialized with the given items.
func NewAugmented(items ...int64) *Augmented {
	return &Augmented{FIFO: FIFO{items: append([]int64(nil), items...)}}
}

// Peek returns the head item without removing it, or Empty.
func (q *Augmented) Peek() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return Empty
	}
	return q.items[q.head]
}

// Stack is a linearizable LIFO stack with total operations.
type Stack struct {
	mu    sync.Mutex
	items []int64
}

// Push appends v to the top.
func (s *Stack) Push(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
}

// Pop removes and returns the top item, or Empty.
func (s *Stack) Pop() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return Empty
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v
}

// Len returns the current number of items.
func (s *Stack) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// PriorityQueue is a linearizable min-priority queue with total operations.
type PriorityQueue struct {
	mu sync.Mutex
	h  int64Heap
}

// Insert adds v.
func (p *PriorityQueue) Insert(v int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	heap.Push(&p.h, v)
}

// DeleteMin removes and returns the smallest item, or Empty.
func (p *PriorityQueue) DeleteMin() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return Empty
	}
	return heap.Pop(&p.h).(int64)
}

// Len returns the current number of items.
func (p *PriorityQueue) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.h)
}

type int64Heap []int64

func (h int64Heap) Len() int            { return len(h) }
func (h int64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Set is a linearizable set of int64 with total operations.
type Set struct {
	mu sync.Mutex
	m  map[int64]bool
}

// NewSet builds an empty set.
func NewSet() *Set { return &Set{m: make(map[int64]bool)} }

// Insert adds v, reporting whether it was absent.
func (s *Set) Insert(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[v] {
		return false
	}
	s.m[v] = true
	return true
}

// Remove deletes v, reporting whether it was present.
func (s *Set) Remove(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[v] {
		return false
	}
	delete(s.m, v)
	return true
}

// Contains reports membership.
func (s *Set) Contains(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[v]
}

// Len returns the current cardinality.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Lamport is Lamport's wait-free queue for one enqueuer and one dequeuer,
// built from atomic registers alone (Section 3.3, after [15]). Theorem 2
// implies this cannot be extended to concurrent dequeuers without stronger
// primitives — which is exactly what makes it interesting as a boundary
// case: at most one process on each side, and wait-freedom holds with just
// reads and writes.
type Lamport struct {
	head atomic.Int64 // written only by the dequeuer
	tail atomic.Int64 // written only by the enqueuer
	buf  []atomic.Int64
}

// NewLamport builds a single-enqueuer/single-dequeuer queue with the given
// capacity.
func NewLamport(capacity int) *Lamport {
	return &Lamport{buf: make([]atomic.Int64, capacity)}
}

// Enq appends v, reporting false if the queue is full. Only one goroutine
// may call Enq.
//
//wf:waitfree
func (q *Lamport) Enq(v int64) bool {
	t := q.tail.Load()
	if t-q.head.Load() == int64(len(q.buf)) {
		return false
	}
	q.buf[t%int64(len(q.buf))].Store(v)
	q.tail.Store(t + 1) // single writer: plain increment is safe
	return true
}

// Deq removes and returns the head item, or Empty if the queue is empty.
// Only one goroutine may call Deq.
//
//wf:waitfree
func (q *Lamport) Deq() int64 {
	h := q.head.Load()
	if h == q.tail.Load() {
		return Empty
	}
	v := q.buf[h%int64(len(q.buf))].Load()
	q.head.Store(h + 1)
	return v
}

// Len returns the current number of items (approximate under concurrency).
//
//wf:waitfree
func (q *Lamport) Len() int {
	return int(q.tail.Load() - q.head.Load())
}
