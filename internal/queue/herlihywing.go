package queue

import (
	"runtime"
	"sync/atomic"
)

// HerlihyWing is the FIFO queue of Section 3.4's discussion (Herlihy &
// Wing [10]): enq and deq built from read, fetch-and-add and swap, allowing
// arbitrarily many concurrent enqueuers and dequeuers without mutual
// exclusion. As the paper notes, it is *not* wait-free: a deq applied to an
// empty queue busy-waits until an item arrives — and by Corollary 13 it
// cannot be extended with a wait-free peek without strictly stronger
// primitives, because the augmented queue solves n-process consensus while
// read, fetch-and-add and swap stop at two.
//
//	enq(x):  i := FetchAndAdd(back, 1); items[i] := x
//	deq():   loop { n := back; for i in 0..n-1 { x := Swap(items[i], empty);
//	         if x != empty { return x } } }
type HerlihyWing struct {
	back  atomic.Int64
	items []atomic.Int64
}

// hwEmpty marks an unoccupied slot.
const hwEmpty int64 = -1 << 62

// NewHerlihyWing builds a queue with capacity slots. The original is
// unbounded; a fixed backing array stands in for infinite memory, and Enq
// reports failure when it is exhausted (slots are never reused).
func NewHerlihyWing(capacity int) *HerlihyWing {
	q := &HerlihyWing{items: make([]atomic.Int64, capacity)}
	for i := range q.items {
		q.items[i].Store(hwEmpty)
	}
	return q
}

// Enq appends v (which must not equal the reserved empty marker),
// returning false if the backing array is exhausted. Enq is wait-free: one
// fetch-and-add and one write.
//
//wf:waitfree
func (q *HerlihyWing) Enq(v int64) bool {
	i := q.back.Add(1) - 1
	if i >= int64(len(q.items)) {
		return false
	}
	q.items[i].Store(v)
	return true
}

// Deq removes and returns the earliest available item. It busy-waits while
// the queue is empty — the non-wait-free operation the paper calls out.
// No annotation bound can fix this: a wait-free deq on an empty queue is
// impossible in this form (Corollary 13 bars a wait-free augmented queue
// over read, fetch-and-add and swap, and an empty deq must wait for an
// enqueuer by FIFO semantics). Callers that need wait-freedom use TryDeq.
//
//wf:blocking busy-waits for an enqueuer while empty (Section 3.4); wait-free callers use TryDeq
func (q *HerlihyWing) Deq() int64 {
	for {
		if v, ok := q.TryDeq(); ok {
			return v
		}
		runtime.Gosched()
	}
}

// TryDeq performs one scan of the occupied range, removing the first item
// it can capture; ok is false if the scan found the queue empty. Each scan
// is bounded, so TryDeq is wait-free even though Deq is not.
//
//wf:waitfree
func (q *HerlihyWing) TryDeq() (v int64, ok bool) {
	n := q.back.Load()
	if n > int64(len(q.items)) {
		n = int64(len(q.items))
	}
	for i := int64(0); i < n; i++ {
		if x := q.items[i].Swap(hwEmpty); x != hwEmpty {
			return x, true
		}
	}
	return 0, false
}
