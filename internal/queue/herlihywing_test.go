package queue

import (
	"sync"
	"testing"
	"time"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func TestHerlihyWingSequential(t *testing.T) {
	q := NewHerlihyWing(16)
	if _, ok := q.TryDeq(); ok {
		t.Fatal("empty TryDeq succeeded")
	}
	for i := int64(0); i < 5; i++ {
		if !q.Enq(i) {
			t.Fatalf("enq %d failed", i)
		}
	}
	for i := int64(0); i < 5; i++ {
		if got := q.Deq(); got != i {
			t.Fatalf("deq = %d, want %d (FIFO)", got, i)
		}
	}
}

func TestHerlihyWingCapacity(t *testing.T) {
	q := NewHerlihyWing(2)
	if !q.Enq(1) || !q.Enq(2) {
		t.Fatal("enq within capacity failed")
	}
	if q.Enq(3) {
		t.Fatal("enq beyond capacity succeeded")
	}
}

// TestHerlihyWingConservation: concurrent enqueuers and dequeuers neither
// lose nor duplicate items.
func TestHerlihyWingConservation(t *testing.T) {
	const producers, consumers, per = 4, 4, 300
	q := NewHerlihyWing(producers*per + 1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !q.Enq(int64(p*per + i)) {
					t.Error("enq failed below capacity")
					return
				}
			}
		}()
	}
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var cg sync.WaitGroup
	var taken int
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				mu.Lock()
				if taken == producers*per {
					mu.Unlock()
					return
				}
				mu.Unlock()
				v, ok := q.TryDeq()
				if !ok {
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("item %d dequeued twice", v)
				}
				seen[v] = true
				taken++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("dequeued %d items, want %d", len(seen), producers*per)
	}
}

// TestHerlihyWingLinearizable: recorded concurrent histories linearize
// against the sequential queue spec (the object of Herlihy & Wing's own
// linearizability case study).
func TestHerlihyWingLinearizable(t *testing.T) {
	const n = 4
	for trial := 0; trial < 20; trial++ {
		q := NewHerlihyWing(256)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if (p+i)%2 == 0 {
						op := seqspec.Op{Kind: "enq", Args: []int64{int64(p*100 + i)}}
						ts := rec.Invoke()
						q.Enq(int64(p*100 + i))
						rec.Complete(p, op, 0, ts)
					} else {
						// Record only successful removals: the HW queue's
						// "empty" answer is NOT linearizable (a scan can miss
						// items that were never absent simultaneously), which
						// is exactly why the paper's deq busy-waits instead
						// of returning empty. An unrecorded failed scan
						// cannot invalidate the recorded history.
						op := seqspec.Op{Kind: "deq"}
						ts := rec.Invoke()
						if v, ok := q.TryDeq(); ok {
							rec.Complete(p, op, v, ts)
						}
					}
				}
			}()
		}
		wg.Wait()
		if res := linearize.Check(seqspec.Queue{}, rec.History()); !res.OK {
			for _, e := range rec.History() {
				t.Logf("  %s", e)
			}
			t.Fatalf("trial %d: history not linearizable", trial)
		}
	}
}

// TestHerlihyWingDeqBlocksOnEmpty documents the paper's §3.4 remark: deq on
// an empty queue busy-waits (not wait-free) until an enq arrives.
func TestHerlihyWingDeqBlocksOnEmpty(t *testing.T) {
	q := NewHerlihyWing(4)
	done := make(chan int64, 1)
	go func() { done <- q.Deq() }()
	select {
	case v := <-done:
		t.Fatalf("deq returned %d from an empty queue", v)
	case <-time.After(20 * time.Millisecond):
		// busy-waiting, as the paper says
	}
	q.Enq(77)
	select {
	case v := <-done:
		if v != 77 {
			t.Fatalf("deq = %d, want 77", v)
		}
	case <-time.After(time.Second):
		t.Fatal("deq still blocked after enq")
	}
}
