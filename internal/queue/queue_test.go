package queue

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	if got := q.Deq(); got != Empty {
		t.Fatalf("empty deq = %d, want Empty", got)
	}
	for i := int64(0); i < 10; i++ {
		q.Enq(i)
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := int64(0); i < 10; i++ {
		if got := q.Deq(); got != i {
			t.Fatalf("deq = %d, want %d", got, i)
		}
	}
	if got := q.Deq(); got != Empty {
		t.Fatalf("drained deq = %d, want Empty", got)
	}
}

func TestFIFOInitialItems(t *testing.T) {
	q := NewFIFO(7, 8, 9)
	if got := q.Deq(); got != 7 {
		t.Errorf("deq = %d, want 7 (head first)", got)
	}
}

// TestFIFOCompaction exercises the internal head-compaction path.
func TestFIFOCompaction(t *testing.T) {
	q := NewFIFO()
	const total = 10000
	for i := int64(0); i < total; i++ {
		q.Enq(i)
	}
	for i := int64(0); i < total; i++ {
		if got := q.Deq(); got != i {
			t.Fatalf("deq %d = %d", i, got)
		}
	}
	q.Enq(1)
	if got := q.Deq(); got != 1 {
		t.Fatalf("post-compaction deq = %d", got)
	}
}

func TestAugmentedPeek(t *testing.T) {
	q := NewAugmented()
	if got := q.Peek(); got != Empty {
		t.Fatalf("empty peek = %d", got)
	}
	q.Enq(5)
	q.Enq(6)
	if got := q.Peek(); got != 5 {
		t.Fatalf("peek = %d, want 5", got)
	}
	if got := q.Peek(); got != 5 {
		t.Fatalf("peek must not consume; second peek = %d", got)
	}
	if got := q.Deq(); got != 5 {
		t.Fatalf("deq = %d", got)
	}
	if got := q.Peek(); got != 6 {
		t.Fatalf("peek after deq = %d", got)
	}
}

func TestStackLIFO(t *testing.T) {
	var s Stack
	if got := s.Pop(); got != Empty {
		t.Fatalf("empty pop = %d", got)
	}
	for i := int64(0); i < 5; i++ {
		s.Push(i)
	}
	for i := int64(4); i >= 0; i-- {
		if got := s.Pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	var p PriorityQueue
	f := func(vals []int16) bool {
		for _, v := range vals {
			p.Insert(int64(v))
		}
		prev := int64(-1 << 62)
		for range vals {
			v := p.DeleteMin()
			if v < prev {
				return false
			}
			prev = v
		}
		return p.DeleteMin() == Empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet()
	if !s.Insert(3) || s.Insert(3) {
		t.Error("insert should report presence correctly")
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Error("contains wrong")
	}
	if !s.Remove(3) || s.Remove(3) {
		t.Error("remove should report presence correctly")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

// TestConcurrentFIFOConservation: every enqueued item is dequeued exactly
// once across concurrent producers and consumers.
func TestConcurrentFIFOConservation(t *testing.T) {
	q := NewFIFO()
	const producers, consumers, per = 4, 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enq(int64(p*per + i))
			}
		}()
	}
	got := make(chan int64, producers*per)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v := q.Deq()
				if v != Empty {
					got <- v
					continue
				}
				select {
				case <-done:
					// drain once more to be sure
					if v := q.Deq(); v != Empty {
						got <- v
						continue
					}
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	close(got)
	seen := make(map[int64]bool)
	for v := range got {
		if seen[v] {
			t.Fatalf("item %d dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("dequeued %d distinct items, want %d", len(seen), producers*per)
	}
}

// TestLamportQueue: Lamport's single-enqueuer/single-dequeuer wait-free
// queue preserves FIFO order and loses nothing, with only atomic registers
// underneath.
func TestLamportQueue(t *testing.T) {
	q := NewLamport(64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single dequeuer
		defer wg.Done()
		expect := int64(0)
		for expect < total {
			v := q.Deq()
			if v == Empty {
				runtime.Gosched()
				continue
			}
			if v != expect {
				t.Errorf("deq = %d, want %d (FIFO violated)", v, expect)
				return
			}
			expect++
		}
	}()
	for i := int64(0); i < total; i++ { // the single enqueuer
		for !q.Enq(i) {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

func TestLamportQueueFull(t *testing.T) {
	q := NewLamport(2)
	if !q.Enq(1) || !q.Enq(2) {
		t.Fatal("first two enqueues should fit")
	}
	if q.Enq(3) {
		t.Fatal("third enqueue should report full")
	}
	if q.Deq() != 1 {
		t.Fatal("deq order")
	}
	if !q.Enq(3) {
		t.Fatal("space should be available again")
	}
}

func TestLamportQueueRandomized(t *testing.T) {
	q := NewLamport(8)
	rng := rand.New(rand.NewSource(1))
	var sent, received []int64
	var wg sync.WaitGroup
	const total = 5000
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(received) < total {
			v := q.Deq()
			if v == Empty {
				runtime.Gosched()
				continue
			}
			received = append(received, v)
		}
	}()
	for i := 0; i < total; i++ {
		v := rng.Int63n(1000)
		for !q.Enq(v) {
			runtime.Gosched()
		}
		sent = append(sent, v)
	}
	wg.Wait()
	for i := range sent {
		if sent[i] != received[i] {
			t.Fatalf("position %d: sent %d received %d", i, sent[i], received[i])
		}
	}
}
