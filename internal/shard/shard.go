// Package shard is a sharded front end over the universal construction: a
// router that hashes partition keys across S independent Universal
// instances, each with its own fetch-and-cons.
//
// The paper's construction serializes every operation through one shared
// log, so throughput is bounded by one cons per operation no matter how
// many processes run. For key-partitionable workloads that bound is
// needless: operations on different keys never observe each other's
// effects, so each partition can run its own universal object and its own
// log. Sharding changes only the constant factors — each shard is still the
// paper's wait-free construction, and per-key linearizability is inherited
// from it.
//
// The consistency contract is the standard sharding trade-off: operations
// that address a single key are linearizable (they execute on exactly one
// Universal), while cross-shard operations (len-style aggregates) read each
// shard at a different instant and return a sum that no single moment may
// have exhibited.
//
// Sharding and batching compose: sharding splits contention across logs,
// and helping-based batching (core.WithBatching, default-on for the
// waitfree.NewShardedKV facade) absorbs whatever contention remains within
// each shard — concurrent writers that hash to one shard are served by a
// single executor's replay pass instead of replaying one by one.
//
//wf:waitfree
package shard

import (
	"fmt"

	"waitfree/internal/core"
	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

// Router classifies an operation for routing: keyed operations return their
// partition key (the router hashes it to a shard), cross-shard operations
// return keyed=false (the operation runs on every shard and the responses
// are summed).
//
// Panic contract: a router must panic on an operation kind it does not
// recognize rather than guess a route. Routing an unknown op to one shard
// silently partitions state that the spec may treat as global; failing loudly
// at the front door is the only safe default. KVRouter follows this contract
// with the message "shard: kv: unknown op <kind>".
type Router func(op seqspec.Op) (key int64, keyed bool)

// KVRouter routes the seqspec.KV operation set: put/get/del by their key
// argument, len across all shards.
func KVRouter(op seqspec.Op) (int64, bool) {
	switch op.Kind {
	case "put", "get", "del":
		return op.Arg(0), true
	case "len":
		return 0, false
	}
	panic("shard: kv: unknown op " + op.Kind)
}

// Sharded fans operations across independent Universal instances.
type Sharded struct {
	//wf:len S
	shards []*core.Universal
	// route classifies one operation: a hash and a branch, no iteration.
	//
	//wf:steps 1
	route Router

	// shardOps[i] counts operations routed to shard i; crossOps counts
	// cross-shard fan-outs. Nil entries (the default) are the no-op mode.
	//
	//wf:len S
	shardOps []*wfstats.Counter
	crossOps *wfstats.Counter
}

// New builds a sharded front end: shards independent Universal instances
// over seq, each for procs processes and with its own fetch-and-cons from
// mk. Options apply to every shard.
func New(seq seqspec.Object, route Router, shards, procs int, mk func() core.FetchAndCons, opts ...core.Option) *Sharded {
	if shards < 1 {
		panic("shard: need at least one shard")
	}
	s := &Sharded{shards: make([]*core.Universal, shards), route: route,
		shardOps: make([]*wfstats.Counter, shards)}
	for i := range s.shards {
		s.shards[i] = core.NewUniversal(seq, mk(), procs, opts...)
	}
	return s
}

// Instrument records the front end's routing metrics into reg: shard.ops.<i>
// (operations routed to shard i), shard.cross_ops (cross-shard fan-outs) and
// shard.imbalance_pct, a derived gauge computed at snapshot time as the most
// loaded shard's share of the mean, in percent (100 = perfectly balanced).
// Call before the front end is used concurrently; nil reg leaves the no-op
// mode in place. The shards' own universal.* metrics stay in their private
// registries — pass core.WithMetrics(reg) among New's options to aggregate
// those into reg as well.
func (s *Sharded) Instrument(reg *wfstats.Registry) {
	if reg == nil {
		return
	}
	for i := range s.shardOps {
		s.shardOps[i] = reg.Counter(fmt.Sprintf("shard.ops.%d", i))
	}
	s.crossOps = reg.Counter("shard.cross_ops")
	ops := append([]*wfstats.Counter(nil), s.shardOps...)
	reg.GaugeFunc("shard.imbalance_pct", func() int64 {
		// Accumulate and divide in float64: the old int64 product
		// max·100·S overflowed once the hottest shard passed ~2^63/(100·S)
		// operations — about 10^15 ops at S=64, months of sustained load on
		// a long-lived server — and even the plain sum across shards can
		// pass 2^63 before any single counter does. The quotient itself is
		// tiny (<= 100·S), so float64's 53-bit mantissa is ample.
		var max, total float64
		//wf:bounded [S] one load per shard stripe: ops is a fixed-length copy of the S per-shard counters
		for _, c := range ops {
			v := float64(c.Load())
			total += v
			if v > max {
				max = v
			}
		}
		if total == 0 {
			return 0
		}
		return int64(max / total * 100 * float64(len(ops)))
	})
}

// NewKV builds a sharded key-value map (seqspec.KV semantics per key).
func NewKV(shards, procs int, mk func() core.FetchAndCons, opts ...core.Option) *Sharded {
	return New(seqspec.KV{}, KVRouter, shards, procs, mk, opts...)
}

// Invoke executes op on behalf of process pid: on the key's shard for keyed
// operations, summed across every shard otherwise. The per-pid sequential
// contract of Universal.Invoke applies across the whole front end.
func (s *Sharded) Invoke(pid int, op seqspec.Op) int64 {
	if key, keyed := s.route(op); keyed {
		i := s.shardOf(key)
		s.shardOps[i].Inc()
		return s.shards[i].Invoke(pid, op)
	}
	s.crossOps.Inc()
	var total int64
	for _, u := range s.shards {
		total += u.Invoke(pid, op)
	}
	return total
}

// InvokeBatch executes ops — every one already routed to shard sh by the
// caller (the server's per-shard applier partitions work with ShardOf) —
// as one announced wave on that shard: one replay pass settles the whole
// batch, one snapshot covers it (see core.Universal.InvokeBatch).
// Responses land in out[i]. The per-pid sequential contract applies; the
// caller is responsible for sh being each op's ShardOf route — this method
// deliberately skips per-op routing, which is the point of batching.
func (s *Sharded) InvokeBatch(sh, pid int, ops []seqspec.Op, out []int64) {
	s.shardOps[sh].Add(int64(len(ops)))
	s.shards[sh].InvokeBatch(pid, ops, out)
}

// Detach releases pid's log-GC pin on every shard (core.Universal.Detach):
// call it when a leased pid's client departs, so a register frozen at the
// client's last operation stops pinning any shard's low-water mark. Like
// Invoke, it must be called from pid's thread of control with no operation
// in flight; the pid re-arms shard by shard on its next invokes. A no-op
// when log GC is off.
func (s *Sharded) Detach(pid int) {
	for _, u := range s.shards {
		u.Detach(pid)
	}
}

// ShardOf reports which shard a partition key routes to — the same hash
// Invoke uses. Exported for front ends that partition work per shard (the
// server's persistence appliers) and for tests.
func (s *Sharded) ShardOf(key int64) int { return s.shardOf(key) }

// Handle returns pid's front end bound to the whole sharded object.
func (s *Sharded) Handle(pid int) *Handle { return &Handle{s: s, pid: pid} }

// Handle is a per-process front end of a Sharded object.
type Handle struct {
	s   *Sharded
	pid int
}

// Invoke executes op on behalf of the handle's process.
func (h *Handle) Invoke(op seqspec.Op) int64 { return h.s.Invoke(h.pid, op) }

// Detach releases the handle's log-GC pin on every shard; see
// Sharded.Detach.
func (h *Handle) Detach() { h.s.Detach(h.pid) }

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard exposes shard i for tests and inspection.
func (s *Sharded) Shard(i int) *core.Universal { return s.shards[i] }

// FastReads sums the read-fast-path counters across shards.
func (s *Sharded) FastReads() int64 {
	var total int64
	for _, u := range s.shards {
		total += u.FastReads()
	}
	return total
}

// Helped sums the helped-write counters across shards: batched write
// operations that returned a response published by a concurrent executor
// (see core.WithBatching). Zero when batching is off.
func (s *Sharded) Helped() int64 {
	var total int64
	for _, u := range s.shards {
		total += u.Helped()
	}
	return total
}

// BatchStats aggregates batch-execution statistics across shards: total
// executor passes, weighted mean batch size, and the largest per-shard max.
func (s *Sharded) BatchStats() (batches int64, mean float64, max int64) {
	var settled float64
	for _, u := range s.shards {
		b, m, mx := u.BatchStats()
		batches += b
		settled += m * float64(b)
		if mx > max {
			max = mx
		}
	}
	if batches > 0 {
		mean = settled / float64(batches)
	}
	return batches, mean, max
}

// Retired sums the log-GC retirement counts across shards: how many decided
// log entries the low-water-mark protocol (core.WithLogGC) has severed in
// total. Zero when GC is off.
func (s *Sharded) Retired() int64 {
	var total int64
	for _, u := range s.shards {
		total += u.Retired()
	}
	return total
}

// Anchors reports each shard's applied low-water mark (core's
// Universal.Anchor): the log index of its anchor node, 0 if that shard has
// retired nothing. Marks advance independently — each shard's mark is the
// minimum over its own processes' observed-prefix registers.
func (s *Sharded) Anchors() []int64 {
	marks := make([]int64, len(s.shards))
	for i, u := range s.shards {
		marks[i] = u.Anchor()
	}
	return marks
}

// ReplayStats aggregates replay statistics across shards: total replays,
// weighted mean replay length, and the largest per-shard max.
func (s *Sharded) ReplayStats() (ops int64, mean float64, max int64) {
	var cells float64
	for _, u := range s.shards {
		o, m, mx := u.ReplayStats()
		ops += o
		cells += m * float64(o)
		if mx > max {
			max = mx
		}
	}
	if ops > 0 {
		mean = cells / float64(ops)
	}
	return ops, mean, max
}

// shardOf hashes a partition key to a shard index. Keys are arbitrary
// int64s (often small and sequential), so a finalizing mixer spreads them
// before the modulus.
func (s *Sharded) shardOf(key int64) int {
	return int(mix64(uint64(key)) % uint64(len(s.shards)))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
