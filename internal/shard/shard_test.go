package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

func mkSwap() core.FetchAndCons { return core.NewSwapFAC() }

// TestShardedKVSequential: the sharded map behaves as one KV map under a
// sequential workload, for several shard counts.
func TestShardedKVSequential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := NewKV(shards, 1, mkSwap)
			ref := seqspec.KV{}.Init()
			rng := rand.New(rand.NewSource(int64(shards)))
			for i := 0; i < 500; i++ {
				var op seqspec.Op
				switch rng.Intn(4) {
				case 0:
					op = seqspec.Op{Kind: "put", Args: []int64{rng.Int63n(32), rng.Int63n(100)}}
				case 1:
					op = seqspec.Op{Kind: "get", Args: []int64{rng.Int63n(32)}}
				case 2:
					op = seqspec.Op{Kind: "del", Args: []int64{rng.Int63n(32)}}
				default:
					op = seqspec.Op{Kind: "len"}
				}
				if got, want := s.Invoke(0, op), ref.Apply(op); got != want {
					t.Fatalf("op %d %s: got %d, want %d", i, op, got, want)
				}
			}
		})
	}
}

// TestShardedKVRoutingStable: every operation on one key lands on the same
// shard, and keys spread across shards rather than piling onto one.
func TestShardedKVRoutingStable(t *testing.T) {
	s := NewKV(4, 1, mkSwap)
	hit := make(map[int]int)
	for k := int64(0); k < 64; k++ {
		i := s.shardOf(k)
		if j := s.shardOf(k); j != i {
			t.Fatalf("key %d routed to %d then %d", k, i, j)
		}
		hit[i]++
	}
	if len(hit) != 4 {
		t.Fatalf("64 keys hit only %d of 4 shards: %v", len(hit), hit)
	}
}

// TestShardedKVPerKeyLinearizable: a concurrent workload confined to keys
// of a single shard is linearizable against the unsharded KV spec — the
// front end adds no reordering beyond the underlying Universal's.
func TestShardedKVPerKeyLinearizable(t *testing.T) {
	const n = 3
	facs := map[string]func() core.FetchAndCons{
		"swap": mkSwap,
		"consensus-cas": func() core.FetchAndCons {
			return core.NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
		},
	}
	for name, mk := range facs {
		t.Run(name, func(t *testing.T) {
			s := NewKV(4, n, mk)
			// Keys that all route to shard 0, so the whole history is one
			// linearizable object's.
			var keys []int64
			for k := int64(0); len(keys) < 3; k++ {
				if s.shardOf(k) == 0 {
					keys = append(keys, k)
				}
			}
			var rec linearize.Recorder
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p)))
					for i := 0; i < 6; i++ {
						key := keys[rng.Intn(len(keys))]
						var op seqspec.Op
						switch rng.Intn(3) {
						case 0:
							op = seqspec.Op{Kind: "put", Args: []int64{key, rng.Int63n(50)}}
						case 1:
							op = seqspec.Op{Kind: "get", Args: []int64{key}}
						default:
							op = seqspec.Op{Kind: "del", Args: []int64{key}}
						}
						ts := rec.Invoke()
						resp := s.Invoke(p, op)
						rec.Complete(p, op, resp, ts)
					}
				}()
			}
			wg.Wait()
			h := rec.History()
			if res := linearize.Check(seqspec.KV{}, h); !res.OK {
				for _, e := range h {
					t.Logf("  %s", e)
				}
				t.Fatal("sharded per-key history not linearizable")
			}
		})
	}
}

// TestShardedKVConcurrentFinalState: concurrent writers over many keys;
// the final contents match a sequential merge of the per-key last writes.
func TestShardedKVConcurrentFinalState(t *testing.T) {
	const n, perKey = 4, 50
	s := NewKV(8, n, mkSwap)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				// Each pid owns key pid: the last write per key is known.
				s.Invoke(p, seqspec.Op{Kind: "put", Args: []int64{int64(p), int64(i)}})
			}
		}()
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		if got := s.Invoke(0, seqspec.Op{Kind: "get", Args: []int64{int64(p)}}); got != perKey-1 {
			t.Errorf("key %d = %d, want %d", p, got, perKey-1)
		}
	}
	if got := s.Invoke(0, seqspec.Op{Kind: "len"}); got != n {
		t.Errorf("len = %d, want %d", got, n)
	}
}

// TestShardedFastReads: gets ride the read fast path on every shard.
func TestShardedFastReads(t *testing.T) {
	s := NewKV(2, 1, mkSwap)
	for k := int64(0); k < 8; k++ {
		s.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{k, k}})
	}
	for k := int64(0); k < 8; k++ {
		if got := s.Invoke(0, seqspec.Op{Kind: "get", Args: []int64{k}}); got != k {
			t.Fatalf("get(%d) = %d", k, got)
		}
	}
	if got := s.FastReads(); got != 8 {
		t.Errorf("FastReads = %d, want 8", got)
	}
}

// TestKVRouterUnknownOpPanics pins the Router panic contract: an op kind
// the router does not recognize must fail loudly at the front door, with
// this exact message, rather than be guessed onto some shard.
func TestKVRouterUnknownOpPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("KVRouter accepted an unknown op kind")
		}
		const want = "shard: kv: unknown op frobnicate"
		if msg, ok := r.(string); !ok || msg != want {
			t.Fatalf("panic = %v, want %q", r, want)
		}
	}()
	KVRouter(seqspec.Op{Kind: "frobnicate"})
}

// TestShardedLogGC: per-shard low-water marks advance independently and the
// aggregated accessors report them. Both processes touch every shard, so
// each shard's mark reflects both registers; a pid that writes only some
// shards stays detached on the others and doesn't pin them (see
// TestShardedDetach).
func TestShardedLogGC(t *testing.T) {
	const shards, procs, keys = 2, 2, 32
	s := NewKV(shards, procs, mkSwap, core.WithLogGC(1))
	for round := 0; round < 40; round++ {
		for p := 0; p < procs; p++ {
			for k := int64(0); k < keys; k++ {
				s.Invoke(p, seqspec.Op{Kind: "put", Args: []int64{k, int64(round)}})
			}
		}
	}
	marks := s.Anchors()
	if len(marks) != shards {
		t.Fatalf("Anchors() has %d entries, want %d", len(marks), shards)
	}
	var wantRetired int64
	for i, m := range marks {
		if m == 0 {
			t.Errorf("shard %d never advanced its mark", i)
			continue
		}
		wantRetired += m - 1
	}
	if got := s.Retired(); got != wantRetired {
		t.Errorf("Retired() = %d, want the summed per-shard %d", got, wantRetired)
	}
	// Truncation must not disturb per-key state.
	for k := int64(0); k < keys; k++ {
		if got := s.Invoke(0, seqspec.Op{Kind: "get", Args: []int64{k}}); got != 39 {
			t.Fatalf("get(%d) = %d after GC, want 39", k, got)
		}
	}
}

// TestShardedDetach: the cross-shard half of the departed-client fix. A
// leased pid typically writes only the shards its keys hash to; registers
// start detached, so it never pins the shards it skipped, and Detach
// releases its pin on every shard at once — the marks keep advancing for
// the surviving pid where they would otherwise freeze.
func TestShardedDetach(t *testing.T) {
	const shards, procs = 2, 2
	s := NewKV(shards, procs, mkSwap, core.WithLogGC(1))
	// Keys confined to each shard, found via the exported router hash.
	keyOn := make([]int64, shards)
	for i := range keyOn {
		for k := int64(0); ; k++ {
			if s.ShardOf(k) == i {
				keyOn[i] = k
				break
			}
		}
	}
	// pid 1's brief session touches only shard 0; pid 0 works both shards.
	for i := 0; i < 10; i++ {
		s.Invoke(1, seqspec.Op{Kind: "put", Args: []int64{keyOn[0], int64(i)}})
	}
	drive := func() {
		for i := 0; i < 80; i++ {
			for sh := 0; sh < shards; sh++ {
				s.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{keyOn[sh], int64(i)}})
			}
		}
	}
	drive()
	marks := s.Anchors()
	if marks[1] <= marks[0] {
		t.Errorf("shard 1 (pid 1 never attached there) mark %d should outrun shard 0's pinned %d",
			marks[1], marks[0])
	}
	pinned := marks[0]
	drive()
	if m := s.Anchors()[0]; m != pinned {
		t.Fatalf("shard 0 mark moved %d -> %d while the idle pid was attached", pinned, m)
	}
	s.Detach(1)
	drive()
	if m := s.Anchors()[0]; m <= pinned {
		t.Errorf("shard 0 mark = %d after Detach(1), still pinned at %d", m, pinned)
	}
	if got := s.Invoke(1, seqspec.Op{Kind: "get", Args: []int64{keyOn[0]}}); got != 79 {
		t.Errorf("re-attached get = %d, want 79", got)
	}
}

// TestImbalanceGaugeExtremeCounts pins the imbalance gauge's arithmetic at
// counter values a long-lived server actually reaches: the old integer
// form max·100·S/total overflowed int64 once the hottest shard passed
// 2^63/(100·S) ops and reported a negative percentage. The division must
// happen in float64.
func TestImbalanceGaugeExtremeCounts(t *testing.T) {
	reg := wfstats.NewRegistry()
	s := NewKV(4, 1, mkSwap)
	s.Instrument(reg)
	// A plausibly skewed load after ~a year at full tilt: one hot shard.
	hot := int64(3) << 61 // ~6.9e18, within int64, far past the overflow point
	s.shardOps[0].Add(hot)
	for i := 1; i < 4; i++ {
		s.shardOps[i].Add(hot / 4)
	}
	var got int64 = -1
	for _, sm := range reg.Snapshot() {
		if sm.Name == "shard.imbalance_pct" {
			got = sm.Value
		}
	}
	// max/total = 4/7 of the load on one of 4 shards -> 228%.
	if got != 228 {
		t.Errorf("imbalance_pct = %d at extreme counts, want 228 (negative means the product overflowed)", got)
	}
	// And the balanced fixed point still reads 100.
	reg2 := wfstats.NewRegistry()
	s2 := NewKV(4, 1, mkSwap)
	s2.Instrument(reg2)
	for i := 0; i < 4; i++ {
		s2.shardOps[i].Add(hot / 4)
	}
	for _, sm := range reg2.Snapshot() {
		if sm.Name == "shard.imbalance_pct" && sm.Value != 100 {
			t.Errorf("balanced imbalance_pct = %d, want 100", sm.Value)
		}
	}
}
