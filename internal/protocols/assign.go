package protocols

import (
	"fmt"

	"waitfree/internal/model"
)

// pairIndex maps an unordered pair {x, y} (x != y, both < n) to a dense
// index in [0, n(n-1)/2).
func pairIndex(n, x, y int) int {
	if x > y {
		x, y = y, x
	}
	// index = sum_{i<x}(n-1-i) + (y-x-1)
	return x*(2*n-x-1)/2 + (y - x - 1)
}

// Assign is the Theorem 19 protocol: n-process consensus from atomic
// n-register assignment. Each process Pi atomically assigns its id to one
// private register priv[i] and the n-1 registers pair{i,j} it shares with
// every other process. Because the assignments are atomic and each pairwise
// register is written at most once per process, the final value of pair{x,y}
// — once both x and y have assigned — is the id of the *later* of the two.
//
// After assigning, Pi fixes the set A of processes whose private registers
// are non-empty (all of which therefore assigned before Pi's scan), and
// elects the unique member of A that loses no pairwise comparison within A:
// the globally earliest assigner, which is the same for every scanner.
//
// Layout: registers 0..n-1 announce inputs; registers n..2n-1 are the
// private registers; registers 2n.. are the pairwise registers in pairIndex
// order. Assignment set i covers priv[i] and all of Pi's pairwise registers
// — exactly n registers, as Theorem 19 requires.
func Assign(n int) Instance {
	pairs := n * (n - 1) / 2
	init := make([]model.Value, 2*n+pairs)
	for i := range init {
		init[i] = model.None
	}
	sets := make([][]int, n)
	for i := 0; i < n; i++ {
		set := []int{n + i}
		for j := 0; j < n; j++ {
			if j != i {
				set = append(set, 2*n+pairIndex(n, i, j))
			}
		}
		sets[i] = set
	}
	mem := model.NewMemory("assign-memory", init, model.WithAssignSets(sets...))

	const (
		pcAnnounce = iota
		pcAssign
		pcScanA      // reading priv[vars[2]] to build membership mask vars[1]
		pcCheckPair  // reading pair{vars[3], vars[4]}
		pcReadWinner // reading announce[vars[3]]
		pcDecide
	)
	// vars: [input, Amask, scanK, candidate, probe, winnerInput]

	// nextProbe advances vars[4] to the next member of A other than the
	// candidate, returning false when the candidate has survived all probes.
	nextProbe := func(v []model.Value, n int) bool {
		//wf:bounded v[4] strictly increases each iteration and the loop exits once it reaches n
		for {
			v[4]++
			if int(v[4]) >= n {
				return false
			}
			if v[4] != v[3] && v[1]&(1<<uint(v[4])) != 0 {
				return true
			}
		}
	}
	// nextCandidate advances vars[3] to the next member of A and resets the
	// probe; the protocol invariant guarantees a winner exists, so running
	// out of candidates is a model bug.
	nextCandidate := func(v []model.Value, n int) {
		//wf:bounded v[3] strictly increases each iteration and the scan panics rather than pass n
		for {
			v[3]++
			if int(v[3]) >= n {
				panic("assign: no earliest assigner found; protocol invariant broken")
			}
			if v[1]&(1<<uint(v[3])) != 0 {
				v[4] = model.None
				return
			}
		}
	}

	proto := &model.Machine{
		ProtoName: fmt.Sprintf("assign[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, 0, model.None, model.None, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(pid), v[0]))
			case pcAssign:
				return model.Invoke(opAssign(pid, model.Value(pid)))
			case pcScanA:
				return model.Invoke(opRead(model.Value(n) + v[2]))
			case pcCheckPair:
				return model.Invoke(opRead(model.Value(2*n + pairIndex(n, int(v[3]), int(v[4])))))
			case pcReadWinner:
				return model.Invoke(opRead(v[3]))
			case pcDecide:
				return model.Decide(v[5])
			}
			panic("assign: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcAssign, v
			case pcAssign:
				v[2] = 0
				return pcScanA, v
			case pcScanA:
				if resp != model.None {
					v[1] |= 1 << uint(v[2])
				}
				v[2]++
				if int(v[2]) < n {
					return pcScanA, v
				}
				// A fixed; start with the lowest member as candidate.
				v[3] = model.None
				nextCandidate(v, n)
				if !nextProbe(v, n) {
					return pcReadWinner, v // A = {candidate}
				}
				return pcCheckPair, v
			case pcCheckPair:
				if resp == v[3] {
					// The candidate wrote pair{candidate,probe} last, so the
					// probe assigned earlier: candidate is not the first.
					nextCandidate(v, n)
					if !nextProbe(v, n) {
						return pcReadWinner, v
					}
					return pcCheckPair, v
				}
				if !nextProbe(v, n) {
					return pcReadWinner, v // candidate survived every probe
				}
				return pcCheckPair, v
			case pcReadWinner:
				v[5] = resp
				return pcDecide, v
			}
			panic("assign: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}
