package protocols

import (
	"testing"

	"waitfree/internal/check"
	"waitfree/internal/model"
)

// Mutation tests: each takes a correct protocol, breaks it the way the
// paper's proofs say matters, and demands that the exhaustive checker
// refute it. A checker that accepts these mutants would be vacuous.

// brokenMoveDescendingSpoil is the Theorem 15 protocol with the spoil loop
// writing rounds in DESCENDING order (n down to i+1) instead of ascending.
// The ascending order is load-bearing: it guarantees that by the time a
// round can be spoiled, every lower round's fate is already sealed, so a
// scanner that passes a round unwon can never be overtaken.
func brokenMoveDescendingSpoil(n int) Instance {
	inst := Move(n)
	m := inst.Proto.(*model.Machine)
	origStep := m.OnStep
	r1 := func(j model.Value) model.Value { return model.Value(n) + 2*(j-1) }
	m.OnStep = func(pid, pc int, v []model.Value) model.Action {
		const pcSpoil = 2
		if pc == pcSpoil {
			// v[1] still walks i+1..n; mirror it so the write targets walk
			// n..i+1.
			lo, hi := model.Value(pid+2), model.Value(n)
			j := lo + (hi - v[1])
			return model.Invoke(model.Op{Kind: "write", A: r1(j), B: j - 1, C: model.None})
		}
		return origStep(pid, pc, v)
	}
	return inst
}

// TestCheckerRefutesDescendingSpoil: the mutated Move must violate
// agreement somewhere in the 3-process interleaving space.
func TestCheckerRefutesDescendingSpoil(t *testing.T) {
	inst := brokenMoveDescendingSpoil(3)
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if res.OK {
		t.Fatal("checker accepted the descending-spoil mutant of Move")
	}
	t.Logf("refuted: %v", res.Violation.Kind)
}

// TestCheckerRefutesFlippedQueue2: mutate the Theorem 9 decision rule so
// that dequeuing the SECOND marker also claims victory; both processes then
// decide their own inputs and disagree.
func TestCheckerRefutesFlippedQueue2(t *testing.T) {
	inst := Queue2()
	m := inst.Proto.(*model.Machine)
	origStep := m.OnStep
	m.OnStep = func(pid, pc int, v []model.Value) model.Action {
		const pcAfterDeq = 2
		if pc == pcAfterDeq && v[1] == 1 {
			return model.Decide(v[0]) // mutant: "second" wins too
		}
		return origStep(pid, pc, v)
	}
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if res.OK {
		t.Fatal("checker accepted the flipped queue2 mutant")
	}
	if res.Violation.Kind != check.ViolationAgreement {
		t.Fatalf("expected agreement violation, got %v", res.Violation.Kind)
	}
}

// TestCheckerRefutesSkippedAnnounce: replace the CAS protocol's announce
// write with a harmless read; the loser then decides the winner's
// never-announced input placeholder — a validity violation.
func TestCheckerRefutesSkippedAnnounce(t *testing.T) {
	inst := CAS(2)
	m := inst.Proto.(*model.Machine)
	origStep := m.OnStep
	m.OnStep = func(pid, pc int, v []model.Value) model.Action {
		if pc == 0 {
			return model.Invoke(model.Op{Kind: "read", A: model.Value(1 + pid), B: model.None, C: model.None})
		}
		return origStep(pid, pc, v)
	}
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if res.OK {
		t.Fatal("checker accepted the skipped-announce mutant")
	}
	t.Logf("refuted: %v", res.Violation.Kind)
}

// TestCheckerRefutesStaleAssignScan: the Theorem 19 protocol must restrict
// its election to processes actually seen assigned. The mutant includes
// everyone, turning unassigned processes into candidates whose pairwise
// registers are still unset — the election derails.
func TestCheckerRefutesStaleAssignScan(t *testing.T) {
	inst := Assign(3)
	m := inst.Proto.(*model.Machine)
	origResp := m.OnResp
	m.OnResp = func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
		const pcScanA = 2
		if pc == pcScanA {
			resp = 1 // mutant: pretend every scanned process has assigned
		}
		return origResp(pid, pc, v, resp)
	}
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if res.OK {
		t.Fatal("checker accepted the stale-scan mutant of Assign")
	}
	t.Logf("refuted: %v", res.Violation.Kind)
}

// TestCheckerRefutesSwappedPhases: the two-phase assignment protocol must
// write its group result BEFORE the phase-2 assignment; a mutant that skips
// the gres write decides a placeholder value.
func TestCheckerRefutesSwappedPhases(t *testing.T) {
	inst := Assign2Phase(2)
	m := inst.Proto.(*model.Machine)
	origStep := m.OnStep
	m.OnStep = func(pid, pc int, v []model.Value) model.Action {
		const pcWriteGres = 5
		if pc == pcWriteGres {
			// Mutant: write to a scratch location instead of gres.
			return model.Invoke(model.Op{Kind: "write", A: model.Value(pid), B: v[5], C: model.None})
		}
		return origStep(pid, pc, v)
	}
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if res.OK {
		t.Fatal("checker accepted the skipped-gres mutant of Assign2Phase")
	}
	t.Logf("refuted: %v", res.Violation.Kind)
}

// TestFuzzAlsoRefutesMutants: the random-schedule fuzzer should catch the
// louder mutants at larger n, where exhaustive checking is out of reach.
func TestFuzzAlsoRefutesMutants(t *testing.T) {
	inst := brokenMoveDescendingSpoil(5)
	res := check.Fuzz(inst.Proto, inst.Obj, 5000, 3, check.Options{})
	if res.OK {
		t.Fatal("fuzzer missed the descending-spoil mutant at n=5 in 5000 schedules")
	}
	t.Logf("refuted by fuzz: %v", res.Violation.Kind)
}
