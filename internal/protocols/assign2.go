package protocols

import (
	"fmt"

	"waitfree/internal/model"
)

// Assign2Phase is the Theorems 20/21 protocol: (2m-2)-process consensus from
// atomic m-register assignment. The 2m-2 processes are split into two groups
// of m-1.
//
// Phase 1: each group independently runs the Theorem 19 protocol among its
// m-1 members, which needs only (m-1)-register assignment, and records the
// group's agreed value in gres[group].
//
// Phase 2: each process atomically assigns its id to a phase-two private
// register plus the m-1 registers it shares with the members of the *other*
// group (m registers total). It then fixes the set A of processes whose
// phase-two private registers are non-empty and elects a "source": a member
// of A that loses no cross-group pairwise comparison within A. The earliest
// phase-two assigner is a source and beats every other-group member, so all
// sources lie in one group, and every scanner decides that group's value.
func Assign2Phase(m int) Instance {
	if m < 2 {
		panic("protocols: Assign2Phase requires m >= 2")
	}
	g := m - 1 // group size
	nProcs := 2 * g

	// Register layout.
	var (
		offPriv1 = nProcs             // announce registers occupy 0..nProcs-1
		offPair1 = 2 * nProcs         // g(g-1)/2 per group, two groups
		offGres  = offPair1 + g*(g-1) // 2 registers
		offPriv2 = offGres + 2        // nProcs registers
		offPair2 = offPriv2 + nProcs  // g*g cross pairs
		total    = offPair2 + g*g
	)
	init := make([]model.Value, total)
	for i := range init {
		init[i] = model.None
	}

	group := func(pid int) int {
		if pid < g {
			return 0
		}
		return 1
	}
	// pair1 returns the phase-1 register shared by same-group x and y.
	pair1 := func(x, y int) int {
		gi := group(x)
		base := gi * g
		return offPair1 + gi*(g*(g-1)/2) + pairIndex(g, x-base, y-base)
	}
	// pair2 returns the phase-2 register shared by cross-group x and y.
	pair2 := func(x, y int) int {
		if group(x) == 1 {
			x, y = y, x
		}
		return offPair2 + x*g + (y - g)
	}

	sets1 := make([][]int, nProcs)
	sets2 := make([][]int, nProcs)
	for i := 0; i < nProcs; i++ {
		s1 := []int{offPriv1 + i}
		base := group(i) * g
		for j := base; j < base+g; j++ {
			if j != i {
				s1 = append(s1, pair1(i, j))
			}
		}
		sets1[i] = s1
		s2 := []int{offPriv2 + i}
		otherBase := (1 - group(i)) * g
		for j := otherBase; j < otherBase+g; j++ {
			s2 = append(s2, pair2(i, j))
		}
		sets2[i] = s2
		if len(s1) > m || len(s2) > m {
			panic("protocols: Assign2Phase register sets exceed assignment width")
		}
	}
	allSets := append(append([][]int(nil), sets1...), sets2...)
	mem := model.NewMemory("assign2-memory", init, model.WithAssignSets(allSets...))

	const (
		pcAnnounce = iota
		pcAssign1
		pcScanA1
		pcCheckPair1
		pcReadGroupVal
		pcWriteGres
		pcAssign2
		pcScanA2
		pcCheckPair2
		pcReadGres
		pcDecide
	)
	// vars: [input, mask, scanK, cand, probe, groupVal]

	// advanceProbe moves vars[4] to the next pid >= vars[4]+1 that is in the
	// candidate's probe set (mask members, restricted by sameGroup) and is
	// not the candidate; it returns false if none remains.
	advanceProbe := func(v []model.Value, sameGroup bool) bool {
		//wf:bounded v[4] strictly increases each iteration and the loop exits once it reaches nProcs
		for {
			v[4]++
			if int(v[4]) >= nProcs {
				return false
			}
			j := int(v[4])
			if j == int(v[3]) || v[1]&(1<<uint(j)) == 0 {
				continue
			}
			if sameGroup != (group(j) == group(int(v[3]))) {
				continue
			}
			return true
		}
	}
	// advanceCandidate moves vars[3] to the next member of the mask,
	// optionally restricted to the given group (-1 for any), and resets the
	// probe.
	advanceCandidate := func(v []model.Value, onlyGroup int) {
		//wf:bounded v[3] strictly increases each iteration and the scan panics rather than pass nProcs
		for {
			v[3]++
			if int(v[3]) >= nProcs {
				panic("assign2: no candidate survived; protocol invariant broken")
			}
			j := int(v[3])
			if v[1]&(1<<uint(j)) == 0 {
				continue
			}
			if onlyGroup >= 0 && group(j) != onlyGroup {
				continue
			}
			v[4] = model.None
			return
		}
	}

	proto := &model.Machine{
		ProtoName: fmt.Sprintf("assign2phase[m=%d,n=%d]", m, nProcs),
		N:         nProcs,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, 0, model.None, model.None, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(pid), v[0]))
			case pcAssign1:
				return model.Invoke(opAssign(pid, model.Value(pid)))
			case pcScanA1:
				return model.Invoke(opRead(model.Value(offPriv1) + v[2]))
			case pcCheckPair1:
				return model.Invoke(opRead(model.Value(pair1(int(v[3]), int(v[4])))))
			case pcReadGroupVal:
				return model.Invoke(opRead(v[3]))
			case pcWriteGres:
				return model.Invoke(opWrite(model.Value(offGres+group(pid)), v[5]))
			case pcAssign2:
				return model.Invoke(opAssign(nProcs+pid, model.Value(pid)))
			case pcScanA2:
				return model.Invoke(opRead(model.Value(offPriv2) + v[2]))
			case pcCheckPair2:
				return model.Invoke(opRead(model.Value(pair2(int(v[3]), int(v[4])))))
			case pcReadGres:
				return model.Invoke(opRead(model.Value(offGres + group(int(v[3])))))
			case pcDecide:
				return model.Decide(v[5])
			}
			panic("assign2: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			myGroup := group(pid)
			switch pc {
			case pcAnnounce:
				return pcAssign1, v
			case pcAssign1:
				v[1] = 0
				v[2] = model.Value(myGroup * g) // scan own group's privates
				return pcScanA1, v
			case pcScanA1:
				if resp != model.None {
					v[1] |= 1 << uint(v[2])
				}
				v[2]++
				if int(v[2]) < myGroup*g+g {
					return pcScanA1, v
				}
				v[3] = model.None
				advanceCandidate(v, myGroup)
				if !advanceProbe(v, true) {
					return pcReadGroupVal, v
				}
				return pcCheckPair1, v
			case pcCheckPair1:
				if resp == v[3] {
					advanceCandidate(v, myGroup)
					if !advanceProbe(v, true) {
						return pcReadGroupVal, v
					}
					return pcCheckPair1, v
				}
				if !advanceProbe(v, true) {
					return pcReadGroupVal, v
				}
				return pcCheckPair1, v
			case pcReadGroupVal:
				v[5] = resp // the group's phase-1 value
				return pcWriteGres, v
			case pcWriteGres:
				return pcAssign2, v
			case pcAssign2:
				v[1] = 0
				v[2] = 0 // scan all phase-2 privates
				return pcScanA2, v
			case pcScanA2:
				if resp != model.None {
					v[1] |= 1 << uint(v[2])
				}
				v[2]++
				if int(v[2]) < nProcs {
					return pcScanA2, v
				}
				v[3] = model.None
				advanceCandidate(v, -1)
				if !advanceProbe(v, false) {
					return pcReadGres, v // no other-group member assigned
				}
				return pcCheckPair2, v
			case pcCheckPair2:
				if resp == v[3] {
					// The candidate's cross-assignment followed the probe's:
					// the probe's group may precede; try the next candidate.
					advanceCandidate(v, -1)
					if !advanceProbe(v, false) {
						return pcReadGres, v
					}
					return pcCheckPair2, v
				}
				if !advanceProbe(v, false) {
					return pcReadGres, v // candidate is a source
				}
				return pcCheckPair2, v
			case pcReadGres:
				v[5] = resp
				return pcDecide, v
			}
			panic("assign2: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}
