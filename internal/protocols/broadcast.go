package protocols

import (
	"fmt"

	"waitfree/internal/model"
)

// BroadcastConsensus is the ordered-broadcast protocol referenced in Section
// 3.1 (via Dolev, Dwork and Stockmeyer): with broadcast and totally-ordered
// delivery, n-process consensus is immediate. Every process broadcasts its
// input and decides the first message in the global delivery order; its own
// broadcast precedes its receive, so the log is never empty when it reads.
func BroadcastConsensus(n int) Instance {
	bc := model.NewBroadcast("broadcast", n)
	const (
		pcBcast = iota
		pcRecv
		pcDecide
	)
	proto := &model.Machine{
		ProtoName: fmt.Sprintf("broadcast[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcBcast:
				return model.Invoke(bc.Bcast(pid, v[0]))
			case pcRecv:
				return model.Invoke(bc.Brecv(pid))
			case pcDecide:
				return model.Decide(v[1])
			}
			panic("broadcast: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcBcast:
				return pcRecv, v
			case pcRecv:
				v[1] = resp
				return pcDecide, v
			}
			panic("broadcast: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: bc}
}
