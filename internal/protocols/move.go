package protocols

import (
	"fmt"

	"waitfree/internal/model"
)

// Move is the Theorem 15 protocol: n-process consensus from atomic
// memory-to-memory move. It iterates the paper's two-process move protocol:
// process Pi (1-based i = pid+1) owns "round" i, played on the register pair
// (r[i,1], r[i,2]) initialized to (i, i-1):
//
//  1. Pi performs move(r[i,1] -> r[i,2]). Round i is won by Pi exactly when
//     r[i,2] ends up holding i, i.e. when no lower-numbered process "spoiled"
//     r[i,1] first.
//  2. Pi spoils every higher round j = i+1..n by writing r[j,1] := j-1, in
//     ascending order.
//  3. Pi scans rounds n..1 and decides the announced input of the
//     highest-numbered round winner.
//
// A scan always finds a winner: round 1 cannot be spoiled, and the ascending
// spoil order guarantees that once a scanner passes a round unwon, that round
// can no longer be won ahead of an already-observed winner.
//
// Layout: registers 0..n-1 announce inputs; registers n+2(j-1), n+2(j-1)+1
// are r[j,1], r[j,2] for round j = 1..n.
func Move(n int) Instance {
	init := make([]model.Value, n+2*n)
	for i := 0; i < n; i++ {
		init[i] = model.None // announce
	}
	for j := 1; j <= n; j++ {
		init[n+2*(j-1)] = model.Value(j)       // r[j,1]
		init[n+2*(j-1)+1] = model.Value(j - 1) // r[j,2]
	}
	mem := model.NewMemory("move-memory", init, model.WithM2M())

	r1 := func(j model.Value) model.Value { return model.Value(n) + 2*(j-1) }
	r2 := func(j model.Value) model.Value { return model.Value(n) + 2*(j-1) + 1 }

	const (
		pcAnnounce = iota
		pcMove
		pcSpoil      // writing r[j,1] := j-1 for j = vars[1]
		pcScan       // reading r[k,2] for k = vars[2]
		pcReadWinner // reading announce[vars[3]-1]
		pcDecide
	)
	// vars: [input, spoilJ, scanK, winnerRound, winnerInput]
	proto := &model.Machine{
		ProtoName: fmt.Sprintf("move[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			i := model.Value(pid + 1)
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(pid), v[0]))
			case pcMove:
				return model.Invoke(opMove(r1(i), r2(i)))
			case pcSpoil:
				return model.Invoke(opWrite(r1(v[1]), v[1]-1))
			case pcScan:
				return model.Invoke(opRead(r2(v[2])))
			case pcReadWinner:
				return model.Invoke(opRead(v[3] - 1))
			case pcDecide:
				return model.Decide(v[4])
			}
			panic("move: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			i := pid + 1
			switch pc {
			case pcAnnounce:
				if i+1 <= n {
					v[1] = model.Value(i + 1)
					return pcMove, v
				}
				return pcMove, v
			case pcMove:
				if i+1 <= n {
					v[1] = model.Value(i + 1)
					return pcSpoil, v
				}
				v[2] = model.Value(n)
				return pcScan, v
			case pcSpoil:
				v[1]++
				if int(v[1]) <= n {
					return pcSpoil, v
				}
				v[2] = model.Value(n)
				return pcScan, v
			case pcScan:
				if resp == v[2] { // round v[2] won by P(v[2])
					v[3] = v[2]
					return pcReadWinner, v
				}
				v[2]--
				if v[2] >= 1 {
					return pcScan, v
				}
				panic("move: scan found no round winner; protocol invariant broken")
			case pcReadWinner:
				v[4] = resp
				return pcDecide, v
			}
			panic("move: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}

// MemSwap is the Theorem 16 protocol: n-process consensus from atomic
// memory-to-memory swap. Shared registers p[0..n-1] are initialized to 0 and
// a register r to 1; each process swaps p[pid] with r. Exactly the first
// swapper captures the 1, and every later scan finds it.
//
// Layout: registers 0..n-1 announce inputs; registers n..2n-1 are p[0..n-1];
// register 2n is r.
func MemSwap(n int) Instance {
	init := make([]model.Value, 2*n+1)
	for i := 0; i < n; i++ {
		init[i] = model.None // announce
		init[n+i] = 0        // p[i]
	}
	init[2*n] = 1 // r
	mem := model.NewMemory("swap-memory", init, model.WithM2M())

	const (
		pcAnnounce = iota
		pcSwap
		pcScan       // reading p[vars[1]]
		pcReadWinner // reading announce[vars[2]]
		pcDecide
	)
	// vars: [input, scanK, winnerPid, winnerInput]
	proto := &model.Machine{
		ProtoName: fmt.Sprintf("memswap[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(pid), v[0]))
			case pcSwap:
				return model.Invoke(opSwapM(model.Value(n+pid), model.Value(2*n)))
			case pcScan:
				return model.Invoke(opRead(model.Value(n) + v[1]))
			case pcReadWinner:
				return model.Invoke(opRead(v[2]))
			case pcDecide:
				return model.Decide(v[3])
			}
			panic("memswap: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcSwap, v
			case pcSwap:
				v[1] = 0
				return pcScan, v
			case pcScan:
				if resp == 1 { // p[v[1]] holds the token: P(v[1]) swapped first
					v[2] = v[1]
					return pcReadWinner, v
				}
				v[1]++
				if int(v[1]) < n {
					return pcScan, v
				}
				panic("memswap: scan found no token; protocol invariant broken")
			case pcReadWinner:
				v[3] = resp
				return pcDecide, v
			}
			panic("memswap: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}
