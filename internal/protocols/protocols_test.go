package protocols

import (
	"testing"

	"waitfree/internal/check"
	"waitfree/internal/model"
)

// verify exhaustively checks an instance under every permutation of the
// election-convention inputs and reports the checker metrics.
func verify(t *testing.T, inst Instance) check.Result {
	t.Helper()
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if !res.OK {
		t.Fatalf("%s over %s: %v", inst.Proto.Name(), inst.Obj.Name(), res.Violation)
	}
	if len(res.Decisions) == 0 {
		t.Fatalf("%s: no execution reached a decision", inst.Proto.Name())
	}
	t.Logf("%s: configs=%d maxsteps=%d decisions=%v",
		inst.Proto.Name(), res.Configs, res.MaxSteps, res.Decisions)
	return res
}

func TestRMW2(t *testing.T) {
	tests := []struct {
		name string
		fn   model.RMWFn
		row  int
		init model.Value
	}{
		{name: "test-and-set", fn: model.TestAndSet, row: 0, init: 0},
		{name: "swap", fn: model.SwapRMW, row: 1, init: 0},              // swap in 1, init 0
		{name: "fetch-and-add", fn: model.FetchAndAdd, row: 0, init: 0}, // add 1
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			verify(t, RMW2(tt.fn, tt.row, tt.init))
		})
	}
}

func TestCAS(t *testing.T) {
	for _, n := range []int{2, 3} {
		res := verify(t, CAS(n))
		if res.MaxSteps > 4 {
			t.Errorf("cas[n=%d]: expected constant step bound, got %d", n, res.MaxSteps)
		}
	}
}

func TestQueue2(t *testing.T) {
	verify(t, Queue2())
}

func TestAugQueue(t *testing.T) {
	for _, n := range []int{2, 3} {
		verify(t, AugQueue(n))
	}
}

func TestMove(t *testing.T) {
	for _, n := range []int{2, 3} {
		verify(t, Move(n))
	}
}

func TestMemSwap(t *testing.T) {
	for _, n := range []int{2, 3} {
		verify(t, MemSwap(n))
	}
}

func TestAssign(t *testing.T) {
	for _, n := range []int{2, 3} {
		verify(t, Assign(n))
	}
}

func TestAssign2Phase(t *testing.T) {
	// m=2 registers -> 2 processes (groups of 1). The m=3 (4-process) case
	// is covered for a single input assignment by
	// TestAssign2PhaseM3SingleAssignment; the full permutation sweep is too
	// large to explore exhaustively.
	verify(t, Assign2Phase(2))
}

func TestBroadcastConsensus(t *testing.T) {
	for _, n := range []int{2, 3} {
		verify(t, BroadcastConsensus(n))
	}
}

// TestValencyOnQueue2 reproduces the proof structure of the impossibility
// arguments on a *correct* protocol: the initial configuration of the
// two-process queue protocol is bivalent, and because the protocol is
// correct there is a critical step at which the winner is fixed — here, the
// first deq.
func TestValencyOnQueue2(t *testing.T) {
	inst := Queue2()
	rep := check.Valency(inst.Proto, inst.Obj, []model.Value{0, 1})
	initNode := rep.Nodes[rep.InitialKey]
	if !initNode.Bivalent() {
		t.Fatalf("initial configuration should be bivalent, got values %v", initNode.Values)
	}
	if rep.Critical == 0 {
		t.Fatal("expected at least one critical configuration")
	}
	t.Logf("valency: %s", rep)
	t.Logf("%s", rep.DescribeCritical(rep.CriticalKeys[0]))
}

// TestPairIndex checks the dense unordered-pair indexing used by the
// assignment protocols.
func TestPairIndex(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		seen := make(map[int]bool)
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				i := pairIndex(n, x, y)
				if i != pairIndex(n, y, x) {
					t.Errorf("pairIndex(%d,%d,%d) not symmetric", n, x, y)
				}
				if i < 0 || i >= n*(n-1)/2 {
					t.Errorf("pairIndex(%d,%d,%d)=%d out of range", n, x, y, i)
				}
				if seen[i] {
					t.Errorf("pairIndex(%d,%d,%d)=%d collides", n, x, y, i)
				}
				seen[i] = true
			}
		}
	}
}
