// Package protocols contains model-world renderings of every wait-free
// consensus protocol in Herlihy's PODC 1988 paper, one constructor per
// positive theorem:
//
//	Theorem 4   RMW2        any non-trivial read-modify-write, 2 processes
//	Theorem 7   CAS         compare-and-swap, n processes
//	Theorem 9   Queue2      FIFO queue, 2 processes
//	Theorem 12  AugQueue    augmented queue (peek), n processes
//	Theorem 15  Move        memory-to-memory move, n processes
//	Theorem 16  MemSwap     memory-to-memory swap, n processes
//	Theorem 19  Assign      atomic m-register assignment, m processes
//	Theorems 20/21 Assign2Phase  m-register assignment, 2m-2 processes
//	Section 3.1 Broadcast   ordered broadcast, n processes
//
// Each constructor returns the protocol together with the shared object it
// runs over, ready for internal/check to verify exhaustively. By the paper's
// election convention, decision values are inputs, inputs are announced in
// shared registers, and protocols internally elect a winning process id.
//
//wf:waitfree
package protocols

import (
	"fmt"

	"waitfree/internal/model"
)

// Instance pairs a protocol with the object it runs over.
type Instance struct {
	Proto model.Protocol
	Obj   model.Object
}

// read/write/rmw op builders over a Memory-backed instance.
func opRead(r model.Value) model.Op {
	return model.Op{Kind: "read", A: r, B: model.None, C: model.None}
}

func opWrite(r, v model.Value) model.Op {
	return model.Op{Kind: "write", A: r, B: v, C: model.None}
}

func opRMW(r, fn, operand model.Value) model.Op {
	return model.Op{Kind: "rmw", A: r, B: fn, C: operand}
}

func opMove(src, dst model.Value) model.Op {
	return model.Op{Kind: "move", A: src, B: dst, C: model.None}
}

func opSwapM(a, b model.Value) model.Op {
	return model.Op{Kind: "swapm", A: a, B: b, C: model.None}
}

func opAssign(set int, v model.Value) model.Op {
	return model.Op{Kind: "assign", A: model.Value(set), B: v, C: model.None}
}

// RMW2 is the Theorem 4 protocol: two-process consensus from a single
// register supporting any non-trivial read-modify-write family f. The
// register is initialized to init, a value with f(init) != init; the process
// whose RMW is linearized first (observing init) wins.
//
// Layout: register 0 is the RMW register; registers 1..2 announce inputs.
func RMW2(fn model.RMWFn, operandRow int, init model.Value) Instance {
	row := fn.Operands[operandRow]
	if fn.Apply(init, row[0], row[1]) == init {
		panic(fmt.Sprintf("protocols: RMW2 requires a non-trivial f: f(%d)=%d", init, init))
	}
	mem := model.NewMemory("rmw["+fn.Name+"]", []model.Value{init, model.None, model.None},
		model.WithRMW(fn))
	const (
		pcAnnounce = iota
		pcRMW
		pcAfterRMW
		pcReadOther
		pcDecideOther
	)
	proto := &model.Machine{
		ProtoName: "rmw2[" + fn.Name + "]",
		N:         2,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(1+pid), v[0]))
			case pcRMW:
				return model.Invoke(opRMW(0, 0, model.Value(operandRow)))
			case pcAfterRMW:
				if v[1] == init {
					return model.Decide(v[0]) // my RMW was first: my input wins
				}
				return model.Invoke(opRead(model.Value(1 + (1 - pid))))
			case pcDecideOther:
				return model.Decide(v[2])
			}
			panic("rmw2: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcRMW, v
			case pcRMW:
				v[1] = resp
				return pcAfterRMW, v
			case pcAfterRMW: // the read of the other process's announcement
				v[2] = resp
				return pcDecideOther, v
			}
			panic("rmw2: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}

// CAS is the Theorem 7 protocol: n-process consensus from one
// compare-and-swap register. Each process CASes its id into the register
// (expecting "unset"); the single winner's announced input is decided by
// everyone.
//
// Layout: register 0 is the CAS register (init None); registers 1..n
// announce inputs.
func CAS(n int) Instance {
	fn := model.RMWFn{
		Name: "compare-and-swap",
		Apply: func(cur, a, b model.Value) model.Value {
			if cur == a {
				return b
			}
			return cur
		},
	}
	for i := 0; i < n; i++ {
		fn.Operands = append(fn.Operands, [2]model.Value{model.None, model.Value(i)})
	}
	init := make([]model.Value, 1+n)
	for i := range init {
		init[i] = model.None
	}
	mem := model.NewMemory("cas", init, model.WithRMW(fn))
	const (
		pcAnnounce = iota
		pcCAS
		pcAfterCAS
		pcDecideOther
	)
	proto := &model.Machine{
		ProtoName: fmt.Sprintf("cas[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(opWrite(model.Value(1+pid), v[0]))
			case pcCAS:
				return model.Invoke(opRMW(0, 0, model.Value(pid)))
			case pcAfterCAS:
				if v[1] == model.None {
					return model.Decide(v[0]) // I installed my id: I win
				}
				return model.Invoke(opRead(1 + v[1])) // v[1] is the winner's pid
			case pcDecideOther:
				return model.Decide(v[2])
			}
			panic("cas: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcCAS, v
			case pcCAS:
				v[1] = resp
				return pcAfterCAS, v
			case pcAfterCAS:
				v[2] = resp
				return pcDecideOther, v
			}
			panic("cas: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: mem}
}

// Queue2 is the Theorem 9 protocol: two-process consensus from a FIFO queue
// initialized with two marker items. The process that dequeues the "first"
// marker wins.
//
// Layout: sub-object 0 is the queue, initialized [0, 1] (0 = first);
// sub-object 1 is a 2-register announce memory.
func Queue2() Instance {
	q := model.NewQueue("queue", []model.Value{0, 1})
	mem := model.NewMemory("announce", []model.Value{model.None, model.None})
	comp := model.NewComposite("queue+announce", q, mem)
	const (
		pcAnnounce = iota
		pcDeq
		pcAfterDeq
		pcDecideOther
	)
	proto := &model.Machine{
		ProtoName: "queue2",
		N:         2,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(comp.At(1, opWrite(model.Value(pid), v[0])))
			case pcDeq:
				return model.Invoke(comp.At(0, model.Op{Kind: "deq", A: model.None, B: model.None, C: model.None}))
			case pcAfterDeq:
				if v[1] == 0 {
					return model.Decide(v[0]) // dequeued "first": I win
				}
				return model.Invoke(comp.At(1, opRead(model.Value(1-pid))))
			case pcDecideOther:
				return model.Decide(v[2])
			}
			panic("queue2: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcDeq, v
			case pcDeq:
				v[1] = resp
				return pcAfterDeq, v
			case pcAfterDeq:
				v[2] = resp
				return pcDecideOther, v
			}
			panic("queue2: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: comp}
}

// AugQueue is the Theorem 12 protocol: n-process consensus from the
// augmented queue. Every process enqueues its id; peek reveals the id whose
// enq was linearized first.
//
// Layout: sub-object 0 is an (initially empty) augmented queue; sub-object 1
// is an n-register announce memory.
func AugQueue(n int) Instance {
	menu := make([]model.Value, n)
	for i := range menu {
		menu[i] = model.Value(i)
	}
	q := model.NewAugmentedQueue("augqueue", nil, menu...)
	ann := make([]model.Value, n)
	for i := range ann {
		ann[i] = model.None
	}
	mem := model.NewMemory("announce", ann)
	comp := model.NewComposite("augqueue+announce", q, mem)
	const (
		pcAnnounce = iota
		pcEnq
		pcPeek
		pcReadWinner
		pcDecide
	)
	proto := &model.Machine{
		ProtoName: fmt.Sprintf("augqueue[n=%d]", n),
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value {
			return []model.Value{input, model.None, model.None}
		},
		OnStep: func(pid, pc int, v []model.Value) model.Action {
			switch pc {
			case pcAnnounce:
				return model.Invoke(comp.At(1, opWrite(model.Value(pid), v[0])))
			case pcEnq:
				return model.Invoke(comp.At(0, model.Op{Kind: "enq", A: model.Value(pid), B: model.None, C: model.None}))
			case pcPeek:
				return model.Invoke(comp.At(0, model.Op{Kind: "peek", A: model.None, B: model.None, C: model.None}))
			case pcReadWinner:
				return model.Invoke(comp.At(1, opRead(v[1])))
			case pcDecide:
				return model.Decide(v[2])
			}
			panic("augqueue: bad pc")
		},
		OnResp: func(pid, pc int, v []model.Value, resp model.Value) (int, []model.Value) {
			switch pc {
			case pcAnnounce:
				return pcEnq, v
			case pcEnq:
				return pcPeek, v
			case pcPeek:
				v[1] = resp // winner pid; non-None because my enq preceded
				return pcReadWinner, v
			case pcReadWinner:
				v[2] = resp
				return pcDecide, v
			}
			panic("augqueue: bad pc in OnResp")
		},
	}
	return Instance{Proto: proto, Obj: comp}
}
