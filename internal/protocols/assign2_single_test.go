package protocols

import (
	"testing"

	"waitfree/internal/check"
)

// The 4-process (m=3) two-phase assignment protocol has an interleaving
// space beyond exhaustive reach (the m=2 case is verified exhaustively in
// TestAssign2Phase). Here the model-world fuzzer samples thousands of random
// schedules, input permutations, and crash subsets instead; the native
// stress tests in internal/consensus cover the goroutine form.
func TestAssign2PhaseM3Fuzz(t *testing.T) {
	inst := Assign2Phase(3)
	res := check.Fuzz(inst.Proto, inst.Obj, 4000, 1, check.Options{})
	if !res.OK {
		t.Fatalf("%s: %v", inst.Proto.Name(), res.Violation)
	}
	t.Logf("%s: steps=%d maxsteps=%d decisions=%v",
		inst.Proto.Name(), res.Configs, res.MaxSteps, res.Decisions)
}

// TestLargerProtocolsFuzz samples schedules for every n-process protocol at
// sizes beyond the exhaustive checker's reach.
func TestLargerProtocolsFuzz(t *testing.T) {
	tests := []struct {
		name string
		inst Instance
	}{
		{name: "cas-6", inst: CAS(6)},
		{name: "augqueue-6", inst: AugQueue(6)},
		{name: "move-5", inst: Move(5)},
		{name: "memswap-6", inst: MemSwap(6)},
		{name: "assign-5", inst: Assign(5)},
		{name: "assign2phase-m4", inst: Assign2Phase(4)}, // 6 processes
		{name: "broadcast-6", inst: BroadcastConsensus(6)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := check.Fuzz(tt.inst.Proto, tt.inst.Obj, 1500, 7, check.Options{})
			if !res.OK {
				t.Fatalf("%v", res.Violation)
			}
			t.Logf("maxsteps=%d decisions=%v", res.MaxSteps, res.Decisions)
		})
	}
}
