package synth

import (
	"testing"

	"waitfree/internal/check"
	"waitfree/internal/model"
)

// casObject builds a single compare-and-swap register with no plain
// read/write, menu operands "install 0" and "install 1".
func casObject() model.Object {
	fn := model.RMWFn{
		Name: "compare-and-swap",
		Apply: func(cur, a, b model.Value) model.Value {
			if cur == a {
				return b
			}
			return cur
		},
		Operands: [][2]model.Value{{model.None, 0}, {model.None, 1}},
	}
	return model.NewMemory("cas-reg", []model.Value{model.None},
		model.WithRMW(fn), model.WithoutRW())
}

// TestSynthFindsCASProtocol is the positive control: the synthesizer must
// discover the Theorem 7 protocol shape (CAS your input, decide what is in
// the register) within depth 1 for two processes.
func TestSynthFindsCASProtocol(t *testing.T) {
	res := Search(casObject(), Params{Procs: 2, Depth: 1})
	if !res.Found {
		t.Fatalf("expected to find a CAS protocol: %s", res)
	}
	t.Logf("found: %s\n%s", res, FormatStrategy(res.Strategy))

	// Independently re-verify the synthesized protocol with the checker
	// under all four input assignments.
	sp := &StrategyProtocol{ProtoName: "synth-cas", N: 2, Strategy: res.Strategy}
	for bits := 0; bits < 4; bits++ {
		inputs := []model.Value{model.Value(bits & 1), model.Value((bits >> 1) & 1)}
		cr := check.Consensus(sp, casObject(), inputs, check.Options{})
		if !cr.OK {
			t.Fatalf("synthesized protocol fails recheck on inputs %v: %v", inputs, cr.Violation)
		}
	}
}

// TestSynthFindsAugQueueProtocol: second positive control. With an
// augmented queue, "enqueue your input, peek, decide" is a depth-2
// protocol; the searcher must discover it. (At n=3 the search space no
// longer closes in reasonable time — the exhaustive model checker covers
// the n-process protocol instead.)
func TestSynthFindsAugQueueProtocol(t *testing.T) {
	q := model.NewAugmentedQueue("augqueue", nil)
	res := Search(q, Params{Procs: 2, Depth: 2, PreferOps: true})
	if !res.Found {
		t.Fatalf("expected to find an augmented-queue protocol: %s", res)
	}
	t.Logf("found: %s\n%s", res, FormatStrategy(res.Strategy))
}

// TestSynthNoRegisterConsensus is the Theorem 2 evidence: no wait-free
// two-process binary consensus protocol over atomic read/write registers
// exists within the searched bounds.
func TestSynthNoRegisterConsensus(t *testing.T) {
	tests := []struct {
		name  string
		regs  int
		depth int
	}{
		{name: "1reg-depth3", regs: 1, depth: 3},
		{name: "2reg-depth2", regs: 2, depth: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if testing.Short() && tt.depth >= 3 {
				t.Skip("minute-scale search; skipped in -short mode")
			}
			init := make([]model.Value, tt.regs)
			mem := model.NewMemory("rw", init)
			res := Search(mem, Params{Procs: 2, Depth: tt.depth})
			if res.Found {
				t.Fatalf("Theorem 2 contradicted?! found:\n%s", FormatStrategy(res.Strategy))
			}
			if !res.Complete {
				t.Fatalf("search did not complete: %s", res)
			}
			t.Logf("%s: %s (menu %d actions)", tt.name, res, res.MenuSize)
		})
	}
}

// TestSynthNoQueue3Consensus is the Theorem 11 evidence: no wait-free
// three-process binary consensus protocol over a FIFO queue within bounds.
func TestSynthNoQueue3Consensus(t *testing.T) {
	if testing.Short() {
		t.Skip("minute-scale search; skipped in -short mode")
	}
	q := model.NewQueue("queue", nil)
	res := Search(q, Params{Procs: 3, Depth: 2})
	if res.Found {
		t.Fatalf("Theorem 11 contradicted?! found:\n%s", FormatStrategy(res.Strategy))
	}
	if !res.Complete {
		t.Fatalf("search did not complete: %s", res)
	}
	t.Logf("%s", res)
}

// TestSynthNoInterferingRMW3Consensus is the Theorem 6 / Corollary 8
// evidence: interfering read-modify-write primitives cannot solve
// three-process consensus within bounds. The combined-family search space
// does not close in reasonable time, so each family is searched separately;
// the any-combination claim is Theorem 6 itself, whose interference
// hypothesis internal/interfere verifies exactly for the full families.
func TestSynthNoInterferingRMW3Consensus(t *testing.T) {
	swap := model.SwapRMW
	swap.Operands = [][2]model.Value{{0, model.None}, {1, model.None}}
	faa := model.FetchAndAdd
	faa.Operands = [][2]model.Value{{1, model.None}}
	tests := []struct {
		name string
		fns  []model.RMWFn
	}{
		{name: "test-and-set", fns: []model.RMWFn{model.TestAndSet}},
		{name: "swap", fns: []model.RMWFn{swap}},
		{name: "fetch-and-add", fns: []model.RMWFn{faa}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mem := model.NewMemory("rmw-reg", []model.Value{0},
				model.WithRMW(tt.fns...), model.WithoutRW())
			res := Search(mem, Params{Procs: 3, Depth: 2})
			if res.Found {
				t.Fatalf("Theorem 6 contradicted?! found:\n%s", FormatStrategy(res.Strategy))
			}
			if !res.Complete {
				t.Fatalf("search did not complete: %s", res)
			}
			t.Logf("%s: %s", tt.name, res)
		})
	}
}

// TestSynthNoFIFOChannel2Consensus is the Section 3.1 message-passing
// evidence (after Dolev, Dwork and Stockmeyer): two processes connected by
// point-to-point FIFO channels cannot reach wait-free consensus.
func TestSynthNoFIFOChannel2Consensus(t *testing.T) {
	ch := model.NewChannels("p2p", 2)
	res := Search(ch, Params{Procs: 2, Depth: 2})
	if res.Found {
		t.Fatalf("DDS result contradicted?! found:\n%s", FormatStrategy(res.Strategy))
	}
	if !res.Complete {
		t.Fatalf("search did not complete: %s", res)
	}
	t.Logf("%s", res)
}
