package synth_test

import (
	"fmt"

	"waitfree/internal/model"
	"waitfree/internal/synth"
)

// ExampleSearch runs the Theorem 2 search at its smallest bound: no
// deterministic wait-free 2-process consensus protocol exists over a single
// read/write register within one operation per process.
func ExampleSearch() {
	mem := model.NewMemory("rw", []model.Value{0})
	res := synth.Search(mem, synth.Params{Procs: 2, Depth: 1})
	fmt.Println(res.Found, res.Complete)
	// Output: false true
}
