// Package synth searches exhaustively for wait-free binary consensus
// protocols of bounded depth over a given shared object.
//
// This is the machine-checkable counterpart of the paper's impossibility
// theorems. A theorem such as "there is no wait-free solution to two-process
// consensus by atomic read/write registers" (Theorem 2) quantifies over all
// protocols; synth makes the quantifier finite by bounding the number of
// operations a process may execute before deciding (the depth d) and the
// operation menu (registers, value domain), then searches the entire space
// of deterministic protocols. An exhausted search is a proof that no
// protocol exists *within those bounds*; the paper's valency argument
// explains why no bound ever suffices.
//
// The search is an AND-OR game with a consistency constraint. A protocol is
// a strategy: a function from a process's knowledge — its pid, its input,
// and the sequence of responses it has received — to its next action (an
// operation from the menu, or a decision). The adversary (the scheduler)
// picks which undecided process moves; the search must satisfy *every*
// scheduler choice under *one* strategy, across *all* input assignments.
// Chronological backtracking over strategy assignments explores exactly the
// space of deterministic protocols once.
//
// We search for binary consensus (inputs in {0,1}) with the paper's
// partial-correctness conditions: agreement, and validity in the strong form
// that the decided value must be the input of a process that has taken a
// step. Binary consensus is the weakest variant, so its impossibility
// implies impossibility of the election form used by the positive protocols.
package synth

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"waitfree/internal/model"
)

// Params configures a synthesis run.
type Params struct {
	// Procs is the number of processes n.
	Procs int
	// Depth is the maximum number of operations a process may execute
	// before it must decide.
	Depth int
	// NodeBudget caps search nodes; 0 means 200 million. If exceeded the
	// result is inconclusive (Complete=false).
	NodeBudget int64
	// PreferOps orders operations before decisions in the candidate menu.
	// For exhaustive (impossibility) searches the order is irrelevant; for
	// positive discovery, information-gathering protocols are found sooner.
	PreferOps bool
}

// Result reports a synthesis outcome.
type Result struct {
	// Found is true if a correct protocol within bounds exists.
	Found bool
	// Strategy maps knowledge keys to actions for a found protocol.
	Strategy map[string]model.Action
	// Complete is true if the search space was exhausted. Found==false
	// with Complete==true is the impossibility verdict.
	Complete bool
	// Nodes is the number of search nodes visited.
	Nodes int64
	// MenuSize is the per-process action menu size (for reporting).
	MenuSize int
}

// String renders the verdict.
func (r Result) String() string {
	switch {
	case r.Found:
		return fmt.Sprintf("protocol FOUND (%d knowledge states, %d nodes searched)",
			len(r.Strategy), r.Nodes)
	case r.Complete:
		return fmt.Sprintf("NO protocol exists within bounds (search exhausted, %d nodes)", r.Nodes)
	default:
		return fmt.Sprintf("INCONCLUSIVE (node budget exhausted at %d nodes)", r.Nodes)
	}
}

// cfg is one reachable configuration under one input assignment.
type cfg struct {
	obj      string
	resps    []string // per-process response history, encoded
	depth    []int8   // per-process operation count
	decided  []bool
	moved    []bool
	inputs   []model.Value
	firstDec model.Value
}

// key canonically encodes the configuration. Process knowledge determines
// decided/moved/depth implicitly, but they are cheap to include and keep the
// encoding self-evident; inputs must be included because one strategy serves
// all input assignments.
func (c *cfg) key() string {
	var b strings.Builder
	b.WriteString(c.obj)
	b.WriteByte('#')
	for p, r := range c.resps {
		if p > 0 {
			b.WriteByte('&')
		}
		if c.decided[p] {
			b.WriteByte('D')
		}
		b.WriteString(strconv.Itoa(int(c.inputs[p])))
		b.WriteString(r)
	}
	b.WriteByte('#')
	b.WriteString(strconv.Itoa(int(c.firstDec)))
	return b.String()
}

func (c *cfg) clone() *cfg {
	return &cfg{
		obj:      c.obj,
		resps:    append([]string(nil), c.resps...),
		depth:    append([]int8(nil), c.depth...),
		decided:  append([]bool(nil), c.decided...),
		moved:    append([]bool(nil), c.moved...),
		inputs:   c.inputs,
		firstDec: c.firstDec,
	}
}

// knowledge returns the strategy key for process p in c.
func (c *cfg) knowledge(p int) string {
	return strconv.Itoa(p) + "|" + strconv.Itoa(int(c.inputs[p])) + "|" + c.resps[p]
}

// obligation is a pending proof obligation: all scheduler choices >= minPid
// at configuration c must succeed.
type obligation struct {
	c      *cfg
	minPid int
	next   *obligation
}

type searcher struct {
	obj      model.Object
	params   Params
	menus    [][]model.Action // per-pid action menus (decides then ops)
	strategy map[string]model.Action
	nodes    int64
	overflow bool

	// Verified-subtree memoization, aligned with the strategy trail. An
	// entry in memo means "every schedule from this configuration satisfies
	// safety under the strategy assignments in force when it was added".
	// A proof can only depend on assignments that existed at its creation,
	// so entries stay valid while those assignments stand; when the search
	// retracts an assignment it discards every entry created after it
	// (memoTrail records creation order).
	memo      map[string]bool
	memoTrail []string
}

// Search runs the synthesis. obj supplies the operation menu via Ops.
func Search(obj model.Object, params Params) Result {
	if params.NodeBudget == 0 {
		params.NodeBudget = 200_000_000
	}
	n := params.Procs
	s := &searcher{
		obj:      obj,
		params:   params,
		strategy: make(map[string]model.Action),
		memo:     make(map[string]bool),
	}
	s.menus = make([][]model.Action, n)
	for p := 0; p < n; p++ {
		decides := []model.Action{model.Decide(0), model.Decide(1)}
		var ops []model.Action
		for _, op := range obj.Ops(n, p) {
			ops = append(ops, model.Invoke(op))
		}
		if params.PreferOps {
			s.menus[p] = append(ops, decides...)
		} else {
			// Decisions first: they fail fast and found protocols stay short.
			s.menus[p] = append(decides, ops...)
		}
	}

	// Top-level conjunction: one obligation per input assignment, sharing
	// one strategy.
	var head *obligation
	for bits := (1 << n) - 1; bits >= 0; bits-- {
		inputs := make([]model.Value, n)
		for p := 0; p < n; p++ {
			inputs[p] = model.Value((bits >> p) & 1)
		}
		c := &cfg{
			obj:      obj.Init(),
			resps:    make([]string, n),
			depth:    make([]int8, n),
			decided:  make([]bool, n),
			moved:    make([]bool, n),
			inputs:   inputs,
			firstDec: model.None,
		}
		head = &obligation{c: c, minPid: 0, next: head}
	}

	found := s.solve(head)
	res := Result{
		Found:    found,
		Complete: !s.overflow,
		Nodes:    s.nodes,
		MenuSize: len(s.menus[0]),
	}
	if found {
		res.Strategy = s.strategy
		res.Complete = true
	}
	return res
}

// solve discharges the obligation list under the current partial strategy,
// extending it as needed. It returns true if every obligation is satisfied.
func (s *searcher) solve(ob *obligation) bool {
	if ob == nil {
		return true
	}
	s.nodes++
	if s.nodes > s.params.NodeBudget {
		s.overflow = true
		return false
	}
	c, minPid := ob.c, ob.minPid

	var ckey string
	if minPid == 0 {
		ckey = c.key()
		if s.memo[ckey] {
			return s.solve(ob.next)
		}
	}

	// Find the next scheduler branch to expand at c.
	p := minPid
	for p < s.params.Procs && c.decided[p] {
		p++
	}
	if p >= s.params.Procs {
		// All branches of c verified along this path: memoize the subtree.
		k := c.key()
		if !s.memo[k] {
			s.memo[k] = true
			s.memoTrail = append(s.memoTrail, k)
		}
		return s.solve(ob.next)
	}
	rest := &obligation{c: c, minPid: p + 1, next: ob.next}

	k := c.knowledge(p)
	if act, ok := s.strategy[k]; ok {
		child, ok := s.apply(c, p, act)
		if !ok {
			return false
		}
		return s.solve(&obligation{c: child, minPid: 0, next: rest})
	}

	// EXISTS: choose p's action at this fresh knowledge state.
	mustDecide := int(c.depth[p]) >= s.params.Depth
	for _, act := range s.menus[p] {
		if mustDecide && act.Kind != model.ActDecide {
			continue
		}
		child, ok := s.apply(c, p, act)
		if !ok {
			continue
		}
		memoMark := len(s.memoTrail)
		s.strategy[k] = act
		if s.solve(&obligation{c: child, minPid: 0, next: rest}) {
			return true
		}
		// Retract the assignment and every subtree proof completed after
		// it (such proofs may depend on it).
		delete(s.strategy, k)
		for _, mk := range s.memoTrail[memoMark:] {
			delete(s.memo, mk)
		}
		s.memoTrail = s.memoTrail[:memoMark]
		if s.overflow {
			return false
		}
	}
	return false
}

// apply executes p's action on c, returning the successor configuration and
// whether the action is immediately safe (agreement and validity hold).
func (s *searcher) apply(c *cfg, p int, act model.Action) (*cfg, bool) {
	child := c.clone()
	child.moved[p] = true
	if act.Kind == model.ActDecide {
		if c.firstDec != model.None && c.firstDec != act.Dec {
			return nil, false // agreement
		}
		owned := false
		for j, in := range c.inputs {
			if in == act.Dec && (c.moved[j] || j == p) {
				owned = true
				break
			}
		}
		if !owned {
			return nil, false // validity
		}
		child.decided[p] = true
		if child.firstDec == model.None {
			child.firstDec = act.Dec
		}
		return child, true
	}
	var resp model.Value
	child.obj, resp = s.obj.Apply(c.obj, act.Op)
	child.resps[p] = c.resps[p] + "," + strconv.Itoa(int(resp))
	child.depth[p]++
	return child, true
}

// FormatStrategy renders a found protocol for human inspection, sorted by
// process and knowledge depth.
func FormatStrategy(strategy map[string]model.Action) string {
	keys := make([]string, 0, len(strategy))
	for k := range strategy {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for _, k := range keys {
		act := strategy[k]
		if act.Kind == model.ActDecide {
			fmt.Fprintf(&b, "  %-24s -> decide %d\n", k, act.Dec)
		} else {
			fmt.Fprintf(&b, "  %-24s -> %s\n", k, act.Op)
		}
	}
	return b.String()
}
