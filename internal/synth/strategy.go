package synth

import (
	"strconv"
	"strings"

	"waitfree/internal/model"
)

// StrategyProtocol adapts a synthesized strategy into a model.Protocol so it
// can be independently re-verified by internal/check. The local state is the
// knowledge key itself.
type StrategyProtocol struct {
	ProtoName string
	N         int
	Strategy  map[string]model.Action
}

var _ model.Protocol = (*StrategyProtocol)(nil)

// Name implements model.Protocol.
func (sp *StrategyProtocol) Name() string { return sp.ProtoName }

// Procs implements model.Protocol.
func (sp *StrategyProtocol) Procs() int { return sp.N }

// Init implements model.Protocol.
func (sp *StrategyProtocol) Init(pid int, input model.Value) string {
	return strconv.Itoa(pid) + "|" + strconv.Itoa(int(input)) + "|"
}

// Step implements model.Protocol.
func (sp *StrategyProtocol) Step(pid int, local string) model.Action {
	act, ok := sp.Strategy[local]
	if !ok {
		// The synthesized strategy covers every knowledge state reachable
		// under the searched input assignments; a miss means the protocol
		// is being run outside its domain.
		panic("synth: strategy has no action for knowledge state " + local)
	}
	return act
}

// Next implements model.Protocol.
func (sp *StrategyProtocol) Next(pid int, local string, resp model.Value) string {
	return local + "," + strconv.Itoa(int(resp))
}

// Knowledge helpers for reporting.

// KnowledgeDepth returns the number of responses embedded in a key.
func KnowledgeDepth(key string) int {
	i := strings.LastIndexByte(key, '|')
	if i < 0 || i == len(key)-1 {
		return 0
	}
	return strings.Count(key[i+1:], ",")
}
