package synth

import (
	"testing"

	"waitfree/internal/model"
)

// TestSynthNoAssign2For3Procs is the Theorem 22 evidence at m=2:
// 2-register atomic assignment cannot solve (2m-1)=3-process consensus.
// Each process owns one private register and one register shared with each
// other process; its menu offers its own atomic assignments plus reads.
// The searched depth is 2 (assign + one read before deciding); Theorem 22's
// counting argument covers all depths.
func TestSynthNoAssign2For3Procs(t *testing.T) {
	if testing.Short() {
		t.Skip("minute-scale search; skipped in -short mode")
	}
	// Registers: priv0..priv2 at 0..2, pair{0,1}=3, pair{0,2}=4, pair{1,2}=5.
	pair := map[[2]int]int{{0, 1}: 3, {0, 2}: 4, {1, 2}: 5}
	pairOf := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return pair[[2]int{i, j}]
	}
	// Assignment sets: per process, one 2-register set per other process
	// ({priv_i, pair_ij}); sets are indexed pid*2+k.
	var sets [][]int
	setIdx := map[[2]int]int{}
	for i := 0; i < 3; i++ {
		k := 0
		for j := 0; j < 3; j++ {
			if j == i {
				continue
			}
			setIdx[[2]int{i, k}] = len(sets)
			sets = append(sets, []int{i, pairOf(i, j)})
			k++
		}
	}
	init := make([]model.Value, 6)
	for i := range init {
		init[i] = model.None
	}
	mem := model.NewMemory("assign2", init,
		model.WithAssignSets(sets...), model.WithMenuValues(0, 1))
	obj := model.Restrict(mem, func(n, pid int, op model.Op) bool {
		switch op.Kind {
		case "assign":
			// Only this process's own assignment sets.
			return int(op.A) == setIdx[[2]int{pid, 0}] || int(op.A) == setIdx[[2]int{pid, 1}]
		case "read":
			return true
		case "write":
			return false // only multi-assignment and reads, per Section 3.6
		}
		return false
	})
	// Measured: the space does not close even at 400M nodes, so this search
	// documents a searched region rather than a completed impossibility
	// verdict; Theorem 22's counting argument carries the claim (see
	// EXPERIMENTS.md E11). The budget is kept modest accordingly.
	res := Search(obj, Params{Procs: 3, Depth: 2, NodeBudget: 60_000_000})
	if res.Found {
		t.Fatalf("Theorem 22 contradicted?! found:\n%s", FormatStrategy(res.Strategy))
	}
	if !res.Complete {
		t.Skipf("search inconclusive within budget (as expected): %s", res)
	}
	t.Logf("%s", res)
}
