package msgchan

import (
	"fmt"
	"math/bits"
	"sync"
)

// Hypercube simulates the message-passing architecture of Section 3.3's
// impossibility discussion (after the Cosmic Cube and Connection Machine
// citations): 2^dim nodes, a FIFO link between nodes differing in one
// address bit, and deterministic dimension-order routing. All inter-node
// communication reduces to the shared FIFO queues of the links — which is
// precisely why, by Theorem 11, such an architecture cannot solve
// three-process wait-free consensus or implement any object that can.
type Hypercube struct {
	dim int
	n   int

	mu    sync.Mutex
	links map[[2]int][]packet // FIFO per directed link
	boxes [][]int64           // delivered messages per node
}

type packet struct {
	src, dst int
	payload  int64
}

// NewHypercube builds a hypercube with 2^dim nodes.
func NewHypercube(dim int) *Hypercube {
	h := &Hypercube{
		dim:   dim,
		n:     1 << dim,
		links: make(map[[2]int][]packet),
		boxes: make([][]int64, 1<<dim),
	}
	return h
}

// Nodes returns the node count.
func (h *Hypercube) Nodes() int { return h.n }

// route returns the next hop from cur toward dst: fix the lowest differing
// address bit (dimension-order routing, deadlock-free).
func (h *Hypercube) route(cur, dst int) int {
	diff := cur ^ dst
	if diff == 0 {
		return cur
	}
	return cur ^ (diff & -diff)
}

// Send injects a message from src toward dst onto src's first outgoing
// link.
func (h *Hypercube) Send(src, dst int, payload int64) {
	if src == dst {
		h.mu.Lock()
		h.boxes[dst] = append(h.boxes[dst], payload)
		h.mu.Unlock()
		return
	}
	next := h.route(src, dst)
	h.mu.Lock()
	key := [2]int{src, next}
	h.links[key] = append(h.links[key], packet{src: src, dst: dst, payload: payload})
	h.mu.Unlock()
}

// Step advances the fabric one hop-cycle: each directed link delivers its
// head packet to the neighbor, which either accepts it (destination
// reached) or forwards it onto its next link. It returns the number of
// packets moved; zero means the fabric is quiescent.
func (h *Hypercube) Step() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	moved := 0
	// Collect heads first so a packet moves at most one hop per Step.
	type hop struct {
		key [2]int
		p   packet
	}
	var hops []hop
	for key, q := range h.links {
		if len(q) > 0 {
			hops = append(hops, hop{key: key, p: q[0]})
		}
	}
	for _, hp := range hops {
		q := h.links[hp.key]
		h.links[hp.key] = q[1:]
		cur := hp.key[1]
		if cur == hp.p.dst {
			h.boxes[cur] = append(h.boxes[cur], hp.p.payload)
		} else {
			next := h.route(cur, hp.p.dst)
			nk := [2]int{cur, next}
			h.links[nk] = append(h.links[nk], hp.p)
		}
		moved++
	}
	return moved
}

// Run steps the fabric until quiescent (or the hop budget runs out),
// returning the number of cycles taken.
func (h *Hypercube) Run(budget int) int {
	for c := 1; c <= budget; c++ {
		if h.Step() == 0 {
			return c
		}
	}
	return budget
}

// Recv pops the next delivered message at node, or NoMessage.
func (h *Hypercube) Recv(node int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.boxes[node]) == 0 {
		return NoMessage
	}
	v := h.boxes[node][0]
	h.boxes[node] = h.boxes[node][1:]
	return v
}

// Distance returns the hop distance between two nodes (Hamming distance of
// their addresses).
func (h *Hypercube) Distance(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// String renders the topology size.
func (h *Hypercube) String() string {
	return fmt.Sprintf("hypercube(dim=%d, nodes=%d)", h.dim, h.n)
}
