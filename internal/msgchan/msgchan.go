// Package msgchan is the native message-passing substrate of Sections 3.1
// and 3.3: point-to-point FIFO channels (the communication fabric of
// hypercube-style architectures) and ordered broadcast.
//
// The paper's classification: point-to-point FIFO channels cannot solve
// two-process wait-free consensus, and by Theorem 11 the shared FIFO queues
// of message-passing architectures cannot solve three-process consensus —
// so such architectures are not universal. Broadcast with totally-ordered
// delivery, in contrast, solves n-process consensus for every n
// (internal/protocols.BroadcastConsensus is the model-checked form;
// Consensus below is the native form).
//
//wf:blocking simulated message-passing substrate: delivery waits on channel communication by construction
package msgchan

import (
	"sync"
)

// NoMessage is returned by a receive on an empty channel; receives are
// total (non-blocking), per Section 2.2.
const NoMessage int64 = -1 << 62

// P2P is an n-process matrix of point-to-point FIFO channels.
type P2P struct {
	mu    sync.Mutex
	n     int
	queue [][][]int64 // queue[from][to]
}

// NewP2P builds the channel matrix for n processes.
func NewP2P(n int) *P2P {
	q := make([][][]int64, n)
	for i := range q {
		q[i] = make([][]int64, n)
	}
	return &P2P{n: n, queue: q}
}

// Send appends v to the channel from -> to.
func (c *P2P) Send(from, to int, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue[from][to] = append(c.queue[from][to], v)
}

// Recv pops the head of the channel from -> at, or NoMessage.
func (c *P2P) Recv(at, from int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queue[from][at]
	if len(q) == 0 {
		return NoMessage
	}
	v := q[0]
	c.queue[from][at] = q[1:]
	return v
}

// Broadcast is ordered (atomic) broadcast: every process observes all
// broadcast messages in one global total order, consuming them through its
// own cursor.
type Broadcast struct {
	mu      sync.Mutex
	log     []int64
	cursors []int
}

// NewBroadcast builds an ordered-broadcast object for n processes.
func NewBroadcast(n int) *Broadcast {
	return &Broadcast{cursors: make([]int, n)}
}

// Send appends v to the global order.
func (b *Broadcast) Send(v int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.log = append(b.log, v)
}

// Recv returns the next undelivered message for process at, or NoMessage.
func (b *Broadcast) Recv(at int) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cursors[at] >= len(b.log) {
		return NoMessage
	}
	v := b.log[b.cursors[at]]
	b.cursors[at]++
	return v
}

// Consensus is n-process consensus from ordered broadcast: broadcast your
// input, decide the first message delivered. It satisfies the
// consensus.Object contract and is wait-free (each Decide is one send and
// one receive; the receive cannot miss because the caller's own broadcast
// precedes it).
type Consensus struct {
	bc *Broadcast
}

// NewConsensus builds an n-process ordered-broadcast consensus object.
func NewConsensus(n int) *Consensus {
	return &Consensus{bc: NewBroadcast(n)}
}

// Decide implements consensus.Object.
func (c *Consensus) Decide(pid int, input int64) int64 {
	c.bc.Send(input)
	v := c.bc.Recv(pid)
	if v == NoMessage {
		panic("msgchan: broadcast consensus missed its own message")
	}
	return v
}
