package msgchan

import (
	"math/rand"
	"testing"
)

func TestHypercubeRouting(t *testing.T) {
	h := NewHypercube(3)
	if h.Nodes() != 8 {
		t.Fatalf("nodes = %d", h.Nodes())
	}
	h.Send(0, 7, 42) // distance 3: three hops
	cycles := h.Run(100)
	if cycles > 4 {
		t.Errorf("delivery took %d cycles, want <= hop distance + 1", cycles)
	}
	if got := h.Recv(7); got != 42 {
		t.Fatalf("recv = %d", got)
	}
	if got := h.Recv(7); got != NoMessage {
		t.Fatalf("second recv = %d", got)
	}
}

func TestHypercubeSelfSend(t *testing.T) {
	h := NewHypercube(2)
	h.Send(1, 1, 9)
	if got := h.Recv(1); got != 9 {
		t.Fatalf("self-send recv = %d", got)
	}
}

// TestHypercubeFIFOPerPath: two messages between the same endpoints arrive
// in order (links are FIFO queues and routing is deterministic).
func TestHypercubeFIFOPerPath(t *testing.T) {
	h := NewHypercube(4)
	for i := int64(0); i < 10; i++ {
		h.Send(3, 12, i)
	}
	h.Run(1000)
	for i := int64(0); i < 10; i++ {
		if got := h.Recv(12); got != i {
			t.Fatalf("position %d: recv = %d (FIFO violated)", i, got)
		}
	}
}

// TestHypercubeAllPairs: every pair of nodes can exchange messages, and
// delivery time tracks the Hamming distance.
func TestHypercubeAllPairs(t *testing.T) {
	h := NewHypercube(3)
	n := h.Nodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			h.Send(a, b, int64(a*100+b))
		}
	}
	h.Run(10_000)
	for b := 0; b < n; b++ {
		got := make(map[int64]bool)
		for {
			v := h.Recv(b)
			if v == NoMessage {
				break
			}
			got[v] = true
		}
		if len(got) != n {
			t.Fatalf("node %d received %d messages, want %d", b, len(got), n)
		}
		for a := 0; a < n; a++ {
			if !got[int64(a*100+b)] {
				t.Fatalf("node %d missing message from %d", b, a)
			}
		}
	}
}

// TestHypercubeConservation: random traffic neither loses nor duplicates
// messages.
func TestHypercubeConservation(t *testing.T) {
	h := NewHypercube(4)
	rng := rand.New(rand.NewSource(5))
	sent := make(map[int][]int64)
	for i := 0; i < 500; i++ {
		a, b := rng.Intn(h.Nodes()), rng.Intn(h.Nodes())
		v := int64(i)
		h.Send(a, b, v)
		sent[b] = append(sent[b], v)
	}
	h.Run(100_000)
	for b := 0; b < h.Nodes(); b++ {
		got := make(map[int64]bool)
		for {
			v := h.Recv(b)
			if v == NoMessage {
				break
			}
			if got[v] {
				t.Fatalf("node %d: duplicate %d", b, v)
			}
			got[v] = true
		}
		if len(got) != len(sent[b]) {
			t.Fatalf("node %d: received %d, want %d", b, len(got), len(sent[b]))
		}
	}
}

// TestHypercubeDistance pins the Hamming metric.
func TestHypercubeDistance(t *testing.T) {
	h := NewHypercube(4)
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 15, 4}, {5, 10, 4}, {3, 1, 1},
	}
	for _, tt := range tests {
		if got := h.Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
