package msgchan

import (
	"fmt"
	"sync"
	"testing"
)

func TestP2PFIFO(t *testing.T) {
	c := NewP2P(3)
	if got := c.Recv(1, 0); got != NoMessage {
		t.Fatalf("empty recv = %d", got)
	}
	c.Send(0, 1, 10)
	c.Send(0, 1, 11)
	c.Send(2, 1, 99)
	if got := c.Recv(1, 0); got != 10 {
		t.Errorf("recv = %d (FIFO per channel)", got)
	}
	if got := c.Recv(1, 2); got != 99 {
		t.Errorf("cross-channel recv = %d", got)
	}
	if got := c.Recv(1, 0); got != 11 {
		t.Errorf("recv = %d", got)
	}
	if got := c.Recv(0, 1); got != NoMessage {
		t.Errorf("reverse direction recv = %d", got)
	}
}

func TestBroadcastTotalOrder(t *testing.T) {
	b := NewBroadcast(3)
	b.Send(1)
	b.Send(2)
	b.Send(3)
	for p := 0; p < 3; p++ {
		for want := int64(1); want <= 3; want++ {
			if got := b.Recv(p); got != want {
				t.Fatalf("P%d delivery = %d, want %d (total order)", p, got, want)
			}
		}
		if got := b.Recv(p); got != NoMessage {
			t.Fatalf("P%d exhausted recv = %d", p, got)
		}
	}
}

// TestBroadcastConsensusStress: the native ordered-broadcast consensus
// agrees under concurrency and crashes, for several n.
func TestBroadcastConsensusStress(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for trial := 0; trial < 100; trial++ {
				obj := NewConsensus(n)
				live := trial%n + 1 // 1..n participants
				results := make([]int64, live)
				var wg sync.WaitGroup
				for p := 0; p < live; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						results[p] = obj.Decide(p, int64(100+p))
					}()
				}
				wg.Wait()
				for p := 1; p < live; p++ {
					if results[p] != results[0] {
						t.Fatalf("trial %d: disagreement %d vs %d", trial, results[0], results[p])
					}
				}
				if results[0] < 100 || results[0] >= int64(100+live) {
					t.Fatalf("trial %d: decided %d, not a participant input", trial, results[0])
				}
			}
		})
	}
}
