package automata

import (
	"waitfree/internal/seqspec"
)

// Process is the process automaton of Section 2.2: a sequential thread of
// control that emits CALL(P, op, X) for each operation of its script and
// consumes the matching RETURN. Its histories are well-formed by
// construction.
type Process struct {
	ProcName string
	ObjName  string
	Script   []seqspec.Op

	idx     int
	waiting bool
	// Results accumulates the responses received, for assertions.
	Results []int64
}

var _ Automaton = (*Process)(nil)

// Name implements Automaton.
func (p *Process) Name() string { return p.ProcName }

// Owns implements Automaton.
func (p *Process) Owns(e Event) bool {
	return (e.Kind == Call || e.Kind == Return) && e.Proc == p.ProcName
}

// Enabled implements Automaton.
func (p *Process) Enabled() []Event {
	if p.waiting || p.idx >= len(p.Script) {
		return nil
	}
	return []Event{{Kind: Call, Proc: p.ProcName, Obj: p.ObjName, Op: p.Script[p.idx]}}
}

// Apply implements Automaton.
func (p *Process) Apply(e Event) {
	switch e.Kind {
	case Call:
		p.waiting = true
	case Return:
		p.Results = append(p.Results, e.Res)
		p.waiting = false
		p.idx++
	}
}

// Done reports whether the script has completed.
func (p *Process) Done() bool { return p.idx >= len(p.Script) && !p.waiting }

// Object is the object automaton of Section 2.2: input INVOKE(P, op, X),
// output RESPOND(P, res, X). The wrapped sequential specification is
// applied when the response fires, which makes the object linearizable by
// construction (each operation takes effect atomically at its RESPOND,
// strictly between invocation and response). Under the sequential scheduler
// at most one invocation is ever pending; under the concurrent scheduler
// several may be, and any enabled response may fire.
type Object struct {
	ObjName string
	State   seqspec.State

	pending []Event // pending invocations, in arrival order
}

var _ Automaton = (*Object)(nil)

// NewObject builds the automaton for obj.
func NewObject(name string, obj seqspec.Object) *Object {
	return &Object{ObjName: name, State: obj.Init()}
}

// Name implements Automaton.
func (o *Object) Name() string { return o.ObjName }

// Owns implements Automaton.
func (o *Object) Owns(e Event) bool {
	return (e.Kind == Invoke || e.Kind == Respond) && e.Obj == o.ObjName
}

// Enabled implements Automaton: every pending invocation has an enabled
// response (operations are total).
func (o *Object) Enabled() []Event {
	var out []Event
	for _, inv := range o.pending {
		res := o.State.Clone().Apply(inv.Op)
		out = append(out, Event{Kind: Respond, Proc: inv.Proc, Obj: o.ObjName, Op: inv.Op, Res: res})
	}
	return out
}

// Apply implements Automaton.
func (o *Object) Apply(e Event) {
	switch e.Kind {
	case Invoke:
		o.pending = append(o.pending, e)
	case Respond:
		for i, inv := range o.pending {
			if inv.Proc == e.Proc {
				o.pending = append(o.pending[:i], o.pending[i+1:]...)
				break
			}
		}
		o.State.Apply(e.Op) // the operation takes effect now
	}
}

// SeqScheduler is the sequential scheduler of Figure 2-2, transcribed: it
// records CALLs, relays one INVOKE at a time guarded by the mutex
// component, records RESPONDs, and RETURNs them to the calling process.
type SeqScheduler struct {
	called    []Event
	responded []Event
	busy      bool
}

var _ Automaton = (*SeqScheduler)(nil)

// Name implements Automaton.
func (s *SeqScheduler) Name() string { return "sequential-scheduler" }

// Owns implements Automaton: the scheduler mediates all four event kinds.
func (s *SeqScheduler) Owns(e Event) bool {
	return e.Kind == Call || e.Kind == Respond || // inputs
		e.Kind == Invoke || e.Kind == Return // outputs
}

// Enabled implements Automaton, following Figure 2-2's preconditions:
// INVOKE requires mutex = idle and a recorded call; RETURN requires a
// recorded response.
func (s *SeqScheduler) Enabled() []Event {
	var out []Event
	if !s.busy {
		for _, c := range s.called {
			out = append(out, Event{Kind: Invoke, Proc: c.Proc, Obj: c.Obj, Op: c.Op})
		}
	}
	for _, r := range s.responded {
		out = append(out, Event{Kind: Return, Proc: r.Proc, Obj: r.Obj, Op: r.Op, Res: r.Res})
	}
	return out
}

// Apply implements Automaton, following Figure 2-2's postconditions.
func (s *SeqScheduler) Apply(e Event) {
	switch e.Kind {
	case Call:
		s.called = append(s.called, e)
	case Invoke:
		s.called = removeEvent(s.called, e.Proc)
		s.busy = true // mutex := busy
	case Respond:
		s.responded = append(s.responded, e)
		s.busy = false // mutex := idle
	case Return:
		s.responded = removeEvent(s.responded, e.Proc)
	}
}

// ConcScheduler is the concurrent scheduler of Section 2.3: Figure 2-2
// with the mutex component (and every pre/postcondition mentioning it)
// erased, so invocations relay asynchronously.
type ConcScheduler struct {
	called    []Event
	responded []Event
}

var _ Automaton = (*ConcScheduler)(nil)

// Name implements Automaton.
func (s *ConcScheduler) Name() string { return "concurrent-scheduler" }

// Owns implements Automaton.
func (s *ConcScheduler) Owns(e Event) bool {
	return e.Kind == Call || e.Kind == Respond || e.Kind == Invoke || e.Kind == Return
}

// Enabled implements Automaton.
func (s *ConcScheduler) Enabled() []Event {
	var out []Event
	for _, c := range s.called {
		out = append(out, Event{Kind: Invoke, Proc: c.Proc, Obj: c.Obj, Op: c.Op})
	}
	for _, r := range s.responded {
		out = append(out, Event{Kind: Return, Proc: r.Proc, Obj: r.Obj, Op: r.Op, Res: r.Res})
	}
	return out
}

// Apply implements Automaton.
func (s *ConcScheduler) Apply(e Event) {
	switch e.Kind {
	case Call:
		s.called = append(s.called, e)
	case Invoke:
		s.called = removeEvent(s.called, e.Proc)
	case Respond:
		s.responded = append(s.responded, e)
	case Return:
		s.responded = removeEvent(s.responded, e.Proc)
	}
}

func removeEvent(es []Event, proc string) []Event {
	for i, e := range es {
		if e.Proc == proc {
			return append(append([]Event(nil), es[:i]...), es[i+1:]...)
		}
	}
	return es
}
