// Package automata renders Section 2 of Herlihy's PODC 1988 paper
// executable: processes, objects and schedulers as I/O automata
// (after Lynch & Tuttle), composed into the sequential and concurrent
// systems of Figures 2-1 and 2-2.
//
// An I/O automaton has input events (which can never be disabled) and
// output events (enabled by its current state); a composition steps all
// components that share an event. The paper's sequential scheduler
// (Figure 2-2) relays CALLs as INVOKEs one at a time, guarded by a mutex
// component; the concurrent scheduler is the same automaton with the mutex
// erased — which is the entire formal difference between "sequential" and
// "concurrent" systems, and why linearizability is stated as "there exists
// a sequential history with the same process subhistories".
package automata

import (
	"fmt"
	"math/rand"
	"sort"

	"waitfree/internal/seqspec"
)

// EventKind enumerates the four event classes of Section 2.2.
type EventKind int

// Event kinds. CALL/RETURN connect processes to the scheduler;
// INVOKE/RESPOND connect the scheduler to objects.
const (
	Call EventKind = iota + 1
	Return
	Invoke
	Respond
)

func (k EventKind) String() string {
	switch k {
	case Call:
		return "CALL"
	case Return:
		return "RETURN"
	case Invoke:
		return "INVOKE"
	case Respond:
		return "RESPOND"
	}
	return "?"
}

// Event is one event of the composed system: a kind, the process and object
// names it is indexed by, and the operation or result it carries.
type Event struct {
	Kind EventKind
	Proc string
	Obj  string
	Op   seqspec.Op // for Call and Invoke
	Res  int64      // for Return and Respond
}

// String renders the event in the paper's notation.
func (e Event) String() string {
	switch e.Kind {
	case Call, Invoke:
		return fmt.Sprintf("%s(%s, %s, %s)", e.Kind, e.Proc, e.Op, e.Obj)
	default:
		return fmt.Sprintf("%s(%s, %d, %s)", e.Kind, e.Proc, e.Res, e.Obj)
	}
}

// Automaton is an executable deterministic I/O automaton.
type Automaton interface {
	// Name identifies the component.
	Name() string
	// Owns reports whether e belongs to this automaton's event signature
	// (input or output); composition steps exactly the owners.
	Owns(e Event) bool
	// Enabled returns the output events enabled in the current state.
	Enabled() []Event
	// Apply transitions on e, which must be owned (inputs may never be
	// refused; outputs must currently be enabled).
	Apply(e Event)
}

// System is a composition of automata with disjoint outputs (Section 2.1).
type System struct {
	parts   []Automaton
	history []Event
}

// NewSystem composes the given automata.
func NewSystem(parts ...Automaton) *System {
	return &System{parts: parts}
}

// Enabled returns all output events enabled in any component.
func (s *System) Enabled() []Event {
	var out []Event
	for _, p := range s.parts {
		out = append(out, p.Enabled()...)
	}
	return out
}

// Step applies e to every component that owns it and records it in the
// history.
func (s *System) Step(e Event) {
	for _, p := range s.parts {
		if p.Owns(e) {
			p.Apply(e)
		}
	}
	s.history = append(s.history, e)
}

// Run drives the system with the given scheduler choice function until no
// output is enabled or the step budget runs out; it returns the history.
// choose receives the enabled events (sorted deterministically) and picks
// one.
func (s *System) Run(budget int, choose func([]Event) Event) []Event {
	for i := 0; i < budget; i++ {
		enabled := s.Enabled()
		if len(enabled) == 0 {
			break
		}
		sortEvents(enabled)
		s.Step(choose(enabled))
	}
	return s.History()
}

// RunRandom drives the system with a seeded random scheduler.
func (s *System) RunRandom(budget int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	return s.Run(budget, func(es []Event) Event { return es[rng.Intn(len(es))] })
}

// History returns the events so far.
func (s *System) History() []Event {
	return append([]Event(nil), s.history...)
}

// Project returns the subhistory H|P of events involving process name p
// (the paper's H | P notation).
func Project(h []Event, proc string) []Event {
	var out []Event
	for _, e := range h {
		if e.Proc == proc {
			out = append(out, e)
		}
	}
	return out
}

// WellFormed reports whether the process subhistory alternates matching
// CALL and RETURN events starting with a CALL (Section 2.2).
func WellFormed(h []Event, proc string) bool {
	sub := Project(h, proc)
	wantCall := true
	for _, e := range sub {
		switch e.Kind {
		case Call:
			if !wantCall {
				return false
			}
			wantCall = false
		case Return:
			if wantCall {
				return false
			}
			wantCall = true
		}
	}
	return true
}

func sortEvents(es []Event) {
	sort.Slice(es, func(i, j int) bool { return es[i].String() < es[j].String() })
}
