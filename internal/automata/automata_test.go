package automata

import (
	"fmt"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func enq(v int64) seqspec.Op { return seqspec.Op{Kind: "enq", Args: []int64{v}} }

var deq = seqspec.Op{Kind: "deq"}

// buildQueueSystem composes two processes, a queue object and the given
// scheduler, mirroring Figure 2-1.
func buildQueueSystem(sched Automaton) (*System, []*Process) {
	p1 := &Process{ProcName: "P1", ObjName: "Q", Script: []seqspec.Op{enq(1), deq, enq(3)}}
	p2 := &Process{ProcName: "P2", ObjName: "Q", Script: []seqspec.Op{enq(2), deq, deq}}
	obj := NewObject("Q", seqspec.Queue{})
	return NewSystem(p1, p2, obj, sched), []*Process{p1, p2}
}

// TestSequentialSystemSerializes: under the Figure 2-2 scheduler, the
// history between INVOKE and RESPOND never contains another INVOKE — the
// mutex component serializes object access — and every process history is
// well-formed.
func TestSequentialSystemSerializes(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sys, procs := buildQueueSystem(&SeqScheduler{})
		h := sys.RunRandom(10_000, seed)
		busy := false
		for _, e := range h {
			switch e.Kind {
			case Invoke:
				if busy {
					t.Fatalf("seed %d: INVOKE while another operation is in progress", seed)
				}
				busy = true
			case Respond:
				busy = false
			}
		}
		for _, p := range procs {
			if !p.Done() {
				t.Fatalf("seed %d: %s did not finish", seed, p.Name())
			}
			if !WellFormed(h, p.ProcName) {
				t.Fatalf("seed %d: %s history not well-formed", seed, p.ProcName)
			}
		}
	}
}

// TestConcurrentSystemLinearizable: under the concurrent scheduler,
// invocations overlap, yet the object automaton (which takes effect at
// RESPOND) always yields a linearizable completed history — the Section
// 2.3 correctness condition, checked with the independent Wing–Gould
// checker using CALL/RETURN as the real-time interval.
func TestConcurrentSystemLinearizable(t *testing.T) {
	sawOverlap := false
	for seed := int64(0); seed < 80; seed++ {
		sys, procs := buildQueueSystem(&ConcScheduler{})
		h := sys.RunRandom(10_000, seed)
		for _, p := range procs {
			if !p.Done() {
				t.Fatalf("seed %d: %s did not finish", seed, p.Name())
			}
			if !WellFormed(h, p.ProcName) {
				t.Fatalf("seed %d: %s history not well-formed", seed, p.ProcName)
			}
		}
		// Detect genuine overlap (INVOKE before the previous RESPOND).
		depth := 0
		for _, e := range h {
			switch e.Kind {
			case Invoke:
				depth++
				if depth > 1 {
					sawOverlap = true
				}
			case Respond:
				depth--
			}
		}
		// Convert to the linearizability checker's event form.
		var events []linearize.Event
		type open struct {
			op seqspec.Op
			ts int64
		}
		pendingByProc := map[string]open{}
		clock := int64(0)
		pidOf := map[string]int{"P1": 1, "P2": 2}
		for _, e := range h {
			clock++
			switch e.Kind {
			case Call:
				pendingByProc[e.Proc] = open{op: e.Op, ts: clock}
			case Return:
				o := pendingByProc[e.Proc]
				events = append(events, linearize.Event{
					Pid: pidOf[e.Proc], Op: o.op, Resp: e.Res, Invoke: o.ts, Return: clock,
				})
				delete(pendingByProc, e.Proc)
			}
		}
		if res := linearize.Check(seqspec.Queue{}, events); !res.OK {
			for _, e := range h {
				t.Logf("  %s", e)
			}
			t.Fatalf("seed %d: concurrent-system history not linearizable", seed)
		}
	}
	if !sawOverlap {
		t.Error("concurrent scheduler never produced overlapping operations")
	}
}

// TestSequentialDeterminism: with a deterministic choice rule, the
// sequential system's responses are a function of the serialization order;
// running the same schedule twice gives identical histories.
func TestSequentialDeterminism(t *testing.T) {
	run := func() string {
		sys, _ := buildQueueSystem(&SeqScheduler{})
		h := sys.Run(10_000, func(es []Event) Event { return es[0] })
		s := ""
		for _, e := range h {
			s += e.String() + ";"
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Errorf("deterministic schedule produced different histories:\n%s\n%s", a, b)
	}
}

// TestProjectAndWellFormed exercise the history operators on a handmade
// history.
func TestProjectAndWellFormed(t *testing.T) {
	h := []Event{
		{Kind: Call, Proc: "P1", Obj: "Q", Op: enq(1)},
		{Kind: Call, Proc: "P2", Obj: "Q", Op: deq},
		{Kind: Return, Proc: "P1", Obj: "Q", Res: 0},
		{Kind: Return, Proc: "P2", Obj: "Q", Res: seqspec.Empty},
	}
	if got := len(Project(h, "P1")); got != 2 {
		t.Errorf("Project P1 = %d events", got)
	}
	if !WellFormed(h, "P1") || !WellFormed(h, "P2") {
		t.Error("well-formed history rejected")
	}
	bad := []Event{
		{Kind: Call, Proc: "P1", Obj: "Q", Op: enq(1)},
		{Kind: Call, Proc: "P1", Obj: "Q", Op: enq(2)}, // second CALL without RETURN
	}
	if WellFormed(bad, "P1") {
		t.Error("pipelined CALLs accepted as well-formed")
	}
}

// TestObjectTotality: the object automaton always has an enabled response
// for a pending invocation, even on an empty queue — Section 2.2's totality
// requirement.
func TestObjectTotality(t *testing.T) {
	obj := NewObject("Q", seqspec.Queue{})
	obj.Apply(Event{Kind: Invoke, Proc: "P1", Obj: "Q", Op: deq})
	es := obj.Enabled()
	if len(es) != 1 {
		t.Fatalf("enabled = %d events", len(es))
	}
	if es[0].Res != seqspec.Empty {
		t.Errorf("empty deq response = %d", es[0].Res)
	}
}

// TestEventStrings pins the paper-style rendering.
func TestEventStrings(t *testing.T) {
	e := Event{Kind: Call, Proc: "P1", Obj: "Q", Op: enq(7)}
	if got := e.String(); got != "CALL(P1, enq(7), Q)" {
		t.Errorf("String = %q", got)
	}
	r := Event{Kind: Respond, Proc: "P2", Obj: "Q", Res: 3}
	if got := r.String(); got != "RESPOND(P2, 3, Q)" {
		t.Errorf("String = %q", got)
	}
}

// TestMultiObjectSystem: two objects under one concurrent scheduler; events
// route by object name.
func TestMultiObjectSystem(t *testing.T) {
	p1 := &Process{ProcName: "P1", ObjName: "A", Script: []seqspec.Op{{Kind: "inc"}, {Kind: "get"}}}
	p2 := &Process{ProcName: "P2", ObjName: "B", Script: []seqspec.Op{{Kind: "inc"}, {Kind: "inc"}, {Kind: "get"}}}
	a := NewObject("A", seqspec.Counter{})
	b := NewObject("B", seqspec.Counter{})
	sys := NewSystem(p1, p2, a, b, &ConcScheduler{})
	sys.RunRandom(10_000, 1)
	if !p1.Done() || !p2.Done() {
		t.Fatal("processes did not finish")
	}
	if got := p1.Results[1]; got != 1 {
		t.Errorf("P1 get = %d, want 1", got)
	}
	if got := p2.Results[2]; got != 2 {
		t.Errorf("P2 get = %d, want 2", got)
	}
}

func ExampleSystem() {
	p := &Process{ProcName: "P1", ObjName: "Q", Script: []seqspec.Op{enq(7), deq}}
	sys := NewSystem(p, NewObject("Q", seqspec.Queue{}), &SeqScheduler{})
	h := sys.Run(100, func(es []Event) Event { return es[0] })
	for _, e := range h {
		fmt.Println(e)
	}
	// Output:
	// CALL(P1, enq(7), Q)
	// INVOKE(P1, enq(7), Q)
	// RESPOND(P1, 0, Q)
	// RETURN(P1, 0, Q)
	// CALL(P1, deq(), Q)
	// INVOKE(P1, deq(), Q)
	// RESPOND(P1, 7, Q)
	// RETURN(P1, 7, Q)
}
