package automata

import (
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// absHistory converts the A-object CALL/RETURN events of a system history
// into linearize events.
func absHistory(h []Event) []linearize.Event {
	var events []linearize.Event
	type open struct {
		op seqspec.Op
		ts int64
	}
	pend := map[string]open{}
	pidOf := map[string]int{"P1": 1, "P2": 2, "P3": 3}
	clock := int64(0)
	for _, e := range h {
		if e.Obj != "A" {
			continue
		}
		clock++
		switch e.Kind {
		case Call:
			pend[e.Proc] = open{op: e.Op, ts: clock}
		case Return:
			o := pend[e.Proc]
			events = append(events, linearize.Event{
				Pid: pidOf[e.Proc], Op: o.op, Resp: e.Res, Invoke: o.ts, Return: clock,
			})
		}
	}
	return events
}

// TestUniversalAutomataSequential: driven by one process under any
// schedule, the Figure 4-1/4-2 composition equals the sequential object.
func TestUniversalAutomataSequential(t *testing.T) {
	script := []seqspec.Op{
		{Kind: "enq", Args: []int64{7}},
		{Kind: "enq", Args: []int64{8}},
		{Kind: "deq"},
		{Kind: "deq"},
		{Kind: "deq"},
	}
	sys, procs, _ := NewUniversalSystem(seqspec.Queue{}, [][]seqspec.Op{script})
	sys.RunRandom(10_000, 3)
	if !procs[0].Done() {
		t.Fatal("process did not finish")
	}
	want := []int64{0, 0, 7, 8, seqspec.Empty}
	for i, w := range want {
		if procs[0].Results[i] != w {
			t.Errorf("op %d: got %d, want %d", i, procs[0].Results[i], w)
		}
	}
}

// TestUniversalAutomataExhaustive: every schedule of the two-process
// Figure 2-3 composition yields a linearizable abstract history — the
// universal construction verified at the paper's own level of abstraction.
func TestUniversalAutomataExhaustive(t *testing.T) {
	fresh := func() *System {
		sys, _, _ := NewUniversalSystem(seqspec.Queue{}, [][]seqspec.Op{
			{{Kind: "enq", Args: []int64{1}}, {Kind: "deq"}},
			{{Kind: "deq"}, {Kind: "enq", Args: []int64{2}}},
		})
		return sys
	}
	complete, prefixes := ExploreAll(fresh, 64, func(h []Event) {
		for _, p := range []string{"P1", "P2"} {
			if !WellFormed(h, p) {
				t.Fatalf("%s history not well-formed", p)
			}
		}
		if !linearize.Check(seqspec.Queue{}, absHistory(h)).OK {
			for _, e := range h {
				t.Logf("  %s", e)
			}
			t.Fatal("abstract history not linearizable")
		}
	})
	t.Logf("schedules=%d prefixes=%d", complete, prefixes)
	if complete == 0 {
		t.Fatal("no schedules explored")
	}
}

// TestUniversalAutomataCrash: a front end that stops being scheduled after
// its INVOKE (a crashed process, mid-operation) never blocks the others:
// in every schedule where P2 halts after its fetch-and-cons INVOKE, P1
// still completes all operations with linearizable results. The crashed
// operation DID take effect (fetch-and-cons linearizes at INVOKE), which
// the abstract history must reflect as a pending operation.
func TestUniversalAutomataCrash(t *testing.T) {
	// P2 calls one enq; the explorer halts it right after R's INVOKE by
	// filtering schedules: we emulate the halt by exploring the system with
	// P2's post-INVOKE events dropped from scheduling. Simplest faithful
	// rendering: run to quiescence but never fire P2's RETURN-enabling
	// steps — i.e. drop P2's RESPOND from R.
	sys, procs, _ := NewUniversalSystem(seqspec.Queue{}, [][]seqspec.Op{
		{{Kind: "enq", Args: []int64{1}}, {Kind: "deq"}, {Kind: "deq"}},
		{{Kind: "enq", Args: []int64{9}}},
	})
	steps := 0
	for steps < 10_000 {
		enabled := sys.Enabled()
		var pick *Event
		for i := range enabled {
			e := enabled[i]
			// Crash model: P2 took its INVOKE step but none after.
			if e.Proc == "P2" && e.Kind != Call && e.Kind != Invoke {
				continue
			}
			pick = &enabled[i]
			break
		}
		if pick == nil {
			break
		}
		sys.Step(*pick)
		steps++
	}
	if !procs[0].Done() {
		t.Fatal("P1 blocked by P2's crash — wait-freedom violated")
	}
	// P2's enq(9) linearized at its INVOKE; P1's two deqs must observe a
	// queue containing 1 and possibly 9. With P2's op pending, the
	// completed history plus the pending enq must linearize.
	h := sys.History()
	completed := absHistory(h)
	pending := []linearize.Event{{Pid: 2, Op: seqspec.Op{Kind: "enq", Args: []int64{9}}, Invoke: 0}}
	if !linearize.CheckWithPending(seqspec.Queue{}, completed, pending).OK {
		t.Fatal("post-crash abstract history not linearizable")
	}
}
