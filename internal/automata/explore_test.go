package automata

import (
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// TestExploreSequentialSystem exhaustively verifies the Figure 2-2
// scheduler over a small two-process queue system: in EVERY schedule,
// operations serialize (no overlapping INVOKE/RESPOND) and histories are
// well-formed.
func TestExploreSequentialSystem(t *testing.T) {
	fresh := func() *System {
		p1 := &Process{ProcName: "P1", ObjName: "Q", Script: []seqspec.Op{enq(1), deq}}
		p2 := &Process{ProcName: "P2", ObjName: "Q", Script: []seqspec.Op{enq(2), deq}}
		return NewSystem(p1, p2, NewObject("Q", seqspec.Queue{}), &SeqScheduler{})
	}
	complete, prefixes := ExploreAll(fresh, 64, func(h []Event) {
		busy := false
		for _, e := range h {
			switch e.Kind {
			case Invoke:
				if busy {
					t.Fatal("overlapping operations under the sequential scheduler")
				}
				busy = true
			case Respond:
				busy = false
			}
		}
		for _, p := range []string{"P1", "P2"} {
			if !WellFormed(h, p) {
				t.Fatalf("%s history not well-formed", p)
			}
		}
		if n := len(h); n != 16 {
			t.Fatalf("maximal history has %d events, want 16", n)
		}
	})
	t.Logf("schedules=%d prefixes=%d", complete, prefixes)
	if complete == 0 {
		t.Fatal("no complete schedules explored")
	}
}

// TestExploreConcurrentSystem exhaustively verifies Section 2.3 on the
// same system under the concurrent scheduler: every one of the (many more)
// schedules yields a linearizable completed history.
func TestExploreConcurrentSystem(t *testing.T) {
	fresh := func() *System {
		p1 := &Process{ProcName: "P1", ObjName: "Q", Script: []seqspec.Op{enq(1), deq}}
		p2 := &Process{ProcName: "P2", ObjName: "Q", Script: []seqspec.Op{deq, enq(2)}}
		return NewSystem(p1, p2, NewObject("Q", seqspec.Queue{}), &ConcScheduler{})
	}
	overlapped := 0
	complete, prefixes := ExploreAll(fresh, 64, func(h []Event) {
		depth := 0
		for _, e := range h {
			switch e.Kind {
			case Invoke:
				depth++
				if depth > 1 {
					overlapped++
				}
			case Respond:
				depth--
			}
		}
		var events []linearize.Event
		type open struct {
			op seqspec.Op
			ts int64
		}
		pend := map[string]open{}
		clock := int64(0)
		pidOf := map[string]int{"P1": 1, "P2": 2}
		for _, e := range h {
			clock++
			switch e.Kind {
			case Call:
				pend[e.Proc] = open{op: e.Op, ts: clock}
			case Return:
				o := pend[e.Proc]
				events = append(events, linearize.Event{
					Pid: pidOf[e.Proc], Op: o.op, Resp: e.Res, Invoke: o.ts, Return: clock,
				})
			}
		}
		if !linearize.Check(seqspec.Queue{}, events).OK {
			for _, e := range h {
				t.Logf("  %s", e)
			}
			t.Fatal("non-linearizable history under the concurrent scheduler")
		}
	})
	t.Logf("schedules=%d prefixes=%d overlapped=%d", complete, prefixes, overlapped)
	if overlapped == 0 {
		t.Fatal("exploration never produced overlapping operations")
	}
}
