package automata

import (
	"fmt"

	"waitfree/internal/seqspec"
)

// Figures 4-1 and 4-2, literally: the universal construction as composed
// I/O automata. Each process's front end (Figure 4-1) turns a CALL of the
// abstract object into an INVOKE of fetch-and-cons on the representation
// object (Figure 4-2), receives the log of preceding invocations in the
// RESPOND, computes outgoing = apply(incoming, eval(log)), and RETURNs it.
//
// The paper's RESPOND carries the log itself; events here carry int64
// values, so the representation object responds with a stable handle that
// denotes the log value (an index into its append-only snapshot table).
// The front end dereferences the handle through LogAt — a value decoding,
// not shared mutable state: each handle denotes one immutable list.

// FACRep is the representation automaton of Figure 4-2: its state is the
// log of operations, most recent first; INVOKE(P, fetch-and-cons(op), R)
// prepends op, and the enabled RESPOND(P, log', R) carries (a handle to)
// the log as it was *before* the new operation — "the sequence following
// its argument's first element" (cdr).
//
// Fetch-and-cons is the paper's atomic primitive, so this automaton
// linearizes each operation at its INVOKE: the log updates and the
// response value are fixed there, and concurrent invocations from several
// front ends simply queue for their RESPONDs (Figure 4-2's replyto slot,
// generalized to the concurrent scheduler's world where several front ends
// may have invocations outstanding).
type FACRep struct {
	RepName string

	log     []seqspec.Op // most recent first
	pending []Event      // responses owed, one per invoking process
	// snapshots is the append-only table of log values; a RESPOND's Res is
	// an index into it.
	snapshots [][]seqspec.Op
}

var _ Automaton = (*FACRep)(nil)

// NewFACRep builds an empty-list representation object.
func NewFACRep(name string) *FACRep {
	return &FACRep{RepName: name, snapshots: [][]seqspec.Op{nil}}
}

// Name implements Automaton.
func (r *FACRep) Name() string { return r.RepName }

// Owns implements Automaton.
func (r *FACRep) Owns(e Event) bool {
	return (e.Kind == Invoke || e.Kind == Respond) && e.Obj == r.RepName
}

// Enabled implements Automaton: a RESPOND is enabled for every process
// owed one.
func (r *FACRep) Enabled() []Event {
	return append([]Event(nil), r.pending...)
}

// Apply implements Automaton.
func (r *FACRep) Apply(e Event) {
	switch e.Kind {
	case Invoke:
		// Linearization point: record cdr(log) for the response, prepend.
		r.snapshots = append(r.snapshots, append([]seqspec.Op(nil), r.log...))
		r.log = append([]seqspec.Op{e.Op}, r.log...)
		r.pending = append(r.pending, Event{
			Kind: Respond, Proc: e.Proc, Obj: r.RepName, Op: e.Op,
			Res: int64(len(r.snapshots) - 1),
		})
	case Respond:
		for i, p := range r.pending {
			if p.Proc == e.Proc {
				r.pending = append(append([]Event(nil), r.pending[:i]...), r.pending[i+1:]...)
				break
			}
		}
	}
}

// LogAt decodes a RESPOND handle into the log value it denotes.
func (r *FACRep) LogAt(handle int64) []seqspec.Op {
	return r.snapshots[handle]
}

// FrontEnd is the front-end automaton of Figure 4-1 for one process: state
// components incoming (the called operation), outgoing (the computed
// result) and pending (an invocation is outstanding).
type FrontEnd struct {
	ProcName string
	AbsName  string // the abstract object A
	Rep      *FACRep
	Seq      seqspec.Object // the deterministic sequential implementation

	incoming *seqspec.Op
	outgoing *int64
	pending  bool
}

var _ Automaton = (*FrontEnd)(nil)

// Name implements Automaton.
func (f *FrontEnd) Name() string { return "frontend-" + f.ProcName }

// Owns implements Automaton: the front end receives CALL(P, op, A) and
// RESPOND(P, log, R), and emits INVOKE(P, fetch-and-cons(op), R) and
// RETURN(P, res, A).
func (f *FrontEnd) Owns(e Event) bool {
	if e.Proc != f.ProcName {
		return false
	}
	switch e.Kind {
	case Call, Return:
		return e.Obj == f.AbsName
	case Invoke, Respond:
		return e.Obj == f.Rep.RepName
	}
	return false
}

// Enabled implements Automaton, per Figure 4-1: INVOKE is enabled when an
// operation is incoming and not yet pending; RETURN when outgoing is set.
func (f *FrontEnd) Enabled() []Event {
	var out []Event
	if f.incoming != nil && !f.pending && f.outgoing == nil {
		out = append(out, Event{Kind: Invoke, Proc: f.ProcName, Obj: f.Rep.RepName, Op: *f.incoming})
	}
	if f.outgoing != nil {
		out = append(out, Event{Kind: Return, Proc: f.ProcName, Obj: f.AbsName, Res: *f.outgoing})
	}
	return out
}

// Apply implements Automaton: the RESPOND case computes
// outgoing = apply(incoming, eval(log)), Figure 4-1's postcondition.
func (f *FrontEnd) Apply(e Event) {
	switch e.Kind {
	case Call:
		op := e.Op
		f.incoming = &op
	case Invoke:
		f.pending = true
	case Respond:
		log := f.Rep.LogAt(e.Res)
		state := f.Seq.Init() // eval: replay the log, oldest first
		for i := len(log) - 1; i >= 0; i-- {
			state.Apply(log[i])
		}
		res := state.Apply(*f.incoming) // apply(incoming, eval(log))
		f.outgoing = &res
		f.pending = false
	case Return:
		f.incoming = nil
		f.outgoing = nil
	}
}

// NewUniversalSystem composes Figure 2-3's implementation diagram: client
// processes with the given scripts, one front end per process, and the
// fetch-and-cons representation object. (The concurrent scheduler of
// Section 2.3 only relays events; here the front ends emit their INVOKEs
// directly, which is the same composition with the relay inlined.)
func NewUniversalSystem(seq seqspec.Object, scripts [][]seqspec.Op) (*System, []*Process, *FACRep) {
	rep := NewFACRep("R")
	parts := make([]Automaton, 0, 2*len(scripts)+1)
	procs := make([]*Process, len(scripts))
	for i, script := range scripts {
		name := fmt.Sprintf("P%d", i+1)
		procs[i] = &Process{ProcName: name, ObjName: "A", Script: script}
		parts = append(parts, procs[i], &FrontEnd{
			ProcName: name, AbsName: "A", Rep: rep, Seq: seq,
		})
	}
	parts = append(parts, rep)
	return NewSystem(parts...), procs, rep
}
