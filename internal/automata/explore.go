package automata

// Exhaustive schedule exploration for small systems: the paper's properties
// quantify over all schedules ("for each of its histories H", Section 2.3),
// and random runs only sample them. The explorer enumerates every schedule
// of a finite system, invoking a property check on each maximal history.

// ExploreAll enumerates every schedule of a system built by fresh (called
// once per explored prefix; it must return an equivalent new system) up to
// maxDepth steps, invoking onComplete with each maximal history. It returns
// the number of complete histories and prefixes explored.
//
// The explorer restarts the system and replays the prefix for every branch,
// trading time for not requiring component snapshots; components are
// deterministic functions of the event sequence, so replay is faithful.
func ExploreAll(fresh func() *System, maxDepth int, onComplete func(h []Event)) (complete, prefixes int) {
	var rec func(prefix []Event)
	rec = func(prefix []Event) {
		prefixes++
		sys := fresh()
		for _, e := range prefix {
			sys.Step(e)
		}
		enabled := sys.Enabled()
		if len(enabled) == 0 || len(prefix) >= maxDepth {
			complete++
			onComplete(sys.History())
			return
		}
		sortEvents(enabled)
		for _, e := range enabled {
			rec(append(append([]Event(nil), prefix...), e))
		}
	}
	rec(nil)
	return complete, prefixes
}
