// Package combine simulates a combining network, the NYU Ultracomputer /
// IBM RP3 architectural approach the paper discusses (Sections 1 and 5):
// fetch-and-add requests traveling through a binary tree of switches are
// combined pairwise, so the memory cell at the root sees one operation per
// crossing wave no matter how many processors issue requests — this is how
// fetch-and-add gets a wait-free hardware implementation [Kruskal, Rudolph
// & Snir]. The paper's point (Theorem 6/Corollary 8) is that even this
// machinery cannot make fetch-and-add universal: combining changes the
// constant factors, not the consensus number.
//
// The simulation is a synchronous wave model: requests that arrive within
// one wave are combined along their tree paths, the root applies the
// combined delta once, and responses are decombined on the way back as
// prefix sums — exactly the decomposition a hardware combining switch
// stores in its wait buffer.
//
//wf:blocking synchronous fabric simulation: requests traverse channels and a wave closes only when the fabric drains them
package combine

import (
	"runtime"
	"sync"
)

// request is one in-flight fetch-and-add.
type request struct {
	pid   int
	delta int64
	resp  chan int64
}

// Network is a software-simulated combining network with n input ports
// (one per process) feeding one shared cell.
type Network struct {
	n      int
	in     chan request
	stop   chan struct{}
	done   chan struct{}
	mu     sync.Mutex
	cell   int64
	waves  int64
	maxLen int
}

// New starts a combining network for n processes over a cell initialized
// to init. Close must be called to stop the switch fabric.
func New(n int, init int64) *Network {
	net := &Network{
		n:    n,
		in:   make(chan request, n),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		cell: init,
	}
	go net.fabric()
	return net
}

// Close shuts down the switch fabric.
func (net *Network) Close() {
	close(net.stop)
	<-net.done
}

// FetchAndAdd submits a request from process pid and returns the cell's
// value before the (combined) addition, exactly as a hardware
// fetch-and-add would.
func (net *Network) FetchAndAdd(pid int, delta int64) int64 {
	resp := make(chan int64, 1)
	net.in <- request{pid: pid, delta: delta, resp: resp}
	return <-resp
}

// Read returns the cell's current value (a zero-delta fetch-and-add).
func (net *Network) Read(pid int) int64 { return net.FetchAndAdd(pid, 0) }

// Stats reports the number of root-memory waves and the largest combined
// wave, the quantities the Ultracomputer design cares about: root traffic
// is one operation per wave regardless of fan-in.
func (net *Network) Stats() (waves int64, maxCombined int) {
	net.mu.Lock()
	defer net.mu.Unlock()
	return net.waves, net.maxLen
}

// fabric runs the switch tree: each iteration gathers the requests of one
// wave, combines them along the tree, applies the total at the root, and
// decombines responses as prefix sums.
func (net *Network) fabric() {
	defer close(net.done)
	for {
		// Block for the wave's first request (or shutdown).
		var wave []request
		select {
		case <-net.stop:
			return
		case r := <-net.in:
			wave = append(wave, r)
		}
		// Gather everything else that reached the leaves this wave; the
		// tree can combine at most one request per input port per wave.
		// The gather loop yields a few times so concurrently issued
		// requests can reach their leaves — the analogue of the wave
		// taking one switch-crossing time to traverse a level.
		seen := map[int]bool{wave[0].pid: true}
		patience := 3
	gather:
		//wf:bounded at most n admissions (seen caps one request per port) plus 3 patience decrements; every iteration consumes one of the two
		for len(wave) < net.n {
			select {
			case r := <-net.in:
				if seen[r.pid] {
					// A second request from the same port belongs to the
					// next wave; hardware would queue it at the leaf. Put
					// it back and close the wave.
					net.in <- r
					break gather
				}
				seen[r.pid] = true
				wave = append(wave, r)
			default:
				if patience == 0 {
					break gather
				}
				patience--
				runtime.Gosched()
			}
		}

		// Combine: the wave's requests meet pairwise at switches; the sum
		// of deltas reaches the root once. Decombine: the i-th request in
		// leaf order receives base + sum of deltas of requests before it —
		// the decomposition each switch's wait buffer reproduces.
		net.mu.Lock()
		base := net.cell
		var total int64
		for _, r := range wave {
			total += r.delta
		}
		net.cell = base + total
		net.waves++
		if len(wave) > net.maxLen {
			net.maxLen = len(wave)
		}
		net.mu.Unlock()

		prefix := base
		for _, r := range wave {
			r.resp <- prefix
			prefix += r.delta
		}
	}
}
