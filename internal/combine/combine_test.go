package combine

import (
	"sort"
	"sync"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func TestSequentialFetchAndAdd(t *testing.T) {
	net := New(1, 10)
	defer net.Close()
	if got := net.FetchAndAdd(0, 5); got != 10 {
		t.Errorf("first FAA = %d, want 10", got)
	}
	if got := net.FetchAndAdd(0, 3); got != 15 {
		t.Errorf("second FAA = %d, want 15", got)
	}
	if got := net.Read(0); got != 18 {
		t.Errorf("read = %d, want 18", got)
	}
}

// TestConcurrentConservation: concurrent combined adds lose nothing, and
// every response is a distinct prefix sum — the defining property of
// combining decomposition.
func TestConcurrentConservation(t *testing.T) {
	const n, per = 8, 200
	net := New(n, 0)
	defer net.Close()
	responses := make([][]int64, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				responses[p] = append(responses[p], net.FetchAndAdd(p, 1))
			}
		}()
	}
	wg.Wait()
	if got := net.Read(0); got != n*per {
		t.Fatalf("final = %d, want %d", got, n*per)
	}
	// With delta 1 everywhere, the multiset of responses must be exactly
	// {0, 1, ..., n*per-1}.
	var all []int64
	for p := 0; p < n; p++ {
		all = append(all, responses[p]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("response multiset broken at %d: %d", i, v)
		}
	}
}

// TestLinearizable: the network is a linearizable counter.
func TestLinearizable(t *testing.T) {
	const n = 4
	for trial := 0; trial < 10; trial++ {
		net := New(n, 0)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					op := seqspec.Op{Kind: "add", Args: []int64{int64(p + 1)}}
					ts := rec.Invoke()
					resp := net.FetchAndAdd(p, int64(p+1))
					rec.Complete(p, op, resp, ts)
				}
			}()
		}
		wg.Wait()
		net.Close()
		if res := linearize.Check(seqspec.Counter{}, rec.History()); !res.OK {
			t.Fatalf("trial %d: combining network history not linearizable", trial)
		}
	}
}

// TestCombiningHappens: under a concurrent burst, the root must see fewer
// waves than operations (combining is actually occurring).
func TestCombiningHappens(t *testing.T) {
	const n, per = 8, 100
	net := New(n, 0)
	defer net.Close()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				net.FetchAndAdd(p, 1)
			}
		}()
	}
	wg.Wait()
	waves, maxCombined := net.Stats()
	t.Logf("ops=%d waves=%d maxCombined=%d", n*per, waves, maxCombined)
	if waves >= n*per {
		t.Skip("no combining observed (single-core scheduling); demonstrative only")
	}
	if maxCombined < 2 {
		t.Skip("no wave combined more than one request")
	}
}

// TestCombinedFAAStillOnlyLevel2: the paper's punchline — a combined
// fetch-and-add is still just fetch-and-add. Two processes can use the
// network for consensus (Theorem 4 style), and the interference argument
// (checked in internal/interfere) caps it there. Here: the 2-process
// protocol over the network decides correctly under stress.
func TestCombinedFAAStillOnlyLevel2(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		net := New(2, 0)
		var results [2]int64
		inputs := [2]int64{int64(100 + trial), int64(200 + trial)}
		ann := consensusAnnounce{}
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				ann.publish(p, inputs[p])
				if net.FetchAndAdd(p, 1) == 0 {
					results[p] = inputs[p] // first adder wins
				} else {
					results[p] = ann.read(1 - p)
				}
			}()
		}
		wg.Wait()
		net.Close()
		if results[0] != results[1] {
			t.Fatalf("trial %d: disagreement %d vs %d", trial, results[0], results[1])
		}
	}
}

// consensusAnnounce is a tiny announce array for the network consensus test.
type consensusAnnounce struct {
	mu   sync.Mutex
	vals [2]int64
	set  [2]bool
}

func (a *consensusAnnounce) publish(p int, v int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.vals[p], a.set[p] = v, true
}

func (a *consensusAnnounce) read(p int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.set[p] {
		panic("combine test: winner did not announce")
	}
	return a.vals[p]
}

var _ = consensus.Object(nil) // the consensus package defines the contract
