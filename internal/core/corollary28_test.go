package core

import (
	"math/rand"
	"sync"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// TestCorollary28LevelTwoUniversalForTwo demonstrates Corollary 28: an
// object at level n of the hierarchy is universal in a system of n
// processes. Test-and-set and the plain FIFO queue solve only 2-process
// consensus (level 2) — yet through Figure 4-5 they implement arbitrary
// wait-free objects for two processes.
func TestCorollary28LevelTwoUniversalForTwo(t *testing.T) {
	factories := map[string]consensus.Factory{
		"test-and-set": func() consensus.Object { return consensus.NewTAS2() },
		"fifo-queue":   func() consensus.Object { return consensus.NewQueue2() },
		"fetch-and-add": func() consensus.Object {
			return consensus.NewFAA2()
		},
	}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				fac := NewConsFAC(2, factory)
				u := NewUniversal(seqspec.Bank{Accounts: 3}, fac, 2)
				var rec linearize.Recorder
				var wg sync.WaitGroup
				for p := 0; p < 2; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(trial*2 + p)))
						for i := 0; i < 8; i++ {
							var op seqspec.Op
							switch rng.Intn(3) {
							case 0:
								op = seqspec.Op{Kind: "deposit", Args: []int64{rng.Int63n(3), 1 + rng.Int63n(5)}}
							case 1:
								op = seqspec.Op{Kind: "transfer", Args: []int64{rng.Int63n(3), rng.Int63n(3), 1 + rng.Int63n(4)}}
							default:
								op = seqspec.Op{Kind: "total"}
							}
							ts := rec.Invoke()
							resp := u.Invoke(p, op)
							rec.Complete(p, op, resp, ts)
						}
					}()
				}
				wg.Wait()
				if res := linearize.Check(seqspec.Bank{Accounts: 3}, rec.History()); !res.OK {
					t.Fatalf("trial %d: 2-process universal object over %s not linearizable",
						trial, name)
				}
			}
		})
	}
}

// TestLevelTwoConsensusRejectsThird documents the other half of the
// boundary: a 2-process consensus object cannot serve a third process (the
// native protocols enforce their arity), which is why Figure 4-5 at n=3
// needs level-3-or-higher primitives.
func TestLevelTwoConsensusRejectsThird(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TAS2 accepted a third process")
		}
	}()
	obj := consensus.NewTAS2()
	obj.Decide(2, 99) // pid out of range for a level-2 protocol
}
