package core

import "waitfree/internal/seqspec"

// InvokeBatch executes ops on behalf of pid as one announced wave: every
// operation is consed individually (each gets its own linearization point,
// in program order), then a single replay pass settles the whole wave —
// one traversal publishes each earlier entry's response on its way down
// (the helping write of replayPublish), one snapshot at the newest entry
// covers all of them, and one GC mark advance amortizes the min-scan over
// the batch. Responses land in out[i] (which must have room for len(ops)).
//
// This is the PR-5 helping batcher driven from one thread of control
// instead of from concurrent writers: the server's shard applier drains N
// decided-and-persisted operations from its queue and retires them in one
// pass, paying the replay/clone/mark costs once instead of N times —
// exactly the amortization the batched write path buys contended writers,
// now available to a single front end with a backlog.
//
// The per-pid sequential contract of Invoke applies: one InvokeBatch is
// one sequence of invocations by pid. Entries of concurrent pids may
// interleave between the batch's entries in the decided order; responses
// are computed against that decided order, so linearizability is inherited
// unchanged. If a concurrent executor's snapshot lands above one of the
// batch's entries (stopping the settling replay early), the straggler is
// re-resolved from its own cons result — the bound stays one bounded
// replay per unresolved entry, same as the unbatched path.
func (u *Universal) InvokeBatch(pid int, ops []seqspec.Op, out []int64) {
	if len(ops) == 0 {
		return
	}
	if len(out) < len(ops) {
		panic("core: InvokeBatch out buffer shorter than ops")
	}
	if len(ops) == 1 {
		out[0] = u.Invoke(pid, ops[0])
		return
	}
	u.gcAttach(pid)
	entries := make([]*Entry, len(ops))
	priors := make([]*Node, len(ops))
	//wf:bounded [B] one cons per batch entry: B is the caller's batch length
	for i := range ops {
		e := &Entry{Pid: pid, Seq: u.seqs[pid].Add(1), Op: ops[i]}
		u.stats.consOps.Inc()
		priors[i] = u.fac.FetchAndCons(pid, e)
		entries[i] = e
	}
	last := entries[len(entries)-1]
	// One pass for the wave: the walk down from the last entry's prior
	// traverses every earlier batch entry (they are below it and carry no
	// snapshot yet) and publishes its response.
	pre, published := u.replayPublish(pid, priors[len(priors)-1], true)
	if u.truncate {
		u.stats.snapStores.Inc()
		last.snapshot.Store(&snapBox{state: pre.Clone()})
		u.sampleLiveRegion(last.Seq)
	}
	resp := pre.Apply(last.Op)
	last.Publish(resp)
	u.stats.batchLen.Observe(int64(published) + 1)
	if u.gcEvery > 0 && (published > 0 || last.Seq%u.gcEvery == 0) {
		u.gcAdvance()
	}
	//wf:bounded [B] one result collection (and at most one straggler replay) per batch entry
	for i, e := range entries[:len(entries)-1] {
		if v, ok := e.Result(); ok {
			out[i] = v
			continue
		}
		// Straggler: a concurrent pid's snapshot stopped the settling pass
		// above this entry. Resolve it from its own decided prior, exactly
		// as the unbatched path would have.
		st := u.replay(pid, priors[i])
		out[i] = st.Apply(e.Op)
		e.Publish(out[i])
	}
	out[len(ops)-1] = resp
}
