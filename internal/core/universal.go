package core

import (
	"sync/atomic"

	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

// Universal is the paper's universal object (Figures 4-1/4-2): a wait-free
// linearizable concurrent version of any deterministic sequential object,
// built over any fetch-and-cons.
//
// An operation executes in two steps. First the front end threads a log
// entry onto the shared list with fetch-and-cons — this is when the
// operation "really happens", fixing its linearization point. Second it
// replays the entries that precede its own to reconstruct the object state
// and compute the response.
//
// With truncation enabled (the strongly-wait-free refinement of Section
// 4.1), each front end stores the state it reconstructed into its own
// entry; replays stop at the first entry carrying a state. Every completed
// operation carries a snapshot, so a replay traverses at most one
// un-snapshotted entry per concurrent process — the per-operation work is
// bounded by n rather than by the object's age, and everything below the
// last snapshot is garbage (reclaimed by GC; the paper's manual reclamation
// argument bounds live storage at O(n^2)).
type Universal struct {
	seq       seqspec.Object
	fac       FetchAndCons
	truncate  bool
	snapEvery int64
	fastRead  bool
	seqs      []atomic.Int64

	// lastRead caches the state reconstructed by the most recent fast read,
	// keyed by the observed list head. Consecutive reads with no intervening
	// write hit the cache and touch no shared mutable memory at all: the
	// cached state is frozen (only ReadOnly ops are ever applied to it), so
	// serving from it is a load plus a pure Apply. The ReadOnly contract
	// this depends on is enforced by the cross-spec contract tests in
	// internal/seqspec and the shared-cache race hammer in this package.
	lastRead atomic.Pointer[readSnap]

	// metrics is the registry the construction records into: a private one
	// by default (so ReplayStats and FastReads always work), the caller's
	// via WithMetrics, or nil for the no-op mode (metricsSet distinguishes
	// an explicit nil from "not configured").
	metrics    *wfstats.Registry
	metricsSet bool
	stats      universalStats
}

// universalStats is the construction's metric set. Every field is nil-safe,
// so the no-op mode (WithMetrics(nil)) costs one predicated load per record.
type universalStats struct {
	// consOps counts write-path operations: each consumes exactly one
	// fetch-and-cons (the operation's linearization step).
	consOps *wfstats.Counter
	// snapStores counts Section 4.1 snapshot stores (Clone + publish).
	snapStores *wfstats.Counter
	// fastHits and fastMisses split the read fast path by whether the
	// frozen-state cache served the read (hit: no replay at all). The fast
	// path is the hottest in the tree and is shared by every reader, so
	// these are striped by pid: one single-writer cache line each, no
	// bouncing (see wfstats.StripedCounter).
	fastHits   *wfstats.StripedCounter
	fastMisses *wfstats.StripedCounter
	// replayLen is the replay-length histogram: entries traversed per
	// replay, the Section 4.1 strong-wait-freedom quantity (bounded by n
	// with snapshots, by the object's age without).
	replayLen *wfstats.Histogram
}

// readSnap pairs an observed decided list with the state it replays to.
type readSnap struct {
	head  *Node
	state seqspec.State
}

// Option configures a Universal.
type Option func(*Universal)

// WithoutTruncation disables the strongly-wait-free snapshot refinement,
// yielding the plain wait-free construction whose k-th operation replays k
// entries.
func WithoutTruncation() Option {
	return func(u *Universal) { u.truncate = false }
}

// WithSnapshotInterval makes only every k-th entry per process store a
// cloned snapshot, trading Clone cost (dominant for map- and array-valued
// states) against replay length: the strongly-wait-free replay bound
// degrades gracefully from O(n) to O(n·k). k=1 — every entry, the paper's
// Section 4.1 construction — is the default.
func WithSnapshotInterval(k int) Option {
	if k < 1 {
		panic("core: snapshot interval must be >= 1")
	}
	return func(u *Universal) { u.snapEvery = int64(k) }
}

// WithoutFastReads routes read-only operations through the full write path
// (cons + replay + snapshot), as the construction did before the read fast
// path existed; useful for measuring the fast path and for differential
// testing against it.
func WithoutFastReads() Option {
	return func(u *Universal) { u.fastRead = false }
}

// WithMetrics records the construction's metrics (universal.* — cons ops,
// snapshot stores, fast-read hits/misses, the replay-length histogram) into
// reg instead of a private registry. Several instances sharing one registry
// share the metrics and report their aggregate — this is how a sharded
// front end sums its shards. Passing nil selects the no-op mode: recording
// costs one predicated load per metric and ReplayStats/FastReads read as
// zero.
func WithMetrics(reg *wfstats.Registry) Option {
	return func(u *Universal) { u.metrics, u.metricsSet = reg, true }
}

// NewUniversal builds a wait-free version of seq for n processes over fac.
// Truncation is enabled by default.
func NewUniversal(seq seqspec.Object, fac FetchAndCons, n int, opts ...Option) *Universal {
	u := &Universal{seq: seq, fac: fac, truncate: true, snapEvery: 1, fastRead: true,
		seqs: make([]atomic.Int64, n)}
	for _, o := range opts {
		o(u)
	}
	if !u.metricsSet {
		u.metrics = wfstats.NewRegistry()
	}
	u.stats = universalStats{
		consOps:    u.metrics.Counter("universal.cons_ops"),
		snapStores: u.metrics.Counter("universal.snapshot_stores"),
		fastHits:   u.metrics.StripedCounter("universal.fast_read_hit", n),
		fastMisses: u.metrics.StripedCounter("universal.fast_read_miss", n),
		replayLen:  u.metrics.Histogram("universal.replay_len"),
	}
	return u
}

// Metrics returns the registry the construction records into: the private
// default, or whatever WithMetrics supplied (possibly nil).
func (u *Universal) Metrics() *wfstats.Registry { return u.metrics }

// Invoke executes op on behalf of process pid and returns its response.
// Each pid must invoke sequentially (a front end is a single thread of
// control); distinct pids may invoke concurrently.
//
// Read-only operations (per seq.ReadOnly) are served on a fast path: load a
// decided list from the fetch-and-cons, replay it to a state, apply the
// operation — no cons, no snapshot, no consensus round. The linearization
// point is the Observe load: the observed list contains every operation
// that completed before the read was invoked and only entries whose order
// is decided, so the read takes effect atomically at the load.
func (u *Universal) Invoke(pid int, op seqspec.Op) int64 {
	if u.fastRead && u.seq.ReadOnly(op) {
		return u.readFast(pid, op)
	}
	e := &Entry{Pid: pid, Seq: u.seqs[pid].Add(1), Op: op}
	u.stats.consOps.Inc()
	prior := u.fac.FetchAndCons(pid, e)
	pre := u.replay(prior)
	if u.truncate && e.Seq%u.snapEvery == 0 {
		u.stats.snapStores.Inc()
		e.snapshot.Store(&snapBox{state: pre.Clone()})
	}
	return pre.Apply(op)
}

// readFast serves a read-only operation from a decided list.
func (u *Universal) readFast(pid int, op seqspec.Op) int64 {
	head := u.fac.Observe()
	if c := u.lastRead.Load(); c != nil && c.head == head {
		u.stats.fastHits.Inc(pid)
		return c.state.Apply(op) // frozen state; ReadOnly Apply never mutates (contract-tested in seqspec)
	}
	u.stats.fastMisses.Inc(pid)
	state := u.replay(head)
	u.lastRead.Store(&readSnap{head: head, state: state})
	return state.Apply(op)
}

// replay reconstructs the object state after all entries of list (newest
// first), stopping early at snapshots when present.
func (u *Universal) replay(list *Node) seqspec.State {
	var pending []*Entry
	var state seqspec.State
	//wf:bounded walks to the first snapshotted entry: at most snapEvery un-snapshotted entries per live process (Section 4.1's strong wait-freedom bound), or the whole finite list without truncation
	for n := list; ; n = n.Rest {
		if n == nil {
			state = u.seq.Init()
			break
		}
		if s := n.Entry.snapshot.Load(); s != nil {
			// s.state is the state before n.Entry's op; apply it first.
			state = s.state.Clone()
			state.Apply(n.Entry.Op)
			break
		}
		pending = append(pending, n.Entry)
	}
	for i := len(pending) - 1; i >= 0; i-- {
		state.Apply(pending[i].Op)
	}

	u.stats.replayLen.Observe(int64(len(pending)))
	return state
}

// Handle returns pid's front end (Figure 4-1): a single thread of control
// that drives the object on that process's behalf. It is a convenience that
// binds the pid once; the sequential-use contract is per handle.
func (u *Universal) Handle(pid int) *Handle {
	if pid < 0 || pid >= len(u.seqs) {
		panic("core: Handle pid out of range")
	}
	return &Handle{u: u, pid: pid}
}

// Handle is a per-process front end of a Universal object.
type Handle struct {
	u   *Universal
	pid int
}

// Invoke executes op on behalf of the handle's process.
func (h *Handle) Invoke(op seqspec.Op) int64 { return h.u.Invoke(h.pid, op) }

// Pid returns the process id this handle drives.
func (h *Handle) Pid() int { return h.pid }

// ReplayStats reports (operations, mean replay length, max replay length):
// the Section 4.1 experiment comparing wait-free with strongly wait-free.
// The numbers are read from the universal.replay_len histogram; in the
// WithMetrics(nil) no-op mode they are zero.
func (u *Universal) ReplayStats() (ops int64, mean float64, max int64) {
	h := u.stats.replayLen
	return h.Count(), h.Mean(), h.Max()
}

// FastReads reports how many operations were served by the read-only fast
// path (universal.fast_read_hit + universal.fast_read_miss). Cache-hitting
// reads count here but not in ReplayStats (they replay nothing).
func (u *Universal) FastReads() int64 {
	return u.stats.fastHits.Load() + u.stats.fastMisses.Load()
}
