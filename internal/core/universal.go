package core

import (
	"sync/atomic"

	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

// Universal is the paper's universal object (Figures 4-1/4-2): a wait-free
// linearizable concurrent version of any deterministic sequential object,
// built over any fetch-and-cons.
//
// An operation executes in two steps. First the front end threads a log
// entry onto the shared list with fetch-and-cons — this is when the
// operation "really happens", fixing its linearization point. Second it
// replays the entries that precede its own to reconstruct the object state
// and compute the response.
//
// With truncation enabled (the strongly-wait-free refinement of Section
// 4.1), each front end stores the state it reconstructed into its own
// entry; replays stop at the first entry carrying a state. Every completed
// operation carries a snapshot, so a replay traverses at most one
// un-snapshotted entry per concurrent process — the per-operation work is
// bounded by n rather than by the object's age, and everything below the
// last snapshot is garbage (reclaimed by GC; the paper's manual reclamation
// argument bounds live storage at O(n^2)).
type Universal struct {
	seq      seqspec.Object
	fac      FetchAndCons
	truncate bool
	// snapEvery is the snapshot interval k of WithSnapshotInterval.
	//
	//wf:param k
	snapEvery int64
	fastRead  bool
	batch     bool
	// gcEvery is the mark-advance period per process; 0 = log GC off.
	//
	//wf:param g
	gcEvery int64

	// seqs holds each pid's operation sequence number; slot pid is written
	// only by pid's own front end (the sequential-use contract).
	//
	//wf:len n
	//wf:singlewriter pid
	seqs []atomic.Int64

	// gc is the low-water-mark log truncation machinery (see gc.go):
	// per-pid observed-prefix registers, the gossip floor, and the applied
	// anchor. Zero value when gcEvery is 0.
	gc gcState

	// contended is the batched path's gather hint: set while batching is
	// observably paying off (the last executor pass helped someone, or this
	// process was itself helped), cleared by a solo pass. While set, a
	// writer that finds itself at the head yields once before executing so
	// already-runnable writers can announce behind it and be settled by one
	// pass (see helping.go).
	contended atomic.Bool

	// scratch holds per-pid replay buffers. Each pid invokes sequentially
	// (the front-end contract), so slot pid has a single writer and replays
	// reuse one pending buffer instead of growing a fresh slice per call.
	//
	//wf:len n
	//wf:singlewriter pid
	scratch []replayScratch

	// lastRead caches the state reconstructed by the most recent fast read,
	// keyed by the observed list head. Consecutive reads with no intervening
	// write hit the cache and touch no shared mutable memory at all: the
	// cached state is frozen (only ReadOnly ops are ever applied to it), so
	// serving from it is a load plus a pure Apply. The ReadOnly contract
	// this depends on is enforced by the cross-spec contract tests in
	// internal/seqspec and the shared-cache race hammer in this package.
	lastRead atomic.Pointer[readSnap]

	// metrics is the registry the construction records into: a private one
	// by default (so ReplayStats and FastReads always work), the caller's
	// via WithMetrics, or nil for the no-op mode (metricsSet distinguishes
	// an explicit nil from "not configured").
	metrics    *wfstats.Registry
	metricsSet bool
	stats      universalStats
}

// universalStats is the construction's metric set. Every field is nil-safe,
// so the no-op mode (WithMetrics(nil)) costs one predicated load per record.
type universalStats struct {
	// consOps counts write-path operations: each consumes exactly one
	// fetch-and-cons (the operation's linearization step).
	consOps *wfstats.Counter
	// snapStores counts Section 4.1 snapshot stores (Clone + publish).
	snapStores *wfstats.Counter
	// fastHits and fastMisses split the read fast path by whether the
	// frozen-state cache served the read (hit: no replay at all). The fast
	// path is the hottest in the tree and is shared by every reader, so
	// these are striped by pid: one single-writer cache line each, no
	// bouncing (see wfstats.StripedCounter).
	fastHits   *wfstats.StripedCounter
	fastMisses *wfstats.StripedCounter
	// replayLen is the replay-length histogram: entries traversed per
	// replay, the Section 4.1 strong-wait-freedom quantity (bounded by n
	// with snapshots, by the object's age without).
	replayLen *wfstats.Histogram
	// helped counts batched write operations that returned a response
	// published by a concurrent executor — no replay, no clone, no apply.
	helped *wfstats.Counter
	// snapSaved counts snapshot stores the helped path skipped: operations
	// that would have cloned and published a snapshot on the unbatched path
	// but were covered by their batch executor's single store instead.
	snapSaved *wfstats.Counter
	// batchLen is the batch-size histogram: responses each executor pass
	// settled (its own plus every helped entry it published), the paper's
	// one-operation-per-wave quantity from the combining-network discussion.
	batchLen *wfstats.Histogram
	// retired counts log entries severed by the low-water-mark GC, and
	// logLen gauges the live log length (head index minus retired) as of
	// the latest anchor swing or sample. Flat zeros with GC off.
	retired *wfstats.Counter
	logLen  *wfstats.Gauge
	// gcScanLen is the truncation-scan histogram: nodes walked per anchor
	// swing, bounded by the live region when the GC keeps up.
	gcScanLen *wfstats.Histogram
	// liveRegion gauges the Section 4.1 live region (see LiveRegion),
	// sampled at every liveSampleEvery-th snapshot store per process.
	liveRegion *wfstats.Gauge
	// opSteps is the runtime cross-check of wfvet's symbolic certificates:
	// per replay, the log nodes walked plus the entries applied plus the
	// constant per-operation overhead (cons or observe, own apply, snapshot
	// bookkeeping) — the concrete instantiation of the O(n·k) terms in the
	// certified Invoke bound. A test evaluates the certificate at the
	// experiment's n and k and asserts this histogram's max stays under it.
	opSteps *wfstats.Histogram
}

// replayScratch is one pid's reusable replay buffer (single writer: the
// pid's own front end).
type replayScratch struct {
	pending []*Entry
}

// readSnap pairs an observed decided list with the state it replays to,
// stamped with the GC epoch it was built under: an anchor swing bumps the
// epoch, so a snap cached before a retirement can never be served — or pin
// the dead tail — after it (see gcSwing, which also clears a stale snap
// eagerly).
type readSnap struct {
	head  *Node
	state seqspec.State
	epoch int64
}

// Option configures a Universal.
type Option func(*Universal)

// WithoutTruncation disables the strongly-wait-free snapshot refinement,
// yielding the plain wait-free construction whose k-th operation replays k
// entries.
func WithoutTruncation() Option {
	return func(u *Universal) { u.truncate = false }
}

// WithSnapshotInterval makes only every k-th entry per process store a
// cloned snapshot, trading Clone cost (dominant for map- and array-valued
// states) against replay length: the strongly-wait-free replay bound
// degrades gracefully from O(n) to O(n·k). k=1 — every entry, the paper's
// Section 4.1 construction — is the default.
func WithSnapshotInterval(k int) Option {
	if k < 1 {
		panic("core: snapshot interval must be >= 1")
	}
	return func(u *Universal) { u.snapEvery = int64(k) }
}

// WithoutFastReads routes read-only operations through the full write path
// (cons + replay + snapshot), as the construction did before the read fast
// path existed; useful for measuring the fast path and for differential
// testing against it.
func WithoutFastReads() Option {
	return func(u *Universal) { u.fastRead = false }
}

// WithBatching enables helping-based batch execution on the write path (see
// helping.go): a writer whose entry is still the newest announced executes
// at once — replaying once and publishing the response of every
// decided-but-unexecuted entry it applies, with one snapshot for the whole
// pass — while a writer that finds newer entries consed above its own waits
// a bounded window to be settled by a pass from up there. Under contention
// one replay and one clone serve a whole batch of writers — the
// combining-network shape of the paper's Sections 1 and 5 — while an
// uncontended writer pays only one empty result-slot check and one Observe
// load before executing as usual.
func WithBatching() Option {
	return func(u *Universal) { u.batch = true }
}

// WithoutBatching disables helping-based batch execution (the default for
// NewUniversal; front ends that enable batching by default, like the
// sharded KV facade, use this to switch it back off).
func WithoutBatching() Option {
	return func(u *Universal) { u.batch = false }
}

// WithMetrics records the construction's metrics (universal.* — cons ops,
// snapshot stores, fast-read hits/misses, the replay-length histogram) into
// reg instead of a private registry. Several instances sharing one registry
// share the metrics and report their aggregate — this is how a sharded
// front end sums its shards. Passing nil selects the no-op mode: recording
// costs one predicated load per metric and ReplayStats/FastReads read as
// zero.
func WithMetrics(reg *wfstats.Registry) Option {
	return func(u *Universal) { u.metrics, u.metricsSet = reg, true }
}

// NewUniversal builds a wait-free version of seq for n processes over fac.
// Truncation is enabled by default.
func NewUniversal(seq seqspec.Object, fac FetchAndCons, n int, opts ...Option) *Universal {
	u := &Universal{seq: seq, fac: fac, truncate: true, snapEvery: 1, fastRead: true,
		seqs: make([]atomic.Int64, n), scratch: make([]replayScratch, n)}
	for _, o := range opts {
		o(u)
	}
	if u.gcOn() {
		u.gc.observed = make([]obsSlot, n)
	}
	if !u.metricsSet {
		u.metrics = wfstats.NewRegistry()
	}
	u.stats = universalStats{
		consOps:    u.metrics.Counter("universal.cons_ops"),
		snapStores: u.metrics.Counter("universal.snapshot_stores"),
		fastHits:   u.metrics.StripedCounter("universal.fast_read_hit", n),
		fastMisses: u.metrics.StripedCounter("universal.fast_read_miss", n),
		replayLen:  u.metrics.Histogram("universal.replay_len"),
		helped:     u.metrics.Counter("universal.helped"),
		snapSaved:  u.metrics.Counter("universal.snapshot_saved"),
		batchLen:   u.metrics.Histogram("universal.batch_len"),
		retired:    u.metrics.Counter("universal.retired"),
		logLen:     u.metrics.Gauge("universal.log_len"),
		gcScanLen:  u.metrics.Histogram("universal.gc_scan_len"),
		liveRegion: u.metrics.Gauge("universal.live_region"),
		opSteps:    u.metrics.Histogram("universal.op_steps"),
	}
	return u
}

// Metrics returns the registry the construction records into: the private
// default, or whatever WithMetrics supplied (possibly nil).
func (u *Universal) Metrics() *wfstats.Registry { return u.metrics }

// Invoke executes op on behalf of process pid and returns its response.
// Each pid must invoke sequentially (a front end is a single thread of
// control); distinct pids may invoke concurrently.
//
// Read-only operations (per seq.ReadOnly) are served on a fast path: load a
// decided list from the fetch-and-cons, replay it to a state, apply the
// operation — no cons, no snapshot, no consensus round. The linearization
// point is the Observe load: the observed list contains every operation
// that completed before the read was invoked and only entries whose order
// is decided, so the read takes effect atomically at the load.
func (u *Universal) Invoke(pid int, op seqspec.Op) int64 {
	u.gcAttach(pid) // (re-)arm pid's GC register before any walk; see Detach
	if u.fastRead && u.seq.ReadOnly(op) {
		return u.readFast(pid, op)
	}
	e := &Entry{Pid: pid, Seq: u.seqs[pid].Add(1), Op: op}
	u.stats.consOps.Inc()
	if u.batch {
		return u.invokeBatched(pid, e)
	}
	prior := u.fac.FetchAndCons(pid, e)
	pre := u.replay(pid, prior)
	if u.truncate && e.Seq%u.snapEvery == 0 {
		u.stats.snapStores.Inc()
		e.snapshot.Store(&snapBox{state: pre.Clone()})
		u.sampleLiveRegion(e.Seq)
	}
	if u.gcEvery > 0 && e.Seq%u.gcEvery == 0 {
		u.gcAdvance()
	}
	return pre.Apply(op)
}

// liveSampleEvery gates the universal.live_region gauge: snapshot-store
// sites sample LiveRegion on every liveSampleEvery-th store per process, so
// wfstat shows the Section 4.1 region live without putting an O(n·k) walk
// on every write. liveSampleCap bounds each sample's walk: when snapshots
// are sparse (snapEvery > 1 with interleaved writers, or batching) the
// replay rule may never close the region, and a gauge sample must saturate
// (report the cap), not traverse an unbounded log. The budget is sized so
// a saturating sampler costs ~cap/(every·snapEvery) ≈ a few node loads per
// write, amortized; any healthy GC-on live region sits well under the cap.
const (
	liveSampleEvery = 64
	// liveSampleCap is the symbolic walk budget C of a live-region sample.
	//
	//wf:param C
	liveSampleCap = 512
)

// sampleLiveRegion refreshes the live-region gauge from a snapshot-store
// site; seq is the storing entry's per-process sequence number. A reading
// of liveSampleCap means the sample saturated its walk budget.
func (u *Universal) sampleLiveRegion(seq int64) {
	if u.stats.liveRegion == nil || seq%liveSampleEvery != 0 {
		return
	}
	length, _ := liveRegionCapped(u.fac.Observe(), len(u.seqs), liveSampleCap)
	u.stats.liveRegion.Set(int64(length))
}

// readFast serves a read-only operation from a decided list. The cache key
// is the observed head plus the GC epoch: an anchor swing invalidates every
// older snap, so the cache re-replays once per retirement (stopping at the
// fresh anchor) instead of holding a pre-retirement head alive.
func (u *Universal) readFast(pid int, op seqspec.Op) int64 {
	head := u.fac.Observe()
	epoch := u.gc.epoch.Load()
	if c := u.lastRead.Load(); c != nil && c.head == head && c.epoch == epoch {
		u.stats.fastHits.Inc(pid)
		return c.state.Apply(op) // frozen state; ReadOnly Apply never mutates (contract-tested in seqspec)
	}
	u.stats.fastMisses.Inc(pid)
	state := u.replay(pid, head)
	u.lastRead.Store(&readSnap{head: head, state: state, epoch: epoch})
	return state.Apply(op)
}

// replay reconstructs the object state after all entries of list (newest
// first), stopping early at snapshots when present.
func (u *Universal) replay(pid int, list *Node) seqspec.State {
	state, _ := u.replayPublish(pid, list, false)
	return state
}

// replayPublish is replay plus the helping write of the batched path: with
// help set it publishes the response of every entry it applies whose result
// slot is still empty, and reports how many slots it filled. Publication is
// sound because list is decided — every replayer reconstructs the same
// state below each entry (Lemma 24's coherence plus snapshot correctness),
// and Apply is deterministic (the seqspec response-publication contract),
// so concurrent publishers store identical values.
func (u *Universal) replayPublish(pid int, list *Node, help bool) (seqspec.State, int) {
	sc := &u.scratch[pid]
	pending := sc.pending[:0]
	var state seqspec.State
	published := 0
	stop := int64(0) // log index of the snapshot the walk stopped at
	//wf:bounded [n*k] walks to the first snapshotted entry: at most snapEvery un-snapshotted entries per live process (Section 4.1's strong wait-freedom bound), or the whole finite list without truncation
	for n := list; ; n = n.Rest() {
		if n == nil {
			state = u.seq.Init()
			break
		}
		if s := n.Entry.snapshot.Load(); s != nil {
			// s.state is the state before n.Entry's op; apply it first.
			state = s.state.Clone()
			stop = int64(n.Len)
			resp := state.Apply(n.Entry.Op)
			if help {
				published += publishIfEmpty(n.Entry, resp)
			}
			break
		}
		pending = append(pending, n.Entry)
	}
	//wf:bounded [n*k] drains the pending buffer the walk above gathered, one Apply per un-snapshotted entry — same Section 4.1 bound, paid a second time
	for i := len(pending) - 1; i >= 0; i-- {
		resp := state.Apply(pending[i].Op)
		if help {
			published += publishIfEmpty(pending[i], resp)
		}
	}

	sc.pending = pending
	u.stats.replayLen.Observe(int64(len(pending)))
	// Step accounting for the certificate cross-check: the walk visited
	// len(pending) nodes plus its stopping node, the drain applied
	// len(pending) entries, and the operation around this replay spends a
	// constant on its cons or observe, its own apply, and publication.
	u.stats.opSteps.Observe(2*int64(len(pending)) + 4)
	u.gcObserve(pid, stop)
	return state, published
}

// publishIfEmpty fills e's result slot if no one has, reporting 1 when this
// call published.
func publishIfEmpty(e *Entry, resp int64) int {
	if _, ok := e.Result(); ok {
		return 0
	}
	e.Publish(resp)
	return 1
}

// Handle returns pid's front end (Figure 4-1): a single thread of control
// that drives the object on that process's behalf. It is a convenience that
// binds the pid once; the sequential-use contract is per handle.
func (u *Universal) Handle(pid int) *Handle {
	if pid < 0 || pid >= len(u.seqs) {
		panic("core: Handle pid out of range")
	}
	return &Handle{u: u, pid: pid}
}

// Handle is a per-process front end of a Universal object.
type Handle struct {
	u   *Universal
	pid int
}

// Invoke executes op on behalf of the handle's process.
func (h *Handle) Invoke(op seqspec.Op) int64 { return h.u.Invoke(h.pid, op) }

// Detach releases the handle's GC pin; see Universal.Detach. Call it when
// the front end is done operating (e.g. before returning a leased pid).
func (h *Handle) Detach() { h.u.Detach(h.pid) }

// Pid returns the process id this handle drives.
func (h *Handle) Pid() int { return h.pid }

// ReplayStats reports (operations, mean replay length, max replay length):
// the Section 4.1 experiment comparing wait-free with strongly wait-free.
// The numbers are read from the universal.replay_len histogram; in the
// WithMetrics(nil) no-op mode they are zero.
func (u *Universal) ReplayStats() (ops int64, mean float64, max int64) {
	h := u.stats.replayLen
	return h.Count(), h.Mean(), h.Max()
}

// FastReads reports how many operations were served by the read-only fast
// path (universal.fast_read_hit + universal.fast_read_miss). Cache-hitting
// reads count here but not in ReplayStats (they replay nothing).
func (u *Universal) FastReads() int64 {
	return u.stats.fastHits.Load() + u.stats.fastMisses.Load()
}

// Helped reports how many batched write operations returned a response
// published by a concurrent executor (universal.helped): no replay, no
// snapshot clone, no apply of their own. Zero when batching is off or in
// the WithMetrics(nil) no-op mode.
func (u *Universal) Helped() int64 { return u.stats.helped.Load() }

// BatchStats reports (executor passes, mean batch size, max batch size)
// from the universal.batch_len histogram: how many responses each batched
// replay pass settled. Mean 1 means no combining happened; the paper's
// combining-network ideal is one pass per wave of concurrent writers.
func (u *Universal) BatchStats() (batches int64, mean float64, max int64) {
	h := u.stats.batchLen
	return h.Count(), h.Mean(), h.Max()
}
