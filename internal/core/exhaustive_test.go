package core

import (
	"fmt"
	"strings"
	"testing"

	"waitfree/internal/seqspec"
)

// Exhaustive interleaving verification of the universal construction.
//
// The goroutine tests sample schedules; this harness enumerates ALL of them
// at the construction's true step granularity for small cases. An operation
// decomposes into the steps that touch shared state:
//
//	cons      — thread the entry (one atomic fetch-and-cons)
//	walk      — read one predecessor's snapshot slot (atomic load)
//	store     — store own pre-state snapshot, compute the response
//
// Because the cons order fixes the linearization order, every operation's
// correct response is determined the moment it is consed; the harness
// computes that ground truth eagerly and fails the instant any interleaving
// of snapshot reads and stores yields a different response or stores a
// wrong snapshot. This is exactly the subtle surface of Section 4.1: a
// replayer may observe any prefix of the snapshot stores, in any order.
type exhaustiveSim struct {
	t      *testing.T
	obj    seqspec.Object
	n      int
	script [][]seqspec.Op // per-process operation sequences

	head    *Node
	truth   seqspec.State     // ground-truth state in cons order
	expect  map[*Entry]int64  // expected response per consed entry
	preKey  map[*Entry]string // expected pre-state key per entry
	procs   []simProc
	visited map[string]bool
	trace   []string
	configs int
}

type simProc struct {
	opIdx   int
	phase   int // 0 ready, 1 walking, 2 storing
	entry   *Entry
	ownNode *Node
	pos     *Node
	pending []*Entry
	base    seqspec.State // set when the walk ends
}

const (
	phReady = iota
	phWalking
	phStoring
	phDone
)

func runExhaustive(t *testing.T, obj seqspec.Object, script [][]seqspec.Op) int {
	sim := &exhaustiveSim{
		t:       t,
		obj:     obj,
		n:       len(script),
		script:  script,
		truth:   obj.Init(),
		expect:  make(map[*Entry]int64),
		preKey:  make(map[*Entry]string),
		procs:   make([]simProc, len(script)),
		visited: make(map[string]bool),
	}
	sim.explore()
	return sim.configs
}

func (s *exhaustiveSim) key() string {
	var b strings.Builder
	for n := s.head; n != nil; n = n.Rest() {
		fmt.Fprintf(&b, "%d.%d", n.Entry.Pid, n.Entry.Seq)
		if n.Entry.snapshot.Load() != nil {
			b.WriteByte('s')
		}
		b.WriteByte(',')
	}
	b.WriteByte('#')
	for p := range s.procs {
		pr := &s.procs[p]
		pos := -1
		if pr.pos != nil {
			pos = pr.pos.Len
		}
		fmt.Fprintf(&b, "%d:%d:%d;", pr.opIdx, pr.phase, pos)
	}
	return b.String()
}

func (s *exhaustiveSim) explore() {
	k := s.key()
	if s.visited[k] {
		return
	}
	s.visited[k] = true
	s.configs++

	for p := 0; p < s.n; p++ {
		pr := &s.procs[p]
		switch {
		case pr.phase == phReady && pr.opIdx < len(s.script[p]):
			s.stepCons(p)
		case pr.phase == phWalking:
			s.stepWalk(p)
		case pr.phase == phStoring:
			s.stepStore(p)
		}
	}
}

// stepCons threads p's next entry and fixes its ground-truth response.
func (s *exhaustiveSim) stepCons(p int) {
	pr := &s.procs[p]
	op := s.script[p][pr.opIdx]
	e := &Entry{Pid: p, Seq: int64(pr.opIdx + 1), Op: op}

	prevHead := s.head
	node := Cons(e, s.head)
	s.head = node

	prevTruth := s.truth.Clone()
	s.preKey[e] = s.truth.Key()
	s.expect[e] = s.truth.Apply(op)

	prev := *pr
	pr.phase, pr.entry, pr.ownNode, pr.pos, pr.pending, pr.base =
		phWalking, e, node, node.Rest(), nil, nil
	s.trace = append(s.trace, fmt.Sprintf("P%d cons %s", p, op))

	s.explore()

	s.trace = s.trace[:len(s.trace)-1]
	*pr = prev
	s.truth = prevTruth
	delete(s.preKey, e)
	delete(s.expect, e)
	s.head = prevHead
}

// stepWalk advances p one node down the list, loading that node's snapshot
// slot — the racy read the harness exists to exercise.
func (s *exhaustiveSim) stepWalk(p int) {
	pr := &s.procs[p]
	prev := *pr
	prevPending := len(pr.pending)

	if pr.pos == nil {
		pr.base = s.obj.Init()
		pr.phase = phStoring
	} else if box := pr.pos.Entry.snapshot.Load(); box != nil {
		base := box.state.Clone()
		base.Apply(pr.pos.Entry.Op) // snapshot is the pre-state of that entry
		pr.base = base
		pr.phase = phStoring
	} else {
		pr.pending = append(pr.pending, pr.pos.Entry)
		pr.pos = pr.pos.Rest()
	}
	s.trace = append(s.trace, fmt.Sprintf("P%d walk", p))

	s.explore()

	s.trace = s.trace[:len(s.trace)-1]
	pr.pending = pr.pending[:prevPending]
	pr.phase, pr.pos, pr.base = prev.phase, prev.pos, prev.base
}

// stepStore computes p's pre-state, verifies it and the response against
// the cons-order ground truth, and publishes the snapshot.
func (s *exhaustiveSim) stepStore(p int) {
	pr := &s.procs[p]
	pre := pr.base.Clone()
	for i := len(pr.pending) - 1; i >= 0; i-- {
		pre.Apply(pr.pending[i].Op)
	}
	if got, want := pre.Key(), s.preKey[pr.entry]; got != want {
		s.t.Fatalf("P%d op %d: reconstructed pre-state %q, ground truth %q\ntrace: %s",
			p, pr.opIdx, got, want, strings.Join(s.trace, "; "))
	}
	snap := &snapBox{state: pre.Clone()}
	pr.entry.snapshot.Store(snap)
	if got, want := pre.Apply(pr.entry.Op), s.expect[pr.entry]; got != want {
		s.t.Fatalf("P%d op %d (%s): response %d, ground truth %d\ntrace: %s",
			p, pr.opIdx, pr.entry.Op, got, want, strings.Join(s.trace, "; "))
	}

	prev := *pr
	pr.opIdx++
	pr.phase = phReady
	pr.entry, pr.ownNode, pr.pos, pr.pending, pr.base = nil, nil, nil, nil, nil
	s.trace = append(s.trace, fmt.Sprintf("P%d store+respond", p))

	s.explore()

	s.trace = s.trace[:len(s.trace)-1]
	*pr = prev
	pr.entry.snapshot.Store(nil)
}

// TestExhaustiveUniversalCounter verifies every interleaving of the
// construction's shared-state steps for two processes and a counter.
func TestExhaustiveUniversalCounter(t *testing.T) {
	inc := seqspec.Op{Kind: "inc"}
	add := seqspec.Op{Kind: "add", Args: []int64{10}}
	configs := runExhaustive(t, seqspec.Counter{}, [][]seqspec.Op{
		{inc, add, inc},
		{add, inc, add},
	})
	t.Logf("explored %d configurations", configs)
}

// TestExhaustiveUniversalQueue does the same over a queue, whose responses
// are order-sensitive in both directions (enq affects later deqs).
func TestExhaustiveUniversalQueue(t *testing.T) {
	enq := func(v int64) seqspec.Op { return seqspec.Op{Kind: "enq", Args: []int64{v}} }
	deq := seqspec.Op{Kind: "deq"}
	configs := runExhaustive(t, seqspec.Queue{}, [][]seqspec.Op{
		{enq(1), deq, enq(2)},
		{deq, enq(3), deq},
	})
	t.Logf("explored %d configurations", configs)
}

// TestExhaustiveUniversalThreeProcs pushes to three processes with three
// ops each over a queue.
func TestExhaustiveUniversalThreeProcs(t *testing.T) {
	enq := func(v int64) seqspec.Op { return seqspec.Op{Kind: "enq", Args: []int64{v}} }
	deq := seqspec.Op{Kind: "deq"}
	configs := runExhaustive(t, seqspec.Queue{}, [][]seqspec.Op{
		{enq(1), deq, enq(4)},
		{enq(2), deq, deq},
		{deq, enq(3), deq},
	})
	t.Logf("explored %d configurations", configs)
}

// TestExhaustiveUniversalFourProcs: four processes, two ops each, over a
// bank (multi-word state, conditional transfers).
func TestExhaustiveUniversalFourProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("larger exploration; skipped in -short mode")
	}
	dep := func(a, v int64) seqspec.Op { return seqspec.Op{Kind: "deposit", Args: []int64{a, v}} }
	xfer := func(a, b, v int64) seqspec.Op { return seqspec.Op{Kind: "transfer", Args: []int64{a, b, v}} }
	configs := runExhaustive(t, seqspec.Bank{Accounts: 2}, [][]seqspec.Op{
		{dep(0, 5), xfer(0, 1, 3)},
		{xfer(0, 1, 4), dep(1, 2)},
		{xfer(1, 0, 1), xfer(0, 1, 2)},
		{dep(0, 1), xfer(1, 0, 6)},
	})
	t.Logf("explored %d configurations", configs)
}
