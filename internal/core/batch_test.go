package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// TestBatchedLinearizable: concurrent writers (and a sprinkling of fast
// reads) on a batched Universal, over both fetch-and-cons constructions; the
// history must linearize even though most responses were computed and
// published by some *other* process's executor pass. Run under -race this
// also exercises the result-slot publication protocol.
func TestBatchedLinearizable(t *testing.T) {
	const n = 4
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Queue{}, seqspec.Bank{Accounts: 4}}
	for name, mk := range facMakers(n) {
		for _, obj := range objects {
			t.Run(name+"/"+obj.Name(), func(t *testing.T) {
				for trial := 0; trial < 5; trial++ {
					u := NewUniversal(obj, mk(), n, WithBatching())
					var rec linearize.Recorder
					var wg sync.WaitGroup
					for p := 0; p < n; p++ {
						p := p
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(trial*n + p)))
							for i := 0; i < 6; i++ {
								// Write-heavy: batching only matters on the
								// write path, so lean the mix the other way
								// from the fast-read test.
								op := fastReadMixOp(obj.Name(), rng, false)
								ts := rec.Invoke()
								resp := u.Invoke(p, op)
								rec.Complete(p, op, resp, ts)
							}
						}()
					}
					wg.Wait()
					h := rec.History()
					if res := linearize.Check(obj, h); !res.OK {
						for _, e := range h {
							t.Logf("  %s", e)
						}
						t.Fatalf("trial %d: batched history not linearizable", trial)
					}
				}
			})
		}
	}
}

// TestBatchedExecutorPublishes pins the helping mechanism itself,
// deterministically: an entry consed onto the log but never executed by its
// announcer (a writer that stalled right after its cons) gets its response
// computed and published by the next writer's executor pass.
func TestBatchedExecutorPublishes(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithBatching())

	// Announce pid 1's inc by hand — the state a real writer is in after
	// fetch-and-cons returns and before it replays.
	stalled := &Entry{Pid: 1, Seq: 1, Op: seqspec.Op{Kind: "inc"}}
	fac.FetchAndCons(1, stalled)
	if _, ok := stalled.Result(); ok {
		t.Fatal("result slot full before any executor ran")
	}

	// Pid 0's write replays through the stalled entry and must publish its
	// response: the stalled inc saw count 0.
	if resp := u.Invoke(0, seqspec.Op{Kind: "inc"}); resp != 1 {
		t.Fatalf("executor's own inc = %d, want 1 (applied after the stalled inc)", resp)
	}
	resp, ok := stalled.Result()
	if !ok {
		t.Fatal("executor pass did not publish the stalled entry's response")
	}
	if resp != 0 {
		t.Fatalf("published response = %d, want 0", resp)
	}
	if batches, _, max := u.BatchStats(); batches != 1 || max != 2 {
		t.Fatalf("BatchStats = (%d, _, %d), want one executor pass settling 2 responses", batches, max)
	}
}

// stallFAC wraps a FetchAndCons and blocks one pid's calls after the inner
// cons has taken effect: the entry is in the decided log, visible to every
// other process, but its announcer is frozen before it can replay or
// publish. This is the adversary the bounded help-wait is designed for — a
// stalled batch winner.
//
//wf:blocking test instrumentation: stalls one pid on purpose to prove the others stay wait-free
type stallFAC struct {
	inner    FetchAndCons
	stallPid int
	consed   chan struct{} // closed once the stalled pid's cons has taken effect
	gate     chan struct{} // the stalled pid blocks here until the test releases it
}

func (s *stallFAC) FetchAndCons(pid int, e *Entry) *Node {
	prior := s.inner.FetchAndCons(pid, e)
	if pid == s.stallPid {
		close(s.consed)
		<-s.gate
	}
	return prior
}

func (s *stallFAC) Observe() *Node { return s.inner.Observe() }

// TestBatchedStalledWinner: pid 0 conses an inc and freezes; pids 1..3 run
// hundreds of increments meanwhile. They must all complete (bounded help-wait
// then self-execution — a stalled executor delays, never blocks), the frozen
// entry's response must be published by someone else's pass, and the full
// response set must be exactly the fetch-and-increment permutation 0..total-1.
func TestBatchedStalledWinner(t *testing.T) {
	const n, per = 4, 150
	s := &stallFAC{inner: NewSwapFAC(), stallPid: 0,
		consed: make(chan struct{}), gate: make(chan struct{})}
	u := NewUniversal(seqspec.Counter{}, s, n, WithBatching())

	// The stalled winner conses first — its entry is the oldest in the log,
	// in every later writer's prior — then hangs until released.
	stalledResp := make(chan int64, 1)
	go func() { stalledResp <- u.Invoke(0, seqspec.Op{Kind: "inc"}) }()
	<-s.consed

	respCh := make(chan int64, (n-1)*per+1)
	var wg sync.WaitGroup
	for p := 1; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				respCh <- u.Invoke(p, seqspec.Op{Kind: "inc"})
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("writers did not complete while one winner was stalled: helping blocked instead of bounding")
	}

	// Release the frozen winner; its response was long since published by a
	// concurrent executor, so it returns on the helped path.
	close(s.gate)
	select {
	case r := <-stalledResp:
		respCh <- r
	case <-time.After(60 * time.Second):
		t.Fatal("released winner did not return")
	}
	close(respCh)

	// inc returns the pre-increment count, so the n·per+1 responses must be
	// exactly {0, ..., n·per} — each value once. Any lost, duplicated or
	// misordered publication breaks the permutation.
	total := (n-1)*per + 1
	seen := make([]bool, total)
	for r := range respCh {
		if r < 0 || r >= int64(total) || seen[r] {
			t.Fatalf("response %d out of range or duplicated", r)
		}
		seen[r] = true
	}
	if got := u.Invoke(1, seqspec.Op{Kind: "get"}); got != int64(total) {
		t.Fatalf("final count = %d, want %d", got, total)
	}
	if u.Helped() == 0 {
		t.Error("stalled winner returned but nothing was counted helped")
	}
}

// TestBatchingComposesWithOptions: WithBatching must compose with the
// snapshot-interval and fast-read options — the regression the option
// surface needs now that three independent switches share the write path.
func TestBatchingComposesWithOptions(t *testing.T) {
	const n = 4
	obj := seqspec.KV{}
	combos := []struct {
		name string
		opts []Option
	}{
		{"interval", []Option{WithBatching(), WithSnapshotInterval(4)}},
		{"no-fast-reads", []Option{WithBatching(), WithoutFastReads()}},
		{"interval+no-fast-reads", []Option{WithBatching(), WithSnapshotInterval(4), WithoutFastReads()}},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				u := NewUniversal(obj, NewSwapFAC(), n, combo.opts...)
				var rec linearize.Recorder
				var wg sync.WaitGroup
				for p := 0; p < n; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(trial*n+p) + 99))
						for i := 0; i < 6; i++ {
							op := fastReadMixOp("kv", rng, false)
							ts := rec.Invoke()
							resp := u.Invoke(p, op)
							rec.Complete(p, op, resp, ts)
						}
					}()
				}
				wg.Wait()
				h := rec.History()
				if res := linearize.Check(obj, h); !res.OK {
					for _, e := range h {
						t.Logf("  %s", e)
					}
					t.Fatalf("trial %d: history not linearizable under %s", trial, combo.name)
				}
				if batches, _, _ := u.BatchStats(); batches == 0 {
					t.Fatalf("no executor passes recorded: batching lost under %s", combo.name)
				}
			}
		})
	}
}

// TestBatchedMatchesUnbatched: with a fixed single-process operation
// sequence, the batched write path returns exactly what the unbatched one
// does — the uncontended differential (the contended one is the
// linearizability hammer above).
func TestBatchedMatchesUnbatched(t *testing.T) {
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Counter{}, seqspec.Queue{}}
	for _, obj := range objects {
		t.Run(obj.Name(), func(t *testing.T) {
			batched := NewUniversal(obj, NewSwapFAC(), 1, WithBatching())
			plain := NewUniversal(obj, NewSwapFAC(), 1)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 400; i++ {
				var op seqspec.Op
				switch obj.Name() {
				case "counter":
					op = seqspec.Op{Kind: "inc"}
					if rng.Intn(3) == 0 {
						op = seqspec.Op{Kind: "get"}
					}
				default:
					op = fastReadMixOp(obj.Name(), rng, i%2 == 0)
				}
				if got, want := batched.Invoke(0, op), plain.Invoke(0, op); got != want {
					t.Fatalf("op %d %s: batched %d, unbatched %d", i, op, got, want)
				}
			}
			if helped := batched.Helped(); helped != 0 {
				t.Errorf("single-process run counted %d helped ops", helped)
			}
		})
	}
}

// TestBatchedSnapshotBound: the replay bound survives batching. Solo passes
// snapshot on the per-pid schedule, executor passes that helped anyone
// snapshot unconditionally, so the un-snapshotted frontier stays O(n·k); the
// histogram max is allowed the in-flight slack on top.
func TestBatchedSnapshotBound(t *testing.T) {
	const n, per = 4, 200
	for _, k := range []int{1, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			u := NewUniversal(seqspec.Counter{}, NewSwapFAC(), n,
				WithBatching(), WithSnapshotInterval(k))
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						u.Invoke(p, seqspec.Op{Kind: "inc"})
					}
				}()
			}
			wg.Wait()
			if got := u.Invoke(0, seqspec.Op{Kind: "get"}); got != n*per {
				t.Errorf("count = %d, want %d", got, n*per)
			}
			// Per pid: at most k solo entries since its last snapshot, plus
			// one in-flight batch whose executor snapshot is not yet stored —
			// itself at most the same frontier deep. Twice the unbatched
			// bound covers the in-flight slack.
			_, _, max := u.ReplayStats()
			if bound := int64(2 * n * (k + 1)); max > bound {
				t.Errorf("replay max = %d, beyond the batched O(n·k) bound %d", max, bound)
			}
		})
	}
}
