package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// facMakers enumerates the fetch-and-cons implementations under test: the
// constant-time swap construction (Figures 4-3/4-4) and the consensus-round
// construction (Figure 4-5) over several consensus primitives.
func facMakers(n int) map[string]func() FetchAndCons {
	return map[string]func() FetchAndCons{
		"swap": func() FetchAndCons { return NewSwapFAC() },
		"consensus-cas": func() FetchAndCons {
			return NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
		},
		"consensus-augqueue": func() FetchAndCons {
			return NewConsFAC(n, func() consensus.Object { return consensus.NewAugQueue(n) })
		},
		"consensus-memswap": func() FetchAndCons {
			return NewConsFAC(n, func() consensus.Object { return consensus.NewMemSwap(n) })
		},
	}
}

// randomOp draws a random operation for the named object type.
func randomOp(name string, rng *rand.Rand) seqspec.Op {
	arg := func(n int) int64 { return int64(rng.Intn(n)) }
	switch name {
	case "register":
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "read"}
		}
		return seqspec.Op{Kind: "write", Args: []int64{arg(8)}}
	case "counter":
		return seqspec.Op{Kind: []string{"get", "inc", "add"}[rng.Intn(3)], Args: []int64{arg(4)}}
	case "queue":
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "enq", Args: []int64{arg(100)}}
		}
		return seqspec.Op{Kind: []string{"deq", "peek", "len"}[rng.Intn(3)]}
	case "stack":
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "push", Args: []int64{arg(100)}}
		}
		return seqspec.Op{Kind: "pop"}
	case "set":
		return seqspec.Op{
			Kind: []string{"insert", "contains", "removeMin", "len"}[rng.Intn(4)],
			Args: []int64{arg(6)},
		}
	case "pqueue":
		return seqspec.Op{
			Kind: []string{"insert", "deleteMin", "min"}[rng.Intn(3)],
			Args: []int64{arg(20)},
		}
	case "kv":
		return seqspec.Op{
			Kind: []string{"put", "get", "del"}[rng.Intn(3)],
			Args: []int64{arg(4), arg(10)},
		}
	case "bank":
		return seqspec.Op{
			Kind: []string{"deposit", "withdraw", "transfer", "balance", "total"}[rng.Intn(5)],
			Args: []int64{arg(4), arg(4), arg(5)},
		}
	case "list":
		return seqspec.Op{
			Kind: []string{"cons", "head", "nth", "len"}[rng.Intn(4)],
			Args: []int64{arg(10)},
		}
	}
	panic("unknown object " + name)
}

var allObjects = []seqspec.Object{
	seqspec.Register{}, seqspec.Counter{}, seqspec.Queue{}, seqspec.Stack{},
	seqspec.Set{}, seqspec.PQueue{}, seqspec.KV{}, seqspec.Bank{Accounts: 4},
	seqspec.List{},
}

// TestUniversalSequential: driven by one process, the universal object must
// agree exactly with the raw sequential object, for every object type and
// every fetch-and-cons.
func TestUniversalSequential(t *testing.T) {
	for facName, mk := range facMakers(1) {
		for _, obj := range allObjects {
			t.Run(facName+"/"+obj.Name(), func(t *testing.T) {
				u := NewUniversal(obj, mk(), 1)
				ref := obj.Init()
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 200; i++ {
					op := randomOp(obj.Name(), rng)
					got := u.Invoke(0, op)
					want := ref.Apply(op)
					if got != want {
						t.Fatalf("op %d %s: universal=%d sequential=%d", i, op, got, want)
					}
				}
			})
		}
	}
}

// TestUniversalLinearizable: n concurrent front ends apply random
// operations; the recorded history must be linearizable against the
// sequential specification (the paper's correctness condition, E13).
func TestUniversalLinearizable(t *testing.T) {
	const n = 4
	for facName, mk := range facMakers(n) {
		for _, obj := range allObjects {
			for _, truncate := range []bool{true, false} {
				name := fmt.Sprintf("%s/%s/truncate=%v", facName, obj.Name(), truncate)
				t.Run(name, func(t *testing.T) {
					for trial := 0; trial < 8; trial++ {
						var opts []Option
						if !truncate {
							opts = append(opts, WithoutTruncation())
						}
						u := NewUniversal(obj, mk(), n, opts...)
						var rec linearize.Recorder
						var wg sync.WaitGroup
						for p := 0; p < n; p++ {
							p := p
							wg.Add(1)
							go func() {
								defer wg.Done()
								rng := rand.New(rand.NewSource(int64(trial*100 + p)))
								for i := 0; i < 6; i++ {
									op := randomOp(obj.Name(), rng)
									ts := rec.Invoke()
									resp := u.Invoke(p, op)
									rec.Complete(p, op, resp, ts)
								}
							}()
						}
						wg.Wait()
						h := rec.History()
						res := linearize.Check(obj, h)
						if !res.OK {
							for _, e := range h {
								t.Logf("  %s", e)
							}
							t.Fatalf("trial %d: history not linearizable", trial)
						}
					}
				})
			}
		}
	}
}

// TestViewCoherence is the Lemma 24/25 property: across concurrent
// fetch-and-cons calls, all views (argument prepended to result) are
// pairwise coherent (one is a suffix of the other), and an operation that
// completes before another starts has a view that is a suffix of the later
// one's.
func TestViewCoherence(t *testing.T) {
	const n = 4
	for facName, mk := range facMakers(n) {
		t.Run(facName, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				fac := mk()
				type rec struct {
					view   View
					invoke int64
					ret    int64
				}
				var mu sync.Mutex
				var clock int64
				var recs []rec
				var wg sync.WaitGroup
				for p := 0; p < n; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 5; i++ {
							e := &Entry{Pid: p, Seq: int64(i + 1), Op: seqspec.Op{Kind: "cons"}}
							mu.Lock()
							clock++
							inv := clock
							mu.Unlock()
							prior := fac.FetchAndCons(p, e)
							mu.Lock()
							clock++
							recs = append(recs, rec{view: NewView(e, prior), invoke: inv, ret: clock})
							mu.Unlock()
						}
					}()
				}
				wg.Wait()
				for i := range recs {
					for j := range recs {
						if i >= j {
							continue
						}
						if !Coherent(recs[i].view, recs[j].view) {
							t.Fatalf("trial %d: views %d and %d incoherent (len %d vs %d)",
								trial, i, j, len(recs[i].view), len(recs[j].view))
						}
					}
				}
				for i := range recs {
					for j := range recs {
						if recs[i].ret < recs[j].invoke && !recs[i].view.IsSuffixOf(recs[j].view) {
							t.Fatalf("trial %d: precedence violated: view %d precedes %d but is not its suffix",
								trial, i, j)
						}
					}
				}
			}
		})
	}
}

// crashingFactory wraps a consensus factory so that one specific process
// panics inside its k-th Decide call, simulating a crash in the middle of
// the Figure 4-5 protocol.
type crashingFactory struct {
	inner     consensus.Factory
	crashPid  int
	countdown int
	mu        sync.Mutex
}

type crashErr struct{}

func (c *crashingFactory) factory() consensus.Object {
	obj := c.inner()
	return crashObj{c: c, obj: obj}
}

type crashObj struct {
	c   *crashingFactory
	obj consensus.Object
}

func (o crashObj) Decide(pid int, input int64) int64 {
	if pid == o.c.crashPid {
		o.c.mu.Lock()
		o.c.countdown--
		hit := o.c.countdown == 0
		o.c.mu.Unlock()
		if hit {
			panic(crashErr{})
		}
	}
	return o.obj.Decide(pid, input)
}

// TestCrashInjection: a process that dies mid-protocol (inside a consensus
// round of Figure 4-5) must not block the others, and the surviving
// history — with the crashed operation pending — must remain linearizable.
// This is the wait-freedom claim under halting failures (E13).
func TestCrashInjection(t *testing.T) {
	const n = 4
	obj := seqspec.Counter{}
	for trial := 0; trial < 25; trial++ {
		cf := &crashingFactory{
			inner:     func() consensus.Object { return consensus.NewCAS(n) },
			crashPid:  trial % n,
			countdown: 1 + trial%5,
		}
		fac := NewConsFAC(n, cf.factory)
		u := NewUniversal(obj, fac, n)
		var rec linearize.Recorder
		var pendingMu sync.Mutex
		var pending []linearize.Event
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					op := seqspec.Op{Kind: "inc"}
					ts := rec.Invoke()
					resp, crashed := func() (r int64, crashed bool) {
						defer func() {
							if e := recover(); e != nil {
								if _, ok := e.(crashErr); !ok {
									panic(e)
								}
								crashed = true
							}
						}()
						return u.Invoke(p, op), false
					}()
					if crashed {
						pendingMu.Lock()
						pending = append(pending, linearize.Event{Pid: p, Op: op, Invoke: ts})
						pendingMu.Unlock()
						return // the process is dead
					}
					rec.Complete(p, op, resp, ts)
				}
			}()
		}
		wg.Wait()
		res := linearize.CheckWithPending(obj, rec.History(), pending)
		if !res.OK {
			t.Fatalf("trial %d: post-crash history not linearizable (crashed P%d)",
				trial, cf.crashPid)
		}
	}
}

// TestTruncationBoundsReplay is the Section 4.1 strongly-wait-free claim
// (E16): with snapshots, no replay traverses more than n un-snapshotted
// entries (n concurrent front ends); without them, replay length tracks the
// log length.
func TestTruncationBoundsReplay(t *testing.T) {
	const n, opsPer = 4, 50
	run := func(truncate bool) (mean float64, max int64) {
		var opts []Option
		if !truncate {
			opts = append(opts, WithoutTruncation())
		}
		u := NewUniversal(seqspec.Counter{}, NewSwapFAC(), n, opts...)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					u.Invoke(p, seqspec.Op{Kind: "inc"})
				}
			}()
		}
		wg.Wait()
		_, mean, max = u.ReplayStats()
		return mean, max
	}
	meanT, maxT := run(true)
	meanU, maxU := run(false)
	t.Logf("truncated:   mean=%.2f max=%d", meanT, maxT)
	t.Logf("untruncated: mean=%.2f max=%d", meanU, maxU)
	if maxT > n {
		t.Errorf("truncated max replay %d exceeds n=%d", maxT, n)
	}
	if maxU < int64(opsPer) {
		t.Errorf("untruncated max replay %d suspiciously small (ops=%d)", maxU, n*opsPer)
	}
}

// TestConsFACRoundBound is Corollary 27's shape (E15/E18): each
// fetch-and-cons joins at most n+1 consensus rounds.
func TestConsFACRoundBound(t *testing.T) {
	const n = 4
	fac := NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
	u := NewUniversal(seqspec.Counter{}, fac, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u.Invoke(p, seqspec.Op{Kind: "inc"})
			}
		}()
	}
	wg.Wait()
	if rpo := fac.RoundsPerOp(); rpo > float64(n+1) {
		t.Errorf("rounds per op %.2f exceeds n+1=%d", rpo, n+1)
	} else {
		t.Logf("rounds per op: %.2f (bound %d)", rpo, n+1)
	}
}

// TestFinalStateMatchesLog: after concurrent updates, the final observable
// state equals the sequential replay of any later reader's log — counters
// must not lose increments.
func TestFinalStateMatchesLog(t *testing.T) {
	const n, opsPer = 8, 40
	for facName, mk := range facMakers(n) {
		t.Run(facName, func(t *testing.T) {
			u := NewUniversal(seqspec.Counter{}, mk(), n)
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						u.Invoke(p, seqspec.Op{Kind: "inc"})
					}
				}()
			}
			wg.Wait()
			got := u.Invoke(0, seqspec.Op{Kind: "get"})
			if got != n*opsPer {
				t.Errorf("final count = %d, want %d", got, n*opsPer)
			}
		})
	}
}
