package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func entries(pids ...int) []*Entry {
	seqs := map[int]int64{}
	out := make([]*Entry, len(pids))
	for i, p := range pids {
		seqs[p]++
		out[i] = &Entry{Pid: p, Seq: seqs[p]}
	}
	return out
}

func listOf(es ...*Entry) *Node {
	var l *Node
	for i := len(es) - 1; i >= 0; i-- {
		l = Cons(es[i], l)
	}
	return l
}

func TestMergeBasics(t *testing.T) {
	es := entries(0, 1, 2) // one entry per process
	base := listOf(es[2])

	merged := merge([]*Entry{es[0], es[1], es[2]}, base)
	got := Entries(merged)
	if len(got) != 3 || got[0] != es[0] || got[1] != es[1] || got[2] != es[2] {
		t.Fatalf("merge order wrong: %v", got)
	}

	// Entries already in base are not duplicated.
	merged2 := merge([]*Entry{es[2]}, base)
	if merged2 != base {
		t.Fatal("merging only-present entries should return base unchanged")
	}

	// Empty goal returns base.
	if merge(nil, base) != base {
		t.Fatal("empty goal should return base")
	}

	// Merge onto nil base.
	merged3 := merge([]*Entry{es[0]}, nil)
	if merged3.Len != 1 || merged3.Entry != es[0] {
		t.Fatalf("merge onto empty list broken: %v", Entries(merged3))
	}
}

// TestMergeEarlyTermination: a newer entry of a process resolves as absent
// once an older entry of the same process is passed — and merge must still
// be correct when the older entry sits deep in the base.
func TestMergeSeqResolution(t *testing.T) {
	old := &Entry{Pid: 1, Seq: 1}
	mid := &Entry{Pid: 0, Seq: 1}
	newer := &Entry{Pid: 1, Seq: 2}
	base := listOf(mid, old) // head: mid, then old

	merged := merge([]*Entry{newer}, base)
	got := Entries(merged)
	if len(got) != 3 || got[0] != newer {
		t.Fatalf("newer entry should be prepended: %v", got)
	}

	// And the older entry itself is found, not re-prepended.
	merged2 := merge([]*Entry{old}, base)
	if merged2 != base {
		t.Fatal("old entry is in base; merge must not duplicate it")
	}
}

// TestMergeProperties: for random goals and bases (respecting per-process
// descending seqs), merge yields base as a suffix, contains every goal
// entry exactly once, and adds nothing else.
func TestMergeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const procs = 3
		// Build a base list: per-process seqs descend toward the head...
		// i.e. ascending as we append from tail. Generate tail-first.
		seqs := map[int]int64{}
		var baseEntries []*Entry // tail first
		for i := 0; i < rng.Intn(8); i++ {
			p := rng.Intn(procs)
			seqs[p]++
			baseEntries = append(baseEntries, &Entry{Pid: p, Seq: seqs[p]})
		}
		var base *Node
		for _, e := range baseEntries {
			base = Cons(e, base)
		}
		// Goal: one entry per process — either one already in base or a
		// fresh newer one.
		var goal []*Entry
		inBase := map[*Entry]bool{}
		for p := 0; p < procs; p++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var mine []*Entry
			for _, e := range baseEntries {
				if e.Pid == p {
					mine = append(mine, e)
				}
			}
			if len(mine) > 0 && rng.Intn(2) == 0 {
				e := mine[len(mine)-1] // newest of p in base
				goal = append(goal, e)
				inBase[e] = true
			} else {
				seqs[p]++
				goal = append(goal, &Entry{Pid: p, Seq: seqs[p]})
			}
		}

		merged := merge(goal, base)
		got := Entries(merged)
		// base is a suffix
		baseView := View(Entries(base))
		if !baseView.IsSuffixOf(View(got)) {
			return false
		}
		// every goal entry present exactly once
		count := map[*Entry]int{}
		for _, e := range got {
			count[e]++
		}
		for _, g := range goal {
			if count[g] != 1 {
				return false
			}
		}
		// nothing else added
		expectedNew := 0
		for _, g := range goal {
			if !inBase[g] {
				expectedNew++
			}
		}
		return len(got) == len(baseEntries)+expectedNew
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMergeTruncatedBaseDecidedFallback is the log-GC regression pin: a
// goal can hold a stale copy of announce[p], loaded before p's next
// operation overwrote it, and the anchor swing can then retire that entry's
// node — along with every older entry of p that the smaller-Seq rule could
// have resolved against. The truncated walk proves nothing about the entry,
// and merge must fall back to p's decided register instead of re-consing a
// completed operation (which replays would apply twice).
func TestMergeTruncatedBaseDecidedFallback(t *testing.T) {
	old := &Entry{Pid: 0, Seq: 1}   // completed; its node retired below the anchor
	newer := &Entry{Pid: 0, Seq: 2} // p0's next operation: the anchor node
	other := &Entry{Pid: 1, Seq: 1}
	base := listOf(other, newer, old) // head: other -> newer -> old
	decided := make([]atomic.Pointer[Node], 2)
	decided[0].Store(base.Rest()) // p0 certified through newer before the mark passed old
	base.Rest().sever()           // the swing retires old's node

	found, resolved := make([]bool, 1), make([]bool, 1)
	merged := mergeWith([]*Entry{old}, base, decided, found, resolved)
	if merged != base {
		t.Fatalf("merge re-consed a retired decided entry: %v", Entries(merged))
	}

	// Control: an in-flight entry of p0 (its decided head is strictly older)
	// must still be consed — the fallback must not suppress helping.
	inflight := &Entry{Pid: 0, Seq: 3}
	merged2 := mergeWith([]*Entry{inflight}, base, decided, found, resolved)
	if merged2 == base || merged2.Entry != inflight {
		t.Fatalf("in-flight entry not prepended: %v", Entries(merged2))
	}

	// And an owner with no certified list at all (nil register) conses too.
	fresh := &Entry{Pid: 1, Seq: 2}
	decidedNil := make([]atomic.Pointer[Node], 2)
	merged3 := mergeWith([]*Entry{fresh}, base, decidedNil, found, resolved)
	if merged3 == base || merged3.Entry != fresh {
		t.Fatalf("entry with nil decided register not prepended: %v", Entries(merged3))
	}
}

func TestTrim(t *testing.T) {
	es := entries(0, 1, 0)
	l := listOf(es[2], es[1], es[0]) // newest first: P0#2, P1#1, P0#1

	self := trim(l, es[1])
	if self == nil || self.Entry != es[1] {
		t.Fatalf("trim returned wrong node: %v", Entries(self))
	}
	if suffix := self.Rest(); suffix == nil || suffix.Entry != es[0] {
		t.Fatalf("trim returned wrong suffix: %v", Entries(self.Rest()))
	}
	if trim(l, es[0]).Rest() != nil {
		t.Fatal("trim at the tail should have nil rest")
	}
	defer func() {
		if recover() == nil {
			t.Error("trim of a missing entry must panic (invariant violation)")
		}
	}()
	trim(l, &Entry{Pid: 9, Seq: 9})
}
