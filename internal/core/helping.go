package core

import "runtime"

// Helping-based batch execution (announce-and-help), the combining-network
// idea of the paper's Sections 1 and 5 carried into the universal
// construction's execution layer.
//
// The front end already *announces* every operation: the cons threads the
// entry into the shared log (and ConsFAC literally publishes it in a
// per-pid announce register, merging all announced entries into one decided
// batch per consensus round). What the unbatched construction wastes is the
// execution step — every writer replays the log prefix, clones a snapshot,
// and applies its own operation, even though a single replay over the same
// decided prefix computes all of their responses. Batching closes that gap
// with the entry's result slot (Entry.Publish/Entry.Result):
//
//   - An *executor* replays once and, as it applies each decided entry,
//     publishes that entry's response into its result slot. One replay, one
//     snapshot clone, a whole batch of writers served.
//   - A *helped* writer finds its slot full after its cons and returns the
//     published response — no replay, no clone.
//
// Who waits and who executes is decided by the log head. An executor pass
// can only settle entries *below* its own (they are its decided prior), so
// help always flows from newer entries to older ones, and the right policy
// is the opposite of first-come-first-served: the writer that finds its own
// entry still at the head is the newest announcer — nobody is positioned
// above it to help — so it executes immediately, settling everything below.
// A writer that sees a newer entry above its own waits instead: that entry's
// owner (or whoever settles *it*) must replay through every un-snapshotted
// entry beneath it before stopping, so the wait is answered by the very pass
// that makes waiting worthwhile. Waiting on cons age instead (everyone
// waits, oldest gives up first) inverts the help direction and degenerates
// to no helping at all, with every op paying the full window first.
//
// Wait-freedom is preserved, not traded: the help wait is a counted window
// (helpSpinBudget steps), after which the writer executes the batch itself
// on the ordinary replay path. A stalled executor can therefore delay a
// helped return by at most the window; it can never block it. The per-op
// bound stays the Section 4.1 O(n) — cons (bounded by the fetch-and-cons
// contract) + one Observe + bounded wait + at most one bounded replay.
//
// The replay bound also survives the thinner snapshot stream: an executor
// stores one snapshot at its *own* entry per pass, and helped entries store
// none, but every helped entry lies below some executor's entry in the
// decided order, so a later replay stops at that executor's snapshot before
// reaching them. Un-snapshotted entries above the newest snapshot belong to
// in-flight batches — at most one per live process, the same O(n) frontier
// as before.

const (
	// helpSpinBudget is the counted help-wait window: how many result-slot
	// checks a waiting writer performs before executing the batch itself.
	// Sized to roughly one executor pass (a short replay plus one state
	// clone); the window is entered only when a newer entry already sits
	// above the writer's own, so it is usually answered well before expiry.
	//
	//wf:param B
	helpSpinBudget = 4096
	// helpYieldEvery spaces runtime.Gosched calls through the window so the
	// executor gets scheduled even at GOMAXPROCS=1. Eager yielding is
	// deliberate: a waiter's spin cycles are taken from the very cores the
	// executor and the still-announcing writers need.
	helpYieldEvery = 4
	// gatherEvery is the gather-probe period: even with the contended hint
	// off, every gatherEvery-th operation per process yields once at the
	// head so a batch can form. Concurrency alone does not make announced
	// entries overlap — on few cores, writers that never yield between cons
	// and execution each see their own entry still at the head and execute
	// solo — so batching has to probe for waves periodically; a formed
	// batch then keeps the hint set and the gather continuous. Uncontended,
	// the probe costs one runtime.Gosched per gatherEvery operations.
	gatherEvery = 64
)

// invokeBatched is the batched write path: cons, then either execute the
// whole decided batch in one replay pass (if this entry is the newest
// announced) or wait a bounded window for the newer writers above to settle
// it.
func (u *Universal) invokeBatched(pid int, e *Entry) int64 {
	gather := u.contended.Load() || e.Seq%gatherEvery == 0
	prior := u.fac.FetchAndCons(pid, e)
	if resp, ok := u.awaitHelp(e, gather); ok {
		return resp
	}
	// Executor path: one replay publishes every unfilled result slot it
	// passes, one snapshot covers the whole batch. A pass that helped
	// anyone always snapshots — its entry sits above every entry it
	// published, so the helped entries' skipped snapshots (they are under
	// the executor's) cannot stretch the replay frontier past O(n·k): the
	// un-snapshotted region is at most k solo entries per pid plus the
	// in-flight batches, one per live process.
	pre, published := u.replayPublish(pid, prior, true)
	if u.truncate && (published > 0 || e.Seq%u.snapEvery == 0) {
		u.stats.snapStores.Inc()
		e.snapshot.Store(&snapBox{state: pre.Clone()})
		u.sampleLiveRegion(e.Seq)
	}
	resp := pre.Apply(e.Op)
	e.Publish(resp)
	u.stats.batchLen.Observe(int64(published) + 1)
	u.contended.Store(published > 0)
	// One mark advance per batch, amortized like the batch's single
	// snapshot: a pass that helped anyone pays the min-scan once for the
	// whole wave; a solo pass pays it only on its gcEvery schedule.
	if u.gcEvery > 0 && (published > 0 || e.Seq%u.gcEvery == 0) {
		u.gcAdvance()
	}
	return resp
}

// awaitHelp decides e's role in its batch and, for waiters, waits a bounded
// window for the response. e executes (ok=false) when it is still the newest
// announced entry: no one above it can settle it, and its own pass settles
// everything below. e waits when a newer entry has been consed above: any
// executor pass from up there must traverse every un-snapshotted entry on
// its way down — e among them — and publish its response. With gather set, a
// writer still at the head yields once and rechecks, giving already-runnable
// writers the chance to announce above it and turn its solo pass into a
// batch (theirs or its own).
func (u *Universal) awaitHelp(e *Entry, gather bool) (int64, bool) {
	if resp, ok := e.Result(); ok {
		u.recordHelped(e)
		return resp, true
	}
	head := u.fac.Observe()
	if head == nil || head.Entry == e {
		if !gather {
			return 0, false
		}
		// Gather: one yield, then execute unless someone announced above
		// meanwhile. Cheap enough to pay every gatherEvery-th op even with
		// no contention anywhere, and with the hint set it runs every op,
		// chaining: each announcer hands the core on, the last one to join
		// the wave comes back still at the head and executes it all.
		runtime.Gosched()
		// A writer that consed above during the gather may already have
		// settled e on its way down.
		if resp, ok := e.Result(); ok {
			u.recordHelped(e)
			return resp, true
		}
		if head = u.fac.Observe(); head == nil || head.Entry == e {
			return 0, false
		}
	}
	//wf:bounded helpSpinBudget iterations: a counted courtesy window; on expiry the caller executes the batch itself on the ordinary O(n) replay path, so a stalled executor delays but never blocks
	for i := 0; i < helpSpinBudget; i++ {
		if resp, ok := e.Result(); ok {
			u.recordHelped(e)
			return resp, true
		}
		if i%helpYieldEvery == helpYieldEvery-1 {
			runtime.Gosched()
		}
	}
	return 0, false
}

// recordHelped accounts one helped return — the operation skipped its replay
// and, when its turn in the snapshot schedule had come, its snapshot store —
// and keeps the gather hint set: being helped is proof a batch formed. The
// helped process replayed nothing, so it advances its observed-prefix
// register from the gossip floor instead: a pid served entirely by
// executors must not pin the low-water mark.
func (u *Universal) recordHelped(e *Entry) {
	u.stats.helped.Inc()
	if u.truncate && e.Seq%u.snapEvery == 0 {
		u.stats.snapSaved.Inc()
	}
	u.contended.Store(true)
	u.gcAdoptFloor(e.Pid)
}
