package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/linearize"
	"waitfree/internal/msgchan"
	"waitfree/internal/seqspec"
)

// mixedFactory rotates through different consensus primitives per round —
// Theorem 26 says any consensus object is universal, so rounds may even mix
// object types freely.
func mixedFactory(n int) consensus.Factory {
	var k atomic.Int64
	return func() consensus.Object {
		switch k.Add(1) % 4 {
		case 0:
			return consensus.NewCAS(n)
		case 1:
			return consensus.NewAugQueue(n)
		case 2:
			return consensus.NewMemSwap(n)
		default:
			return msgchan.NewConsensus(n)
		}
	}
}

// TestMixedConsensusRounds: the Figure 4-5 construction with a different
// consensus primitive in every round stays linearizable.
func TestMixedConsensusRounds(t *testing.T) {
	const n = 4
	for trial := 0; trial < 10; trial++ {
		fac := NewConsFAC(n, mixedFactory(n))
		u := NewUniversal(seqspec.Queue{}, fac, n)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(trial*7 + p)))
				for i := 0; i < 6; i++ {
					var op seqspec.Op
					if rng.Intn(2) == 0 {
						op = seqspec.Op{Kind: "enq", Args: []int64{int64(p*100 + i)}}
					} else {
						op = seqspec.Op{Kind: "deq"}
					}
					ts := rec.Invoke()
					resp := u.Invoke(p, op)
					rec.Complete(p, op, resp, ts)
				}
			}()
		}
		wg.Wait()
		if res := linearize.Check(seqspec.Queue{}, rec.History()); !res.OK {
			t.Fatalf("trial %d: mixed-round history not linearizable", trial)
		}
	}
}

// yieldFAC wraps a fetch-and-cons with scheduling points, shaking out more
// interleavings on few cores (the native analogue of the model world's
// adversary).
type yieldFAC struct {
	inner FetchAndCons
	rng   func() bool
	mu    sync.Mutex
}

func (y *yieldFAC) FetchAndCons(pid int, e *Entry) *Node {
	y.mu.Lock()
	flip := y.rng()
	y.mu.Unlock()
	if flip {
		runtime.Gosched()
	}
	out := y.inner.FetchAndCons(pid, e)
	runtime.Gosched()
	return out
}

func (y *yieldFAC) Observe() *Node { return y.inner.Observe() }

// TestChaosScheduling: universal objects stay linearizable with yields
// injected around the linearization point, across object types.
func TestChaosScheduling(t *testing.T) {
	const n = 4
	objects := []seqspec.Object{seqspec.Counter{}, seqspec.Stack{}, seqspec.KV{}}
	for _, obj := range objects {
		obj := obj
		t.Run(obj.Name(), func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				var rmu sync.Mutex
				fac := &yieldFAC{
					inner: NewSwapFAC(),
					rng: func() bool {
						rmu.Lock()
						defer rmu.Unlock()
						return rng.Intn(2) == 0
					},
				}
				u := NewUniversal(obj, fac, n)
				var rec linearize.Recorder
				var wg sync.WaitGroup
				for p := 0; p < n; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						prng := rand.New(rand.NewSource(int64(trial*100 + p)))
						for i := 0; i < 5; i++ {
							op := chaosOp(obj.Name(), prng)
							ts := rec.Invoke()
							resp := u.Invoke(p, op)
							rec.Complete(p, op, resp, ts)
						}
					}()
				}
				wg.Wait()
				if res := linearize.Check(obj, rec.History()); !res.OK {
					t.Fatalf("trial %d: chaos history not linearizable", trial)
				}
			}
		})
	}
}

func chaosOp(object string, rng *rand.Rand) seqspec.Op {
	switch object {
	case "counter":
		return seqspec.Op{Kind: []string{"inc", "get", "add"}[rng.Intn(3)], Args: []int64{int64(rng.Intn(5))}}
	case "stack":
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "push", Args: []int64{int64(rng.Intn(50))}}
		}
		return seqspec.Op{Kind: "pop"}
	case "kv":
		return seqspec.Op{
			Kind: []string{"put", "get", "del"}[rng.Intn(3)],
			Args: []int64{int64(rng.Intn(3)), int64(rng.Intn(10))},
		}
	}
	panic("unknown object " + object)
}

// TestSequentialHandlesConcurrentPids: distinct pids may interleave while
// each stays internally sequential; a pid driving several objects is also
// fine. This guards the per-pid seqs bookkeeping.
func TestSequentialHandlesConcurrentPids(t *testing.T) {
	const n = 3
	u1 := NewUniversal(seqspec.Counter{}, NewSwapFAC(), n)
	u2 := NewUniversal(seqspec.Counter{}, NewSwapFAC(), n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u1.Invoke(p, seqspec.Op{Kind: "inc"})
				u2.Invoke(p, seqspec.Op{Kind: "inc"})
			}
		}()
	}
	wg.Wait()
	if got := u1.Invoke(0, seqspec.Op{Kind: "get"}); got != n*100 {
		t.Errorf("u1 count = %d", got)
	}
	if got := u2.Invoke(0, seqspec.Op{Kind: "get"}); got != n*100 {
		t.Errorf("u2 count = %d", got)
	}
}
