package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// TestFastReadLinearizable: concurrent readers and writers on a Universal,
// over both fetch-and-cons constructions; read-only operations ride the
// Observe fast path (no cons) and the whole history must still linearize.
// The linearization point of a fast read is the Observe load of a decided
// list. Run under -race this also exercises the frozen-state cache: cache
// hits apply read-only ops to a shared state concurrently.
func TestFastReadLinearizable(t *testing.T) {
	const n = 4
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Queue{}, seqspec.Bank{Accounts: 4}}
	for name, mk := range facMakers(n) {
		for _, obj := range objects {
			t.Run(name+"/"+obj.Name(), func(t *testing.T) {
				for trial := 0; trial < 5; trial++ {
					u := NewUniversal(obj, mk(), n)
					var rec linearize.Recorder
					var wg sync.WaitGroup
					for p := 0; p < n; p++ {
						p := p
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(trial*n + p)))
							for i := 0; i < 6; i++ {
								// Half the pids lean heavily on reads so fast
								// reads interleave densely with writes.
								op := fastReadMixOp(obj.Name(), rng, p%2 == 0)
								ts := rec.Invoke()
								resp := u.Invoke(p, op)
								rec.Complete(p, op, resp, ts)
							}
						}()
					}
					wg.Wait()
					if u.FastReads() == 0 {
						t.Fatal("workload exercised no fast reads")
					}
					h := rec.History()
					if res := linearize.Check(obj, h); !res.OK {
						for _, e := range h {
							t.Logf("  %s", e)
						}
						t.Fatalf("trial %d: history with fast reads not linearizable", trial)
					}
				}
			})
		}
	}
}

// fastReadMixOp draws a read-heavy or write-heavy operation for obj.
func fastReadMixOp(object string, rng *rand.Rand, readHeavy bool) seqspec.Op {
	read := rng.Intn(100) < 25
	if readHeavy {
		read = rng.Intn(100) < 75
	}
	switch object {
	case "kv":
		k := rng.Int63n(4)
		if read {
			return seqspec.Op{Kind: "get", Args: []int64{k}}
		}
		return seqspec.Op{Kind: "put", Args: []int64{k, rng.Int63n(50)}}
	case "queue":
		if read {
			return seqspec.Op{Kind: "peek"}
		}
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "enq", Args: []int64{rng.Int63n(50)}}
		}
		return seqspec.Op{Kind: "deq"}
	case "bank":
		a, b := rng.Int63n(4), rng.Int63n(4)
		if read {
			return seqspec.Op{Kind: "balance", Args: []int64{a}}
		}
		if rng.Intn(2) == 0 {
			return seqspec.Op{Kind: "deposit", Args: []int64{a, 1 + rng.Int63n(5)}}
		}
		return seqspec.Op{Kind: "transfer", Args: []int64{a, b, 1}}
	}
	panic("unknown object " + object)
}

// TestFastReadMatchesWritePath: with a fixed operation sequence, responses
// from the fast path equal those from the pre-fast-path construction
// (WithoutFastReads) — the differential check that classification and
// replay agree with cons-order ground truth.
func TestFastReadMatchesWritePath(t *testing.T) {
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Counter{}, seqspec.Bank{Accounts: 4}}
	for _, obj := range objects {
		t.Run(obj.Name(), func(t *testing.T) {
			fast := NewUniversal(obj, NewSwapFAC(), 1)
			slow := NewUniversal(obj, NewSwapFAC(), 1, WithoutFastReads())
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 400; i++ {
				var op seqspec.Op
				if obj.Name() == "counter" {
					op = seqspec.Op{Kind: "inc"}
					if rng.Intn(2) == 0 {
						op = seqspec.Op{Kind: "get"}
					}
				} else {
					op = fastReadMixOp(obj.Name(), rng, i%2 == 0)
				}
				if got, want := fast.Invoke(0, op), slow.Invoke(0, op); got != want {
					t.Fatalf("op %d %s: fast %d, write-path %d", i, op, got, want)
				}
			}
			if fast.FastReads() == 0 || slow.FastReads() != 0 {
				t.Fatalf("fast-read counters: fast=%d slow=%d", fast.FastReads(), slow.FastReads())
			}
		})
	}
}

// TestFastReadLeavesLogAlone: reads consume no cons — the log length after
// a burst of reads equals the number of writes.
func TestFastReadLeavesLogAlone(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.KV{}, fac, 2)
	for k := int64(0); k < 10; k++ {
		u.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{k, k}})
	}
	for i := 0; i < 1000; i++ {
		u.Invoke(1, seqspec.Op{Kind: "get", Args: []int64{int64(i % 10)}})
	}
	if head := fac.Head(); head.Len != 10 {
		t.Errorf("log grew to %d entries under reads, want 10", head.Len)
	}
	if got := u.FastReads(); got != 1000 {
		t.Errorf("FastReads = %d, want 1000", got)
	}
}

// TestSnapshotInterval: the O(n·k) replay bound and response correctness
// across snapshot intervals, concurrently.
func TestSnapshotInterval(t *testing.T) {
	const n, per = 4, 200
	for _, k := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			u := NewUniversal(seqspec.Counter{}, NewSwapFAC(), n, WithSnapshotInterval(k))
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						u.Invoke(p, seqspec.Op{Kind: "inc"})
					}
				}()
			}
			wg.Wait()
			if got := u.Invoke(0, seqspec.Op{Kind: "get"}); got != n*per {
				t.Errorf("count = %d, want %d", got, n*per)
			}
			_, _, max := u.ReplayStats()
			// Each process has at most k un-snapshotted committed entries
			// plus one in flight, so a replay traverses at most n·(k+1).
			if bound := int64(n * (k + 1)); max > bound {
				t.Errorf("replay max = %d, beyond the O(n·k) bound %d", max, bound)
			}
		})
	}
}

// TestSnapshotIntervalRejectsZero: the option validates its argument.
func TestSnapshotIntervalRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithSnapshotInterval(0) must panic")
		}
	}()
	WithSnapshotInterval(0)
}
