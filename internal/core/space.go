package core

// Space accounting for the Section 4.1 reclamation argument: "it is safe to
// discard any state elements whose n immediate predecessors in the list are
// also state elements", bounding live storage at O(n^2). In Go the garbage
// collector performs the actual reclamation (nothing references nodes below
// a replay's stopping point), but the *live region* — the prefix a future
// replay might still traverse — is measurable and should obey the paper's
// bound.

// LiveRegion returns the length of the list prefix that a replay by any of
// n processes could still traverse: the number of nodes from head up to and
// including the n-th consecutive snapshotted entry (everything below is
// unreachable by the replay rule). A region of -1 means the entire list is
// live (fewer than n consecutive snapshots exist).
func LiveRegion(head *Node, n int) int {
	consecutive := 0
	length := 0
	for node := head; node != nil; node = node.Rest {
		length++
		if node.Entry.snapshot.Load() != nil {
			consecutive++
			if consecutive >= n {
				return length
			}
		} else {
			consecutive = 0
		}
	}
	return -1
}
