package core

// Space accounting for the Section 4.1 reclamation argument: "it is safe to
// discard any state elements whose n immediate predecessors in the list are
// also state elements", bounding live storage at O(n^2). In Go the garbage
// collector performs the actual reclamation — the low-water-mark GC
// (gc.go) severs the list below the anchor so nothing references the dead
// tail — but the *live region*, the prefix a future replay might still
// traverse, is measurable and should obey the paper's bound. Snapshot-store
// sites sample it into the universal.live_region gauge (sampleLiveRegion).

// LiveRegion measures the list prefix that a replay by any of n processes
// could still traverse: the number of nodes from head up to and including
// the n-th consecutive snapshotted entry (everything below is unreachable
// by the replay rule), or up to the list's end — its origin or the GC's
// anchor cut — when fewer than n consecutive snapshots exist. bounded
// reports which case ended the walk: false means the walk ran off the end
// with the replay rule never closing the region, so the entire reachable
// list is live.
func LiveRegion(head *Node, n int) (length int, bounded bool) {
	return liveRegionCapped(head, n, -1)
}

// liveRegionCapped is LiveRegion with a walk budget: once length reaches
// limit the walk stops and reports unbounded, so callers on a hot path (the
// live-region gauge sampler) never pay O(log length) for a region the
// replay rule isn't going to close — with sparse snapshots (snapEvery > 1,
// or batching, where helped entries skip their snapshot) n *consecutive*
// snapshotted entries may never occur. limit < 0 means no cap.
func liveRegionCapped(head *Node, n, limit int) (length int, bounded bool) {
	consecutive := 0
	//wf:bounded [C] the gauge sampler's walk budget: the loop saturates at limit (the live-sample cap) on the hot path; the uncapped limit<0 form is test- and report-only, where the reachable list is finite
	for node := head; node != nil; node = node.Rest() {
		if length == limit {
			return length, false
		}
		length++
		if node.Entry.snapshot.Load() != nil {
			consecutive++
			if consecutive >= n {
				return length, true
			}
		} else {
			consecutive = 0
		}
	}
	return length, false
}
