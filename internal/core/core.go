// Package core implements the paper's central contribution (Section 4): the
// universal construction that turns any deterministic sequential object into
// a wait-free linearizable concurrent object, by a two-step reduction:
//
//  1. Universality reduces to fetch-and-cons (Figures 4-1/4-2): represent
//     the object's state as the list of invocations applied to it, newest
//     first. An operation "really happens" when its log entry is atomically
//     consed onto the list; the response is computed by replaying the
//     entries that precede it.
//  2. Fetch-and-cons reduces either to one memory-to-memory swap
//     (Figures 4-3/4-4, constant time) or to at most n rounds of consensus
//     (Figure 4-5), so *any* object that solves n-process consensus is
//     universal (Theorem 26).
//
// The strongly-wait-free refinement (Section 4.1) has each process replace
// the cdr of its own log entry with the state it reconstructed, bounding
// every replay at n entries.
//
//wf:waitfree
package core

import (
	"fmt"
	"sync/atomic"

	"waitfree/internal/seqspec"
)

// Entry is one announced operation: a log record that fetch-and-cons
// threads onto the shared list. Entries are identified by pointer; (Pid,
// Seq) is a human-readable identity for reports and tests.
type Entry struct {
	Pid int
	Seq int64
	Op  seqspec.Op

	// snapshot, when non-nil, holds the object state immediately *before*
	// this entry's operation, stored by the strongly-wait-free refinement:
	// a replayer that reaches this entry applies Op to a clone of snapshot
	// instead of replaying further history.
	snapshot atomic.Pointer[snapBox]

	// resp and respDone are the entry's result slot, the helping protocol's
	// other half: the entry announces the operation, the slot carries its
	// response back. Any process that replays a decided list through this
	// entry may publish the response it computed (Publish); the invoker, if
	// it finds the slot full after its cons (Result), returns without
	// replaying or cloning at all. Publication is two atomic stores — resp
	// then the respDone flag — so a reader that observes the flag observes
	// the response; double publication is harmless because the decided order
	// below this entry is fixed (Lemma 24) and Apply is deterministic, so
	// every publisher computes the same value.
	resp     atomic.Int64
	respDone atomic.Bool
}

// Publish stores the entry's response into its result slot. Idempotent:
// concurrent publishers replay the same decided prefix and therefore store
// the same value.
func (e *Entry) Publish(v int64) {
	e.resp.Store(v)
	e.respDone.Store(true)
}

// Result returns the published response, if any.
func (e *Entry) Result() (int64, bool) {
	if !e.respDone.Load() {
		return 0, false
	}
	return e.resp.Load(), true
}

type snapBox struct{ state seqspec.State }

// String renders the entry identity.
func (e *Entry) String() string {
	return fmt.Sprintf("P%d#%d:%s", e.Pid, e.Seq, e.Op)
}

// Node is a cons cell of the shared log list. Lists grow by prepending;
// Entry and Len never change after creation. Len is the entry's 1-based
// position in the log (the all-time length of the list it heads), which
// makes it a stable index even after truncation.
//
// The rest pointer is one-shot mutable: it holds the creation-time tail
// until the log GC's anchor swing (see gc.go) severs it to nil, retiring
// everything below so Go's collector can reclaim the dead tail. The
// low-water-mark protocol guarantees no replay can be walking below a
// severed point, so readers only ever see either the full tail or the
// anchor cut — never a partially retired list.
type Node struct {
	Entry *Entry
	Len   int // 1-based log position: number of entries ever at or below this one
	rest  atomic.Pointer[Node]
}

// Rest returns the list below this cell: its creation-time tail, or nil
// once the log GC has severed it (or the cell heads the log's oldest entry).
func (n *Node) Rest() *Node { return n.rest.Load() }

// sever cuts the list below this cell, retiring the tail. Callers must hold
// the low-water-mark guarantee that no walk is at or below the tail.
func (n *Node) sever() { n.rest.Store(nil) }

// Cons prepends entry e to list rest. Len is fixed in the literal — the
// cell's identity fields are complete before it can escape; only the rest
// pointer is (one-shot) mutable afterwards.
func Cons(e *Entry, rest *Node) *Node {
	length := 1
	if rest != nil {
		length = rest.Len + 1
	}
	n := &Node{Entry: e, Len: length}
	n.rest.Store(rest)
	return n
}

// Entries returns the list's entries, newest first: the full history, or the
// surviving prefix once the log GC has retired the tail.
func Entries(l *Node) []*Entry {
	var out []*Entry
	for n := l; n != nil; n = n.Rest() {
		out = append(out, n.Entry)
	}
	return out
}

// FetchAndCons is the destructive list operation of Section 4.1: atomically
// (1) place an item at the head of the shared list and (2) return the list
// of items that follow it. Implementations must be wait-free and
// linearizable; each process calls it sequentially.
type FetchAndCons interface {
	// FetchAndCons threads e onto the list and returns the prior list (the
	// entries that precede e in linearization order, newest first).
	//
	//wf:bounded contract: implementations must complete in O(n) of the caller's own steps (Corollary 27); demo harnesses that stall on purpose opt out with wf:blocking and answer to their own drivers
	//wf:steps n
	FetchAndCons(pid int, e *Entry) *Node

	// Observe returns a decided list: a prefix of the object's linearization
	// order (newest first) that contains every entry whose FetchAndCons call
	// returned before Observe was invoked, and no entry whose position in
	// the order is still undecided. The load that captures the list is the
	// linearization point of any read-only operation served from it, so
	// Observe must be wait-free and must not consume a cons. May be called
	// concurrently from any goroutine. Returns nil while the log is empty.
	//
	//wf:bounded contract: implementations must answer from already-decided state in O(n) loads without consuming a cons; stalling demo harnesses opt out with wf:blocking
	//wf:steps n
	Observe() *Node
}

// view materializes the coherence notion of Lemmas 24/25: the view of a
// fetch-and-cons is its argument prepended to its result.

// View is a value snapshot of a list for property tests: entry pointers,
// newest first.
type View []*Entry

// NewView builds the view of a fetch-and-cons call from its argument and
// result.
func NewView(e *Entry, result *Node) View {
	v := View{e}
	return append(v, Entries(result)...)
}

// IsSuffixOf reports whether v is a suffix of w.
func (v View) IsSuffixOf(w View) bool {
	if len(v) > len(w) {
		return false
	}
	off := len(w) - len(v)
	for i := range v {
		if w[off+i] != v[i] {
			return false
		}
	}
	return true
}

// Coherent reports whether one of v, w is a suffix of the other (Lemma 24).
func Coherent(v, w View) bool {
	return v.IsSuffixOf(w) || w.IsSuffixOf(v)
}
