package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func listLen(head *Node) int {
	n := 0
	for c := head; c != nil; c = c.Rest() {
		n++
	}
	return n
}

var inc = seqspec.Op{Kind: "inc"}
var get = seqspec.Op{Kind: "get"}

// TestLogGCRetiresTail: the headline behavior. With the low-water-mark GC
// on, a sequentially driven pair of processes retires almost the whole log:
// the reachable list ends exactly at the anchor node, Node.Len stays the
// stable all-time index, and the object's state survives truncation.
func TestLogGCRetiresTail(t *testing.T) {
	const rounds = 200
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1))
	for i := 0; i < rounds; i++ {
		u.Invoke(0, inc)
		u.Invoke(1, inc)
	}
	total := 2 * rounds
	if got := fac.Head().Len; got != total {
		t.Fatalf("head.Len = %d, want the all-time log length %d", got, total)
	}
	anchor := u.Anchor()
	if anchor == 0 {
		t.Fatal("no anchor swing after sequentially alternating writers")
	}
	if min := u.Min(); min < anchor {
		t.Errorf("Min() = %d below the applied anchor %d", min, anchor)
	}
	if got, want := u.Retired(), anchor-1; got != want {
		t.Errorf("Retired() = %d, want anchor-1 = %d", got, want)
	}
	// The surviving list runs from the head down to exactly the anchor node.
	if got, want := listLen(fac.Head()), total-int(anchor)+1; got != want {
		t.Errorf("reachable list has %d nodes, want head..anchor = %d", got, want)
	}
	if got := listLen(fac.Head()); got > 16 {
		t.Errorf("live list %d nodes; the GC should keep it O(n)", got)
	}
	// State is intact: a read replays from the truncated list.
	if got := u.Invoke(0, get); got != int64(total) {
		t.Errorf("counter reads %d after truncation, want %d", got, total)
	}
}

// TestLogGCOffByDefault: NewUniversal without WithLogGC never severs.
func TestLogGCOffByDefault(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2)
	for i := 0; i < 50; i++ {
		u.Invoke(0, inc)
		u.Invoke(1, inc)
	}
	if a := u.Anchor(); a != 0 {
		t.Errorf("Anchor() = %d with GC off, want 0", a)
	}
	if m := u.Min(); m != 0 {
		t.Errorf("Min() = %d with GC off, want 0", m)
	}
	if got := listLen(fac.Head()); got != 100 {
		t.Errorf("reachable list has %d nodes with GC off, want the full 100", got)
	}
}

// TestLogGCRequiresTruncation: snapshots are the retention anchors, so
// WithoutTruncation switches the GC off no matter what WithLogGC asked for.
func TestLogGCRequiresTruncation(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1), WithoutTruncation())
	for i := 0; i < 50; i++ {
		u.Invoke(0, inc)
		u.Invoke(1, inc)
	}
	if a := u.Anchor(); a != 0 {
		t.Errorf("Anchor() = %d without truncation, want 0", a)
	}
	if got := listLen(fac.Head()); got != 100 {
		t.Errorf("reachable list has %d nodes, want the full 100", got)
	}
}

func TestWithLogGCValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithLogGC(0) must panic")
		}
	}()
	NewUniversal(seqspec.Counter{}, NewSwapFAC(), 1, WithLogGC(0))
}

// TestAnchorIsSnapshotNode pins the invariant the replay-safety argument
// leans on: every value an observed-prefix register ever holds is some
// completed replay's stopping snapshot index, so the collective minimum —
// the index the swing severs at — always lands on a snapshot-carrying
// node, and a replay that walks all the way down to the anchor stops at
// its snapshot instead of reading the severed pointer. Run with a sparse
// snapshot schedule so the invariant is not vacuous.
func TestAnchorIsSnapshotNode(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1), WithSnapshotInterval(3))
	for i := 0; i < 120; i++ {
		u.Invoke(0, inc)
		u.Invoke(1, inc)
		u.Invoke(0, get)
	}
	anchor := u.Anchor()
	if anchor == 0 {
		t.Fatal("no anchor swing after sequentially alternating writers")
	}
	var node *Node
	for n := fac.Head(); n != nil; n = n.Rest() {
		if int64(n.Len) == anchor {
			node = n
			break
		}
	}
	if node == nil {
		t.Fatalf("anchor node (index %d) not reachable from the head", anchor)
	}
	if node.Rest() != nil {
		t.Errorf("anchor node at %d still has a tail; swing did not sever", anchor)
	}
	if node.Entry.snapshot.Load() == nil {
		t.Errorf("anchor node at %d carries no snapshot; observed registers must hold only snapshot indices", anchor)
	}
	if m := u.Min(); anchor > m {
		t.Errorf("anchor %d above the live minimum %d", anchor, m)
	}
}

// TestReadCacheNotPinnedByGC is the satellite regression test: the
// single-slot read cache holds the head it replayed, and before the epoch
// fix a swing could retire that head while the cache kept the dead tail
// reachable forever (no reader need ever come back to refresh it). The
// swing must clear the stale snap itself.
func TestReadCacheNotPinnedByGC(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1))
	u.Invoke(0, inc)
	u.Invoke(0, get) // cache now holds the length-1 head
	if c := u.lastRead.Load(); c == nil || c.head.Len != 1 {
		t.Fatal("read did not populate the cache")
	}
	for i := 0; i < 50; i++ {
		u.Invoke(0, inc)
		u.Invoke(1, inc)
	}
	anchor := u.Anchor()
	if anchor <= 1 {
		t.Fatalf("anchor %d did not pass the cached head", anchor)
	}
	if c := u.lastRead.Load(); c != nil && int64(c.head.Len) < anchor {
		t.Errorf("cache still holds retired head (Len %d < anchor %d), pinning the dead tail",
			c.head.Len, anchor)
	}
	// A fresh read works off the truncated log and re-populates at the
	// current epoch.
	if got := u.Invoke(1, get); got != 101 {
		t.Errorf("read after retirement = %d, want 101", got)
	}
	if c := u.lastRead.Load(); c == nil || c.epoch != u.gc.epoch.Load() {
		t.Error("fresh read did not cache at the current GC epoch")
	}
}

// TestReadCacheEpochMiss pins the second half of the cache contract: even
// when a swing loses the eager-clear race (a reader re-stored a pre-swing
// snap after the clear), the epoch stamp keeps the stale snap from ever
// being served. Simulated directly: bump the epoch under the cache and the
// very same head must miss.
func TestReadCacheEpochMiss(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1))
	u.Invoke(0, inc)
	u.Invoke(0, get)
	misses := u.stats.fastMisses.Load()
	u.Invoke(0, get) // same head, same epoch: hit
	if got := u.stats.fastMisses.Load(); got != misses {
		t.Fatalf("unchanged head+epoch should hit the cache (misses %d -> %d)", misses, got)
	}
	u.gc.epoch.Add(1)
	u.Invoke(0, get) // same head, new epoch: must miss and rebuild
	if got := u.stats.fastMisses.Load(); got != misses+1 {
		t.Errorf("epoch bump not honored: misses %d -> %d, want +1", misses, got)
	}
	if c := u.lastRead.Load(); c == nil || c.epoch != u.gc.epoch.Load() {
		t.Error("rebuild did not stamp the new epoch")
	}
}

// TestLogGCSpacePin is the steady-state space pin: a million concurrent
// writes with GC on must leave a live region bounded by O(n·snapEvery +
// n·gcEvery), not by the op count. (The heap-level version of this claim is
// BenchmarkSteadyStateHeap at the repo root; this is the node-count pin.)
func TestLogGCSpacePin(t *testing.T) {
	const n, snapEvery, gcEvery = 4, 4, 8
	perPid := 250_000 // 1M ops total
	if testing.Short() {
		perPid = 25_000
	}
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, n,
		WithLogGC(gcEvery), WithSnapshotInterval(snapEvery))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPid; i++ {
				u.Invoke(p, inc)
			}
		}()
	}
	wg.Wait()
	// Quiesce: a short sequential coda refreshes every register (the last
	// concurrent ops may have stopped short of a gcEvery boundary), then one
	// explicit advance applies the final mark.
	for p := 0; p < n; p++ {
		for i := 0; i < 2*gcEvery; i++ {
			u.Invoke(p, inc)
		}
	}
	u.gcAdvance()

	total := n*perPid + n*2*gcEvery
	if got := fac.Head().Len; got != total {
		t.Fatalf("head.Len = %d, want %d", got, total)
	}
	// The live list: everything above the anchor. The bound is the protocol's
	// O(n·snapEvery + n·gcEvery) with slack for the quiesce coda's own tail.
	bound := 4*n*snapEvery + 2*n*gcEvery + 4*gcEvery
	if got := listLen(fac.Head()); got > bound {
		t.Errorf("live list %d nodes after %d ops, want <= %d (O(n·snapEvery + n·gcEvery))",
			got, total, bound)
	}
	if retired := u.Retired(); retired < int64(total-bound) {
		t.Errorf("retired %d of %d entries, want >= %d", retired, total, total-bound)
	}
	if length, _ := LiveRegion(fac.Head(), n); length > bound {
		t.Errorf("live region %d, want <= %d", length, bound)
	}
	if got := u.Invoke(0, get); got != int64(total) {
		t.Errorf("counter reads %d, want %d", got, total)
	}
}

// TestDetachUnpinsMark is the departed-client regression test: a pid that
// stops invoking freezes its observed-prefix register, and before Detach
// existed that frozen register pinned the low-water mark forever — the
// leak that turns real the moment pids are leased to network connections.
// Detach must swing the register out of the min-scan so the mark advances
// past it, and the pid's next Invoke must re-arm it safely (adopting the
// gate, never walking below a sever that happened while it was away).
func TestDetachUnpinsMark(t *testing.T) {
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, 2, WithLogGC(1))
	for i := 0; i < 10; i++ {
		u.Invoke(1, inc) // the departing client's short session
	}
	for i := 0; i < 100; i++ {
		u.Invoke(0, inc)
	}
	pinned := u.Anchor()
	if pinned == 0 || pinned > 11 {
		t.Fatalf("anchor = %d, want pinned at the departed pid's register (1..11)", pinned)
	}
	// Frozen: however much pid 0 writes, the mark cannot pass pid 1's
	// register while pid 1 is still attached.
	for i := 0; i < 100; i++ {
		u.Invoke(0, inc)
	}
	if a := u.Anchor(); a != pinned {
		t.Fatalf("anchor moved %d -> %d while the idle pid was still attached", pinned, a)
	}
	u.Detach(1)
	for i := 0; i < 100; i++ {
		u.Invoke(0, inc)
	}
	if a := u.Anchor(); a <= pinned {
		t.Errorf("anchor = %d after Detach(1) and 100 writes, still pinned at %d", a, pinned)
	}
	if m := u.Min(); m <= pinned {
		t.Errorf("Min() = %d still includes the detached register (pinned %d)", m, pinned)
	}
	// Re-attach: the pid's next invoke (a read suffices) re-arms the
	// register at or above the gate and serves correct state off the
	// truncated log.
	if got := u.Invoke(1, get); got != 310 {
		t.Errorf("re-attached read = %d, want 310", got)
	}
	slot := &u.gc.observed[1]
	if !slot.att.Load() {
		t.Error("Invoke did not re-attach the register")
	}
	if v, g := slot.v.Load(), u.gc.gate.Load(); v < g {
		t.Errorf("re-attached register %d below the gate %d; a future walk could race a sever", v, g)
	}
}

// TestLogGCSpacePinUnderChurn is the connection-churn space pin — the
// lease-pool scenario: sessions acquire a pid, write a little, and depart
// via Detach, exactly what a TCP front end does per connection. Half the
// workers leave for good after one session; the survivors keep going for
// the bulk of the ops. With Detach the retained log stays bounded by the
// live session count (same O(n·snapEvery + n·gcEvery) shape as
// TestLogGCSpacePin); pre-fix, the departed pids' frozen registers anchor
// the log at their first-session indices and the live list grows without
// bound — linearly in the op count.
func TestLogGCSpacePinUnderChurn(t *testing.T) {
	const n, snapEvery, gcEvery, opsPerSession = 8, 4, 8, 64
	sessions := 500 // per surviving worker; 4·500·64 + 4·64 ≈ 128k ops total
	if testing.Short() {
		sessions = 50
	}
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, n,
		WithLogGC(gcEvery), WithSnapshotInterval(snapEvery))
	stop := make(chan struct{})
	var adv sync.WaitGroup
	adv.Add(1)
	go func() { // concurrent advancer, as aggressive as the soak's
		defer adv.Done()
		for {
			select {
			case <-stop:
				return
			default:
				u.gcAdvance()
				runtime.Gosched()
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		rounds := sessions
		if p >= n/2 {
			rounds = 1 // departed clients: one session, then gone forever
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				for i := 0; i < opsPerSession; i++ {
					u.Invoke(p, inc) // first op of the session re-attaches
				}
				u.Detach(p)
			}
		}()
	}
	wg.Wait()
	close(stop)
	adv.Wait()
	// Quiesce with one short surviving session and a final advance.
	for i := 0; i < 2*gcEvery; i++ {
		u.Invoke(0, inc)
	}
	u.gcAdvance()
	u.Detach(0)

	total := (n/2)*sessions*opsPerSession + (n/2)*opsPerSession + 2*gcEvery
	if got := fac.Head().Len; got != total {
		t.Fatalf("head.Len = %d, want %d", got, total)
	}
	bound := 4*n*snapEvery + 2*n*gcEvery + 4*gcEvery + opsPerSession
	if got := listLen(fac.Head()); got > bound {
		t.Errorf("live list %d nodes after %d ops under churn, want <= %d (departed pids must not pin)",
			got, total, bound)
	}
	if retired := u.Retired(); retired < int64(total-bound) {
		t.Errorf("retired %d of %d entries, want >= %d", retired, total, total-bound)
	}
	if got := u.Invoke(1, get); got != int64(total) {
		t.Errorf("counter reads %d, want %d", got, total)
	}
}

// TestDetachSoakLinearizable hammers the re-attachment protocol under
// -race: every worker detaches between bursts, so each burst's first walk
// is a genuine re-attach racing the dedicated advancer's sever — the
// interleaving the gate-validate/rescan rules exist for. Histories must
// stay linearizable across both fetch-and-cons forms, batched and not.
func TestDetachSoakLinearizable(t *testing.T) {
	const n = 4
	obj := seqspec.KV{}
	for name, mk := range facMakers(n) {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/batched=%v", name, batched), func(t *testing.T) {
				for trial := 0; trial < 4; trial++ {
					opts := []Option{WithLogGC(1), WithSnapshotInterval(2)}
					if batched {
						opts = append(opts, WithBatching())
					}
					u := NewUniversal(obj, mk(), n, opts...)
					var rec linearize.Recorder
					stop := make(chan struct{})
					var adv sync.WaitGroup
					adv.Add(1)
					go func() {
						defer adv.Done()
						for {
							select {
							case <-stop:
								return
							default:
								u.gcAdvance()
								runtime.Gosched()
							}
						}
					}()
					var wg sync.WaitGroup
					for p := 0; p < n; p++ {
						p := p
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(trial*n + p)))
							for burst := 0; burst < 4; burst++ {
								for i := 0; i < 4; i++ {
									op := fastReadMixOp(obj.Name(), rng, false)
									ts := rec.Invoke()
									resp := u.Invoke(p, op)
									rec.Complete(p, op, resp, ts)
								}
								u.Detach(p)
								runtime.Gosched()
							}
						}()
					}
					wg.Wait()
					close(stop)
					adv.Wait()
					h := rec.History()
					if res := linearize.Check(obj, h); !res.OK {
						for _, e := range h {
							t.Logf("  %s", e)
						}
						t.Fatalf("trial %d: history not linearizable under detach churn", trial)
					}
				}
			})
		}
	}
}

// TestLogGCSoakLinearizable is the -race soak hammer: concurrent writers and
// readers over both fetch-and-cons constructions, batched and not, with the
// mark advanced as aggressively as possible — every write attempts it
// (WithLogGC(1)) and a dedicated goroutine hammers gcAdvance continuously.
// Every recorded history must still linearize; under -race this also checks
// the sever/replay and cache-invalidation rendezvous.
func TestLogGCSoakLinearizable(t *testing.T) {
	const n = 4
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Queue{}}
	for name, mk := range facMakers(n) {
		for _, obj := range objects {
			for _, batched := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/batched=%v", name, obj.Name(), batched), func(t *testing.T) {
					for trial := 0; trial < 4; trial++ {
						opts := []Option{WithLogGC(1), WithSnapshotInterval(2)}
						if batched {
							opts = append(opts, WithBatching())
						}
						u := NewUniversal(obj, mk(), n, opts...)
						var rec linearize.Recorder
						stop := make(chan struct{})
						var adv sync.WaitGroup
						adv.Add(1)
						go func() { // the concurrent mark-advancer
							defer adv.Done()
							for {
								select {
								case <-stop:
									return
								default:
									u.gcAdvance()
									runtime.Gosched()
								}
							}
						}()
						var wg sync.WaitGroup
						for p := 0; p < n; p++ {
							p := p
							wg.Add(1)
							go func() {
								defer wg.Done()
								rng := rand.New(rand.NewSource(int64(trial*n + p)))
								for i := 0; i < 8; i++ {
									op := fastReadMixOp(obj.Name(), rng, false)
									ts := rec.Invoke()
									resp := u.Invoke(p, op)
									rec.Complete(p, op, resp, ts)
								}
							}()
						}
						wg.Wait()
						close(stop)
						adv.Wait()
						h := rec.History()
						if res := linearize.Check(obj, h); !res.OK {
							for _, e := range h {
								t.Logf("  %s", e)
							}
							t.Fatalf("trial %d: history not linearizable under log GC", trial)
						}
					}
				})
			}
		}
	}
}
