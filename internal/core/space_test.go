package core

import (
	"sync"
	"testing"

	"waitfree/internal/seqspec"
)

// TestLiveRegionBound is the Section 4.1 space claim: with snapshots, the
// list prefix any replay can still traverse stays O(n^2) even while the log
// itself grows without bound. The region is sampled concurrently with the
// workload, at its most pessimistic moments.
func TestLiveRegionBound(t *testing.T) {
	const n, opsPer = 4, 300
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, n)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worst := 0
	unboundedWorst := 0 // samples where the replay rule never closed the region
	wg.Add(1)
	go func() { // the sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if r, bounded := LiveRegion(fac.Head(), n); bounded && r > worst {
				worst = r
			} else if !bounded && r > unboundedWorst {
				unboundedWorst = r
			}
		}
	}()
	var workers sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < opsPer; i++ {
				u.Invoke(p, seqspec.Op{Kind: "inc"})
			}
		}()
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	total := fac.Head().Len
	if total != n*opsPer {
		t.Fatalf("log length %d, want %d", total, n*opsPer)
	}
	// The paper's bound: at most n un-snapshotted operations in flight,
	// each able to pin up to n additional entries — O(n^2). Allow a factor
	// for sampler raciness (an entry's snapshot store may trail its
	// observation); the point is the region must not track the log length.
	bound := 4 * n * n
	if worst > bound {
		t.Errorf("worst live region %d exceeds O(n^2) bound %d (log length %d)",
			worst, bound, total)
	}
	// Early samples legitimately run off the young log's end before n
	// consecutive snapshots exist; those too must stay small.
	if unboundedWorst > bound {
		t.Errorf("worst unbounded sample %d exceeds O(n^2) bound %d", unboundedWorst, bound)
	}
	t.Logf("log length %d, worst live region %d (bound %d)", total, worst, bound)
}

// TestLiveRegionUntruncated: without snapshots the whole log stays live —
// the contrast that motivates the refinement.
func TestLiveRegionUntruncated(t *testing.T) {
	const n, opsPer = 2, 50
	fac := NewSwapFAC()
	u := NewUniversal(seqspec.Counter{}, fac, n, WithoutTruncation())
	for p := 0; p < n; p++ {
		for i := 0; i < opsPer; i++ {
			u.Invoke(p, seqspec.Op{Kind: "inc"})
		}
	}
	r, bounded := LiveRegion(fac.Head(), n)
	if bounded {
		t.Errorf("untruncated log should be entirely live, got bounded region %d", r)
	}
	if r != n*opsPer {
		t.Errorf("unbounded live region should span the whole log: got %d, want %d", r, n*opsPer)
	}
}
