package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"waitfree/internal/seqspec"
)

// TestReadFastSharedCacheHammer hammers the read fast path on one shared
// Universal from many reader goroutines while writers keep advancing the
// list head. Readers that observe the same head share the frozen cached
// state, so under -race this test is the direct audit of the ReadOnly
// contract the cache depends on: a reader applying a mutating op to the
// shared state would be flagged as a data race. The value checks below are
// secondary; the detector is the point.
func TestReadFastSharedCacheHammer(t *testing.T) {
	const (
		readers = 6
		writers = 2
		puts    = 3000
		keys    = 32
	)
	u := NewUniversal(seqspec.KV{}, NewSwapFAC(), readers+writers)
	var done atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 1; i <= puts; i++ {
				k := int64((w*puts + i) % keys)
				u.Invoke(w, seqspec.Op{Kind: "put", Args: []int64{k, int64(i)}})
			}
		}()
	}
	for r := 0; r < readers; r++ {
		pid := writers + r
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; !done.Load(); i++ {
				k := int64(i % keys)
				v := u.Invoke(pid, seqspec.Op{Kind: "get", Args: []int64{k}})
				if v != seqspec.Empty && (v < 1 || v > puts) {
					t.Errorf("get(%d) = %d: not Empty and never put", k, v)
					return
				}
				if n := u.Invoke(pid, seqspec.Op{Kind: "len"}); n < 0 || n > keys {
					t.Errorf("len = %d, want 0..%d", n, keys)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	done.Store(true)
	readerWG.Wait()

	if got := u.FastReads(); got == 0 {
		t.Error("no reads took the fast path; the hammer missed its target")
	}
}
