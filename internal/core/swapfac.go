package core

import (
	"sync"
	"sync/atomic"

	"waitfree/internal/wfstats"
)

// SwapFAC is the constant-time fetch-and-cons of Figures 4-3/4-4: a single
// memory-to-memory swap of the list anchor with the new cell's cdr threads
// the cell and captures the prior list in one atomic step.
//
// Substitution note: the two-pointer memory-to-memory swap is a hardware
// primitive in the paper (consensus number infinity, Theorem 16) that no
// mainstream ISA provides; as with registers.Memory, the primitive is
// simulated by a mutex gate whose critical section is exactly the swap.
// Each FetchAndCons is one primitive step, so client wait-freedom is
// preserved in the paper's cost model.
//
// The anchor is an atomic pointer mutated only inside the gate, so readers
// can observe the decided list with one load and no gate at all: a swap
// decides an entry's position the instant it executes, hence every list the
// anchor ever holds is decided in full.
type SwapFAC struct {
	mu   sync.Mutex
	head atomic.Pointer[Node]

	// conses and observes are nil (no-op) until Instrument.
	conses   *wfstats.Counter
	observes *wfstats.Counter
}

// NewSwapFAC builds an empty list.
func NewSwapFAC() *SwapFAC { return &SwapFAC{} }

// Instrument records the fetch-and-cons's metrics (swapfac.cons — one
// simulated swap each — and swapfac.observe) into reg. Call before the
// object is used concurrently; nil reg leaves the no-op mode in place.
func (f *SwapFAC) Instrument(reg *wfstats.Registry) {
	f.conses = reg.Counter("swapfac.cons")
	f.observes = reg.Counter("swapfac.observe")
}

var _ FetchAndCons = (*SwapFAC)(nil)

// FetchAndCons implements FetchAndCons in one (simulated) memory-to-memory
// swap: anchor <-> cell.cdr.
//
//wf:bounded one simulated primitive step: the gate encloses exactly the constant-time anchor/cdr exchange (Theorem 16 substitution, see the type doc)
func (f *SwapFAC) FetchAndCons(pid int, e *Entry) *Node {
	f.conses.Inc()

	f.mu.Lock() // begin simulated atomic swap(anchor, cell.cdr)
	prior := f.head.Load()
	f.head.Store(Cons(e, prior))
	f.mu.Unlock() // end simulated atomic swap

	return prior
}

// Observe implements FetchAndCons: one atomic load of the anchor. Any entry
// whose swap preceded the load is in the returned list, and every entry in
// it was positioned by its swap, so the list is a decided prefix.
func (f *SwapFAC) Observe() *Node {
	f.observes.Inc()
	return f.head.Load()
}

// Head returns the current list head (for tests and inspection).
func (f *SwapFAC) Head() *Node { return f.head.Load() }
