package core

import (
	"math"
	"sync/atomic"
)

// Log GC: the wait-free low-water-mark protocol that bounds the decided
// log's live storage, realizing the Section 4.1 reclamation argument ("it
// is safe to discard any state elements whose n immediate predecessors in
// the list are also state elements") as actual memory reclamation. Without
// it the log is anchored at the head forever and grows O(total ops); with
// it live storage is O(n · snapEvery) plus the entries announced since the
// last mark advance, independent of the object's age.
//
// The protocol has three parts, in the shape of the Paxos Done/Min GC
// contract:
//
//  1. Observed-prefix registers. Each front end owns a single-writer
//     register observed[pid] holding the log index (Node.Len) of the newest
//     snapshot its completed replays have started from. The register is
//     monotone, and it is a promise about the future: every later replay by
//     that pid stops at an index >= observed[pid], because the snapshot it
//     stopped at last time is still there (snapshots are set once and never
//     cleared) and replays stop at the first snapshot below their head.
//     Critically the promise also covers the pid's in-flight replay — the
//     register is only advanced between the pid's own operations, so a
//     mid-walk replay is bounded by the value published before it began.
//
//  2. Min-scan. The collective low-water mark is the minimum over the
//     *attached* observed registers: one bounded scan, no consensus, no
//     cons. Below the mark no replay — completed, in-flight, or future —
//     can ever walk.
//
//  3. Anchor swing. A CAS on the gate index elects at most one process to
//     apply a new mark; the winner rescans the attached registers to
//     bound its cut (see the re-attachment rules below), CASes the cut
//     index, then walks from the head to the node at the cut (the anchor
//     node) and severs its rest pointer, making the dead tail unreachable
//     so Go's collector reclaims it. The anchor node always carries a
//     snapshot: every value a register ever holds is some completed
//     replay's stopping snapshot index (gcObserve stores them,
//     gcAdoptFloor and gcAttach adopt one), and the min over them is one
//     of them — so a replay whose walk reaches the anchor node stops there
//     (snapshot found) and never dereferences the severed pointer.
//
// The mark's floor is an idle *attached* process: a pid that stops midway
// pins the log at its last published index (exactly as a Paxos peer that
// never calls Done pins the log). That cost was acceptable under the
// paper's fixed-n model, where every registered process is a live thread;
// it becomes a leak the moment pids are leased to network connections that
// come and go — a departed client's frozen register pins the mark forever.
// The attach/detach protocol sheds it: each register carries an attached
// flag, only attached slots enter the min-scan, slots start detached, a
// pid's first Invoke attaches it, and Detach (called by the pid's thread
// of control between its own operations, e.g. on connection close) swings
// it back out. Two further mitigations keep attached pids moving: replays
// gossip their stopping index through the best-effort floor register, and
// the batched helped path — which replays nothing — adopts the floor so a
// pid served entirely by executors still advances.
//
// Re-attachment is where severing gets dangerous: a pid that detached at
// register r and comes back must not replay below a mark that advanced
// past r while it was gone (its first walk could race a concurrent sever
// and read the severed nil rest before the mark snapshot's store is
// visible to it, silently treating the cut as the log's origin). Two
// rules close every interleaving, with the gate register as the pivot of
// an SC happens-before argument:
//
//   - Attach validates: set attached, then load the gate and raise the own
//     register to it. A gate value g is safe to promise — the chain
//     snapshot-store ≺ register-store ≺ scan-load ≺ gate-CAS ≺ this load
//     makes the snapshot at g visible to all of the pid's future walks.
//   - Advance rescans: after winning the gate CAS on a new mark m, scan
//     the attached registers again and sever at cut = min(m, rescan).
//     Any pid whose attach store precedes the rescan's flag load bounds
//     the cut directly; any pid the rescan misses stored its flag after
//     the rescan's load, so its gate validation load is SC-after the gate
//     CAS and adopts g >= m >= cut before its first walk.
//
// Correctness of severing hinges on who can be below the cut when it is
// applied:
//
//   - Replays: bounded by their owner's observed register (>= cut), with
//     re-attachers covered by the validate/rescan rules above.
//   - ConsFAC merge walks: a goal entry retired below the mark may be
//     missing from a truncated walk, but the mark can only pass an entry
//     after its owner published a decided list headed by an at-least-as-new
//     entry (every register advance — including the attach validation,
//     which happens before the pid conses anything new — is in the owner's
//     program order after its latest publish, and a detached owner
//     published its decided head before detaching), so merge's decided-
//     register fallback resolves the entry as present instead of
//     re-consing it (see mergeWith). The happens-before chain runs publish
//     → register store → min-scan load → gate CAS → sever store → the
//     walker's nil Rest load, so a walk cut short by a sever always sees
//     the decided head that covers the cut.
//   - trim: the caller's own entry is above its own register, which was
//     last advanced before the entry was consed and is frozen for the call.
//   - The read cache: a cached head below the mark is dropped by the epoch
//     bump and the explicit invalidation in gcSwing.

// gcState is the Universal's low-water-mark machinery; zero value = GC off.
type gcState struct {
	// observed[p] is p's single-writer observed-prefix register: the log
	// index of the newest snapshot p's replays are promised to stop at or
	// above. Slots are cache-line padded like wfstats.StripedCounter: the
	// store is on the write path of every operation.
	//
	//wf:len n
	//wf:singlewriter pid
	observed []obsSlot

	// floor is the best-effort gossip register: the highest snapshot index
	// any completed replay is known to have stopped at. Raised with a single
	// CAS attempt (losing just means someone raised it concurrently), read
	// by the helped path to advance without replaying. It never enters the
	// min-scan directly — observed[] alone guards in-flight walks.
	//
	//wf:monotone
	floor atomic.Int64

	// gate is the elected low-water mark: the newest mark any advance has
	// won the election for. It is the pivot of the attach protocol — an
	// attaching pid adopts it before its first walk, which is what lets the
	// advancer's rescan skip pids it cannot see (see the file comment).
	// CAS-advanced; always a genuine snapshot index.
	//
	//wf:monotone
	gate atomic.Int64

	// cut is the applied low-water mark: the log index of the anchor node,
	// below which everything is severed. Entries strictly below it (cut-1
	// of them) are retired. cut <= gate always; the two differ only when an
	// attach raced the winning advance and the rescan bounded the sever
	// short of the elected mark. CAS-advanced; 0 = nothing retired.
	//
	//wf:monotone
	cut atomic.Int64

	// epoch counts anchor swings. The read cache stores the epoch it was
	// built under and misses on a stale one, so a retired tail is never
	// pinned past the swing that retired it.
	//
	//wf:monotone
	epoch atomic.Int64
}

// obsSlot is one observed-prefix register, padded to a cache line so the
// per-operation store never bounces a neighbor's line. The register holds
// only genuine snapshot indices — a replay's own stopping point (gcObserve),
// an adopted gossip floor or gate, each itself some replay's stopping point
// (gcAdoptFloor, gcAttach) — which is what makes the anchor node a snapshot
// node. att is the attach flag: only attached slots enter the min-scan, so
// a detached pid (never arrived, or departed via Detach) doesn't pin the
// mark. Both fields are owned by pid's thread of control; the advancer only
// loads them.
type obsSlot struct {
	//wf:monotone
	v   atomic.Int64
	att atomic.Bool
	_   [55]byte
}

// DefaultGCEvery is the facade's default mark-advance period (WithLogGC):
// each front end attempts an advance every 64th write, amortizing the
// min-scan and truncation walk the same way snapshot intervals amortize
// clones. Between advances at most n·DefaultGCEvery retirable entries
// float, a constant-factor add to the live region.
const DefaultGCEvery = 64

// WithLogGC enables low-water-mark log truncation: every front end
// publishes the snapshot index its replays stop at, and every every-th
// write per process attempts to advance the collective mark and sever the
// log below it. Requires truncation (snapshots are the retention anchors);
// a Universal built WithoutTruncation ignores it. every must be >= 1.
//
// The trade is the usual low-water-mark one: live memory drops from
// O(total ops) to O(n·snapEvery + n·every), at the cost of one padded
// store per write and an O(n) min-scan plus bounded truncation walk every
// every-th write. An attached process that stops invoking pins the mark
// at its last published index, exactly as an idle Paxos peer pins Min();
// registers start detached and Detach re-detaches a departing pid, so
// only pids actively between Invoke and Detach can pin.
func WithLogGC(every int) Option {
	if every < 1 {
		panic("core: log GC interval must be >= 1")
	}
	return func(u *Universal) { u.gcEvery = int64(every) }
}

// WithoutLogGC disables low-water-mark log truncation (the default for
// NewUniversal; front ends that enable it by default, like the sharded KV
// facade, use this to switch it back off).
func WithoutLogGC() Option {
	return func(u *Universal) { u.gcEvery = 0 }
}

// gcOn reports whether the low-water-mark protocol is active: it needs
// snapshots to anchor retention, so truncation must be on too.
func (u *Universal) gcOn() bool { return u.gcEvery > 0 && u.truncate }

// gcObserve publishes pid's newest replay stopping point: stop is the log
// index of the snapshot node the replay started from (0 if it walked to
// the log's origin). Single writer — pid's own front end, between that
// pid's walks — so a plain load/store pair suffices, and the monotone max
// keeps the register a promise about all future replays.
func (u *Universal) gcObserve(pid int, stop int64) {
	if !u.gcOn() || stop == 0 {
		return
	}
	// Gossip the stop: one CAS attempt to raise the shared floor; a lost
	// race means another replay raised it concurrently, just as good.
	if f := u.gc.floor.Load(); stop > f {
		u.gc.floor.CompareAndSwap(f, stop)
	}
	slot := &u.gc.observed[pid]
	if stop > slot.v.Load() {
		slot.v.Store(stop)
	}
}

// gcAttach arms pid's observed-prefix register for the min-scan. Called at
// the top of every Invoke; the common case is one load of the pid's own
// padded flag. On a genuine (re-)attach it validates the register against
// the gate — an advance elected before our flag store may sever up to the
// gate without its rescan seeing us, so every walk we do from here on must
// stop at or above it. The order is load-bearing: the flag store must
// precede the gate load (that is the SC pivot the rescan rule relies on).
// Single writer: pid's own thread of control, between its operations.
func (u *Universal) gcAttach(pid int) {
	if !u.gcOn() {
		return
	}
	slot := &u.gc.observed[pid]
	if slot.att.Load() {
		return
	}
	slot.att.Store(true)
	if g := u.gc.gate.Load(); g > slot.v.Load() {
		slot.v.Store(g)
	}
	u.gcAdoptFloor(pid) // opportunistic: floor is usually ahead of the gate
}

// Detach swings pid's observed-prefix register out of the GC min-scan, so
// a process that is done operating — a departed client whose pid returns
// to a lease pool, a drained worker — stops pinning the low-water mark.
// Without it a leased pid's frozen register would anchor the log at its
// last replay forever, the fixed-arrival leak the infinite-arrival model
// calls out. The pid re-arms automatically on its next Invoke (gcAttach),
// adopting the current gate so it can never walk below a sever that
// happened while it was away.
//
// Contract: like Invoke, Detach must be called from pid's thread of
// control with no operation by that pid in flight — it is the same
// single-writer discipline the observed register already requires. It is
// a no-op when log GC is off. It does not itself advance the mark; the
// next scheduled advance by any attached pid collects the slack.
func (u *Universal) Detach(pid int) {
	if !u.gcOn() {
		return
	}
	u.gc.observed[pid].att.Store(false)
}

// gcAdoptFloor advances pid's observed register to the gossiped floor
// without a replay — the helped path's contribution to the mark. Sound
// because a floor value is some completed replay's stopping snapshot: that
// snapshot is visible to every future walk from every future head, so
// pid's future replays stop at or above it. Called only between pid's own
// operations (after the helped return), preserving the single-writer and
// no-walk-in-flight discipline.
func (u *Universal) gcAdoptFloor(pid int) {
	if !u.gcOn() {
		return
	}
	slot := &u.gc.observed[pid]
	if f := u.gc.floor.Load(); f > slot.v.Load() {
		slot.v.Store(f)
	}
}

// gcAdvance computes the collective low-water mark over the attached
// registers and, if it moved, elects itself on the gate CAS, rescans to
// bound the sever against racing attaches, and swings: two bounded scans,
// two CASes, one bounded walk to the new anchor node. Safe to call from
// any front end — or any non-pid thread — at any point outside the
// caller's own replay. Losing either CAS means a concurrent advance got
// there first — possibly with an *older* mark (its scan ran earlier), in
// which case the difference stays live until the next scheduled advance
// re-scans; retirement is delayed by at most one gcEvery period per
// process, never lost, and both registers stay monotone (a CAS succeeds
// only against the exact old value it bettered).
func (u *Universal) gcAdvance() {
	if !u.gcOn() {
		return
	}
	// Min-scan over the attached registers: each of the n slots is read
	// once; a range loop is machine-bounded by its operand, so no directive
	// needed. With nobody attached the mark falls back to the gossip floor:
	// there is no walk to endanger, and any later attacher validates
	// against the gate before its first one.
	mark := int64(math.MaxInt64)
	attached := false
	for p := range u.gc.observed {
		s := &u.gc.observed[p]
		if !s.att.Load() {
			continue
		}
		attached = true
		if v := s.v.Load(); v < mark {
			mark = v
		}
	}
	if !attached {
		mark = u.gc.floor.Load()
	}
	old := u.gc.gate.Load()
	if mark <= old {
		return // nothing newly retirable (covers the never-replayed 0 floor)
	}
	if !u.gc.gate.CompareAndSwap(old, mark) {
		return // a concurrent advance elected first; see the doc comment
	}
	// Election won: rescan the attached registers to bound the sever. A pid
	// that attached since the first scan with a register below mark is seen
	// here and bounds the cut; one that attaches after this scan's flag
	// load will load the gate after our CAS and adopt >= mark (see the file
	// comment's rescan rule). Values the first scan already saw can only
	// have risen, so the common quiescent case leaves cut == mark.
	cut := mark
	for p := range u.gc.observed {
		s := &u.gc.observed[p]
		if !s.att.Load() {
			continue
		}
		if v := s.v.Load(); v < cut {
			cut = v
		}
	}
	prev := u.gc.cut.Load()
	if cut <= prev {
		return // a racing attach pinned us at/below an already-applied cut
	}
	if !u.gc.cut.CompareAndSwap(prev, cut) {
		return // a concurrent winner severed first
	}
	u.gcSwing(prev, cut)
}

// gcSwing applies a won cut: walk from the head to the anchor node (log
// index mark) and sever its tail. The walk is cut short harmlessly if a
// later swing already severed above mark — everything below is then
// already unreachable.
func (u *Universal) gcSwing(old, mark int64) {
	head := u.fac.Observe()
	scanned := int64(0)
	//wf:bounded [n*k + n*g] walks head down to the anchor node: at most the live region, O(n·snapEvery) plus the entries announced since the last advance (the mark is below every in-flight walk, so the anchor node is reachable unless a newer swing already cut above it)
	for n := head; ; n = n.Rest() {
		if n == nil {
			break // empty log, or a newer swing already severed above mark
		}
		scanned++
		if int64(n.Len) == mark {
			n.sever()
			break
		}
		if int64(n.Len) < mark {
			break // a newer swing already severed above; nothing to do
		}
	}
	retired := mark - old
	if old == 0 {
		retired = mark - 1 // entries strictly below the first anchor
	}
	u.gc.epoch.Add(1)
	// Drop a read-cache entry whose head was retired by this swing, so the
	// cache cannot pin the dead tail while readers are idle; the epoch check
	// in readFast handles the racing-reader window.
	// A cached nil head (empty-log read) is trivially below any mark.
	if c := u.lastRead.Load(); c != nil && (c.head == nil || int64(c.head.Len) < mark) {
		u.lastRead.CompareAndSwap(c, nil)
	}
	u.stats.retired.Add(retired)
	u.stats.gcScanLen.Observe(scanned)
	if head != nil {
		u.stats.logLen.Set(int64(head.Len) - (mark - 1))
	}
}

// Min computes the collective low-water mark right now: the minimum over
// the attached observed-prefix registers, the Paxos Min() of this log.
// Zero when GC is off or some attached process has never completed a
// replay; with nobody attached it reports the elected gate (the mark
// cannot move until someone attaches and operates).
func (u *Universal) Min() int64 {
	if !u.gcOn() {
		return 0
	}
	mark := int64(math.MaxInt64)
	attached := false
	for p := range u.gc.observed { // bounded min-scan, mirrors gcAdvance
		s := &u.gc.observed[p]
		if !s.att.Load() {
			continue
		}
		attached = true
		if v := s.v.Load(); v < mark {
			mark = v
		}
	}
	if !attached {
		return u.gc.gate.Load()
	}
	return mark
}

// Anchor returns the applied low-water mark: the log index of the current
// anchor node. Entries strictly below it have been severed from the list.
// Zero means nothing has been retired.
func (u *Universal) Anchor() int64 { return u.gc.cut.Load() }

// Retired reports how many log entries the GC has severed so far. Derived
// from the cut index, so it works in the WithMetrics(nil) no-op mode.
func (u *Universal) Retired() int64 {
	if a := u.gc.cut.Load(); a > 0 {
		return a - 1
	}
	return 0
}
