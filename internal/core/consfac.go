package core

import (
	"fmt"
	"sync/atomic"

	"waitfree/internal/consensus"
	"waitfree/internal/wfstats"
)

// ConsFAC is the Figure 4-5 fetch-and-cons: a wait-free implementation from
// an unbounded array of n-process consensus objects, establishing that any
// object that solves n-process consensus is universal (Theorem 26).
//
// Each process keeps three single-writer atomic registers: announce (its
// latest operation entry), round (the latest consensus round it executed)
// and prefer (its preference list after that round). A fetch-and-cons
// announces its entry, builds a goal of all announced entries, catches up
// with the highest observed round, then runs at most n further consensus
// rounds. In each round it proposes the previous winner's preference
// extended with its unmet goal entries, joins the round's consensus to
// elect a winner (processes elect by id, per the paper's convention), and
// adopts the winner's preference. Winning a round fixes the caller's entry
// in the list; after n losses the entry is guaranteed present anyway,
// because some process won twice in between and its second goal included
// this process's announcement (Lemma 24's argument).
type ConsFAC struct {
	//wf:param n
	n int
	// announce, round and prefer are the paper's per-process single-writer
	// registers: slot pid is stored only by pid's own FetchAndCons.
	//
	//wf:len n
	//wf:singlewriter pid
	announce []atomic.Pointer[Entry]
	//wf:len n
	//wf:singlewriter pid
	round []atomic.Int64
	//wf:len n
	//wf:singlewriter pid
	prefer []atomic.Pointer[Node]
	rounds *roundArray

	// decided[p] is a single-writer register holding the longest list p has
	// *certified* as decided: the suffix of a coherent view headed by p's
	// own entry. p stores it before its fetch-and-cons returns, so a scan of
	// decided[] sees every completed operation; prefer[] would not do — it
	// transiently holds proposals whose head entries are not yet ordered.
	//
	//wf:len n
	//wf:singlewriter pid
	decided []atomic.Pointer[Node]

	// lastWinner[p] is the paper's persistent per-process local variable
	// "winner": the winner of the last round p participated in (-1 before
	// any). Only process p accesses entry p.
	//
	//wf:len n
	//wf:singlewriter pid
	lastWinner []int

	// scratch[p] holds p's reusable goal and merge buffers. Processes call
	// FetchAndCons sequentially, so slot p has a single writer; reusing the
	// buffers removes the three per-call allocations (goal, found, resolved)
	// from the write hot path. Nothing built in them outlives the call:
	// merge copies goal entries into fresh list nodes.
	//
	//wf:len n
	//wf:singlewriter pid
	scratch []facScratch

	// decisions counts consensus rounds joined, for the Corollary 27
	// experiments (at most n+1 per operation).
	decisions atomic.Int64
	ops       atomic.Int64

	// Instrument metrics; nil (no-op) until Instrument is called.
	opsCount   *wfstats.Counter
	roundsHist *wfstats.Histogram
	wins       *wfstats.Counter
}

// facScratch is one process's reusable FetchAndCons buffers: the goal slice
// (at most one announced entry per process, so capacity n never grows) and
// the merge membership marks.
type facScratch struct {
	goal     []*Entry
	found    []bool
	resolved []bool
}

// NewConsFAC builds a fetch-and-cons for n processes from a factory of
// fresh n-process consensus objects (one per round).
func NewConsFAC(n int, factory consensus.Factory) *ConsFAC {
	f := &ConsFAC{
		n:          n,
		announce:   make([]atomic.Pointer[Entry], n),
		round:      make([]atomic.Int64, n),
		prefer:     make([]atomic.Pointer[Node], n),
		decided:    make([]atomic.Pointer[Node], n),
		rounds:     newRoundArray(factory),
		lastWinner: make([]int, n),
		scratch:    make([]facScratch, n),
	}
	// The loop variable is each slot's owning pid: construction happens
	// before the object escapes, but writing through the owner index keeps
	// the single-writer discipline checkable end to end.
	for pid := range f.scratch {
		f.scratch[pid] = facScratch{
			goal:     make([]*Entry, 0, n),
			found:    make([]bool, n),
			resolved: make([]bool, n),
		}
	}
	for pid := range f.lastWinner {
		f.lastWinner[pid] = -1
	}
	return f
}

var _ FetchAndCons = (*ConsFAC)(nil)

// Instrument records the Figure 4-5 metrics into reg: consfac.ops,
// consfac.rounds (consensus rounds joined per FetchAndCons — the Corollary
// 27 quantity, bounded by n+1), consfac.round_wins (rounds the caller won,
// fixing its entry), and consfac.install_races (lost CAS attempts lazily
// installing consensus rounds — each loss means another process installed
// the round, so retries are bounded). Call before the object is used
// concurrently; nil reg leaves the no-op mode in place.
func (f *ConsFAC) Instrument(reg *wfstats.Registry) {
	f.opsCount = reg.Counter("consfac.ops")
	f.roundsHist = reg.Histogram("consfac.rounds")
	f.wins = reg.Counter("consfac.round_wins")
	f.rounds.races = reg.Counter("consfac.install_races")
}

// FetchAndCons implements FetchAndCons (Figure 4-5).
func (f *ConsFAC) FetchAndCons(pid int, e *Entry) *Node {
	f.ops.Add(1)
	f.opsCount.Inc()
	joined := int64(0) // rounds this call joins, for the consfac.rounds histogram
	defer func() { f.roundsHist.Observe(joined) }()
	f.announce[pid].Store(e)

	// Build the goal: everyone's latest announced entry (at most one per
	// process, since processes are sequential), and find the highest round
	// anyone has executed.
	sc := &f.scratch[pid]
	goal := sc.goal[:0]
	lastRound := int64(0)
	for p := 0; p < f.n; p++ {
		if a := f.announce[p].Load(); a != nil {
			goal = append(goal, a)
		}
		if r := f.round[p].Load(); r > lastRound {
			lastRound = r
		}
	}

	// Catch up: learn the winner of the most recent observed round. The
	// winner variable persists across this process's calls, so the base
	// preference always extends the last decided list this process saw.
	winner := f.lastWinner[pid]
	if lastRound > f.round[pid].Load() {
		joined++
		winner = f.decide(lastRound, pid)
	}

	defer func() { f.lastWinner[pid] = winner }()
	for r := lastRound + 1; r <= lastRound+int64(f.n); r++ {
		base := f.preferOf(winner)
		f.prefer[pid].Store(mergeWith(goal, base, f.decided, sc.found, sc.resolved))
		joined++
		w := f.decide(r, pid)
		winner = w
		dec := f.preferOf(w)
		f.prefer[pid].Store(dec)
		f.round[pid].Store(r)
		if w == pid {
			f.wins.Inc()
			return f.publish(pid, trim(dec, e))
		}
	}
	return f.publish(pid, trim(f.preferOf(winner), e))
}

// publish certifies self (the view suffix headed by the caller's own entry)
// as decided and returns its rest. Entries at or below the caller's own are
// ordered — Lemma 24's coherence means every view agrees on everything from
// the caller's entry down, even when the view's *head* still carries
// undecided proposals — so self is safe to expose to Observe. The store
// happens before FetchAndCons returns, giving Observe its completed-
// operation guarantee.
func (f *ConsFAC) publish(pid int, self *Node) *Node {
	f.decided[pid].Store(self)
	return self.Rest()
}

// Observe implements FetchAndCons: scan the n decided registers and return
// the longest certified list, O(n) loads and no consensus round. Certified
// lists form a coherent family (suffixes of coherent views), so the longest
// one contains every entry of every other — in particular every operation
// that completed before the scan began, whose invoker published it first.
// Each register is monotone (a process's successive certified lists extend
// one another), so a register that grows mid-scan only ever adds entries.
func (f *ConsFAC) Observe() *Node {
	var best *Node
	for p := 0; p < f.n; p++ {
		if d := f.decided[p].Load(); d != nil && (best == nil || d.Len > best.Len) {
			best = d
		}
	}
	return best
}

// decide joins consensus round r, electing a process id.
func (f *ConsFAC) decide(r int64, pid int) int {
	f.decisions.Add(1)
	return int(f.rounds.get(r).Decide(pid, int64(pid)))
}

// preferOf loads p's preference; the virtual process -1 prefers the empty
// list.
func (f *ConsFAC) preferOf(p int) *Node {
	if p < 0 {
		return nil
	}
	return f.prefer[p].Load()
}

// RoundsPerOp reports the average number of consensus rounds joined per
// fetch-and-cons so far (Corollary 27: bounded by n+1).
func (f *ConsFAC) RoundsPerOp() float64 {
	ops := f.ops.Load()
	if ops == 0 {
		return 0
	}
	return float64(f.decisions.Load()) / float64(ops)
}

// merge implements the paper's "\" operator: prepend to base every goal
// entry not already in base, preserving goal's relative order.
//
// Membership is resolved in one walk of base. Within any list of the
// coherent family, a process's entries appear with strictly decreasing
// sequence numbers from the head (a process announces its next operation
// only after the previous one completed and entered the list), so once the
// walk passes an entry of the same process with a smaller sequence number,
// the probe entry cannot appear deeper.
func merge(goal []*Entry, base *Node) *Node {
	return mergeWith(goal, base, nil, make([]bool, len(goal)), make([]bool, len(goal)))
}

// mergeWith is merge with caller-owned membership buffers (len ≥ len(goal))
// so the hot path reuses per-pid scratch instead of allocating two slices
// per consensus round, plus the decided registers backing the truncation
// fallback below (nil when the caller has none — untruncated unit tests).
// Node churn audit: the only allocations left are the Cons cells for goal
// entries genuinely absent from base — each becomes part of the proposed
// (and possibly decided) list, so none is avoidable.
//
// Truncation fallback. A base truncated by the log GC (gc.go) can cut the
// walk short at the severed anchor, hiding an already-ordered goal entry
// whose node was retired: the goal may hold a *stale* copy of announce[p],
// loaded before p overwrote it with its next operation, and once p (and
// everyone else) moved past the old entry the mark can pass it and the
// swing sever it — along with all of p's older entries that the smaller-Seq
// rule would otherwise resolve against. Walk membership alone would then
// re-cons the completed entry and replays would apply it twice. The decided
// registers close the gap without any walk: an entry below the mark always
// has an owner whose certified decided list is headed by an entry at least
// as new (the owner's observed register can only pass an entry after the
// owner's later operation published a newer decided head — see gc.go), so a
// not-found goal entry g is consed only when decided[g.Pid] has not reached
// g.Seq. For an in-flight g the owner's decided head is strictly older, so
// the fallback never suppresses the Lemma 24 helping guarantee; and a
// completed g missing from an *untruncated* base only happens in proposals
// that cannot win their round (the fixed order through the previous round
// is contained in base), where membership is irrelevant.
func mergeWith(goal []*Entry, base *Node, decided []atomic.Pointer[Node], found, resolved []bool) *Node {
	if len(goal) == 0 {
		return base
	}
	unresolved := len(goal)
	found = found[:len(goal)]
	resolved = resolved[:len(goal)]
	for i := range found {
		found[i], resolved[i] = false, false
	}
	for n := base; n != nil && unresolved > 0; n = n.Rest() {
		cur := n.Entry
		for i, g := range goal {
			if resolved[i] {
				continue
			}
			if cur == g {
				found[i], resolved[i] = true, true
				unresolved--
			} else if cur.Pid == g.Pid && cur.Seq < g.Seq {
				resolved[i] = true // g cannot appear deeper
				unresolved--
			}
		}
	}
	out := base
	for i := len(goal) - 1; i >= 0; i-- {
		if found[i] {
			continue
		}
		if g := goal[i]; decided != nil {
			if d := decided[g.Pid].Load(); d != nil && d.Entry.Seq >= g.Seq {
				continue // g completed and is ordered; the walk missed it only by truncation
			}
		}
		out = Cons(goal[i], out)
	}
	return out
}

// trim returns the node of entry e within list l; its Rest is the paper's
// trim (the caller's view of the state its operation observed), and the
// node itself is the decided prefix ending with e that publish certifies.
func trim(l *Node, e *Entry) *Node {
	for n := l; n != nil; n = n.Rest() {
		if n.Entry == e {
			return n
		}
	}
	panic(fmt.Sprintf("core: entry %s missing from decided list; Lemma 24 invariant broken", e))
}

// roundArray is the unbounded consensus[] array: a lock-free two-level
// radix of lazily installed consensus objects. Installation is a single
// CAS; losing the race means adopting the winner's object, so access stays
// wait-free.
type roundArray struct {
	factory consensus.Factory
	dir     [dirSize]atomic.Pointer[roundChunk]

	// races counts lost installation CASes (another process published the
	// chunk or round first); nil (no-op) unless instrumented.
	races *wfstats.Counter
}

const (
	chunkBits = 10
	chunkSize = 1 << chunkBits // rounds per chunk
	dirSize   = 1 << 14        // chunks; ~16M rounds capacity
)

type roundChunk struct {
	slots [chunkSize]atomic.Pointer[consensusBox]
}

type consensusBox struct{ obj consensus.Object }

func newRoundArray(factory consensus.Factory) *roundArray {
	return &roundArray{factory: factory}
}

func (a *roundArray) get(r int64) consensus.Object {
	ci := r >> chunkBits
	if ci >= dirSize {
		panic("core: consensus round capacity exceeded")
	}
	chunk := a.dir[ci].Load()
	if chunk == nil {
		fresh := &roundChunk{}
		if a.dir[ci].CompareAndSwap(nil, fresh) {
			chunk = fresh
		} else {
			a.races.Inc()
			chunk = a.dir[ci].Load()
		}
	}
	si := r & (chunkSize - 1)
	box := chunk.slots[si].Load()
	if box == nil {
		fresh := &consensusBox{obj: a.factory()}
		if chunk.slots[si].CompareAndSwap(nil, fresh) {
			box = fresh
		} else {
			a.races.Inc()
			box = chunk.slots[si].Load()
		}
	}
	return box.obj
}
