package wfstats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind discriminates the metric types a registry can hold.
type Kind string

// The metric kinds.
const (
	KindCounter   Kind = "counter"
	KindStriped   Kind = "striped-counter"
	KindGauge     Kind = "gauge"
	KindGaugeFunc Kind = "gaugefunc"
	KindHistogram Kind = "histogram"
)

// metric is one registered metric; exactly one of the value fields is set,
// per Kind.
type metric struct {
	name    string
	kind    Kind
	counter *Counter
	striped *StripedCounter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// Registry names and exports a set of metrics. Registration is idempotent
// by name — asking twice for the same counter returns the same counter, so
// several instances (e.g. the shards of a sharded front end) registering
// under one name share it and the registry reports their aggregate.
//
// Registration uses a copy-on-write list published by compare-and-swap, so
// it is safe from any goroutine and never blocks a concurrent recorder or
// snapshot. A nil *Registry is the no-op mode: it hands out nil metrics
// whose record methods return after one predicated load.
type Registry struct {
	prefix string
	state  *registryState
}

// registryState is shared between a registry and its Scoped views.
type registryState struct {
	metrics atomic.Pointer[[]*metric] // sorted by name, immutable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &registryState{}}
}

// Scoped returns a view of the registry that prefixes every metric name
// with prefix + "." — one registry can hold several subsystems' metrics
// without name collisions. Nil-safe: a nil registry scopes to nil.
func (r *Registry) Scoped(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{prefix: r.prefix + prefix + ".", state: r.state}
}

// Counter returns the counter named name, registering it on first use.
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.install(&metric{name: r.prefix + name, kind: KindCounter, counter: &Counter{}})
	return m.counter
}

// StripedCounter returns the striped counter named name with width slots,
// registering it on first use; the first registration's width wins. Use it
// for counters on paths hot enough that a shared cache line would show up
// in the measurement, when the caller has a natural slot index (a pid).
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) StripedCounter(name string, width int) *StripedCounter {
	if r == nil {
		return nil
	}
	m := r.install(&metric{name: r.prefix + name, kind: KindStriped,
		striped: &StripedCounter{slots: make([]paddedInt64, width)}})
	return m.striped
}

// Gauge returns the gauge named name, registering it on first use.
// Nil-safe: a nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.install(&metric{name: r.prefix + name, kind: KindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — for derived quantities (imbalance ratios, set sizes) that would
// cost too much to maintain on the record path. fn must be safe to call
// from any goroutine and should be bounded. Nil-safe no-op on a nil
// registry; re-registering a name keeps the first fn.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.install(&metric{name: r.prefix + name, kind: KindGaugeFunc, fn: fn})
}

// Histogram returns the histogram named name, registering it on first use.
// Nil-safe: a nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.install(&metric{name: r.prefix + name, kind: KindHistogram, hist: &Histogram{}})
	return m.hist
}

// install publishes m unless a metric of its name exists, and returns the
// registered metric. A kind mismatch on an existing name panics: it is a
// programming error on the level of a duplicate type declaration.
func (r *Registry) install(m *metric) *metric {
	//wf:lockfree [M] copy-on-write CAS: a retry means another process published a registration, and registrations are finitely many (M, fixed at setup), so the retries amortize to the registration count — the retry schedule just belongs to the other processes
	for {
		old := r.state.metrics.Load()
		if old != nil {
			if existing := findMetric(*old, m.name); existing != nil {
				if existing.kind != m.kind {
					panic(fmt.Sprintf("wfstats: metric %q registered as %s and %s", m.name, existing.kind, m.kind))
				}
				return existing
			}
		}
		var next []*metric
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, m)
		sort.Slice(next, func(i, j int) bool { return next[i].name < next[j].name })
		if r.state.metrics.CompareAndSwap(old, &next) {
			return m
		}
	}
}

// findMetric resolves name in a sorted metric list.
func findMetric(list []*metric, name string) *metric {
	i := sort.Search(len(list), func(i int) bool { return list[i].name >= name })
	if i < len(list) && list[i].name == name {
		return list[i]
	}
	return nil
}

// Sample is one metric's value at snapshot time.
type Sample struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Value is the counter count or gauge value (counters and gauges only).
	Value int64 `json:"value"`
	// Count, Sum, Max and Buckets describe histograms.
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads every metric once and returns the samples sorted by name.
// Each value is one atomic load (bounded loads for histograms); the
// snapshot is not an atomic cut across metrics, which is the standard — and
// here explicitly accepted — monitoring trade-off. Nil-safe: nil registry
// snapshots to nil.
//
//wf:steps M
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	list := r.state.metrics.Load()
	if list == nil {
		return nil
	}
	out := make([]Sample, 0, len(*list))
	for _, m := range *list {
		s := Sample{Name: m.name, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = m.counter.Load()
		case KindStriped:
			s.Value = m.striped.Load()
		case KindGauge:
			s.Value = m.gauge.Load()
		case KindGaugeFunc:
			s.Value = m.fn()
		case KindHistogram:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			s.Max = m.hist.Max()
			s.Mean = m.hist.Mean()
			s.Buckets = m.hist.Buckets()
		}
		out = append(out, s)
	}
	return out
}

// WriteText renders the snapshot as an aligned text table, histograms with
// count/mean/max and a compact bucket line.
//
//wf:steps M
func (r *Registry) WriteText(w io.Writer) error {
	samples := r.Snapshot()
	width, kindWidth := len("METRIC"), len("KIND")
	for _, s := range samples {
		if len(s.Name) > width {
			width = len(s.Name)
		}
		if len(s.Kind) > kindWidth {
			kindWidth = len(s.Kind)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", width, "METRIC", kindWidth, "KIND", "VALUE"); err != nil {
		return err
	}
	for _, s := range samples {
		val := fmt.Sprintf("%d", s.Value)
		if s.Kind == KindHistogram {
			val = fmt.Sprintf("count=%d mean=%.2f max=%d %s", s.Count, s.Mean, s.Max, bucketString(s.Buckets))
		}
		kind := s.Kind
		if kind == KindGaugeFunc {
			kind = KindGauge // a derived gauge reads as a gauge
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", width, s.Name, kindWidth, kind, val); err != nil {
			return err
		}
	}
	return nil
}

// bucketString renders non-empty buckets as "[lo,hi]:count ...".
func bucketString(bs []Bucket) string {
	var b strings.Builder
	for i, bk := range bs {
		if i > 0 {
			b.WriteByte(' ')
		}
		if bk.Low == bk.High {
			fmt.Fprintf(&b, "[%d]:%d", bk.Low, bk.Count)
		} else {
			fmt.Fprintf(&b, "[%d,%d]:%d", bk.Low, bk.High, bk.Count)
		}
	}
	return b.String()
}

// WriteJSON renders the snapshot as one indented JSON array.
//
//wf:steps M
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	if samples == nil {
		samples = []Sample{}
	}
	buf, err := json.MarshalIndent(samples, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
