// Package wfstats is a wait-free observability layer for the wait-free
// constructions: counters, gauges and fixed-bucket histograms whose record
// path is itself wait-free — a bounded number of sync/atomic steps, no
// locks, no allocation — so instrumenting the universal construction cannot
// reintroduce the blocking the construction exists to avoid, and cannot
// perturb the step-complexity quantities it measures.
//
// Everything is nil-safe: a nil *Registry hands out nil metrics, and every
// record method on a nil metric is a single predicated load (the nil
// receiver check). Un-instrumented callers therefore share one code path
// with instrumented ones and pay essentially nothing.
//
// The recorded quantities are the ones the paper's results are stated in —
// operation counts and per-operation step counts (consensus rounds, replay
// lengths, retries). A registry snapshot is how the repo reports wait-free
// vs lock-based comparisons and checks bounds like Corollary 27's n+1
// rounds per fetch-and-cons.
//
//wf:waitfree
package wfstats

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Load returns the current count; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// StripedCounter is a counter split into per-process single-writer slots,
// each on its own cache line. It is the package's answer to instrumenting a
// path hot enough that even one shared atomic add would show up in the
// measurement: each slot is written by exactly one process (the paper's
// single-writer-register discipline, as in announce and prefer), so a
// recording is an atomic load and store of a private cache line — no
// LOCK-prefixed read-modify-write, no bouncing — and Load sums the slots.
// The trade is memory (64 bytes per slot) and the REQUIREMENT that slot i
// has a single writer; two writers on one slot lose increments.
type StripedCounter struct {
	// slots[i] is process i's stripe; the Add(i, …) caller is its only
	// writer (the REQUIREMENT above, now machine-checked).
	//
	//wf:len n
	//wf:singlewriter i
	slots []paddedInt64
}

// paddedInt64 is an atomic counter padded out to a 64-byte cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds 1 to slot i. No-op on a nil counter.
func (c *StripedCounter) Inc(i int) { c.Add(i, 1) }

// Add adds d to slot i, which must be in [0, width). The update is a plain
// atomic load + store — correct only under the type's single-writer-per-slot
// contract, and cheaper than a read-modify-write by design. No-op on a nil
// counter.
func (c *StripedCounter) Add(i int, d int64) {
	if c == nil {
		return
	}
	s := &c.slots[i].v
	s.Store(s.Load() + d)
}

// Load sums the slots: one atomic load per slot. Concurrent Incs may
// straddle the scan (monotone-counter snapshot semantics). 0 on a nil
// counter.
func (c *StripedCounter) Load() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.slots {
		total += c.slots[i].v.Load()
	}
	return total
}

// Width returns the slot count; 0 on a nil counter.
func (c *StripedCounter) Width() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d. No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v exceeds it.  No-op on a nil gauge.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	maxAtomic(&g.v, v)
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// maxAtomic raises *a to v monotonically.
func maxAtomic(a *atomic.Int64, v int64) {
	//wf:lockfree [1] monotone-max CAS: a retry means another process raised the value; the observed maximum converges but the trip count is theirs, not ours — amortized over the system, one step
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// NumBuckets is the number of histogram buckets: one per power of two of
// int64's non-negative range, plus bucket 0 for the value 0.
const NumBuckets = 64

// Histogram is a fixed-bucket power-of-two histogram of non-negative
// values: bucket 0 counts the value 0, bucket i (i ≥ 1) counts values in
// [2^(i-1), 2^i). The record path is three atomic adds, one atomic max,
// and no allocation; negative values clamp to 0.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// max only ever rises (maxAtomic's guarded CAS).
	//
	//wf:monotone
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	//wf:waiver monotone maxAtomic raises the register behind a pointer this pass cannot see through; its CAS is guarded v > cur, so the store is non-decreasing
	maxAtomic(&h.max, v)
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps a non-negative value to its bucket index: the bit length of
// v, i.e. 0→0, 1→1, 2..3→2, 4..7→3, ...
func bucketOf(v int64) int { return bits.Len64(uint64(v)) }

// BucketLow returns the smallest value bucket i counts.
func BucketLow(i int) int64 {
	if i <= 1 {
		return int64(i)
	}
	return 1 << (i - 1)
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value; 0 on a nil histogram.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean observed value; 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1], clamped) of the observed
// values: the bucket holding the rank-⌈q·count⌉ observation, linearly
// interpolated within the bucket's power-of-two range and clamped to the
// observed maximum. The coarse buckets make this an estimate with relative
// error bounded by the bucket width (a factor of two), which is the usual
// resolution latency percentiles are quoted at; the reading is built from
// one atomic load per bucket, so concurrent Observes may straddle the scan
// with the standard monotone-snapshot semantics. 0 on a nil histogram or
// with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1 // 1-based rank of the quantile
	var seen int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			low := BucketLow(i)
			v := low
			if i > 1 {
				high := 2*low - 1
				v = low + int64(float64(rank-seen-1)/float64(n)*float64(high-low))
			}
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
		seen += n
	}
	return h.max.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values in
// [Low, High] (High is inclusive; for bucket 0, Low = High = 0).
type Bucket struct {
	Low   int64 `json:"low"`
	High  int64 `json:"high"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets, lowest first. Each bucket is read
// with one atomic load; concurrent Observes may straddle the scan, so the
// bucket sum can trail Count by in-flight recordings — the standard
// monotone-counter snapshot semantics.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		high := int64(0)
		if i >= 1 {
			high = 2*BucketLow(i) - 1
		}
		out = append(out, Bucket{Low: BucketLow(i), High: high, Count: n})
	}
	return out
}
