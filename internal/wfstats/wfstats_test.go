package wfstats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	if again := r.Counter("ops"); again != c {
		t.Error("re-registering a name must return the same counter")
	}
}

// TestStripedCounter: per-slot single-writer recording sums correctly under
// concurrency (one goroutine per slot, per the type's contract), and the
// registry treats the name idempotently with the first width winning.
func TestStripedCounter(t *testing.T) {
	r := NewRegistry()
	const width = 4
	const per = 5000
	c := r.StripedCounter("fast", width)
	if c.Width() != width {
		t.Fatalf("Width = %d, want %d", c.Width(), width)
	}
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc(i)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != width*per {
		t.Errorf("Load = %d, want %d", got, width*per)
	}
	if again := r.StripedCounter("fast", 99); again != c || again.Width() != width {
		t.Error("re-registration must return the first counter, first width wins")
	}
	samples := r.Snapshot()
	if len(samples) != 1 || samples[0].Kind != KindStriped || samples[0].Value != width*per {
		t.Errorf("snapshot = %+v", samples)
	}
}

func TestStripedCounterNilNoOp(t *testing.T) {
	var r *Registry
	c := r.StripedCounter("x", 8)
	c.Inc(3)
	c.Add(7, 5)
	if c.Load() != 0 || c.Width() != 0 {
		t.Error("nil striped counter must read as zero")
	}
}

func TestStripedCounterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a striped counter must panic")
		}
	}()
	r.StripedCounter("x", 2)
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(7)
	g.Add(3)
	if got := g.Load(); got != 10 {
		t.Errorf("Load = %d, want 10", got)
	}
	g.Max(4)
	if got := g.Load(); got != 10 {
		t.Errorf("Max(4) lowered the gauge to %d", got)
	}
	g.Max(25)
	if got := g.Load(); got != 25 {
		t.Errorf("Max(25) = %d, want 25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat")
	// Bucket boundaries: 0; 1; 2-3; 4-7; 8-15; ...
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	if got := h.Sum(); got != 25 { // negative clamps to 0
		t.Errorf("Sum = %d, want 25", got)
	}
	if got := h.Max(); got != 8 {
		t.Errorf("Max = %d, want 8", got)
	}
	want := []Bucket{
		{Low: 0, High: 0, Count: 2}, // 0 and the clamped -5
		{Low: 1, High: 1, Count: 1},
		{Low: 2, High: 3, Count: 2},
		{Low: 4, High: 7, Count: 2},
		{Low: 8, High: 15, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewRegistry().Histogram("x")
	if h.Mean() != 0 {
		t.Error("empty histogram mean must be 0")
	}
	h.Observe(10)
	h.Observe(20)
	if got := h.Mean(); got != 15 {
		t.Errorf("Mean = %v, want 15", got)
	}
}

// TestNilNoOp: the advertised no-op mode — a nil registry hands out nil
// metrics and every operation on them is safe and free of effects.
func TestNilNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	r.GaugeFunc("f", func() int64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(1)
	g.Max(9)
	h.Observe(3)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if h.Buckets() != nil {
		t.Error("nil histogram must have nil buckets")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry must snapshot to nil")
	}
	if r.Scoped("sub") != nil {
		t.Error("nil registry must scope to nil")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestScoped(t *testing.T) {
	r := NewRegistry()
	r.Scoped("a").Scoped("b").Counter("ops").Add(3)
	r.Counter("ops").Inc()
	samples := r.Snapshot()
	names := make([]string, len(samples))
	for i, s := range samples {
		names[i] = s.Name
	}
	want := []string{"a.b.ops", "ops"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("names = %v, want %v", names, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Gauge("a").Set(2)
	r.Histogram("m").Observe(3)
	r.GaugeFunc("d", func() int64 { return 4 })
	samples := r.Snapshot()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	if !sort.SliceIsSorted(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name }) {
		t.Error("snapshot must be sorted by name")
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if byName["z"].Value != 1 || byName["a"].Value != 2 || byName["d"].Value != 4 {
		t.Errorf("sample values wrong: %+v", byName)
	}
	if m := byName["m"]; m.Count != 1 || m.Sum != 3 || m.Max != 3 {
		t.Errorf("histogram sample wrong: %+v", m)
	}
}

// TestConcurrentRecordAndRegister hammers recording, registration and
// snapshotting from many goroutines; run under -race this is the data-race
// audit of the copy-on-write registry and atomic record paths.
func TestConcurrentRecordAndRegister(t *testing.T) {
	r := NewRegistry()
	const procs = 8
	const per = 2000
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			own := r.Counter(fmt.Sprintf("own.%d", p))
			h := r.Histogram("hist")
			for i := 0; i < per; i++ {
				c.Inc()
				own.Inc()
				h.Observe(int64(i))
				if i%500 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != procs*per {
		t.Errorf("shared counter = %d, want %d", got, procs*per)
	}
	h := r.Histogram("hist")
	if got := h.Count(); got != procs*per {
		t.Errorf("histogram count = %d, want %d", got, procs*per)
	}
	var bucketSum int64
	for _, b := range h.Buckets() {
		bucketSum += b.Count
	}
	if bucketSum != procs*per {
		t.Errorf("bucket sum = %d, want %d", bucketSum, procs*per)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("universal.cons_ops").Add(12)
	r.Histogram("universal.replay_len").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"METRIC", "universal.cons_ops", "counter", "12", "universal.replay_len", "histogram", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(5)
	r.Histogram("lat").Observe(9)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.Unmarshal(buf.Bytes(), &samples); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(samples) != 2 || samples[0].Name != "lat" || samples[1].Value != 5 {
		t.Errorf("decoded %+v", samples)
	}
}

func TestBucketLow(t *testing.T) {
	for _, tc := range []struct {
		i    int
		want int64
	}{{0, 0}, {1, 1}, {2, 2}, {3, 4}, {10, 512}} {
		if got := BucketLow(tc.i); got != tc.want {
			t.Errorf("BucketLow(%d) = %d, want %d", tc.i, got, tc.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram quantile != 0")
	}
	h = &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile != 0")
	}
	// A point mass: every quantile is that value's bucket, clamped to max.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v < 64 || v > 100 {
			t.Fatalf("point-mass Quantile(%v) = %d, want within [64, 100]", q, v)
		}
	}
	// A spread: 90 small values and 10 large ones; the p50 must sit with
	// the small mass and the p99 with the large, within bucket resolution.
	h2 := &Histogram{}
	for i := 0; i < 90; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(10000)
	}
	if v := h2.Quantile(0.5); v < 8 || v > 15 {
		t.Fatalf("p50 = %d, want in value-10's bucket [8,15]", v)
	}
	if v := h2.Quantile(0.99); v < 8192 || v > 10000 {
		t.Fatalf("p99 = %d, want in value-10000's bucket clamped to max", v)
	}
	// Quantiles are monotone in q and clamp out-of-range q.
	prev := int64(-1)
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 0.95, 1, 2} {
		v := h2.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %d after %d", q, v, prev)
		}
		prev = v
	}
	if h2.Quantile(1) != h2.Max() {
		t.Fatalf("Quantile(1) = %d, want max %d", h2.Quantile(1), h2.Max())
	}
}
