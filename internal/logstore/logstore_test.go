package logstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func put(k, v int64) seqspec.Op { return seqspec.Op{Kind: "put", Args: []int64{k, v}} }
func del(k int64) seqspec.Op    { return seqspec.Op{Kind: "del", Args: []int64{k}} }
func get(k int64) seqspec.Op    { return seqspec.Op{Kind: "get", Args: []int64{k}} }

// recoverKV reopens dir and reconstructs the KV state the durable history
// defines: newest snapshots first, then every uncovered record in commit
// order — exactly what the server's boot replay does.
func recoverKV(t *testing.T, dir string) (seqspec.State, *Store) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	state := seqspec.KV{}.Init()
	snaps, err := st.Snapshots()
	if err != nil {
		t.Fatalf("Snapshots: %v", err)
	}
	for _, snap := range snaps {
		for k, v := range snap.State {
			state.Apply(put(k, v))
		}
	}
	if err := st.Replay(func(r Record) error {
		state.Apply(r.Op)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return state, st
}

// TestStoreRoundTrip: committed records survive close/reopen bit-exact and
// in commit order, and the recovered state passes the linearizability
// checker against the acked history — the durable-linearizability claim in
// its simplest form.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The acked history: every op is appended (durable) before its response
	// is computed and recorded, the server's persist-before-apply order.
	var rec linearize.Recorder
	ref := seqspec.KV{}.Init()
	ops := []seqspec.Op{put(1, 10), put(2, 20), del(1), put(2, 21), put(3, 30)}
	for i, op := range ops {
		if err := st.Append([]Record{{Shard: 0, Seq: uint64(i + 1), Op: op}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		ts := rec.Invoke()
		rec.Complete(0, op, ref.Apply(op), ts)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	state, st2 := recoverKV(t, dir)
	defer st2.Close()
	for _, k := range []int64{1, 2, 3} {
		ts := rec.Invoke()
		rec.Complete(0, get(k), state.Apply(get(k)), ts)
	}
	if res := linearize.Check(seqspec.KV{}, rec.History()); !res.OK {
		t.Fatal("recovered reads + acked writes are not linearizable")
	}
}

// TestGroupCommitConcurrent: concurrent appenders all become durable, each
// shard's records replay in seq order, and the group commit actually
// groups (fewer log files than appends under concurrency — asserted
// loosely since grouping depends on scheduling).
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const shards, perShard = 4, 50
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		sh := sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perShard; i++ {
				err := st.Append([]Record{{Shard: uint32(sh), Seq: uint64(i), Op: put(int64(sh), int64(i))}})
				if err != nil {
					t.Errorf("shard %d append %d: %v", sh, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	last := make(map[uint32]uint64)
	total := 0
	if err := st2.Replay(func(r Record) error {
		if r.Seq != last[r.Shard]+1 {
			return fmt.Errorf("shard %d: seq %d after %d", r.Shard, r.Seq, last[r.Shard])
		}
		last[r.Shard] = r.Seq
		total++
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if total != shards*perShard {
		t.Fatalf("replayed %d records, want %d", total, shards*perShard)
	}
	if got := st2.Stats().Batches; got > shards*perShard {
		t.Errorf("batches = %d, more than one per append", got)
	}
}

// TestTornTempFileIgnored is fault injection #1: a crash mid-write leaves
// a tmp-* orphan (partial content, no rename). Recovery must discard it —
// it was never durable, never acked — and the replayed state must still
// linearize against the acked history.
func TestTornTempFileIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]Record{{Shard: 0, Seq: 1, Op: put(7, 70)}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// The torn write: half a log file's worth of garbage under tmp-.
	torn := filepath.Join(dir, "tmp-123456")
	if err := os.WriteFile(torn, []byte("WFL1\x00\x00\x00\x09garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	state, st2 := recoverKV(t, dir)
	defer st2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("recovery left the torn temp file behind")
	}
	var rec linearize.Recorder
	ts := rec.Invoke()
	rec.Complete(0, put(7, 70), seqspec.KV{}.Init().Apply(put(7, 70)), ts)
	ts = rec.Invoke()
	rec.Complete(0, get(7), state.Apply(get(7)), ts)
	if res := linearize.Check(seqspec.KV{}, rec.History()); !res.OK {
		t.Fatal("state after torn-temp recovery not linearizable")
	}
}

// TestCrashBetweenWriteAndRename is fault injection #2: the temp file was
// fully written and fsynced but the crash hit before the rename, so the
// operation was never acked. Recovery must treat it as never-happened:
// drop the orphan, serve exactly the previously acked state.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]Record{{Shard: 0, Seq: 1, Op: put(1, 11)}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// A byte-perfect log file parked under its temp name: exactly what the
	// disk holds when the crash lands between fsync(file) and rename.
	committed, err := os.ReadFile(filepath.Join(dir, "log-"+strings.Repeat("0", 15)+"1"))
	if err != nil {
		t.Fatal(err)
	}
	never := bytes.Replace(committed, []byte{11 * 2}, []byte{99 * 2}, 1) // the zig-zag varint of value 11 -> 99
	if err := os.WriteFile(filepath.Join(dir, "tmp-55555"), never, 0o644); err != nil {
		t.Fatal(err)
	}

	state, st2 := recoverKV(t, dir)
	defer st2.Close()
	if got := state.Apply(get(1)); got != 11 {
		t.Errorf("get(1) = %d after crash-before-rename, want the acked 11 (99 was never renamed, never acked)", got)
	}
	// And the store keeps working: the next append after recovery lands in
	// a fresh file and survives another cycle.
	if err := st2.Append([]Record{{Shard: 0, Seq: 2, Op: put(1, 12)}}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	state3, st3 := recoverKV(t, dir)
	defer st3.Close()
	if got := state3.Apply(get(1)); got != 12 {
		t.Errorf("get(1) = %d after second recovery, want 12", got)
	}
}

// TestDoubleReplayIdempotent is fault injection #3: replay is re-runnable
// — a recovery that itself crashes and re-replays must reconstruct the
// identical state, and Replay on one open store delivers the same records
// every time.
func TestDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := st.Append([]Record{{Shard: 0, Seq: uint64(i), Op: put(int64(i%5), int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	// A snapshot partway through, so replay exercises the covered-prefix
	// skip on both passes.
	if err := st.WriteSnapshot(Snapshot{Shard: 0, Seq: 20, State: map[int64]int64{0: 20, 1: 16, 2: 17, 3: 18, 4: 19}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	replayOnce := func() (seqspec.State, []string) {
		state, st := recoverKV(t, dir)
		defer st.Close()
		var seen []string
		if err := st.Replay(func(r Record) error { // second pass on the same open store
			seen = append(seen, fmt.Sprintf("%d:%d:%s", r.Shard, r.Seq, r.Op))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return state, seen
	}
	s1, r1 := replayOnce()
	s2, r2 := replayOnce()
	if len(r1) != len(r2) {
		t.Fatalf("replay delivered %d then %d records", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay %d: %s vs %s", i, r1[i], r2[i])
		}
	}
	for k := int64(0); k < 5; k++ {
		if a, b := s1.Apply(get(k)), s2.Apply(get(k)); a != b {
			t.Errorf("get(%d) differs across recoveries: %d vs %d", k, a, b)
		}
	}
	// The double-applied snapshot prefix must not double-count: key 0's
	// last write is op 40 (put(0,40)), replayed exactly once over the
	// snapshot base.
	if got := s1.Apply(get(0)); got != 40 {
		t.Errorf("get(0) = %d, want 40", got)
	}
}

// TestSnapshotCompact: a snapshot covering the whole log lets Compact
// erase every log file and the superseded snapshot, and recovery from the
// compacted directory serves the identical state.
func TestSnapshotCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := seqspec.KV{}.Init()
	for i := 1; i <= 30; i++ {
		op := put(int64(i%4), int64(i))
		state.Apply(op)
		if err := st.Append([]Record{{Shard: 0, Seq: uint64(i), Op: op}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(Snapshot{Shard: 0, Seq: 15, State: map[int64]int64{0: 12, 1: 13, 2: 14, 3: 15}}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(Snapshot{Shard: 0, Seq: 30, State: map[int64]int64{0: 28, 1: 29, 2: 30, 3: 27}}); err != nil {
		t.Fatal(err)
	}
	n, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Compact erased nothing with a full-coverage snapshot")
	}
	if live := st.Stats().LogFiles; live != 0 {
		t.Errorf("%d log files left after full compaction", live)
	}
	st.Close()

	names, _ := os.ReadDir(dir)
	var snapCount int
	for _, e := range names {
		if strings.HasPrefix(e.Name(), "log-") {
			t.Errorf("log file %s survived compaction", e.Name())
		}
		if strings.HasPrefix(e.Name(), "snap-") {
			snapCount++
		}
	}
	if snapCount != 1 {
		t.Errorf("%d snapshot files after compaction, want 1", snapCount)
	}

	got, st2 := recoverKV(t, dir)
	defer st2.Close()
	for k := int64(0); k < 4; k++ {
		if a, b := got.Apply(get(k)), state.Apply(get(k)); a != b {
			t.Errorf("get(%d) = %d after compaction, want %d", k, a, b)
		}
	}
}

// TestCorruptSnapshotFallsBack: a bit-flipped snapshot fails its CRC and
// recovery falls back — to an older valid snapshot or to pure log replay —
// rather than serving corrupt state or refusing to start.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := st.Append([]Record{{Shard: 0, Seq: uint64(i), Op: put(1, int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(Snapshot{Shard: 0, Seq: 10, State: map[int64]int64{1: 10}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Flip a byte in the snapshot body.
	var snapName string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			snapName = e.Name()
		}
	}
	path := filepath.Join(dir, snapName)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	state, st2 := recoverKV(t, dir)
	defer st2.Close()
	if got := state.Apply(get(1)); got != 10 {
		t.Errorf("get(1) = %d with corrupt snapshot, want 10 via log replay", got)
	}
}

// TestCorruptLogFileFatal: a committed log file held acknowledged writes,
// so a CRC failure there must fail Replay loudly (ErrCorrupt) instead of
// silently dropping acked data.
func TestCorruptLogFileFatal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]Record{{Shard: 0, Seq: 1, Op: put(1, 1)}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	var logName string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "log-") {
			logName = e.Name()
		}
	}
	path := filepath.Join(dir, logName)
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	err = st2.Replay(func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Replay over a corrupt log = %v, want a checksum error", err)
	}
}

// TestAppendAfterClose: the lifecycle edge — Append after Close errors
// rather than hanging or panicking.
func TestAppendAfterClose(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Append([]Record{{Shard: 0, Seq: 1, Op: put(1, 1)}}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}
