// Package logstore is the service tier's crash-recoverable backing store:
// decided-log entries and state snapshots persisted through write-once
// files in an atomic-rename CAS directory, replayed on boot to reconstruct
// the sharded KV.
//
// # Write-once CAS directory
//
// Every durable object is one immutable file whose content is written to a
// temp file, fsynced, and atomically renamed into its final name; the
// directory is fsynced after each rename so the name itself is durable.
// A reader therefore never observes a half-written object under a final
// name: a crash leaves at worst a tmp-* orphan (removed on Open) — this is
// the qscod casdir write-once discipline, applied to a log instead of
// per-round consensus state. There is no in-place mutation and no WAL to
// repair; recovery is "list the directory, ignore orphans, replay".
//
//   - log-<idx>: one committed append group — a batch of Records, CRC-
//     sealed. Indices are dense in commit order; Compact may later erase a
//     prefix, leaving a gap that Replay skips naturally.
//   - snap-<shard>-<seq>: shard's state with every record seq'd <= seq
//     applied. A newer snapshot supersedes an older; Compact erases
//     superseded snapshots and any log file fully covered by snapshots.
//   - tmp-*: in-flight writes; never promised durable, removed on Open.
//
// # Group commit
//
// Append blocks until its records are durable (file + directory fsync).
// One flusher goroutine drains concurrently queued appends into a single
// log file with a single fsync pair, so the fsync cost amortizes across
// however many appliers are committing at once — the classic group-commit
// trade: under load, latency per append approaches one fsync / group size.
//
// # Durability contract
//
// The server persists before it applies or acks (see internal/server), so
// the store's guarantee composes to durable linearizability: an
// acknowledged operation is in a durable log file (or covered by a durable
// snapshot) and survives kill -9; an unacknowledged operation may or may
// not survive, which is the standard ambiguity of any storage interface.
//
// Wait-freedom claims stop at the wait-free core this store feeds: the
// public methods carry function-level //wf:blocking (fsync, rename and
// channel handoff are the point), the write-once commit path is audited by
// wfvet's fsyncorder analyzer (//wf:durable on writeOnce), and the flusher
// goroutine's shutdown edge is declared with //wf:owns.
package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// Record is one decided operation bound for shard's log: Seq is the
// shard-local persistence sequence number assigned by the shard's single
// applier (dense from 1), Op the decided operation.
type Record struct {
	Shard uint32
	Seq   uint64
	Op    seqspec.Op
}

// Snapshot is one shard's materialized state: State reflects every record
// of the shard with seq <= Seq. KV states are int64->int64 maps.
type Snapshot struct {
	Shard uint32
	Seq   uint64
	State map[int64]int64
}

var (
	logMagic  = [4]byte{'W', 'F', 'L', '1'}
	snapMagic = [4]byte{'W', 'F', 'S', '1'}
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("logstore: store is closed")

// ErrCorrupt wraps integrity failures in committed log files. A torn or
// bit-rotten *log* file is fatal — it held acknowledged operations — while
// an invalid snapshot file is skipped (recovery just replays more records).
var ErrCorrupt = errors.New("logstore: corrupt log file")

// Stats is a point-in-time counter snapshot of the store's activity.
type Stats struct {
	Batches   int64 // committed append groups (log files written)
	Records   int64 // records committed
	Snapshots int64 // snapshot files written
	Compacted int64 // files erased by Compact
	LogFiles  int64 // live log files
	Fsyncs    int64 // fsync syscalls issued (file + directory syncs)
}

type appendReq struct {
	recs []Record
	err  chan error
}

// Store is an open CAS directory. All methods are safe for concurrent use.
type Store struct {
	dir  string
	dirf *os.File

	mu      sync.Mutex
	nextIdx uint64
	// logs holds the live log file indices in ascending order; shardMax
	// maps a log index to its per-shard newest record seq (known for files
	// written or replayed by this process — Compact skips unknown files).
	logs     []uint64
	shardMax map[uint64]map[uint32]uint64
	// snaps is the newest durable snapshot file per shard (by seq);
	// snapFiles lists every snap file still on disk for compaction.
	// validated caches the newest snapshot per shard that actually decodes
	// (filled lazily): Replay's covered-prefix skip and Snapshots' states
	// must come from the same set, or a corrupt snapshot would silently
	// swallow the log records it claimed to cover.
	snaps     map[uint32]snapRef
	snapFiles []snapRef
	validated map[uint32]Snapshot

	reqs        chan appendReq
	quit        chan struct{}
	flusherDone chan struct{}
	closed      atomic.Bool

	n storeCounters
}

// storeCounters keeps the monitoring counters in their own struct so their
// atomic traffic is plainly what it is — monitoring, not a publication of
// the mutex-guarded index fields above.
type storeCounters struct {
	batches   atomic.Int64
	records   atomic.Int64
	snapCount atomic.Int64
	compacted atomic.Int64
	// fsyncs counts every fsync the store issues (file and directory), the
	// denominator-free half of the service tier's fsyncs/op bench metric:
	// group commit amortizes one fsync pair over a whole drained batch, and
	// this counter is how a bench proves it.
	fsyncs atomic.Int64
}

type snapRef struct {
	shard uint32
	seq   uint64
	name  string
}

// Open opens (creating if needed) the CAS directory at dir: removes tmp-*
// orphans from a previous crash, indexes the committed log and snapshot
// files, and starts the group-commit flusher.
//
//wf:blocking opens and fsyncs files; launches the blocking flusher
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:         dir,
		dirf:        dirf,
		nextIdx:     1,
		shardMax:    make(map[uint64]map[uint32]uint64),
		snaps:       make(map[uint32]snapRef),
		reqs:        make(chan appendReq, 256),
		quit:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	names, err := dirf.Readdirnames(-1)
	if err != nil {
		dirf.Close()
		return nil, err
	}
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "tmp-"):
			// A write that never reached its rename: never durable, never
			// promised. Removing it is the crash recovery for torn writes.
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "log-"):
			idx, err := strconv.ParseUint(name[len("log-"):], 10, 64)
			if err != nil {
				continue
			}
			s.logs = append(s.logs, idx)
			if idx >= s.nextIdx {
				s.nextIdx = idx + 1
			}
		case strings.HasPrefix(name, "snap-"):
			shardSeq := strings.SplitN(name[len("snap-"):], "-", 2)
			if len(shardSeq) != 2 {
				continue
			}
			shard64, err1 := strconv.ParseUint(shardSeq[0], 10, 32)
			seq, err2 := strconv.ParseUint(shardSeq[1], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			ref := snapRef{shard: uint32(shard64), seq: seq, name: name}
			s.snapFiles = append(s.snapFiles, ref)
			if cur, ok := s.snaps[ref.shard]; !ok || seq > cur.seq {
				s.snaps[ref.shard] = ref
			}
		}
	}
	sort.Slice(s.logs, func(i, j int) bool { return s.logs[i] < s.logs[j] })
	s.n.batches.Store(int64(len(s.logs)))
	//wf:owns s.quit Close closes quit; the flusher drains and exits
	go s.flusher()
	return s, nil
}

// Dir returns the store's directory path.
func (s *Store) Dir() string { return s.dir }

// Append durably commits recs; it is AppendBatch under its original name,
// kept for callers that think in single records or pre-gathered slices.
//
//wf:blocking blocks until the group commit's fsync pair completes
func (s *Store) Append(recs []Record) error { return s.AppendBatch(recs) }

// AppendBatch durably commits recs as one batch: it returns only after the
// records are in a CRC-sealed log file whose name is fsynced into the
// directory. This is the batch-drained applier's entry point — a shard
// applier drains its queue and commits the whole drain here, paying one
// fsync pair for N records; concurrent batches from other appliers may be
// committed together in one file (group commit), each still getting its
// own error. Records of one batch stay contiguous and in order, and an
// empty batch returns nil without touching the flusher.
//
//wf:blocking blocks until the group commit's fsync pair completes
func (s *Store) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	req := appendReq{recs: recs, err: make(chan error, 1)}
	select {
	case s.reqs <- req:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case err := <-req.err:
		return err
	case <-s.flusherDone:
		// The flusher exited between our enqueue and its drain; the ack
		// channel is buffered, so a commit that did see us is not lost.
		select {
		case err := <-req.err:
			return err
		default:
			return ErrClosed
		}
	}
}

// flusher is the group-commit loop: take everything queued, seal it into
// one log file, ack every contributor, repeat.
//
//wf:blocking the group-commit loop: waits on the request channel for work
func (s *Store) flusher() {
	defer close(s.flusherDone)
	for {
		var group []appendReq
		select {
		case req := <-s.reqs:
			group = append(group, req)
		case <-s.quit:
			// Graceful drain: commit what was enqueued before Close.
			for {
				select {
				case req := <-s.reqs:
					group = append(group, req)
				default:
					if len(group) > 0 {
						s.commitGroup(group)
					}
					return
				}
			}
		}
	gather:
		for len(group) < 64 {
			select {
			case req := <-s.reqs:
				group = append(group, req)
			default:
				break gather
			}
		}
		s.commitGroup(group)
	}
}

// commitGroup seals one group into the next log file and acks every req.
//
//wf:blocking serializes index updates under the store mutex around the fsync pair
func (s *Store) commitGroup(group []appendReq) {
	s.mu.Lock()
	idx := s.nextIdx
	s.nextIdx++
	s.mu.Unlock()

	var recs []Record
	for _, req := range group {
		recs = append(recs, req.recs...)
	}
	err := s.writeLogFile(idx, recs)
	if err == nil {
		max := make(map[uint32]uint64)
		for _, r := range recs {
			if r.Seq > max[r.Shard] {
				max[r.Shard] = r.Seq
			}
		}
		s.mu.Lock()
		s.logs = append(s.logs, idx)
		s.shardMax[idx] = max
		s.mu.Unlock()
		s.n.batches.Add(1)
		s.n.records.Add(int64(len(recs)))
	}
	for _, req := range group {
		req.err <- err
	}
}

// writeLogFile writes one sealed log file through the write-once
// discipline: temp file, fsync, rename, directory fsync.
func (s *Store) writeLogFile(idx uint64, recs []Record) error {
	buf := logMagic[:4:4]
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		rec := binary.BigEndian.AppendUint32(nil, r.Shard)
		rec = binary.BigEndian.AppendUint64(rec, r.Seq)
		rec = wire.AppendOp(rec, r.Op)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec)))
		buf = append(buf, rec...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	return s.writeOnce(fmt.Sprintf("log-%016d", idx), buf)
}

// writeOnce atomically publishes content under name: temp file, file
// fsync, rename, directory fsync — the ordering fsyncorder verifies.
//
//wf:durable
func (s *Store) writeOnce(name string, content []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(content); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	s.n.fsyncs.Add(1)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	s.n.fsyncs.Add(1)
	return s.dirf.Sync()
}

// Snapshots returns the newest durable snapshot per shard, decoded and
// integrity-checked. An invalid snapshot file is skipped — the store falls
// back to older snapshots or pure log replay — because a snapshot is an
// optimization, not the record of truth. Replay uses this same validated
// set for its covered-prefix skip, so a snapshot that fails its checksum
// costs extra replay work, never data.
//
//wf:blocking reads snapshot files under the store mutex
func (s *Store) Snapshots() (map[uint32]Snapshot, error) {
	s.mu.Lock()
	if s.validated != nil {
		out := make(map[uint32]Snapshot, len(s.validated))
		for shard, snap := range s.validated {
			out[shard] = snap
		}
		s.mu.Unlock()
		return out, nil
	}
	refs := make([]snapRef, 0, len(s.snaps))
	for _, ref := range s.snaps {
		refs = append(refs, ref)
	}
	all := append([]snapRef(nil), s.snapFiles...)
	s.mu.Unlock()

	out := make(map[uint32]Snapshot, len(refs))
	for _, ref := range refs {
		snap, err := s.readSnapshot(ref)
		if err == nil {
			out[ref.shard] = snap
			continue
		}
		// Fall back to the newest older snapshot of the shard that decodes.
		var older []snapRef
		for _, o := range all {
			if o.shard == ref.shard && o.seq < ref.seq {
				older = append(older, o)
			}
		}
		sort.Slice(older, func(i, j int) bool { return older[i].seq > older[j].seq })
		for _, o := range older {
			if snap, err := s.readSnapshot(o); err == nil {
				out[ref.shard] = snap
				break
			}
		}
	}
	s.mu.Lock()
	if s.validated == nil {
		s.validated = make(map[uint32]Snapshot, len(out))
		for shard, snap := range out {
			s.validated[shard] = snap
		}
	}
	s.mu.Unlock()
	return out, nil
}

func (s *Store) readSnapshot(ref snapRef) (Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, ref.name))
	if err != nil {
		return Snapshot{}, err
	}
	if len(b) < 24 || [4]byte(b[:4]) != snapMagic {
		return Snapshot{}, fmt.Errorf("logstore: snapshot %s: bad magic", ref.name)
	}
	crc := binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[4:len(b)-4]) != crc {
		return Snapshot{}, fmt.Errorf("logstore: snapshot %s: bad checksum", ref.name)
	}
	shard := binary.BigEndian.Uint32(b[4:8])
	seq := binary.BigEndian.Uint64(b[8:16])
	count := binary.BigEndian.Uint32(b[16:20])
	body := b[20 : len(b)-4]
	state := make(map[int64]int64, count)
	for i := uint32(0); i < count; i++ {
		k, n := binary.Varint(body)
		if n <= 0 {
			return Snapshot{}, fmt.Errorf("logstore: snapshot %s: truncated", ref.name)
		}
		body = body[n:]
		v, n := binary.Varint(body)
		if n <= 0 {
			return Snapshot{}, fmt.Errorf("logstore: snapshot %s: truncated", ref.name)
		}
		body = body[n:]
		state[k] = v
	}
	return Snapshot{Shard: shard, Seq: seq, State: state}, nil
}

// WriteSnapshot durably publishes snap. After it returns, Compact may
// erase every log record of the shard with seq <= snap.Seq.
//
//wf:blocking fsyncs the snapshot file and updates the index under the store mutex
func (s *Store) WriteSnapshot(snap Snapshot) error {
	buf := snapMagic[:4:4]
	buf = binary.BigEndian.AppendUint32(buf, snap.Shard)
	buf = binary.BigEndian.AppendUint64(buf, snap.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snap.State)))
	keys := make([]int64, 0, len(snap.State))
	for k := range snap.State {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		buf = binary.AppendVarint(buf, k)
		buf = binary.AppendVarint(buf, snap.State[k])
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	name := fmt.Sprintf("snap-%010d-%016d", snap.Shard, snap.Seq)
	if err := s.writeOnce(name, buf); err != nil {
		return err
	}
	ref := snapRef{shard: snap.Shard, seq: snap.Seq, name: name}
	s.mu.Lock()
	s.snapFiles = append(s.snapFiles, ref)
	if cur, ok := s.snaps[snap.Shard]; !ok || snap.Seq > cur.seq {
		s.snaps[snap.Shard] = ref
	}
	// A snapshot we just wrote and fsynced is valid by construction. Copy
	// the state: the caller (a live applier) keeps mutating its map.
	if s.validated != nil {
		if cur, ok := s.validated[snap.Shard]; !ok || snap.Seq > cur.Seq {
			cp := Snapshot{Shard: snap.Shard, Seq: snap.Seq, State: make(map[int64]int64, len(snap.State))}
			for k, v := range snap.State {
				cp.State[k] = v
			}
			s.validated[snap.Shard] = cp
		}
	}
	s.mu.Unlock()
	s.n.snapCount.Add(1)
	return nil
}

// Replay streams every committed record not covered by the newest durable
// snapshots, in commit order, to fn. Load the states from Snapshots()
// first; together they reconstruct exactly the durable history. Replay
// validates every log file's seal and fails with ErrCorrupt on a bad one —
// committed files held acknowledged writes, so silence would be data loss.
// Safe to call more than once (it re-reads the directory state each time);
// the records delivered are identical, so replay is idempotent as long as
// fn applies them to a fresh state.
//
//wf:blocking reads and validates every live log file
func (s *Store) Replay(fn func(Record) error) error {
	// The covered prefix comes from the *validated* snapshot set (same as
	// Snapshots), never from file names alone: skipping records behind a
	// snapshot that doesn't decode would lose acknowledged writes.
	valid, err := s.Snapshots()
	if err != nil {
		return err
	}
	covered := make(map[uint32]uint64, len(valid))
	for shard, snap := range valid {
		covered[shard] = snap.Seq
	}
	s.mu.Lock()
	logs := append([]uint64(nil), s.logs...)
	s.mu.Unlock()
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })

	for _, idx := range logs {
		recs, err := s.readLogFile(idx)
		if err != nil {
			return err
		}
		max := make(map[uint32]uint64)
		for _, r := range recs {
			if r.Seq > max[r.Shard] {
				max[r.Shard] = r.Seq
			}
			if r.Seq <= covered[r.Shard] {
				continue // the snapshot already reflects it
			}
			if err := fn(r); err != nil {
				return err
			}
		}
		s.mu.Lock()
		s.shardMax[idx] = max
		s.mu.Unlock()
	}
	return nil
}

func (s *Store) readLogFile(idx uint64) ([]Record, error) {
	name := fmt.Sprintf("log-%016d", idx)
	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	if len(b) < 12 || [4]byte(b[:4]) != logMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, name)
	}
	crc := binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[4:len(b)-4]) != crc {
		return nil, fmt.Errorf("%w: %s: bad checksum", ErrCorrupt, name)
	}
	count := binary.BigEndian.Uint32(b[4:8])
	body := b[8 : len(b)-4]
	recs := make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: %s: truncated record header", ErrCorrupt, name)
		}
		n := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < n || n < 12 {
			return nil, fmt.Errorf("%w: %s: truncated record", ErrCorrupt, name)
		}
		rec := body[:n]
		body = body[n:]
		op, rest, err := wire.DecodeOp(rec[12:])
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("%w: %s: bad op encoding", ErrCorrupt, name)
		}
		recs = append(recs, Record{
			Shard: binary.BigEndian.Uint32(rec[0:4]),
			Seq:   binary.BigEndian.Uint64(rec[4:12]),
			Op:    op,
		})
	}
	return recs, nil
}

// Compact erases files made redundant by newer snapshots: log files whose
// every record is covered by the current *validated* per-shard snapshots
// (same set Replay skips by — erasing behind an unverified snapshot would
// lose acked data), and snapshot files superseded by a newer valid one for
// the same shard. Only log files whose contents this process has seen
// (written or replayed) are considered — an unknown file is left alone.
// Returns the number of files erased. Safe to crash at any point: erasure
// is idempotent and recovery never needs an erased file.
//
//wf:blocking erases files and fsyncs the directory under the store mutex
func (s *Store) Compact() (int, error) {
	valid, err := s.Snapshots()
	if err != nil {
		return 0, err
	}
	covered := make(map[uint32]uint64, len(valid))
	validSeq := make(map[uint32]uint64, len(valid))
	for shard, snap := range valid {
		covered[shard] = snap.Seq
		validSeq[shard] = snap.Seq
	}
	s.mu.Lock()
	var victims []string
	var keepLogs []uint64
	for _, idx := range s.logs {
		max, known := s.shardMax[idx]
		dead := known
		for shard, seq := range max {
			if seq > covered[shard] {
				dead = false
				break
			}
		}
		if dead {
			victims = append(victims, fmt.Sprintf("log-%016d", idx))
			delete(s.shardMax, idx)
		} else {
			keepLogs = append(keepLogs, idx)
		}
	}
	s.logs = keepLogs
	var keepSnaps []snapRef
	for _, ref := range s.snapFiles {
		if seq, ok := validSeq[ref.shard]; ok && ref.seq < seq {
			victims = append(victims, ref.name)
		} else {
			keepSnaps = append(keepSnaps, ref)
		}
	}
	s.snapFiles = keepSnaps
	s.mu.Unlock()

	for _, name := range victims {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return 0, err
		}
	}
	if len(victims) > 0 {
		s.n.fsyncs.Add(1)
		if err := s.dirf.Sync(); err != nil {
			return 0, err
		}
		s.n.compacted.Add(int64(len(victims)))
	}
	return len(victims), nil
}

// Stats returns a point-in-time activity snapshot.
//
//wf:blocking takes the store mutex to read the live file count
func (s *Store) Stats() Stats {
	s.mu.Lock()
	live := int64(len(s.logs))
	s.mu.Unlock()
	return Stats{
		Batches:   s.n.batches.Load(),
		Records:   s.n.records.Load(),
		Snapshots: s.n.snapCount.Load(),
		Compacted: s.n.compacted.Load(),
		LogFiles:  live,
		Fsyncs:    s.n.fsyncs.Load(),
	}
}

// Close drains queued appends, stops the flusher and releases the
// directory handle. Appends issued after Close return ErrClosed.
//
//wf:blocking waits for the flusher's graceful drain
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.quit)
	<-s.flusherDone
	return s.dirf.Close()
}
