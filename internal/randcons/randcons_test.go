package randcons

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

var _ consensus.Object = (*Consensus)(nil)

// TestAdoptCommitCoherence: hammer the adopt-commit object directly; if any
// process commits v, every process must leave with v, across schedules and
// participant subsets.
func TestAdoptCommitCoherence(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		ac := newAdoptCommit(n)
		live := 1 + rng.Intn(n)
		type out struct {
			committed bool
			v         int64
		}
		outs := make([]out, live)
		var wg sync.WaitGroup
		for p := 0; p < live; p++ {
			p := p
			in := int64(rng.Intn(3))
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, v := ac.propose(p, in)
				outs[p] = out{committed: st == acCommit, v: v}
			}()
		}
		wg.Wait()
		var commitVal int64
		committed := false
		for _, o := range outs {
			if o.committed {
				if committed && o.v != commitVal {
					t.Fatalf("trial %d: two commit values %d, %d", trial, commitVal, o.v)
				}
				committed, commitVal = true, o.v
			}
		}
		if committed {
			for p, o := range outs {
				if o.v != commitVal {
					t.Fatalf("trial %d: P%d left with %d despite commit %d",
						trial, p, o.v, commitVal)
				}
			}
		}
	}
}

// TestAdoptCommitConvergence: unanimous inputs always commit.
func TestAdoptCommitConvergence(t *testing.T) {
	const n = 4
	for trial := 0; trial < 500; trial++ {
		ac := newAdoptCommit(n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, v := ac.propose(p, 7)
				if st != acCommit || v != 7 {
					t.Errorf("trial %d: unanimous propose returned (%v, %d)", trial, st, v)
				}
			}()
		}
		wg.Wait()
	}
}

// TestRandomizedConsensusSafety: agreement and validity across many trials,
// participant subsets, and seeds. Safety must be certain — randomization
// only affects how long Decide takes.
func TestRandomizedConsensusSafety(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			for trial := 0; trial < 400; trial++ {
				obj := New(n, int64(trial))
				live := 1 + rng.Intn(n)
				inputs := make([]int64, live)
				results := make([]int64, live)
				for p := range inputs {
					inputs[p] = int64(trial*10 + p)
				}
				var wg sync.WaitGroup
				for p := 0; p < live; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						results[p] = obj.Decide(p, inputs[p])
					}()
				}
				wg.Wait()
				valid := false
				for p := 0; p < live; p++ {
					if results[p] != results[0] {
						t.Fatalf("trial %d: disagreement %d vs %d", trial, results[0], results[p])
					}
					if results[0] == inputs[p] {
						valid = true
					}
				}
				if !valid {
					t.Fatalf("trial %d: decided %d, not a participant input %v",
						trial, results[0], inputs[:live])
				}
			}
		})
	}
}

// TestRandomizedConsensusRounds: expected round count stays small (the
// conciliator aligns preferences with constant probability per round).
func TestRandomizedConsensusRounds(t *testing.T) {
	const n, trials = 4, 300
	var total, worst int64
	for trial := 0; trial < trials; trial++ {
		obj := New(n, int64(trial))
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				obj.Decide(p, int64(p))
			}()
		}
		wg.Wait()
		r := obj.Rounds()
		total += r
		if r > worst {
			worst = r
		}
	}
	mean := float64(total) / trials
	t.Logf("rounds: mean %.2f, worst %d over %d trials", mean, worst, trials)
	if mean > 10 {
		t.Errorf("expected rounds suspiciously high: %.2f", mean)
	}
}

// TestUniversalFromRegistersAlone is the payoff: the universal construction
// driven by randomized register-only consensus — a wait-free (with
// probability 1) queue from the weakest level of the hierarchy, answering
// the paper's Section 5 question in code.
func TestUniversalFromRegistersAlone(t *testing.T) {
	const n = 3
	for trial := 0; trial < 10; trial++ {
		seedBase := int64(trial * 1000)
		var k atomic.Int64
		fac := core.NewConsFAC(n, func() consensus.Object {
			return New(n, seedBase+k.Add(1))
		})
		u := core.NewUniversal(seqspec.Queue{}, fac, n)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(trial*10 + p)))
				for i := 0; i < 6; i++ {
					var op seqspec.Op
					if rng.Intn(2) == 0 {
						op = seqspec.Op{Kind: "enq", Args: []int64{int64(p*100 + i)}}
					} else {
						op = seqspec.Op{Kind: "deq"}
					}
					ts := rec.Invoke()
					resp := u.Invoke(p, op)
					rec.Complete(p, op, resp, ts)
				}
			}()
		}
		wg.Wait()
		if res := linearize.Check(seqspec.Queue{}, rec.History()); !res.OK {
			t.Fatalf("trial %d: register-only universal queue not linearizable", trial)
		}
	}
}
