// Package randcons explores the question Herlihy's paper leaves open in its
// conclusion (Section 5): "the use of randomization [1] for wait-free
// concurrent objects remains unexplored." It implements randomized
// n-process consensus from atomic read/write registers alone — the objects
// Theorem 2 proves cannot solve even 2-process consensus deterministically.
// Randomization sidesteps the valency argument: safety (agreement,
// validity) is deterministic, while termination holds with probability 1,
// in expectation after a few rounds against non-adaptive schedulers.
//
// The structure is the classic adopt-commit + conciliator loop:
//
//   - An adopt-commit object (one per round, built from two rounds of
//     single-writer registers and collects) guarantees: if any process
//     commits v, every process leaves the round with v; and if all enter
//     with v, all commit v. This part is deterministic and carries all the
//     safety.
//   - A conciliator mixes preferences between rounds: a process keeps its
//     adopted value or switches to a randomly chosen announced preference.
//     Since preferences are always some process's input, validity is
//     preserved; with constant probability all processes align and the
//     next round commits.
//
// Plugged into the universal construction (internal/core.ConsFAC), this
// yields a randomized wait-free implementation of arbitrary objects from
// read/write registers — completing the paper's open question in code.
//
//wf:blocking randomized protocol: terminates with probability 1 in expected O(n^2) rounds, not in a bounded number of steps
package randcons

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"waitfree/internal/registers"
)

const unset int64 = -1 << 62

// adoptCommit is a one-shot n-process adopt-commit object from registers.
type adoptCommit struct {
	a []registers.Atomic // round-1 proposals
	b []registers.Atomic // round-2 packed (flag, value) records
}

const (
	flagAdopt  int64 = 0
	flagCommit int64 = 1
)

// packAC packs a flag and a small value; values must fit in 40 bits.
func packAC(flag, v int64) int64 { return flag<<40 | (v & ((1 << 40) - 1)) }

func unpackAC(p int64) (flag, v int64) { return p >> 40, p & ((1 << 40) - 1) }

func newAdoptCommit(n int) *adoptCommit {
	ac := &adoptCommit{
		a: make([]registers.Atomic, n),
		b: make([]registers.Atomic, n),
	}
	for i := 0; i < n; i++ {
		ac.a[i].Store(unset)
		ac.b[i].Store(unset)
	}
	return ac
}

// acStatus is the tri-state outcome of an adopt-commit proposal. The
// distinction between acAdopt and acNone is what carries agreement across
// rounds: a process that merely *saw* a commit must deterministically adopt
// its value, while only a process that provably raced no commit (acNone)
// may let the conciliator randomize its next preference.
type acStatus int

const (
	acCommit acStatus = iota + 1
	acAdopt
	acNone
)

// propose runs the two collect rounds. Coherence: if anyone commits v,
// every process returns acCommit or acAdopt with value v — never acNone.
// (If some process P commits, P's collect saw only commit records, so any
// process Q whose adopt record P missed must have written it after P's
// collect, and Q's own collect — which follows Q's write — then sees P's
// commit record.)
func (ac *adoptCommit) propose(pid int, v int64) (acStatus, int64) {
	ac.a[pid].Store(v)
	onlyMine := true
	min := v
	for i := range ac.a {
		u := ac.a[i].Load()
		if u == unset {
			continue
		}
		if u != v {
			onlyMine = false
		}
		if u < min {
			min = u
		}
	}
	if onlyMine {
		ac.b[pid].Store(packAC(flagCommit, v))
	} else {
		ac.b[pid].Store(packAC(flagAdopt, min))
	}

	allCommit := true
	var commitVal int64
	sawCommit := false
	for i := range ac.b {
		p := ac.b[i].Load()
		if p == unset {
			continue
		}
		flag, u := unpackAC(p)
		if flag == flagCommit {
			sawCommit = true
			commitVal = u
		} else {
			allCommit = false
		}
	}
	_, myVal := unpackAC(ac.b[pid].Load())
	switch {
	case sawCommit && allCommit:
		return acCommit, commitVal
	case sawCommit:
		return acAdopt, commitVal
	default:
		return acNone, myVal
	}
}

// Consensus is a one-shot randomized n-process consensus object from
// atomic registers. It satisfies the consensus.Object contract: agreement
// and validity are certain; Decide terminates with probability 1.
type Consensus struct {
	n        int
	announce []registers.Atomic

	mu     sync.Mutex
	rounds []*roundState
	seed   int64

	maxRound atomic.Int64
}

type roundState struct {
	ac    *adoptCommit
	prefs []registers.Atomic // preferences entering this round
}

// New builds a randomized consensus object for n processes. seed
// determines the conciliator coin flips (each process derives its own
// stream), keeping tests reproducible.
func New(n int, seed int64) *Consensus {
	c := &Consensus{n: n, announce: make([]registers.Atomic, n), seed: seed}
	for i := 0; i < n; i++ {
		c.announce[i].Store(unset)
	}
	return c
}

// round returns the (lazily created) state for round r.
func (c *Consensus) round(r int) *roundState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rounds) <= r {
		rs := &roundState{ac: newAdoptCommit(c.n), prefs: make([]registers.Atomic, c.n)}
		for i := 0; i < c.n; i++ {
			rs.prefs[i].Store(unset)
		}
		c.rounds = append(c.rounds, rs)
	}
	return c.rounds[r]
}

// Rounds reports the highest round any process needed (an expectation
// statistic for the termination experiments).
func (c *Consensus) Rounds() int64 { return c.maxRound.Load() + 1 }

// Decide implements consensus.Object.
func (c *Consensus) Decide(pid int, input int64) int64 {
	c.announce[pid].Store(input)
	rng := rand.New(rand.NewSource(c.seed ^ int64(pid)*0x5851F42D4C957F2D))
	pref := input
	for r := 0; ; r++ {
		rs := c.round(r)
		rs.prefs[pid].Store(pref)
		status, v := rs.ac.propose(pid, pref)
		if status == acCommit {
			if r64 := int64(r); r64 > c.maxRound.Load() {
				c.maxRound.Store(r64)
			}
			return v
		}
		pref = v
		// Conciliate ONLY when no commit was seen anywhere (acNone): a
		// process that saw a commit must carry its value unchanged, or a
		// committed round could be overturned. Candidates are announced
		// preferences of this round, so every preference remains some
		// process's input and validity is preserved.
		if status == acNone && rng.Intn(2) == 0 {
			j := rng.Intn(c.n)
			if u := rs.prefs[j].Load(); u != unset {
				pref = u
			}
		}
	}
}
