package baseline

import (
	"sync"
	"testing"
	"time"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

func TestLockedSequentialEquivalence(t *testing.T) {
	l := NewLocked(seqspec.Counter{})
	for i := 0; i < 10; i++ {
		l.Invoke(0, seqspec.Op{Kind: "inc"})
	}
	if got := l.Invoke(0, seqspec.Op{Kind: "get"}); got != 10 {
		t.Errorf("count = %d", got)
	}
}

func TestLockedLinearizable(t *testing.T) {
	obj := seqspec.Queue{}
	l := NewLocked(obj)
	var rec linearize.Recorder
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				op := seqspec.Op{Kind: "enq", Args: []int64{int64(p*10 + i)}}
				if i%2 == 1 {
					op = seqspec.Op{Kind: "deq"}
				}
				ts := rec.Invoke()
				resp := l.Invoke(p, op)
				rec.Complete(p, op, resp, ts)
			}
		}()
	}
	wg.Wait()
	if !linearize.Check(obj, rec.History()).OK {
		t.Fatal("lock-based history not linearizable")
	}
}

// TestCriticalSectionBlocksEveryone demonstrates the paper's Section 1
// motivation quantitatively: while one process sleeps in the critical
// section, no other process completes an operation.
func TestCriticalSectionBlocksEveryone(t *testing.T) {
	l := NewLocked(seqspec.Counter{})
	inside := make(chan struct{})
	release := make(chan struct{})
	l.CriticalSection = func(pid int) {
		if pid == 0 {
			close(inside)
			<-release
		}
	}

	go l.Invoke(0, seqspec.Op{Kind: "inc"}) // stalls inside the lock
	<-inside

	done := make(chan struct{})
	go func() {
		l.Invoke(1, seqspec.Op{Kind: "inc"})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("P1 completed while P0 held the critical section")
	case <-time.After(20 * time.Millisecond):
		// blocked, as the paper predicts
	}
	close(release)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("P1 still blocked after release")
	}
}
