// Package baseline implements what the paper argues against: concurrent
// objects built from critical sections. A lock-based object is linearizable
// and simple, but a process that stalls or halts inside the critical
// section — a page fault, an exhausted quantum, a crash (Section 1) —
// blocks every other process. The benchmarks and examples contrast this
// with the wait-free universal construction under injected delays.
//
//wf:blocking lock-based strawman (Section 1): a stalled critical-section holder blocks every other process by design
package baseline

import (
	"sync"

	"waitfree/internal/seqspec"
)

// Locked wraps a sequential object in a mutex: the classical
// critical-section implementation.
type Locked struct {
	mu    sync.Mutex
	state seqspec.State

	// CriticalSection, if non-nil, is invoked while the lock is held, with
	// the calling pid — the fault-injection point that simulates a page
	// fault or preemption inside the critical section.
	CriticalSection func(pid int)
}

// NewLocked builds a lock-based concurrent version of seq.
func NewLocked(seq seqspec.Object) *Locked {
	return &Locked{state: seq.Init()}
}

// Invoke executes op under the lock.
func (l *Locked) Invoke(pid int, op seqspec.Op) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.CriticalSection != nil {
		l.CriticalSection(pid)
	}
	return l.state.Apply(op)
}

// Invoker is the shape shared by Locked and core.Universal, letting
// benchmarks and examples swap implementations.
type Invoker interface {
	Invoke(pid int, op seqspec.Op) int64
}

var _ Invoker = (*Locked)(nil)
