// Package baseline implements what the paper argues against: concurrent
// objects built from critical sections. A lock-based object is linearizable
// and simple, but a process that stalls or halts inside the critical
// section — a page fault, an exhausted quantum, a crash (Section 1) —
// blocks every other process. The benchmarks and examples contrast this
// with the wait-free universal construction under injected delays.
//
//wf:blocking lock-based strawman (Section 1): a stalled critical-section holder blocks every other process by design
package baseline

import (
	"sync"
	"sync/atomic"
	"time"

	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

// Locked wraps a sequential object in a mutex: the classical
// critical-section implementation.
type Locked struct {
	mu    sync.Mutex
	state seqspec.State

	// CriticalSection, if non-nil, is invoked while the lock is held, with
	// the calling pid — the fault-injection point that simulates a page
	// fault or preemption inside the critical section.
	CriticalSection func(pid int)

	// waiters counts processes between their lock request and its grant; the
	// value the winner reads after acquiring is the convoy it left behind.
	waiters atomic.Int64

	// Instrument metrics; nil (no-op) until Instrument is called. holdNS
	// doubles as the "instrumented" flag so the uninstrumented path never
	// touches the clock.
	ops    *wfstats.Counter
	holdNS *wfstats.Histogram
	convoy *wfstats.Histogram
}

// NewLocked builds a lock-based concurrent version of seq.
func NewLocked(seq seqspec.Object) *Locked {
	return &Locked{state: seq.Init()}
}

// Instrument records the critical-section metrics into reg: baseline.ops,
// baseline.hold_ns (time the lock is held per operation — what a stall
// inflates) and baseline.convoy (processes found still waiting at each lock
// grant — the queue a slow holder builds, Section 1's failure mode made
// measurable). Call before the object is used concurrently; nil reg leaves
// the no-op mode in place, and the uninstrumented Invoke path never reads
// the clock.
func (l *Locked) Instrument(reg *wfstats.Registry) {
	l.ops = reg.Counter("baseline.ops")
	l.holdNS = reg.Histogram("baseline.hold_ns")
	l.convoy = reg.Histogram("baseline.convoy")
}

// Invoke executes op under the lock.
func (l *Locked) Invoke(pid int, op seqspec.Op) int64 {
	l.ops.Inc()
	l.waiters.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.convoy.Observe(l.waiters.Add(-1))
	if l.holdNS != nil {
		start := time.Now()
		// Deferred before Unlock runs, so the sample covers the full hold.
		defer func() { l.holdNS.Observe(time.Since(start).Nanoseconds()) }()
	}
	if l.CriticalSection != nil {
		l.CriticalSection(pid)
	}
	return l.state.Apply(op)
}

// Invoker is the shape shared by Locked and core.Universal, letting
// benchmarks and examples swap implementations.
type Invoker interface {
	Invoke(pid int, op seqspec.Op) int64
}

var _ Invoker = (*Locked)(nil)
