package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// progress is the static mirror of the paper's central distinction: a
// wait-free operation completes in a bounded number of its *own* steps
// (Herlihy §1), while a lock-free one only guarantees that *some* process
// completes — a CAS retry loop spins exactly when other processes keep
// winning. The universal construction escapes this through helping
// (Figure 4-5: every process announces, every process propagates others'
// announced operations), so a retry path that performs no shared write
// cannot be helping anyone and the loop is lock-free at best. The pass
// detects such loops — a condition-less `for` whose every exit requires
// this process's CompareAndSwap to succeed or a re-read of shared state to
// change, with no helping write on the retry path — and requires them to be
// annotated honestly: wf:blocking on the function, or the loop-line
// wf:lockfree <reason> acknowledgment. A wf:bounded claim on such a loop is
// rejected: its trip count is a fact about other processes' schedules,
// which is precisely what a step bound must not depend on.

// analyzeProgress lints every function that is not declared blocking or
// lock-free; the audit runs on unannotated functions too, because a
// disguised retry loop is as wrong there as in a wf:waitfree function.
func analyzeProgress(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch p.Annots.Effective(fd).Mode {
			case ModeBlocking, ModeLockFree:
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				d := p.Annots.LoopDirective(loop.Pos())
				if d != nil && d.Mode == ModeLockFree {
					return true // acknowledged; surfaced in the bounds report
				}
				if !isCASRetryLoop(p, loop) {
					return true
				}
				if d != nil && d.Mode == ModeBounded {
					diags = append(diags, Diagnostic{
						Pos: p.Fset.Position(loop.Pos()), Analyzer: "progress",
						Message: fmt.Sprintf("wf:bounded (%s) claims a step bound, but this CAS retry loop's trip count depends on other processes' writes; annotate //wf:lockfree <reason> or add a helping write (in %s)", d.Arg, fd.Name.Name),
					})
				} else {
					diags = append(diags, Diagnostic{
						Pos: p.Fset.Position(loop.Pos()), Analyzer: "progress",
						Message: fmt.Sprintf("lock-free retry loop: every exit needs this process's CAS to win or shared state to change, and the retry path helps no one; annotate //wf:blocking on the function or //wf:lockfree <reason> on the loop, or restructure with helping (in %s)", fd.Name.Name),
					})
				}
				return true
			})
		}
	}
	return diags
}

// isCASRetryLoop reports whether loop (condition-less) matches the
// lock-free-but-not-wait-free shape: at least one exit guarded by a
// condition containing a sync/atomic CompareAndSwap, every exit
// conditional (so a retry remains possible on every iteration), and no
// helping write — no atomic mutation besides the exit CASes and no plain
// write through a field, pointer or index — on the retry path.
func isCASRetryLoop(p *Package, loop *ast.ForStmt) bool {
	casGuarded := 0
	unconditional := 0
	exitCASes := make(map[*ast.CallExpr]bool)

	// recordExit classifies one conditional exit: guards containing a CAS
	// mark a CAS-success exit (and those CAS calls become the loop's exit
	// CASes, exempt from helping-write credit).
	recordExit := func(guards []ast.Expr) {
		found := false
		for _, g := range guards {
			ast.Inspect(g, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isCASCall(p, call) {
					exitCASes[call] = true
					found = true
				}
				return true
			})
		}
		if found {
			casGuarded++
		}
	}

	var walkExits func(n ast.Node, guards []ast.Expr)
	walkExits = func(n ast.Node, guards []ast.Expr) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // its returns do not exit this loop
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Nested regions where a plain break does not exit this loop;
			// returns (and labeled breaks) still do. Approximate them as
			// conditional exits under the guards in force at the region.
			ast.Inspect(s.(ast.Node), func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				switch mm := m.(type) {
				case *ast.ReturnStmt:
					recordExit(guards)
				case *ast.BranchStmt:
					if mm.Tok == token.BREAK && mm.Label != nil {
						recordExit(guards)
					}
				}
				return true
			})
			return
		case *ast.IfStmt:
			walkExits(s.Init, guards)
			inner := append(append([]ast.Expr(nil), guards...), s.Cond)
			for _, st := range s.Body.List {
				walkExits(st, inner)
			}
			walkExits(s.Else, inner)
			return
		case *ast.BlockStmt:
			for _, st := range s.List {
				walkExits(st, guards)
			}
			return
		case *ast.ReturnStmt:
			if len(guards) == 0 {
				unconditional++
				return
			}
			recordExit(guards)
			return
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				if len(guards) == 0 {
					unconditional++
					return
				}
				recordExit(guards)
			}
			return
		case *ast.LabeledStmt:
			walkExits(s.Stmt, guards)
			return
		}
	}
	for _, st := range loop.Body.List {
		walkExits(st, nil)
	}

	if casGuarded == 0 || unconditional > 0 {
		return false
	}

	// Helping write: any atomic mutation other than the exit CASes, or any
	// plain write through a field, pointer or index — the shared-state
	// writes a helping protocol would perform on the retry path.
	helping := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if helping {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if !exitCASes[s] && isAtomicMutation(p, s) {
				helping = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if isSharedLvalue(p, lhs) {
					helping = true
				}
			}
		case *ast.IncDecStmt:
			if isSharedLvalue(p, s.X) {
				helping = true
			}
		}
		return !helping
	})
	return !helping
}

// isCASCall reports a sync/atomic compare-and-swap: the package functions
// (CompareAndSwapInt64, ...) or the methods of the atomic wrapper types.
func isCASCall(p *Package, call *ast.CallExpr) bool {
	f := calleeFunc(p, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	return strings.HasPrefix(f.Name(), "CompareAndSwap")
}

// isAtomicMutation reports a sync/atomic call that writes shared state:
// stores, adds, swaps, bit operations, and CAS (a non-exit CAS is a
// helping install attempt).
func isAtomicMutation(p *Package, call *ast.CallExpr) bool {
	f := calleeFunc(p, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := f.Name()
	for _, prefix := range []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isSharedLvalue reports an assignment target that can be shared state: a
// struct field, a pointer dereference, or an element of something reached
// through one — anything that is not a plain local identifier or an index
// into one.
func isSharedLvalue(p *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return fieldOf(p, e) != nil
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return isSharedLvalue(p, e.X)
	}
	return false
}
