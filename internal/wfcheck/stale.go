package wfcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// stale flags directives that no longer earn their keep: an annotation is
// a claim addressed to the analyzers, and when the code beneath it has
// changed shape until no analyzer would say anything without it, the
// directive documents a constraint that no longer exists — the static
// analogue of a comment drifting from its code. Findings here are
// warnings, reported only under -all and never failing the run: a stale
// directive is overly conservative, not unsound.
//
// The test is shape-relative, not mode-relative: a function-level
// directive is stale when auditing the function as if it were an
// unannotated wait-free entry point produces no finding, it contains no
// loop-line-justified loop, and it calls nothing that carries a
// non-waitfree claim of its own; a loop-line directive is stale when the
// loop's own shape (an exit condition, no Gosched spin) already satisfies
// every analyzer. A loop directive carrying a [steps] bracket is never
// stale: the bracket feeds the symbolic step algebra even when the
// progress analyzers need nothing.
//
// Findings are warnings by default; Config.StrictStale promotes them to
// errors unless allowlisted by "file.go:FuncName" (see staleKey).
func analyzeStale(prog *Program, targets []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if d := p.Annots.Funcs[fd]; d != nil {
					switch d.Mode {
					case ModeBlocking, ModeLockFree, ModeBounded:
						if !justifiesDirective(prog, p, fd) {
							diags = append(diags, staleDiag(p, d, fd,
								fmt.Sprintf("stale %s (%s) on %s: the analyzers find nothing in it that a wait-free function could not contain; remove the directive or update the reason", d.Mode, d.Arg, fd.Name.Name)))
						}
					}
				}
				diags = append(diags, staleLoopDirectives(prog, p, fd)...)
			}
		}
	}
	return diags
}

// justifiesDirective reports whether fd, audited as an unannotated
// wait-free entry point, gives the analyzers anything to say — a blocking
// finding, a loop carrying its own justification, or a direct call to a
// function whose effective mode makes a non-waitfree claim (a bounded
// wrapper around a bounded primitive is the substitution-table idiom, not
// staleness).
func justifiesDirective(prog *Program, p *Package, fd *ast.FuncDecl) bool {
	pf := prog.FuncOf(p.Info.Defs[fd.Name])
	if pf == nil {
		return true // unresolvable: stay quiet
	}
	b := &blockingPass{prog: prog, visited: make(map[*ast.FuncDecl]bool)}
	b.visit(pf, pf)
	if len(b.diags) > 0 {
		return true
	}
	justified := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if justified {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if p.Annots.LoopDirective(n.Pos()) != nil {
				justified = true
			}
		case *ast.RangeStmt:
			if p.Annots.LoopDirective(n.Pos()) != nil {
				justified = true
			}
		case *ast.CallExpr:
			f := calleeFunc(p, n)
			if f == nil {
				return true
			}
			var callees []*ProgFunc
			if isInterfaceMethod(f) {
				if d := prog.Contract(f); d != nil {
					switch d.Mode {
					case ModeBounded, ModeLockFree, ModeBlocking:
						justified = true
					}
					return true
				}
				callees = prog.Implementations(f)
			} else if t := prog.FuncOf(f); t != nil {
				callees = []*ProgFunc{t}
			}
			for _, c := range callees {
				switch c.Mode().Mode {
				case ModeBounded, ModeLockFree, ModeBlocking:
					justified = true
				}
			}
		}
		return !justified
	})
	return justified
}

// staleDiag builds a stale warning carrying its allowlist key.
func staleDiag(p *Package, d *Directive, fd *ast.FuncDecl, msg string) Diagnostic {
	pos := p.Fset.Position(d.Pos)
	return Diagnostic{
		Pos: pos, Analyzer: "stale", Warn: true, Message: msg,
		allowKey: filepath.Base(pos.Filename) + ":" + fd.Name.Name,
	}
}

// staleKey is the StaleAllow allowlist key of a stale finding:
// "file.go:FuncName", stable across line-number churn.
func staleKey(d Diagnostic) string {
	return d.allowKey
}

// staleLoopDirectives warns about loop-line directives sitting on loops
// whose shape no analyzer flags: an exit condition with no Gosched spin
// needs no justification, so the directive is decoration that will drift.
func staleLoopDirectives(prog *Program, p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			d := p.Annots.LoopDirective(n.Pos())
			if d == nil || d.Steps != "" {
				return true // a [steps] bracket feeds the symbolic algebra
			}
			if n.Cond == nil || goschedIn(p, n).IsValid() {
				return true // the shape would be flagged; directive is load-bearing
			}
			diags = append(diags, staleDiag(p, d, fd,
				fmt.Sprintf("stale %s (%s): this loop's own exit condition already satisfies the analyzers; remove the directive (in %s)", d.Mode, d.Arg, fd.Name.Name)))
		case *ast.RangeStmt:
			d := p.Annots.LoopDirective(n.Pos())
			if d == nil || d.Steps != "" {
				return true // a [steps] bracket feeds the symbolic algebra
			}
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true // blocking flags channel ranges regardless
				}
			}
			diags = append(diags, staleDiag(p, d, fd,
				fmt.Sprintf("stale %s (%s): range loops are bounded by their operand; remove the directive (in %s)", d.Mode, d.Arg, fd.Name.Name)))
		}
		return true
	})
	return diags
}
