package wfcheck

import (
	"go/ast"
)

// ackpersist statically pins the persist-before-apply contract of the
// service tier: a client-visible acknowledgement — a wire response write or
// a result-channel send, marked //wf:ack — must be dominated by a completed
// //wf:persist statement on every path that reaches it. The kill -9 drills
// witness the contract at sampled crash points; this pass makes "ack before
// persist" a compile-time finding.
//
// //wf:persist marks the statement whose completion makes the operation
// durable (a store append, or the conditional that decides persistence for
// the batch); //wf:ack marks the statement that makes the result visible to
// the client. Both attach like waivers: trailing on the statement's line or
// on the line directly above. Domination is structural: the persist must be
// an earlier sibling (or sit inside one, reached unconditionally) in some
// block enclosing the ack, or live in the init/condition of a statement
// enclosing it. An ack with no persist in its function, a persist nothing
// acknowledges, and a mark attached to no statement are each findings.

// markedStmt is one statement carrying an //wf:ack or //wf:persist mark.
type markedStmt struct {
	stmt ast.Stmt
	mark *LineMark
}

// analyzeAckPersist runs the ackpersist analyzer over one package.
func analyzeAckPersist(p *Package, diags *[]Diagnostic) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ackPersistFunc(p, fd, diags)
		}
	}
}

// ackPersistFunc attaches the function's ack/persist marks to statements and
// checks that every ack is dominated by a persist.
func ackPersistFunc(p *Package, fd *ast.FuncDecl, diags *[]Diagnostic) {
	var acks, persists []markedStmt
	// Pre-order walk: the outermost statement starting on a mark's line
	// claims it, so a mark above `if init; cond {` attaches to the whole if
	// statement, init included.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, isStmt := n.(ast.Stmt)
		if !isStmt {
			return true
		}
		if _, isBlock := st.(*ast.BlockStmt); isBlock {
			return true
		}
		pos := p.Fset.Position(st.Pos())
		if m := p.Annots.ConsumeMark(pos, "ack"); m != nil {
			acks = append(acks, markedStmt{stmt: st, mark: m})
		}
		if m := p.Annots.ConsumeMark(pos, "persist"); m != nil {
			persists = append(persists, markedStmt{stmt: st, mark: m})
		}
		return true
	})
	for _, a := range acks {
		if len(persists) == 0 {
			if d := disciplineDiag(p, a.mark.Pos, "ackpersist",
				"//wf:ack in %s has no //wf:persist in the function: the acknowledgement precedes any durability", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
			continue
		}
		dominated := false
		for _, pr := range persists {
			if stmtDominates(fd.Body, pr.stmt, a.stmt) {
				dominated = true
				break
			}
		}
		if !dominated {
			if d := disciplineDiag(p, a.mark.Pos, "ackpersist",
				"//wf:ack in %s is not dominated by a completed //wf:persist: some path acknowledges before persisting", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
		}
	}
	for _, pr := range persists {
		if len(acks) == 0 {
			if d := disciplineDiag(p, pr.mark.Pos, "ackpersist",
				"//wf:persist in %s acknowledges nothing: no //wf:ack in the function", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
		}
	}
}

// pathTo returns the chain of nodes from root down to target (inclusive of
// both), or nil if target is not under root.
func pathTo(root, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			path = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return path
}

// stmtDominates reports whether the persist statement completes before the
// ack on every path through body that reaches the ack: the persist is (or
// sits unconditionally inside) an earlier sibling in a statement list
// enclosing the ack, or lives in the init/condition of a compound statement
// the ack's path descends into.
func stmtDominates(body *ast.BlockStmt, pers, ack ast.Stmt) bool {
	path := pathTo(body, ack)
	if path == nil {
		return false
	}
	for i, n := range path {
		var next ast.Node
		if i+1 < len(path) {
			next = path[i+1]
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			if earlierSiblingHolds(n.List, next, pers) {
				return true
			}
		case *ast.CaseClause:
			if earlierSiblingHolds(n.Body, next, pers) {
				return true
			}
		case *ast.CommClause:
			if earlierSiblingHolds(n.Body, next, pers) {
				return true
			}
		case *ast.IfStmt:
			// Init and Cond run before either branch; an else-if link keeps
			// descending through nested IfStmts on the path. A mark on the if
			// line attaches to the whole IfStmt, so a persist-marked
			// `if err := persist(); err == nil { ack }` dominates acks in its
			// own branches: the init has completed by the time either runs.
			if next == n.Body || next == n.Else {
				if ast.Node(pers) == ast.Node(n) {
					return true
				}
				if preludeHolds(pers, n.Init, n.Cond) {
					return true
				}
			}
		case *ast.ForStmt:
			if next == n.Body || next == n.Cond || next == n.Post {
				if preludeHolds(pers, n.Init) {
					return true
				}
			}
		case *ast.RangeStmt:
			if next == n.Body {
				if preludeHolds(pers, n.X) {
					return true
				}
			}
		case *ast.SwitchStmt:
			if next == n.Body && preludeHolds(pers, n.Init, n.Tag) {
				return true
			}
		case *ast.TypeSwitchStmt:
			if next == n.Body && preludeHolds(pers, n.Init, n.Assign) {
				return true
			}
		}
	}
	return false
}

// earlierSiblingHolds reports whether pers executes to completion inside a
// sibling that precedes the path's continuation stmt in the list.
func earlierSiblingHolds(list []ast.Stmt, next ast.Node, pers ast.Stmt) bool {
	for _, s := range list {
		if s == next {
			return false
		}
		if nodeContains(s, pers) && uncondWithin(s, pers) {
			return true
		}
	}
	return false
}

// preludeHolds reports whether pers sits (unconditionally) inside one of the
// given prelude nodes — inits, conditions, range operands — which execute
// before the statement's body.
func preludeHolds(pers ast.Stmt, preludes ...ast.Node) bool {
	for _, pr := range preludes {
		if pr == nil {
			continue
		}
		if pr == ast.Node(pers) || (nodeContains(pr, pers) && uncondWithin(pr, pers)) {
			return true
		}
	}
	return false
}

// nodeContains reports whether inner's source range sits inside outer's.
func nodeContains(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// uncondWithin reports whether inner is reached unconditionally whenever
// outer executes to completion: the path from outer to inner crosses no
// conditional body, loop body, select/switch clause, function literal, or
// deferred/spawned call.
func uncondWithin(outer, inner ast.Node) bool {
	if outer == inner {
		return true
	}
	path := pathTo(outer, inner)
	if path == nil {
		return false
	}
	for i := 0; i < len(path)-1; i++ {
		next := path[i+1]
		switch n := path[i].(type) {
		case *ast.IfStmt:
			if next != n.Init && next != n.Cond {
				return false
			}
		case *ast.ForStmt:
			if next != n.Init && next != n.Cond {
				return false
			}
		case *ast.RangeStmt:
			if next != n.X {
				return false
			}
		case *ast.SwitchStmt:
			if next != n.Init && next != n.Tag {
				return false
			}
		case *ast.TypeSwitchStmt:
			if next != n.Init && next != n.Assign {
				return false
			}
		case *ast.SelectStmt, *ast.CaseClause, *ast.CommClause,
			*ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
	}
	return true
}
