package wfcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// monotone proves that writes to annotated registers never decrease them.
// The log GC's safety argument (PR 6) rests on exactly this: the low-water
// floor, the anchor, the GC epoch and each observed-prefix slot only ever
// move forward, so a reader that checked the floor can trust every index at
// or below it forever. A single backward write silently un-retires log
// entries and the next swing frees memory a replay still walks. The pass
// accepts the three shapes the tree's protocols use, judged against the
// guards that dominate the write site (enclosing if conditions, preceding
// early-exit negations, && / || short-circuit operands):
//
//   - reg.Store(v) dominated by a proof that v >= reg.Load() (directly or
//     through a local bound from the register's own Load);
//   - reg.Add(c) / reg.Or(c) with a provably non-negative constant;
//   - reg.CompareAndSwap(old, new) dominated by a proof that new >= old —
//     CAS success means the register still holds old, so the write moves it
//     up.
//
// Everything else — Swap, plain assignment, an unguarded Store, or taking
// the register's address (which moves the mutation out of the analyzer's
// sight) — is a finding, to be fixed or waived with a reason.

// analyzeMonotone checks every mutation of a //wf:monotone field in the
// package.
func analyzeMonotone(prog *Program, p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkMonotone(prog, p, fd)...)
		}
	}
	return diags
}

// checkMonotone audits one function body.
func checkMonotone(prog *Program, p *Package, fd *ast.FuncDecl) []Diagnostic {
	binds := loadBindings(p, fd.Body)
	var diags []Diagnostic
	report := func(pos ast.Node, field *types.Var, format string, args ...any) {
		args = append([]any{field.Name()}, args...)
		if d := disciplineDiag(p, pos.Pos(), "monotone", "%s is //wf:monotone: "+format, args...); d != nil {
			diags = append(diags, *d)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			recv, name, ok := atomicCallSite(p, n)
			if !ok || !isMutatingAtomic(name) {
				return true
			}
			field, fa := annFieldOf(prog, p, recv)
			if field == nil || fa == nil || !fa.Monotone {
				return true
			}
			recvPath := types.ExprString(ast.Unparen(recv))
			switch {
			case callKind(name) == "Store":
				stored := types.ExprString(ast.Unparen(n.Args[0]))
				gs := collectGuards(fd.Body, n)
				if !guardProvesGE(gs, stored, func(b string) bool { return refMatches(b, recvPath, binds) }) {
					report(n, field, "Store(%s) is not dominated by a %s >= %s.Load() guard", stored, stored, recvPath)
				}
			case callKind(name) == "Add" || callKind(name) == "Or":
				if !nonNegativeConst(p, n.Args[0]) {
					report(n, field, "%s(%s) is not a provably non-negative constant step",
						callKind(name), types.ExprString(n.Args[0]))
				}
			case callKind(name) == "CompareAndSwap":
				oldS := types.ExprString(ast.Unparen(n.Args[0]))
				newS := types.ExprString(ast.Unparen(n.Args[1]))
				gs := collectGuards(fd.Body, n)
				if !guardProvesGE(gs, newS, func(b string) bool { return b == oldS }) {
					report(n, field, "CompareAndSwap(%s, %s) is not dominated by a %s >= %s guard", oldS, newS, newS, oldS)
				}
			default: // Swap, And
				report(n, field, "%s cannot be proven non-decreasing", name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field, fa := annFieldOf(prog, p, lhs); field != nil && fa != nil && fa.Monotone {
					report(n, field, "plain assignment bypasses the register's atomic monotone protocol")
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if field, fa := annFieldOf(prog, p, n.X); field != nil && fa != nil && fa.Monotone {
				report(n, field, "taking its address moves mutations out of the analyzer's sight")
			}
		}
		return true
	})
	return diags
}

// callKind strips the type suffix off a sync/atomic method or function name
// (CompareAndSwapInt64 → CompareAndSwap).
func callKind(name string) string {
	for _, prefix := range []string{"CompareAndSwap", "Store", "Swap", "Add", "Or", "And", "Load"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return prefix
		}
	}
	return name
}

// nonNegativeConst reports whether e is a compile-time constant >= 0.
func nonNegativeConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	return v.Kind() == constant.Int && constant.Sign(v) >= 0
}
