package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Mode is the wait-freedom claim a directive makes.
type Mode int

// Modes, in increasing order of suspicion.
const (
	ModeNone     Mode = iota // no directive: not an entry point, but traversed if reached
	ModeWaitFree             // wf:waitfree — analyzed entry point
	ModeBounded              // wf:bounded — trusted manual boundedness argument
	ModeLockFree             // wf:lockfree — lock-free but not wait-free
	ModeBlocking             // wf:blocking — intentional; unreachable from wait-free code
)

// String names the mode as its directive spells it.
func (m Mode) String() string {
	switch m {
	case ModeWaitFree:
		return "wf:waitfree"
	case ModeBounded:
		return "wf:bounded"
	case ModeLockFree:
		return "wf:lockfree"
	case ModeBlocking:
		return "wf:blocking"
	}
	return "unannotated"
}

// Directive is one parsed wf: annotation.
type Directive struct {
	Mode Mode
	Arg  string // reason for wf:blocking/wf:lockfree, bound for wf:bounded
	// Steps is the symbolic trip count from an optional leading [expr]
	// bracket on a loop-line wf:bounded / wf:lockfree argument — the bound
	// the symbolic step algebra charges the loop. Empty when no bracket.
	Steps string
	Pos   token.Pos
}

// StepsAnn is a declared symbolic step bound (//wf:steps <expr>) on a
// function, interface method, or func-typed field: the cost the symbolic
// engine charges a call instead of walking the callee.
type StepsAnn struct {
	Expr string
	Pos  token.Pos
}

// FieldAnn collects the register-discipline and symbolic-bound annotations
// attached to one struct field or package-level const/var name.
type FieldAnn struct {
	// SingleWriter names the owner index identifier (//wf:singlewriter pid):
	// element stores through this field must index by that identifier.
	SingleWriter string
	// Monotone marks an atomic register whose stored values must be provably
	// non-decreasing (//wf:monotone).
	Monotone bool
	// ABAGuard records the reasoned ABA protection of a CAS target
	// (//wf:abaguard <reason>).
	ABAGuard string
	// Len names the parameter a slice field's length equals (//wf:len n).
	Len string
	// Param names the symbolic parameter this const or field's value is
	// (//wf:param k).
	Param string
	// Steps is a declared symbolic cost for calls through a func-typed field
	// (//wf:steps <expr>).
	Steps string
	Pos   token.Pos
}

// Waiver is one //wf:waiver <analyzer> <reason> directive: a reasoned,
// line-scoped exemption from a register-discipline analyzer. A waiver no
// analyzer consumes is itself an error.
type Waiver struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	used     bool
}

// LineMark is one line-scoped service-tier discipline mark:
// //wf:ack (a client-visible acknowledgement), //wf:persist (a completed
// durability call), or //wf:owns <mechanism> (the shutdown edge of a go
// statement). Like waivers, a mark no analyzer consumes is an error.
type LineMark struct {
	Verb string // "ack", "persist" or "owns"
	Mech string // owns only: the shutdown mechanism expression
	Note string // optional free-text remainder
	Pos  token.Pos
	used bool
}

// Annotations holds every wf: directive parsed from a package's non-test
// files, plus any malformed-annotation errors.
type Annotations struct {
	// Pkg is the package-level default, from directives on package clauses.
	Pkg *Directive
	// Funcs maps annotated function declarations to their directives.
	Funcs map[*ast.FuncDecl]*Directive
	// Methods maps annotated interface-method names to their directives:
	// the method's contract, trusted at call sites that dispatch through
	// the interface. Without one, interface calls fan out to every
	// in-module implementation.
	Methods map[*ast.Ident]*Directive
	// Steps maps function declarations and interface-method names to their
	// declared symbolic step bounds.
	Steps map[*ast.Ident]*StepsAnn
	// Fields maps annotated struct-field and const/var names to their
	// register-discipline annotations.
	Fields map[*ast.Ident]*FieldAnn
	// Durable maps function declarations carrying //wf:durable — the
	// fsyncorder analyzer audits their commit-rename protocol — to the
	// directive's position.
	Durable map[*ast.FuncDecl]token.Pos
	// Errors reports conflicting, malformed or unknown directives.
	Errors []Diagnostic

	fset *token.FileSet
	// loopDirs records, per file and line, wf:bounded and wf:lockfree
	// directive comments that sit outside doc comments; a loop claims one if
	// the comment is on the line directly above it or trails on the loop's
	// own line. The boundcert pass checks that each of these attaches to a
	// loop.
	loopDirs map[string]map[int]*Directive
	// waivers records //wf:waiver comments by file and line; analyzers
	// consume them through Waive, and UnusedWaivers reports the leftovers.
	waivers map[string]map[int][]*Waiver
	// marks records //wf:ack, //wf:persist and //wf:owns comments by file
	// and line; analyzers consume them through ConsumeMark, and UnusedMarks
	// reports the leftovers.
	marks map[string]map[int][]*LineMark
}

// Effective resolves the directive governing fd: its own annotation if
// present, the package-level default otherwise.
func (a *Annotations) Effective(fd *ast.FuncDecl) Directive {
	if d := a.Funcs[fd]; d != nil {
		return *d
	}
	if a.Pkg != nil {
		return *a.Pkg
	}
	return Directive{Mode: ModeNone}
}

// LoopDirective returns the wf:bounded or wf:lockfree directive claimed by
// a loop starting at pos (a directive comment directly above or on the same
// line), or nil.
func (a *Annotations) LoopDirective(pos token.Pos) *Directive {
	p := a.fset.Position(pos)
	lines := a.loopDirs[p.Filename]
	if d := lines[p.Line-1]; d != nil {
		return d
	}
	return lines[p.Line]
}

// LoopBounded reports whether a loop starting at pos carries a loop-line
// justification (wf:bounded or wf:lockfree) that suppresses the loop-shape
// checks.
func (a *Annotations) LoopBounded(pos token.Pos) bool {
	return a.LoopDirective(pos) != nil
}

// loopDirectives yields every loop-line directive with its position, for
// the attachment check in boundcert.
func (a *Annotations) loopDirectives() []*Directive {
	var out []*Directive
	for _, lines := range a.loopDirs {
		for _, d := range lines {
			out = append(out, d)
		}
	}
	return out
}

// Waive consumes a waiver covering pos for the named analyzer — on the same
// line as the finding or the line directly above — and reports whether one
// was found.
func (a *Annotations) Waive(pos token.Position, analyzer string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, w := range a.waivers[pos.Filename][line] {
			if w.Analyzer == analyzer {
				w.used = true
				return true
			}
		}
	}
	return false
}

// UnusedWaivers returns every waiver no analyzer consumed, in position
// order. A dead waiver is an error: it can never silently outlive the
// finding it excused.
func (a *Annotations) UnusedWaivers() []*Waiver {
	var out []*Waiver
	for _, lines := range a.waivers {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.used {
					out = append(out, w)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ConsumeMark finds and consumes a line mark of the given verb covering pos
// — trailing on the statement's own line or on the line directly above —
// and returns it, or nil. Mirrors the attachment rule of Waive and of
// loop-line directives.
func (a *Annotations) ConsumeMark(pos token.Position, verb string) *LineMark {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, m := range a.marks[pos.Filename][line] {
			if m.Verb == verb && !m.used {
				m.used = true
				return m
			}
		}
	}
	return nil
}

// UnusedMarks returns every line mark no analyzer consumed, in position
// order. A floating mark is an error: an //wf:ack that attaches to nothing
// would silently exempt the acknowledgement it meant to pin.
func (a *Annotations) UnusedMarks() []*LineMark {
	var out []*LineMark
	for _, lines := range a.marks {
		for _, ms := range lines {
			for _, m := range ms {
				if !m.used {
					out = append(out, m)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// extraDir is one parsed non-mode directive (wf:steps, wf:param, wf:len,
// wf:singlewriter, wf:monotone, wf:abaguard, wf:waiver, wf:durable, wf:ack,
// wf:persist, wf:owns). Attachment rules depend on the declaration kind and
// are enforced by the caller.
type extraDir struct {
	verb string
	arg  string
	pos  token.Pos
}

// parseAnnotations extracts wf: directives from the files' comments.
func parseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		Funcs:    make(map[*ast.FuncDecl]*Directive),
		Methods:  make(map[*ast.Ident]*Directive),
		Steps:    make(map[*ast.Ident]*StepsAnn),
		Fields:   make(map[*ast.Ident]*FieldAnn),
		Durable:  make(map[*ast.FuncDecl]token.Pos),
		fset:     fset,
		loopDirs: make(map[string]map[int]*Directive),
		waivers:  make(map[string]map[int][]*Waiver),
		marks:    make(map[string]map[int][]*LineMark),
	}
	for _, f := range files {
		// Doc comment groups carry declaration-level directives; everything
		// else is a candidate loop-line directive or waiver. Separating the
		// two is what lets boundcert flag a loop-line directive that attaches
		// to nothing.
		docGroups := map[*ast.CommentGroup]bool{f.Doc: true}
		var ifaceMethods, structFields []*ast.Field
		var valueSpecs []*ast.ValueSpec
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				docGroups[decl.Doc] = true
			case *ast.GenDecl:
				docGroups[decl.Doc] = true
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.ValueSpec:
						docGroups[spec.Doc] = true
						docGroups[spec.Comment] = true
						valueSpecs = append(valueSpecs, spec)
					case *ast.TypeSpec:
						docGroups[spec.Doc] = true
						switch t := spec.Type.(type) {
						case *ast.InterfaceType:
							for _, m := range t.Methods.List {
								if len(m.Names) != 1 {
									continue
								}
								docGroups[m.Doc] = true
								docGroups[m.Comment] = true
								ifaceMethods = append(ifaceMethods, m)
							}
						case *ast.StructType:
							for _, fl := range t.Fields.List {
								docGroups[fl.Doc] = true
								docGroups[fl.Comment] = true
								structFields = append(structFields, fl)
							}
						}
					}
				}
			}
		}
		// Record loop-line wf:bounded/wf:lockfree comments and line-scoped
		// waivers; any other discipline directive outside a doc comment is
		// misplaced.
		for _, cg := range f.Comments {
			if docGroups[cg] {
				continue
			}
			dirs, extras := a.parseGroup(cg)
			for _, d := range dirs {
				if d.Mode != ModeBounded && d.Mode != ModeLockFree {
					continue
				}
				p := fset.Position(d.Pos)
				if a.loopDirs[p.Filename] == nil {
					a.loopDirs[p.Filename] = make(map[int]*Directive)
				}
				a.loopDirs[p.Filename][p.Line] = d
			}
			for _, x := range extras {
				switch x.verb {
				case "waiver":
					a.recordWaiver(x)
				case "ack", "persist", "owns":
					a.recordMark(x)
				default:
					a.errorf(x.pos, "wf:%s must sit in a declaration's doc comment", x.verb)
				}
			}
		}
		// Package-level directives sit on the package clause's doc comment.
		pkgDirs, pkgExtras := a.parseGroup(f.Doc)
		for _, d := range pkgDirs {
			if a.Pkg == nil {
				a.Pkg = d
			} else if a.Pkg.Mode != d.Mode {
				a.errorf(d.Pos, "package %s: conflicting %s and %s directives", f.Name.Name, a.Pkg.Mode, d.Mode)
			}
		}
		for _, x := range pkgExtras {
			a.errorf(x.pos, "wf:%s is not valid on a package clause", x.verb)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			dirs, extras := a.parseGroup(fd.Doc)
			for _, d := range dirs {
				if prev := a.Funcs[fd]; prev == nil {
					a.Funcs[fd] = d
				} else if prev.Mode != d.Mode {
					a.errorf(d.Pos, "func %s: conflicting %s and %s directives", fd.Name.Name, prev.Mode, d.Mode)
				}
			}
			for _, x := range extras {
				switch x.verb {
				case "steps":
					a.setSteps(fd.Name, x)
				case "durable":
					a.Durable[fd] = x.pos
				case "waiver":
					a.errorf(x.pos, "wf:waiver attaches to the waived statement line, not a declaration")
				case "ack", "persist", "owns":
					a.errorf(x.pos, "wf:%s attaches to the marked statement line, not a declaration", x.verb)
				default:
					a.errorf(x.pos, "wf:%s is not valid on a function declaration", x.verb)
				}
			}
		}
		// Interface-method directives: the contract a dispatch site trusts.
		for _, m := range ifaceMethods {
			name := m.Names[0]
			for _, cg := range []*ast.CommentGroup{m.Doc, m.Comment} {
				dirs, extras := a.parseGroup(cg)
				for _, d := range dirs {
					if prev := a.Methods[name]; prev == nil {
						a.Methods[name] = d
					} else if prev.Mode != d.Mode {
						a.errorf(d.Pos, "interface method %s: conflicting %s and %s directives", name.Name, prev.Mode, d.Mode)
					}
				}
				for _, x := range extras {
					if x.verb == "steps" {
						a.setSteps(name, x)
					} else {
						a.errorf(x.pos, "wf:%s is not valid on an interface method", x.verb)
					}
				}
			}
		}
		for _, fl := range structFields {
			a.parseDeclGroups(fl.Names, fl.Doc, fl.Comment, "struct field")
		}
		for _, vs := range valueSpecs {
			a.parseDeclGroups(vs.Names, vs.Doc, vs.Comment, "const/var declaration")
		}
	}
	seen := make(map[Diagnostic]bool, len(a.Errors))
	dedup := a.Errors[:0]
	for _, e := range a.Errors {
		if !seen[e] {
			seen[e] = true
			dedup = append(dedup, e)
		}
	}
	a.Errors = dedup
	return a
}

// parseDeclGroups applies the doc and trailing comment groups of one field
// or value spec: register-discipline directives attach to the declared
// names; mode directives do not belong here.
func (a *Annotations) parseDeclGroups(names []*ast.Ident, doc, line *ast.CommentGroup, kind string) {
	for _, cg := range []*ast.CommentGroup{doc, line} {
		dirs, extras := a.parseGroup(cg)
		for _, d := range dirs {
			a.errorf(d.Pos, "%s is not valid on a %s", d.Mode, kind)
		}
		for _, x := range extras {
			a.applyFieldExtra(names, x)
		}
	}
}

// applyFieldExtra attaches one register-discipline directive to the
// declared names of a field or value spec.
func (a *Annotations) applyFieldExtra(names []*ast.Ident, x extraDir) {
	switch x.verb {
	case "waiver":
		a.errorf(x.pos, "wf:waiver attaches to the waived statement line, not a declaration")
		return
	case "durable", "ack", "persist", "owns":
		a.errorf(x.pos, "wf:%s is not valid on a struct field or const/var declaration", x.verb)
		return
	case "param", "len", "singlewriter":
		if !token.IsIdentifier(x.arg) {
			a.errorf(x.pos, "wf:%s argument must be a single identifier, got %q", x.verb, x.arg)
			return
		}
	case "steps":
		if _, err := parseSteps(x.arg); err != nil {
			a.errorf(x.pos, "wf:steps: %v", err)
			return
		}
	}
	for _, name := range names {
		fa := a.Fields[name]
		if fa == nil {
			fa = &FieldAnn{}
			a.Fields[name] = fa
		}
		switch x.verb {
		case "singlewriter":
			fa.SingleWriter = x.arg
		case "monotone":
			fa.Monotone = true
		case "abaguard":
			fa.ABAGuard = x.arg
		case "len":
			fa.Len = x.arg
		case "param":
			fa.Param = x.arg
		case "steps":
			fa.Steps = x.arg
		}
		fa.Pos = x.pos
	}
}

// setSteps records a declared symbolic step bound on a function or
// interface-method name.
func (a *Annotations) setSteps(name *ast.Ident, x extraDir) {
	if _, err := parseSteps(x.arg); err != nil {
		a.errorf(x.pos, "wf:steps: %v", err)
		return
	}
	if prev := a.Steps[name]; prev != nil && prev.Expr != x.arg {
		a.errorf(x.pos, "%s: conflicting wf:steps expressions %q and %q", name.Name, prev.Expr, x.arg)
		return
	}
	a.Steps[name] = &StepsAnn{Expr: x.arg, Pos: x.pos}
}

// recordWaiver indexes one //wf:waiver <analyzer> <reason> by file and line.
func (a *Annotations) recordWaiver(x extraDir) {
	analyzer, reason, _ := strings.Cut(x.arg, " ")
	reason = strings.TrimSpace(reason)
	switch analyzer {
	case "singlewriter", "monotone", "abasafe", "fsyncorder", "ackpersist", "goown":
	default:
		a.errorf(x.pos, "wf:waiver analyzer must be singlewriter, monotone, abasafe, fsyncorder, ackpersist or goown, got %q", analyzer)
		return
	}
	if reason == "" {
		a.errorf(x.pos, "wf:waiver requires a reason after the analyzer name")
		return
	}
	p := a.fset.Position(x.pos)
	if a.waivers[p.Filename] == nil {
		a.waivers[p.Filename] = make(map[int][]*Waiver)
	}
	a.waivers[p.Filename][p.Line] = append(a.waivers[p.Filename][p.Line], &Waiver{Analyzer: analyzer, Reason: reason, Pos: x.pos})
}

// recordMark indexes one //wf:ack, //wf:persist or //wf:owns by file and
// line. For owns the first argument field is the shutdown mechanism
// expression; the remainder (and the whole argument for ack/persist) is a
// free-text note.
func (a *Annotations) recordMark(x extraDir) {
	m := &LineMark{Verb: x.verb, Note: x.arg, Pos: x.pos}
	if x.verb == "owns" {
		mech, note, _ := strings.Cut(x.arg, " ")
		m.Mech, m.Note = mech, strings.TrimSpace(note)
	}
	p := a.fset.Position(x.pos)
	if a.marks[p.Filename] == nil {
		a.marks[p.Filename] = make(map[int][]*LineMark)
	}
	a.marks[p.Filename][p.Line] = append(a.marks[p.Filename][p.Line], m)
}

// extraArgName names the required argument of each discipline verb, for
// missing-argument errors.
var extraArgName = map[string]string{
	"steps":        "a symbolic step expression",
	"param":        "a parameter name",
	"len":          "a parameter name",
	"singlewriter": "the owner index identifier",
	"abaguard":     "a reason",
	"waiver":       "an analyzer name and a reason",
	"owns":         "the shutdown mechanism expression",
}

// parseGroup extracts the directives of one comment group, recording
// malformed ones as errors. Only line comments with no space after //
// count, matching the //go: directive convention; `// wf:waitfree` is prose.
func (a *Annotations) parseGroup(cg *ast.CommentGroup) ([]*Directive, []extraDir) {
	if cg == nil {
		return nil, nil
	}
	var dirs []*Directive
	var extras []extraDir
	for _, c := range cg.List {
		body, ok := strings.CutPrefix(c.Text, "//wf:")
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(body, " ")
		arg = strings.TrimSpace(arg)
		d := &Directive{Pos: c.Pos(), Arg: arg}
		switch verb {
		case "waitfree":
			d.Mode = ModeWaitFree
		case "blocking":
			d.Mode = ModeBlocking
			if arg == "" {
				a.errorf(c.Pos(), "wf:blocking requires a reason")
			}
		case "bounded", "lockfree":
			if verb == "bounded" {
				d.Mode = ModeBounded
			} else {
				d.Mode = ModeLockFree
			}
			d.Steps, d.Arg = a.splitSteps(c.Pos(), arg)
			if d.Arg == "" {
				if verb == "bounded" {
					a.errorf(c.Pos(), "wf:bounded requires a stated bound")
				} else {
					a.errorf(c.Pos(), "wf:lockfree requires a reason")
				}
			}
		case "steps", "param", "len", "singlewriter", "monotone", "abaguard", "waiver",
			"durable", "ack", "persist", "owns":
			switch verb {
			case "monotone", "durable", "ack", "persist":
				// argument optional (free-text note)
			default:
				if arg == "" {
					a.errorf(c.Pos(), "wf:%s requires %s", verb, extraArgName[verb])
					continue
				}
			}
			extras = append(extras, extraDir{verb: verb, arg: arg, pos: c.Pos()})
			continue
		default:
			a.errorf(c.Pos(), "unknown directive wf:%s (want waitfree, blocking, bounded, lockfree, steps, param, len, singlewriter, monotone, abaguard, waiver, durable, ack, persist or owns)", verb)
			continue
		}
		dirs = append(dirs, d)
	}
	return dirs, extras
}

// splitSteps strips an optional leading [expr] symbolic trip-count bracket
// off a wf:bounded / wf:lockfree argument, validating the expression.
func (a *Annotations) splitSteps(pos token.Pos, arg string) (steps, rest string) {
	if !strings.HasPrefix(arg, "[") {
		return "", arg
	}
	i := strings.Index(arg, "]")
	if i < 0 {
		a.errorf(pos, "unterminated [steps] bracket")
		return "", arg
	}
	steps = strings.TrimSpace(arg[1:i])
	rest = strings.TrimSpace(arg[i+1:])
	if _, err := parseSteps(steps); err != nil {
		a.errorf(pos, "bad [steps] bracket: %v", err)
		return "", rest
	}
	return steps, rest
}

// errorf records an annotation error at pos.
func (a *Annotations) errorf(pos token.Pos, format string, args ...any) {
	a.Errors = append(a.Errors, Diagnostic{
		Pos: a.fset.Position(pos), Analyzer: "annot",
		Message: fmt.Sprintf(format, args...),
	})
}
