package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Mode is the wait-freedom claim a directive makes.
type Mode int

// Modes, in increasing order of suspicion.
const (
	ModeNone     Mode = iota // no directive: not an entry point, but traversed if reached
	ModeWaitFree             // wf:waitfree — analyzed entry point
	ModeBounded              // wf:bounded — trusted manual boundedness argument
	ModeLockFree             // wf:lockfree — lock-free but not wait-free
	ModeBlocking             // wf:blocking — intentional; unreachable from wait-free code
)

// String names the mode as its directive spells it.
func (m Mode) String() string {
	switch m {
	case ModeWaitFree:
		return "wf:waitfree"
	case ModeBounded:
		return "wf:bounded"
	case ModeLockFree:
		return "wf:lockfree"
	case ModeBlocking:
		return "wf:blocking"
	}
	return "unannotated"
}

// Directive is one parsed wf: annotation.
type Directive struct {
	Mode Mode
	Arg  string // reason for wf:blocking/wf:lockfree, bound for wf:bounded
	Pos  token.Pos
}

// Annotations holds every wf: directive parsed from a package's non-test
// files, plus any malformed-annotation errors.
type Annotations struct {
	// Pkg is the package-level default, from directives on package clauses.
	Pkg *Directive
	// Funcs maps annotated function declarations to their directives.
	Funcs map[*ast.FuncDecl]*Directive
	// Methods maps annotated interface-method names to their directives:
	// the method's contract, trusted at call sites that dispatch through
	// the interface. Without one, interface calls fan out to every
	// in-module implementation.
	Methods map[*ast.Ident]*Directive
	// Errors reports conflicting, malformed or unknown directives.
	Errors []Diagnostic

	fset *token.FileSet
	// loopDirs records, per file and line, wf:bounded and wf:lockfree
	// directive comments that sit outside doc comments; a loop claims one if
	// the comment is on the line directly above it or trails on the loop's
	// own line. The boundcert pass checks that each of these attaches to a
	// loop.
	loopDirs map[string]map[int]*Directive
}

// Effective resolves the directive governing fd: its own annotation if
// present, the package-level default otherwise.
func (a *Annotations) Effective(fd *ast.FuncDecl) Directive {
	if d := a.Funcs[fd]; d != nil {
		return *d
	}
	if a.Pkg != nil {
		return *a.Pkg
	}
	return Directive{Mode: ModeNone}
}

// LoopDirective returns the wf:bounded or wf:lockfree directive claimed by
// a loop starting at pos (a directive comment directly above or on the same
// line), or nil.
func (a *Annotations) LoopDirective(pos token.Pos) *Directive {
	p := a.fset.Position(pos)
	lines := a.loopDirs[p.Filename]
	if d := lines[p.Line-1]; d != nil {
		return d
	}
	return lines[p.Line]
}

// LoopBounded reports whether a loop starting at pos carries a loop-line
// justification (wf:bounded or wf:lockfree) that suppresses the loop-shape
// checks.
func (a *Annotations) LoopBounded(pos token.Pos) bool {
	return a.LoopDirective(pos) != nil
}

// loopDirectives yields every loop-line directive with its position, for
// the attachment check in boundcert.
func (a *Annotations) loopDirectives() []*Directive {
	var out []*Directive
	for _, lines := range a.loopDirs {
		for _, d := range lines {
			out = append(out, d)
		}
	}
	return out
}

// parseAnnotations extracts wf: directives from the files' comments.
func parseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		Funcs:    make(map[*ast.FuncDecl]*Directive),
		Methods:  make(map[*ast.Ident]*Directive),
		fset:     fset,
		loopDirs: make(map[string]map[int]*Directive),
	}
	for _, f := range files {
		// Doc comment groups carry declaration-level directives; everything
		// else is a candidate loop-line directive. Separating the two is what
		// lets boundcert flag a loop-line directive that attaches to nothing.
		docGroups := map[*ast.CommentGroup]bool{f.Doc: true}
		var ifaceMethods []*ast.Field
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				docGroups[decl.Doc] = true
			case *ast.GenDecl:
				docGroups[decl.Doc] = true
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					docGroups[ts.Doc] = true
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						if m.Doc != nil && len(m.Names) == 1 {
							docGroups[m.Doc] = true
							ifaceMethods = append(ifaceMethods, m)
						}
					}
				}
			}
		}
		// Record loop-line wf:bounded/wf:lockfree comments, and catch
		// malformed directives anywhere in the file. Errors from this sweep
		// are deduplicated below against the doc-comment passes, which parse
		// the same groups again.
		for _, cg := range f.Comments {
			for _, d := range a.parseGroup(cg) {
				if docGroups[cg] || (d.Mode != ModeBounded && d.Mode != ModeLockFree) {
					continue
				}
				p := fset.Position(d.Pos)
				if a.loopDirs[p.Filename] == nil {
					a.loopDirs[p.Filename] = make(map[int]*Directive)
				}
				a.loopDirs[p.Filename][p.Line] = d
			}
		}
		// Package-level directives sit on the package clause's doc comment.
		for _, d := range a.parseGroup(f.Doc) {
			if a.Pkg == nil {
				a.Pkg = d
			} else if a.Pkg.Mode != d.Mode {
				a.errorf(d.Pos, "package %s: conflicting %s and %s directives", f.Name.Name, a.Pkg.Mode, d.Mode)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range a.parseGroup(fd.Doc) {
				if prev := a.Funcs[fd]; prev == nil {
					a.Funcs[fd] = d
				} else if prev.Mode != d.Mode {
					a.errorf(d.Pos, "func %s: conflicting %s and %s directives", fd.Name.Name, prev.Mode, d.Mode)
				}
			}
		}
		// Interface-method directives: the contract a dispatch site trusts.
		for _, m := range ifaceMethods {
			name := m.Names[0]
			for _, d := range a.parseGroup(m.Doc) {
				if prev := a.Methods[name]; prev == nil {
					a.Methods[name] = d
				} else if prev.Mode != d.Mode {
					a.errorf(d.Pos, "interface method %s: conflicting %s and %s directives", name.Name, prev.Mode, d.Mode)
				}
			}
		}
	}
	seen := make(map[Diagnostic]bool, len(a.Errors))
	dedup := a.Errors[:0]
	for _, e := range a.Errors {
		if !seen[e] {
			seen[e] = true
			dedup = append(dedup, e)
		}
	}
	a.Errors = dedup
	return a
}

// parseGroup extracts the directives of one comment group, recording
// malformed ones as errors. Only line comments with no space after //
// count, matching the //go: directive convention; `// wf:waitfree` is prose.
func (a *Annotations) parseGroup(cg *ast.CommentGroup) []*Directive {
	if cg == nil {
		return nil
	}
	var out []*Directive
	for _, c := range cg.List {
		body, ok := strings.CutPrefix(c.Text, "//wf:")
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(body, " ")
		arg = strings.TrimSpace(arg)
		d := &Directive{Pos: c.Pos(), Arg: arg}
		switch verb {
		case "waitfree":
			d.Mode = ModeWaitFree
		case "blocking":
			d.Mode = ModeBlocking
			if arg == "" {
				a.errorf(c.Pos(), "wf:blocking requires a reason")
			}
		case "bounded":
			d.Mode = ModeBounded
			if arg == "" {
				a.errorf(c.Pos(), "wf:bounded requires a stated bound")
			}
		case "lockfree":
			d.Mode = ModeLockFree
			if arg == "" {
				a.errorf(c.Pos(), "wf:lockfree requires a reason")
			}
		default:
			a.errorf(c.Pos(), "unknown directive wf:%s (want waitfree, blocking, bounded or lockfree)", verb)
			continue
		}
		out = append(out, d)
	}
	return out
}

// errorf records an annotation error at pos.
func (a *Annotations) errorf(pos token.Pos, format string, args ...any) {
	a.Errors = append(a.Errors, Diagnostic{
		Pos: a.fset.Position(pos), Analyzer: "annot",
		Message: fmt.Sprintf(format, args...),
	})
}
