package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Mode is the wait-freedom claim a directive makes.
type Mode int

// Modes, in increasing order of suspicion.
const (
	ModeNone     Mode = iota // no directive: not an entry point, but traversed if reached
	ModeWaitFree             // wf:waitfree — analyzed entry point
	ModeBounded              // wf:bounded — trusted manual boundedness argument
	ModeBlocking             // wf:blocking — intentional; unreachable from wait-free code
)

// String names the mode as its directive spells it.
func (m Mode) String() string {
	switch m {
	case ModeWaitFree:
		return "wf:waitfree"
	case ModeBounded:
		return "wf:bounded"
	case ModeBlocking:
		return "wf:blocking"
	}
	return "unannotated"
}

// Directive is one parsed wf: annotation.
type Directive struct {
	Mode Mode
	Arg  string // reason for wf:blocking, bound for wf:bounded
	Pos  token.Pos
}

// Annotations holds every wf: directive parsed from a package's non-test
// files, plus any malformed-annotation errors.
type Annotations struct {
	// Pkg is the package-level default, from directives on package clauses.
	Pkg *Directive
	// Funcs maps annotated function declarations to their directives.
	Funcs map[*ast.FuncDecl]*Directive
	// Errors reports conflicting, malformed or unknown directives.
	Errors []Diagnostic

	fset *token.FileSet
	// boundedLines records, per file, the lines on which a wf:bounded
	// directive comment sits; a loop is exempt if such a comment is on the
	// line directly above it or trails on the loop's own line.
	boundedLines map[string]map[int]bool
}

// Effective resolves the directive governing fd: its own annotation if
// present, the package-level default otherwise.
func (a *Annotations) Effective(fd *ast.FuncDecl) Directive {
	if d := a.Funcs[fd]; d != nil {
		return *d
	}
	if a.Pkg != nil {
		return *a.Pkg
	}
	return Directive{Mode: ModeNone}
}

// LoopBounded reports whether a loop starting at pos carries a wf:bounded
// justification (a directive comment directly above or on the same line).
func (a *Annotations) LoopBounded(pos token.Pos) bool {
	p := a.fset.Position(pos)
	lines := a.boundedLines[p.Filename]
	return lines[p.Line-1] || lines[p.Line]
}

// parseAnnotations extracts wf: directives from the files' comments.
func parseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		Funcs:        make(map[*ast.FuncDecl]*Directive),
		fset:         fset,
		boundedLines: make(map[string]map[int]bool),
	}
	for _, f := range files {
		// Record wf:bounded comment lines for loop suppression, and catch
		// malformed directives anywhere in the file (doc comments included;
		// a doc group's lines never abut a loop, so the overlap is inert).
		// Errors from this sweep are deduplicated below against the doc-comment
		// passes, which parse the same groups again.
		for _, cg := range f.Comments {
			for _, d := range a.parseGroup(cg) {
				if d.Mode == ModeBounded {
					p := fset.Position(d.Pos)
					if a.boundedLines[p.Filename] == nil {
						a.boundedLines[p.Filename] = make(map[int]bool)
					}
					a.boundedLines[p.Filename][p.Line] = true
				}
			}
		}
		// Package-level directives sit on the package clause's doc comment.
		for _, d := range a.parseGroup(f.Doc) {
			if a.Pkg == nil {
				a.Pkg = d
			} else if a.Pkg.Mode != d.Mode {
				a.errorf(d.Pos, "package %s: conflicting %s and %s directives", f.Name.Name, a.Pkg.Mode, d.Mode)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range a.parseGroup(fd.Doc) {
				if prev := a.Funcs[fd]; prev == nil {
					a.Funcs[fd] = d
				} else if prev.Mode != d.Mode {
					a.errorf(d.Pos, "func %s: conflicting %s and %s directives", fd.Name.Name, prev.Mode, d.Mode)
				}
			}
		}
	}
	seen := make(map[Diagnostic]bool, len(a.Errors))
	dedup := a.Errors[:0]
	for _, e := range a.Errors {
		if !seen[e] {
			seen[e] = true
			dedup = append(dedup, e)
		}
	}
	a.Errors = dedup
	return a
}

// parseGroup extracts the directives of one comment group, recording
// malformed ones as errors. Only line comments with no space after //
// count, matching the //go: directive convention; `// wf:waitfree` is prose.
func (a *Annotations) parseGroup(cg *ast.CommentGroup) []*Directive {
	if cg == nil {
		return nil
	}
	var out []*Directive
	for _, c := range cg.List {
		body, ok := strings.CutPrefix(c.Text, "//wf:")
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(body, " ")
		arg = strings.TrimSpace(arg)
		d := &Directive{Pos: c.Pos(), Arg: arg}
		switch verb {
		case "waitfree":
			d.Mode = ModeWaitFree
		case "blocking":
			d.Mode = ModeBlocking
			if arg == "" {
				a.errorf(c.Pos(), "wf:blocking requires a reason")
			}
		case "bounded":
			d.Mode = ModeBounded
			if arg == "" {
				a.errorf(c.Pos(), "wf:bounded requires a stated bound")
			}
		default:
			a.errorf(c.Pos(), "unknown directive wf:%s (want waitfree, blocking or bounded)", verb)
			continue
		}
		out = append(out, d)
	}
	return out
}

// errorf records an annotation error at pos.
func (a *Annotations) errorf(pos token.Pos, format string, args ...any) {
	a.Errors = append(a.Errors, Diagnostic{
		Pos: a.fset.Position(pos), Analyzer: "annot",
		Message: fmt.Sprintf(format, args...),
	})
}
