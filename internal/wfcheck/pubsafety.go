package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// pubsafety checks the release/acquire discipline behind the publication
// idiom: a writer fills plain payload fields, then publishes them with an
// atomic store to a flag or pointer field of the same struct; readers must
// load that publication field atomically *before* touching the payload, or
// the happens-before edge the release store created never reaches them and
// the payload read races. atomicmix catches a single field accessed both
// atomically and plainly; pubsafety catches the cross-field version —
// payload written under a release of X, read without an acquire of X —
// which only exists for the wrapper types (atomic.Int64, atomic.Pointer,
// atomic.Value, ...) whose every direct access is atomic and therefore
// invisible to atomicmix.
//
// The check is scoped to same-struct pairs to stay precise: field F of
// struct T counts as published only when some function plainly writes F
// and atomically stores a wrapper-typed field X of the same T; a plain
// read of F is then flagged in any function that neither acquires (Load,
// CompareAndSwap, Swap on a wrapper field of T) nor releases T itself
// (the writer reads its own plain writes in program order).
func analyzePubSafety(p *Package) []Diagnostic {
	type fieldAt struct {
		field *types.Var
		owner *types.Named
		pos   token.Pos
	}
	type funcFacts struct {
		decl        *ast.FuncDecl
		releases    map[*types.Named]bool
		acquires    map[*types.Named]bool
		plainWrites []fieldAt
		plainReads  []fieldAt
	}

	// pubName remembers, per struct, the wrapper field used to publish it
	// (the first one released), for the diagnostic message.
	pubName := make(map[*types.Named]string)
	var facts []*funcFacts

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := &funcFacts{
				decl:     fd,
				releases: make(map[*types.Named]bool),
				acquires: make(map[*types.Named]bool),
			}
			// writeTargets marks selectors appearing as assignment targets so
			// the read pass can skip them.
			writeTargets := make(map[ast.Expr]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fun, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					field := fieldOf(p, base)
					if field == nil || !isAtomicWrapper(field.Type()) {
						return true
					}
					owner := ownerStruct(p, base)
					if owner == nil {
						return true
					}
					switch fun.Sel.Name {
					case "Store":
						ff.releases[owner] = true
						if _, ok := pubName[owner]; !ok {
							pubName[owner] = field.Name()
						}
					case "CompareAndSwap", "Swap":
						// Both read and write the publication word.
						ff.releases[owner] = true
						ff.acquires[owner] = true
						if _, ok := pubName[owner]; !ok {
							pubName[owner] = field.Name()
						}
					case "Load":
						ff.acquires[owner] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						writeTargets[sel] = true
						if field := fieldOf(p, sel); field != nil && !isAtomicWrapper(field.Type()) {
							if owner := ownerStruct(p, sel); owner != nil {
								ff.plainWrites = append(ff.plainWrites, fieldAt{field, owner, sel.Pos()})
							}
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						writeTargets[sel] = true
						if field := fieldOf(p, sel); field != nil && !isAtomicWrapper(field.Type()) {
							if owner := ownerStruct(p, sel); owner != nil {
								ff.plainWrites = append(ff.plainWrites, fieldAt{field, owner, sel.Pos()})
								ff.plainReads = append(ff.plainReads, fieldAt{field, owner, sel.Pos()})
							}
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || writeTargets[sel] {
					// An lhs selector is the write already recorded above.
					return true
				}
				field := fieldOf(p, sel)
				if field == nil || isAtomicWrapper(field.Type()) {
					return true
				}
				if owner := ownerStruct(p, sel); owner != nil {
					ff.plainReads = append(ff.plainReads, fieldAt{field, owner, sel.Pos()})
				}
				return true
			})
			facts = append(facts, ff)
		}
	}

	// A payload field is published when one function both plainly writes it
	// and releases a wrapper field of the same struct.
	published := make(map[*types.Var]token.Pos)
	for _, ff := range facts {
		for _, w := range ff.plainWrites {
			if ff.releases[w.owner] {
				if _, seen := published[w.field]; !seen {
					published[w.field] = w.pos
				}
			}
		}
	}
	if len(published) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, ff := range facts {
		for _, r := range ff.plainReads {
			wpos, ok := published[r.field]
			if !ok || ff.acquires[r.owner] || ff.releases[r.owner] {
				continue
			}
			where := p.Fset.Position(wpos)
			diags = append(diags, Diagnostic{
				Pos: p.Fset.Position(r.pos), Analyzer: "pubsafety",
				Message: fmt.Sprintf("plain read of %s.%s, which is published under an atomic store of %s.%s (write at %s:%d); load %s first or the release never reaches this reader (in %s)",
					r.owner.Obj().Name(), r.field.Name(), r.owner.Obj().Name(), pubName[r.owner], where.Filename, where.Line, pubName[r.owner], ff.decl.Name.Name),
			})
		}
	}
	return diags
}

// isAtomicWrapper reports a sync/atomic wrapper type (atomic.Int64,
// atomic.Pointer[T], atomic.Value, ...), whose direct accesses are always
// atomic.
func isAtomicWrapper(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// ownerStruct resolves the named struct type a field selection reads
// through, dereferencing one pointer level.
func ownerStruct(p *Package, sel *ast.SelectorExpr) *types.Named {
	s := p.Info.Selections[sel]
	if s == nil {
		return nil
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
