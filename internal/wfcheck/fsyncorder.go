package wfcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fsyncorder audits the crash-durability commit protocol on functions marked
// //wf:durable: a temp file is written, synced, atomically renamed into
// place, and the directory is synced so the rename itself survives a crash.
// The kill -9 drills sample a handful of crash points; this pass pins the
// ordering at every os.Rename statically.
//
// The check is positional, not a full dominance analysis: within a durable
// function, every os.Rename must have a File.Sync on the renamed file at an
// earlier position and some other Sync (the directory handle) at a later
// one. That matches the straight-line shape commit paths take in practice —
// the same decidable-over-complete trade the register-discipline analyzers
// make — and a rename whose source the analyzer cannot trace to a file
// handle is its own finding, waivable with a reason.
//
// os.Rename in a function not marked //wf:durable is flagged too: a commit
// rename outside the audited protocol is exactly the bug class this pass
// exists for. A //wf:durable directive on a function with no rename is a
// stale claim.

// syncCall is one (*os.File).Sync call site: the receiver expression
// rendered as a string, and where it happened.
type syncCall struct {
	recv string
	pos  token.Pos
}

// analyzeFsyncOrder runs the fsyncorder analyzer over one package.
func analyzeFsyncOrder(p *Package, diags *[]Diagnostic) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fsyncOrderFunc(p, fd, diags)
		}
	}
}

// fsyncOrderFunc checks one function's commit protocol.
func fsyncOrderFunc(p *Package, fd *ast.FuncDecl, diags *[]Diagnostic) {
	var renames []*ast.CallExpr
	var syncs []syncCall
	nameBinds := make(map[string]string) // local := f.Name() → "f"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p, n)
			if fn == nil {
				return true
			}
			switch fn.FullName() {
			case "os.Rename":
				renames = append(renames, n)
			case "(*os.File).Sync":
				if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
					syncs = append(syncs, syncCall{recv: types.ExprString(ast.Unparen(sel.X)), pos: n.Pos()})
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent || id.Name == "_" {
					continue
				}
				if recv, ok := fileNameCall(p, n.Rhs[i]); ok {
					nameBinds[id.Name] = recv
				}
			}
		}
		return true
	})
	durablePos, durable := p.Annots.Durable[fd]
	if durable && len(renames) == 0 {
		*diags = append(*diags, Diagnostic{
			Pos: p.Fset.Position(durablePos), Analyzer: "fsyncorder",
			Message: fd.Name.Name + " is marked //wf:durable but commits nothing: no os.Rename in the body",
		})
		return
	}
	for _, rn := range renames {
		if !durable {
			if d := disciplineDiag(p, rn.Pos(), "fsyncorder",
				"os.Rename commits a file but %s is not marked //wf:durable, so the fsync ordering is unaudited", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
			continue
		}
		fileExpr, ok := renameSource(p, rn, nameBinds)
		if !ok {
			if d := disciplineDiag(p, rn.Pos(), "fsyncorder",
				"cannot trace the os.Rename source in %s to a file handle, so the file-sync ordering is unverifiable", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
			continue
		}
		if !syncBefore(syncs, fileExpr, rn.Pos()) {
			if d := disciplineDiag(p, rn.Pos(), "fsyncorder",
				"os.Rename in %s is not preceded by %s.Sync(): a crash can commit a torn file", fd.Name.Name, fileExpr); d != nil {
				*diags = append(*diags, *d)
			}
		}
		if !dirSyncAfter(syncs, fileExpr, rn.Pos()) {
			if d := disciplineDiag(p, rn.Pos(), "fsyncorder",
				"commit rename in %s is not followed by a directory fsync before return: a crash can lose the rename itself", fd.Name.Name); d != nil {
				*diags = append(*diags, *d)
			}
		}
	}
}

// fileNameCall recognizes `f.Name()` on an *os.File receiver and returns the
// receiver's expression string.
func fileNameCall(p *Package, e ast.Expr) (string, bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.FullName() != "(*os.File).Name" {
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), true
}

// renameSource resolves an os.Rename call's source argument to the file
// handle it names: a local bound from `x := f.Name()`, or a direct
// `f.Name()` argument.
func renameSource(p *Package, rn *ast.CallExpr, binds map[string]string) (string, bool) {
	if len(rn.Args) < 1 {
		return "", false
	}
	src := ast.Unparen(rn.Args[0])
	if id, isIdent := src.(*ast.Ident); isIdent {
		if recv, ok := binds[id.Name]; ok {
			return recv, true
		}
		return "", false
	}
	return fileNameCall(p, src)
}

// syncBefore reports whether the renamed file's handle was Synced at an
// earlier position than the rename.
func syncBefore(syncs []syncCall, fileExpr string, rename token.Pos) bool {
	for _, s := range syncs {
		if s.recv == fileExpr && s.pos < rename {
			return true
		}
	}
	return false
}

// dirSyncAfter reports whether some other handle — the directory, by the
// commit protocol's shape — is Synced after the rename.
func dirSyncAfter(syncs []syncCall, fileExpr string, rename token.Pos) bool {
	for _, s := range syncs {
		if s.recv != fileExpr && s.pos > rename {
			return true
		}
	}
	return false
}
