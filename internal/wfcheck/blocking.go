package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// blockedCalls maps the fully-qualified names of standard-library calls
// that can stall on another process to a short description. TryLock and
// buffered-channel probes are absent on purpose: they return.
var blockedCalls = map[string]string{
	"(*sync.Mutex).Lock":     "blocks while another process holds the mutex",
	"(*sync.RWMutex).Lock":   "blocks while another process holds the lock",
	"(*sync.RWMutex).RLock":  "blocks while a writer holds the lock",
	"(*sync.WaitGroup).Wait": "waits for other processes to finish",
	"(*sync.Cond).Wait":      "waits for another process's signal",
	"time.Sleep":             "stalls unconditionally",
}

// analyzeBlocking builds the per-package call graph from the wf:waitfree
// entry points (every unannotated function too, in audit mode) and flags
// every blocking construct transitively reachable from them.
func analyzeBlocking(p *Package, all bool) []Diagnostic {
	b := &blockingPass{
		p:       p,
		decls:   make(map[types.Object]*ast.FuncDecl),
		visited: make(map[*ast.FuncDecl]bool),
	}
	var order []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				b.decls[obj] = fd
			}
			order = append(order, fd)
		}
	}
	for _, fd := range order {
		mode := p.Annots.Effective(fd).Mode
		if mode == ModeWaitFree || (all && mode == ModeNone) {
			b.visit(fd, fd)
		}
	}
	return b.diags
}

type blockingPass struct {
	p       *Package
	decls   map[types.Object]*ast.FuncDecl
	visited map[*ast.FuncDecl]bool
	diags   []Diagnostic
}

// visit scans fd once, attributing findings to the entry point that first
// reached it.
func (b *blockingPass) visit(fd, entry *ast.FuncDecl) {
	if b.visited[fd] {
		return
	}
	b.visited[fd] = true
	b.scan(fd, entry)
}

// scan walks one function body for blocking constructs and same-package
// calls to traverse.
func (b *blockingPass) scan(fd, entry *ast.FuncDecl) {
	// First pass: account for channel operations that appear as the comm
	// statement of a select case — they do not block on their own if the
	// select has a default; if it has none, the select itself is the finding.
	accounted := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					accounted[m] = true
				}
				return true
			})
		}
		if !hasDefault {
			b.report(fd, entry, sel.Pos(), "select without a default case blocks until another process communicates")
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !accounted[n] {
				b.report(fd, entry, n.Pos(), "channel send outside a select with default can block on a slow receiver")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !accounted[n] {
				b.report(fd, entry, n.Pos(), "channel receive outside a select with default blocks until another process sends")
			}
		case *ast.RangeStmt:
			if t := b.p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					b.report(fd, entry, n.Pos(), "ranging over a channel blocks between messages")
				}
			}
		case *ast.ForStmt:
			b.checkLoop(fd, entry, n)
		case *ast.CallExpr:
			b.checkCall(fd, entry, n)
		}
		return true
	})
}

// checkLoop applies the loop-shape rules: a loop with no exit condition is
// unbounded unless annotated, and a conditioned loop that yields via
// runtime.Gosched is a spin-wait on another process's progress. Loops whose
// exit condition is local (three-clause scans, range over data) pass — the
// analyzer is a conservative syntactic check, per Theorem 6's spirit of
// trading completeness for decidability.
func (b *blockingPass) checkLoop(fd, entry *ast.FuncDecl, loop *ast.ForStmt) {
	if b.p.Annots.LoopBounded(loop.Pos()) {
		return
	}
	if loop.Cond == nil {
		b.report(fd, entry, loop.Pos(),
			"unbounded loop: no exit condition; justify with //wf:bounded <bound> or restructure with helping")
		return
	}
	if gosched := goschedIn(b.p, loop); gosched.IsValid() {
		b.report(fd, entry, loop.Pos(),
			"spin loop: runtime.Gosched marks waiting on another process's progress; justify with //wf:bounded <bound> or restructure with helping")
	}
}

// goschedIn reports the position of a runtime.Gosched call directly inside
// loop (not in nested loops, which are checked on their own).
func goschedIn(p *Package, loop *ast.ForStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if f := calleeFunc(p, n); f != nil && f.FullName() == "runtime.Gosched" {
				found = n.Pos()
			}
		}
		return found == token.NoPos
	})
	return found
}

// checkCall flags blocking standard-library calls and traverses or flags
// same-package callees according to their annotations.
func (b *blockingPass) checkCall(fd, entry *ast.FuncDecl, call *ast.CallExpr) {
	f := calleeFunc(b.p, call)
	if f == nil {
		return // conversion, builtin, or dynamic call through a function value
	}
	full := f.FullName()
	if why, ok := blockedCalls[full]; ok {
		name := strings.NewReplacer("(*", "", ")", "").Replace(full)
		b.report(fd, entry, call.Pos(), fmt.Sprintf("calls %s: %s", name, why))
		return
	}
	target := b.decls[f]
	if target == nil {
		return // other package or no body: trusted at the package boundary
	}
	switch d := b.p.Annots.Effective(target); d.Mode {
	case ModeBlocking:
		b.report(fd, entry, call.Pos(),
			fmt.Sprintf("calls %s, annotated wf:blocking (%s)", b.funcName(target), d.Arg))
	case ModeBounded:
		// Trusted manual bound; do not descend.
	case ModeWaitFree:
		b.visit(target, target) // its own entry point; findings attribute to it
	default:
		b.visit(target, entry)
	}
}

// report records a finding, naming the containing function and, when it
// differs, the wait-free entry point that reaches it.
func (b *blockingPass) report(fd, entry *ast.FuncDecl, pos token.Pos, msg string) {
	where := b.funcName(fd)
	label := "wf:waitfree"
	if b.p.Annots.Effective(entry).Mode != ModeWaitFree {
		label = "unannotated" // audit-mode entry, assumed wait-free
	}
	var context string
	if fd != entry {
		context = fmt.Sprintf(" (in %s, reached from %s %s)", where, label, b.funcName(entry))
	} else {
		context = fmt.Sprintf(" (in %s %s)", label, where)
	}
	b.diags = append(b.diags, Diagnostic{
		Pos: b.p.Fset.Position(pos), Analyzer: "blocking",
		Message: msg + context,
	})
}

// funcName renders a declaration as pkg-local "F" or "(*T).M".
func (b *blockingPass) funcName(fd *ast.FuncDecl) string {
	if obj, ok := b.p.Info.Defs[fd.Name].(*types.Func); ok {
		full := obj.FullName()
		if b.p.TPkg != nil {
			full = strings.ReplaceAll(full, b.p.TPkg.Path()+".", "")
		}
		return full
	}
	return fd.Name.Name
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for conversions, builtins and calls through function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
