package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// blockedCalls maps the fully-qualified names of standard-library calls
// that can stall on another process to a short description. TryLock and
// buffered-channel probes are absent on purpose: they return.
var blockedCalls = map[string]string{
	"(*sync.Mutex).Lock":     "blocks while another process holds the mutex",
	"(*sync.RWMutex).Lock":   "blocks while another process holds the lock",
	"(*sync.RWMutex).RLock":  "blocks while a writer holds the lock",
	"(*sync.WaitGroup).Wait": "waits for other processes to finish",
	"(*sync.Cond).Wait":      "waits for another process's signal",
	"time.Sleep":             "stalls unconditionally",
}

// analyzeBlocking builds the whole-program call graph from the wf:waitfree
// entry points of the target packages (every unannotated function too, in
// audit mode) and flags every blocking construct transitively reachable
// from them. Calls resolve across package boundaries through the program
// index; interface call sites conservatively fan out to every in-module
// implementation; only the standard library and function values remain
// unresolved boundaries.
func analyzeBlocking(prog *Program, targets []*Package, all bool) []Diagnostic {
	b := &blockingPass{
		prog:    prog,
		visited: make(map[*ast.FuncDecl]bool),
	}
	for _, p := range targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pf := prog.FuncOf(p.Info.Defs[fd.Name])
				if pf == nil {
					continue
				}
				mode := pf.Mode().Mode
				if mode == ModeWaitFree || (all && mode == ModeNone) {
					b.visit(pf, pf)
				}
			}
		}
	}
	return b.diags
}

type blockingPass struct {
	prog    *Program
	visited map[*ast.FuncDecl]bool
	diags   []Diagnostic
}

// visit scans pf once, attributing findings to the entry point that first
// reached it.
func (b *blockingPass) visit(pf, entry *ProgFunc) {
	if b.visited[pf.Decl] {
		return
	}
	b.visited[pf.Decl] = true
	b.scan(pf, entry)
}

// scan walks one function body for blocking constructs and calls to
// traverse — same-package or not.
func (b *blockingPass) scan(pf, entry *ProgFunc) {
	p := pf.Pkg
	// First pass: account for channel operations that appear as the comm
	// statement of a select case — they do not block on their own if the
	// select has a default; if it has none, the select itself is the finding.
	accounted := make(map[ast.Node]bool)
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					accounted[m] = true
				}
				return true
			})
		}
		if !hasDefault {
			b.report(pf, entry, sel.Pos(), "select without a default case blocks until another process communicates")
		}
		return true
	})

	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !accounted[n] {
				b.report(pf, entry, n.Pos(), "channel send outside a select with default can block on a slow receiver")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !accounted[n] {
				b.report(pf, entry, n.Pos(), "channel receive outside a select with default blocks until another process sends")
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					b.report(pf, entry, n.Pos(), "ranging over a channel blocks between messages")
				}
			}
		case *ast.ForStmt:
			b.checkLoop(pf, entry, n)
		case *ast.CallExpr:
			b.checkCall(pf, entry, n)
		}
		return true
	})
}

// checkLoop applies the loop-shape rules: a loop with no exit condition is
// unbounded unless annotated, and a conditioned loop that yields via
// runtime.Gosched is a spin-wait on another process's progress. Loops whose
// exit condition is local (three-clause scans, range over data) pass — the
// analyzer is a conservative syntactic check, per Theorem 6's spirit of
// trading completeness for decidability. A loop-line wf:bounded or
// wf:lockfree directive suppresses the shape checks; boundcert and progress
// then audit the directive itself.
func (b *blockingPass) checkLoop(pf, entry *ProgFunc, loop *ast.ForStmt) {
	if pf.Pkg.Annots.LoopDirective(loop.Pos()) != nil {
		return
	}
	if loop.Cond == nil {
		b.report(pf, entry, loop.Pos(),
			"unbounded loop: no exit condition; justify with //wf:bounded <bound> or //wf:lockfree <reason>, or restructure with helping")
		return
	}
	if gosched := goschedIn(pf.Pkg, loop); gosched.IsValid() {
		b.report(pf, entry, loop.Pos(),
			"spin loop: runtime.Gosched marks waiting on another process's progress; justify with //wf:bounded <bound> or restructure with helping")
	}
}

// goschedIn reports the position of a runtime.Gosched call directly inside
// loop (not in nested loops, which are checked on their own).
func goschedIn(p *Package, loop *ast.ForStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if f := calleeFunc(p, n); f != nil && f.FullName() == "runtime.Gosched" {
				found = n.Pos()
			}
		}
		return found == token.NoPos
	})
	return found
}

// checkCall flags blocking standard-library calls and traverses or flags
// resolvable callees according to their annotations. Interface dispatch
// fans out to every in-module implementation.
func (b *blockingPass) checkCall(pf, entry *ProgFunc, call *ast.CallExpr) {
	f := calleeFunc(pf.Pkg, call)
	if f == nil {
		return // conversion, builtin, or dynamic call through a function value
	}
	full := f.FullName()
	if why, ok := blockedCalls[full]; ok {
		name := strings.NewReplacer("(*", "", ")", "").Replace(full)
		b.report(pf, entry, call.Pos(), fmt.Sprintf("calls %s: %s", name, why))
		return
	}
	if isInterfaceMethod(f) {
		if d := b.prog.Contract(f); d != nil {
			// The interface declares a contract; trust or flag the call on
			// the contract's own terms. Implementations are still audited at
			// their declarations — a wf:waitfree implementation is its own
			// entry point, and a wf:blocking one (the demo harnesses) is
			// honest about breaking the contract and answers only to its own
			// callers.
			switch d.Mode {
			case ModeBlocking:
				b.report(pf, entry, call.Pos(),
					fmt.Sprintf("calls %s, whose interface contract is wf:blocking (%s)", f.FullName(), d.Arg))
			case ModeLockFree:
				b.report(pf, entry, call.Pos(),
					fmt.Sprintf("calls %s, whose interface contract is wf:lockfree (%s): lock-free progress does not compose into wait-freedom", f.FullName(), d.Arg))
			}
			return
		}
		for _, impl := range b.prog.Implementations(f) {
			b.follow(pf, entry, impl, call, true)
		}
		return
	}
	target := b.prog.FuncOf(f)
	if target == nil {
		return // standard library or bodyless: trusted at the module boundary
	}
	b.follow(pf, entry, target, call, false)
}

// follow handles one resolved callee according to its effective directive.
func (b *blockingPass) follow(pf, entry *ProgFunc, target *ProgFunc, call *ast.CallExpr, dynamic bool) {
	via := "calls"
	if dynamic {
		via = "may dispatch to"
	}
	switch d := target.Mode(); d.Mode {
	case ModeBlocking:
		b.report(pf, entry, call.Pos(),
			fmt.Sprintf("%s %s, annotated wf:blocking (%s)", via, target.Name(pf.Pkg), d.Arg))
	case ModeLockFree:
		b.report(pf, entry, call.Pos(),
			fmt.Sprintf("%s %s, annotated wf:lockfree (%s): lock-free progress does not compose into wait-freedom", via, target.Name(pf.Pkg), d.Arg))
	case ModeBounded:
		// Trusted manual bound; do not descend.
	case ModeWaitFree:
		b.visit(target, target) // its own entry point; findings attribute to it
	default:
		b.visit(target, entry)
	}
}

// report records a finding, naming the containing function and, when it
// differs, the wait-free entry point that reaches it.
func (b *blockingPass) report(pf, entry *ProgFunc, pos token.Pos, msg string) {
	where := pf.Name(pf.Pkg)
	label := "wf:waitfree"
	if entry.Mode().Mode != ModeWaitFree {
		label = "unannotated" // audit-mode entry, assumed wait-free
	}
	var context string
	if pf.Decl != entry.Decl {
		context = fmt.Sprintf(" (in %s, reached from %s %s)", where, label, entry.Name(pf.Pkg))
	} else {
		context = fmt.Sprintf(" (in %s %s)", label, where)
	}
	b.diags = append(b.diags, Diagnostic{
		Pos: pf.Pkg.Fset.Position(pos), Analyzer: "blocking",
		Message: msg + context,
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for conversions, builtins and calls through function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
