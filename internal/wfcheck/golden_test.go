package wfcheck

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenConfigs overrides the analysis config for specific fixtures; the
// default is Config{}. The stale fixture needs audit mode because stale
// warnings only appear under -all.
var goldenConfigs = map[string]Config{
	"stale": {All: true},
}

// TestGolden runs every analyzer over each fixture package under
// testdata/src and compares the rendered diagnostics against the case's
// .golden file. Run with -update to accept current output. Directories
// with no Go files of their own (containers for nested fixtures like
// xpkg/) are skipped; those fixtures get dedicated tests.
func TestGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range cases {
		if !entry.IsDir() {
			continue
		}
		name := entry.Name()
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			p, err := loader.LoadDir(dir)
			if err == ErrNoGoFiles {
				t.Skipf("no Go files in %s", name)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range p.TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}
			var b strings.Builder
			for _, d := range goldenConfigs[name].Run(p) {
				// Strip the absolute fixture dir everywhere, including inside
				// messages that cite another position, so goldens are portable.
				b.WriteString(strings.ReplaceAll(d.String(), dir+string(filepath.Separator), ""))
				b.WriteString("\n")
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestCleanFixtureIgnoresTestFiles pins the _test.go exclusion: the clean
// fixture directory contains a harness_test.go full of blocking calls under
// a package-wide wf:waitfree claim, and the loader must never read it.
func TestCleanFixtureIgnoresTestFiles(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader read test file %s", name)
		}
	}
	if ds := (Config{}).Run(p); len(ds) != 0 {
		t.Errorf("clean fixture has findings: %v", ds)
	}
	if ds := (Config{All: true}).Run(p); len(ds) != 0 {
		t.Errorf("clean fixture has audit-mode findings: %v", ds)
	}
}
