package wfcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// abasafe audits compare-and-swap on recyclable pointers for the ABA
// hazard: a CAS that observes old, sleeps while old's referent is freed and
// its address reused for a new object, then succeeds against the recycled
// address — acting on state it never validated. The tree's pointer CAS
// idioms are each safe for a stated reason, and the pass demands one of
// them at every atomic pointer CAS site:
//
//   - install-once: CompareAndSwap(nil, fresh) — nil is never recycled, and
//     success transitions the slot out of nil forever (the consensus
//     directory's decide slots);
//   - held-pointer: old was loaded from this same register in this function
//     (`c := reg.Load(); ...; reg.CompareAndSwap(c, ...)`) — Go's GC cannot
//     recycle an address the CAS'er still references, so success implies
//     the register held that very object throughout (the read-cache
//     invalidation, the registry's snapshot install);
//   - value-derived: new is computed from old as an operand, the RMW shape
//     where a recycled-but-equal old still yields the intended transition;
//   - declared: the field carries //wf:monotone (an ordered tag makes
//     repeats harmless) or //wf:abaguard <reason> (epoch bump or other
//     protocol argument, stated at the field).
//
// Integer CAS is out of scope: numbers are values, not addresses — an
// "ABA" on a counter is just an equal value, and the ordered cases that do
// matter (the GC anchor swing) are the monotone analyzer's job.

// analyzeABA checks every sync/atomic pointer CompareAndSwap in the package.
func analyzeABA(prog *Program, p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkABA(prog, p, fd)...)
		}
	}
	return diags
}

// checkABA audits one function body.
func checkABA(prog *Program, p *Package, fd *ast.FuncDecl) []Diagnostic {
	binds := loadBindings(p, fd.Body)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		recv, old, new, ok := pointerCAS(p, call)
		if !ok {
			return true
		}
		recvPath := ""
		var fa *FieldAnn
		if recv != nil {
			if _, a := annFieldOf(prog, p, recv); a != nil {
				fa = a
			}
			recvPath = types.ExprString(ast.Unparen(recv))
		}
		switch {
		case fa != nil && (fa.Monotone || fa.ABAGuard != ""):
			return true // declared protection at the field
		case isNilExpr(p, old):
			return true // install-once: nil is never a recycled address
		case recvPath != "" && refMatches(types.ExprString(ast.Unparen(old)), recvPath, binds):
			return true // held-pointer: the GC pins old's address while we hold it
		case exprContains(new, types.ExprString(ast.Unparen(old))):
			return true // value-derived RMW: new is a function of old
		}
		if d := disciplineDiag(p, call.Pos(), "abasafe",
			"pointer CompareAndSwap(%s, %s) has no ABA protection: old is neither nil, held from this register's own Load, nor an operand of new, and the field declares no //wf:monotone or //wf:abaguard",
			types.ExprString(old), types.ExprString(new)); d != nil {
			diags = append(diags, *d)
		}
		return true
	})
	return diags
}

// pointerCAS decomposes a sync/atomic CompareAndSwap whose compared values
// are pointers: the atomic.Pointer[T] method form (recv, args old/new) or
// the CompareAndSwapPointer function form (recv nil, unsafe.Pointer args).
func pointerCAS(p *Package, call *ast.CallExpr) (recv, old, new ast.Expr, ok bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
		!strings.HasPrefix(fn.Name(), "CompareAndSwap") {
		return nil, nil, nil, false
	}
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && len(call.Args) == 2 {
		if t := p.Info.TypeOf(sel.X); t != nil && isPointerAtomic(t) {
			return sel.X, call.Args[0], call.Args[1], true
		}
		return nil, nil, nil, false
	}
	if len(call.Args) == 3 { // CompareAndSwapPointer(addr, old, new)
		if t := p.Info.TypeOf(call.Args[1]); t != nil && isPointerValue(t) {
			return nil, call.Args[1], call.Args[2], true
		}
	}
	return nil, nil, nil, false
}

// isPointerAtomic reports an atomic wrapper whose payload is an address:
// atomic.Pointer[T] (or a pointer to one).
func isPointerAtomic(t types.Type) bool {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || !isAtomicWrapper(n) {
		return false
	}
	return n.Obj().Name() == "Pointer"
}

// isPointerValue reports a pointer-shaped value type (unsafe.Pointer or *T).
func isPointerValue(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
