package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzeAtomicMix flags struct fields accessed both through sync/atomic
// package-level functions (atomic.LoadInt64(&s.f), ...) and by plain
// read/write anywhere in the package. Such a field has no consistent access
// discipline: the plain access races with the atomic one, and the race
// detector only catches the schedules that happen to run. Fields of the
// modern atomic.Int64-style types cannot be accessed plainly and need no
// check. The whole package is scanned regardless of annotations — a mixed
// field is a bug in blocking code too.
func analyzeAtomicMix(p *Package) []Diagnostic {
	type access struct {
		pos   token.Pos
		fname string // atomic function used, e.g. sync/atomic.LoadInt64
	}
	atomicFields := make(map[*types.Var]access) // field -> first atomic access
	viaAtomic := make(map[*ast.SelectorExpr]bool)

	// Pass 1: find fields whose address feeds a sync/atomic call.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(p, sel)
			if field == nil {
				return true
			}
			viaAtomic[sel] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = access{pos: sel.Pos(), fname: fn.FullName()}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector of those fields is a plain access.
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || viaAtomic[sel] {
				return true
			}
			field := fieldOf(p, sel)
			if field == nil {
				return true
			}
			first, ok := atomicFields[field]
			if !ok {
				return true
			}
			firstPos := p.Fset.Position(first.pos)
			diags = append(diags, Diagnostic{
				Pos: p.Fset.Position(sel.Pos()), Analyzer: "atomicmix",
				Message: fmt.Sprintf("field %s is accessed with %s (at %s:%d) but plainly here: pick one discipline",
					field.Name(), first.fname, firstPos.Filename, firstPos.Line),
			})
			return true
		})
	}
	return diags
}

// fieldOf resolves a selector expression to the struct field it denotes,
// or nil for methods, qualified identifiers and non-field selections.
func fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
