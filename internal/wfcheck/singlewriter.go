package wfcheck

import (
	"go/ast"
	"go/types"
)

// singlewriter enforces the paper's single-writer-register discipline on
// annotated per-process slot arrays. A field marked //wf:singlewriter <owner>
// is a slice (or array) whose element i may be written only by process i:
// the announce/prefer/decided registers of the consensus protocols, the
// observed-prefix registers of the log GC, and the wfstats stripes all
// depend on it — two writers on one slot lose updates (StripedCounter's
// load+store) or break the protocol outright (a foreign write to announce
// forges an operation). The check is syntactic ownership: every element
// store — plain assignment, ++/--, or a sync/atomic mutation through the
// element, directly or through a one-level `slot := &f.field[i]` alias —
// must index by an identifier named exactly the annotated owner, the
// convention that makes ownership reviewable at the store site. Reads are
// free (the protocols scan all slots), and whole-field assignment replaces
// the slice header rather than an element, which is construction, not a
// slot write.

// swSite locates the annotated slice a store went through and the index it
// used.
type swSite struct {
	field *types.Var
	ann   *FieldAnn
	index ast.Expr
}

// analyzeSingleWriter checks every function in the package against the
// package's (and, whole-program, the module's) singlewriter annotations.
func analyzeSingleWriter(prog *Program, p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkSingleWriter(prog, p, fd)...)
		}
	}
	return diags
}

// checkSingleWriter audits one function body.
func checkSingleWriter(prog *Program, p *Package, fd *ast.FuncDecl) []Diagnostic {
	// Aliases: `slot := &f.field[i]` (possibly deeper, `s := &c.slots[i].v`)
	// transfers the indexed element — and the ownership obligation — to a
	// local. One level is enough for the tree's idiom; an alias of an alias
	// does not resolve and simply escapes the check.
	aliases := make(map[types.Object]*swSite)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent {
				continue
			}
			site := swResolve(prog, p, aliases, as.Rhs[i])
			if site == nil {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				aliases[obj] = site
			} else if obj := p.Info.Uses[id]; obj != nil {
				aliases[obj] = site
			}
		}
		return true
	})

	var diags []Diagnostic
	report := func(pos ast.Node, site *swSite, how string) {
		if d := disciplineDiag(p, pos.Pos(), "singlewriter",
			"%s %s, annotated //wf:singlewriter %s, but indexes by %s — only the owning process may store its slot",
			how, site.field.Name(), site.ann.SingleWriter, types.ExprString(ast.Unparen(site.index))); d != nil {
			diags = append(diags, *d)
		}
	}
	check := func(pos ast.Node, e ast.Expr, how string) {
		site := swResolve(prog, p, aliases, e)
		if site == nil {
			return
		}
		idx, isIdent := unwrapConversion(p, site.index).(*ast.Ident)
		if !isIdent || idx.Name != site.ann.SingleWriter {
			report(pos, site, how)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// A bare identifier lhs (re)binds a local — taking the alias is
				// not an element write; writes through it (*slot, slot.v.Store)
				// are caught at their own sites. Whole-field assignment resolves
				// to no site; element writes resolve through swResolve.
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				check(n, lhs, "assignment writes an element of")
			}
		case *ast.IncDecStmt:
			check(n, n.X, "step writes an element of")
		case *ast.CallExpr:
			if recv, name, ok := atomicCallSite(p, n); ok && isMutatingAtomic(name) {
				check(n, recv, name+" mutates an element of")
			}
		}
		return true
	})
	return diags
}

// isMutatingAtomic reports a sync/atomic method that writes its target.
func isMutatingAtomic(name string) bool {
	for _, prefix := range []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// swResolve walks an lvalue or receiver path down to the index expression
// that selects an element of a //wf:singlewriter field, resolving one level
// of local aliasing; nil when the path touches no annotated slice element.
func swResolve(prog *Program, p *Package, aliases map[types.Object]*swSite, e ast.Expr) *swSite {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		if v, fa := annFieldOf(prog, p, e.X); v != nil && fa != nil && fa.SingleWriter != "" {
			return &swSite{field: v, ann: fa, index: e.Index}
		}
		return swResolve(prog, p, aliases, e.X)
	case *ast.SelectorExpr:
		return swResolve(prog, p, aliases, e.X)
	case *ast.StarExpr:
		return swResolve(prog, p, aliases, e.X)
	case *ast.UnaryExpr:
		return swResolve(prog, p, aliases, e.X)
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return aliases[obj]
		}
	}
	return nil
}
