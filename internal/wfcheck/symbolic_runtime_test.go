package wfcheck

import (
	"sync"
	"testing"

	waitfree "waitfree"
	"waitfree/internal/seqspec"
)

// loadFacadeCerts loads the real module from its root and returns the
// symbolic certificates of the façade's operations.
func loadFacadeCerts(t *testing.T) []OpCert {
	t.Helper()
	loader, root := loadFixture(t, "../../../..")
	prog := NewProgram(loader)
	ops, diags := analyzeSymbolic(prog, root)
	for _, d := range diags {
		t.Errorf("symbolic certification diagnostic: %s: %s", d.Pos, d.Message)
	}
	return ops
}

// TestFacadeCertsComplete pins the tentpole acceptance criterion: every
// exported operation reachable from the façade gets a finite symbolic step
// certificate — no symbound diagnostics, no unbounded certificates.
func TestFacadeCertsComplete(t *testing.T) {
	ops := loadFacadeCerts(t)
	if len(ops) < 40 {
		t.Fatalf("façade closure certified only %d operations, want the full surface (>= 40)", len(ops))
	}
	for _, c := range ops {
		if c.Status == BoundUnbounded {
			t.Errorf("%s has no finite bound: %s", c.Op, c.Basis)
		}
	}
	// The headline certificates: the universal object's operation is O(n·k)
	// plus lower-order terms, and the sharded front end multiplies by S.
	byOp := map[string]OpCert{}
	for _, c := range ops {
		byOp[c.Op] = c
	}
	invoke, ok := byOp["core.Universal.Invoke"]
	if !ok {
		t.Fatal("no certificate for core.Universal.Invoke")
	}
	if got := invoke.Poly["k·n"]; got < 1 {
		t.Errorf("Invoke bound %s lacks the Section 4.1 n·k replay term", invoke.Bound)
	}
	sharded, ok := byOp["shard.Sharded.Invoke"]
	if !ok {
		t.Fatal("no certificate for shard.Sharded.Invoke")
	}
	if got := sharded.Poly["S·k·n"]; got < 1 {
		t.Errorf("sharded Invoke bound %s lacks the S·k·n cross-shard term", sharded.Bound)
	}
}

// TestCertifiedBoundCoversRuntime is the static/dynamic cross-check: it
// instantiates the certified Invoke bound at a concrete configuration
// (n processes, snapshot interval k, GC period g) and asserts that the
// universal.op_steps histogram — the replay walk plus applies plus constant
// overhead an operation actually performed — never exceeded the evaluated
// certificate during a concurrent workload.
func TestCertifiedBoundCoversRuntime(t *testing.T) {
	const (
		procs     = 4
		snapEvery = 3
		gcEvery   = 8
		opsPer    = 300
	)
	ops := loadFacadeCerts(t)
	var invoke *OpCert
	for i := range ops {
		if ops[i].Op == "core.Universal.Invoke" {
			invoke = &ops[i]
		}
	}
	if invoke == nil {
		t.Fatal("no certificate for core.Universal.Invoke")
	}
	params := map[string]int64{
		"n": procs, "k": snapEvery, "g": gcEvery,
		"B": 4096, "C": 512, "S": 1, "M": 16,
	}
	bound, err := invoke.Poly.Eval(params)
	if err != nil {
		t.Fatalf("certificate %s does not evaluate at the experiment's parameters: %v", invoke.Bound, err)
	}
	if bound <= 0 {
		t.Fatalf("certificate %s evaluated to %d", invoke.Bound, bound)
	}

	fac := waitfree.NewConsensusFetchAndCons(procs, func() waitfree.Consensus {
		return waitfree.NewCASConsensus(procs)
	})
	u := waitfree.New(seqspec.KV{}, fac, procs,
		waitfree.WithSnapshotInterval(snapEvery), waitfree.WithLogGC(gcEvery))
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := u.Handle(pid)
			for i := 0; i < opsPer; i++ {
				key := int64(i % 7)
				h.Invoke(seqspec.Op{Kind: "put", Args: []int64{key, int64(pid*opsPer + i)}})
				h.Invoke(seqspec.Op{Kind: "get", Args: []int64{key}})
			}
		}(pid)
	}
	wg.Wait()

	var observed int64 = -1
	for _, s := range u.Metrics().Snapshot() {
		if s.Name == "universal.op_steps" {
			observed = s.Max
		}
	}
	if observed < 0 {
		t.Fatal("universal.op_steps histogram missing from the metrics snapshot")
	}
	if observed > bound {
		t.Errorf("observed per-operation steps max %d exceeds certified bound %s = %d at n=%d k=%d g=%d",
			observed, invoke.Bound, bound, procs, snapEvery, gcEvery)
	}
	t.Logf("certified %s = %d steps at n=%d k=%d g=%d; observed max %d",
		invoke.Bound, bound, procs, snapEvery, gcEvery, observed)
}
