package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Shared machinery for the register-discipline analyzers (singlewriter,
// monotone, abasafe). All three reason about the same kinds of facts: which
// annotated field an atomic call or assignment actually targets (possibly
// through a one-level `slot := &owner.field[i]` alias), which locals are
// bound from a register's own Load (`old := reg.Load()`), and which
// comparisons dominate a statement (enclosing if conditions plus the
// negations of preceding same-block early exits). Matching is syntactic —
// expression strings, the same currency boundcert trades in — which is the
// usual static-analysis trade: decidable and reviewable over complete.

// annFieldOf resolves an expression to its annotated field object, if the
// expression is a field selection (or plain identifier) carrying a FieldAnn.
func annFieldOf(prog *Program, p *Package, e ast.Expr) (*types.Var, *FieldAnn) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v := fieldOf(p, x); v != nil {
			return v, prog.fields[v]
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			return v, prog.fields[v]
		}
	}
	return nil, nil
}

// atomicCallSite decomposes a sync/atomic method call into its receiver
// expression and method name; ok is false for anything else.
func atomicCallSite(p *Package, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// loadBindings maps local identifiers defined as `x := path.Load()` (also in
// if-statement inits) to the receiver path string of the Load. The monotone
// and abasafe guards use it to recognize that a comparison against x is a
// comparison against the register's own prior value.
func loadBindings(p *Package, body *ast.BlockStmt) map[string]string {
	binds := make(map[string]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			call, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !isCall || len(call.Args) != 0 {
				continue
			}
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Load" {
				continue
			}
			binds[id.Name] = types.ExprString(ast.Unparen(sel.X))
		}
		return true
	})
	return binds
}

// guardSet is the set of comparisons known to hold at one statement: conds
// are conditions whose then-branch encloses it; negs are conditions of
// preceding same-block `if cond { ...exit }` statements, known false.
type guardSet struct {
	conds []ast.Expr
	negs  []ast.Expr
}

// collectGuards gathers the guard set dominating target within body.
// Descending into a function literal resets the set — a closure's call sites
// are not dominated by the literal's lexical context — which errs toward
// findings, the sound direction.
func collectGuards(body *ast.BlockStmt, target ast.Node) guardSet {
	var out guardSet
	var visit func(n ast.Node, gs guardSet) bool
	contains := func(n ast.Node) bool {
		return n != nil && n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	visit = func(n ast.Node, gs guardSet) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			for _, s := range n.List {
				if contains(s) {
					return visit(s, gs)
				}
				if ifs, isIf := s.(*ast.IfStmt); isIf && ifs.Else == nil && endsInExit(ifs.Body) {
					gs.negs = append(gs.negs, ifs.Cond)
				}
			}
		case *ast.IfStmt:
			if contains(n.Body) {
				gs.conds = append(gs.conds, n.Cond)
				return visit(n.Body, gs)
			}
			if n.Else != nil && contains(n.Else) {
				return visit(n.Else, gs)
			}
			if n.Init != nil && contains(n.Init) {
				out = gs
				return true
			}
			if contains(n.Cond) {
				// Inside the condition itself: short-circuit operands left of
				// target on && dominate it; on ||, their negations do.
				gs = condGuards(n.Cond, target, gs)
				out = gs
				return true
			}
		case *ast.ForStmt:
			for _, sub := range []ast.Node{n.Init, n.Cond, n.Post, n.Body} {
				if contains(sub) {
					return visit(sub, gs)
				}
			}
		case *ast.RangeStmt:
			if contains(n.Body) {
				return visit(n.Body, gs)
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if found || m == n {
					return true
				}
				if b, isBlock := m.(*ast.BlockStmt); isBlock && contains(b) {
					found = visit(b, gs)
					return false
				}
				if _, isLit := m.(*ast.FuncLit); isLit {
					return contains(m)
				}
				return true
			})
			if found {
				return true
			}
			out = gs
			return true
		case *ast.FuncLit:
			return visit(n.Body, guardSet{})
		default:
			// A plain statement or expression containing the target: look for
			// nested literals and short-circuit guards, then settle.
			var settled bool
			ast.Inspect(n, func(m ast.Node) bool {
				if settled {
					return false
				}
				if lit, isLit := m.(*ast.FuncLit); isLit && contains(lit) && lit != n {
					settled = visit(lit, gs)
					return false
				}
				if be, isBin := m.(*ast.BinaryExpr); isBin && (be.Op == token.LAND || be.Op == token.LOR) && contains(be) {
					gs = condGuards(be, target, gs)
					settled = true
					out = gs
					return false
				}
				return true
			})
			if !settled {
				out = gs
			}
			return true
		}
		out = gs
		return true
	}
	visit(body, guardSet{})
	return out
}

// condGuards extends the guard set for a target nested inside a boolean
// expression: on `a && b`, a dominates b; on `a || b`, !a dominates b.
func condGuards(cond ast.Expr, target ast.Node, gs guardSet) guardSet {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin {
		return gs
	}
	inY := be.Y.Pos() <= target.Pos() && target.End() <= be.Y.End()
	if inY {
		switch be.Op {
		case token.LAND:
			gs.conds = append(gs.conds, be.X)
		case token.LOR:
			gs.negs = append(gs.negs, be.X)
		}
		return condGuards(be.Y, target, gs)
	}
	if be.X.Pos() <= target.Pos() && target.End() <= be.X.End() {
		return condGuards(be.X, target, gs)
	}
	return gs
}

// endsInExit reports whether the block's last statement unconditionally
// leaves the enclosing flow: return, break, continue, goto, or panic.
func endsInExit(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true // break, continue and goto all leave the enclosing flow
	case *ast.ExprStmt:
		if call, isCall := last.X.(*ast.CallExpr); isCall {
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// refMatches reports whether expression string e denotes the current value
// of the register at path: the literal `path.Load()` call, or a local the
// binds map ties to that Load.
func refMatches(e string, path string, binds map[string]string) bool {
	if e == path+".Load()" {
		return true
	}
	return binds[e] == path
}

// guardProvesGE reports whether the guard set proves a >= b (a, b rendered
// expression strings): a positive guard comparing a above b, or a known-
// false guard comparing a at-or-below b. matchB widens what counts as b
// (e.g. the register's own Load under any bound name).
func guardProvesGE(gs guardSet, a string, matchB func(string) bool) bool {
	side := func(e ast.Expr) string { return types.ExprString(ast.Unparen(e)) }
	for _, c := range gs.conds {
		be, isBin := ast.Unparen(c).(*ast.BinaryExpr)
		if !isBin {
			continue
		}
		x, y := side(be.X), side(be.Y)
		switch be.Op {
		case token.GTR, token.GEQ: // a > b, a >= b
			if x == a && matchB(y) {
				return true
			}
		case token.LSS, token.LEQ: // b < a, b <= a
			if y == a && matchB(x) {
				return true
			}
		case token.LAND:
			if guardProvesGE(guardSet{conds: []ast.Expr{be.X}}, a, matchB) ||
				guardProvesGE(guardSet{conds: []ast.Expr{be.Y}}, a, matchB) {
				return true
			}
		}
	}
	for _, c := range gs.negs {
		be, isBin := ast.Unparen(c).(*ast.BinaryExpr)
		if !isBin {
			continue
		}
		x, y := side(be.X), side(be.Y)
		switch be.Op {
		case token.LSS, token.LEQ: // !(a < b), !(a <= b)
			if x == a && matchB(y) {
				return true
			}
		case token.GTR, token.GEQ: // !(b > a), !(b >= a)
			if y == a && matchB(x) {
				return true
			}
		}
	}
	return false
}

// exprContains reports whether expression string needle occurs as an
// operand inside hay's expression tree.
func exprContains(hay ast.Expr, needle string) bool {
	found := false
	ast.Inspect(hay, func(n ast.Node) bool {
		if e, isExpr := n.(ast.Expr); isExpr && types.ExprString(ast.Unparen(e)) == needle {
			found = true
		}
		return !found
	})
	return found
}

// disciplineDiag builds one finding, consuming a waiver if the line (or the
// line above) carries one for the analyzer.
func disciplineDiag(p *Package, pos token.Pos, analyzer, format string, args ...any) *Diagnostic {
	position := p.Fset.Position(pos)
	if p.Annots.Waive(position, analyzer) {
		return nil
	}
	return &Diagnostic{Pos: position, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}
