package wfcheck

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view: every module package the loader has
// seen, indexed so the analyzers can resolve calls across package
// boundaries. PR 2's per-package analysis stopped at import edges — a
// wf:waitfree entry point calling a blocking helper in a sibling internal
// package was invisible. The paper's wait-freedom is a whole-execution
// property, so the audit now follows the module's import graph end to end;
// only the standard library remains a trusted boundary.
type Program struct {
	// Pkgs holds every loaded module package, sorted by import path.
	Pkgs []*Package

	// funcs maps each function object defined in any module package to its
	// declaration, so a call site in one package resolves to the body (and
	// the annotations) in another.
	funcs map[types.Object]*ProgFunc

	// impls caches, per interface method, the concrete in-module methods a
	// dynamic dispatch could reach.
	impls map[*types.Func][]*ProgFunc

	// named lists every defined (non-alias) type in the module, gathered
	// once for interface fan-out.
	named []*types.Named

	// contracts maps annotated interface methods to their directives: a
	// dispatch through such a method trusts the contract instead of fanning
	// out to implementations.
	contracts map[types.Object]*Directive

	// Module is the module path when the program was loaded from a module
	// root ("" for single-package fixture programs); the package whose import
	// path equals it is the façade that seeds symbolic op certification.
	Module string

	// steps maps objects carrying //wf:steps declarations — functions,
	// interface methods, func-typed fields — to their cost expressions.
	steps map[types.Object]string

	// fields maps const/field objects to their //wf:param / //wf:len /
	// discipline annotations, resolvable from any package's call sites.
	fields map[types.Object]*FieldAnn
}

// ProgFunc is one function declaration located in its package.
type ProgFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Mode returns the effective directive mode governing the function.
func (pf *ProgFunc) Mode() Directive { return pf.Pkg.Annots.Effective(pf.Decl) }

// Name renders the function as pkg-qualified "path.F" or "path.(*T).M",
// with the given package's own path elided.
func (pf *ProgFunc) Name(from *Package) string {
	obj, ok := pf.Pkg.Info.Defs[pf.Decl.Name].(*types.Func)
	if !ok {
		return pf.Decl.Name.Name
	}
	full := obj.FullName()
	if from != nil && from.TPkg != nil {
		full = strings.ReplaceAll(full, from.TPkg.Path()+".", "")
	}
	return full
}

// NewProgram indexes everything the loader has loaded. Call after loading
// the target packages: transitively imported module packages are already in
// the loader's cache and participate in resolution.
func NewProgram(l *Loader) *Program {
	prog := &Program{
		Pkgs:      l.Packages(),
		funcs:     make(map[types.Object]*ProgFunc),
		impls:     make(map[*types.Func][]*ProgFunc),
		contracts: make(map[types.Object]*Directive),
		Module:    l.Module,
		steps:     make(map[types.Object]string),
		fields:    make(map[types.Object]*FieldAnn),
	}
	for _, p := range prog.Pkgs {
		prog.index(p)
	}
	return prog
}

// index records one package's function declarations, interface contracts
// and named types into the program's resolution maps.
func (prog *Program) index(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				prog.funcs[obj] = &ProgFunc{Pkg: p, Decl: fd}
			}
		}
	}
	for name, d := range p.Annots.Methods {
		if obj := p.Info.Defs[name]; obj != nil {
			prog.contracts[obj] = d
		}
	}
	for name, s := range p.Annots.Steps {
		if obj := p.Info.Defs[name]; obj != nil {
			prog.steps[obj] = s.Expr
		}
	}
	for name, fa := range p.Annots.Fields {
		obj := p.Info.Defs[name]
		if obj == nil {
			continue
		}
		prog.fields[obj] = fa
		if fa.Steps != "" {
			prog.steps[obj] = fa.Steps
		}
	}
	if p.TPkg == nil {
		return
	}
	scope := p.TPkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if n, ok := tn.Type().(*types.Named); ok {
			prog.named = append(prog.named, n)
		}
	}
}

// SinglePackage builds a degenerate program over one package with no
// cross-package index: the PR 2 per-package behavior, kept for measuring
// what whole-program analysis adds (and for the fixture proving it).
func SinglePackage(p *Package) *Program {
	prog := &Program{
		Pkgs:      []*Package{p},
		funcs:     make(map[types.Object]*ProgFunc),
		impls:     make(map[*types.Func][]*ProgFunc),
		contracts: make(map[types.Object]*Directive),
		steps:     make(map[types.Object]string),
		fields:    make(map[types.Object]*FieldAnn),
	}
	prog.index(p)
	return prog
}

// Contract returns the directive annotated on an interface method
// declaration, or nil. A non-nil contract resolves the dispatch site; the
// implementations still stand or fall on their own annotations.
func (prog *Program) Contract(f *types.Func) *Directive {
	return prog.contracts[f]
}

// FuncOf resolves a function object (from any package's Defs/Uses) to its
// in-module declaration, or nil for standard-library and bodyless
// functions. Object identity holds across packages because every module
// package is type-checked through one loader.
func (prog *Program) FuncOf(obj types.Object) *ProgFunc {
	if obj == nil {
		return nil
	}
	return prog.funcs[obj]
}

// Implementations returns the concrete in-module methods that a dynamic
// call to interface method m could dispatch to: for every defined module
// type T where *T satisfies the interface, the declaration of T's method
// with m's name. The fan-out is conservative — any in-module implementation
// is assumed reachable, which is the sound direction for a blocking audit.
func (prog *Program) Implementations(m *types.Func) []*ProgFunc {
	if cached, ok := prog.impls[m]; ok {
		return cached
	}
	var out []*ProgFunc
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		prog.impls[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		prog.impls[m] = nil
		return nil
	}
	for _, n := range prog.named {
		if _, isIface := n.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(n)
		if !types.Implements(ptr, iface) && !types.Implements(n, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if pf := prog.funcs[fn]; pf != nil {
			out = append(out, pf)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Name(nil) < out[j].Name(nil)
	})
	prog.impls[m] = out
	return out
}

// isInterfaceMethod reports whether f is declared on an interface type
// (so a call through it is a dynamic dispatch).
func isInterfaceMethod(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}
