// Package a is the callee side of the cross-package fixture: helpers whose
// blocking nature is invisible to a per-package analysis of the caller.
package a

import "sync"

var mu sync.Mutex

// Helper is unannotated and takes a lock: per-package analysis of a caller
// in another package cannot see the body and trusts the call.
func Helper() {
	mu.Lock()
	defer mu.Unlock()
}

// Declared is honest about blocking, but the annotation lives in this
// package: a per-package analysis of the caller cannot read it either.
//
//wf:blocking waits on the package mutex
func Declared() {
	mu.Lock()
	defer mu.Unlock()
}
