// Package b is the caller side of the cross-package fixture: wait-free
// entry points whose violations live across an import edge. Per-package
// analysis (the old behavior, Config.IntraPackage) reports nothing here;
// the whole-program call graph reports both.
package b

import "waitfree/internal/wfcheck/testdata/src/xpkg/a"

// CallsHidden reaches a mutex through an unannotated helper in package a.
//
//wf:waitfree
func CallsHidden() {
	a.Helper()
}

// CallsDeclared calls a function package a annotates wf:blocking.
//
//wf:waitfree
func CallsDeclared() {
	a.Declared()
}
