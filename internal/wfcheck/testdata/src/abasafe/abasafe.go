// Package abasafe exercises the pointer-CAS ABA audit: every sync/atomic
// CompareAndSwap over addresses must be install-once (nil old), held-pointer
// (old from this register's own Load), value-derived (new computed from
// old), or declared safe at the field (//wf:abaguard). The fixture covers
// each accepted shape, the unprotected rejection, and a waived site.
package abasafe

import "sync/atomic"

type node struct {
	next *node
}

type stack struct {
	head atomic.Pointer[node]
	//wf:abaguard the epoch tag in the node makes a recycled address harmless
	tagged atomic.Pointer[node]
}

// installOnce transitions out of nil: nil is never a recycled address.
func (s *stack) installOnce(n *node) bool {
	return s.head.CompareAndSwap(nil, n)
}

// heldPointer holds old from this register's own Load, so the GC pins it.
func (s *stack) heldPointer(n *node) bool {
	old := s.head.Load()
	n.next = old
	return s.head.CompareAndSwap(old, n)
}

// valueDerived computes new from old: the RMW shape where a recycled-but-
// equal old still yields the intended transition.
func (s *stack) valueDerived(old *node) bool {
	return s.head.CompareAndSwap(old, old.next)
}

// declared swaps a field whose protection is stated at its declaration.
func (s *stack) declared(old, n *node) bool {
	return s.tagged.CompareAndSwap(old, n)
}

// unprotected compares an address it neither holds nor derives from.
func (s *stack) unprotected(old, n *node) bool {
	return s.head.CompareAndSwap(old, n)
}

// waived is a justified exception with the protocol argument at the site.
func (s *stack) waived(old, n *node) bool {
	//wf:waiver abasafe the caller publishes old through a hazard pointer before calling
	return s.head.CompareAndSwap(old, n)
}
