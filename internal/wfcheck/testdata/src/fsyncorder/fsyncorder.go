// Package fsyncorder exercises the crash-durability commit pass: inside a
// //wf:durable function every os.Rename must be preceded by a Sync on the
// renamed file and followed by a directory fsync, a rename outside a
// durable function is unaudited, a durable function with no rename is a
// stale claim, and an untraceable rename source is its own (waivable)
// finding.
package fsyncorder

import (
	"os"
	"path/filepath"
)

type store struct {
	dir  string
	dirf *os.File
}

// commitGood is the full protocol: write temp, sync file, rename, sync dir.
//
//wf:durable
func (s *store) commitGood(name string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	return s.dirf.Sync()
}

// commitNoFileSync renames a file that was never synced: a crash after the
// rename can commit torn contents.
//
//wf:durable
func (s *store) commitNoFileSync(name string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	return s.dirf.Sync()
}

// commitNoDirSync syncs the file but never the directory: a crash can lose
// the rename itself.
//
//wf:durable
func (s *store) commitNoDirSync(name string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// commitUnannotated commits with a rename but never claims //wf:durable, so
// its ordering is outside the audit.
func (s *store) commitUnannotated(tmp, name string) error {
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// commitUntraceable is durable but renames a source the analyzer cannot tie
// to a file handle.
//
//wf:durable
func (s *store) commitUntraceable(tmp, name string) error {
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	return s.dirf.Sync()
}

// commitWaived is the untraceable shape with the reason stated at the site.
//
//wf:durable
func (s *store) commitWaived(tmp, name string) error {
	//wf:waiver fsyncorder recovery renames a verified file the writer already synced
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	return s.dirf.Sync()
}

// staleDurable claims durability but commits nothing.
//
//wf:durable
func (s *store) staleDurable() string {
	return s.dir
}
