// Package stale exercises stale-directive detection: annotations the
// analyzers no longer need. Audited with Config{All: true}; stale findings
// are warnings and never fail a run.
package stale

import "sync"

// Honest blocks and says so: not stale.
//
//wf:blocking holds mu across the critical section
func Honest(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// Reformed was rewritten lock-free but kept its old annotation: stale.
//
//wf:blocking takes the registry lock
func Reformed(x *int) {
	*x++
}

// TidyLoop carries a loop-line bound on a loop whose own condition already
// satisfies every analyzer: stale.
func TidyLoop(n int) int {
	total := 0
	//wf:bounded n iterations
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// EarnedLoop's directive is load-bearing — the condition-less shape would
// be flagged without it: not stale.
func EarnedLoop(v []int64, n int) bool {
	//wf:bounded v[0] strictly increases and the loop exits at n
	for {
		v[0]++
		if int(v[0]) >= n {
			return false
		}
		if v[int(v[0])] != 0 {
			return true
		}
	}
}
