// Package progress exercises the lock-free-vs-wait-free lint: CAS retry
// loops whose retry path helps no one.
package progress

import "sync/atomic"

type counter struct {
	v    atomic.Int64
	note int64
}

// BareRetry is the textbook lock-free shape: the only exit is this
// process's CAS winning, and a loser does nothing for anyone else.
func BareRetry(c *counter) int64 {
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+1) {
			return old
		}
	}
}

// ClaimedBounded puts a wf:bounded on the same shape; the bound is a fact
// about other processes' schedules, so the claim is rejected.
func ClaimedBounded(c *counter) int64 {
	//wf:bounded retries are rare in practice
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+1) {
			return old
		}
	}
}

// Acknowledged admits the shape with wf:lockfree and passes.
func Acknowledged(c *counter) int64 {
	//wf:lockfree contended increment; some process always completes
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+1) {
			return old
		}
	}
}

// Helping writes shared state on the retry path — the helping pattern of
// the universal construction — so the loop is not a bare retry and passes.
func Helping(c *counter, scratch *atomic.Int64) int64 {
	for {
		old := c.v.Load()
		scratch.Store(old)
		if c.v.CompareAndSwap(old, old+1) {
			return old
		}
	}
}
