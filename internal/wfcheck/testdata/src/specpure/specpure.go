// Package specpure exercises the transition-determinism rules against the
// real seqspec interfaces.
package specpure

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"waitfree/internal/seqspec"
)

// Dirty is a deliberately impure spec implementation.
type Dirty struct {
	m map[string]int64
}

var applyCount int64 // package-level state a transition must not touch

// Apply breaks determinism three ways.
func (d *Dirty) Apply(op seqspec.Op) int64 {
	applyCount++ // violation: mutates package-level state
	if op.Kind == "stamp" {
		return time.Now().UnixNano() // violation: reads the clock
	}
	d.m[op.Kind] = op.Arg(0)
	return 0
}

// Clone is clean.
func (d *Dirty) Clone() seqspec.State {
	m := make(map[string]int64, len(d.m))
	for k, v := range d.m { // fine: map-to-map copy is order-insensitive
		m[k] = v
	}
	return &Dirty{m: m}
}

// Key feeds map iteration order straight into the encoding.
func (d *Dirty) Key() string {
	var b strings.Builder
	for k, v := range d.m {
		b.WriteString(k + "=" + strconv.FormatInt(v, 10)) // violation: unsorted
	}
	return b.String()
}

// Clean is a correct implementation; nothing in it is flagged.
type Clean struct {
	m map[string]int64
}

// Apply mutates only the receiver.
func (c *Clean) Apply(op seqspec.Op) int64 {
	old := c.m[op.Kind]
	c.m[op.Kind] = op.Arg(0)
	return old
}

// Clone deep-copies.
func (c *Clean) Clone() seqspec.State {
	m := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		m[k] = v
	}
	return &Clean{m: m}
}

// Key collects, sorts, then encodes: the canonical pattern.
func (c *Clean) Key() string {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k) // fine: sorted below
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + strconv.FormatInt(c.m[k], 10))
	}
	return b.String()
}
