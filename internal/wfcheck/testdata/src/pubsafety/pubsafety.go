// Package pubsafety exercises the publication release/acquire check: a
// payload field written plainly and published by an atomic store must not
// be read without the acquiring load.
package pubsafety

import "sync/atomic"

type box struct {
	payload int
	extra   int
	ready   atomic.Bool
}

// Publish is the release side: fill the payload, then store the flag.
func Publish(b *box, v int) {
	b.payload = v
	b.extra = v * 2
	b.ready.Store(true)
}

// GoodReader acquires before touching the payload.
func GoodReader(b *box) int {
	if !b.ready.Load() {
		return 0
	}
	return b.payload
}

// BadReader reads the payload with no acquiring load: the release edge
// from Publish never reaches it.
func BadReader(b *box) int {
	return b.payload + b.extra
}
