// Package monotone exercises the non-decreasing register pass: a field
// annotated //wf:monotone may only move forward, and every mutation must
// carry one of the provable shapes — a Store dominated by a >=-Load guard,
// an Add of a non-negative constant, or a CompareAndSwap dominated by a
// new >= old proof. The fixture covers each accepted shape (including the
// early-exit negation form the tree's GC uses), each rejected one
// (unguarded Store, negative Add, Swap, plain assignment, address escape),
// and a waived store.
package monotone

import "sync/atomic"

type marks struct {
	//wf:monotone
	floor atomic.Int64
	//wf:monotone
	epoch atomic.Int64
	//wf:monotone
	mark atomic.Int64
}

// raiseGuarded proves the store with an enclosing if guard.
func (m *marks) raiseGuarded(v int64) {
	if v >= m.floor.Load() {
		m.floor.Store(v)
	}
}

// raiseEarlyExit proves the store with a preceding early-exit negation.
func (m *marks) raiseEarlyExit(v int64) {
	if v < m.floor.Load() {
		return
	}
	m.floor.Store(v)
}

// bump steps by a non-negative constant.
func (m *marks) bump() {
	m.epoch.Add(1)
}

// casGuarded proves the swap with a new > old dominator.
func (m *marks) casGuarded(v int64) {
	old := m.mark.Load()
	if v > old {
		m.mark.CompareAndSwap(old, v)
	}
}

// storeUnguarded has no dominating proof.
func (m *marks) storeUnguarded(v int64) {
	m.floor.Store(v)
}

// addNegative steps backward.
func (m *marks) addNegative() {
	m.epoch.Add(-1)
}

// swapHidden uses Swap, which proves nothing about direction.
func (m *marks) swapHidden(v int64) {
	m.mark.Swap(v)
}

// casUnguarded swaps without a new >= old dominator.
func (m *marks) casUnguarded(old, v int64) {
	m.mark.CompareAndSwap(old, v)
}

// escape moves mutations out of the analyzer's sight.
func (m *marks) escape() *atomic.Int64 {
	return &m.floor
}

// waived is a justified exception with the reason at the site.
func (m *marks) waived(v int64) {
	//wf:waiver monotone the caller serializes raises during single-threaded recovery
	m.floor.Store(v)
}
