// Package channels exercises the channel-operation rules.
package channels

//wf:waitfree
func Send(ch chan int, v int) {
	ch <- v // violation: bare send can block on a slow receiver
}

//wf:waitfree
func Recv(ch chan int) int {
	return <-ch // violation: bare receive blocks until someone sends
}

//wf:waitfree
func Drain(ch chan int) int {
	sum := 0
	for v := range ch { // violation: ranging over a channel blocks
		sum += v
	}
	return sum
}

//wf:waitfree
func NoDefault(a, b chan int) int {
	select { // violation: no default case, blocks until a peer communicates
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//wf:waitfree
func TrySend(ch chan int, v int) bool {
	select { // fine: the default case makes this a non-blocking probe
	case ch <- v:
		return true
	default:
		return false
	}
}

//wf:waitfree
func TryRecv(ch chan int) (int, bool) {
	select { // fine
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
