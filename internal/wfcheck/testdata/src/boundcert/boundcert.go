// Package boundcert exercises the wf:bounded certification engine: loops
// the engine proves, loops it merely trusts, and claims it refutes.
package boundcert

// Verified class 1: range over finite data.
func SumRange(xs []int) int {
	total := 0
	//wf:bounded one iteration per element
	for _, x := range xs {
		total += x
	}
	return total
}

// Verified class 2: counted loop with a guaranteed step toward a stable
// bound.
func Counted(n int) int {
	total := 0
	//wf:bounded n iterations
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Verified class 3: condition-less loop opening with a monotone counter
// step and a threshold exit (the assignment-protocol scan shape).
func Monotone(v []int64, n int) bool {
	//wf:bounded v[0] strictly increases and the loop exits at n
	for {
		v[0]++
		if int(v[0]) >= n {
			return false
		}
		if v[int(v[0])] != 0 {
			return true
		}
	}
}

// Trusted: the step is conditional, so the engine cannot prove the bound
// and accepts the stated argument.
func ConditionalStep(n int, skip func(int) bool) int {
	i := 0
	//wf:bounded at most n iterations; skip never stalls i forever by assumption
	for i < n {
		if !skip(i) {
			i++
		}
	}
	return i
}

// Contradicted: the loop body raises its own bound, refuting the claim.
func MovingGoal(n int) int {
	total := 0
	//wf:bounded n iterations despite the moving goal
	for i := 0; i < n; i++ {
		n++
		total++
	}
	return total
}

// Lockfree rows come from acknowledged retry loops; the progress analyzer
// audits the shape, boundcert only records the admission.
func Acknowledge(done func() bool) {
	//wf:lockfree fixture: exercised by the bounds report only
	for {
		if done() {
			return
		}
	}
}

// Stray holds a loop-line directive adjacent to no loop; the attachment
// check must flag it instead of silently dropping the claim.
func Stray() int {
	//wf:bounded this directive attaches to no loop
	x := 0
	return x
}
