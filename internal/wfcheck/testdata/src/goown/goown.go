// Package goown exercises the goroutine-ownership pass: every go statement
// needs an //wf:owns <mechanism> shutdown edge, and the declared mechanism
// must be reachable from the goroutine — in the call's arguments or
// literal, or in the body of the spawned in-package function. The fixture
// covers the accepted shapes (mechanism in the literal, in the callee's
// body, handed as an argument), an unowned goroutine, a declared mechanism
// the goroutine never reaches, a floating owns mark, and a waived spawn.
package goown

type worker struct {
	quit chan struct{}
	jobs chan int
}

// drain runs until the jobs channel is closed.
func (w *worker) drain() {
	for range w.jobs {
	}
}

// process runs until its channel argument is closed.
func process(ch chan int) {
	for range ch {
	}
}

// ownedLiteral declares the quit channel the literal blocks on.
func (w *worker) ownedLiteral() {
	//wf:owns w.quit
	go func() {
		<-w.quit
	}()
}

// ownedCallee declares the channel the spawned method's body drains.
func (w *worker) ownedCallee() {
	//wf:owns w.jobs closing jobs stops the drain
	go w.drain()
}

// ownedArg hands the mechanism to the goroutine as an argument.
func (w *worker) ownedArg() {
	//wf:owns w.jobs
	go process(w.jobs)
}

// unowned spawns with no declared shutdown edge.
func (w *worker) unowned() {
	go w.drain()
}

// dangling declares a mechanism the goroutine never reaches.
func (w *worker) dangling() {
	//wf:owns w.quit
	go w.drain()
}

// floating carries an owns mark that attaches to no go statement.
func (w *worker) floating() {
	//wf:owns w.quit
	close(w.quit)
}

// waived states the reason a process-lifetime goroutine has no edge.
func (w *worker) waived() {
	//wf:waiver goown process-lifetime pump, dies with the process
	go w.drain()
}
