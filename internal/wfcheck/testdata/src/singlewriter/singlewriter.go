// Package singlewriter exercises the single-writer register discipline: a
// field annotated //wf:singlewriter <owner> is a per-process slot array
// whose element i only process i may store, and every element write must
// index by an identifier named exactly the annotated owner. The fixture
// covers the accepted shapes (owner-indexed stores, direct and through an
// alias; reads; whole-field replacement) and each rejected one (foreign
// expression, foreign name, aliased foreign slot), plus a waived store.
package singlewriter

import "sync/atomic"

type slot struct {
	v atomic.Int64
	n int64
}

type table struct {
	//wf:singlewriter pid
	seqs []atomic.Int64
	//wf:singlewriter pid
	slots []slot
}

// ok stores only through the owner index, directly and through an alias.
func (t *table) ok(pid int, v int64) {
	t.seqs[pid].Store(v)
	t.slots[pid].n = v
	s := &t.slots[pid]
	s.v.Add(1)
}

// read scans every slot: reads are free.
func (t *table) read() int64 {
	var total int64
	for i := range t.seqs {
		total += t.seqs[i].Load()
	}
	return total
}

// rebuild replaces the slice header — construction, not a slot write.
func (t *table) rebuild(n int) {
	t.seqs = make([]atomic.Int64, n)
}

// badExpr stores through a computed index: not the bare owner identifier.
func (t *table) badExpr(pid int, v int64) {
	t.seqs[pid+1].Store(v)
}

// badName stores through an identifier that is not the annotated owner.
func (t *table) badName(i int, v int64) {
	t.slots[i].n = v
}

// badAlias stores through an alias of a foreign slot.
func (t *table) badAlias(j int) {
	s := &t.slots[j].v
	s.Store(9)
}

// waived is a justified exception: a constant-index store with a reason.
func (t *table) waived(k int64) {
	//wf:waiver singlewriter slot 0 is the coordinator's own slot, fixed at setup
	t.seqs[0].Store(k)
}
