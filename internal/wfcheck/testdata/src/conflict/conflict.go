// Package conflict exercises malformed-annotation reporting.
package conflict

//wf:waitfree
//wf:blocking claims both at once
func Both() {} // error: conflicting directives on one declaration

//wf:blocking
func NoReason() {} // error: wf:blocking requires a reason

//wf:bounded
func NoBound() {} // error: wf:bounded requires a stated bound

//wf:sometimes fast
func Unknown() {} // error: unknown directive verb

// wf:waitfree — a space after the slashes makes this prose, not a directive.
func Prose() {}
