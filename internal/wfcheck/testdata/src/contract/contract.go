// Package contract exercises interface contract directives: an annotated
// interface method settles the dispatch site on the contract's terms,
// while an unannotated one fans out to every in-module implementation.
package contract

import "sync"

// Prim is the fixture interface: one trusted contract, one blocking
// contract, one method left to fan-out.
type Prim interface {
	// Gated is advertised as a primitive step; dispatch sites trust it.
	//
	//wf:bounded contract: one simulated primitive step
	Gated() int

	// Stall is advertised as blocking; dispatch sites are flagged.
	//
	//wf:blocking contract: waits for a peer by design
	Stall() int

	// Op carries no contract, so a dispatch reaches every implementation.
	Op() int
}

// SlowImpl implements Prim with honestly annotated blocking bodies.
type SlowImpl struct{ mu sync.Mutex }

// Gated implements the trusted contract with a gate, like the simulated
// primitives do.
//
//wf:bounded one gated step (fixture)
func (s *SlowImpl) Gated() int { s.mu.Lock(); defer s.mu.Unlock(); return 1 }

// Stall implements the blocking contract.
//
//wf:blocking waits on the fixture mutex
func (s *SlowImpl) Stall() int { s.mu.Lock(); defer s.mu.Unlock(); return 2 }

// Op blocks too; only the fan-out can discover that.
//
//wf:blocking waits on the fixture mutex
func (s *SlowImpl) Op() int { s.mu.Lock(); defer s.mu.Unlock(); return 3 }

// Drive dispatches through the interface from a wait-free context: Gated
// passes (trusted contract), Stall is flagged by its contract, Op is
// flagged by fan-out.
//
//wf:waitfree
func Drive(p Prim) int {
	return p.Gated() + p.Stall() + p.Op()
}
