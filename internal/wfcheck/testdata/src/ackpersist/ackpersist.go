// Package ackpersist exercises the persist-before-acknowledge pass: every
// //wf:ack (client-visible acknowledgement) must be dominated by a
// completed //wf:persist statement. The fixture covers the accepted shapes
// — batch persist before an ack loop, persist and ack as siblings in one
// branch, persist in an if-init dominating the acks in its body — and the
// rejected ones: ack before persist, ack with no persist at all, persist on
// only one branch of a join, a persist nothing acknowledges, and a mark
// attached to no statement.
package ackpersist

type res struct{ v int }

type svc struct {
	log []int
}

func (s *svc) persist(v int) error {
	s.log = append(s.log, v)
	return nil
}

// applyGood persists the whole batch, then acknowledges each entry.
func (s *svc) applyGood(batch []int, resp chan<- res) {
	//wf:persist group commit for the whole batch
	err := s.persist(len(batch))
	if err != nil {
		return
	}
	for _, v := range batch {
		resp <- res{v: v} //wf:ack
	}
}

// replyGood persists and acknowledges as siblings on the durable branch;
// the read path answers unmarked.
func (s *svc) replyGood(kind string, v int, resp chan<- res) {
	if kind == "put" {
		//wf:persist
		err := s.persist(v)
		if err != nil {
			return
		}
		resp <- res{v: v} //wf:ack durable path
	} else {
		resp <- res{v: v}
	}
}

// initGood persists in the if-init; the init has completed before the ack
// in the body runs.
func (s *svc) initGood(v int, resp chan<- res) {
	//wf:persist
	if err := s.persist(v); err == nil {
		resp <- res{v: v} //wf:ack
	}
}

// ackFirst acknowledges before the persist completes.
func (s *svc) ackFirst(v int, resp chan<- res) {
	resp <- res{v: v} //wf:ack
	//wf:persist too late
	s.persist(v)
}

// ackNoPersist acknowledges with no durability anywhere in the function.
func (s *svc) ackNoPersist(v int, resp chan<- res) {
	resp <- res{v: v} //wf:ack
}

// ackBranchedPersist persists on one branch but acknowledges after the
// join, so the other path acknowledges nothing durable.
func (s *svc) ackBranchedPersist(kind string, v int, resp chan<- res) {
	if kind == "put" {
		//wf:persist only the put path persists
		s.persist(v)
	}
	resp <- res{v: v} //wf:ack
}

// persistNoAck claims durability that no acknowledgement consumes.
func (s *svc) persistNoAck(v int) {
	//wf:persist
	s.persist(v)
}

// floating carries a mark that attaches to no statement.
func (s *svc) floating(v int) {
	s.persist(v)
}

//wf:ack stranded between declarations
