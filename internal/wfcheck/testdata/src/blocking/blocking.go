// Package blocking exercises the blocked-call and call-graph rules.
package blocking

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int64
}

//wf:waitfree
func (c *counter) Inc() {
	c.mu.Lock() // violation: Mutex.Lock in a waitfree function
	c.n++
	c.mu.Unlock()
}

//wf:waitfree
func WaitAll(wg *sync.WaitGroup) {
	wg.Wait() // violation: WaitGroup.Wait
}

//wf:waitfree
func Nap() {
	time.Sleep(time.Millisecond) // violation: unconditional stall
}

// helper is unannotated: reached from a waitfree entry it is scanned, and
// its findings name the entry that reached it.
func helper(mu *sync.RWMutex) {
	mu.RLock() // violation, attributed to ReadPath
	mu.RUnlock()
}

//wf:waitfree
func ReadPath(mu *sync.RWMutex) {
	helper(mu)
}

//wf:blocking sleeps on purpose, this is the fixture's slow path
func slowPath() {
	time.Sleep(time.Second)
}

//wf:bounded the body is one trusted constant-time step
func gatedStep(mu *sync.Mutex) {
	mu.Lock() // not a violation: wf:bounded bodies are trusted
	mu.Unlock()
}

//wf:waitfree
func Mixed(mu *sync.Mutex) {
	slowPath()    // violation: calls a wf:blocking function
	gatedStep(mu) // fine: wf:bounded callee is trusted
}
