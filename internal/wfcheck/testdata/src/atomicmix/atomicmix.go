// Package atomicmix exercises the mixed atomic/plain field-access rule.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64 // accessed both atomically and plainly: flagged
	misses int64 // accessed only plainly: fine
}

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
	s.misses++
}

func (s *stats) snapshot() (int64, int64) {
	return s.hits, s.misses // violation on hits: plain read of an atomic field
}

type modern struct {
	n atomic.Int64
}

func (m *modern) bump() int64 {
	return m.n.Add(1) // fine: atomic.Int64 cannot be accessed plainly
}
