// Package loops exercises the loop-shape rules.
package loops

import (
	"runtime"
	"sync/atomic"
)

//wf:waitfree
func Spin(flag *atomic.Bool) {
	for !flag.Load() { // violation: spin loop yielding to other processes
		runtime.Gosched()
	}
}

//wf:waitfree
func Forever(flag *atomic.Bool) {
	for { // violation: no exit condition
		if flag.Load() {
			return
		}
	}
}

//wf:waitfree
func Justified(flag *atomic.Bool) int {
	n := 0
	//wf:bounded the fixture promises at most one other process raises the flag
	for !flag.Load() {
		n++
		runtime.Gosched()
	}
	return n
}

//wf:waitfree
func Scan(xs []int64) int64 {
	var sum int64
	for i := 0; i < len(xs); i++ { // fine: locally bounded three-clause loop
		sum += xs[i]
	}
	for _, x := range xs { // fine: range over data
		sum += x
	}
	return sum
}
