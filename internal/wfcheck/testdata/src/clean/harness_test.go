// This file would be a violation factory if the loader read _test.go files:
// the package claims wf:waitfree and the harness blocks freely. LoadDir
// skips it, so the clean fixture stays clean.
package clean

import (
	"sync"
	"testing"
)

func TestHarnessMayBlock(t *testing.T) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		mu.Lock()
		mu.Unlock()
		wg.Done()
	}()
	wg.Wait()
}
