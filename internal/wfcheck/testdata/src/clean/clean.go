// Package clean is fully annotated and violation-free.
//
//wf:waitfree
package clean

import "sync/atomic"

// Counter is a wait-free counter.
type Counter struct {
	n atomic.Int64
}

// Inc is one fetch-and-add.
func (c *Counter) Inc() int64 { return c.n.Add(1) }

// Load is one read.
func (c *Counter) Load() int64 { return c.n.Load() }

// Sum scans a bounded slice.
func Sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
