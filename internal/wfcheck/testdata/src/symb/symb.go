// Package symb is the caller side of the symbolic-composition fixture: its
// exported operation runs k rounds of the inner package's n-step scan, so
// the certified bound must multiply parameters declared in two different
// packages — O(k·n), composed through the whole-program call graph.
package symb

import "waitfree/internal/wfcheck/testdata/src/symb/inner"

// Front polls an inner scanner a configured number of rounds.
type Front struct {
	//wf:param k
	rounds int
	sc     *inner.Scanner
}

// New builds a front end polling rounds times over an n-process scanner.
func New(rounds, n int) *Front {
	return &Front{rounds: rounds, sc: inner.NewScanner(n)}
}

// Scanner exposes the inner scanner, pulling it into the certified surface.
func (f *Front) Scanner() *inner.Scanner { return f.sc }

// Poll runs one scan per configured round.
func (f *Front) Poll() int64 {
	var total int64
	for i := 0; i < f.rounds; i++ {
		total += f.sc.Scan()
	}
	return total
}
