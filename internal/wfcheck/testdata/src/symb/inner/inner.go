// Package inner is the callee side of the symbolic-composition fixture: a
// scanner whose step bound is the parameter n, declared on its own register
// array. The caller package composes this bound across the import edge.
package inner

import "sync/atomic"

// Scanner reads a per-process register array.
type Scanner struct {
	//wf:len n
	regs []atomic.Int64
}

// NewScanner sizes the register array for n processes.
func NewScanner(n int) *Scanner {
	return &Scanner{regs: make([]atomic.Int64, n)}
}

// Scan reads every register: one load per process.
func (s *Scanner) Scan() int64 {
	var total int64
	for i := range s.regs {
		total += s.regs[i].Load()
	}
	return total
}
