package wfcheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one file and returns its annotations plus the function
// declarations by name.
func parseSrc(t *testing.T, src string) (*Annotations, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	funcs := make(map[string]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			funcs[fd.Name.Name] = fd
		}
	}
	return parseAnnotations(fset, []*ast.File{f}), funcs
}

func TestPackageDirectiveIsTheDefault(t *testing.T) {
	a, funcs := parseSrc(t, `
// Package p does things.
//
//wf:waitfree
package p

func Plain() {}

//wf:blocking waits for the fixture's peer
func Slow() {}

type T struct{}

//wf:bounded one trusted step
func (T) Gate() {}

func (T) M() {}
`)
	if len(a.Errors) != 0 {
		t.Fatalf("unexpected annotation errors: %v", a.Errors)
	}
	if a.Pkg == nil || a.Pkg.Mode != ModeWaitFree {
		t.Fatalf("package directive = %+v, want wf:waitfree", a.Pkg)
	}
	for name, want := range map[string]Mode{
		"Plain": ModeWaitFree, // inherits the package default
		"Slow":  ModeBlocking, // own directive wins over the package's
		"Gate":  ModeBounded,  // methods are annotated like functions
		"M":     ModeWaitFree, // methods inherit the package default too
	} {
		if got := a.Effective(funcs[name]).Mode; got != want {
			t.Errorf("Effective(%s) = %v, want %v", name, got, want)
		}
	}
	if arg := a.Effective(funcs["Slow"]).Arg; arg != "waits for the fixture's peer" {
		t.Errorf("blocking reason = %q", arg)
	}
}

func TestConflictingDirectivesError(t *testing.T) {
	a, _ := parseSrc(t, `
package p

//wf:waitfree
//wf:blocking also this
func Both() {}
`)
	if len(a.Errors) != 1 || !strings.Contains(a.Errors[0].Message, "conflicting wf:waitfree and wf:blocking") {
		t.Fatalf("errors = %v, want one conflicting-directives error", a.Errors)
	}
}

func TestConflictingPackageDirectivesError(t *testing.T) {
	a, _ := parseSrc(t, `
// Package p claims everything at once.
//
//wf:waitfree
//wf:blocking no it does not
package p
`)
	if len(a.Errors) != 1 || !strings.Contains(a.Errors[0].Message, "package p: conflicting") {
		t.Fatalf("errors = %v, want one package-conflict error", a.Errors)
	}
}

func TestRepeatedEqualDirectivesAreTolerated(t *testing.T) {
	a, funcs := parseSrc(t, `
package p

//wf:waitfree
//wf:waitfree
func Twice() {}
`)
	if len(a.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", a.Errors)
	}
	if got := a.Effective(funcs["Twice"]).Mode; got != ModeWaitFree {
		t.Errorf("Effective(Twice) = %v", got)
	}
}

func TestMalformedDirectives(t *testing.T) {
	a, _ := parseSrc(t, `
package p

//wf:blocking
func NoReason() {}

//wf:bounded
func NoBound() {}

//wf:turbo yes
func Unknown() {}

// wf:waitfree is prose because of the space, never a directive.
func Prose() {}
`)
	var msgs []string
	for _, e := range a.Errors {
		msgs = append(msgs, e.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"wf:blocking requires a reason",
		"wf:bounded requires a stated bound",
		"unknown directive wf:turbo",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("errors missing %q in:\n%s", want, joined)
		}
	}
	if len(a.Errors) != 3 {
		t.Errorf("got %d errors, want 3: %v", len(a.Errors), msgs)
	}
}

func TestLockFreeDirective(t *testing.T) {
	a, funcs := parseSrc(t, `
package p

//wf:lockfree CAS retry; some process always completes
func Retry() {}

//wf:lockfree
func NoReason() {}
`)
	if got := a.Effective(funcs["Retry"]); got.Mode != ModeLockFree || !strings.Contains(got.Arg, "CAS retry") {
		t.Errorf("Effective(Retry) = %+v, want wf:lockfree with its reason", got)
	}
	if len(a.Errors) != 1 || !strings.Contains(a.Errors[0].Message, "wf:lockfree requires a reason") {
		t.Errorf("errors = %v, want one missing-reason error", a.Errors)
	}
}

func TestInterfaceMethodContract(t *testing.T) {
	a, _ := parseSrc(t, `
package p

type Prim interface {
	// Op does the thing.
	//
	//wf:bounded contract: one primitive step
	Op() int

	Plain() int
}
`)
	if len(a.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", a.Errors)
	}
	if len(a.Methods) != 1 {
		t.Fatalf("Methods has %d entries, want 1", len(a.Methods))
	}
	for name, d := range a.Methods {
		if name.Name != "Op" || d.Mode != ModeBounded || d.Arg != "contract: one primitive step" {
			t.Errorf("Methods[%s] = %+v, want bounded contract on Op", name.Name, d)
		}
	}
	// The contract must not leak into the loop-directive index.
	if dirs := a.loopDirectives(); len(dirs) != 0 {
		t.Errorf("interface contract recorded as loop directive: %v", dirs)
	}
}

func TestLoopBoundedPlacement(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

func f() {
	//wf:bounded directly above: suppressed
	for {
	}
	for { //wf:bounded trailing on the loop line: suppressed
	}

	//wf:bounded a blank line below breaks adjacency

	for {
	}
}
`
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := parseAnnotations(fset, []*ast.File{f})
	var loops []*ast.ForStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if l, ok := n.(*ast.ForStmt); ok {
			loops = append(loops, l)
		}
		return true
	})
	if len(loops) != 3 {
		t.Fatalf("found %d loops, want 3", len(loops))
	}
	for i, want := range []bool{true, true, false} {
		if got := a.LoopBounded(loops[i].Pos()); got != want {
			t.Errorf("LoopBounded(loop %d) = %v, want %v", i, got, want)
		}
	}
}
