package wfcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// specMethods are the methods of seqspec.State and seqspec.Object whose
// determinism the universal construction relies on: replays run Apply over
// logged operations on every process independently, so any nondeterminism
// forks the replicas' states silently.
var stateMethods = map[string]bool{"Apply": true, "Clone": true, "Key": true}
var objectMethods = map[string]bool{"Init": true, "ReadOnly": true, "Name": true}

// nondetPackages are packages whose calls make a transition function
// nondeterministic across replays.
var nondetPackages = map[string]string{
	"time":         "reads the clock",
	"math/rand":    "draws randomness",
	"math/rand/v2": "draws randomness",
}

// analyzeSpecPurity finds, in any package that defines implementations of
// seqspec.State or seqspec.Object (the seqspec package itself included),
// the transition methods of those implementations, and flags constructs
// that break replay determinism: clock and randomness calls, goroutine
// launches, channel operations, package-level state mutation, and map
// iteration feeding output without a subsequent sort.
func analyzeSpecPurity(p *Package) []Diagnostic {
	stateIface, objectIface := seqspecInterfaces(p)
	if stateIface == nil && objectIface == nil {
		return nil
	}
	s := &specPass{
		p:       p,
		decls:   make(map[types.Object]*ast.FuncDecl),
		visited: make(map[*ast.FuncDecl]bool),
	}
	var roots []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				s.decls[obj] = fd
			}
			if fd.Recv == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			ptr := recv
			if _, ok := recv.(*types.Pointer); !ok {
				ptr = types.NewPointer(recv)
			}
			isState := stateIface != nil && types.Implements(ptr, stateIface)
			isObject := objectIface != nil && types.Implements(ptr, objectIface)
			if (isState && stateMethods[fd.Name.Name]) || (isObject && objectMethods[fd.Name.Name]) {
				roots = append(roots, fd)
			}
		}
	}
	for _, fd := range roots {
		s.visit(fd)
	}
	return s.diags
}

// seqspecInterfaces locates the State and Object interfaces of a seqspec
// package among this package and its direct imports; nil, nil when absent
// (then nothing here can be a spec implementation).
func seqspecInterfaces(p *Package) (state, object *types.Interface) {
	lookup := func(tp *types.Package) {
		if tp == nil || (tp.Name() != "seqspec" && !strings.HasSuffix(tp.Path(), "/seqspec")) {
			return
		}
		if obj, ok := tp.Scope().Lookup("State").(*types.TypeName); ok && state == nil {
			state, _ = obj.Type().Underlying().(*types.Interface)
		}
		if obj, ok := tp.Scope().Lookup("Object").(*types.TypeName); ok && object == nil {
			object, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	lookup(p.TPkg)
	if p.TPkg != nil {
		for _, imp := range p.TPkg.Imports() {
			lookup(imp)
		}
	}
	return state, object
}

type specPass struct {
	p       *Package
	decls   map[types.Object]*ast.FuncDecl
	visited map[*ast.FuncDecl]bool
	diags   []Diagnostic
}

// visit scans one transition function and, transitively, the same-package
// helpers it calls.
func (s *specPass) visit(fd *ast.FuncDecl) {
	if s.visited[fd] {
		return
	}
	s.visited[fd] = true

	// Positions of sort calls, for suppressing collect-then-sort map ranges.
	var sortCalls []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(s.p, call); f != nil && f.Pkg() != nil {
			if path := f.Pkg().Path(); path == "sort" || path == "slices" {
				sortCalls = append(sortCalls, call.Pos())
			}
		}
		return true
	})
	sortedAfter := func(pos token.Pos) bool {
		for _, sp := range sortCalls {
			if sp > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.report(fd, n.Pos(), "launches a goroutine: replays must be single-threaded and repeatable")
		case *ast.SendStmt:
			s.report(fd, n.Pos(), "channel send: transition functions must not communicate")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.report(fd, n.Pos(), "channel receive: transition functions must not communicate")
			}
		case *ast.SelectStmt:
			s.report(fd, n.Pos(), "select: transition functions must not communicate")
		case *ast.CallExpr:
			if f := calleeFunc(s.p, n); f != nil {
				if f.Pkg() != nil {
					path := f.Pkg().Path()
					// Methods of time values (UnixNano, Sub, ...) are pure
					// conversions; the clock reads are time's package-level
					// functions. rand methods all draw from the generator.
					recv := f.Type().(*types.Signature).Recv()
					if why, ok := nondetPackages[path]; ok && (recv == nil || path != "time") {
						s.report(fd, n.Pos(), fmt.Sprintf("calls %s: %s, so replays diverge", f.FullName(), why))
					}
				}
				if target := s.decls[f]; target != nil {
					s.visit(target)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.checkGlobalWrite(fd, lhs)
			}
		case *ast.IncDecStmt:
			s.checkGlobalWrite(fd, n.X)
		case *ast.RangeStmt:
			s.checkMapRange(fd, n, sortedAfter)
		}
		return true
	})
}

// checkGlobalWrite flags assignments whose target resolves to a
// package-level variable.
func (s *specPass) checkGlobalWrite(fd *ast.FuncDecl, lhs ast.Expr) {
	var obj types.Object
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj = s.p.Info.Uses[e]
		if obj == nil {
			obj = s.p.Info.Defs[e]
		}
	case *ast.SelectorExpr:
		if fieldOf(s.p, e) != nil {
			return // field of some value; receiver mutation is the point
		}
		obj = s.p.Info.Uses[e.Sel]
	default:
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		s.report(fd, lhs.Pos(), fmt.Sprintf("mutates package-level variable %s: state must live in the receiver", v.Name()))
	}
}

// checkMapRange flags map iterations whose body feeds output (append, or
// writer calls) unless the function sorts afterwards: Go randomizes map
// order, so unsorted iteration makes Apply/Key nondeterministic. Pure folds
// (min/max scans, map-to-map copies) are order-insensitive and pass.
func (s *specPass) checkMapRange(fd *ast.FuncDecl, rng *ast.RangeStmt, sortedAfter func(token.Pos) bool) {
	t := s.p.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	sink := token.NoPos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				sink = call.Pos()
			}
		case *ast.SelectorExpr:
			if strings.HasPrefix(fun.Sel.Name, "Write") || strings.HasPrefix(fun.Sel.Name, "Fprint") {
				sink = call.Pos()
			}
		}
		return sink == token.NoPos
	})
	if sink.IsValid() && !sortedAfter(rng.Pos()) {
		s.report(fd, sink,
			"map iteration order feeds output and nothing sorts afterwards: iterate a sorted key slice instead")
	}
}

// report records a purity finding against the transition method fd.
func (s *specPass) report(fd *ast.FuncDecl, pos token.Pos, msg string) {
	s.diags = append(s.diags, Diagnostic{
		Pos: s.p.Fset.Position(pos), Analyzer: "specpure",
		Message: fmt.Sprintf("%s (in spec function %s)", msg, fd.Name.Name),
	})
}
