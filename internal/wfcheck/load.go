package wfcheck

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked, annotation-parsed package.
type Package struct {
	Dir    string // absolute directory
	Path   string // import path within the module
	Fset   *token.FileSet
	Files  []*ast.File
	TPkg   *types.Package
	Info   *types.Info
	Annots *Annotations
	// TypeErrors collects type-check problems; analysis proceeds past them
	// (the build step has already vouched for the tree) but resolution may
	// be incomplete where they point.
	TypeErrors []error
}

// Loader loads module packages from source with the standard library
// resolved through the compiler's source importer — stdlib-only, no go/packages.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	std     types.ImporterFrom
	pkgs    map[string]*Package // by absolute directory
	loading map[string]bool     // import-cycle guard, by directory
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("wfcheck: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  mod,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Packages returns every module package this loader has loaded so far —
// the directly requested ones and everything pulled in transitively through
// module-internal imports — sorted by import path for deterministic
// whole-program traversal.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	//wf:bounded the path loses one component per iteration and the walk stops at the filesystem root
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("wfcheck: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("wfcheck: no module line in %s", gomod)
}

// ErrNoGoFiles marks a directory with no non-test Go files.
var ErrNoGoFiles = fmt.Errorf("wfcheck: no non-test Go files")

// LoadDir parses and type-checks the package in dir. Test files (_test.go)
// are excluded: the analyzers audit shipped code, and test harnesses may
// block freely.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("wfcheck: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, ErrNoGoFiles
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue // stray file of another package (ignored, like go/build would)
		}
		files = append(files, f)
	}

	p := &Package{
		Dir:    dir,
		Path:   l.importPathFor(dir),
		Fset:   l.Fset,
		Files:  files,
		Annots: parseAnnotations(l.Fset, files),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(p.Path, l.Fset, files, info)
	p.TPkg = tpkg
	p.Info = info
	l.pkgs[dir] = p
	return p, nil
}

// importPathFor maps an absolute directory to its module import path; for
// directories outside the module tree (testdata fixtures loaded directly)
// the directory base is used.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// their source directories through this loader, everything else (the
// standard library) through the compiler's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if sub, ok := l.moduleDir(path); ok {
		p, err := l.LoadDir(sub)
		if err != nil {
			return nil, err
		}
		if p.TPkg == nil {
			return nil, fmt.Errorf("wfcheck: type-checking %s failed", path)
		}
		return p.TPkg, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}
