package wfcheck

import (
	"go/ast"
	"go/types"
)

// goown turns goroutine-leak hygiene into a finding: every go statement in
// an audited package must declare its shutdown edge with //wf:owns
// <mechanism> — the channel, listener, connection or context whose
// close/cancel stops the goroutine — and the declared mechanism must
// actually be reachable from the goroutine (mentioned in the call's
// arguments or function literal, or in the body of the in-module function
// it spawns). A goroutine nobody can stop is the static shape of the leak
// the server's NumGoroutine hygiene test measures dynamically.
//
// Packages whose package clause carries //wf:blocking are outside the
// service-tier audit (simulation substrates, one-shot commands) and are
// skipped wholesale, matching the blocking analyzer's treatment.

// analyzeGoOwn runs the goown analyzer over one package.
func analyzeGoOwn(prog *Program, p *Package, diags *[]Diagnostic) {
	if p.Annots.Pkg != nil && p.Annots.Pkg.Mode == ModeBlocking {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, isGo := n.(*ast.GoStmt)
				if !isGo {
					return true
				}
				goOwnStmt(prog, p, fd, gs, diags)
				return true
			})
		}
	}
}

// goOwnStmt checks one go statement's ownership declaration.
func goOwnStmt(prog *Program, p *Package, fd *ast.FuncDecl, gs *ast.GoStmt, diags *[]Diagnostic) {
	mark := p.Annots.ConsumeMark(p.Fset.Position(gs.Pos()), "owns")
	if mark == nil {
		if d := disciplineDiag(p, gs.Pos(), "goown",
			"go statement in %s has no //wf:owns shutdown edge: nothing can stop this goroutine", fd.Name.Name); d != nil {
			*diags = append(*diags, *d)
		}
		return
	}
	if exprContains(gs.Call, mark.Mech) {
		return
	}
	if fn := calleeFunc(p, gs.Call); fn != nil {
		if pf := prog.FuncOf(fn); pf != nil && pf.Decl.Body != nil && nodeMentions(pf.Decl.Body, mark.Mech) {
			return
		}
	}
	if d := disciplineDiag(p, gs.Pos(), "goown",
		"//wf:owns %s on the go statement in %s, but the goroutine never reaches that mechanism", mark.Mech, fd.Name.Name); d != nil {
		*diags = append(*diags, *d)
	}
}

// nodeMentions reports whether any expression inside n renders to the
// needle string — exprContains generalized to statement bodies.
func nodeMentions(n ast.Node, needle string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if e, isExpr := m.(ast.Expr); isExpr && types.ExprString(ast.Unparen(e)) == needle {
			found = true
		}
		return !found
	})
	return found
}
