package wfcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// boundcert certifies wf:bounded directives instead of taking them on
// faith. PR 2 trusted every manual bound; this pass statically verifies the
// loop shapes it can decide — constant trip counts, ranges over finite
// data, counted loops against a stable bound, and monotone counters with a
// threshold exit — and reports every directive as verified, trusted, or
// contradicted. A contradicted bound (the loop's condition mutates its own
// bound, or the "bounded" loop ranges over a channel) is an error: the
// paper's wait-freedom bound N(n) cannot rest on a bound the loop itself
// moves. wf:lockfree loop acknowledgments are surfaced alongside, so the
// bounds report shows every place the tree settles for lock-freedom.

// BoundStatus is boundcert's verdict on one directive.
type BoundStatus string

// Verdicts.
const (
	BoundVerified     BoundStatus = "verified"     // the engine proves the stated bound class
	BoundTrusted      BoundStatus = "trusted"      // manual argument accepted, not machine-checked
	BoundContradicted BoundStatus = "contradicted" // the loop's shape refutes the claim (error)
	BoundLockFree     BoundStatus = "lockfree"     // acknowledged lock-free section, not a bound
)

// BoundRecord is one row of the bounds report.
type BoundRecord struct {
	Pos    token.Position
	Pkg    string // import path
	Scope  string // "package", "func F", or "loop in F"
	Status BoundStatus
	Arg    string // the directive's stated bound or reason
	Detail string // why the engine reached the verdict
}

// analyzeBounds certifies every wf:bounded (and wf:lockfree) directive in
// the package: declaration-level directives are trusted boundaries by
// definition; loop-line directives are classified against the provable
// loop shapes. A loop-line directive that attaches to no loop is an error —
// its suppression is silently lost otherwise.
func analyzeBounds(p *Package) ([]BoundRecord, []Diagnostic) {
	var records []BoundRecord
	var diags []Diagnostic

	if d := p.Annots.Pkg; d != nil && d.Mode == ModeBounded {
		records = append(records, BoundRecord{
			Pos: p.Fset.Position(d.Pos), Pkg: p.Path, Scope: "package",
			Status: BoundTrusted, Arg: d.Arg,
			Detail: "declaration-level bound: trusted simulation boundary",
		})
	}

	consumed := make(map[token.Pos]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d := p.Annots.Funcs[fd]; d != nil && d.Mode == ModeBounded {
				records = append(records, BoundRecord{
					Pos: p.Fset.Position(d.Pos), Pkg: p.Path,
					Scope:  "func " + fd.Name.Name,
					Status: BoundTrusted, Arg: d.Arg,
					Detail: "declaration-level bound: trusted simulation boundary",
				})
			}
			if fd.Body == nil {
				continue
			}
			fname := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var pos token.Pos
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					pos = n.Pos()
				default:
					return true
				}
				d := p.Annots.LoopDirective(pos)
				if d == nil {
					return true
				}
				consumed[d.Pos] = true
				rec := BoundRecord{
					Pos: p.Fset.Position(d.Pos), Pkg: p.Path,
					Scope: "loop in " + fname, Arg: d.Arg,
				}
				if d.Mode == ModeLockFree {
					rec.Status = BoundLockFree
					rec.Detail = "acknowledged lock-free retry (progress-checked)"
				} else {
					rec.Status, rec.Detail = classifyLoop(p, n)
				}
				records = append(records, rec)
				if rec.Status == BoundContradicted {
					diags = append(diags, Diagnostic{
						Pos: p.Fset.Position(pos), Analyzer: "boundcert",
						Message: fmt.Sprintf("wf:bounded (%s) is contradicted: %s", d.Arg, rec.Detail),
					})
				}
				return true
			})
		}
	}

	// Loop-line directives that attach to no loop lost their suppression
	// silently — that is an error, not a warning.
	for _, d := range p.Annots.loopDirectives() {
		if !consumed[d.Pos] {
			diags = append(diags, Diagnostic{
				Pos: p.Fset.Position(d.Pos), Analyzer: "boundcert",
				Message: fmt.Sprintf("%s directive attaches to no loop (it must sit directly above the loop or trail on its line)", d.Mode),
			})
		}
	}

	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return records, diags
}

// classifyLoop decides one wf:bounded loop directive. The provable classes
// trade completeness for decidability, like the analyzers themselves.
func classifyLoop(p *Package, n ast.Node) (BoundStatus, string) {
	switch loop := n.(type) {
	case *ast.RangeStmt:
		return classifyRange(p, loop)
	case *ast.ForStmt:
		if loop.Cond == nil {
			return classifyMonotone(p, loop)
		}
		return classifyCounted(p, loop)
	}
	return BoundTrusted, "unclassified loop form"
}

// classifyRange handles `range` loops: iteration over finite data is
// verified (the range expression is evaluated once, so the trip count is
// fixed at entry); channels refute any bound; function iterators and maps
// the body grows stay trusted.
func classifyRange(p *Package, loop *ast.RangeStmt) (BoundStatus, string) {
	t := p.Info.TypeOf(loop.X)
	if t == nil {
		return BoundTrusted, "range expression did not type-check"
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return BoundContradicted, "ranges over a channel: trip count is another process's send count"
	case *types.Signature:
		return BoundTrusted, "range over a function iterator: trip count is the iterator's"
	case *types.Map:
		if writesExpr(p, loop.Body, types.ExprString(loop.X)) {
			return BoundTrusted, "range over a map the body writes: growth during iteration is unspecified"
		}
		return BoundVerified, "range over a map the body does not grow"
	case *types.Array:
		return BoundVerified, fmt.Sprintf("range over [%d]array", u.Len())
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return BoundVerified, fmt.Sprintf("range over *[%d]array", arr.Len())
		}
		return BoundTrusted, "range over a pointer to non-array"
	case *types.Slice, *types.Basic:
		// Slices, strings and go1.22 integer ranges all fix the trip count
		// when the range expression is evaluated.
		return BoundVerified, "range over finite data: trip count fixed at loop entry"
	}
	return BoundTrusted, "unclassified range form"
}

// classifyCounted handles conditioned loops: `for i := a; i OP b; i++`
// (and the cond-only form with the step in the body) verifies when the
// bound side of the comparison is stable and the loop variable moves only
// toward it. A bound the body itself mutates is contradicted.
func classifyCounted(p *Package, loop *ast.ForStmt) (BoundStatus, string) {
	cond, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok {
		return BoundTrusted, "loop condition is not a comparison"
	}
	var iter ast.Expr // the moving side
	var bound ast.Expr
	var up bool // counting up toward the bound
	switch cond.Op {
	case token.LSS, token.LEQ:
		iter, bound, up = cond.X, cond.Y, true
	case token.GTR, token.GEQ:
		iter, bound, up = cond.X, cond.Y, false
	case token.NEQ:
		return BoundTrusted, "!= exit condition: overshoot cannot be excluded statically"
	default:
		return BoundTrusted, "loop condition is not an ordered comparison"
	}
	if status, detail, ok := checkMovingSide(p, loop, iter, bound, up); ok {
		return status, detail
	}
	// The comparison's moving side never moves; maybe the roles are swapped
	// (e.g. `for lo < hi { hi-- }`).
	if status, detail, ok := checkMovingSide(p, loop, bound, iter, !up); ok {
		return status, detail
	}
	return BoundTrusted, "no guaranteed monotone step toward the bound"
}

// checkMovingSide verifies one orientation of a counted loop: iter must
// take a guaranteed strictly-monotone step toward bound every iteration —
// in the post statement, or as a top-level body statement no continue can
// skip — with no other write to it anywhere, and the bound must be stable.
// ok is false when iter has no guaranteed step, so the caller can try the
// swapped orientation.
func checkMovingSide(p *Package, loop *ast.ForStmt, iter, bound ast.Expr, up bool) (BoundStatus, string, bool) {
	iterStr := types.ExprString(ast.Unparen(iter))

	guaranteed := false // a toward-step that runs every iteration
	var stray []ast.Node
	classify := func(n ast.Node, sanctioned bool) {
		toward, isWrite := stepDirection(p, n, iterStr, up)
		if !isWrite {
			return
		}
		if toward && sanctioned {
			guaranteed = true
		} else {
			stray = append(stray, n)
		}
	}
	if loop.Post != nil {
		classify(loop.Post, true)
	}
	// Top-level body statements are guaranteed only if no continue can skip
	// them (continue re-enters the post statement, so post steps are safe).
	bodySanctioned := loop.Post == nil && !containsContinue(loop.Body)
	top := make(map[ast.Node]bool, len(loop.Body.List))
	for _, s := range loop.Body.List {
		top[s] = true
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.IncDecStmt, *ast.AssignStmt:
			classify(n, bodySanctioned && top[n])
		}
		return true
	})
	if !guaranteed {
		return "", "", false
	}
	if len(stray) > 0 {
		return BoundTrusted, fmt.Sprintf("%s is also written outside its guaranteed step", iterStr), true
	}
	if mutated, how := boundMutated(p, loop, bound); mutated {
		return BoundContradicted, how, true
	}
	if stable, why := stableBound(p, loop, bound); !stable {
		return BoundTrusted, why, true
	}
	return BoundVerified, fmt.Sprintf("counted loop: %s steps monotonically to %s", iterStr, types.ExprString(bound)), true
}

// stepDirection classifies one statement's effect on iterStr: isWrite
// reports that it writes it at all; toward reports a strictly-monotone
// constant step in the direction given by up (++/+= c for an increasing
// loop, --/-= c for a decreasing one). Anything else that writes the
// variable — plain assignment, non-constant or wrong-way step — is a write
// that is not toward, which disqualifies verification.
func stepDirection(p *Package, n ast.Node, iterStr string, up bool) (toward, isWrite bool) {
	switch s := n.(type) {
	case *ast.IncDecStmt:
		if types.ExprString(ast.Unparen(s.X)) != iterStr {
			return false, false
		}
		return (s.Tok == token.INC) == up, true
	case *ast.AssignStmt:
		hits := false
		for _, lhs := range s.Lhs {
			if types.ExprString(ast.Unparen(lhs)) == iterStr {
				hits = true
			}
		}
		if !hits {
			return false, false
		}
		if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN || len(s.Lhs) != 1 {
			return false, true // plain or multi assignment: a reset
		}
		tv, ok := p.Info.Types[s.Rhs[0]]
		if !ok || tv.Value == nil {
			return false, true // non-constant step: direction unknown
		}
		sign := constant.Sign(tv.Value)
		if sign == 0 {
			return false, true // += 0 never moves
		}
		adds := (s.Tok == token.ADD_ASSIGN) == (sign > 0)
		return adds == up, true
	}
	return false, false
}

// boundMutated reports whether the loop body writes the bound expression
// itself — the contradiction class: `for i < n { n++ }`, or growing the
// slice measured by a len()/cap() bound.
func boundMutated(p *Package, loop *ast.ForStmt, bound ast.Expr) (bool, string) {
	bound = ast.Unparen(bound)
	target := types.ExprString(bound)
	if call, ok := bound.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(call.Args) == 1 {
			target = types.ExprString(ast.Unparen(call.Args[0]))
		}
	}
	if writesExpr(p, loop.Body, target) {
		return true, fmt.Sprintf("the loop body writes %s, the loop's own bound", target)
	}
	return false, ""
}

// stableBound reports whether the bound expression re-evaluates to the same
// value every iteration, as far as the engine can tell: constants, idents
// and field selections the body does not write, and len/cap of such.
func stableBound(p *Package, loop *ast.ForStmt, bound ast.Expr) (bool, string) {
	bound = ast.Unparen(bound)
	if tv, ok := p.Info.Types[bound]; ok && tv.Value != nil {
		return true, ""
	}
	switch b := bound.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true, "" // boundMutated already checked body writes
	case *ast.CallExpr:
		if id, ok := ast.Unparen(b.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(b.Args) == 1 {
			switch ast.Unparen(b.Args[0]).(type) {
			case *ast.Ident, *ast.SelectorExpr:
				return true, ""
			}
			return false, fmt.Sprintf("bound %s measures a compound expression", types.ExprString(bound))
		}
		return false, fmt.Sprintf("bound %s re-evaluates a call every iteration", types.ExprString(bound))
	}
	return false, fmt.Sprintf("bound %s is outside the stable classes", types.ExprString(bound))
}

// classifyMonotone handles condition-less loops: the verified class is a
// strictly monotone counter with a threshold exit — the body's first
// statement increments (or decrements) a counter, a top-level threshold
// check exits once the counter passes a stable bound, no continue can skip
// the check, and nothing else writes the counter. This is the shape of the
// protocol scan loops (internal/protocols), whose PR 2 bounds were trusted
// prose; the engine now proves them.
func classifyMonotone(p *Package, loop *ast.ForStmt) (BoundStatus, string) {
	if status, detail, ok := classifyWalk(p, loop); ok {
		return status, detail
	}
	stmts := loop.Body.List
	if len(stmts) < 2 {
		return BoundTrusted, "condition-less loop with no counter step"
	}
	inc, ok := stmts[0].(*ast.IncDecStmt)
	if !ok {
		return BoundTrusted, "condition-less loop does not open with a counter step"
	}
	counter := types.ExprString(ast.Unparen(inc.X))
	up := inc.Tok == token.INC

	// Find the top-level threshold exit, with no continue reachable first.
	var threshold *ast.IfStmt
	var bound ast.Expr
	for _, s := range stmts[1:] {
		ifs, isIf := s.(*ast.IfStmt)
		if isIf && ifs.Init == nil && ifs.Else == nil {
			if b, ok := thresholdExit(p, ifs, counter, up); ok {
				threshold, bound = ifs, b
				break
			}
		}
		if containsContinue(s) {
			return BoundTrusted, "a continue can skip the threshold check"
		}
	}
	if threshold == nil {
		return BoundTrusted, fmt.Sprintf("no top-level threshold exit on %s", counter)
	}
	// The counter must have exactly the one step: any other write could
	// reset it below the threshold.
	extra := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if s != inc && types.ExprString(ast.Unparen(s.X)) == counter {
				extra = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if types.ExprString(ast.Unparen(lhs)) == counter {
					extra = true
				}
			}
		}
		return !extra
	})
	if extra {
		return BoundTrusted, fmt.Sprintf("%s is written outside its monotone step", counter)
	}
	if mutated, how := boundMutated(p, loop, bound); mutated {
		return BoundContradicted, how
	}
	if stable, why := stableBound(p, loop, bound); !stable {
		return BoundTrusted, why
	}
	return BoundVerified, fmt.Sprintf("monotone counter: %s steps once per iteration and exits at %s", counter, types.ExprString(bound))
}

// classifyWalk proves the structural-walk class of condition-less loops:
// `for n := start; ; n = n.Rest()` (or `n = n.next`) whose first body
// statement exits on n == nil, where the post statement is the iterator's
// only write and the projection keeps the iterator's type. Every iteration
// either terminates at the nil check — which nothing can skip, it is the
// first statement — or strictly descends one link, so the trip count is the
// chain length at entry plus any links consed below during the walk; on a
// prepend-only structure (the decided log: Cons fixes rest at creation,
// sever only replaces it with nil) descent cannot cycle, which is the shape
// PR 6's gcSwing and the replay walks share. ok=false hands unclassified
// loops back to the monotone-counter class.
func classifyWalk(p *Package, loop *ast.ForStmt) (BoundStatus, string, bool) {
	init, isAssign := loop.Init.(*ast.AssignStmt)
	if !isAssign || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return "", "", false
	}
	iv, isIdent := init.Lhs[0].(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	iter := iv.Name
	post, isPost := loop.Post.(*ast.AssignStmt)
	if !isPost || post.Tok != token.ASSIGN || len(post.Lhs) != 1 || len(post.Rhs) != 1 ||
		types.ExprString(ast.Unparen(post.Lhs[0])) != iter {
		return "", "", false
	}
	if !isSelfProjection(p, post.Rhs[0], iv) {
		return "", "", false
	}
	if len(loop.Body.List) == 0 {
		return "", "", false
	}
	ifs, isIf := loop.Body.List[0].(*ast.IfStmt)
	if !isIf || ifs.Init != nil || ifs.Else != nil || !isNilExit(p, ifs, iter) {
		return "", "", false
	}
	// The post projection must be the iterator's only write: a body reset
	// could re-lift the iterator arbitrarily far up the chain.
	reset := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IncDecStmt:
			if types.ExprString(ast.Unparen(s.X)) == iter {
				reset = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if types.ExprString(ast.Unparen(lhs)) == iter {
					reset = true
				}
			}
		}
		return !reset
	})
	if reset {
		return "", "", false
	}
	return BoundVerified,
		fmt.Sprintf("structural walk: %s descends one link per iteration via %s and nothing skips the nil exit",
			iter, types.ExprString(ast.Unparen(post.Rhs[0]))), true
}

// isSelfProjection reports whether rhs is a projection of the iterator that
// keeps its type — a zero-argument method call `n.Rest()` or a field read
// `n.next` — so each post step moves strictly down the structure.
func isSelfProjection(p *Package, rhs ast.Expr, iter *ast.Ident) bool {
	it := p.Info.TypeOf(iter)
	if it == nil {
		return false
	}
	rhs = ast.Unparen(rhs)
	var sel *ast.SelectorExpr
	switch e := rhs.(type) {
	case *ast.CallExpr:
		if len(e.Args) != 0 {
			return false
		}
		s, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		sel = s
	case *ast.SelectorExpr:
		sel = e
	default:
		return false
	}
	if types.ExprString(ast.Unparen(sel.X)) != iter.Name {
		return false
	}
	rt := p.Info.TypeOf(rhs)
	return rt != nil && types.Identical(rt, it)
}

// isNilExit reports whether ifs is `if iter == nil { ...; break/return }`.
func isNilExit(p *Package, ifs *ast.IfStmt, iter string) bool {
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	isNil := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		return ok && tv.IsNil()
	}
	switch {
	case types.ExprString(x) == iter && isNil(y):
	case types.ExprString(y) == iter && isNil(x):
	default:
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK
	}
	return false
}

// thresholdExit reports whether ifs is `if counter >= bound { exit }` (for
// an increasing counter; <= for a decreasing one), where exit ends in
// return, break, or panic. The counter side may be wrapped in a conversion
// (`int(v[4]) >= n`).
func thresholdExit(p *Package, ifs *ast.IfStmt, counter string, up bool) (ast.Expr, bool) {
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	lhs := unwrapConversion(p, cond.X)
	rhs := unwrapConversion(p, cond.Y)
	var bound ast.Expr
	switch {
	case types.ExprString(lhs) == counter &&
		((up && (cond.Op == token.GEQ || cond.Op == token.GTR)) || (!up && (cond.Op == token.LEQ || cond.Op == token.LSS))):
		bound = cond.Y
	case types.ExprString(rhs) == counter &&
		((up && (cond.Op == token.LEQ || cond.Op == token.LSS)) || (!up && (cond.Op == token.GEQ || cond.Op == token.GTR))):
		bound = cond.X
	default:
		return nil, false
	}
	if len(ifs.Body.List) == 0 {
		return nil, false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return bound, true
	case *ast.BranchStmt:
		if last.Tok == token.BREAK {
			return bound, true
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return bound, true
			}
		}
	}
	return nil, false
}

// unwrapConversion strips parens and a single type-conversion wrapper.
func unwrapConversion(p *Package, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return ast.Unparen(call.Args[0])
		}
	}
	return e
}

// containsContinue reports a continue statement anywhere under n that is
// not enclosed in a nested loop (where it would not re-enter this loop).
func containsContinue(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if m.(*ast.BranchStmt).Tok == token.CONTINUE {
				found = true
			}
		}
		return !found
	})
	return found
}

// writesExpr reports an assignment, step, append-reassignment or delete
// targeting the expression rendered as target (or an index/field path under
// it) anywhere in body.
func writesExpr(p *Package, body ast.Node, target string) bool {
	written := false
	hit := func(e ast.Expr) {
		s := types.ExprString(ast.Unparen(e))
		if s == target || strings.HasPrefix(s, target+"[") {
			written = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				hit(lhs)
			}
		case *ast.IncDecStmt:
			hit(s.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" && len(s.Args) == 2 {
				hit(s.Args[0])
			}
		}
		return !written
	})
	return written
}
