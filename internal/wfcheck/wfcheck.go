// Package wfcheck is a static analyzer for the repo's central claim: that
// its protocols are wait-free. The paper's results are statements about
// which primitives a construction touches — Theorem 6 turns "can A implement
// B wait-free?" into a decidable, mechanical test — and wfcheck applies the
// same discipline to the code itself: a function that claims wait-freedom
// must not reach, through any call chain inside the module, a construct
// that can stall on another process's progress.
//
// # Annotation convention
//
// Claims and opt-outs are `//wf:` directives in doc comments (no space after
// `//`, like `//go:` directives):
//
//	//wf:waitfree
//	    The function (or, on a package clause, every function in the
//	    package) claims wait-freedom: it completes in a bounded number of
//	    its own steps regardless of other processes' speeds or failures.
//	//wf:blocking <reason>
//	    The function intentionally blocks; the reason is mandatory. Used by
//	    the lock-based baseline, the simulated message-passing substrate,
//	    and operations the paper itself proves cannot be wait-free. Calling
//	    a wf:blocking function from a wf:waitfree context is a violation.
//	//wf:bounded <bound>
//	    A manual boundedness argument. On a function: the body is trusted
//	    (the repo's simulated hardware primitives — mutex gates whose
//	    critical section is one constant-time step in the paper's cost
//	    model — carry this form). On its own comment line directly above or
//	    beside a loop: that loop's iteration count is justified. boundcert
//	    audits every claim: loop-line bounds it can prove are reported
//	    verified, the rest stay trusted, and a bound whose loop mutates its
//	    own limit is contradicted (an error).
//	//wf:lockfree <reason>
//	    The lock-free admission. On a function: some process always makes
//	    progress but this one may retry forever, so calling it from a
//	    wf:waitfree context is a violation — lock-free progress does not
//	    compose into wait-freedom. On a loop line: acknowledges one CAS
//	    retry loop, satisfying the progress analyzer while keeping the loop
//	    visible in the bounds report.
//
// A declaration carrying conflicting directives is an error. Directives in
// _test.go files are ignored: test harnesses may block freely.
//
// # Analyzers
//
// blocking: builds the whole-program call graph from the wf:waitfree entry
// points and flags transitive reachability of sync.Mutex/RWMutex.Lock,
// WaitGroup.Wait, Cond.Wait, time.Sleep, channel operations outside a
// select with a default case, loops with no exit condition, spin loops that
// yield via runtime.Gosched, and calls to wf:blocking or wf:lockfree
// functions. Calls resolve across package boundaries through the module's
// import graph; interface call sites conservatively fan out to every
// in-module implementation; only the standard library is a trusted
// boundary.
//
// boundcert: audits every wf:bounded directive and classifies it verified
// (the engine proves the bound: range over fixed data, counted loops with a
// guaranteed step toward a stable limit, monotone counters with a threshold
// exit), trusted (the stated argument stands on its own), or contradicted
// (the loop writes its own bound — an error). Unattached loop-line
// directives are errors too.
//
// progress: detects CAS retry loops — condition-less loops whose every exit
// needs this process's CompareAndSwap to win or shared state to change,
// with no helping write on the retry path. Such a loop is lock-free, not
// wait-free (the paper's universal construction exists precisely to avoid
// this shape), and must carry //wf:lockfree or sit in a wf:blocking
// function; claiming wf:bounded on one is an error.
//
// pubsafety: checks the publication idiom's release/acquire discipline —
// payload fields written plainly and published by an atomic store to a
// wrapper-typed field of the same struct must not be read without first
// loading that field atomically.
//
// atomicmix: flags struct fields accessed both through sync/atomic
// package-level functions and by plain read/write — a data race that the
// race detector only finds on the schedules that happen to run.
//
// specpure: the universal construction replays seqspec transition functions
// from a log, so Apply/Init/Clone/Key/ReadOnly must be deterministic. Flags
// time and math/rand calls, goroutine launches, channel operations,
// package-level state mutation, and map iteration that feeds output without
// a subsequent sort.
//
// stale: warns (never errors) about directives the analyzers no longer
// need — a wf:blocking function with nothing blocking in it, a loop-line
// bound on a loop whose own condition already satisfies every check.
package wfcheck

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // "annot", "blocking", "boundcert", "progress", "pubsafety", "atomicmix", "specpure" or "stale"
	Message  string
	// Warn marks advisory findings (stale directives) that are reported but
	// do not fail the run.
	Warn bool
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	sev := ""
	if d.Warn {
		sev = "warning: "
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, sev, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column, then message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// Config selects analysis modes.
type Config struct {
	// All treats every unannotated function as if it carried wf:waitfree:
	// audit mode, measuring how far the tree is from a blanket wait-freedom
	// claim. Functions annotated wf:blocking, wf:bounded or wf:lockfree keep
	// their opt-outs. Stale-directive warnings are only produced in this
	// mode.
	All bool

	// IntraPackage restores PR 2's per-package analysis: calls that leave
	// the package are trusted unresolved boundaries. Kept to measure what
	// whole-program resolution adds; the cross-package fixture test proves
	// the difference.
	IntraPackage bool
}

// Result is one analysis run's output: the findings plus the bounds report
// covering every wf:bounded and loop-line wf:lockfree directive seen.
type Result struct {
	Diags  []Diagnostic
	Bounds []BoundRecord
}

// Errors reports whether any non-warning diagnostic is present (the
// exit-code question).
func (r *Result) Errors() bool {
	for _, d := range r.Diags {
		if !d.Warn {
			return true
		}
	}
	return false
}

// Run executes every analyzer on one loaded package in isolation — the
// degenerate whole-program case. Kept for single-package callers and tests.
func (c Config) Run(p *Package) []Diagnostic {
	c.IntraPackage = true
	return c.RunProgram(SinglePackage(p), []*Package{p}).Diags
}

// RunProgram executes every analyzer over the program, reporting findings
// for the target packages (the ones the user named; the rest of the module
// participates in call resolution only). Diagnostics come back sorted.
func (c Config) RunProgram(prog *Program, targets []*Package) *Result {
	if c.IntraPackage {
		// Rebuild the resolution index per target package so calls stop at
		// package boundaries, whatever loader the packages came from.
		res := &Result{}
		for _, p := range targets {
			sub := c.runOne(SinglePackage(p), p)
			res.Diags = append(res.Diags, sub.Diags...)
			res.Bounds = append(res.Bounds, sub.Bounds...)
		}
		SortDiagnostics(res.Diags)
		return res
	}
	res := &Result{}
	res.Diags = append(res.Diags, analyzeBlocking(prog, targets, c.All)...)
	for _, p := range targets {
		res.Diags = append(res.Diags, p.Annots.Errors...)
		bounds, diags := analyzeBounds(p)
		res.Bounds = append(res.Bounds, bounds...)
		res.Diags = append(res.Diags, diags...)
		res.Diags = append(res.Diags, analyzeProgress(p)...)
		res.Diags = append(res.Diags, analyzePubSafety(p)...)
		res.Diags = append(res.Diags, analyzeAtomicMix(p)...)
		res.Diags = append(res.Diags, analyzeSpecPurity(p)...)
	}
	if c.All {
		res.Diags = append(res.Diags, analyzeStale(prog, targets)...)
	}
	SortDiagnostics(res.Diags)
	return res
}

// runOne is RunProgram's per-package body for the intra-package mode.
func (c Config) runOne(prog *Program, p *Package) *Result {
	res := &Result{}
	res.Diags = append(res.Diags, p.Annots.Errors...)
	res.Diags = append(res.Diags, analyzeBlocking(prog, []*Package{p}, c.All)...)
	bounds, diags := analyzeBounds(p)
	res.Bounds = append(res.Bounds, bounds...)
	res.Diags = append(res.Diags, diags...)
	res.Diags = append(res.Diags, analyzeProgress(p)...)
	res.Diags = append(res.Diags, analyzePubSafety(p)...)
	res.Diags = append(res.Diags, analyzeAtomicMix(p)...)
	res.Diags = append(res.Diags, analyzeSpecPurity(p)...)
	if c.All {
		res.Diags = append(res.Diags, analyzeStale(prog, []*Package{p})...)
	}
	return res
}
