// Package wfcheck is a static analyzer for the repo's central claim: that
// its protocols are wait-free. The paper's results are statements about
// which primitives a construction touches — Theorem 6 turns "can A implement
// B wait-free?" into a decidable, mechanical test — and wfcheck applies the
// same discipline to the code itself: a function that claims wait-freedom
// must not reach, through any call chain inside its package, a construct
// that can stall on another process's progress.
//
// # Annotation convention
//
// Claims and opt-outs are `//wf:` directives in doc comments (no space after
// `//`, like `//go:` directives):
//
//	//wf:waitfree
//	    The function (or, on a package clause, every function in the
//	    package) claims wait-freedom: it completes in a bounded number of
//	    its own steps regardless of other processes' speeds or failures.
//	//wf:blocking <reason>
//	    The function intentionally blocks; the reason is mandatory. Used by
//	    the lock-based baseline, the simulated message-passing substrate,
//	    and operations the paper itself proves cannot be wait-free. Calling
//	    a wf:blocking function from a wf:waitfree context is a violation.
//	//wf:bounded <bound>
//	    A manual boundedness argument. On a function: the body is trusted
//	    (the repo's simulated hardware primitives — mutex gates whose
//	    critical section is one constant-time step in the paper's cost
//	    model — carry this form). On its own comment line directly above or
//	    beside a `for` loop: that loop's iteration count is justified and
//	    the loop-shape checks are suppressed.
//
// A declaration carrying both wf:waitfree and wf:blocking is an error.
// Directives in _test.go files are ignored: test harnesses may block freely.
//
// # Analyzers
//
// blocking: builds a per-package call graph from the wf:waitfree entry
// points and flags transitive reachability of sync.Mutex/RWMutex.Lock,
// WaitGroup.Wait, Cond.Wait, time.Sleep, channel operations outside a
// select with a default case, loops with no exit condition, spin loops that
// yield via runtime.Gosched, and calls to wf:blocking functions. The call
// graph is per-package by design: package boundaries are where the paper's
// cost model draws the primitive-step line (see DESIGN.md's substitution
// table) — a package exports operations advertised as single primitive
// steps, and wait-freedom is audited against that advertisement.
//
// atomicmix: flags struct fields accessed both through sync/atomic
// package-level functions and by plain read/write — a data race that the
// race detector only finds on the schedules that happen to run.
//
// specpure: the universal construction replays seqspec transition functions
// from a log, so Apply/Init/Clone/Key/ReadOnly must be deterministic. Flags
// time and math/rand calls, goroutine launches, channel operations,
// package-level state mutation, and map iteration that feeds output without
// a subsequent sort.
package wfcheck

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // "annot", "blocking", "atomicmix" or "specpure"
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column, then message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// Config selects analysis modes.
type Config struct {
	// All treats every unannotated function as if it carried wf:waitfree:
	// audit mode, measuring how far the tree is from a blanket wait-freedom
	// claim. Functions annotated wf:blocking or wf:bounded keep their
	// opt-outs.
	All bool
}

// Run executes every analyzer on one loaded package and returns the sorted
// findings (annotation errors included).
func (c Config) Run(p *Package) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, p.Annots.Errors...)
	ds = append(ds, analyzeBlocking(p, c.All)...)
	ds = append(ds, analyzeAtomicMix(p)...)
	ds = append(ds, analyzeSpecPurity(p)...)
	SortDiagnostics(ds)
	return ds
}
