// Package wfcheck is a static analyzer for the repo's central claim: that
// its protocols are wait-free. The paper's results are statements about
// which primitives a construction touches — Theorem 6 turns "can A implement
// B wait-free?" into a decidable, mechanical test — and wfcheck applies the
// same discipline to the code itself: a function that claims wait-freedom
// must not reach, through any call chain inside the module, a construct
// that can stall on another process's progress.
//
// # Annotation convention
//
// Claims and opt-outs are `//wf:` directives in doc comments (no space after
// `//`, like `//go:` directives):
//
//	//wf:waitfree
//	    The function (or, on a package clause, every function in the
//	    package) claims wait-freedom: it completes in a bounded number of
//	    its own steps regardless of other processes' speeds or failures.
//	//wf:blocking <reason>
//	    The function intentionally blocks; the reason is mandatory. Used by
//	    the lock-based baseline, the simulated message-passing substrate,
//	    and operations the paper itself proves cannot be wait-free. Calling
//	    a wf:blocking function from a wf:waitfree context is a violation.
//	//wf:bounded <bound>
//	    A manual boundedness argument. On a function: the body is trusted
//	    (the repo's simulated hardware primitives — mutex gates whose
//	    critical section is one constant-time step in the paper's cost
//	    model — carry this form). On its own comment line directly above or
//	    beside a loop: that loop's iteration count is justified. boundcert
//	    audits every claim: loop-line bounds it can prove are reported
//	    verified, the rest stay trusted, and a bound whose loop mutates its
//	    own limit is contradicted (an error).
//	//wf:lockfree <reason>
//	    The lock-free admission. On a function: some process always makes
//	    progress but this one may retry forever, so calling it from a
//	    wf:waitfree context is a violation — lock-free progress does not
//	    compose into wait-freedom. On a loop line: acknowledges one CAS
//	    retry loop, satisfying the progress analyzer while keeping the loop
//	    visible in the bounds report.
//
// Loop-line wf:bounded and wf:lockfree arguments may open with a [expr]
// bracket — `//wf:bounded [n*k] walks the live region...` — declaring the
// loop's symbolic trip count for the step algebra (see symbound below).
//
// The v3 symbolic and register-discipline directives:
//
//	//wf:steps <expr>
//	    On a function, interface method, or func-typed field: calls cost
//	    the declared polynomial (identifiers are parameters, composed with
//	    + and *) instead of walking the callee. The cost-model boundary:
//	    seqspec transitions are one step in the paper's model, an interface
//	    contract like FetchAndCons is O(n) by Corollary 27.
//	//wf:param <name>
//	    On a const or field: its value is one instance of the named
//	    symbolic parameter (n processes, k snapshot interval, B help-spin
//	    budget, ...).
//	//wf:len <name>
//	    On a slice field: its length equals the named parameter, so ranges
//	    over it cost that parameter per trip.
//	//wf:singlewriter <owner>
//	    On a per-process slot slice: element i may be stored only by code
//	    indexing with an identifier named <owner> (the owning pid).
//	//wf:monotone
//	    On an atomic register field: stored values must be provably
//	    non-decreasing (guarded Store, non-negative Add, new>=old CAS).
//	//wf:abaguard <reason>
//	    On a pointer CAS target: states the field's ABA protection when it
//	    is a protocol argument the analyzer cannot see.
//	//wf:waiver <analyzer> <reason>
//	    On (or directly above) a finding's line: a reasoned exemption from
//	    singlewriter, monotone, abasafe, fsyncorder, ackpersist or goown. A
//	    waiver nothing consumes is itself an error — it cannot outlive the
//	    finding it excused.
//
// The v4 service-tier discipline directives:
//
//	//wf:durable [note]
//	    On a function: its os.Rename calls commit data files, and fsyncorder
//	    audits the fsync ordering around each one. A durable function with
//	    no rename is a stale claim; a rename outside a durable function is a
//	    finding.
//	//wf:persist [note]
//	    On (or directly above) a statement line: completing this statement
//	    makes the operation durable. //wf:ack [note] marks the statement
//	    that makes the result client-visible; ackpersist requires every ack
//	    to be dominated by a persist.
//	//wf:owns <mechanism> [note]
//	    On (or directly above) a go statement: names the shutdown edge — the
//	    channel, listener, connection or context whose close/cancel stops
//	    the goroutine. goown requires one on every go statement in audited
//	    packages and verifies the mechanism is reachable from the goroutine.
//
// A declaration carrying conflicting directives is an error. Directives in
// _test.go files are ignored: test harnesses may block freely.
//
// # Analyzers
//
// blocking: builds the whole-program call graph from the wf:waitfree entry
// points and flags transitive reachability of sync.Mutex/RWMutex.Lock,
// WaitGroup.Wait, Cond.Wait, time.Sleep, channel operations outside a
// select with a default case, loops with no exit condition, spin loops that
// yield via runtime.Gosched, and calls to wf:blocking or wf:lockfree
// functions. Calls resolve across package boundaries through the module's
// import graph; interface call sites conservatively fan out to every
// in-module implementation; only the standard library is a trusted
// boundary.
//
// boundcert: audits every wf:bounded directive and classifies it verified
// (the engine proves the bound: range over fixed data, counted loops with a
// guaranteed step toward a stable limit, monotone counters with a threshold
// exit), trusted (the stated argument stands on its own), or contradicted
// (the loop writes its own bound — an error). Unattached loop-line
// directives are errors too.
//
// progress: detects CAS retry loops — condition-less loops whose every exit
// needs this process's CompareAndSwap to win or shared state to change,
// with no helping write on the retry path. Such a loop is lock-free, not
// wait-free (the paper's universal construction exists precisely to avoid
// this shape), and must carry //wf:lockfree or sit in a wf:blocking
// function; claiming wf:bounded on one is an error.
//
// pubsafety: checks the publication idiom's release/acquire discipline —
// payload fields written plainly and published by an atomic store to a
// wrapper-typed field of the same struct must not be read without first
// loading that field atomically.
//
// atomicmix: flags struct fields accessed both through sync/atomic
// package-level functions and by plain read/write — a data race that the
// race detector only finds on the schedules that happen to run.
//
// specpure: the universal construction replays seqspec transition functions
// from a log, so Apply/Init/Clone/Key/ReadOnly must be deterministic. Flags
// time and math/rand calls, goroutine launches, channel operations,
// package-level state mutation, and map iteration that feeds output without
// a subsequent sort.
//
// symbound: the symbolic step-bound certifier. Loop bounds — machine-derived
// (constant trips, counted loops against //wf:param values, ranges over
// //wf:len slices) or declared ([expr] brackets, //wf:steps contracts) —
// compose additively and multiplicatively through the whole-program call
// graph into a worst-case step polynomial per exported façade operation,
// reported as verified (machine-derived throughout), trusted (resting on
// declared facts), or unbounded (an error for façade-reachable operations:
// wait-freedom is exactly the existence of this bound).
//
// singlewriter: enforces the per-process slot-ownership discipline on
// //wf:singlewriter slices — every element store must index by the owner.
//
// monotone: proves writes to //wf:monotone registers non-decreasing, the
// invariant the log GC's low-water protocol stands on.
//
// abasafe: audits pointer CompareAndSwap for ABA protection — install-once
// nil, held-pointer Load, value-derived RMW, or a declared field guard.
//
// fsyncorder: audits the commit protocol of //wf:durable functions — every
// os.Rename preceded by a Sync on the renamed file and followed by a
// directory fsync — and flags commit renames outside durable functions.
//
// ackpersist: requires every //wf:ack (client-visible acknowledgement) to
// be dominated by a completed //wf:persist statement on every path — the
// static form of the service tier's persist-before-apply contract.
//
// goown: requires every go statement in audited (non-wf:blocking) packages
// to declare its shutdown edge with //wf:owns <mechanism>, and verifies the
// mechanism is reachable from the spawned goroutine.
//
// stale: flags directives the analyzers no longer need — a wf:blocking
// function with nothing blocking in it, a loop-line bound on a loop whose
// own condition already satisfies every check. Advisory by default;
// StrictStale (CI) turns unallowlisted drift into errors.
package wfcheck

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // "annot", "blocking", "boundcert", "progress", "pubsafety", "atomicmix", "specpure", "symbound", "singlewriter", "monotone", "abasafe", "fsyncorder", "ackpersist", "goown" or "stale"
	Message  string
	// Warn marks advisory findings (stale directives) that are reported but
	// do not fail the run.
	Warn bool
	// allowKey identifies a stale finding for Config.StaleAllow
	// ("file.go:FuncName"); empty on every other analyzer's findings.
	allowKey string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	sev := ""
	if d.Warn {
		sev = "warning: "
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, sev, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column, then message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// Config selects analysis modes.
type Config struct {
	// All treats every unannotated function as if it carried wf:waitfree:
	// audit mode, measuring how far the tree is from a blanket wait-freedom
	// claim. Functions annotated wf:blocking, wf:bounded or wf:lockfree keep
	// their opt-outs. Stale-directive warnings are only produced in this
	// mode.
	All bool

	// IntraPackage restores PR 2's per-package analysis: calls that leave
	// the package are trusted unresolved boundaries. Kept to measure what
	// whole-program resolution adds; the cross-package fixture test proves
	// the difference.
	IntraPackage bool

	// StrictStale promotes stale-directive warnings to errors (the CI
	// setting): directive drift fails the build instead of scrolling by.
	StrictStale bool

	// StaleAllow exempts known-acceptable stale findings from StrictStale,
	// keyed "file.go:FuncName" (base filename). Entries must be justified in
	// the workflow that sets them.
	StaleAllow map[string]bool
}

// Result is one analysis run's output: the findings, the bounds report
// covering every wf:bounded and loop-line wf:lockfree directive seen, and —
// when the module's façade package is among the targets — the symbolic
// step certificates of its exported operations.
type Result struct {
	Diags  []Diagnostic
	Bounds []BoundRecord
	Ops    []OpCert
}

// Errors reports whether any non-warning diagnostic is present (the
// exit-code question).
func (r *Result) Errors() bool {
	for _, d := range r.Diags {
		if !d.Warn {
			return true
		}
	}
	return false
}

// Run executes every analyzer on one loaded package in isolation — the
// degenerate whole-program case. Kept for single-package callers and tests.
func (c Config) Run(p *Package) []Diagnostic {
	c.IntraPackage = true
	return c.RunProgram(SinglePackage(p), []*Package{p}).Diags
}

// RunProgram executes every analyzer over the program, reporting findings
// for the target packages (the ones the user named; the rest of the module
// participates in call resolution only). Diagnostics come back sorted.
func (c Config) RunProgram(prog *Program, targets []*Package) *Result {
	if c.IntraPackage {
		// Rebuild the resolution index per target package so calls stop at
		// package boundaries, whatever loader the packages came from.
		res := &Result{}
		for _, p := range targets {
			sub := c.runOne(SinglePackage(p), p)
			res.Diags = append(res.Diags, sub.Diags...)
			res.Bounds = append(res.Bounds, sub.Bounds...)
		}
		SortDiagnostics(res.Diags)
		return res
	}
	res := &Result{}
	res.Diags = append(res.Diags, analyzeBlocking(prog, targets, c.All)...)
	for _, p := range targets {
		res.Diags = append(res.Diags, p.Annots.Errors...)
		bounds, diags := analyzeBounds(p)
		res.Bounds = append(res.Bounds, bounds...)
		res.Diags = append(res.Diags, diags...)
		res.Diags = append(res.Diags, analyzeProgress(p)...)
		res.Diags = append(res.Diags, analyzePubSafety(p)...)
		res.Diags = append(res.Diags, analyzeAtomicMix(p)...)
		res.Diags = append(res.Diags, analyzeSpecPurity(p)...)
		res.Diags = append(res.Diags, analyzeSingleWriter(prog, p)...)
		res.Diags = append(res.Diags, analyzeMonotone(prog, p)...)
		res.Diags = append(res.Diags, analyzeABA(prog, p)...)
		analyzeFsyncOrder(p, &res.Diags)
		analyzeAckPersist(p, &res.Diags)
		analyzeGoOwn(prog, p, &res.Diags)
		res.Diags = append(res.Diags, unusedWaiverDiags(p)...)
		res.Diags = append(res.Diags, unusedMarkDiags(p)...)
	}
	if root := moduleRoot(prog, targets); root != nil {
		ops, diags := analyzeSymbolic(prog, root)
		res.Ops = ops
		res.Diags = append(res.Diags, diags...)
	}
	if c.All {
		res.Diags = append(res.Diags, c.staleDiags(prog, targets)...)
	}
	SortDiagnostics(res.Diags)
	return res
}

// moduleRoot finds the target package whose import path is the module path —
// the façade whose exported surface seeds symbolic certification. Fixture
// programs (no module context) have none.
func moduleRoot(prog *Program, targets []*Package) *Package {
	if prog.Module == "" {
		return nil
	}
	for _, p := range targets {
		if p.Path == prog.Module && p.TPkg != nil {
			return p
		}
	}
	return nil
}

// unusedWaiverDiags errors every waiver the discipline analyzers did not
// consume: a dead waiver would silently excuse the next finding to appear on
// its line. Must run after singlewriter, monotone and abasafe.
func unusedWaiverDiags(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, w := range p.Annots.UnusedWaivers() {
		diags = append(diags, Diagnostic{
			Pos: p.Fset.Position(w.Pos), Analyzer: "annot",
			Message: fmt.Sprintf("wf:waiver %s excuses no finding on its line — remove it (reason was: %s)", w.Analyzer, w.Reason),
		})
	}
	return diags
}

// unusedMarkDiags errors every //wf:ack, //wf:persist or //wf:owns mark no
// analyzer attached to a statement: a floating mark would silently exempt
// the statement it meant to pin. Must run after ackpersist and goown.
func unusedMarkDiags(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, m := range p.Annots.UnusedMarks() {
		diags = append(diags, Diagnostic{
			Pos: p.Fset.Position(m.Pos), Analyzer: "annot",
			Message: fmt.Sprintf("wf:%s attaches to no audited statement — remove it or move it onto the marked line", m.Verb),
		})
	}
	return diags
}

// staleDiags runs the stale analyzer, applying the strict-mode promotion
// and allowlist.
func (c Config) staleDiags(prog *Program, targets []*Package) []Diagnostic {
	diags := analyzeStale(prog, targets)
	if !c.StrictStale {
		return diags
	}
	for i := range diags {
		if diags[i].Warn && !c.StaleAllow[staleKey(diags[i])] {
			diags[i].Warn = false
		}
	}
	return diags
}

// runOne is RunProgram's per-package body for the intra-package mode.
func (c Config) runOne(prog *Program, p *Package) *Result {
	res := &Result{}
	res.Diags = append(res.Diags, p.Annots.Errors...)
	res.Diags = append(res.Diags, analyzeBlocking(prog, []*Package{p}, c.All)...)
	bounds, diags := analyzeBounds(p)
	res.Bounds = append(res.Bounds, bounds...)
	res.Diags = append(res.Diags, diags...)
	res.Diags = append(res.Diags, analyzeProgress(p)...)
	res.Diags = append(res.Diags, analyzePubSafety(p)...)
	res.Diags = append(res.Diags, analyzeAtomicMix(p)...)
	res.Diags = append(res.Diags, analyzeSpecPurity(p)...)
	res.Diags = append(res.Diags, analyzeSingleWriter(prog, p)...)
	res.Diags = append(res.Diags, analyzeMonotone(prog, p)...)
	res.Diags = append(res.Diags, analyzeABA(prog, p)...)
	analyzeFsyncOrder(p, &res.Diags)
	analyzeAckPersist(p, &res.Diags)
	analyzeGoOwn(prog, p, &res.Diags)
	res.Diags = append(res.Diags, unusedWaiverDiags(p)...)
	res.Diags = append(res.Diags, unusedMarkDiags(p)...)
	if c.All {
		res.Diags = append(res.Diags, c.staleDiags(prog, []*Package{p})...)
	}
	return res
}
