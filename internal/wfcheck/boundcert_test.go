package wfcheck

import (
	"strings"
	"testing"
)

// TestBoundCertification pins the certification engine against the
// boundcert fixture: each directive's status, keyed by its stated
// argument, must match the class the engine claims to prove.
func TestBoundCertification(t *testing.T) {
	_, p := loadFixture(t, "boundcert")
	records, diags := analyzeBounds(p)

	want := map[string]BoundStatus{
		"one iteration per element": BoundVerified, // range over a slice
		"n iterations":              BoundVerified, // counted three-clause loop
		"v[0] strictly increases and the loop exits at n":                 BoundVerified,     // monotone counter with threshold exit
		"at most n iterations; skip never stalls i forever by assumption": BoundTrusted,      // conditional step: unprovable
		"n iterations despite the moving goal":                            BoundContradicted, // the body raises its own bound
		"fixture: exercised by the bounds report only":                    BoundLockFree,     // wf:lockfree admission
	}
	got := make(map[string]BoundStatus, len(records))
	for _, r := range records {
		got[r.Arg] = r.Status
	}
	for arg, status := range want {
		if got[arg] != status {
			t.Errorf("bound %q certified %q, want %q", arg, got[arg], status)
		}
	}
	// The unattached directive is not a record; it is an error diagnostic.
	if _, ok := got["this directive attaches to no loop"]; ok {
		t.Errorf("unattached directive produced a bounds record")
	}

	var errs []string
	for _, d := range diags {
		errs = append(errs, d.Message)
	}
	joined := strings.Join(errs, "\n")
	for _, wantMsg := range []string{
		"is contradicted",
		"the loop body writes n, the loop's own bound",
		"attaches to no loop",
	} {
		if !strings.Contains(joined, wantMsg) {
			t.Errorf("boundcert diagnostics missing %q in:\n%s", wantMsg, joined)
		}
	}
	if len(diags) != 2 {
		t.Errorf("got %d boundcert diagnostics, want 2 (contradiction + unattached):\n%s", len(diags), joined)
	}
}

// TestTreeBoundsReport runs the certifier over the real internal/protocols
// package and pins the PR's headline: the assignment-protocol scan loops,
// previously trusted on their stated arguments, are now machine-verified
// as monotone counters.
func TestTreeBoundsReport(t *testing.T) {
	_, p := loadFixture(t, "../../../protocols")
	records, diags := analyzeBounds(p)
	if len(diags) != 0 {
		t.Fatalf("internal/protocols has boundcert diagnostics: %v", diags)
	}
	verified := 0
	for _, r := range records {
		if r.Status == BoundVerified {
			verified++
			if !strings.Contains(r.Detail, "monotone counter") {
				t.Errorf("verified bound at %s:%d proved by %q, want the monotone-counter class",
					r.Pos.Filename, r.Pos.Line, r.Detail)
			}
		}
	}
	if verified < 4 {
		t.Errorf("internal/protocols has %d verified bounds, want the 4 assignment-scan loops", verified)
	}
}

// TestCoreBoundsReport pins the certifier's headline on internal/core: the
// help-wait window in awaitHelp is a counted loop the certifier proves
// outright (a stalled executor delays a helped writer by at most the window),
// the replay and anchor walks — trusted on their Section 4.1 arguments until
// the structural-walk class landed — are now machine-verified self-projection
// descents, and nothing in the package is contradicted.
func TestCoreBoundsReport(t *testing.T) {
	_, p := loadFixture(t, "../../../core")
	records, diags := analyzeBounds(p)
	if len(diags) != 0 {
		t.Fatalf("internal/core has boundcert diagnostics: %v", diags)
	}
	byScope := make(map[string]BoundStatus)
	for _, r := range records {
		if r.Status == BoundContradicted {
			t.Errorf("contradicted bound at %s:%d: %s", r.Pos.Filename, r.Pos.Line, r.Detail)
		}
		byScope[r.Scope] = r.Status
	}
	if got := byScope["loop in awaitHelp"]; got != BoundVerified {
		t.Errorf("awaitHelp help-wait window certified %q, want %q (counted loop)", got, BoundVerified)
	}
	if got := byScope["loop in replayPublish"]; got != BoundVerified {
		t.Errorf("replayPublish walk certified %q, want %q (structural walk)", got, BoundVerified)
	}
	if got := byScope["loop in gcSwing"]; got != BoundVerified {
		t.Errorf("gcSwing anchor walk certified %q, want %q (structural walk)", got, BoundVerified)
	}
}

// TestTreeBoundsTotals pins the tree-wide certification totals that
// `wfvet -all -bounds ./...` reports — the repo's bound-certification
// budget. A new directive moves a number here on purpose; a contradiction
// anywhere fails outright.
func TestTreeBoundsTotals(t *testing.T) {
	pkgs := []string{
		"../../../check", "../../../combine", "../../../core",
		"../../../protocols", "../../../queue", "../../../registers",
		"../../../shard", "../../../wfcheck", "../../../wfstats",
	}
	counts := make(map[BoundStatus]int)
	for _, rel := range pkgs {
		_, p := loadFixture(t, rel)
		records, diags := analyzeBounds(p)
		if len(diags) != 0 {
			t.Errorf("%s has boundcert diagnostics: %v", rel, diags)
		}
		for _, r := range records {
			counts[r.Status]++
			if r.Status == BoundContradicted {
				t.Errorf("contradicted bound at %s:%d: %s", r.Pos.Filename, r.Pos.Line, r.Detail)
			}
		}
	}
	want := map[BoundStatus]int{
		// The structural-walk class moved the replay walks and the gcSwing
		// anchor walk from trusted to verified; the GC min-scans are plain
		// range loops, machine-bounded by their operand, so they carry no
		// directive and add no record. Universal.InvokeBatch's two [B]
		// brackets (one cons and one collection pass per batch entry) are
		// ranges over the caller's slice — trip count fixed at loop entry,
		// so both verify.
		BoundVerified: 11, BoundTrusted: 11, BoundLockFree: 4, BoundContradicted: 0,
	}
	for status, n := range want {
		if counts[status] != n {
			t.Errorf("tree-wide %s bounds = %d, want %d", status, counts[status], n)
		}
	}
}
