package wfcheck

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through a fresh module-rooted
// loader and returns both.
func loadFixture(t *testing.T, rel string) (*Loader, *Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	return loader, p
}

// TestCrossPackageResolution pins the point of the whole-program upgrade:
// package b's wait-free entry points reach blocking code only across the
// import edge into package a, so per-package analysis (the old behavior,
// Config.IntraPackage) finds nothing while the whole-program call graph
// reports both violations — the hidden mutex behind an unannotated helper
// and the wf:blocking annotation the caller's package cannot read.
func TestCrossPackageResolution(t *testing.T) {
	loader, pb := loadFixture(t, "xpkg/b")
	prog := NewProgram(loader)

	whole := (Config{}).RunProgram(prog, []*Package{pb})
	var msgs []string
	for _, d := range whole.Diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if len(whole.Diags) != 2 {
		t.Fatalf("whole-program analysis found %d diagnostics, want 2:\n%s", len(whole.Diags), joined)
	}
	for _, want := range []string{
		"calls sync.Mutex.Lock",    // Helper's hidden mutex, seen through the import edge
		"annotated wf:blocking",    // Declared's annotation, read from package a
		"reached from wf:waitfree", // the finding attributes to b's entry point
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("whole-program diagnostics missing %q in:\n%s", want, joined)
		}
	}

	intra := (Config{IntraPackage: true}).RunProgram(prog, []*Package{pb})
	if len(intra.Diags) != 0 {
		t.Errorf("per-package analysis found %d diagnostics, want 0 (the missed-violation class):\n%v",
			len(intra.Diags), intra.Diags)
	}
}

// TestInterfaceContractResolvesDispatch pins the contract rule: an
// annotated interface method settles the dispatch site, while an
// unannotated one fans out to every in-module implementation.
func TestInterfaceContractResolvesDispatch(t *testing.T) {
	loader, p := loadFixture(t, "contract")
	prog := NewProgram(loader)
	res := (Config{}).RunProgram(prog, []*Package{p})
	var msgs []string
	for _, d := range res.Diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if len(res.Diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(res.Diags), joined)
	}
	for _, want := range []string{
		"interface contract is wf:blocking", // annotated Stall method: settled by the contract
		"may dispatch to",                   // unannotated Op method: fans out to SlowImpl
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("diagnostics missing %q in:\n%s", want, joined)
		}
	}
	// The bounded contract on Gated must have silenced that dispatch: no
	// diagnostic mentions it.
	if strings.Contains(joined, "Gated") {
		t.Errorf("bounded contract did not settle the Gated dispatch:\n%s", joined)
	}
}
