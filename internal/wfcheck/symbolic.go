package wfcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Symbolic step-bound certification: wait-freedom is a quantitative promise
// — every operation completes within N(n) of its own steps — and this pass
// computes what that bound actually is, per exported façade operation, as a
// polynomial over the tree's named parameters (n processes, k snapshot
// interval, S shards, B help-spin budget, g GC interval, ...). Loop bounds
// compose multiplicatively into their bodies and sequentially by addition
// through the whole-program call graph; interface dispatches resolve
// through //wf:steps contracts or the termwise maximum over in-module
// implementations. The sources of symbolic facts are:
//
//   - //wf:param <name> on a const or field: its value is that parameter.
//   - //wf:len <name> on a slice field: its length is that parameter.
//   - //wf:steps <expr> on a function, interface method, or func-typed
//     field: calls are charged the declared polynomial instead of walking
//     the callee (the cost-model boundary; seqspec transitions are one step
//     in the paper's model, declared exactly this way).
//   - a leading [expr] bracket on a loop-line wf:bounded / wf:lockfree
//     directive: the loop's declared symbolic trip count (for walks whose
//     bound is a protocol argument, and for amortized lock-free loops).
//
// Everything machine-derived (constant trips, counted loops against
// wf:param bounds, ranges over wf:len slices or arrays) composes as
// verified; declared facts compose as trusted; a loop or call with no
// finite symbolic bound poisons its operation to unbounded, which the
// symbound analyzer reports as an error for façade-reachable operations.
// Standard-library calls are the tool's trusted boundary, charged one step.

// BoundUnbounded marks an operation with no finite symbolic certificate.
// (Declared alongside the boundcert verdicts; the cost algebra shares the
// BoundStatus vocabulary.)
const BoundUnbounded BoundStatus = "unbounded"

// Poly is a step polynomial with non-negative integer coefficients over
// named parameters. Keys are "·"-joined sorted parameter multisets: "" is
// the constant term, "k·n" the n·k cross term.
type Poly map[string]int64

// polyConst returns the constant polynomial c.
func polyConst(c int64) Poly {
	if c == 0 {
		return Poly{}
	}
	return Poly{"": c}
}

// polyParam returns the polynomial consisting of one bare parameter.
func polyParam(name string) Poly { return Poly{name: 1} }

// Clone copies p.
func (p Poly) Clone() Poly {
	out := make(Poly, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	out := p.Clone()
	for k, v := range q {
		out[k] += v
	}
	return out
}

// Mul returns p × q: term pairs multiply, parameter multisets merge.
func (p Poly) Mul(q Poly) Poly {
	out := Poly{}
	for k1, v1 := range p {
		for k2, v2 := range q {
			out[mulKey(k1, k2)] += v1 * v2
		}
	}
	return out
}

// Max returns the termwise maximum of p and q — the sound upper bound for
// an either-or, used for interface dispatch over several implementations.
func (p Poly) Max(q Poly) Poly {
	out := p.Clone()
	for k, v := range q {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// mulKey merges two sorted term keys into one sorted multiset key.
func mulKey(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	parts := append(strings.Split(a, "·"), strings.Split(b, "·")...)
	sort.Strings(parts)
	return strings.Join(parts, "·")
}

// Params lists the distinct parameter names appearing in p, sorted.
func (p Poly) Params() []string {
	seen := map[string]bool{}
	for k := range p {
		if k == "" {
			continue
		}
		for _, f := range strings.Split(k, "·") {
			seen[f] = true
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Eval instantiates the polynomial with concrete parameter values — the
// runtime cross-check's half of the contract. Every parameter must be
// supplied.
func (p Poly) Eval(vals map[string]int64) (int64, error) {
	var total int64
	for k, c := range p {
		term := c
		if k != "" {
			for _, f := range strings.Split(k, "·") {
				v, ok := vals[f]
				if !ok {
					return 0, fmt.Errorf("no value for parameter %s", f)
				}
				term *= v
			}
		}
		total += term
	}
	return total, nil
}

// String renders the polynomial in O-notation: coefficients dropped,
// constant term absorbed unless it is the whole polynomial, terms ordered
// by degree then name.
func (p Poly) String() string {
	var keys []string
	for k, c := range p {
		if k == "" || c == 0 {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return "O(1)"
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := strings.Count(keys[i], "·"), strings.Count(keys[j], "·")
		if di != dj {
			return di > dj
		}
		return keys[i] < keys[j]
	})
	return "O(" + strings.Join(keys, " + ") + ")"
}

// parseSteps parses a //wf:steps (or [bracket]) expression — parameter
// identifiers, non-negative integer literals, +, *, parentheses — into its
// polynomial.
func parseSteps(src string) (Poly, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("empty steps expression")
	}
	e, err := parser.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("unparsable steps expression %q", src)
	}
	return polyOfExpr(e)
}

// polyOfExpr evaluates a parsed steps expression in the +,* algebra.
func polyOfExpr(e ast.Expr) (Poly, error) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return polyOfExpr(e.X)
	case *ast.Ident:
		return polyParam(e.Name), nil
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return nil, fmt.Errorf("steps literal %s is not an integer", e.Value)
		}
		v, err := strconv.ParseInt(e.Value, 0, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("steps literal %s is not a non-negative int64", e.Value)
		}
		return polyConst(v), nil
	case *ast.BinaryExpr:
		x, err := polyOfExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := polyOfExpr(e.Y)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case token.ADD:
			return x.Add(y), nil
		case token.MUL:
			return x.Mul(y), nil
		}
		return nil, fmt.Errorf("steps operator %s is outside the +,* algebra", e.Op)
	}
	return nil, fmt.Errorf("steps term %s is outside the ident/int/+/* algebra", types.ExprString(e))
}

// symCost is one computed symbolic cost: the polynomial, how it is known
// (verified: machine-derived; trusted: rests on declared wf:steps /
// wf:param / wf:len / [bracket] facts; unbounded: no finite symbolic
// bound), and the first note explaining the weakest link.
type symCost struct {
	poly   Poly
	status BoundStatus
	note   string
}

// statusRank orders certification statuses from strongest to weakest.
func statusRank(s BoundStatus) int {
	switch s {
	case BoundVerified:
		return 0
	case BoundTrusted:
		return 1
	}
	return 2
}

// mergeCosts sums polynomials and keeps the weakest status with its note.
func mergeCosts(costs ...symCost) symCost {
	out := symCost{poly: Poly{}, status: BoundVerified}
	for _, c := range costs {
		if statusRank(c.status) > statusRank(out.status) {
			out.status, out.note = c.status, c.note
		}
		if c.poly != nil {
			out.poly = out.poly.Add(c.poly)
		}
	}
	return out
}

// costEngine computes per-function symbolic step costs over the program
// call graph, memoized per declaration.
type costEngine struct {
	prog   *Program
	memo   map[*ast.FuncDecl]symCost
	inwork map[*ast.FuncDecl]bool
}

// newCostEngine builds a cost engine over the program.
func newCostEngine(prog *Program) *costEngine {
	return &costEngine{prog: prog, memo: make(map[*ast.FuncDecl]symCost), inwork: make(map[*ast.FuncDecl]bool)}
}

// funcCost bounds one function: a declared //wf:steps wins, mode directives
// decide the boundaries (wf:bounded is one trusted step, wf:blocking and
// wf:lockfree have no step bound), and otherwise the body is walked —
// recursion has no symbolic bound by construction.
func (e *costEngine) funcCost(pf *ProgFunc) symCost {
	if c, ok := e.memo[pf.Decl]; ok {
		return c
	}
	if e.inwork[pf.Decl] {
		return symCost{status: BoundUnbounded, note: fmt.Sprintf("recursion through %s; break the cycle with //wf:steps", pf.Decl.Name.Name)}
	}
	obj := pf.Pkg.Info.Defs[pf.Decl.Name]
	if expr, ok := e.prog.steps[obj]; ok {
		poly, err := parseSteps(expr)
		if err != nil {
			poly = polyConst(1) // annot already reported the parse error
		}
		c := symCost{poly: poly, status: BoundTrusted, note: fmt.Sprintf("declared //wf:steps %s on %s", expr, pf.Decl.Name.Name)}
		e.memo[pf.Decl] = c
		return c
	}
	d := pf.Mode()
	switch d.Mode {
	case ModeBlocking:
		c := symCost{status: BoundUnbounded, note: fmt.Sprintf("%s is wf:blocking (%s)", pf.Decl.Name.Name, d.Arg)}
		e.memo[pf.Decl] = c
		return c
	case ModeLockFree:
		c := symCost{status: BoundUnbounded, note: fmt.Sprintf("%s is wf:lockfree (%s): retries are unbounded for this process", pf.Decl.Name.Name, d.Arg)}
		e.memo[pf.Decl] = c
		return c
	case ModeBounded:
		c := symCost{poly: polyConst(1), status: BoundTrusted, note: fmt.Sprintf("wf:bounded boundary %s (%s)", pf.Decl.Name.Name, d.Arg)}
		e.memo[pf.Decl] = c
		return c
	}
	e.inwork[pf.Decl] = true
	body := e.nodeCost(pf, pf.Decl.Body)
	delete(e.inwork, pf.Decl)
	c := mergeCosts(symCost{poly: polyConst(1), status: BoundVerified}, body)
	e.memo[pf.Decl] = c
	return c
}

// nodeCost sums the symbolic cost of everything under n: loops multiply
// their trip counts into their bodies, calls charge the callee, function
// literals are charged at their site. Branch arms are summed — a sound, if
// loose, upper bound.
func (e *costEngine) nodeCost(pf *ProgFunc, n ast.Node) symCost {
	total := symCost{poly: Poly{}, status: BoundVerified}
	if n == nil {
		return total
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			total = mergeCosts(total, e.forCost(pf, m))
			return false
		case *ast.RangeStmt:
			total = mergeCosts(total, e.rangeCost(pf, m))
			return false
		case *ast.CallExpr:
			total = mergeCosts(total, e.callCost(pf, m))
			return true // descend: arguments may hold nested calls and literals
		case *ast.FuncLit:
			total = mergeCosts(total, e.nodeCost(pf, m.Body))
			return false
		}
		return true
	})
	return total
}

// forCost is trip × (1 + per-iteration cost) + the init statement's cost.
func (e *costEngine) forCost(pf *ProgFunc, loop *ast.ForStmt) symCost {
	trip := e.tripCount(pf, loop)
	if trip.status == BoundUnbounded {
		return trip
	}
	iter := mergeCosts(symCost{poly: polyConst(1), status: BoundVerified},
		e.nodeCost(pf, loop.Cond), e.nodeCost(pf, loop.Post), e.nodeCost(pf, loop.Body))
	out := mergeCosts(trip, iter, e.nodeCost(pf, loop.Init))
	out.poly = trip.poly.Mul(iter.poly)
	if loop.Init != nil {
		out.poly = out.poly.Add(e.nodeCost(pf, loop.Init).poly)
	}
	return out
}

// rangeCost is trip × (1 + body cost) + the operand's evaluation cost.
func (e *costEngine) rangeCost(pf *ProgFunc, loop *ast.RangeStmt) symCost {
	trip := e.tripCount(pf, loop)
	if trip.status == BoundUnbounded {
		return trip
	}
	iter := mergeCosts(symCost{poly: polyConst(1), status: BoundVerified}, e.nodeCost(pf, loop.Body))
	out := mergeCosts(trip, iter, e.nodeCost(pf, loop.X))
	out.poly = trip.poly.Mul(iter.poly).Add(e.nodeCost(pf, loop.X).poly)
	return out
}

// shortAt renders a node's position as "file.go:line" for basis notes.
func shortAt(p *Package, pos token.Pos) string {
	pp := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(pp.Filename), pp.Line)
}

// tripCount bounds a loop's iteration count symbolically. A [expr] bracket
// on the loop's directive is the declared answer; otherwise the boundcert
// shape classes are symbolized: counted loops from zero against a constant
// or //wf:param bound, ranges over arrays, constants, or //wf:len slices.
func (e *costEngine) tripCount(pf *ProgFunc, n ast.Node) symCost {
	p := pf.Pkg
	at := shortAt(p, n.Pos())
	if d := p.Annots.LoopDirective(n.Pos()); d != nil {
		if d.Steps != "" {
			poly, err := parseSteps(d.Steps)
			if err != nil {
				return symCost{status: BoundUnbounded, note: fmt.Sprintf("bad [steps] bracket at %s", at)}
			}
			return symCost{poly: poly, status: BoundTrusted, note: fmt.Sprintf("declared [%s] loop bound at %s", d.Steps, at)}
		}
		if d.Mode == ModeLockFree {
			return symCost{status: BoundUnbounded, note: fmt.Sprintf("lock-free retry loop at %s (declare an amortized [steps] bracket to bound it)", at)}
		}
	}
	switch loop := n.(type) {
	case *ast.RangeStmt:
		return e.rangeTrip(pf, loop, at)
	case *ast.ForStmt:
		if loop.Cond == nil {
			return symCost{status: BoundUnbounded, note: fmt.Sprintf("condition-less loop at %s needs a [steps] bracket", at)}
		}
		if st, _ := classifyCounted(p, loop); st == BoundVerified {
			if bound, extra, ok := countedBound(loop); ok {
				if bp := e.boundPoly(p, bound, at); bp.status != BoundUnbounded {
					bp.poly = bp.poly.Add(polyConst(extra))
					return bp
				}
			}
		}
	}
	return symCost{status: BoundUnbounded, note: fmt.Sprintf("loop at %s has no symbolic trip count (bound it with a //wf:param value or a [steps] bracket)", at)}
}

// countedBound extracts the bound expression of the canonical counted
// shape `for i := c; i < B; i++` (c a non-negative constant), with extra=1
// for a <= comparison. The caller has already checked classifyCounted, so
// the step and bound-stability guarantees hold.
func countedBound(loop *ast.ForStmt) (bound ast.Expr, extra int64, ok bool) {
	init, isAssign := loop.Init.(*ast.AssignStmt)
	if !isAssign || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, 0, false
	}
	iv, isIdent := init.Lhs[0].(*ast.Ident)
	lit, isLit := ast.Unparen(init.Rhs[0]).(*ast.BasicLit)
	if !isIdent || !isLit || lit.Kind != token.INT {
		return nil, 0, false
	}
	if c, err := strconv.ParseInt(lit.Value, 0, 64); err != nil || c < 0 {
		return nil, 0, false
	}
	post, isInc := loop.Post.(*ast.IncDecStmt)
	if !isInc || post.Tok != token.INC || types.ExprString(ast.Unparen(post.X)) != iv.Name {
		return nil, 0, false
	}
	cond, isCmp := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !isCmp || types.ExprString(ast.Unparen(cond.X)) != iv.Name {
		return nil, 0, false
	}
	switch cond.Op {
	case token.LSS:
		return cond.Y, 0, true
	case token.LEQ:
		return cond.Y, 1, true
	}
	return nil, 0, false
}

// rangeTrip symbolizes a range operand's length.
func (e *costEngine) rangeTrip(pf *ProgFunc, loop *ast.RangeStmt, at string) symCost {
	p := pf.Pkg
	if t := p.Info.TypeOf(loop.X); t != nil {
		switch u := t.Underlying().(type) {
		case *types.Array:
			return symCost{poly: polyConst(u.Len()), status: BoundVerified}
		case *types.Pointer:
			if arr, ok := u.Elem().Underlying().(*types.Array); ok {
				return symCost{poly: polyConst(arr.Len()), status: BoundVerified}
			}
		case *types.Basic:
			if fa := e.fieldAnnOfExpr(p, loop.X); fa != nil && fa.Param != "" {
				return symCost{poly: polyParam(fa.Param), status: BoundTrusted, note: fmt.Sprintf("declared //wf:param %s range at %s", fa.Param, at)}
			}
			if tv, ok := p.Info.Types[loop.X]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v >= 0 {
					return symCost{poly: polyConst(v), status: BoundVerified}
				}
			}
		case *types.Slice, *types.Map:
			if fa := e.fieldAnnOfExpr(p, loop.X); fa != nil && fa.Len != "" {
				return symCost{poly: polyParam(fa.Len), status: BoundTrusted, note: fmt.Sprintf("declared //wf:len %s on %s (%s)", fa.Len, types.ExprString(loop.X), at)}
			}
		case *types.Chan:
			return symCost{status: BoundUnbounded, note: fmt.Sprintf("range over a channel at %s", at)}
		case *types.Signature:
			return symCost{status: BoundUnbounded, note: fmt.Sprintf("range over a function iterator at %s", at)}
		}
	}
	return symCost{status: BoundUnbounded, note: fmt.Sprintf("range at %s has no symbolic length (annotate the operand field with //wf:len or add a [steps] bracket)", at)}
}

// boundPoly symbolizes a loop-bound expression: a //wf:param const or
// field, a compile-time constant, or len/cap of a //wf:len slice field or
// an array. The param check runs first — a parameterized constant's point
// is that its value is one instance of the parameter.
func (e *costEngine) boundPoly(p *Package, expr ast.Expr, at string) symCost {
	expr = ast.Unparen(expr)
	if fa := e.fieldAnnOfExpr(p, expr); fa != nil && fa.Param != "" {
		return symCost{poly: polyParam(fa.Param), status: BoundTrusted, note: fmt.Sprintf("declared //wf:param %s bound at %s", fa.Param, at)}
	}
	if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v >= 0 {
			return symCost{poly: polyConst(v), status: BoundVerified}
		}
	}
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && (id.Name == "len" || id.Name == "cap") {
			arg := ast.Unparen(call.Args[0])
			if t := p.Info.TypeOf(arg); t != nil {
				if arr, isArr := t.Underlying().(*types.Array); isArr {
					return symCost{poly: polyConst(arr.Len()), status: BoundVerified}
				}
			}
			if fa := e.fieldAnnOfExpr(p, arg); fa != nil && fa.Len != "" {
				return symCost{poly: polyParam(fa.Len), status: BoundTrusted, note: fmt.Sprintf("declared //wf:len %s bound at %s", fa.Len, at)}
			}
		}
	}
	return symCost{status: BoundUnbounded}
}

// fieldAnnOfExpr resolves the field/const annotation governing expr — an
// identifier, a field selection, or a qualified identifier — wherever in
// the module it is declared.
func (e *costEngine) fieldAnnOfExpr(p *Package, expr ast.Expr) *FieldAnn {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.prog.fields[p.Info.Uses[x]]
	case *ast.SelectorExpr:
		if f := fieldOf(p, x); f != nil {
			return e.prog.fields[f]
		}
		return e.prog.fields[p.Info.Uses[x.Sel]]
	}
	return nil
}

// callCost charges one call site: conversions and builtins are free,
// declared //wf:steps (on the callee, an interface contract, or a
// func-typed field) wins, wf:bounded contracts are one trusted step,
// interface dispatch without a contract takes the termwise max over
// implementations, module functions compose their own cost, and the
// standard library is the trusted boundary at one step.
func (e *costEngine) callCost(pf *ProgFunc, call *ast.CallExpr) symCost {
	p := pf.Pkg
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return symCost{poly: Poly{}, status: BoundVerified}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return symCost{poly: Poly{}, status: BoundVerified}
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		if fa := e.fieldAnnOfExpr(p, call.Fun); fa != nil && fa.Steps != "" {
			poly, err := parseSteps(fa.Steps)
			if err != nil {
				poly = polyConst(1)
			}
			return symCost{poly: poly, status: BoundTrusted, note: fmt.Sprintf("declared //wf:steps %s on the function value %s", fa.Steps, types.ExprString(call.Fun))}
		}
		return symCost{poly: polyConst(1), status: BoundTrusted,
			note: fmt.Sprintf("dynamic call at %s charged one step (no //wf:steps on the function value)", shortAt(p, call.Pos()))}
	}
	if expr, ok := e.prog.steps[fn]; ok {
		poly, err := parseSteps(expr)
		if err != nil {
			poly = polyConst(1)
		}
		return symCost{poly: poly, status: BoundTrusted, note: fmt.Sprintf("declared //wf:steps %s on %s", expr, fn.Name())}
	}
	if isInterfaceMethod(fn) {
		if d := e.prog.Contract(fn); d != nil {
			switch d.Mode {
			case ModeBounded:
				return symCost{poly: polyConst(1), status: BoundTrusted, note: fmt.Sprintf("interface contract wf:bounded on %s", fn.Name())}
			case ModeBlocking, ModeLockFree:
				return symCost{status: BoundUnbounded, note: fmt.Sprintf("interface contract %s on %s", d.Mode, fn.Name())}
			}
		}
		impls := e.prog.Implementations(fn)
		if len(impls) == 0 {
			return symCost{status: BoundUnbounded, note: fmt.Sprintf("dynamic dispatch on %s with no contract and no in-module implementation", fn.Name())}
		}
		out := symCost{poly: Poly{}, status: BoundVerified}
		for _, impl := range impls {
			c := e.funcCost(impl)
			if statusRank(c.status) > statusRank(out.status) {
				out.status, out.note = c.status, c.note
			}
			if c.status == BoundUnbounded {
				return out
			}
			out.poly = out.poly.Max(c.poly)
		}
		return out
	}
	if callee := e.prog.FuncOf(fn); callee != nil {
		return e.funcCost(callee)
	}
	return symCost{poly: polyConst(1), status: BoundVerified}
}

// OpCert is one exported operation's worst-case symbolic step certificate.
type OpCert struct {
	Op     string // "core.Universal.Invoke", "contract core.FetchAndCons.Observe"
	Pos    token.Position
	Poly   Poly
	Bound  string      // rendered O-form, "unbounded" when no certificate
	Status BoundStatus // verified | trusted | unbounded
	Basis  string      // the weakest link behind the status
}

// analyzeSymbolic certifies every exported operation reachable from the
// module's façade package: the façade's type aliases and constructor result
// types seed a closure over exported methods' result types, and each
// reachable concrete type's exported methods get a certificate. Interface
// types contribute their //wf:steps contract rows. seqspec types are
// excluded — sequential specifications are unit-cost in the paper's model,
// which their //wf:steps 1 contracts declare at the dispatch sites.
// Constructors and other setup functions are construction-time, not
// operations, and are not certified. An operation with no finite symbolic
// bound is a symbound error.
func analyzeSymbolic(prog *Program, root *Package) ([]OpCert, []Diagnostic) {
	eng := newCostEngine(prog)
	modPath := root.Path
	inModule := func(pkg *types.Package) bool {
		return pkg != nil && (pkg.Path() == modPath || strings.HasPrefix(pkg.Path(), modPath+"/"))
	}
	seen := map[*types.Named]bool{}
	var queue []*types.Named
	add := func(t types.Type) {
		//wf:bounded strips one pointer or slice constructor per iteration, and Go types nest finitely
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			}
			break
		}
		n, ok := t.(*types.Named)
		if !ok || seen[n] || !inModule(n.Obj().Pkg()) {
			return
		}
		seen[n] = true
		queue = append(queue, n)
	}

	for _, f := range root.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if tn, ok := root.Info.Defs[ts.Name].(*types.TypeName); ok {
						add(tn.Type())
					}
				}
			case *ast.FuncDecl:
				if decl.Recv != nil || !decl.Name.IsExported() {
					continue
				}
				if fn, ok := root.Info.Defs[decl.Name].(*types.Func); ok {
					res := fn.Type().(*types.Signature).Results()
					for i := 0; i < res.Len(); i++ {
						add(res.At(i).Type())
					}
				}
			}
		}
	}

	var certs []OpCert
	var diags []Diagnostic
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		pkg := n.Obj().Pkg()
		if strings.HasSuffix(pkg.Path(), "/seqspec") {
			continue // unit-cost sequential specifications, excluded by design
		}
		short := pkg.Name()
		if iface, ok := n.Underlying().(*types.Interface); ok {
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				if !m.Exported() {
					continue
				}
				expr, ok := prog.steps[m]
				if !ok {
					continue // no contract: concrete implementations certify on their own
				}
				poly, err := parseSteps(expr)
				if err != nil {
					poly = polyConst(1)
				}
				certs = append(certs, OpCert{
					Op:  fmt.Sprintf("contract %s.%s.%s", short, n.Obj().Name(), m.Name()),
					Pos: prog.fsetPosition(root, m.Pos()), Poly: poly, Bound: poly.String(),
					Status: BoundTrusted, Basis: fmt.Sprintf("interface contract //wf:steps %s", expr),
				})
			}
			continue
		}
		for i := 0; i < n.NumMethods(); i++ {
			m := n.Method(i)
			if !m.Exported() {
				continue
			}
			pf := prog.FuncOf(m)
			if pf == nil {
				continue
			}
			res := m.Type().(*types.Signature).Results()
			for j := 0; j < res.Len(); j++ {
				add(res.At(j).Type())
			}
			c := eng.funcCost(pf)
			cert := OpCert{
				Op:  fmt.Sprintf("%s.%s.%s", short, n.Obj().Name(), m.Name()),
				Pos: pf.Pkg.Fset.Position(pf.Decl.Pos()), Poly: c.poly,
				Status: c.status, Basis: c.note,
			}
			if c.status == BoundUnbounded {
				cert.Bound = "unbounded"
				diags = append(diags, Diagnostic{
					Pos: cert.Pos, Analyzer: "symbound",
					Message: fmt.Sprintf("no finite symbolic step certificate for %s: %s", cert.Op, c.note),
				})
			} else {
				cert.Bound = c.poly.String()
				if cert.Basis == "" {
					cert.Basis = "machine-derived throughout"
				}
			}
			certs = append(certs, cert)
		}
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Op < certs[j].Op })
	return certs, diags
}

// fsetPosition positions an object's Pos through any package's shared fset.
func (prog *Program) fsetPosition(p *Package, pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
