package wfcheck

import (
	"strings"
	"testing"
)

// TestPolyAlgebra pins the step-polynomial algebra the certifier composes
// bounds with: addition for sequence, multiplication for nesting, termwise
// maximum for either-or dispatch.
func TestPolyAlgebra(t *testing.T) {
	n, k := polyParam("n"), polyParam("k")
	sum := n.Add(k).Add(polyConst(3))
	if sum["n"] != 1 || sum["k"] != 1 || sum[""] != 3 {
		t.Errorf("n + k + 3 = %v", sum)
	}
	prod := sum.Mul(n)
	if prod["n·n"] != 1 || prod["k·n"] != 1 || prod["n"] != 3 {
		t.Errorf("(n + k + 3) * n = %v", prod)
	}
	if got := prod.String(); got != "O(k·n + n·n + n)" {
		t.Errorf("String() = %q, want degree-then-name order", got)
	}
	max := Poly{"n": 2, "": 1}.Max(Poly{"n": 1, "k": 5})
	if max["n"] != 2 || max["k"] != 5 || max[""] != 1 {
		t.Errorf("termwise max = %v", max)
	}
	if got := polyConst(7).String(); got != "O(1)" {
		t.Errorf("constant poly renders %q, want O(1)", got)
	}
}

// TestPolyEval pins the runtime cross-check's half of the contract: Eval
// instantiates every parameter or refuses.
func TestPolyEval(t *testing.T) {
	p := Poly{"k·n": 2, "n": 1, "": 4}
	got, err := p.Eval(map[string]int64{"n": 3, "k": 5})
	if err != nil || got != 2*5*3+3+4 {
		t.Errorf("Eval = %d, %v; want 37", got, err)
	}
	if _, err := p.Eval(map[string]int64{"n": 3}); err == nil {
		t.Error("Eval with a missing parameter did not error")
	}
	if params := p.Params(); strings.Join(params, ",") != "k,n" {
		t.Errorf("Params() = %v, want [k n]", params)
	}
}

// TestParseSteps pins the declared-bound expression language: identifiers,
// non-negative integers, + and * only.
func TestParseSteps(t *testing.T) {
	p, err := parseSteps("2*n + k*(n + 1) + 3")
	if err != nil {
		t.Fatal(err)
	}
	if p["n"] != 2 || p["k·n"] != 1 || p["k"] != 1 || p[""] != 3 {
		t.Errorf("parseSteps composed %v", p)
	}
	for _, bad := range []string{"", "n - 1", "n / 2", "f(n)", "1.5", "-1"} {
		if _, err := parseSteps(bad); err == nil {
			t.Errorf("parseSteps(%q) accepted an expression outside the algebra", bad)
		}
	}
}

// TestSymbolicComposition pins the tentpole on the cross-package fixture:
// symb.Front.Poll runs k rounds (a counted loop against a //wf:param field
// in package symb) of inner.Scanner.Scan (a range over a //wf:len register
// array in package inner), so its certificate must be the product O(k·n) —
// parameters declared in two different packages, composed through the
// whole-program call graph. The inner operation certifies trusted: the
// range's trip count is machine-derived, but the parameter it resolves to
// is the declared //wf:len fact, and declared facts compose as trusted.
func TestSymbolicComposition(t *testing.T) {
	loader, p := loadFixture(t, "symb")
	prog := NewProgram(loader)
	ops, diags := analyzeSymbolic(prog, p)
	if len(diags) != 0 {
		t.Fatalf("symb fixture has symbolic diagnostics: %v", diags)
	}
	byOp := map[string]OpCert{}
	for _, c := range ops {
		byOp[c.Op] = c
	}
	poll, ok := byOp["symb.Front.Poll"]
	if !ok {
		t.Fatalf("no certificate for symb.Front.Poll among %d ops", len(ops))
	}
	if poll.Status == BoundUnbounded {
		t.Fatalf("Poll is unbounded: %s", poll.Basis)
	}
	if poll.Poly["k·n"] < 1 {
		t.Errorf("Poll certified %s, want the cross-package k·n product", poll.Bound)
	}
	scan, ok := byOp["inner.Scanner.Scan"]
	if !ok {
		t.Fatalf("closure did not certify inner.Scanner.Scan; have %v", keysOf(byOp))
	}
	if scan.Status != BoundTrusted {
		t.Errorf("Scan certified %q (%s), want %q: the //wf:len fact is declared, not derived",
			scan.Status, scan.Basis, BoundTrusted)
	}
	if !strings.Contains(scan.Basis, "wf:len") {
		t.Errorf("Scan's basis %q does not name the declared //wf:len fact", scan.Basis)
	}
	if scan.Poly["n"] < 1 {
		t.Errorf("Scan certified %s, want the //wf:len parameter n", scan.Bound)
	}
}

func keysOf(m map[string]OpCert) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
