// Package seqspec defines deterministic sequential objects: the inputs to
// the paper's universal construction (Section 4.1).
//
// Any sequential object whose operations are deterministic and total defines
// eval (state after a sequence of operations) and apply (response of an
// invocation in a state); the universal construction replays logged
// invocations through these functions. Non-deterministic objects are handled
// by choosing a deterministic refinement, as the paper prescribes (e.g. a
// set with a non-deterministic remove becomes remove-minimum).
//
// States are mutable for efficiency, with explicit Clone for the snapshot
// (strongly-wait-free) variant and Key for the linearizability checker's
// memoization.
//
//wf:waitfree
package seqspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is an operation invocation: a kind and its arguments.
type Op struct {
	Kind string
	Args []int64
}

// String renders the op compactly.
func (o Op) String() string {
	parts := make([]string, len(o.Args))
	for i, a := range o.Args {
		parts[i] = strconv.FormatInt(a, 10)
	}
	return o.Kind + "(" + strings.Join(parts, ",") + ")"
}

// Arg returns argument i, or 0 if absent (operations are total; missing
// arguments default rather than fault).
func (o Op) Arg(i int) int64 {
	if i >= len(o.Args) {
		return 0
	}
	return o.Args[i]
}

// Empty is the total-operation response for "nothing there" (deq of an
// empty queue, get of a missing key, ...), per Section 2.2.
const Empty int64 = -1 << 62

// Object is a deterministic sequential object type.
// The //wf:steps 1 contracts below declare the paper's unit-cost model:
// the universal construction's step bounds count sequential-object calls as
// single steps, so an implementation whose Apply or Clone is super-constant
// scales every certified bound by that factor.
type Object interface {
	// Name identifies the type.
	//
	//wf:steps 1
	Name() string
	// Init returns a fresh initial state.
	//
	//wf:steps 1
	Init() State
	// ReadOnly reports whether op never mutates any state: Apply(op) must
	// return the same response and leave the state bit-identical no matter
	// when it runs. The universal construction serves such operations on a
	// read fast path — replaying a decided log prefix without consuming a
	// cons or storing a snapshot — and may apply them to shared,
	// no-longer-cloned states, so a classification that admits a mutating
	// op is a data race, not just a performance bug.
	//
	//wf:steps 1
	ReadOnly(op Op) bool
}

// State is a mutable sequential-object state.
type State interface {
	// Apply executes op, mutating the state and returning the response.
	//
	// Response-publication contract: Apply must be deterministic and total —
	// a pure function of the state *value* and the op, never of the replica
	// identity, iteration order of an unordered container, randomness, or
	// time. The universal construction's helping protocol depends on this:
	// any process that replays a decided log prefix may publish the response
	// it computed into another operation's result slot, and the operation's
	// invoker returns that value as its own. Two replicas replaying the same
	// prefix must therefore compute bit-identical responses and states (the
	// cross-spec determinism test in contract_test.go enforces both).
	//
	//wf:steps 1
	Apply(op Op) int64
	// Clone returns an independent deep copy.
	//
	//wf:steps 1
	Clone() State
	// Key returns a canonical encoding for memoization and equality.
	//
	//wf:steps 1
	Key() string
}

// ApplyAll applies ops to s in order and returns each op's response: the
// batch-execution step of the universal construction's helping protocol,
// where one executor settles a whole decided batch against a single
// reconstructed state. The slice of responses is indexed like ops.
func ApplyAll(s State, ops []Op) []int64 {
	out := make([]int64, len(ops))
	for i, op := range ops {
		out[i] = s.Apply(op)
	}
	return out
}

// --- Register ---

// Register is a single read/write register; write returns the old value.
type Register struct{ InitVal int64 }

// Name implements Object.
func (Register) Name() string { return "register" }

// Init implements Object.
func (r Register) Init() State { s := registerState(r.InitVal); return &s }

// ReadOnly implements Object.
func (Register) ReadOnly(op Op) bool { return op.Kind == "read" }

type registerState int64

func (s *registerState) Apply(op Op) int64 {
	switch op.Kind {
	case "read":
		return int64(*s)
	case "write":
		old := int64(*s)
		*s = registerState(op.Arg(0))
		return old
	}
	panic("seqspec: register: unknown op " + op.Kind)
}

func (s *registerState) Clone() State { c := *s; return &c }
func (s *registerState) Key() string  { return strconv.FormatInt(int64(*s), 10) }

// --- Counter ---

// Counter supports inc, add(d), and get; inc and add return the old value.
type Counter struct{}

// Name implements Object.
func (Counter) Name() string { return "counter" }

// Init implements Object.
func (Counter) Init() State { s := counterState(0); return &s }

// ReadOnly implements Object.
func (Counter) ReadOnly(op Op) bool { return op.Kind == "get" }

type counterState int64

func (s *counterState) Apply(op Op) int64 {
	switch op.Kind {
	case "get":
		return int64(*s)
	case "inc":
		old := int64(*s)
		*s++
		return old
	case "add":
		old := int64(*s)
		*s += counterState(op.Arg(0))
		return old
	}
	panic("seqspec: counter: unknown op " + op.Kind)
}

func (s *counterState) Clone() State { c := *s; return &c }
func (s *counterState) Key() string  { return strconv.FormatInt(int64(*s), 10) }

// --- FIFO queue ---

// Queue is a FIFO queue: enq(v) and a total deq returning Empty when empty.
type Queue struct{}

// Name implements Object.
func (Queue) Name() string { return "queue" }

// Init implements Object.
func (Queue) Init() State { return &queueState{} }

// ReadOnly implements Object.
func (Queue) ReadOnly(op Op) bool { return op.Kind == "peek" || op.Kind == "len" }

type queueState struct{ items []int64 }

func (s *queueState) Apply(op Op) int64 {
	switch op.Kind {
	case "enq":
		s.items = append(s.items, op.Arg(0))
		return 0
	case "deq":
		if len(s.items) == 0 {
			return Empty
		}
		v := s.items[0]
		s.items = append([]int64(nil), s.items[1:]...)
		return v
	case "peek":
		if len(s.items) == 0 {
			return Empty
		}
		return s.items[0]
	case "len":
		return int64(len(s.items))
	}
	panic("seqspec: queue: unknown op " + op.Kind)
}

func (s *queueState) Clone() State {
	return &queueState{items: append([]int64(nil), s.items...)}
}

func (s *queueState) Key() string { return encodeInts(s.items) }

// --- Stack ---

// Stack is a LIFO stack: push(v) and a total pop returning Empty when empty.
type Stack struct{}

// Name implements Object.
func (Stack) Name() string { return "stack" }

// Init implements Object.
func (Stack) Init() State { return &stackState{} }

// ReadOnly implements Object.
func (Stack) ReadOnly(op Op) bool { return op.Kind == "len" }

type stackState struct{ items []int64 }

func (s *stackState) Apply(op Op) int64 {
	switch op.Kind {
	case "push":
		s.items = append(s.items, op.Arg(0))
		return 0
	case "pop":
		if len(s.items) == 0 {
			return Empty
		}
		v := s.items[len(s.items)-1]
		s.items = s.items[:len(s.items)-1]
		return v
	case "len":
		return int64(len(s.items))
	}
	panic("seqspec: stack: unknown op " + op.Kind)
}

func (s *stackState) Clone() State {
	return &stackState{items: append([]int64(nil), s.items...)}
}

func (s *stackState) Key() string { return encodeInts(s.items) }

// --- Set (deterministic refinement: remove-min) ---

// Set is a set of int64 with insert, contains, and the deterministic
// refinement of non-deterministic remove: removeMin (Section 4.1 discusses
// exactly this refinement).
type Set struct{}

// Name implements Object.
func (Set) Name() string { return "set" }

// Init implements Object.
func (Set) Init() State { return &setState{m: make(map[int64]bool)} }

// ReadOnly implements Object.
func (Set) ReadOnly(op Op) bool { return op.Kind == "contains" || op.Kind == "len" }

type setState struct{ m map[int64]bool }

func (s *setState) Apply(op Op) int64 {
	switch op.Kind {
	case "insert":
		v := op.Arg(0)
		if s.m[v] {
			return 0
		}
		s.m[v] = true
		return 1
	case "contains":
		if s.m[op.Arg(0)] {
			return 1
		}
		return 0
	case "removeMin":
		if len(s.m) == 0 {
			return Empty
		}
		min := int64(0)
		started := false
		for v := range s.m {
			if !started || v < min {
				min, started = v, true
			}
		}
		delete(s.m, min)
		return min
	case "len":
		return int64(len(s.m))
	}
	panic("seqspec: set: unknown op " + op.Kind)
}

func (s *setState) Clone() State {
	m := make(map[int64]bool, len(s.m))
	for k := range s.m {
		m[k] = true
	}
	return &setState{m: m}
}

func (s *setState) Key() string {
	vs := make([]int64, 0, len(s.m))
	for v := range s.m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return encodeInts(vs)
}

// --- Priority queue ---

// PQueue is a min-priority queue: insert(v) and a total deleteMin.
type PQueue struct{}

// Name implements Object.
func (PQueue) Name() string { return "pqueue" }

// Init implements Object.
func (PQueue) Init() State { return &pqueueState{} }

// ReadOnly implements Object.
func (PQueue) ReadOnly(op Op) bool { return op.Kind == "min" || op.Kind == "len" }

type pqueueState struct{ items []int64 } // kept sorted ascending

func (s *pqueueState) Apply(op Op) int64 {
	switch op.Kind {
	case "insert":
		v := op.Arg(0)
		i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= v })
		s.items = append(s.items, 0)
		copy(s.items[i+1:], s.items[i:])
		s.items[i] = v
		return 0
	case "deleteMin":
		if len(s.items) == 0 {
			return Empty
		}
		v := s.items[0]
		s.items = append([]int64(nil), s.items[1:]...)
		return v
	case "min":
		if len(s.items) == 0 {
			return Empty
		}
		return s.items[0]
	case "len":
		return int64(len(s.items))
	}
	panic("seqspec: pqueue: unknown op " + op.Kind)
}

func (s *pqueueState) Clone() State {
	return &pqueueState{items: append([]int64(nil), s.items...)}
}

func (s *pqueueState) Key() string { return encodeInts(s.items) }

// --- List (cons cells: fetch-and-cons as a sequential spec) ---

// List is the sequential list object whose fetch-and-cons the universal
// construction bootstraps from: cons prepends and returns the length of the
// list that followed (a compact stand-in for "the list of items that follow
// the new item"); head and nth inspect it.
type List struct{}

// Name implements Object.
func (List) Name() string { return "list" }

// Init implements Object.
func (List) Init() State { return &listState{} }

// ReadOnly implements Object.
func (List) ReadOnly(op Op) bool {
	return op.Kind == "head" || op.Kind == "nth" || op.Kind == "len"
}

type listState struct{ items []int64 } // head first

func (s *listState) Apply(op Op) int64 {
	switch op.Kind {
	case "cons":
		prior := int64(len(s.items))
		s.items = append([]int64{op.Arg(0)}, s.items...)
		return prior
	case "head":
		if len(s.items) == 0 {
			return Empty
		}
		return s.items[0]
	case "nth":
		i := op.Arg(0)
		if i < 0 || i >= int64(len(s.items)) {
			return Empty
		}
		return s.items[i]
	case "len":
		return int64(len(s.items))
	}
	panic("seqspec: list: unknown op " + op.Kind)
}

func (s *listState) Clone() State {
	return &listState{items: append([]int64(nil), s.items...)}
}

func (s *listState) Key() string { return encodeInts(s.items) }

// --- Key-value map ---

// KV is a key-value map: put(k,v) returns the old value or Empty, get(k)
// returns the value or Empty, del(k) returns the old value or Empty.
type KV struct{}

// Name implements Object.
func (KV) Name() string { return "kv" }

// Init implements Object.
func (KV) Init() State { return &kvState{m: make(map[int64]int64)} }

// ReadOnly implements Object.
func (KV) ReadOnly(op Op) bool { return op.Kind == "get" || op.Kind == "len" }

type kvState struct{ m map[int64]int64 }

func (s *kvState) Apply(op Op) int64 {
	switch op.Kind {
	case "put":
		k, v := op.Arg(0), op.Arg(1)
		old, ok := s.m[k]
		s.m[k] = v
		if !ok {
			return Empty
		}
		return old
	case "get":
		if v, ok := s.m[op.Arg(0)]; ok {
			return v
		}
		return Empty
	case "del":
		k := op.Arg(0)
		old, ok := s.m[k]
		if !ok {
			return Empty
		}
		delete(s.m, k)
		return old
	case "len":
		return int64(len(s.m))
	}
	panic("seqspec: kv: unknown op " + op.Kind)
}

func (s *kvState) Clone() State {
	m := make(map[int64]int64, len(s.m))
	for k, v := range s.m {
		m[k] = v
	}
	return &kvState{m: m}
}

func (s *kvState) Key() string {
	ks := make([]int64, 0, len(s.m))
	for k := range s.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	var b strings.Builder
	for _, k := range ks {
		fmt.Fprintf(&b, "%d=%d,", k, s.m[k])
	}
	return b.String()
}

// --- Bank ---

// Bank is a multi-account bank: deposit(a,v), withdraw(a,v) (fails with 0
// if insufficient, returns 1 on success), transfer(a,b,v) (same), and
// balance(a). It exemplifies a multi-word object that is painful to make
// lock-free by hand and trivial under the universal construction.
type Bank struct{ Accounts int }

// Name implements Object.
func (Bank) Name() string { return "bank" }

// Init implements Object.
func (b Bank) Init() State {
	n := b.Accounts
	if n == 0 {
		n = 8
	}
	return &bankState{bal: make([]int64, n)}
}

// ReadOnly implements Object.
func (Bank) ReadOnly(op Op) bool { return op.Kind == "balance" || op.Kind == "total" }

type bankState struct{ bal []int64 }

func (s *bankState) acct(i int64) int {
	n := int64(len(s.bal))
	i %= n
	if i < 0 {
		i += n
	}
	return int(i)
}

func (s *bankState) Apply(op Op) int64 {
	switch op.Kind {
	case "deposit":
		a := s.acct(op.Arg(0))
		s.bal[a] += op.Arg(1)
		return s.bal[a]
	case "withdraw":
		a := s.acct(op.Arg(0))
		v := op.Arg(1)
		if s.bal[a] < v {
			return 0
		}
		s.bal[a] -= v
		return 1
	case "transfer":
		a, b := s.acct(op.Arg(0)), s.acct(op.Arg(1))
		v := op.Arg(2)
		if s.bal[a] < v {
			return 0
		}
		s.bal[a] -= v
		s.bal[b] += v
		return 1
	case "balance":
		return s.bal[s.acct(op.Arg(0))]
	case "total":
		var t int64
		for _, v := range s.bal {
			t += v
		}
		return t
	}
	panic("seqspec: bank: unknown op " + op.Kind)
}

func (s *bankState) Clone() State {
	return &bankState{bal: append([]int64(nil), s.bal...)}
}

func (s *bankState) Key() string { return encodeInts(s.bal) }

func encodeInts(vs []int64) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(',')
	}
	return b.String()
}
