package seqspec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func apply(t *testing.T, s State, kind string, args ...int64) int64 {
	t.Helper()
	return s.Apply(Op{Kind: kind, Args: args})
}

func TestRegister(t *testing.T) {
	s := Register{InitVal: 3}.Init()
	if got := apply(t, s, "read"); got != 3 {
		t.Errorf("read init = %d", got)
	}
	if old := apply(t, s, "write", 9); old != 3 {
		t.Errorf("write returned %d, want old value 3", old)
	}
	if got := apply(t, s, "read"); got != 9 {
		t.Errorf("read = %d", got)
	}
}

func TestCounter(t *testing.T) {
	s := Counter{}.Init()
	apply(t, s, "inc")
	apply(t, s, "add", 5)
	if got := apply(t, s, "get"); got != 6 {
		t.Errorf("get = %d, want 6", got)
	}
}

func TestQueueSpec(t *testing.T) {
	s := Queue{}.Init()
	if got := apply(t, s, "deq"); got != Empty {
		t.Errorf("empty deq = %d", got)
	}
	apply(t, s, "enq", 1)
	apply(t, s, "enq", 2)
	if got := apply(t, s, "peek"); got != 1 {
		t.Errorf("peek = %d", got)
	}
	if got := apply(t, s, "len"); got != 2 {
		t.Errorf("len = %d", got)
	}
	if got := apply(t, s, "deq"); got != 1 {
		t.Errorf("deq = %d", got)
	}
}

func TestStackSpec(t *testing.T) {
	s := Stack{}.Init()
	apply(t, s, "push", 1)
	apply(t, s, "push", 2)
	if got := apply(t, s, "pop"); got != 2 {
		t.Errorf("pop = %d, want LIFO", got)
	}
}

func TestSetSpec(t *testing.T) {
	s := Set{}.Init()
	if got := apply(t, s, "insert", 4); got != 1 {
		t.Errorf("fresh insert = %d", got)
	}
	if got := apply(t, s, "insert", 4); got != 0 {
		t.Errorf("duplicate insert = %d", got)
	}
	apply(t, s, "insert", 2)
	apply(t, s, "insert", 9)
	if got := apply(t, s, "removeMin"); got != 2 {
		t.Errorf("removeMin = %d (deterministic refinement)", got)
	}
	if got := apply(t, s, "contains", 2); got != 0 {
		t.Errorf("contains removed = %d", got)
	}
}

func TestPQueueSpec(t *testing.T) {
	s := PQueue{}.Init()
	for _, v := range []int64{5, 1, 3} {
		apply(t, s, "insert", v)
	}
	for _, want := range []int64{1, 3, 5} {
		if got := apply(t, s, "deleteMin"); got != want {
			t.Errorf("deleteMin = %d, want %d", got, want)
		}
	}
	if got := apply(t, s, "deleteMin"); got != Empty {
		t.Errorf("empty deleteMin = %d", got)
	}
}

func TestListSpec(t *testing.T) {
	s := List{}.Init()
	if got := apply(t, s, "cons", 1); got != 0 {
		t.Errorf("first cons returned %d, want 0 followers", got)
	}
	if got := apply(t, s, "cons", 2); got != 1 {
		t.Errorf("second cons returned %d, want 1 follower", got)
	}
	if got := apply(t, s, "head"); got != 2 {
		t.Errorf("head = %d", got)
	}
	if got := apply(t, s, "nth", 1); got != 1 {
		t.Errorf("nth(1) = %d", got)
	}
	if got := apply(t, s, "nth", 5); got != Empty {
		t.Errorf("nth out of range = %d", got)
	}
}

func TestKVSpec(t *testing.T) {
	s := KV{}.Init()
	if got := apply(t, s, "get", 1); got != Empty {
		t.Errorf("missing get = %d", got)
	}
	if got := apply(t, s, "put", 1, 10); got != Empty {
		t.Errorf("fresh put = %d", got)
	}
	if got := apply(t, s, "put", 1, 20); got != 10 {
		t.Errorf("overwrite put = %d", got)
	}
	if got := apply(t, s, "del", 1); got != 20 {
		t.Errorf("del = %d", got)
	}
	if got := apply(t, s, "del", 1); got != Empty {
		t.Errorf("double del = %d", got)
	}
}

func TestBankSpec(t *testing.T) {
	s := Bank{Accounts: 3}.Init()
	apply(t, s, "deposit", 0, 100)
	if got := apply(t, s, "withdraw", 0, 150); got != 0 {
		t.Errorf("overdraft allowed: %d", got)
	}
	if got := apply(t, s, "transfer", 0, 1, 60); got != 1 {
		t.Errorf("transfer failed: %d", got)
	}
	if got := apply(t, s, "balance", 1); got != 60 {
		t.Errorf("balance = %d", got)
	}
	if got := apply(t, s, "total"); got != 100 {
		t.Errorf("total = %d (money not conserved)", got)
	}
}

// TestCloneIndependence: mutations after Clone must not leak into the
// original (the snapshot refinement depends on this).
func TestCloneIndependence(t *testing.T) {
	objects := []Object{
		Register{}, Counter{}, Queue{}, Stack{}, Set{}, PQueue{}, KV{},
		Bank{Accounts: 4}, List{},
	}
	first := map[string]Op{
		"register": {Kind: "write", Args: []int64{5}},
		"counter":  {Kind: "inc"},
		"queue":    {Kind: "enq", Args: []int64{5}},
		"stack":    {Kind: "push", Args: []int64{5}},
		"set":      {Kind: "insert", Args: []int64{5}},
		"pqueue":   {Kind: "insert", Args: []int64{5}},
		"kv":       {Kind: "put", Args: []int64{5, 5}},
		"bank":     {Kind: "deposit", Args: []int64{0, 5}},
		"list":     {Kind: "cons", Args: []int64{5}},
	}
	second := map[string]Op{
		"register": {Kind: "write", Args: []int64{6}},
		"counter":  {Kind: "inc"},
		"queue":    {Kind: "enq", Args: []int64{6}},
		"stack":    {Kind: "push", Args: []int64{6}},
		"set":      {Kind: "insert", Args: []int64{6}},
		"pqueue":   {Kind: "insert", Args: []int64{6}},
		"kv":       {Kind: "put", Args: []int64{6, 6}},
		"bank":     {Kind: "deposit", Args: []int64{1, 6}},
		"list":     {Kind: "cons", Args: []int64{6}},
	}
	for _, obj := range objects {
		s := obj.Init()
		s.Apply(first[obj.Name()])
		before := s.Key()
		c := s.Clone()
		c.Apply(second[obj.Name()])
		if s.Key() != before {
			t.Errorf("%s: mutating a clone changed the original", obj.Name())
		}
		if c.Key() == before {
			t.Errorf("%s: mutator had no effect on the clone", obj.Name())
		}
	}
}

// TestKeyDeterminism: equal histories yield equal keys (Key is canonical),
// via testing/quick over random op sequences applied to two fresh states.
func TestKeyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		obj := Set{}
		a, b := obj.Init(), obj.Init()
		for i := 0; i < 30; i++ {
			op := Op{
				Kind: []string{"insert", "removeMin", "contains"}[rng.Intn(3)],
				Args: []int64{rng.Int63n(8)},
			}
			a.Apply(op)
			b.Apply(op)
		}
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOpArgDefaults: missing arguments read as zero, keeping operations
// total.
func TestOpArgDefaults(t *testing.T) {
	op := Op{Kind: "x", Args: []int64{7}}
	if op.Arg(0) != 7 || op.Arg(1) != 0 || op.Arg(5) != 0 {
		t.Errorf("Arg defaults wrong: %d %d %d", op.Arg(0), op.Arg(1), op.Arg(5))
	}
	if s := op.String(); s != "x(7)" {
		t.Errorf("String = %q", s)
	}
}
