package seqspec

import (
	"strconv"
	"strings"
	"testing"
)

// specContract drives the cross-spec ReadOnly contract test: setup ops
// build a non-trivial state, probes are operations the spec classifies as
// ReadOnly (including out-of-range and missing-key probes, since ReadOnly
// must hold for every argument, not just the happy path).
type specContract struct {
	obj    Object
	setup  []Op
	probes []Op
}

var contracts = []specContract{
	{Register{InitVal: 3},
		[]Op{{Kind: "write", Args: []int64{7}}},
		[]Op{{Kind: "read"}}},
	{Counter{},
		[]Op{{Kind: "inc"}, {Kind: "add", Args: []int64{5}}},
		[]Op{{Kind: "get"}}},
	{Queue{},
		[]Op{{Kind: "enq", Args: []int64{1}}, {Kind: "enq", Args: []int64{2}}},
		[]Op{{Kind: "peek"}, {Kind: "len"}}},
	{Stack{},
		[]Op{{Kind: "push", Args: []int64{1}}, {Kind: "push", Args: []int64{2}}},
		[]Op{{Kind: "len"}}},
	{Set{},
		[]Op{{Kind: "insert", Args: []int64{3}}, {Kind: "insert", Args: []int64{1}}},
		[]Op{{Kind: "contains", Args: []int64{3}}, {Kind: "contains", Args: []int64{99}}, {Kind: "len"}}},
	{PQueue{},
		[]Op{{Kind: "insert", Args: []int64{5}}, {Kind: "insert", Args: []int64{2}}},
		[]Op{{Kind: "min"}, {Kind: "len"}}},
	{List{},
		[]Op{{Kind: "cons", Args: []int64{1}}, {Kind: "cons", Args: []int64{2}}},
		[]Op{{Kind: "head"}, {Kind: "nth", Args: []int64{1}}, {Kind: "nth", Args: []int64{5}}, {Kind: "len"}}},
	{KV{},
		[]Op{{Kind: "put", Args: []int64{1, 10}}, {Kind: "put", Args: []int64{2, 20}}},
		[]Op{{Kind: "get", Args: []int64{1}}, {Kind: "get", Args: []int64{9}}, {Kind: "len"}}},
	{Bank{Accounts: 4},
		[]Op{{Kind: "deposit", Args: []int64{0, 10}}, {Kind: "deposit", Args: []int64{1, 5}}},
		[]Op{{Kind: "balance", Args: []int64{0}}, {Kind: "balance", Args: []int64{9}}, {Kind: "total"}}},
}

// TestReadOnlyContract: for every spec and every ReadOnly operation, Apply
// must leave the state bit-identical (witnessed by Key) and respond
// deterministically, on both the empty initial state and a populated one.
// This is the contract the universal construction's read fast path leans
// on: ReadOnly ops are applied to shared, no-longer-cloned cached states,
// so a violation here is a data race there.
func TestReadOnlyContract(t *testing.T) {
	if len(contracts) != 9 {
		t.Fatalf("contract table covers %d specs, want all 9", len(contracts))
	}
	for _, c := range contracts {
		c := c
		t.Run(c.obj.Name(), func(t *testing.T) {
			states := map[string]State{"empty": c.obj.Init()}
			populated := c.obj.Init()
			for _, op := range c.setup {
				populated.Apply(op)
			}
			states["populated"] = populated
			for label, s := range states {
				for _, probe := range c.probes {
					if !c.obj.ReadOnly(probe) {
						t.Errorf("%s: probe %v is not classified ReadOnly", label, probe)
						continue
					}
					before := s.Key()
					r1 := s.Apply(probe)
					if after := s.Key(); after != before {
						t.Errorf("%s: ReadOnly %v mutated state: Key %q -> %q", label, probe, before, after)
					}
					if r2 := s.Apply(probe); r2 != r1 {
						t.Errorf("%s: ReadOnly %v not deterministic: %d then %d", label, probe, r1, r2)
					}
				}
			}
			// No mutating op may be classified ReadOnly: every setup op must
			// be on the write path.
			for _, op := range c.setup {
				if c.obj.ReadOnly(op) {
					t.Errorf("mutating op %v classified ReadOnly", op)
				}
			}
		})
	}
}

// opGens draws pseudo-random operations per spec, covering every op kind
// including the mutating ones, for the determinism contract test.
var opGens = map[string]func(r uint64) Op{
	"register": pick("read;write 1"),
	"counter":  pick("get;inc;add 1"),
	"queue":    pick("enq 1;deq;peek;len"),
	"stack":    pick("push 1;pop;len"),
	"set":      pick("insert 1;contains 1;removeMin;len"),
	"pqueue":   pick("insert 1;deleteMin;min;len"),
	"list":     pick("cons 1;head;nth 1;len"),
	"kv":       pick("put 2;get 1;del 1;len"),
	"bank":     pick("deposit 2;withdraw 2;transfer 3;balance 1;total"),
}

// pick parses "kind argc;kind argc;..." into a generator that chooses a
// kind and fills its arguments from the random word.
func pick(table string) func(r uint64) Op {
	type shape struct {
		kind string
		argc int
	}
	var shapes []shape
	for _, f := range strings.Split(table, ";") {
		parts := strings.Fields(f)
		s := shape{kind: parts[0]}
		if len(parts) > 1 {
			s.argc, _ = strconv.Atoi(parts[1])
		}
		shapes = append(shapes, s)
	}
	return func(r uint64) Op {
		s := shapes[r%uint64(len(shapes))]
		op := Op{Kind: s.kind}
		for i := 0; i < s.argc; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			op.Args = append(op.Args, int64((r>>33)%16))
		}
		return op
	}
}

// TestApplyDeterminismContract is the response-publication contract of the
// universal construction's helping protocol: two replicas that apply the
// same operation sequence from the same initial state must produce
// bit-identical responses and states, so one process may publish another's
// response. Checked on independent Init replicas and on a mid-sequence
// Clone for every spec.
func TestApplyDeterminismContract(t *testing.T) {
	if len(opGens) != len(contracts) {
		t.Fatalf("opGens covers %d specs, contract table %d", len(opGens), len(contracts))
	}
	for _, c := range contracts {
		c := c
		t.Run(c.obj.Name(), func(t *testing.T) {
			gen := opGens[c.obj.Name()]
			if gen == nil {
				t.Fatalf("no op generator for %s", c.obj.Name())
			}
			const nops = 200
			ops := make([]Op, nops)
			r := uint64(0x9e3779b97f4a7c15)
			for i := range ops {
				r = r*6364136223846793005 + 1442695040888963407
				ops[i] = gen(r >> 30)
			}
			a, b := c.obj.Init(), c.obj.Init()
			ra := ApplyAll(a, ops[:nops/2])
			rb := ApplyAll(b, ops[:nops/2])
			// A clone taken mid-sequence is a third replica: the snapshot
			// path of the batched executor.
			cl := a.Clone()
			ra = append(ra, ApplyAll(a, ops[nops/2:])...)
			rb = append(rb, ApplyAll(b, ops[nops/2:])...)
			rc := ApplyAll(cl, ops[nops/2:])
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("op %d %v: replica responses diverge: %d vs %d", i, ops[i], ra[i], rb[i])
				}
			}
			for i, v := range rc {
				if v != ra[nops/2+i] {
					t.Fatalf("op %d %v: clone response diverges: %d vs %d", nops/2+i, ops[nops/2+i], v, ra[nops/2+i])
				}
			}
			if a.Key() != b.Key() || a.Key() != cl.Key() {
				t.Fatalf("final states diverge: %q / %q / %q", a.Key(), b.Key(), cl.Key())
			}
		})
	}
}

// TestStackPopCloneIndependence pins the regression the pop truncation fix
// guards: popping and re-pushing on a state must never leak through to a
// clone taken before the pop, and pop itself must keep LIFO semantics.
func TestStackPopCloneIndependence(t *testing.T) {
	s := Stack{}.Init()
	s.Apply(Op{Kind: "push", Args: []int64{1}})
	s.Apply(Op{Kind: "push", Args: []int64{2}})
	c := s.Clone()
	if v := s.Apply(Op{Kind: "pop"}); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	s.Apply(Op{Kind: "push", Args: []int64{99}})
	if got, want := c.Key(), "1,2,"; got != want {
		t.Errorf("clone disturbed by pop+push on the original: Key = %q, want %q", got, want)
	}
	if v := c.Apply(Op{Kind: "pop"}); v != 2 {
		t.Errorf("clone pop = %d, want 2", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != 99 {
		t.Errorf("original pop = %d, want 99", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != 1 {
		t.Errorf("original pop = %d, want 1", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != Empty {
		t.Errorf("pop on empty = %d, want Empty", v)
	}
}
