package seqspec

import "testing"

// specContract drives the cross-spec ReadOnly contract test: setup ops
// build a non-trivial state, probes are operations the spec classifies as
// ReadOnly (including out-of-range and missing-key probes, since ReadOnly
// must hold for every argument, not just the happy path).
type specContract struct {
	obj    Object
	setup  []Op
	probes []Op
}

var contracts = []specContract{
	{Register{InitVal: 3},
		[]Op{{Kind: "write", Args: []int64{7}}},
		[]Op{{Kind: "read"}}},
	{Counter{},
		[]Op{{Kind: "inc"}, {Kind: "add", Args: []int64{5}}},
		[]Op{{Kind: "get"}}},
	{Queue{},
		[]Op{{Kind: "enq", Args: []int64{1}}, {Kind: "enq", Args: []int64{2}}},
		[]Op{{Kind: "peek"}, {Kind: "len"}}},
	{Stack{},
		[]Op{{Kind: "push", Args: []int64{1}}, {Kind: "push", Args: []int64{2}}},
		[]Op{{Kind: "len"}}},
	{Set{},
		[]Op{{Kind: "insert", Args: []int64{3}}, {Kind: "insert", Args: []int64{1}}},
		[]Op{{Kind: "contains", Args: []int64{3}}, {Kind: "contains", Args: []int64{99}}, {Kind: "len"}}},
	{PQueue{},
		[]Op{{Kind: "insert", Args: []int64{5}}, {Kind: "insert", Args: []int64{2}}},
		[]Op{{Kind: "min"}, {Kind: "len"}}},
	{List{},
		[]Op{{Kind: "cons", Args: []int64{1}}, {Kind: "cons", Args: []int64{2}}},
		[]Op{{Kind: "head"}, {Kind: "nth", Args: []int64{1}}, {Kind: "nth", Args: []int64{5}}, {Kind: "len"}}},
	{KV{},
		[]Op{{Kind: "put", Args: []int64{1, 10}}, {Kind: "put", Args: []int64{2, 20}}},
		[]Op{{Kind: "get", Args: []int64{1}}, {Kind: "get", Args: []int64{9}}, {Kind: "len"}}},
	{Bank{Accounts: 4},
		[]Op{{Kind: "deposit", Args: []int64{0, 10}}, {Kind: "deposit", Args: []int64{1, 5}}},
		[]Op{{Kind: "balance", Args: []int64{0}}, {Kind: "balance", Args: []int64{9}}, {Kind: "total"}}},
}

// TestReadOnlyContract: for every spec and every ReadOnly operation, Apply
// must leave the state bit-identical (witnessed by Key) and respond
// deterministically, on both the empty initial state and a populated one.
// This is the contract the universal construction's read fast path leans
// on: ReadOnly ops are applied to shared, no-longer-cloned cached states,
// so a violation here is a data race there.
func TestReadOnlyContract(t *testing.T) {
	if len(contracts) != 9 {
		t.Fatalf("contract table covers %d specs, want all 9", len(contracts))
	}
	for _, c := range contracts {
		c := c
		t.Run(c.obj.Name(), func(t *testing.T) {
			states := map[string]State{"empty": c.obj.Init()}
			populated := c.obj.Init()
			for _, op := range c.setup {
				populated.Apply(op)
			}
			states["populated"] = populated
			for label, s := range states {
				for _, probe := range c.probes {
					if !c.obj.ReadOnly(probe) {
						t.Errorf("%s: probe %v is not classified ReadOnly", label, probe)
						continue
					}
					before := s.Key()
					r1 := s.Apply(probe)
					if after := s.Key(); after != before {
						t.Errorf("%s: ReadOnly %v mutated state: Key %q -> %q", label, probe, before, after)
					}
					if r2 := s.Apply(probe); r2 != r1 {
						t.Errorf("%s: ReadOnly %v not deterministic: %d then %d", label, probe, r1, r2)
					}
				}
			}
			// No mutating op may be classified ReadOnly: every setup op must
			// be on the write path.
			for _, op := range c.setup {
				if c.obj.ReadOnly(op) {
					t.Errorf("mutating op %v classified ReadOnly", op)
				}
			}
		})
	}
}

// TestStackPopCloneIndependence pins the regression the pop truncation fix
// guards: popping and re-pushing on a state must never leak through to a
// clone taken before the pop, and pop itself must keep LIFO semantics.
func TestStackPopCloneIndependence(t *testing.T) {
	s := Stack{}.Init()
	s.Apply(Op{Kind: "push", Args: []int64{1}})
	s.Apply(Op{Kind: "push", Args: []int64{2}})
	c := s.Clone()
	if v := s.Apply(Op{Kind: "pop"}); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	s.Apply(Op{Kind: "push", Args: []int64{99}})
	if got, want := c.Key(), "1,2,"; got != want {
		t.Errorf("clone disturbed by pop+push on the original: Key = %q, want %q", got, want)
	}
	if v := c.Apply(Op{Kind: "pop"}); v != 2 {
		t.Errorf("clone pop = %d, want 2", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != 99 {
		t.Errorf("original pop = %d, want 99", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != 1 {
		t.Errorf("original pop = %d, want 1", v)
	}
	if v := s.Apply(Op{Kind: "pop"}); v != Empty {
		t.Errorf("pop on empty = %d, want Empty", v)
	}
}
