package model

import (
	"fmt"
	"strconv"
)

// RMWFn is a read-modify-write function family in the sense of Section 3.2:
// RMW(r, f) atomically replaces register r's value v with Apply(v, a, b) and
// returns v. The a and b parameters carry per-invocation operands (for
// example the swapped-in value, the fetch-and-add addend, or the
// compare-and-swap pair); parameterless functions ignore them.
type RMWFn struct {
	// Name identifies the function family ("test-and-set", "swap", ...).
	Name string
	// Apply computes the new register value from the current one.
	Apply func(cur, a, b Value) Value
	// Operands lists the operand vectors the synthesizer may supply, one
	// {a, b} pair per menu entry. Parameterless families list {None, None}.
	Operands [][2]Value
}

// Standard read-modify-write families over small domains. Read is the
// trivial (identity) family; Write is the constant family. Together with
// TestAndSet, SwapRMW and FetchAndAdd they form an interfering set
// (Theorem 6); CompareAndSwap does not interfere and is universal
// (Theorem 7).
var (
	// TestAndSet sets the register to 1 and returns the old value.
	TestAndSet = RMWFn{
		Name:     "test-and-set",
		Apply:    func(cur, _, _ Value) Value { return 1 },
		Operands: [][2]Value{{None, None}},
	}
	// SwapRMW stores operand a and returns the old value.
	SwapRMW = RMWFn{
		Name:     "swap",
		Apply:    func(_, a, _ Value) Value { return a },
		Operands: [][2]Value{{0, None}, {1, None}, {2, None}},
	}
	// FetchAndAdd adds operand a and returns the old value.
	FetchAndAdd = RMWFn{
		Name:     "fetch-and-add",
		Apply:    func(cur, a, _ Value) Value { return cur + a },
		Operands: [][2]Value{{1, None}, {2, None}},
	}
	// CompareAndSwap stores b if the current value equals a, and returns
	// the old value either way.
	CompareAndSwap = RMWFn{
		Name: "compare-and-swap",
		Apply: func(cur, a, b Value) Value {
			if cur == a {
				return b
			}
			return cur
		},
		Operands: [][2]Value{{None, 0}, {None, 1}, {0, 1}, {1, 0}},
	}
)

// Memory is the shared-memory model object: a fixed vector of registers
// supporting (configurably) plain reads and writes, read-modify-write
// families, the memory-to-memory move and swap of Section 3.5, and the
// atomic m-register assignment of Section 3.6.
//
// Operations:
//
//	read(i)          -> value of register i
//	write(i,v)       -> None; sets register i to v
//	rmw(i,f,k)       -> old value; applies family f with operand row k
//	move(i,j)        -> None; register j := register i, atomically
//	swapm(i,j)       -> None; exchanges registers i and j, atomically
//	assign(s,v)      -> None; sets every register in assignment set s to v
type Memory struct {
	name string
	init []Value
	fns  []RMWFn
	// assignSets are the register index sets available to the assign op.
	assignSets [][]int
	// menuValues bounds the value domain offered to the synthesizer.
	menuValues []Value
	allowRW    bool
	allowM2M   bool
}

// MemoryOption configures a Memory.
type MemoryOption func(*Memory)

// WithRMW makes the given read-modify-write families available.
func WithRMW(fns ...RMWFn) MemoryOption {
	return func(m *Memory) { m.fns = append(m.fns, fns...) }
}

// WithAssignSets makes atomic multi-register assignment available on the
// given index sets.
func WithAssignSets(sets ...[]int) MemoryOption {
	return func(m *Memory) { m.assignSets = append(m.assignSets, sets...) }
}

// WithM2M makes memory-to-memory move and swap available.
func WithM2M() MemoryOption {
	return func(m *Memory) { m.allowM2M = true }
}

// WithoutRW removes plain read/write from the operation menu (reads remain
// available to protocols that invoke them explicitly; this only affects the
// synthesizer's menu).
func WithoutRW() MemoryOption {
	return func(m *Memory) { m.allowRW = false }
}

// WithMenuValues sets the value domain the synthesizer may write.
func WithMenuValues(vs ...Value) MemoryOption {
	return func(m *Memory) { m.menuValues = vs }
}

// NewMemory builds a Memory with the given name and initial register
// contents. By default only read and write are enabled.
func NewMemory(name string, init []Value, opts ...MemoryOption) *Memory {
	m := &Memory{
		name:       name,
		init:       append([]Value(nil), init...),
		menuValues: []Value{0, 1},
		allowRW:    true,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Name implements Object.
func (m *Memory) Name() string { return m.name }

// Size returns the number of registers.
func (m *Memory) Size() int { return len(m.init) }

// Init implements Object.
func (m *Memory) Init() string { return EncodeValues(m.init) }

// Apply implements Object.
func (m *Memory) Apply(state string, op Op) (string, Value) {
	regs := DecodeValues(state)
	resp := None
	switch op.Kind {
	case "read":
		resp = regs[op.A]
	case "write":
		regs[op.A] = op.B
	case "rmw":
		f := m.fns[op.B]
		old := regs[op.A]
		var a, b Value = None, None
		if op.C != None {
			row := f.Operands[op.C]
			a, b = row[0], row[1]
		}
		regs[op.A] = f.Apply(old, a, b)
		resp = old
	case "move":
		regs[op.B] = regs[op.A]
	case "swapm":
		regs[op.A], regs[op.B] = regs[op.B], regs[op.A]
	case "assign":
		for _, idx := range m.assignSets[op.A] {
			regs[idx] = op.B
		}
	default:
		panic(fmt.Sprintf("model: memory %q: unknown op kind %q", m.name, op.Kind))
	}
	return EncodeValues(regs), resp
}

// FnIndex returns the menu index of the named RMW family, for protocols that
// build rmw ops directly.
func (m *Memory) FnIndex(name string) Value {
	for i, f := range m.fns {
		if f.Name == name {
			return Value(i)
		}
	}
	panic("model: memory " + m.name + ": no RMW family " + name)
}

// Ops implements Object: the finite menu offered to the synthesizer.
func (m *Memory) Ops(n, pid int) []Op {
	var ops []Op
	for i := range m.init {
		r := Value(i)
		if m.allowRW {
			ops = append(ops, Op{Kind: "read", A: r, B: None, C: None})
			for _, v := range m.menuValues {
				ops = append(ops, Op{Kind: "write", A: r, B: v, C: None})
			}
		}
		for fi, f := range m.fns {
			for oi := range f.Operands {
				ops = append(ops, Op{Kind: "rmw", A: r, B: Value(fi), C: Value(oi)})
			}
		}
	}
	if m.allowM2M {
		for i := range m.init {
			for j := range m.init {
				if i == j {
					continue
				}
				ops = append(ops,
					Op{Kind: "move", A: Value(i), B: Value(j), C: None},
					Op{Kind: "swapm", A: Value(i), B: Value(j), C: None})
			}
		}
	}
	for s := range m.assignSets {
		for _, v := range m.menuValues {
			ops = append(ops, Op{Kind: "assign", A: Value(s), B: v, C: None})
		}
	}
	return ops
}

// RegisterName renders register index i for reports.
func RegisterName(i Value) string { return "r" + strconv.Itoa(int(i)) }
