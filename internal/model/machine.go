package model

import (
	"strconv"
	"strings"
)

// Machine is a convenience for writing protocols whose local state is a
// program counter plus a fixed-size vector of local variables. It implements
// Protocol; concrete protocols supply three functions.
//
// The encoded local state is "pc:v0,v1,...". The Halted program counter is
// reserved; Step must not be called on a halted machine (the checker stops
// scheduling a process once it decides).
type Machine struct {
	// ProtoName identifies the protocol in reports.
	ProtoName string
	// N is the number of processes.
	N int
	// StartVars returns pid's initial local variable vector.
	StartVars func(pid int, input Value) []Value
	// OnStep returns pid's next action at the given program counter.
	OnStep func(pid, pc int, vars []Value) Action
	// OnResp consumes the response to the invocation issued at pc and
	// returns the next program counter and variable vector. It may mutate
	// and return vars.
	OnResp func(pid, pc int, vars []Value, resp Value) (int, []Value)
}

var _ Protocol = (*Machine)(nil)

// Name implements Protocol.
func (m *Machine) Name() string { return m.ProtoName }

// Procs implements Protocol.
func (m *Machine) Procs() int { return m.N }

// Init implements Protocol.
func (m *Machine) Init(pid int, input Value) string {
	return encodeLocal(0, m.StartVars(pid, input))
}

// Step implements Protocol.
func (m *Machine) Step(pid int, local string) Action {
	pc, vars := decodeLocal(local)
	return m.OnStep(pid, pc, vars)
}

// Next implements Protocol.
func (m *Machine) Next(pid int, local string, resp Value) string {
	pc, vars := decodeLocal(local)
	pc2, vars2 := m.OnResp(pid, pc, vars, resp)
	return encodeLocal(pc2, vars2)
}

func encodeLocal(pc int, vars []Value) string {
	return strconv.Itoa(pc) + ":" + EncodeValues(vars)
}

func decodeLocal(s string) (int, []Value) {
	i := strings.IndexByte(s, ':')
	pc, err := strconv.Atoi(s[:i])
	if err != nil {
		panic("model: corrupt local state encoding: " + s)
	}
	return pc, DecodeValues(s[i+1:])
}
