package model

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		vs := make([]Value, len(raw))
		for i, r := range raw {
			vs[i] = Value(r)
		}
		got := DecodeValues(EncodeValues(vs))
		if len(got) != len(vs) {
			return len(vs) == 0 && got == nil
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Op{Kind: "read", A: 1, B: None, C: None}, "read(1)"},
		{Op{Kind: "write", A: 0, B: 5, C: None}, "write(0,5)"},
		{Op{Kind: "rmw", A: 0, B: 1, C: 2}, "rmw(0,1,2)"},
		{Op{Kind: "deq", A: None, B: None, C: None}, "deq()"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory("m", []Value{1, 2})
	s := m.Init()
	s, resp := m.Apply(s, Op{Kind: "read", A: 0, B: None, C: None})
	if resp != 1 {
		t.Errorf("read = %d", resp)
	}
	s, _ = m.Apply(s, Op{Kind: "write", A: 1, B: 9, C: None})
	_, resp = m.Apply(s, Op{Kind: "read", A: 1, B: None, C: None})
	if resp != 9 {
		t.Errorf("read after write = %d", resp)
	}
}

func TestMemoryRMW(t *testing.T) {
	m := NewMemory("m", []Value{0}, WithRMW(TestAndSet, FetchAndAdd))
	s := m.Init()
	s, old := m.Apply(s, Op{Kind: "rmw", A: 0, B: m.FnIndex("test-and-set"), C: 0})
	if old != 0 {
		t.Errorf("tas old = %d", old)
	}
	s, old = m.Apply(s, Op{Kind: "rmw", A: 0, B: m.FnIndex("fetch-and-add"), C: 0})
	if old != 1 {
		t.Errorf("faa old = %d", old)
	}
	_, cur := m.Apply(s, Op{Kind: "read", A: 0, B: None, C: None})
	if cur != 2 {
		t.Errorf("final = %d", cur)
	}
}

func TestMemoryM2M(t *testing.T) {
	m := NewMemory("m", []Value{1, 2}, WithM2M())
	s := m.Init()
	s, _ = m.Apply(s, Op{Kind: "swapm", A: 0, B: 1, C: None})
	if s != "2,1" {
		t.Errorf("after swapm: %q", s)
	}
	s, _ = m.Apply(s, Op{Kind: "move", A: 0, B: 1, C: None})
	if s != "2,2" {
		t.Errorf("after move: %q", s)
	}
}

func TestMemoryAssign(t *testing.T) {
	m := NewMemory("m", []Value{0, 0, 0}, WithAssignSets([]int{0, 2}))
	s := m.Init()
	s, _ = m.Apply(s, Op{Kind: "assign", A: 0, B: 7, C: None})
	if s != "7,0,7" {
		t.Errorf("after assign: %q", s)
	}
}

func TestQueueModel(t *testing.T) {
	q := NewQueue("q", []Value{5})
	s := q.Init()
	s, _ = q.Apply(s, Op{Kind: "enq", A: 6, B: None, C: None})
	s, head := q.Apply(s, Op{Kind: "deq", A: None, B: None, C: None})
	if head != 5 {
		t.Errorf("deq = %d", head)
	}
	s, head = q.Apply(s, Op{Kind: "deq", A: None, B: None, C: None})
	if head != 6 {
		t.Errorf("deq = %d", head)
	}
	_, head = q.Apply(s, Op{Kind: "deq", A: None, B: None, C: None})
	if head != None {
		t.Errorf("empty deq = %d", head)
	}
}

func TestAugmentedQueueModel(t *testing.T) {
	q := NewAugmentedQueue("q", nil)
	s := q.Init()
	if _, v := q.Apply(s, Op{Kind: "peek", A: None, B: None, C: None}); v != None {
		t.Errorf("empty peek = %d", v)
	}
	s, _ = q.Apply(s, Op{Kind: "enq", A: 3, B: None, C: None})
	s2, v := q.Apply(s, Op{Kind: "peek", A: None, B: None, C: None})
	if v != 3 || s2 != s {
		t.Errorf("peek = %d, state %q -> %q", v, s, s2)
	}
}

func TestStackModel(t *testing.T) {
	st := NewStack("s", nil)
	s := st.Init()
	s, _ = st.Apply(s, Op{Kind: "push", A: 1, B: None, C: None})
	s, _ = st.Apply(s, Op{Kind: "push", A: 2, B: None, C: None})
	_, top := st.Apply(s, Op{Kind: "pop", A: None, B: None, C: None})
	if top != 2 {
		t.Errorf("pop = %d", top)
	}
}

func TestCompositeRouting(t *testing.T) {
	q := NewQueue("q", nil)
	m := NewMemory("m", []Value{0})
	c := NewComposite("c", q, m)
	s := c.Init()
	s, _ = c.Apply(s, c.At(0, Op{Kind: "enq", A: 4, B: None, C: None}))
	s, _ = c.Apply(s, c.At(1, Op{Kind: "write", A: 0, B: 8, C: None}))
	_, v := c.Apply(s, c.At(0, Op{Kind: "deq", A: None, B: None, C: None}))
	if v != 4 {
		t.Errorf("routed deq = %d", v)
	}
	_, v = c.Apply(s, c.At(1, Op{Kind: "read", A: 0, B: None, C: None}))
	if v != 8 {
		t.Errorf("routed read = %d", v)
	}
}

func TestChannelsModel(t *testing.T) {
	ch := NewChannels("ch", 2)
	s := ch.Init()
	if _, v := ch.Apply(s, ch.Recv(1, 0)); v != None {
		t.Errorf("empty recv = %d", v)
	}
	s, _ = ch.Apply(s, ch.Send(0, 1, 7))
	s, _ = ch.Apply(s, ch.Send(0, 1, 8))
	s, v := ch.Apply(s, ch.Recv(1, 0))
	if v != 7 {
		t.Errorf("recv = %d (FIFO)", v)
	}
	// Direction matters: nothing flows 1 -> 0.
	if _, v := ch.Apply(s, ch.Recv(0, 1)); v != None {
		t.Errorf("reverse recv = %d", v)
	}
}

func TestBroadcastModel(t *testing.T) {
	bc := NewBroadcast("bc", 2)
	s := bc.Init()
	s, _ = bc.Apply(s, bc.Bcast(0, 5))
	s, _ = bc.Apply(s, bc.Bcast(1, 6))
	// Both receivers see the same total order.
	s, v0 := bc.Apply(s, bc.Brecv(0))
	s, v1 := bc.Apply(s, bc.Brecv(1))
	if v0 != 5 || v1 != 5 {
		t.Errorf("first deliveries = %d, %d (must agree)", v0, v1)
	}
	s, v0 = bc.Apply(s, bc.Brecv(0))
	if v0 != 6 {
		t.Errorf("second delivery = %d", v0)
	}
	_, v0 = bc.Apply(s, bc.Brecv(0))
	if v0 != None {
		t.Errorf("exhausted recv = %d", v0)
	}
}

func TestMachineEncoding(t *testing.T) {
	m := &Machine{
		ProtoName: "toy",
		N:         1,
		StartVars: func(pid int, input Value) []Value { return []Value{input} },
		OnStep: func(pid, pc int, v []Value) Action {
			if pc == 0 {
				return Invoke(Op{Kind: "read", A: 0, B: None, C: None})
			}
			return Decide(v[0])
		},
		OnResp: func(pid, pc int, v []Value, resp Value) (int, []Value) {
			return pc + 1, v
		},
	}
	local := m.Init(0, 9)
	act := m.Step(0, local)
	if act.Kind != ActInvoke || act.Op.Kind != "read" {
		t.Fatalf("step 0 = %+v", act)
	}
	local = m.Next(0, local, 0)
	act = m.Step(0, local)
	if act.Kind != ActDecide || act.Dec != 9 {
		t.Fatalf("step 1 = %+v", act)
	}
}

func TestMemoryOpsMenu(t *testing.T) {
	m := NewMemory("m", []Value{0, 0}, WithRMW(TestAndSet), WithM2M(),
		WithAssignSets([]int{0, 1}))
	ops := m.Ops(2, 0)
	kinds := make(map[string]int)
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds["read"] != 2 || kinds["write"] != 4 {
		t.Errorf("rw menu: %v", kinds)
	}
	if kinds["rmw"] != 2 || kinds["move"] != 2 || kinds["swapm"] != 2 || kinds["assign"] != 2 {
		t.Errorf("extended menu: %v", kinds)
	}
}

func TestRestrictFiltersMenu(t *testing.T) {
	m := NewMemory("m", []Value{0, 0})
	r := Restrict(m, func(n, pid int, op Op) bool {
		return op.Kind != "write" || int(op.A) == pid
	})
	for pid := 0; pid < 2; pid++ {
		for _, op := range r.Ops(2, pid) {
			if op.Kind == "write" && int(op.A) != pid {
				t.Errorf("pid %d: foreign write %s survived the filter", pid, op)
			}
		}
	}
	// Semantics are untouched: Apply still works on filtered-out ops.
	s, _ := r.Apply(r.Init(), Op{Kind: "write", A: 1, B: 9, C: None})
	if _, v := r.Apply(s, Op{Kind: "read", A: 1, B: None, C: None}); v != 9 {
		t.Errorf("restricted Apply broken: read = %d", v)
	}
}
