package model

import "fmt"

// Queue is the FIFO queue model object of Section 3.3, with the total deq of
// Section 2.2 (returns None on empty rather than blocking). With Augmented
// set it also supports the peek operation of Section 3.4, which lifts its
// consensus number from 2 to infinity (Theorem 12).
//
// Operations:
//
//	enq(v)  -> None; appends v
//	deq()   -> head item, or None if empty
//	peek()  -> head item without removing it, or None (augmented only)
type Queue struct {
	name      string
	init      []Value
	menu      []Value
	augmented bool
}

// NewQueue builds a FIFO queue model object initialized with the given items
// (head first). menu bounds the item domain offered to the synthesizer.
func NewQueue(name string, init []Value, menu ...Value) *Queue {
	if len(menu) == 0 {
		menu = []Value{0, 1}
	}
	return &Queue{name: name, init: append([]Value(nil), init...), menu: menu}
}

// NewAugmentedQueue builds the augmented queue of Section 3.4 (adds peek).
func NewAugmentedQueue(name string, init []Value, menu ...Value) *Queue {
	q := NewQueue(name, init, menu...)
	q.augmented = true
	return q
}

// Name implements Object.
func (q *Queue) Name() string { return q.name }

// Init implements Object.
func (q *Queue) Init() string { return EncodeValues(q.init) }

// Apply implements Object.
func (q *Queue) Apply(state string, op Op) (string, Value) {
	items := DecodeValues(state)
	switch op.Kind {
	case "enq":
		items = append(items, op.A)
		return EncodeValues(items), None
	case "deq":
		if len(items) == 0 {
			return state, None
		}
		head := items[0]
		return EncodeValues(items[1:]), head
	case "peek":
		if !q.augmented {
			panic("model: queue " + q.name + ": peek on non-augmented queue")
		}
		if len(items) == 0 {
			return state, None
		}
		return state, items[0]
	default:
		panic(fmt.Sprintf("model: queue %q: unknown op kind %q", q.name, op.Kind))
	}
}

// Ops implements Object.
func (q *Queue) Ops(n, pid int) []Op {
	ops := []Op{{Kind: "deq", A: None, B: None, C: None}}
	for _, v := range q.menu {
		ops = append(ops, Op{Kind: "enq", A: v, B: None, C: None})
	}
	if q.augmented {
		ops = append(ops, Op{Kind: "peek", A: None, B: None, C: None})
	}
	return ops
}

// Stack is the LIFO stack model object (Corollary 10 groups it with queues,
// priority queues, sets and lists: consensus number 2).
//
// Operations:
//
//	push(v) -> None
//	pop()   -> top item, or None if empty
type Stack struct {
	name string
	init []Value
	menu []Value
}

// NewStack builds a stack model object initialized with the given items
// (top last).
func NewStack(name string, init []Value, menu ...Value) *Stack {
	if len(menu) == 0 {
		menu = []Value{0, 1}
	}
	return &Stack{name: name, init: append([]Value(nil), init...), menu: menu}
}

// Name implements Object.
func (s *Stack) Name() string { return s.name }

// Init implements Object.
func (s *Stack) Init() string { return EncodeValues(s.init) }

// Apply implements Object.
func (s *Stack) Apply(state string, op Op) (string, Value) {
	items := DecodeValues(state)
	switch op.Kind {
	case "push":
		items = append(items, op.A)
		return EncodeValues(items), None
	case "pop":
		if len(items) == 0 {
			return state, None
		}
		top := items[len(items)-1]
		return EncodeValues(items[:len(items)-1]), top
	default:
		panic(fmt.Sprintf("model: stack %q: unknown op kind %q", s.name, op.Kind))
	}
}

// Ops implements Object.
func (s *Stack) Ops(n, pid int) []Op {
	ops := []Op{{Kind: "pop", A: None, B: None, C: None}}
	for _, v := range s.menu {
		ops = append(ops, Op{Kind: "push", A: v, B: None, C: None})
	}
	return ops
}
