package model

import (
	"fmt"
	"strings"
)

// Composite combines several model objects into one, so protocols can use a
// heterogeneous shared memory (for example registers plus a queue). Sub-object
// k's operations are addressed by prefixing the op kind with "k:".
type Composite struct {
	name string
	subs []Object
}

// NewComposite builds a composite of the given objects.
func NewComposite(name string, subs ...Object) *Composite {
	return &Composite{name: name, subs: subs}
}

// At builds an op addressed to sub-object k.
func (c *Composite) At(k int, op Op) Op {
	op.Kind = fmt.Sprintf("%d:%s", k, op.Kind)
	return op
}

// Name implements Object.
func (c *Composite) Name() string { return c.name }

// Init implements Object.
func (c *Composite) Init() string {
	parts := make([]string, len(c.subs))
	for i, s := range c.subs {
		parts[i] = s.Init()
	}
	return strings.Join(parts, "|")
}

// Apply implements Object.
func (c *Composite) Apply(state string, op Op) (string, Value) {
	parts := strings.Split(state, "|")
	var k int
	var kind string
	if _, err := fmt.Sscanf(op.Kind, "%d:%s", &k, &kind); err != nil {
		panic("model: composite " + c.name + ": op not addressed to a sub-object: " + op.Kind)
	}
	sub := op
	sub.Kind = kind
	next, resp := c.subs[k].Apply(parts[k], sub)
	parts[k] = next
	return strings.Join(parts, "|"), resp
}

// Ops implements Object.
func (c *Composite) Ops(n, pid int) []Op {
	var ops []Op
	for k, s := range c.subs {
		for _, op := range s.Ops(n, pid) {
			ops = append(ops, c.At(k, op))
		}
	}
	return ops
}
