// Package model defines the deterministic object and protocol model used by
// the exhaustive checker (internal/check) and the protocol synthesizer
// (internal/synth).
//
// It is a direct, executable rendering of Section 2 of Herlihy's PODC 1988
// paper: shared objects are linearizable and specified sequentially by a
// total, deterministic transition function; processes are sequential threads
// that alternate invocations and responses. Because all objects are
// linearizable and all operations are total, each protocol step can be
// modeled as one complete (atomic) operation, which is what makes exhaustive
// state-space exploration tractable.
//
// States — both object states and per-process local states — are encoded as
// strings so they can be hashed, compared, and memoized without reflection.
package model

import (
	"strconv"
	"strings"
)

// Value is the value domain of the model world: small integers. Process
// identifiers, register contents, and queue items are all Values.
type Value int

// None is the distinguished "⊥" value used by the paper for uninitialized
// registers and empty-queue responses.
const None Value = -1

// Op is a single operation invocation on a shared object. Kind selects the
// operation; A, B, and C are its arguments (unused arguments are None).
// Op is a comparable value type so it can key maps in the synthesizer.
type Op struct {
	Kind    string
	A, B, C Value
}

// String renders an Op compactly, e.g. "write(1,0)".
func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Kind)
	b.WriteByte('(')
	args := []Value{o.A, o.B, o.C}
	n := 3
	for n > 0 && args[n-1] == None {
		n--
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(args[i])))
	}
	b.WriteByte(')')
	return b.String()
}

// Object is a deterministic linearizable shared object, given by its
// sequential specification. Apply must be total: every operation has a
// response in every state (per Section 2.2 of the paper, partial operations
// such as a blocking deq are replaced by total ones that return an error
// value).
type Object interface {
	// Name identifies the object type in reports.
	Name() string
	// Init returns the encoded initial state.
	Init() string
	// Apply executes op on the encoded state, returning the new encoded
	// state and the response value.
	Apply(state string, op Op) (string, Value)
	// Ops enumerates the finite operation menu available to process pid in
	// an n-process system. It is used by the synthesizer; checker-only
	// objects may return nil.
	Ops(n, pid int) []Op
}

// ActionKind discriminates protocol actions.
type ActionKind int

const (
	// ActInvoke means the process invokes Action.Op on the shared object.
	ActInvoke ActionKind = iota + 1
	// ActDecide means the process decides Action.Dec and halts.
	ActDecide
)

// Action is a process's next move: either invoke an operation or decide.
type Action struct {
	Kind ActionKind
	Op   Op    // valid when Kind == ActInvoke
	Dec  Value // valid when Kind == ActDecide
}

// Invoke builds an invocation action.
func Invoke(op Op) Action { return Action{Kind: ActInvoke, Op: op} }

// Decide builds a decision action.
func Decide(v Value) Action { return Action{Kind: ActDecide, Dec: v} }

// Protocol is a deterministic per-process program over one shared object.
// A protocol for n processes assigns each pid in [0, n) a step machine whose
// local state is encoded as a string.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Procs returns the number of processes n.
	Procs() int
	// Init returns pid's encoded initial local state given its input value.
	Init(pid int, input Value) string
	// Step returns pid's next action in the given local state.
	Step(pid int, local string) Action
	// Next returns pid's local state after receiving resp for the
	// invocation returned by Step.
	Next(pid int, local string, resp Value) string
}

// EncodeValues renders a value vector as a canonical comma-separated string.
func EncodeValues(vs []Value) string {
	var b strings.Builder
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// DecodeValues parses a string produced by EncodeValues.
func DecodeValues(s string) []Value {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	vs := make([]Value, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			panic("model: corrupt state encoding: " + s)
		}
		vs[i] = Value(n)
	}
	return vs
}
