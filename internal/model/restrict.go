package model

// Restricted filters the synthesizer's operation menu of an object without
// changing its semantics. It models architectural constraints — for example
// "each process owns one announce register that others may only read" — and
// keeps bounded protocol searches tractable; the checker is unaffected
// because protocols invoke operations directly.
type Restricted struct {
	Object
	// Keep reports whether op should remain on pid's menu in an n-process
	// system.
	Keep func(n, pid int, op Op) bool
}

// Restrict wraps obj with a menu filter.
func Restrict(obj Object, keep func(n, pid int, op Op) bool) *Restricted {
	return &Restricted{Object: obj, Keep: keep}
}

// Ops implements Object.
func (r *Restricted) Ops(n, pid int) []Op {
	var out []Op
	for _, op := range r.Object.Ops(n, pid) {
		if r.Keep(n, pid, op) {
			out = append(out, op)
		}
	}
	return out
}
