package model

import (
	"fmt"
	"strings"
)

// Channels is the message-passing model object of Section 3.1/3.3: a matrix
// of point-to-point FIFO channels between n processes, as in a hypercube
// architecture. Receives are total (None on empty), matching the paper's
// totality requirement.
//
// Operations for process p:
//
//	send(q,v)  -> None; appends v to the channel p -> q
//	recv(q)    -> head of the channel q -> p, or None if empty
type Channels struct {
	name string
	n    int
	menu []Value
}

// NewChannels builds an n-process point-to-point FIFO channel matrix.
func NewChannels(name string, n int, menu ...Value) *Channels {
	if len(menu) == 0 {
		menu = []Value{0, 1}
	}
	return &Channels{name: name, n: n, menu: menu}
}

// Name implements Object.
func (c *Channels) Name() string { return c.name }

// Init implements Object.
func (c *Channels) Init() string {
	parts := make([]string, c.n*c.n)
	return strings.Join(parts, ";")
}

// Apply implements Object. Ops must carry the sender/receiver pid in C,
// because channel endpoints are per-process; Send and Recv build such ops.
func (c *Channels) Apply(state string, op Op) (string, Value) {
	chans := strings.Split(state, ";")
	p := int(op.C) // the acting process
	switch op.Kind {
	case "send":
		idx := p*c.n + int(op.A)
		items := DecodeValues(chans[idx])
		items = append(items, op.B)
		chans[idx] = EncodeValues(items)
		return strings.Join(chans, ";"), None
	case "recv":
		idx := int(op.A)*c.n + p
		items := DecodeValues(chans[idx])
		if len(items) == 0 {
			return state, None
		}
		head := items[0]
		chans[idx] = EncodeValues(items[1:])
		return strings.Join(chans, ";"), head
	default:
		panic(fmt.Sprintf("model: channels %q: unknown op kind %q", c.name, op.Kind))
	}
}

// Send builds a send op: process from appends v to its channel to process to.
func (c *Channels) Send(from, to int, v Value) Op {
	return Op{Kind: "send", A: Value(to), B: v, C: Value(from)}
}

// Recv builds a receive op: process at pops the head of from's channel to it.
func (c *Channels) Recv(at, from int) Op {
	return Op{Kind: "recv", A: Value(from), B: None, C: Value(at)}
}

// Ops implements Object.
func (c *Channels) Ops(n, pid int) []Op {
	var ops []Op
	for q := 0; q < c.n; q++ {
		if q == pid {
			continue
		}
		ops = append(ops, c.Recv(pid, q))
		for _, v := range c.menu {
			ops = append(ops, c.Send(pid, q, v))
		}
	}
	return ops
}

// Broadcast is the ordered-broadcast model object referenced in Section 3.1
// (Dolev, Dwork and Stockmeyer: "broadcast with ordered delivery ... does
// solve n-process consensus"). All processes observe broadcast messages in
// one global total order; each process consumes the log through its own
// cursor, which is part of the object state.
//
// Operations for process p:
//
//	bcast(v)  -> None; appends v to the global log
//	brecv()   -> next unread log entry for p, or None
type Broadcast struct {
	name string
	n    int
	menu []Value
}

// NewBroadcast builds an n-process ordered-broadcast object.
func NewBroadcast(name string, n int, menu ...Value) *Broadcast {
	if len(menu) == 0 {
		menu = []Value{0, 1}
	}
	return &Broadcast{name: name, n: n, menu: menu}
}

// Name implements Object.
func (b *Broadcast) Name() string { return b.name }

// Init implements Object. The state is "log;cursors".
func (b *Broadcast) Init() string {
	return ";" + EncodeValues(make([]Value, b.n))
}

// Apply implements Object.
func (b *Broadcast) Apply(state string, op Op) (string, Value) {
	parts := strings.SplitN(state, ";", 2)
	log, cursors := DecodeValues(parts[0]), DecodeValues(parts[1])
	p := int(op.C)
	switch op.Kind {
	case "bcast":
		log = append(log, op.A)
		return EncodeValues(log) + ";" + EncodeValues(cursors), None
	case "brecv":
		if int(cursors[p]) >= len(log) {
			return state, None
		}
		v := log[cursors[p]]
		cursors[p]++
		return EncodeValues(log) + ";" + EncodeValues(cursors), v
	default:
		panic(fmt.Sprintf("model: broadcast %q: unknown op kind %q", b.name, op.Kind))
	}
}

// Bcast builds a broadcast op for process from.
func (b *Broadcast) Bcast(from int, v Value) Op {
	return Op{Kind: "bcast", A: v, B: None, C: Value(from)}
}

// Brecv builds a receive op for process at.
func (b *Broadcast) Brecv(at int) Op {
	return Op{Kind: "brecv", A: None, B: None, C: Value(at)}
}

// Ops implements Object.
func (b *Broadcast) Ops(n, pid int) []Op {
	ops := []Op{b.Brecv(pid)}
	for _, v := range b.menu {
		ops = append(ops, b.Bcast(pid, v))
	}
	return ops
}
