package regconstruct

import (
	"runtime"
	"strconv"
	"sync"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
)

// TestSafeBitSequential: a safe bit is perfectly well-behaved without
// overlap.
func TestSafeBitSequential(t *testing.T) {
	var b SafeBit
	for _, v := range []bool{true, false, true, true, false} {
		b.WriteBit(v)
		if got := b.ReadBit(); got != v {
			t.Fatalf("read = %v after write %v", got, v)
		}
	}
}

// TestSafeBitCanMisbehave: during a write of the SAME value, a safe bit may
// return the other value — the defect that regularity repairs.
func TestSafeBitCanMisbehave(t *testing.T) {
	var b SafeBit
	b.WriteBit(true)
	b.writing.Store(1) // freeze a write window open
	saw := map[bool]bool{}
	for i := 0; i < 10; i++ {
		saw[b.ReadBit()] = true
	}
	b.writing.Store(0)
	if !saw[false] {
		t.Error("safe bit never returned the adversarial value during overlap")
	}
}

// TestRegularBitNoPhantom: a regular bit built over a safe bit never
// returns a phantom value while the writer rewrites the SAME value — the
// defining difference from safe. The writer hammers true; every read must
// be true.
func TestRegularBitNoPhantom(t *testing.T) {
	reg := NewRegularBit(&SafeBit{})
	reg.WriteBit(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.WriteBit(true) // same value: no write window may open
			}
		}
	}()
	for i := 0; i < 100000; i++ {
		if !reg.ReadBit() {
			close(stop)
			wg.Wait()
			t.Fatal("regular bit returned a phantom value")
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegularKSequential: the unary construction behaves like a register
// sequentially, across the full ladder from safe bits.
func TestRegularKSequential(t *testing.T) {
	r := NewRegularKFromSafe(8, 3)
	if got := r.Read(); got != 3 {
		t.Fatalf("init read = %d", got)
	}
	for _, v := range []int64{0, 7, 2, 2, 5, 0} {
		r.Write(v)
		if got := r.Read(); got != v {
			t.Fatalf("read = %d after write %d", got, v)
		}
	}
}

// TestRegularKRegularity: a concurrent reader must always return the value
// of an overlapping or the latest preceding write. With a writer sweeping
// v, v+1, ... and intervals recorded, each read's value must come from a
// write whose interval is not wholly after the read, nor superseded before
// the read began.
func TestRegularKRegularity(t *testing.T) {
	const k = 16
	r := NewRegularKFromSafe(k, 0)
	type span struct{ val, start, end int64 }
	var clock struct {
		sync.Mutex
		t int64
	}
	tick := func() int64 {
		clock.Lock()
		defer clock.Unlock()
		clock.t++
		return clock.t
	}
	var writes []span
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v = (v + 1) % k
			s := tick()
			r.Write(v)
			e := tick()
			mu.Lock()
			writes = append(writes, span{val: v, start: s, end: e})
			mu.Unlock()
			runtime.Gosched()
		}
	}()
	for i := 0; i < 4000; i++ {
		s := tick()
		v := r.Read()
		e := tick()
		mu.Lock()
		ws := append([]span(nil), writes...)
		mu.Unlock()
		// Admissible values: any write overlapping [s,e], plus the last
		// write that completed before s (or the initial 0 if none), plus —
		// because appends happen after the write returns — any write that
		// might still be unrecorded (values being written concurrently are
		// covered by the overlap rule once recorded; to stay sound we only
		// flag a violation when the read value is provably stale: some
		// write of a DIFFERENT value completed before the read started and
		// no admissible write has this value).
		admissible := map[int64]bool{}
		lastBefore := int64(0)
		lastBeforeEnd := int64(-1)
		for _, w := range ws {
			if w.end < s && w.end > lastBeforeEnd {
				lastBefore, lastBeforeEnd = w.val, w.end
			}
			if w.end >= s && w.start <= e {
				admissible[w.val] = true
			}
		}
		admissible[lastBefore] = true
		// Unrecorded in-flight write: the writer may have started a write
		// whose record is not yet appended; its value is the successor of
		// the newest recorded one.
		if len(ws) > 0 {
			admissible[(ws[len(ws)-1].val+1)%k] = true
		}
		if !admissible[v] {
			close(stop)
			wg.Wait()
			t.Fatalf("read %d: no admissible write (last-before=%d)", v, lastBefore)
		}
	}
	close(stop)
	wg.Wait()
}

// recordReg drives a register through the linearizability recorder.
func checkRegisterLinearizable(t *testing.T, h []linearize.Event) {
	t.Helper()
	if res := linearize.Check(seqspec.Register{}, h); !res.OK {
		for _, e := range h {
			t.Logf("  %s", e)
		}
		t.Fatal("register history not linearizable")
	}
}

// TestAtomicSWSRLinearizable: one writer, one reader, recorded history must
// linearize against the register spec. (A plain SimRegular would fail this
// occasionally via new/old inversion; the sequence numbers repair it.)
func TestAtomicSWSRLinearizable(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := NewAtomicSWSRSim(0)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 12; i++ {
				op := seqspec.Op{Kind: "write", Args: []int64{int64(i)}}
				ts := rec.Invoke()
				r.Write(int64(i))
				rec.Complete(0, op, 0, ts) // register write returns old value
				runtime.Gosched()
			}
		}()
		for i := 0; i < 12; i++ {
			op := seqspec.Op{Kind: "read"}
			ts := rec.Invoke()
			v := r.Read()
			rec.Complete(1, op, v, ts)
		}
		wg.Wait()
		// The seqspec register write returns the old value, which the
		// construction does not provide; rebuild responses from the
		// witnessing order instead by checking reads only: replace write
		// responses with a spec that ignores them.
		h := rec.History()
		checkRegisterHistoryReadsOnly(t, h)
	}
}

// checkRegisterHistoryReadsOnly validates histories where write responses
// are unknown, using a write-ack register spec.
func checkRegisterHistoryReadsOnly(t *testing.T, h []linearize.Event) {
	t.Helper()
	if res := linearize.Check(ackRegister{}, h); !res.OK {
		for _, e := range h {
			t.Logf("  %s", e)
		}
		t.Fatal("history not linearizable")
	}
}

// ackRegister is a register whose write returns 0 (acknowledge only).
type ackRegister struct{}

func (ackRegister) Name() string { return "ack-register" }

func (ackRegister) Init() seqspec.State { s := ackRegState(0); return &s }

func (ackRegister) ReadOnly(op seqspec.Op) bool { return op.Kind == "read" }

type ackRegState int64

func (s *ackRegState) Apply(op seqspec.Op) int64 {
	switch op.Kind {
	case "read":
		return int64(*s)
	case "write":
		*s = ackRegState(op.Arg(0))
		return 0
	}
	panic("ackRegister: unknown op " + op.Kind)
}

func (s *ackRegState) Clone() seqspec.State { c := *s; return &c }

func (s *ackRegState) Key() string { return strconv.FormatInt(int64(*s), 10) }

// TestAtomicSWMRLinearizable: one writer, three readers.
func TestAtomicSWMRLinearizable(t *testing.T) {
	const readers = 3
	for trial := 0; trial < 20; trial++ {
		r := NewAtomicSWMR(readers, 0)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 10; i++ {
				op := seqspec.Op{Kind: "write", Args: []int64{int64(i)}}
				ts := rec.Invoke()
				r.Write(int64(i))
				rec.Complete(0, op, 0, ts)
				runtime.Gosched()
			}
		}()
		for rd := 0; rd < readers; rd++ {
			rd := rd
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					op := seqspec.Op{Kind: "read"}
					ts := rec.Invoke()
					v := r.ReadAt(rd)
					rec.Complete(1+rd, op, v, ts)
				}
			}()
		}
		wg.Wait()
		checkRegisterHistoryReadsOnly(t, rec.History())
	}
}

// TestAtomicMRMWLinearizable: four processes, all reading and writing.
func TestAtomicMRMWLinearizable(t *testing.T) {
	const n = 4
	for trial := 0; trial < 20; trial++ {
		r := NewAtomicMRMW(n, 0)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if (p+i)%2 == 0 {
						v := int64(100*p + i + 1)
						op := seqspec.Op{Kind: "write", Args: []int64{v}}
						ts := rec.Invoke()
						r.WriteAt(p, v)
						rec.Complete(p, op, 0, ts)
					} else {
						op := seqspec.Op{Kind: "read"}
						ts := rec.Invoke()
						v := r.ReadAt(p)
						rec.Complete(p, op, v, ts)
					}
					runtime.Gosched()
				}
			}()
		}
		wg.Wait()
		checkRegisterHistoryReadsOnly(t, rec.History())
	}
}

// TestMRMWSequential exercises the multi-writer register single-threaded
// across writers.
func TestMRMWSequential(t *testing.T) {
	r := NewAtomicMRMW(3, 7)
	for p := 0; p < 3; p++ {
		if got := r.ReadAt(p); got != 7 {
			t.Fatalf("initial read at %d = %d", p, got)
		}
	}
	r.WriteAt(1, 42)
	if got := r.ReadAt(2); got != 42 {
		t.Fatalf("read = %d", got)
	}
	r.WriteAt(0, 13) // later write by a lower-id writer must still win
	if got := r.ReadAt(1); got != 13 {
		t.Fatalf("read = %d, want 13", got)
	}
}
