// Package regconstruct implements the register-construction ladder that
// Herlihy's PODC 1988 paper builds on (Section 1 and 3.1, after Lamport
// [16] and the multi-reader/multi-writer constructions it cites
// [3,4,13,21,23,24,27,29]):
//
//	safe bit  ->  regular bit  ->  regular k-valued register
//	          ->  atomic single-writer single-reader (SWSR)
//	          ->  atomic single-writer multi-reader  (SWMR)
//	          ->  atomic multi-writer multi-reader   (MRMW)
//
// These are the wait-free implementations the paper classifies at level 1
// of the hierarchy: each is a wait-free implementation of a register by
// weaker registers, and by Theorem 2 none of them — however elaborate —
// can solve two-process consensus.
//
// The timestamp-based constructions use unbounded sequence numbers (the
// Vitányi–Awerbuch approach); bounded-timestamp versions exist but add
// nothing to the hierarchy reproduction.
package regconstruct

import (
	"sync/atomic"
)

// Bit is a one-bit register with a single writer; the guarantee (safe,
// regular, or atomic) depends on the implementation.
type Bit interface {
	WriteBit(bool)
	ReadBit() bool
}

// Reg is an int64 register with a single writer.
type Reg interface {
	Write(int64)
	Read() int64
}

// --- Safe bit (the weakest base: Lamport's safe register) ---

// SafeBit simulates a single-writer safe bit: reads that overlap a write
// return an adversarially chosen value; non-overlapping reads return the
// last written value. The adversary alternates 0/1 during write windows,
// which is the worst case for a bit.
type SafeBit struct {
	v        atomic.Int32
	writing  atomic.Int32
	perturbs atomic.Int64
}

// WriteBit stores x non-atomically: the write window is visible to readers.
func (b *SafeBit) WriteBit(x bool) {
	b.writing.Store(1)
	if x {
		b.v.Store(1)
	} else {
		b.v.Store(0)
	}
	b.writing.Store(0)
}

// ReadBit returns the value, or an adversarial bit during a write window.
func (b *SafeBit) ReadBit() bool {
	if b.writing.Load() == 1 {
		return b.perturbs.Add(1)%2 == 0 // arbitrary value: overlap
	}
	return b.v.Load() == 1
}

// --- Regular bit from a safe bit ---

// RegularBit is Lamport's construction of a regular bit from a safe bit:
// the writer simply skips writes that would not change the value. Since a
// bit's "arbitrary" overlap value is necessarily the old or the new value
// when they differ, and no write window exists when they coincide, every
// read returns the old or the new value — regularity.
type RegularBit struct {
	base Bit
	last bool // writer-local shadow of the current value
}

// NewRegularBit wraps a safe (or better) bit.
func NewRegularBit(base Bit) *RegularBit {
	return &RegularBit{base: base}
}

// WriteBit implements Bit; only the single writer may call it.
func (b *RegularBit) WriteBit(x bool) {
	if x != b.last {
		b.base.WriteBit(x)
		b.last = x
	}
}

// ReadBit implements Bit.
func (b *RegularBit) ReadBit() bool { return b.base.ReadBit() }

// --- Regular k-valued register from regular bits ---

// RegularK is Lamport's unary construction of a k-valued regular register
// from k regular bits. To write v, the writer sets bit v and then clears
// bits v-1..0 (downward); a reader scans upward and returns the index of
// the first set bit. Whenever a bit is cleared, a higher true bit has
// already been set, so an upward scan always terminates at a bit whose
// write overlaps or precedes the read — regularity.
type RegularK struct {
	bits []Bit
}

// NewRegularK builds a k-valued regular register (values 0..k-1) over the
// given bits, initialized to init. The bits must themselves be regular.
func NewRegularK(bits []Bit, init int) *RegularK {
	r := &RegularK{bits: bits}
	r.bits[init].WriteBit(true)
	return r
}

// NewRegularKFromSafe builds the full ladder: k safe bits, each upgraded to
// regular, composed into a k-valued regular register.
func NewRegularKFromSafe(k, init int) *RegularK {
	bits := make([]Bit, k)
	for i := range bits {
		bits[i] = NewRegularBit(&SafeBit{})
	}
	return NewRegularK(bits, init)
}

// Write implements Reg; only the single writer may call it.
func (r *RegularK) Write(v int64) {
	r.bits[v].WriteBit(true)
	for i := int(v) - 1; i >= 0; i-- {
		r.bits[i].WriteBit(false)
	}
}

// Read implements Reg.
func (r *RegularK) Read() int64 {
	for i := range r.bits {
		if r.bits[i].ReadBit() {
			return int64(i)
		}
	}
	panic("regconstruct: regular scan found no set bit; construction invariant broken")
}

// --- Simulated regular register (for building the upper floors without
// paying the unary encoding's O(k) cost) ---

// SimRegular simulates a single-writer regular int64 register directly: a
// read overlapping a write returns the old or the new value, adversarially
// alternating. It stands in for RegularK where the unbounded timestamp
// constructions above need a full int64 domain.
type SimRegular struct {
	oldV, newV atomic.Int64
	writing    atomic.Int32
	flips      atomic.Int64
}

// NewSimRegular builds a simulated regular register holding init.
func NewSimRegular(init int64) *SimRegular {
	r := &SimRegular{}
	r.oldV.Store(init)
	r.newV.Store(init)
	return r
}

// Write implements Reg; only the single writer may call it.
func (r *SimRegular) Write(v int64) {
	r.oldV.Store(r.newV.Load())
	r.writing.Store(1)
	r.newV.Store(v)
	r.writing.Store(0)
}

// Read implements Reg: old or new during overlap, last value otherwise.
func (r *SimRegular) Read() int64 {
	if r.writing.Load() == 1 && r.flips.Add(1)%2 == 0 {
		return r.oldV.Load()
	}
	return r.newV.Load()
}

// --- Atomic SWSR from a regular register ---

// tagged packs an unbounded tag with a value for the timestamp
// constructions. Values must fit in 20 bits (tests use small domains; the
// pack is monotone in (tag, value)).
func pack(tag, val int64) int64 { return tag<<20 | (val & 0xFFFFF) }

func unpackVal(p int64) int64 { return p & 0xFFFFF }

// AtomicSWSR is an atomic single-writer single-reader register built from
// one regular register: the writer attaches an increasing sequence number,
// and the reader never goes backwards (it remembers the largest pair it has
// returned). Monotone timestamps turn regularity into atomicity for a
// single reader — the new/old inversion that distinguishes regular from
// atomic cannot occur.
type AtomicSWSR struct {
	base Reg
	wseq int64 // writer-local
	rmax int64 // reader-local
}

// NewAtomicSWSR builds the register over base (regular or better), which
// must initially hold pack(0, init).
func NewAtomicSWSR(base Reg) *AtomicSWSR {
	return &AtomicSWSR{base: base}
}

// NewAtomicSWSRSim builds the register over a simulated regular base.
func NewAtomicSWSRSim(init int64) *AtomicSWSR {
	return &AtomicSWSR{base: NewSimRegular(pack(0, init))}
}

// Write implements Reg; only the single writer may call it.
func (r *AtomicSWSR) Write(v int64) {
	r.wseq++
	r.base.Write(pack(r.wseq, v))
}

// Read implements Reg; only the single reader may call it.
func (r *AtomicSWSR) Read() int64 {
	p := r.base.Read()
	if p > r.rmax {
		r.rmax = p
	}
	return unpackVal(r.rmax)
}

// --- Atomic SWMR from SWSR registers ---

// AtomicSWMR is the classic single-writer multi-reader construction
// (Israeli–Li / Vitányi–Awerbuch with unbounded tags): the writer writes
// the tagged value to one SWSR register per reader; each reader takes the
// maximum of the writer's register and what every other reader last
// reported, reports that maximum to the other readers, and returns it. The
// report step is what prevents new/old inversions between different
// readers.
type AtomicSWMR struct {
	n    int
	wcol []Reg   // writer -> reader i
	comm [][]Reg // comm[i][j]: reader i -> reader j
	wseq int64   // writer-local
}

// NewAtomicSWMR builds an n-reader register holding init, over simulated
// regular SWSR registers.
func NewAtomicSWMR(n int, init int64) *AtomicSWMR {
	r := &AtomicSWMR{n: n}
	r.wcol = make([]Reg, n)
	for i := range r.wcol {
		r.wcol[i] = NewSimRegular(pack(0, init))
	}
	r.comm = make([][]Reg, n)
	for i := range r.comm {
		r.comm[i] = make([]Reg, n)
		for j := range r.comm[i] {
			r.comm[i][j] = NewSimRegular(pack(0, init))
		}
	}
	return r
}

// Write stores v; only the single writer may call it.
func (r *AtomicSWMR) Write(v int64) {
	r.wseq++
	p := pack(r.wseq, v)
	for i := 0; i < r.n; i++ {
		r.wcol[i].Write(p)
	}
}

// ReadAt returns the value for reader i; each reader index must be used by
// at most one goroutine.
func (r *AtomicSWMR) ReadAt(i int) int64 {
	max := r.wcol[i].Read()
	for j := 0; j < r.n; j++ {
		if j == i {
			continue
		}
		if p := r.comm[j][i].Read(); p > max {
			max = p
		}
	}
	for j := 0; j < r.n; j++ {
		if j != i {
			r.comm[i][j].Write(max)
		}
	}
	return unpackVal(max)
}

// --- Atomic MRMW from SWMR registers ---

// AtomicMRMW is the classic multi-writer construction over single-writer
// multi-reader registers with unbounded tags: each writer owns one SWMR
// register; to write, it collects all registers, picks a tag larger than
// any it saw (ties broken by writer id), and publishes; to read, a process
// collects all registers and returns the value with the largest (tag, id).
type AtomicMRMW struct {
	n    int
	regs []*AtomicSWMR // regs[w]: writer w's register, readable by all n
}

// NewAtomicMRMW builds an n-process multi-writer register holding init.
// All component registers start with tag 0 and the initial value, so the
// initial maximum is init regardless of tie-breaking.
func NewAtomicMRMW(n int, init int64) *AtomicMRMW {
	r := &AtomicMRMW{n: n, regs: make([]*AtomicSWMR, n)}
	for w := range r.regs {
		r.regs[w] = NewAtomicSWMR(n, init)
	}
	return r
}

// WriteAt stores v on behalf of writer w in [0, n).
func (r *AtomicMRMW) WriteAt(w int, v int64) {
	maxTag := int64(0)
	for j := 0; j < r.n; j++ {
		p := r.regs[j].readPackedAt(w)
		if t := p >> 20; t > maxTag {
			maxTag = t
		}
	}
	r.regs[w].writePacked(pack(maxTag+1, v))
}

// ReadAt returns the value for process p in [0, n).
func (r *AtomicMRMW) ReadAt(p int) int64 {
	best := int64(-1)
	bestWriter := -1
	for j := 0; j < r.n; j++ {
		q := r.regs[j].readPackedAt(p)
		if q > best || (q == best && j > bestWriter) {
			best, bestWriter = q, j
		}
	}
	return unpackVal(best)
}

// readPackedAt and writePacked expose the component registers' inner packed
// pairs: the MRMW construction tags values itself, so the component SWMR
// register transports the packed pair as its plain value.

func (r *AtomicSWMR) writePacked(p int64) {
	// The outer tag rides in the value slot of the component register; the
	// component's own wseq still orders the component writes.
	r.wseq++
	pp := r.wseq<<40 | p // component seq above, payload below
	for i := 0; i < r.n; i++ {
		r.wcol[i].Write(pp)
	}
}

func (r *AtomicSWMR) readPackedAt(i int) int64 {
	max := r.wcol[i].Read()
	for j := 0; j < r.n; j++ {
		if j == i {
			continue
		}
		if p := r.comm[j][i].Read(); p > max {
			max = p
		}
	}
	for j := 0; j < r.n; j++ {
		if j != i {
			r.comm[i][j].Write(max)
		}
	}
	return max & ((1 << 40) - 1)
}
