package wire_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/iotest"

	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// frame wraps a payload in the 4-byte big-endian length prefix ReadFrame
// expects, without going through WriteFrame (so the fuzzer can also feed
// prefixes WriteFrame would refuse).
func frame(payload []byte) []byte {
	b := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}

// FuzzDecodeFrame drives the full receive path a hostile or corrupted peer
// exercises: ReadFrame over raw bytes, then every payload decoder. The
// invariants are the codec's contract, not any particular message: no
// decoder may panic or over-read, and a payload that decodes cleanly must
// survive a re-encode/re-decode round trip bit-for-bit.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with the shapes the unit tests pin: well-formed frames of each
	// message type, the refusal boundaries, and truncations.
	f.Add(frame(wire.AppendRequest(nil, 1, seqspec.Op{Kind: "put", Args: []int64{7, -3}})))
	f.Add(frame(wire.AppendRequest(nil, 2, seqspec.Op{Kind: "len"})))
	f.Add(frame(wire.AppendResponse(nil, 3, -1)))
	f.Add(frame(wire.AppendError(nil, 4, "no free pid")))
	f.Add(frame(nil))                                                                   // empty payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                               // prefix above MaxFrame
	f.Add([]byte{0, 0, 0, 9, wire.MsgOp, 0, 0})                                         // cut mid-frame
	f.Add(frame([]byte{wire.MsgErr, 0, 0, 0, 0, 0, 0, 0, 5, 0, 200}))                   // reason longer than payload
	f.Add(frame([]byte{wire.MsgOp, 0, 0, 0, 0, 0, 0, 0, 6, 3, 'p', 'u', 't', 1, 0x80})) // truncated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := wire.ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			// Any error is fine; the framing just must refuse over-long
			// prefixes before allocating and report clean vs dirty EOF.
			if err == io.EOF && len(data) != 0 && len(data) < 4 {
				t.Fatalf("ReadFrame(%x) = io.EOF on a partial length prefix", data)
			}
			return
		}
		if len(payload) > wire.MaxFrame {
			t.Fatalf("ReadFrame returned %d bytes, above MaxFrame", len(payload))
		}

		// Decoders must tolerate the payload regardless of its type byte.
		if id, op, err := wire.DecodeRequest(payload); err == nil {
			re := wire.AppendRequest(nil, id, op)
			if !bytes.Equal(re, payload) {
				t.Fatalf("request round trip: %x -> (%d, %+v) -> %x", payload, id, op, re)
			}
			id2, op2, err2 := wire.DecodeRequest(re)
			if err2 != nil || id2 != id || !opEqual(op, op2) {
				t.Fatalf("re-decode of %x: (%d, %+v, %v)", re, id2, op2, err2)
			}
		}
		if id, v, err := wire.DecodeReply(payload); err == nil && payload[0] == wire.MsgResp {
			re := wire.AppendResponse(nil, id, v)
			if !bytes.Equal(re, payload) {
				t.Fatalf("response round trip: %x -> (%d, %d) -> %x", payload, id, v, re)
			}
		}
		if op, rest, err := wire.DecodeOp(payload); err == nil && len(rest) == 0 {
			if re := wire.AppendOp(nil, op); !bytes.Equal(re, payload) {
				t.Fatalf("op round trip: %x -> %+v -> %x", payload, op, re)
			}
		}
	})
}

// FuzzDecodeStream drives the streaming Decoder the pipelined server hot
// path uses, differentially against the one-frame ReadFrame reference:
// over the same byte stream both must produce the same frame sequence and
// the same terminal error, whatever chunk sizes the transport delivers —
// the fuzzer's streams include multi-frame pipelined input, frames split
// at every boundary (chunk size 1 exercises all of them), and corruption
// mid-stream (a flipped length prefix desynchronizes everything after it
// identically for both decoders).
func FuzzDecodeStream(f *testing.F) {
	// Pipelined multi-frame stream: several requests back to back, as a
	// client burst puts them on the wire.
	var burst []byte
	for i := 0; i < 5; i++ {
		burst = append(burst, frame(wire.AppendRequest(nil, uint64(i+1),
			seqspec.Op{Kind: "put", Args: []int64{int64(i), int64(-i)}}))...)
	}
	f.Add(burst)
	// Coalesced response stream, as the server's writer flushes it.
	var acks []byte
	acks = wire.AppendResponseFrame(acks, 1, 10)
	acks = wire.AppendErrorFrame(acks, 2, "refused")
	acks = wire.AppendResponseFrame(acks, 3, -1)
	f.Add(acks)
	// Corrupt mid-stream: a clean frame, then a garbage length prefix.
	corrupt := append(append([]byte{}, frame(wire.AppendResponse(nil, 1, 7))...),
		0xff, 0xff, 0xff, 0xff, 1, 2, 3)
	f.Add(corrupt)
	// Cut mid-frame after a clean frame.
	f.Add(append(append([]byte{}, frame(nil)...), 0, 0, 0, 9, wire.MsgOp))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference: the loop a pre-pipelining server ran.
		var refFrames [][]byte
		var refErr error
		ref := bytes.NewReader(data)
		for {
			p, err := wire.ReadFrame(ref, nil)
			if err != nil {
				refErr = err
				break
			}
			refFrames = append(refFrames, append([]byte(nil), p...))
		}

		// The Decoder must agree whatever the chunking; chunk 1 splits at
		// every boundary, 3 and 16 straddle prefixes, 0 means one read.
		for _, chunk := range []int{0, 1, 3, 16} {
			var r io.Reader = bytes.NewReader(data)
			if chunk > 0 {
				r = iotest.OneByteReader(bytes.NewReader(data))
				if chunk > 1 {
					r = &chunked{data: data, n: chunk}
				}
			}
			d := wire.NewDecoderSize(r, 16)
			for i := 0; ; i++ {
				p, err := d.Next()
				if err != nil {
					if err != refErr {
						t.Fatalf("chunk=%d: terminal error %v, ReadFrame reference %v", chunk, err, refErr)
					}
					if i != len(refFrames) {
						t.Fatalf("chunk=%d: %d frames before error, reference %d", chunk, i, len(refFrames))
					}
					break
				}
				if len(p) > wire.MaxFrame {
					t.Fatalf("chunk=%d: frame of %d bytes above MaxFrame", chunk, len(p))
				}
				if i >= len(refFrames) || !bytes.Equal(p, refFrames[i]) {
					t.Fatalf("chunk=%d: frame %d diverges from ReadFrame reference", chunk, i)
				}
			}
		}
	})
}

// chunked returns data in fixed-size chunks (the fuzz harness's own copy;
// the exported Decoder tests keep theirs).
type chunked struct {
	data []byte
	n    int
}

func (c *chunked) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func opEqual(a, b seqspec.Op) bool {
	if a.Kind != b.Kind || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}
