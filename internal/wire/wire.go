// Package wire is the service tier's binary encoding: length-prefixed
// frames on the wire, and the compact operation/request/response encodings
// shared by the TCP server (internal/server) and the crash-recoverable log
// store (internal/logstore). Hand-rolled rather than gob so a frame's cost
// is a few appends and no reflection, the format is stable across process
// restarts (the log store persists it), and a malformed peer can be
// rejected byte by byte with a bounded read.
//
// Frame layout: a 4-byte big-endian payload length, then the payload.
// Lengths above MaxFrame are refused before any allocation, so a garbage
// prefix cannot balloon a read buffer.
//
// Payloads the server understands (first payload byte is the message type):
//
//	MsgOp   request:  [1][u64 id][op]        — invoke op; id is echoed back
//	MsgResp response: [2][u64 id][i64 value] — op's response
//	MsgErr  response: [3][u64 id][u16 n][n bytes] — op refused, UTF-8 reason
//
// Responses to pipelined requests may come back in any order; the id a
// request carries is echoed in its response, and clients reassemble by id.
// (Pure reads can overtake in-flight writes on the server's pipelined hot
// path — see internal/server.) An operation is encoded as [u8 len][kind]
// [u8 argc][varint args...]; varints are the signed zig-zag form
// (encoding/binary's AppendVarint) since KV values are arbitrary int64s.
//
// The codec functions are straight-line code over byte slices and claim
// //wf:waitfree individually; only the frame I/O paths — WriteFrame,
// ReadFrame and the streaming Decoder (stream.go) — touch the syscall
// boundary and carry //wf:blocking.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"waitfree/internal/seqspec"
)

// MaxFrame is the largest payload the framing accepts, generous against
// the tier's biggest real payload (an op with a handful of varint args)
// while keeping a hostile length prefix from allocating gigabytes.
const MaxFrame = 1 << 20

// Message types (first payload byte).
const (
	MsgOp   = 1
	MsgResp = 2
	MsgErr  = 3
)

// ErrFrameTooBig is returned for a length prefix above MaxFrame.
var ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")

// ErrTruncated is returned when a payload ends before its declared content.
var ErrTruncated = errors.New("wire: truncated payload")

// ErrNonCanonical is returned for an overlong varint encoding. Every
// encoder in this package emits the shortest form, so accepting padded
// forms would only let distinct byte strings alias the same operation.
var ErrNonCanonical = errors.New("wire: non-canonical varint")

// WriteFrame writes one length-prefixed frame. Callers batch small frames
// through a bufio.Writer; WriteFrame itself issues two writes.
//
//wf:blocking socket write: the kernel can stall on a slow peer's window
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough. Returns
// io.EOF only for a clean EOF on the length prefix; a connection cut mid-
// frame surfaces as io.ErrUnexpectedEOF.
//
//wf:blocking socket read: blocks until the peer sends a full frame
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// AppendOp appends op's encoding to b.
//
//wf:waitfree
func AppendOp(b []byte, op seqspec.Op) []byte {
	if len(op.Kind) > 255 || len(op.Args) > 255 {
		panic("wire: op kind or argument count out of range")
	}
	b = append(b, byte(len(op.Kind)))
	b = append(b, op.Kind...)
	b = append(b, byte(len(op.Args)))
	for _, a := range op.Args {
		b = binary.AppendVarint(b, a)
	}
	return b
}

// DecodeOp decodes one op from b and returns the remaining bytes. Varint
// arguments must be in canonical (shortest) form; overlong encodings are
// refused with ErrNonCanonical.
//
//wf:waitfree
func DecodeOp(b []byte) (seqspec.Op, []byte, error) {
	if len(b) < 1 {
		return seqspec.Op{}, nil, ErrTruncated
	}
	kn := int(b[0])
	b = b[1:]
	if len(b) < kn+1 {
		return seqspec.Op{}, nil, ErrTruncated
	}
	op := seqspec.Op{Kind: string(b[:kn])}
	argc := int(b[kn])
	b = b[kn+1:]
	if argc > 0 {
		op.Args = make([]int64, argc)
		for i := 0; i < argc; i++ {
			v, n := binary.Varint(b)
			if n <= 0 {
				return seqspec.Op{}, nil, ErrTruncated
			}
			var canon [binary.MaxVarintLen64]byte
			if binary.PutVarint(canon[:], v) != n {
				return seqspec.Op{}, nil, ErrNonCanonical
			}
			op.Args[i] = v
			b = b[n:]
		}
	}
	return op, b, nil
}

// AppendRequest appends a MsgOp request payload to b.
//
//wf:waitfree
func AppendRequest(b []byte, id uint64, op seqspec.Op) []byte {
	b = append(b, MsgOp)
	b = binary.BigEndian.AppendUint64(b, id)
	return AppendOp(b, op)
}

// DecodeRequest decodes a MsgOp payload (including its type byte).
//
//wf:waitfree
func DecodeRequest(b []byte) (id uint64, op seqspec.Op, err error) {
	if len(b) < 9 || b[0] != MsgOp {
		return 0, seqspec.Op{}, fmt.Errorf("wire: not a request payload (%w)", ErrTruncated)
	}
	id = binary.BigEndian.Uint64(b[1:9])
	op, rest, err := DecodeOp(b[9:])
	if err != nil {
		return 0, seqspec.Op{}, err
	}
	if len(rest) != 0 {
		return 0, seqspec.Op{}, errors.New("wire: trailing bytes after request")
	}
	return id, op, nil
}

// AppendResponse appends a MsgResp payload to b.
//
//wf:waitfree
func AppendResponse(b []byte, id uint64, value int64) []byte {
	b = append(b, MsgResp)
	b = binary.BigEndian.AppendUint64(b, id)
	return binary.BigEndian.AppendUint64(b, uint64(value))
}

// AppendError appends a MsgErr payload to b; long reasons are truncated.
//
//wf:waitfree
func AppendError(b []byte, id uint64, reason string) []byte {
	if len(reason) > 1<<10 {
		reason = reason[:1<<10]
	}
	b = append(b, MsgErr)
	b = binary.BigEndian.AppendUint64(b, id)
	b = binary.BigEndian.AppendUint16(b, uint16(len(reason)))
	return append(b, reason...)
}

// DecodeReply decodes a server reply payload: a MsgResp value or a MsgErr
// reason (returned as a non-nil error wrapping the reason text).
//
//wf:waitfree
func DecodeReply(b []byte) (id uint64, value int64, err error) {
	if len(b) < 9 {
		return 0, 0, ErrTruncated
	}
	id = binary.BigEndian.Uint64(b[1:9])
	switch b[0] {
	case MsgResp:
		if len(b) != 17 {
			return id, 0, ErrTruncated
		}
		return id, int64(binary.BigEndian.Uint64(b[9:17])), nil
	case MsgErr:
		if len(b) < 11 {
			return id, 0, ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(b[9:11]))
		if len(b) != 11+n {
			return id, 0, ErrTruncated
		}
		return id, 0, &RemoteError{Reason: string(b[11:])}
	}
	return id, 0, fmt.Errorf("wire: unknown reply type %d", b[0])
}

// RemoteError is a MsgErr reply: the server refused the operation (unknown
// kind, malformed encoding, no free pid) without closing the connection.
type RemoteError struct{ Reason string }

func (e *RemoteError) Error() string { return "wire: server: " + e.Reason }
