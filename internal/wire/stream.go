package wire

import (
	"encoding/binary"
	"io"
	"sync"
)

// This file is the pipelined hot path's half of the codec: a streaming
// frame Decoder that amortizes read syscalls over many frames, frame-level
// append helpers that let a writer coalesce many responses into one buffer
// (and so one write syscall), and a pooled scratch buffer so the encode
// path allocates nothing in steady state.

// decoderBuf is the Decoder's default buffer size: large enough that a
// deep pipelined burst (hundreds of ~20-byte request frames) arrives in
// one read syscall, small enough to be cheap per connection.
const decoderBuf = 64 << 10

// Decoder reads length-prefixed frames from a byte stream through one
// reusable buffer. One kernel read typically delivers many pipelined
// frames; Next hands them out one by one without further syscalls or
// allocations (the buffer grows only for a frame larger than itself, and
// never beyond MaxFrame plus the 4-byte prefix).
//
// Decoder replaces the ReadFrame-over-bufio pattern on the server's hot
// path: same framing, same refusal of oversized prefixes before any
// allocation, but zero steady-state garbage and one buffer instead of two.
// It is not safe for concurrent use.
type Decoder struct {
	r   io.Reader
	buf []byte
	// buf[start:end] holds bytes read from the stream but not yet returned.
	start, end int
}

// NewDecoder returns a Decoder over r with the default buffer.
func NewDecoder(r io.Reader) *Decoder { return NewDecoderSize(r, decoderBuf) }

// NewDecoderSize returns a Decoder with a specific initial buffer size
// (clamped to at least 8 bytes); the buffer still grows on demand for
// frames larger than it. Small sizes exist so tests can drive the
// compaction and growth paths deterministically.
func NewDecoderSize(r io.Reader, size int) *Decoder {
	if size < 8 {
		size = 8
	}
	return &Decoder{r: r, buf: make([]byte, size)}
}

// Buffered reports how many bytes have been read from the stream but not
// yet returned by Next — non-zero means more frames (or a partial frame)
// are already in memory, which is what a server uses to decide whether the
// connection has gone quiet.
//
//wf:waitfree
func (d *Decoder) Buffered() int { return d.end - d.start }

// Next returns the payload of the next frame. The returned slice aliases
// the Decoder's buffer and is valid only until the following Next call;
// callers that keep a payload must copy it.
//
// Errors mirror ReadFrame: io.EOF only for a clean end of stream at a
// frame boundary, io.ErrUnexpectedEOF for a stream cut mid-frame, and
// ErrFrameTooBig for a length prefix above MaxFrame (refused before any
// allocation).
//
//wf:blocking refills from the underlying stream when the buffer runs dry
func (d *Decoder) Next() ([]byte, error) {
	for {
		if d.end-d.start >= 4 {
			n := binary.BigEndian.Uint32(d.buf[d.start:])
			if n > MaxFrame {
				return nil, ErrFrameTooBig
			}
			total := 4 + int(n)
			if d.end-d.start >= total {
				p := d.buf[d.start+4 : d.start+total : d.start+total]
				d.start += total
				return p, nil
			}
			if total > len(d.buf) {
				// The frame outgrows the buffer: reallocate exactly once,
				// bounded by MaxFrame via the prefix check above.
				grown := make([]byte, total)
				d.end = copy(grown, d.buf[d.start:d.end])
				d.start = 0
				d.buf = grown
			}
		}
		if d.start == d.end {
			// Empty: reset so the whole buffer is refill space.
			d.start, d.end = 0, 0
		} else if d.end == len(d.buf) {
			// Full with a partial frame at the tail: slide it down.
			d.end = copy(d.buf, d.buf[d.start:d.end])
			d.start = 0
		}
		n, err := d.r.Read(d.buf[d.end:])
		d.end += n
		if n == 0 && err != nil {
			if err == io.EOF {
				if d.start == d.end {
					return nil, io.EOF
				}
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
}

// AppendResponseFrame appends a complete MsgResp frame — length prefix and
// payload — to b. A writer appends many of these into one buffer and
// flushes them with a single write syscall (the coalesced-ack path).
//
//wf:waitfree
func AppendResponseFrame(b []byte, id uint64, value int64) []byte {
	b = binary.BigEndian.AppendUint32(b, 17) // 1 type + 8 id + 8 value
	return AppendResponse(b, id, value)
}

// AppendErrorFrame appends a complete MsgErr frame to b; long reasons are
// truncated exactly as AppendError truncates them.
//
//wf:waitfree
func AppendErrorFrame(b []byte, id uint64, reason string) []byte {
	if len(reason) > 1<<10 {
		reason = reason[:1<<10]
	}
	b = binary.BigEndian.AppendUint32(b, uint32(11+len(reason))) // 1 type + 8 id + 2 len
	return AppendError(b, id, reason)
}

// bufPool recycles encode scratch buffers across connections and requests;
// see GetBuf. Pointers-to-slices, the standard trick so Put does not
// allocate a box for the header.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf hands out a pooled scratch buffer (length 0, non-trivial
// capacity). Pair with PutBuf; between the two, the encode path allocates
// nothing in steady state.
//
//wf:blocking sync.Pool's miss path can take runtime-internal locks
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a scratch buffer to the pool. Buffers that grew past
// MaxFrame are dropped instead, so one oversized burst cannot pin a
// gigabyte in the pool forever.
//
//wf:blocking sync.Pool's miss path can take runtime-internal locks
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > MaxFrame {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
