package wire_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// chunkReader returns data in fixed-size chunks, so tests can force the
// Decoder through every partial-frame refill path.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// pipelinedStream builds one byte stream of count request frames and the
// payloads it should decode to.
func pipelinedStream(count int) ([]byte, [][]byte) {
	var stream []byte
	var want [][]byte
	for i := 0; i < count; i++ {
		op := seqspec.Op{Kind: "put", Args: []int64{int64(i), int64(i) * -3}}
		payload := wire.AppendRequest(nil, uint64(i+1), op)
		stream = binary.BigEndian.AppendUint32(stream, uint32(len(payload)))
		stream = append(stream, payload...)
		want = append(want, payload)
	}
	return stream, want
}

// TestDecoderPipelined: many frames in one stream come back one by one,
// whatever the chunk size the kernel happens to deliver — including chunk
// sizes that split every length prefix and every payload.
func TestDecoderPipelined(t *testing.T) {
	stream, want := pipelinedStream(64)
	for _, chunk := range []int{1, 2, 3, 5, 7, 16, len(stream)} {
		d := wire.NewDecoderSize(&chunkReader{data: stream, n: chunk}, 32)
		for i, w := range want {
			got, err := d.Next()
			if err != nil {
				t.Fatalf("chunk=%d frame %d: %v", chunk, i, err)
			}
			if !bytes.Equal(got, w) {
				t.Fatalf("chunk=%d frame %d = %x, want %x", chunk, i, got, w)
			}
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("chunk=%d: after last frame err = %v, want io.EOF", chunk, err)
		}
	}
}

// TestDecoderSplitEveryBoundary: the stream cut at every byte boundary
// must either decode the complete prefix of frames and then report
// ErrUnexpectedEOF, or io.EOF exactly at a frame boundary.
func TestDecoderSplitEveryBoundary(t *testing.T) {
	stream, want := pipelinedStream(4)
	boundaries := map[int]bool{0: true}
	off := 0
	for _, w := range want {
		off += 4 + len(w)
		boundaries[off] = true
	}
	for cut := 0; cut <= len(stream); cut++ {
		d := wire.NewDecoderSize(bytes.NewReader(stream[:cut]), 16)
		frames := 0
		for {
			got, err := d.Next()
			if err == nil {
				if !bytes.Equal(got, want[frames]) {
					t.Fatalf("cut=%d frame %d = %x, want %x", cut, frames, got, want[frames])
				}
				frames++
				continue
			}
			if boundaries[cut] {
				if err != io.EOF {
					t.Fatalf("cut=%d (frame boundary): err = %v, want io.EOF", cut, err)
				}
			} else if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut=%d (mid-frame): err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
			break
		}
	}
}

// TestDecoderOversizedPrefix: a hostile length prefix is refused before
// any allocation, exactly like ReadFrame.
func TestDecoderOversizedPrefix(t *testing.T) {
	var stream []byte
	stream = binary.BigEndian.AppendUint32(stream, wire.MaxFrame+1)
	stream = append(stream, 0xff)
	d := wire.NewDecoder(bytes.NewReader(stream))
	if _, err := d.Next(); err != wire.ErrFrameTooBig {
		t.Fatalf("Next = %v, want ErrFrameTooBig", err)
	}
}

// TestDecoderGrowsForLargeFrame: a frame larger than the initial buffer is
// still decoded (one bounded reallocation), and decoding continues after.
func TestDecoderGrowsForLargeFrame(t *testing.T) {
	big := bytes.Repeat([]byte{0xab}, 1000)
	var stream []byte
	stream = binary.BigEndian.AppendUint32(stream, uint32(len(big)))
	stream = append(stream, big...)
	small := wire.AppendResponse(nil, 9, 42)
	stream = binary.BigEndian.AppendUint32(stream, uint32(len(small)))
	stream = append(stream, small...)

	d := wire.NewDecoderSize(&chunkReader{data: stream, n: 13}, 16)
	got, err := d.Next()
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large frame: err=%v len=%d", err, len(got))
	}
	got, err = d.Next()
	if err != nil || !bytes.Equal(got, small) {
		t.Fatalf("frame after growth: err=%v got=%x", err, got)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("tail err = %v, want io.EOF", err)
	}
}

// TestDecoderZeroAlloc: once warm, decoding frames that fit the buffer
// allocates nothing.
func TestDecoderZeroAlloc(t *testing.T) {
	stream, _ := pipelinedStream(8)
	var src bytes.Reader
	d := wire.NewDecoder(&src)
	allocs := testing.AllocsPerRun(100, func() {
		src.Reset(stream)
		for {
			if _, err := d.Next(); err != nil {
				if err != io.EOF {
					t.Fatalf("Next: %v", err)
				}
				return
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decoder allocates %.1f per run, want 0", allocs)
	}
}

// TestAppendFrameHelpers: the coalescing frame appenders emit exactly what
// WriteFrame would, back to back in one buffer.
func TestAppendFrameHelpers(t *testing.T) {
	var want bytes.Buffer
	if err := wire.WriteFrame(&want, wire.AppendResponse(nil, 7, -5)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(&want, wire.AppendError(nil, 8, "nope")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	got = wire.AppendResponseFrame(got, 7, -5)
	got = wire.AppendErrorFrame(got, 8, "nope")
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("coalesced frames = %x, want %x", got, want.Bytes())
	}

	// Both frames decode back out through the Decoder.
	d := wire.NewDecoder(bytes.NewReader(got))
	p, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if id, v, err := wire.DecodeReply(p); err != nil || id != 7 || v != -5 {
		t.Fatalf("reply 1 = (%d, %d, %v)", id, v, err)
	}
	p, err = d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if id, _, err := wire.DecodeReply(p); id != 8 || err == nil {
		t.Fatalf("reply 2 = (%d, %v), want id 8 and a RemoteError", id, err)
	}
}

// TestAppendErrorFrameTruncates: the frame length prefix must agree with
// AppendError's reason truncation, or the stream desynchronizes.
func TestAppendErrorFrameTruncates(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, 5000))
	b := wire.AppendErrorFrame(nil, 1, long)
	n := binary.BigEndian.Uint32(b)
	if int(n) != len(b)-4 {
		t.Fatalf("prefix says %d bytes, frame has %d", n, len(b)-4)
	}
	if _, _, err := wire.DecodeReply(b[4:]); err == nil {
		t.Fatalf("truncated-reason error frame decoded as success")
	}
}

// TestBufPool: pooled buffers come back empty and oversized ones are
// dropped rather than pinned.
func TestBufPool(t *testing.T) {
	b := wire.GetBuf()
	*b = append(*b, 1, 2, 3)
	wire.PutBuf(b)
	b2 := wire.GetBuf()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer has length %d, want 0", len(*b2))
	}
	wire.PutBuf(b2)
	huge := make([]byte, 0, wire.MaxFrame+1)
	wire.PutBuf(&huge) // must not panic; silently dropped
	wire.PutBuf(nil)   // nil-safe
}
