package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"waitfree/internal/seqspec"
)

// TestFrameRoundTrip: frames of assorted sizes survive a write/read cycle,
// including the empty payload, and buffer reuse returns the same bytes.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x42}, bytes.Repeat([]byte("wf"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	scratch := make([]byte, 0, 8)
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("EOF read = %v, want io.EOF", err)
	}
}

// TestFrameLimits: an oversized length prefix is refused before allocation,
// and a frame cut mid-payload is an unexpected EOF, not a clean one.
func TestFrameLimits(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err != ErrFrameTooBig {
		t.Errorf("oversize write = %v, want ErrFrameTooBig", err)
	}
	big := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(big), nil); err != ErrFrameTooBig {
		t.Errorf("oversize read = %v, want ErrFrameTooBig", err)
	}
	cut := []byte{0, 0, 0, 8, 'h', 'i'}
	if _, err := ReadFrame(bytes.NewReader(cut), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("torn read = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestOpRoundTrip: the op encoding is exact over the KV op shapes and the
// int64 extremes (zig-zag varints must carry negatives and Empty).
func TestOpRoundTrip(t *testing.T) {
	ops := []seqspec.Op{
		{Kind: "len"},
		{Kind: "get", Args: []int64{7}},
		{Kind: "put", Args: []int64{-3, math.MaxInt64}},
		{Kind: "del", Args: []int64{math.MinInt64}},
		{Kind: "x", Args: []int64{seqspec.Empty, 0, 1}},
	}
	var b []byte
	for _, op := range ops {
		b = AppendOp(b, op)
	}
	for _, want := range ops {
		var got seqspec.Op
		var err error
		got, b, err = DecodeOp(b)
		if err != nil {
			t.Fatalf("DecodeOp: %v", err)
		}
		if got.String() != want.String() {
			t.Fatalf("op = %s, want %s", got, want)
		}
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes after decoding all ops", len(b))
	}
}

// TestRequestReplyRoundTrip: request and both reply forms round-trip with
// their ids; the error reply surfaces as a RemoteError.
func TestRequestReplyRoundTrip(t *testing.T) {
	op := seqspec.Op{Kind: "put", Args: []int64{1, 2}}
	req := AppendRequest(nil, 99, op)
	id, got, err := DecodeRequest(req)
	if err != nil || id != 99 || got.String() != op.String() {
		t.Fatalf("DecodeRequest = (%d, %s, %v), want (99, %s, nil)", id, got, err, op)
	}
	id, v, err := DecodeReply(AppendResponse(nil, 7, -12))
	if err != nil || id != 7 || v != -12 {
		t.Fatalf("DecodeReply(resp) = (%d, %d, %v)", id, v, err)
	}
	id, _, err = DecodeReply(AppendError(nil, 8, "unknown op"))
	var re *RemoteError
	if id != 8 || !errors.As(err, &re) || re.Reason != "unknown op" {
		t.Fatalf("DecodeReply(err) = (%d, %v)", id, err)
	}
}

// TestDecodeTruncated: every strict prefix of a valid request fails with a
// decode error rather than panicking or succeeding.
func TestDecodeTruncated(t *testing.T) {
	req := AppendRequest(nil, 5, seqspec.Op{Kind: "put", Args: []int64{1, 1 << 40}})
	for i := 0; i < len(req); i++ {
		if _, _, err := DecodeRequest(req[:i]); err == nil {
			t.Fatalf("DecodeRequest accepted a %d/%d-byte prefix", i, len(req))
		}
	}
}

// TestDecodeNonCanonical: an overlong varint encoding of an argument is
// refused, so every operation has exactly one byte representation.
func TestDecodeNonCanonical(t *testing.T) {
	// -60 zig-zags to 0x77; pad it to the two-byte form 0xf7 0x00.
	enc := []byte{3, 'p', 'u', 't', 1, 0xf7, 0x00}
	if _, _, err := DecodeOp(enc); !errors.Is(err, ErrNonCanonical) {
		t.Fatalf("DecodeOp(overlong varint) = %v, want ErrNonCanonical", err)
	}
	canon := []byte{3, 'p', 'u', 't', 1, 0x77}
	op, rest, err := DecodeOp(canon)
	if err != nil || len(rest) != 0 || op.Args[0] != -60 {
		t.Fatalf("DecodeOp(canonical) = (%+v, %x, %v)", op, rest, err)
	}
}
