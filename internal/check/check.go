// Package check exhaustively verifies wait-free consensus protocols in the
// model world (internal/model).
//
// Given a protocol and the shared object it runs over, the checker explores
// every interleaving of process steps from the initial configuration. Because
// objects are linearizable and operations total, one atomic
// invocation+response per step is a faithful execution model (Section 2 of
// Herlihy's paper). The explored graph includes every crash pattern: a crash
// of process p is exactly a branch on which p is never scheduled again, and
// all such branches are explored.
//
// Verified properties (Section 3 of the paper):
//
//   - Agreement: no execution has two decision values.
//   - Validity (partial correctness condition 2): if the decision value is
//     process Pj's input, Pj took at least one step, ruling out trivial
//     predefined choices.
//   - Wait-freedom: the configuration graph is finite and acyclic, so every
//     process that keeps taking steps decides after finitely many of its own
//     steps, regardless of what other processes do (including halting). The
//     checker also reports the worst-case per-process step count, which
//     witnesses the *strongly* wait-free bound when finite.
package check

import (
	"fmt"
	"strings"

	"waitfree/internal/model"
)

// ViolationKind classifies a checker failure.
type ViolationKind string

// Violation kinds.
const (
	// ViolationAgreement: two different decision values in one execution.
	ViolationAgreement ViolationKind = "agreement"
	// ViolationValidity: a decision value whose owner never took a step.
	ViolationValidity ViolationKind = "validity"
	// ViolationTermination: a cycle in the configuration graph (a process
	// could run forever without deciding).
	ViolationTermination ViolationKind = "termination"
	// ViolationStepBound: a process exceeded the configured step budget.
	ViolationStepBound ViolationKind = "step-bound"
)

// Violation describes a property failure, with the execution that exposes it.
type Violation struct {
	Kind  ViolationKind
	Pid   int         // process whose step exposed the violation
	Value model.Value // offending decision value, if applicable
	Trace []string    // human-readable execution from the initial config
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violation at P%d (value %d) after: %s",
		v.Kind, v.Pid, v.Value, strings.Join(v.Trace, "; "))
}

// Result reports the outcome of a consensus check.
type Result struct {
	OK        bool
	Violation *Violation
	// Configs is the number of distinct configurations explored.
	Configs int
	// MaxSteps is the largest number of steps any single process took in
	// any execution; it witnesses the strongly-wait-free bound.
	MaxSteps int
	// Decisions is the set of decision values observed across executions.
	Decisions map[model.Value]bool
}

// Options tunes a check.
type Options struct {
	// StepBudget caps per-process steps; 0 means 256.
	StepBudget int
	// ConfigBudget caps explored configurations; 0 means 20 million.
	ConfigBudget int
}

type config struct {
	obj      string
	locals   []string
	decided  []bool
	moved    []bool
	firstDec model.Value // None until the first decision
	steps    []int       // per-process step counts (not part of the key)
}

func (c *config) key() string {
	var b strings.Builder
	b.WriteString(c.obj)
	b.WriteByte('#')
	for i, l := range c.locals {
		if i > 0 {
			b.WriteByte('&')
		}
		if c.decided[i] {
			b.WriteString("D")
		} else {
			b.WriteString(l)
		}
		if c.moved[i] {
			b.WriteByte('!')
		}
	}
	b.WriteByte('#')
	b.WriteString(fmt.Sprint(c.firstDec))
	return b.String()
}

func (c *config) clone() *config {
	d := &config{
		obj:      c.obj,
		locals:   append([]string(nil), c.locals...),
		decided:  append([]bool(nil), c.decided...),
		moved:    append([]bool(nil), c.moved...),
		firstDec: c.firstDec,
		steps:    append([]int(nil), c.steps...),
	}
	return d
}

type checker struct {
	p       model.Protocol
	obj     model.Object
	inputs  []model.Value
	opts    Options
	visited map[string]bool
	onStack map[string]bool
	trace   []string
	res     *Result
}

// Consensus exhaustively checks protocol p over object obj with the given
// input assignment (by the paper's election convention, inputs are usually
// the process ids themselves).
func Consensus(p model.Protocol, obj model.Object, inputs []model.Value, opts Options) Result {
	if opts.StepBudget == 0 {
		opts.StepBudget = 256
	}
	if opts.ConfigBudget == 0 {
		opts.ConfigBudget = 20_000_000
	}
	n := p.Procs()
	if len(inputs) != n {
		panic("check: len(inputs) must equal p.Procs()")
	}
	c := &config{
		obj:      obj.Init(),
		locals:   make([]string, n),
		decided:  make([]bool, n),
		moved:    make([]bool, n),
		firstDec: model.None,
		steps:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.locals[i] = p.Init(i, inputs[i])
	}
	ck := &checker{
		p: p, obj: obj, inputs: inputs, opts: opts,
		visited: make(map[string]bool),
		onStack: make(map[string]bool),
		res:     &Result{OK: true, Decisions: make(map[model.Value]bool)},
	}
	ck.explore(c)
	return *ck.res
}

// explore walks all successors of c depth-first. It returns false when a
// violation has been recorded and the search should unwind.
func (ck *checker) explore(c *config) bool {
	if !ck.res.OK {
		return false
	}
	k := c.key()
	if ck.visited[k] {
		return true
	}
	if len(ck.visited) >= ck.opts.ConfigBudget {
		ck.fail(ViolationStepBound, -1, model.None)
		return false
	}
	ck.visited[k] = true
	ck.onStack[k] = true
	defer delete(ck.onStack, k)
	ck.res.Configs = len(ck.visited)

	n := ck.p.Procs()
	for pid := 0; pid < n; pid++ {
		if c.decided[pid] {
			continue
		}
		act := ck.p.Step(pid, c.locals[pid])
		next := c.clone()
		next.moved[pid] = true // both deciding and invoking count as steps
		next.steps[pid]++
		if next.steps[pid] > ck.opts.StepBudget {
			ck.trace = append(ck.trace, fmt.Sprintf("P%d exceeds step budget", pid))
			ck.fail(ViolationStepBound, pid, model.None)
			return false
		}
		if next.steps[pid] > ck.res.MaxSteps {
			ck.res.MaxSteps = next.steps[pid]
		}

		switch act.Kind {
		case model.ActDecide:
			ck.trace = append(ck.trace, fmt.Sprintf("P%d decides %d", pid, act.Dec))
			if !ck.checkDecision(c, pid, act.Dec) {
				return false
			}
			next.decided[pid] = true
			if next.firstDec == model.None {
				next.firstDec = act.Dec
			}
			ck.res.Decisions[act.Dec] = true
			if !ck.recurse(next) {
				return false
			}
			ck.trace = ck.trace[:len(ck.trace)-1]

		case model.ActInvoke:
			objNext, resp := ck.obj.Apply(c.obj, act.Op)
			next.obj = objNext
			next.locals[pid] = ck.p.Next(pid, c.locals[pid], resp)
			ck.trace = append(ck.trace, fmt.Sprintf("P%d %s -> %d", pid, act.Op, resp))
			if !ck.recurse(next) {
				return false
			}
			ck.trace = ck.trace[:len(ck.trace)-1]

		default:
			panic("check: protocol returned an invalid action kind")
		}
	}
	return true
}

func (ck *checker) recurse(next *config) bool {
	nk := next.key()
	if ck.onStack[nk] {
		ck.fail(ViolationTermination, -1, model.None)
		return false
	}
	return ck.explore(next)
}

// checkDecision validates a decision of value v by process pid in config c.
func (ck *checker) checkDecision(c *config, pid int, v model.Value) bool {
	if c.firstDec != model.None && c.firstDec != v {
		ck.fail(ViolationAgreement, pid, v)
		return false
	}
	// The decision value must be some process's input, and per the paper's
	// partial-correctness condition 2, at least one process holding that
	// input must have taken a step (so the value was not predefined).
	owned, moved := false, false
	for j, in := range ck.inputs {
		if in != v {
			continue
		}
		owned = true
		// The decider's own deciding step counts as a step by the owner
		// when the decider owns the value.
		moved = moved || c.moved[j] || j == pid
	}
	if !owned || !moved {
		ck.fail(ViolationValidity, pid, v)
		return false
	}
	return true
}

func (ck *checker) fail(kind ViolationKind, pid int, v model.Value) {
	if !ck.res.OK {
		return
	}
	ck.res.OK = false
	ck.res.Violation = &Violation{
		Kind:  kind,
		Pid:   pid,
		Value: v,
		Trace: append([]string(nil), ck.trace...),
	}
}

// AllInputs checks the protocol under every input assignment drawn from the
// election convention: all permutations where inputs are exactly the process
// ids. For protocols that treat inputs opaquely this is redundant with the
// identity assignment, but it is cheap insurance against pid/input
// asymmetries.
func AllInputs(p model.Protocol, obj model.Object, opts Options) Result {
	n := p.Procs()
	ids := make([]model.Value, n)
	for i := range ids {
		ids[i] = model.Value(i)
	}
	var last Result
	ok := true
	permute(ids, func(perm []model.Value) bool {
		last = Consensus(p, obj, perm, opts)
		ok = last.OK
		return ok
	})
	if !ok {
		return last
	}
	return last
}

// permute invokes f on every permutation of vs; f returning false stops.
func permute(vs []model.Value, f func([]model.Value) bool) {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(vs) {
			return f(vs)
		}
		for i := k; i < len(vs); i++ {
			vs[k], vs[i] = vs[i], vs[k]
			if !rec(k + 1) {
				vs[k], vs[i] = vs[i], vs[k]
				return false
			}
			vs[k], vs[i] = vs[i], vs[k]
		}
		return true
	}
	rec(0)
}
