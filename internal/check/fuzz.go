package check

import (
	"fmt"
	"math/rand"

	"waitfree/internal/model"
)

// Fuzz samples random schedules of protocol p over obj instead of
// exhausting them — the tool for configurations whose interleaving space is
// too large to enumerate (exhaustive checking covers n <= 3). Each trial
// draws a random participant subset (absentees model crashed processes), a
// random input permutation, and a random interleaving, then checks
// agreement, validity and the per-process step budget.
func Fuzz(p model.Protocol, obj model.Object, trials int, seed int64, opts Options) Result {
	if opts.StepBudget == 0 {
		opts.StepBudget = 4096
	}
	n := p.Procs()
	rng := rand.New(rand.NewSource(seed))
	res := Result{OK: true, Decisions: make(map[model.Value]bool)}

	for trial := 0; trial < trials; trial++ {
		inputs := rng.Perm(n)
		var live []int
		for pid := 0; pid < n; pid++ {
			if rng.Intn(4) > 0 {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			live = append(live, rng.Intn(n))
		}

		obState := obj.Init()
		locals := make([]string, n)
		decided := make([]bool, n)
		moved := make([]bool, n)
		steps := make([]int, n)
		firstDec := model.None
		var trace []string

		fail := func(kind ViolationKind, pid int, v model.Value) Result {
			return Result{
				OK: false,
				Violation: &Violation{
					Kind: kind, Pid: pid, Value: v,
					Trace: append([]string{fmt.Sprintf("fuzz trial %d", trial)}, trace...),
				},
				Configs:   res.Configs,
				MaxSteps:  res.MaxSteps,
				Decisions: res.Decisions,
			}
		}

		for pid := 0; pid < n; pid++ {
			locals[pid] = p.Init(pid, model.Value(inputs[pid]))
		}
		//wf:bounded every iteration steps one undecided live process and the per-process step budget caps total steps at n*StepBudget
		for {
			var ready []int
			for _, pid := range live {
				if !decided[pid] {
					ready = append(ready, pid)
				}
			}
			if len(ready) == 0 {
				break
			}
			pid := ready[rng.Intn(len(ready))]
			steps[pid]++
			res.Configs++
			if steps[pid] > res.MaxSteps {
				res.MaxSteps = steps[pid]
			}
			if steps[pid] > opts.StepBudget {
				return fail(ViolationStepBound, pid, model.None)
			}
			act := p.Step(pid, locals[pid])
			switch act.Kind {
			case model.ActDecide:
				trace = append(trace, fmt.Sprintf("P%d decides %d", pid, act.Dec))
				if firstDec != model.None && firstDec != act.Dec {
					return fail(ViolationAgreement, pid, act.Dec)
				}
				owned := false
				for j := 0; j < n; j++ {
					if model.Value(inputs[j]) == act.Dec && (moved[j] || j == pid) {
						owned = true
						break
					}
				}
				if !owned {
					return fail(ViolationValidity, pid, act.Dec)
				}
				if firstDec == model.None {
					firstDec = act.Dec
				}
				decided[pid] = true
				moved[pid] = true
				res.Decisions[act.Dec] = true
			case model.ActInvoke:
				var resp model.Value
				obState, resp = obj.Apply(obState, act.Op)
				trace = append(trace, fmt.Sprintf("P%d %s -> %d", pid, act.Op, resp))
				locals[pid] = p.Next(pid, locals[pid], resp)
				moved[pid] = true
			}
			if len(trace) > 64 {
				trace = trace[1:]
			}
		}
	}
	return res
}
