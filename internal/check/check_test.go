package check

import (
	"strings"
	"testing"

	"waitfree/internal/model"
)

// toy protocols exercising the checker's violation detection.

// fixedDecider immediately decides a fixed value, ignoring its input —
// violating validity when the value's owner never moved.
func fixedDecider(n int, v model.Value) model.Protocol {
	return &model.Machine{
		ProtoName: "fixed",
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value { return []model.Value{input} },
		OnStep: func(pid, pc int, vars []model.Value) model.Action {
			return model.Decide(v)
		},
		OnResp: func(pid, pc int, vars []model.Value, resp model.Value) (int, []model.Value) {
			panic("no invocations")
		},
	}
}

// ownDecider decides its own input immediately — agreement must fail for
// two processes with distinct inputs.
func ownDecider(n int) model.Protocol {
	return &model.Machine{
		ProtoName: "own",
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value { return []model.Value{input} },
		OnStep: func(pid, pc int, vars []model.Value) model.Action {
			return model.Decide(vars[0])
		},
		OnResp: func(pid, pc int, vars []model.Value, resp model.Value) (int, []model.Value) {
			panic("no invocations")
		},
	}
}

// spinner reads forever — wait-freedom must fail.
func spinner(n int) model.Protocol {
	return &model.Machine{
		ProtoName: "spinner",
		N:         n,
		StartVars: func(pid int, input model.Value) []model.Value { return []model.Value{input} },
		OnStep: func(pid, pc int, vars []model.Value) model.Action {
			return model.Invoke(model.Op{Kind: "read", A: 0, B: model.None, C: model.None})
		},
		OnResp: func(pid, pc int, vars []model.Value, resp model.Value) (int, []model.Value) {
			return 0, vars // never advances: same local state forever
		},
	}
}

func TestDetectsAgreementViolation(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Consensus(ownDecider(2), obj, []model.Value{0, 1}, Options{})
	if res.OK || res.Violation.Kind != ViolationAgreement {
		t.Fatalf("want agreement violation, got %+v", res)
	}
}

func TestDetectsValidityViolation(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	// Decides P1's input before P1 ever moves: in the schedule where P0
	// decides first, validity fails.
	res := Consensus(fixedDecider(2, 1), obj, []model.Value{0, 1}, Options{})
	if res.OK || res.Violation.Kind != ViolationValidity {
		t.Fatalf("want validity violation, got %+v", res)
	}
}

func TestDetectsNonTermination(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Consensus(spinner(1), obj, []model.Value{0}, Options{})
	if res.OK {
		t.Fatal("spinner accepted")
	}
	if res.Violation.Kind != ViolationTermination {
		t.Fatalf("want termination violation, got %v", res.Violation.Kind)
	}
}

func TestAcceptsOwnDeciderSingleProcess(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Consensus(ownDecider(1), obj, []model.Value{7}, Options{})
	if !res.OK {
		t.Fatalf("single own-decider rejected: %v", res.Violation)
	}
	if !res.Decisions[7] {
		t.Fatalf("decisions = %v", res.Decisions)
	}
}

func TestViolationTraceReadable(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Consensus(ownDecider(2), obj, []model.Value{0, 1}, Options{})
	if res.OK {
		t.Fatal("expected violation")
	}
	msg := res.Violation.Error()
	if !strings.Contains(msg, "agreement") || !strings.Contains(msg, "decides") {
		t.Errorf("trace not descriptive: %s", msg)
	}
}

func TestFuzzDetectsAgreementViolation(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Fuzz(ownDecider(3), obj, 200, 1, Options{})
	if res.OK {
		t.Fatal("fuzz missed an agreement violation across 200 trials")
	}
}

func TestFuzzAcceptsCorrectProtocol(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	res := Fuzz(ownDecider(1), obj, 100, 1, Options{})
	if !res.OK {
		t.Fatalf("fuzz rejected a correct protocol: %v", res.Violation)
	}
}

func TestStepBudget(t *testing.T) {
	obj := model.NewMemory("m", []model.Value{0})
	// A machine that advances pc forever (fresh states, no cycle) trips the
	// step budget rather than the cycle detector.
	walker := &model.Machine{
		ProtoName: "walker",
		N:         1,
		StartVars: func(pid int, input model.Value) []model.Value { return []model.Value{0} },
		OnStep: func(pid, pc int, vars []model.Value) model.Action {
			return model.Invoke(model.Op{Kind: "read", A: 0, B: model.None, C: model.None})
		},
		OnResp: func(pid, pc int, vars []model.Value, resp model.Value) (int, []model.Value) {
			return pc + 1, vars
		},
	}
	res := Consensus(walker, obj, []model.Value{0}, Options{StepBudget: 16})
	if res.OK || res.Violation.Kind != ViolationStepBound {
		t.Fatalf("want step-bound violation, got %+v", res)
	}
}
