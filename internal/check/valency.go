package check

import (
	"fmt"
	"sort"
	"strings"

	"waitfree/internal/model"
)

// Valency analysis reproduces the proof machinery of the paper's
// impossibility results (Theorems 2, 6, 11, 22): label every reachable
// protocol configuration with the set of decision values still reachable
// from it. A configuration is bivalent if more than one value is reachable,
// univalent otherwise; a critical configuration is a bivalent one all of
// whose successors are univalent. The impossibility proofs all work by
// maneuvering a hypothetical protocol into a critical configuration and
// deriving a contradiction; for *correct* protocols the analysis exhibits
// exactly where the decision "really happens".

// ValencyNode is one configuration in the valency graph.
type ValencyNode struct {
	// Key is the configuration encoding.
	Key string
	// Values is the sorted set of decision values reachable from here.
	Values []model.Value
	// Critical reports whether this node is bivalent with all successors
	// univalent.
	Critical bool
	// Succs indexes successor nodes by the step that reaches them.
	Succs map[string]string
}

// Bivalent reports whether more than one decision value is reachable.
func (n *ValencyNode) Bivalent() bool { return len(n.Values) > 1 }

// ValencyReport summarizes a valency analysis.
type ValencyReport struct {
	Nodes        map[string]*ValencyNode
	InitialKey   string
	Bivalent     int
	Univalent    int
	Critical     int
	CriticalKeys []string
}

// String renders the headline numbers.
func (r *ValencyReport) String() string {
	init := r.Nodes[r.InitialKey]
	return fmt.Sprintf(
		"configs=%d bivalent=%d univalent=%d critical=%d initial-valency=%d",
		len(r.Nodes), r.Bivalent, r.Univalent, r.Critical, len(init.Values))
}

type vnode struct {
	cfg    *config
	values map[model.Value]bool
	succs  map[string]string
}

// Valency builds the full configuration graph of protocol p over obj and
// labels every node with its reachable decision values. The protocol must
// be correct (checked first with Consensus); the analysis then mirrors the
// paper's proofs by reporting bivalent and critical configurations.
func Valency(p model.Protocol, obj model.Object, inputs []model.Value) *ValencyReport {
	n := p.Procs()
	init := &config{
		obj:      obj.Init(),
		locals:   make([]string, n),
		decided:  make([]bool, n),
		moved:    make([]bool, n),
		firstDec: model.None,
		steps:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		init.locals[i] = p.Init(i, inputs[i])
	}

	nodes := make(map[string]*vnode)
	var build func(c *config) *vnode
	build = func(c *config) *vnode {
		k := c.key()
		if nd, ok := nodes[k]; ok {
			return nd
		}
		nd := &vnode{cfg: c, values: make(map[model.Value]bool), succs: make(map[string]string)}
		nodes[k] = nd
		for pid := 0; pid < n; pid++ {
			if c.decided[pid] {
				continue
			}
			act := p.Step(pid, c.locals[pid])
			next := c.clone()
			next.moved[pid] = true
			var label string
			switch act.Kind {
			case model.ActDecide:
				next.decided[pid] = true
				if next.firstDec == model.None {
					next.firstDec = act.Dec
				}
				label = fmt.Sprintf("P%d decides %d", pid, act.Dec)
			case model.ActInvoke:
				var resp model.Value
				next.obj, resp = obj.Apply(c.obj, act.Op)
				next.locals[pid] = p.Next(pid, c.locals[pid], resp)
				label = fmt.Sprintf("P%d %s -> %d", pid, act.Op, resp)
			}
			child := build(next)
			nd.succs[label] = next.key()
			for v := range child.values {
				nd.values[v] = true
			}
		}
		if c.firstDec != model.None {
			nd.values[c.firstDec] = true
		}
		return nd
	}
	build(init)

	rep := &ValencyReport{Nodes: make(map[string]*ValencyNode, len(nodes)), InitialKey: init.key()}
	for k, nd := range nodes {
		vals := make([]model.Value, 0, len(nd.values))
		for v := range nd.values {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		out := &ValencyNode{Key: k, Values: vals, Succs: nd.succs}
		rep.Nodes[k] = out
	}
	for k, out := range rep.Nodes {
		if !out.Bivalent() {
			rep.Univalent++
			continue
		}
		rep.Bivalent++
		critical := len(out.Succs) > 0
		for _, sk := range out.Succs {
			if rep.Nodes[sk].Bivalent() {
				critical = false
				break
			}
		}
		out.Critical = critical
		if critical {
			rep.Critical++
			rep.CriticalKeys = append(rep.CriticalKeys, k)
		}
	}
	sort.Strings(rep.CriticalKeys)
	return rep
}

// DescribeCritical renders one critical configuration and the valency of
// each of its successor steps, in the style of the paper's case analyses.
func (r *ValencyReport) DescribeCritical(key string) string {
	nd, ok := r.Nodes[key]
	if !ok || !nd.Critical {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical configuration %s\n", key)
	labels := make([]string, 0, len(nd.Succs))
	for l := range nd.Succs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		succ := r.Nodes[nd.Succs[l]]
		fmt.Fprintf(&b, "  %-30s -> %d-valent %v\n", l, len(succ.Values), succ.Values)
	}
	return b.String()
}
