package check_test

import (
	"fmt"

	"waitfree/internal/check"
	"waitfree/internal/model"
	"waitfree/internal/protocols"
)

// ExampleConsensus verifies the Theorem 9 queue protocol over every
// interleaving of two processes.
func ExampleConsensus() {
	inst := protocols.Queue2()
	res := check.Consensus(inst.Proto, inst.Obj, []model.Value{0, 1}, check.Options{})
	fmt.Println(res.OK, res.MaxSteps)
	// Output: true 4
}

// ExampleValency reproduces the proof machinery of the impossibility
// theorems on a correct protocol: the initial configuration is bivalent and
// the decision is fixed at a critical step.
func ExampleValency() {
	inst := protocols.Queue2()
	rep := check.Valency(inst.Proto, inst.Obj, []model.Value{0, 1})
	init := rep.Nodes[rep.InitialKey]
	fmt.Println(init.Bivalent(), rep.Critical)
	// Output: true 1
}

// ExampleFuzz samples random schedules (including crash patterns) at a size
// beyond exhaustive reach.
func ExampleFuzz() {
	inst := protocols.CAS(6)
	res := check.Fuzz(inst.Proto, inst.Obj, 500, 1, check.Options{})
	fmt.Println(res.OK)
	// Output: true
}
