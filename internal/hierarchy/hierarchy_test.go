package hierarchy

import (
	"strings"
	"testing"
)

// TestTableStructure: the fast table (no synthesis) must reproduce Figure
// 1-1's rows, and every lower-bound model check must have succeeded.
func TestTableStructure(t *testing.T) {
	var progress []string
	rows := Table(Options{Progress: func(s string) { progress = append(progress, s) }})

	wantLevels := map[string]string{
		"atomic read/write registers":       "1",
		"point-to-point FIFO channels":      "1",
		"test-and-set, swap, fetch-and-add": "2",
		"FIFO queue, stack":                 "2",
		"n-register assignment":             "2n-2",
		"memory-to-memory move":             "inf",
		"memory-to-memory swap":             "inf",
		"augmented queue (peek)":            "inf",
		"compare-and-swap":                  "inf",
		"ordered broadcast":                 "inf",
		"fetch-and-cons":                    "inf",
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		if want, ok := wantLevels[r.Object]; ok {
			seen[r.Object] = true
			if r.Level != want {
				t.Errorf("%s: level %s, want %s", r.Object, r.Level, want)
			}
		}
		if strings.Contains(r.Lower.Detail, "FAILED") {
			t.Errorf("%s: lower bound failed: %s", r.Object, r.Lower.Detail)
		}
		if strings.Contains(r.Upper.Detail, "FAILED") ||
			strings.Contains(r.Upper.Detail, "contradicted") {
			t.Errorf("%s: upper bound failed: %s", r.Object, r.Upper.Detail)
		}
	}
	for obj := range wantLevels {
		if !seen[obj] {
			t.Errorf("missing row for %q", obj)
		}
	}
	if len(progress) == 0 {
		t.Error("progress callback never invoked")
	}
}
