package hierarchy

import (
	"fmt"

	"waitfree/internal/check"
	"waitfree/internal/model"
	"waitfree/internal/synth"
)

// Classification is a bounded estimate of an object's position in
// Figure 1-1, produced by Classify.
type Classification struct {
	// Lower is a *certain* lower bound: a wait-free consensus protocol for
	// this many processes was synthesized and independently re-verified by
	// the exhaustive checker. At least 1 (every object trivially solves
	// 1-process consensus).
	Lower int
	// Exact reports whether the search for Lower+1 processes exhausted its
	// space without finding a protocol — making Lower the object's
	// consensus number *within the searched bounds* (operation depth,
	// value domain). Bounded searches cannot rule out deeper protocols:
	// e.g. a bare FIFO queue needs auxiliary registers and depth 3 to
	// realize its Theorem 9 level-2 protocol.
	Exact bool
	// Depth is the per-process operation bound used.
	Depth int
	// Detail describes the evidence.
	Detail string
}

// String renders the verdict.
func (c Classification) String() string {
	rel := ">="
	if c.Exact {
		rel = "="
	}
	return fmt.Sprintf("consensus number %s %d (depth %d): %s", rel, c.Lower, c.Depth, c.Detail)
}

// Classify estimates the consensus number of an arbitrary model object by
// bounded protocol synthesis: it searches for 2-process and then 3-process
// wait-free binary consensus protocols over the object's operation menu.
// Found protocols are re-verified with the exhaustive checker, so lower
// bounds are certain; "exact" verdicts are relative to the searched bounds.
// budget of 0 uses the synthesizer's default node budget.
func Classify(obj model.Object, depth int, budget int64) Classification {
	c := Classification{Lower: 1, Depth: depth}

	res2 := synth.Search(obj, synth.Params{Procs: 2, Depth: depth, NodeBudget: budget})
	if !res2.Found {
		c.Exact = res2.Complete
		if res2.Complete {
			c.Detail = fmt.Sprintf("no 2-process protocol exists within bounds (%d nodes exhausted)", res2.Nodes)
		} else {
			c.Detail = fmt.Sprintf("2-process search inconclusive (budget exhausted at %d nodes)", res2.Nodes)
		}
		return c
	}
	if !reverify(obj, 2, res2) {
		c.Detail = "INTERNAL ERROR: synthesized 2-process protocol failed re-verification"
		return c
	}
	c.Lower = 2

	res3 := synth.Search(obj, synth.Params{Procs: 3, Depth: depth, NodeBudget: budget})
	if !res3.Found {
		c.Exact = res3.Complete
		if res3.Complete {
			c.Detail = fmt.Sprintf("2-process protocol found (%d states); no 3-process protocol within bounds (%d nodes exhausted)",
				len(res2.Strategy), res3.Nodes)
		} else {
			c.Detail = fmt.Sprintf("2-process protocol found; 3-process search inconclusive (%d nodes)", res3.Nodes)
		}
		return c
	}
	if !reverify(obj, 3, res3) {
		c.Detail = "INTERNAL ERROR: synthesized 3-process protocol failed re-verification"
		return c
	}
	c.Lower = 3
	c.Detail = fmt.Sprintf("3-process protocol found (%d states); higher levels not searched — "+
		"by the paper's hierarchy the object may be universal", len(res3.Strategy))
	return c
}

// reverify replays a synthesized strategy through the exhaustive checker
// under every input assignment.
func reverify(obj model.Object, n int, res synth.Result) bool {
	sp := &synth.StrategyProtocol{ProtoName: "classified", N: n, Strategy: res.Strategy}
	for bits := 0; bits < 1<<n; bits++ {
		inputs := make([]model.Value, n)
		for p := 0; p < n; p++ {
			inputs[p] = model.Value((bits >> p) & 1)
		}
		if !check.Consensus(sp, obj, inputs, check.Options{}).OK {
			return false
		}
	}
	return true
}
