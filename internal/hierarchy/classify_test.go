package hierarchy

import (
	"strings"
	"testing"

	"waitfree/internal/model"
)

func casObject(n int) model.Object {
	fn := model.RMWFn{
		Name: "compare-and-swap",
		Apply: func(cur, a, b model.Value) model.Value {
			if cur == a {
				return b
			}
			return cur
		},
		Operands: [][2]model.Value{{model.None, 0}, {model.None, 1}},
	}
	return model.NewMemory("cas-reg", []model.Value{model.None},
		model.WithRMW(fn), model.WithoutRW())
}

// TestClassifyRegisters: a single read/write register classifies at
// consensus number exactly 1 within depth 2 — Theorem 2's machine shadow.
func TestClassifyRegisters(t *testing.T) {
	c := Classify(model.NewMemory("rw", []model.Value{0}), 2, 0)
	if c.Lower != 1 || !c.Exact {
		t.Fatalf("registers: %s", c)
	}
	t.Logf("%s", c)
}

// TestClassifyCAS: a compare-and-swap register classifies at >= 3 within
// depth 1 (the searcher finds and re-verifies 2- and 3-process protocols).
func TestClassifyCAS(t *testing.T) {
	c := Classify(casObject(3), 1, 0)
	if c.Lower != 3 {
		t.Fatalf("cas: %s", c)
	}
	if !strings.Contains(c.Detail, "universal") {
		t.Errorf("cas detail should point at the hierarchy: %s", c.Detail)
	}
	t.Logf("%s", c)
}

// TestClassifyTAS: a bare test-and-set register has no way to communicate
// the winner's input, so at depth 1 it classifies as 1-within-bounds —
// and the Exact flag honestly reports that this is a bounded verdict (the
// true consensus number is 2, reachable with announce registers and depth
// 3, per Theorem 4).
func TestClassifyTAS(t *testing.T) {
	obj := model.NewMemory("tas", []model.Value{0},
		model.WithRMW(model.TestAndSet), model.WithoutRW())
	c := Classify(obj, 1, 0)
	if c.Lower != 1 || !c.Exact {
		t.Fatalf("tas at depth 1: %s", c)
	}
	t.Logf("%s (bounded verdict; Theorem 4 protocol needs registers + depth 3)", c)
}

// TestClassifyBudgetExhaustion: with a tiny budget the classifier reports
// inconclusiveness instead of a fake verdict.
func TestClassifyBudgetExhaustion(t *testing.T) {
	c := Classify(model.NewMemory("rw", make([]model.Value, 2)), 3, 1000)
	if c.Exact {
		t.Fatalf("tiny budget must not produce an exact verdict: %s", c)
	}
	if !strings.Contains(c.Detail, "inconclusive") {
		t.Errorf("detail should say inconclusive: %s", c.Detail)
	}
}
