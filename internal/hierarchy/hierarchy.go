// Package hierarchy assembles Figure 1-1 of the paper — the
// impossibility/universality hierarchy — from machine evidence:
//
//   - Lower bounds ("this object solves n-process consensus") come from the
//     paper's protocols, verified exhaustively over all interleavings by
//     internal/check.
//   - Upper bounds ("...and no more than n") come from the Theorem 6
//     interference decision procedure where it applies, and from bounded
//     exhaustive protocol synthesis (internal/synth) elsewhere; bounds the
//     machines cannot reach cite the paper's theorem.
package hierarchy

import (
	"fmt"
	"strings"

	"waitfree/internal/check"
	"waitfree/internal/interfere"
	"waitfree/internal/model"
	"waitfree/internal/protocols"
	"waitfree/internal/synth"
)

// Evidence describes how one side of a consensus-number bound was obtained.
type Evidence struct {
	// Kind is one of "model-checked", "interference", "synthesis",
	// "construction", "theorem".
	Kind   string
	Detail string
}

// Row is one line of Figure 1-1.
type Row struct {
	Level  string // consensus number: "1", "2", "2n-2", "inf"
	Object string
	Lower  Evidence
	Upper  Evidence
}

// Options selects how much machine evidence to (re)compute.
type Options struct {
	// Synthesis enables the bounded exhaustive protocol searches for the
	// impossibility bounds (minutes of CPU); without it those bounds cite
	// the paper's theorems.
	Synthesis bool
	// Progress, if non-nil, receives status lines.
	Progress func(string)
}

func (o Options) log(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// checkProto verifies a model protocol exhaustively and renders evidence.
func checkProto(inst protocols.Instance) Evidence {
	res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
	if !res.OK {
		return Evidence{Kind: "model-checked", Detail: "FAILED: " + res.Violation.Error()}
	}
	return Evidence{
		Kind: "model-checked",
		Detail: fmt.Sprintf("%s verified over all interleavings (%d configs, <=%d steps/proc)",
			inst.Proto.Name(), res.Configs, res.MaxSteps),
	}
}

// Table computes the hierarchy. Lower-bound protocol checks always run
// (they are sub-second); synthesis-based upper bounds run only when
// requested.
func Table(opts Options) []Row {
	var rows []Row

	// Level 1: atomic read/write registers.
	opts.log("registers: valency analysis and (optional) synthesis")
	regUpper := Evidence{Kind: "theorem", Detail: "Theorem 2 (valency argument); enable synthesis for machine evidence"}
	if opts.Synthesis {
		mem := model.NewMemory("rw", make([]model.Value, 2))
		res := synth.Search(mem, synth.Params{Procs: 2, Depth: 2})
		res3 := synth.Search(model.NewMemory("rw1", make([]model.Value, 1)), synth.Params{Procs: 2, Depth: 3})
		regUpper = Evidence{
			Kind: "synthesis",
			Detail: fmt.Sprintf("no 2-proc protocol: 2 regs depth 2 (%d nodes), 1 reg depth 3 (%d nodes), searches exhausted",
				res.Nodes, res3.Nodes),
		}
		if res.Found || res3.Found {
			regUpper.Detail = "SYNTHESIS FOUND A PROTOCOL — Theorem 2 contradicted?!"
		}
	}
	rows = append(rows, Row{
		Level:  "1",
		Object: "atomic read/write registers",
		Lower:  Evidence{Kind: "construction", Detail: "any object solves 1-process consensus trivially"},
		Upper:  regUpper,
	})

	// Level 1 (message passing): point-to-point FIFO channels.
	opts.log("point-to-point FIFO channels: (optional) synthesis")
	chUpper := Evidence{Kind: "theorem", Detail: "Dolev-Dwork-Stockmeyer via Section 3.1; enable synthesis for machine evidence"}
	if opts.Synthesis {
		res := synth.Search(model.NewChannels("p2p", 2), synth.Params{Procs: 2, Depth: 2})
		chUpper = Evidence{
			Kind:   "synthesis",
			Detail: fmt.Sprintf("no 2-proc protocol at depth 2 (%d nodes, exhausted)", res.Nodes),
		}
		if res.Found {
			chUpper.Detail = "SYNTHESIS FOUND A PROTOCOL — DDS result contradicted?!"
		}
	}
	rows = append(rows, Row{
		Level:  "1",
		Object: "point-to-point FIFO channels",
		Lower:  Evidence{Kind: "construction", Detail: "any object solves 1-process consensus trivially"},
		Upper:  chUpper,
	})

	// Level 2: interfering read-modify-write primitives.
	opts.log("test-and-set/swap/fetch-and-add: protocol checks and interference")
	tas := checkProto(protocols.RMW2(model.TestAndSet, 0, 0))
	irep := interfere.Check(interfere.ClassicalSet(8))
	upper2 := Evidence{
		Kind: "interference",
		Detail: fmt.Sprintf("classical set interferes (%d triples checked) => consensus number <= 2 by Theorem 6",
			irep.Pairs),
	}
	if !irep.Interfering {
		upper2.Detail = "interference check FAILED: " + irep.Witness.String()
	}
	if opts.Synthesis {
		swap := model.SwapRMW
		swap.Operands = [][2]model.Value{{0, model.None}, {1, model.None}}
		faa := model.FetchAndAdd
		faa.Operands = [][2]model.Value{{1, model.None}}
		var parts []string
		for _, fam := range []struct {
			name string
			fn   model.RMWFn
		}{{"tas", model.TestAndSet}, {"swap", swap}, {"faa", faa}} {
			mem := model.NewMemory(fam.name, []model.Value{0},
				model.WithRMW(fam.fn), model.WithoutRW())
			res := synth.Search(mem, synth.Params{Procs: 3, Depth: 2})
			if res.Found {
				upper2.Detail = "SYNTHESIS FOUND A 3-PROCESS PROTOCOL — Theorem 6 contradicted?!"
			}
			parts = append(parts, fmt.Sprintf("%s %dk nodes", fam.name, res.Nodes/1000))
		}
		upper2.Detail += fmt.Sprintf("; synthesis: no 3-proc depth-2 protocol per family (%s, exhausted)",
			strings.Join(parts, ", "))
	}
	rows = append(rows, Row{
		Level:  "2",
		Object: "test-and-set, swap, fetch-and-add",
		Lower:  tas,
		Upper:  upper2,
	})

	// Level 2: FIFO queue and stack.
	opts.log("queue/stack: protocol checks and (optional) synthesis")
	qUpper := Evidence{Kind: "theorem", Detail: "Theorem 11; enable synthesis for machine evidence"}
	if opts.Synthesis {
		res := synth.Search(model.NewQueue("queue", nil), synth.Params{Procs: 3, Depth: 2})
		qUpper = Evidence{
			Kind:   "synthesis",
			Detail: fmt.Sprintf("no 3-proc protocol over a queue at depth 2 (%d nodes, exhausted)", res.Nodes),
		}
		if res.Found {
			qUpper.Detail = "SYNTHESIS FOUND A PROTOCOL — Theorem 11 contradicted?!"
		}
	}
	rows = append(rows, Row{
		Level:  "2",
		Object: "FIFO queue, stack",
		Lower:  checkProto(protocols.Queue2()),
		Upper:  qUpper,
	})

	// Level 2n-2: n-register assignment.
	opts.log("n-register assignment: protocol checks")
	a2 := checkProto(protocols.Assign2Phase(2))
	rows = append(rows, Row{
		Level:  "2n-2",
		Object: "n-register assignment",
		Lower: Evidence{Kind: "model-checked",
			Detail: fmt.Sprintf("Theorem 19 (n procs) and Theorems 20/21 (2n-2 procs): %s; plus %s",
				checkProto(protocols.Assign(3)).Detail, a2.Detail)},
		Upper: Evidence{Kind: "theorem", Detail: "Theorem 22 counting argument (no 2n-1 protocol)"},
	})

	// Level infinity.
	opts.log("universal objects: protocol checks at n=2,3")
	infinite := []struct {
		name string
		mk   func(n int) protocols.Instance
	}{
		{"memory-to-memory move", protocols.Move},
		{"memory-to-memory swap", protocols.MemSwap},
		{"augmented queue (peek)", protocols.AugQueue},
		{"compare-and-swap", protocols.CAS},
		{"ordered broadcast", protocols.BroadcastConsensus},
	}
	for _, obj := range infinite {
		e2 := check.AllInputs(obj.mk(2).Proto, obj.mk(2).Obj, check.Options{})
		e3 := check.AllInputs(obj.mk(3).Proto, obj.mk(3).Obj, check.Options{})
		detail := fmt.Sprintf("n-process protocol for all n; verified exhaustively at n=2 (%d configs) and n=3 (%d configs)",
			e2.Configs, e3.Configs)
		if !e2.OK || !e3.OK {
			detail = "model check FAILED"
		}
		rows = append(rows, Row{
			Level:  "inf",
			Object: obj.name,
			Lower:  Evidence{Kind: "model-checked", Detail: detail},
			Upper:  Evidence{Kind: "construction", Detail: "universal by Theorem 26 (solves consensus for every n)"},
		})
	}

	// Fetch-and-cons: universal by the Section 4 construction itself.
	rows = append(rows, Row{
		Level:  "inf",
		Object: "fetch-and-cons",
		Lower:  Evidence{Kind: "construction", Detail: "solves n-process consensus: cons your id, decide the list tail's first element"},
		Upper:  Evidence{Kind: "construction", Detail: "universal: Section 4.1 reduction, implemented in internal/core"},
	})
	return rows
}
