package interfere

import (
	"testing"
	"testing/quick"
)

// TestClassicalSetInterferes: read, write, test-and-set, swap and
// fetch-and-add form an interfering set at every domain size — the Theorem 6
// hypothesis for the classical primitives, hence consensus number at most 2.
func TestClassicalSetInterferes(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8, 16} {
		rep := Check(ClassicalSet(d))
		if !rep.Interfering {
			t.Errorf("domain %d: classical set should interfere; witness: %s", d, rep.Witness)
		} else {
			t.Logf("domain %d: interfering (%d triples)", d, rep.Pairs)
		}
	}
}

// TestCASBreaksInterference: adding compare-and-swap to the classical set
// destroys interference (Corollary 8's separation).
func TestCASBreaksInterference(t *testing.T) {
	for _, d := range []int{3, 4, 8} {
		fns := append(ClassicalSet(d), CASFamily(d)...)
		rep := Check(fns)
		if rep.Interfering {
			t.Errorf("domain %d: CAS should break interference", d)
		} else {
			t.Logf("domain %d: witness: %s", d, rep.Witness)
		}
	}
}

// TestCASAloneNotInterfering: even the pure CAS family is non-interfering
// for domains of size >= 3.
func TestCASAloneNotInterfering(t *testing.T) {
	rep := Check(CASFamily(3))
	if rep.Interfering {
		t.Error("CAS family over domain 3 should not interfere")
	}
}

// TestPairwiseSubsets: every two-element subset of the classical set
// interferes (interference is established pairwise).
func TestPairwiseSubsets(t *testing.T) {
	const d = 6
	set := ClassicalSet(d)
	for i := range set {
		for j := i; j < len(set); j++ {
			rep := Check([]Fn{set[i], set[j]})
			if !rep.Interfering {
				t.Errorf("pair (%s, %s) should interfere; witness: %s",
					set[i].Name, set[j].Name, rep.Witness)
			}
		}
	}
}

// TestCheckProperties uses testing/quick to validate structural properties
// of the checker itself: any set of constant functions interferes
// (constants always overwrite), and any singleton {f} interferes with
// itself only if f(f(v)) is consistent — which always holds, since f
// trivially commutes with itself.
func TestCheckProperties(t *testing.T) {
	constants := func(cs []uint8) bool {
		const d = 8
		var fns []Fn
		for _, c := range cs {
			fns = append(fns, Write(d, int(c%d)))
		}
		return Check(fns).Interfering
	}
	if err := quick.Check(constants, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("constant sets must interfere: %v", err)
	}

	selfCommute := func(tab []uint8) bool {
		const d = 8
		if len(tab) < d {
			return true
		}
		m := make([]int, d)
		for v := range m {
			m[v] = int(tab[v] % d)
		}
		return Check([]Fn{{Name: "f", Map: m}}).Interfering
	}
	if err := quick.Check(selfCommute, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("singletons must interfere (self-commutation): %v", err)
	}
}

// TestWitnessIsReal: when the checker reports a witness, the witness indeed
// violates both commutation and overwriting.
func TestWitnessIsReal(t *testing.T) {
	fns := append(ClassicalSet(4), CASFamily(4)...)
	rep := Check(fns)
	if rep.Interfering {
		t.Fatal("expected a witness")
	}
	w := rep.Witness
	fg := w.F.Apply(w.G.Apply(w.V))
	gf := w.G.Apply(w.F.Apply(w.V))
	if fg == gf || fg == w.F.Apply(w.V) || gf == w.G.Apply(w.V) {
		t.Errorf("reported witness does not violate interference: %s", w)
	}
}
