package interfere_test

import (
	"fmt"

	"waitfree/internal/interfere"
)

// ExampleCheck decides the Theorem 6 hypothesis for the classical
// primitives, and shows compare-and-swap breaking it.
func ExampleCheck() {
	classical := interfere.ClassicalSet(4)
	fmt.Println("classical interferes:", interfere.Check(classical).Interfering)

	withCAS := append(classical, interfere.CASFamily(4)...)
	rep := interfere.Check(withCAS)
	fmt.Println("with CAS interferes:", rep.Interfering)
	// Output:
	// classical interferes: true
	// with CAS interferes: false
}
