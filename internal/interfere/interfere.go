// Package interfere implements the decision procedure behind Theorem 6:
// a set F of read-modify-write functions is *interfering* if for every
// value v and all f, g in F, either f and g commute at v
// (f(g(v)) == g(f(v))) or one overwrites the other at v
// (f(g(v)) == f(v) or g(f(v)) == g(v)).
//
// Theorem 6 proves that no combination of read-modify-write operations
// drawn from an interfering set can solve three-process wait-free
// consensus. Over a finite domain the property is exactly decidable by
// enumeration, which classifies the classical primitives: read, write,
// test-and-set, swap and fetch-and-add form an interfering set (so their
// consensus number is at most 2 — and exactly 2 by Theorem 4), while
// compare-and-swap breaks interference (Corollary 8's separation, and by
// Theorem 7 it is universal).
package interfere

import (
	"fmt"
)

// Fn is a unary function over the finite domain {0, ..., D-1}, tabulated.
type Fn struct {
	Name string
	Map  []int // Map[v] = f(v)
}

// Apply evaluates the function.
func (f Fn) Apply(v int) int { return f.Map[v] }

// Witness is a counterexample to interference: a value and a pair of
// functions that neither commute nor overwrite there.
type Witness struct {
	F, G Fn
	V    int
}

// String renders the counterexample with all four relevant values.
func (w Witness) String() string {
	fg := w.F.Apply(w.G.Apply(w.V))
	gf := w.G.Apply(w.F.Apply(w.V))
	return fmt.Sprintf("at v=%d: %s(%s(v))=%d, %s(%s(v))=%d, %s(v)=%d, %s(v)=%d",
		w.V, w.F.Name, w.G.Name, fg, w.G.Name, w.F.Name, gf,
		w.F.Name, w.F.Apply(w.V), w.G.Name, w.G.Apply(w.V))
}

// Report is the outcome of an interference check.
type Report struct {
	Interfering bool
	Witness     *Witness // non-nil iff not interfering
	Pairs       int      // (f, g, v) triples examined
}

// Check decides whether fns is an interfering set. All functions must share
// one domain size.
func Check(fns []Fn) Report {
	rep := Report{Interfering: true}
	for i, f := range fns {
		for j, g := range fns {
			if j < i {
				continue
			}
			for v := range f.Map {
				rep.Pairs++
				fg := f.Apply(g.Apply(v))
				gf := g.Apply(f.Apply(v))
				commute := fg == gf
				overwriteFG := fg == f.Apply(v)
				overwriteGF := gf == g.Apply(v)
				if !commute && !overwriteFG && !overwriteGF {
					w := Witness{F: f, G: g, V: v}
					return Report{Interfering: false, Witness: &w, Pairs: rep.Pairs}
				}
			}
		}
	}
	return rep
}

// Standard families over a domain of size d.

// Read is the identity (the trivial RMW).
func Read(d int) Fn {
	m := make([]int, d)
	for v := range m {
		m[v] = v
	}
	return Fn{Name: "read", Map: m}
}

// Write is the constant function writing c.
func Write(d, c int) Fn {
	m := make([]int, d)
	for v := range m {
		m[v] = c
	}
	return Fn{Name: fmt.Sprintf("write%d", c), Map: m}
}

// TestAndSet sets to 1.
func TestAndSet(d int) Fn {
	f := Write(d, 1)
	f.Name = "test-and-set"
	return f
}

// Swap is the constant function for operand c (the register-to-processor
// swap of Section 3.2).
func Swap(d, c int) Fn {
	f := Write(d, c)
	f.Name = fmt.Sprintf("swap%d", c)
	return f
}

// FetchAndAdd adds k modulo the domain size (a finite-domain projection of
// unbounded addition; commutation and overwriting are preserved exactly).
func FetchAndAdd(d, k int) Fn {
	m := make([]int, d)
	for v := range m {
		m[v] = (v + k) % d
	}
	return Fn{Name: fmt.Sprintf("faa%d", k), Map: m}
}

// CompareAndSwap writes b when the value equals a, else leaves it.
func CompareAndSwap(d, a, b int) Fn {
	m := make([]int, d)
	for v := range m {
		if v == a {
			m[v] = b
		} else {
			m[v] = v
		}
	}
	return Fn{Name: fmt.Sprintf("cas%d-%d", a, b), Map: m}
}

// ClassicalSet builds the paper's classical interfering family over domain
// size d: read, all writes, test-and-set, all swaps, and all fetch-and-adds.
func ClassicalSet(d int) []Fn {
	fns := []Fn{Read(d), TestAndSet(d)}
	for c := 0; c < d; c++ {
		fns = append(fns, Write(d, c), Swap(d, c))
	}
	for k := 1; k < d; k++ {
		fns = append(fns, FetchAndAdd(d, k))
	}
	return fns
}

// CASFamily builds every compare-and-swap instance over domain size d.
func CASFamily(d int) []Fn {
	var fns []Fn
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if a != b {
				fns = append(fns, CompareAndSwap(d, a, b))
			}
		}
	}
	return fns
}
