package server

import (
	"runtime"
	"testing"
	"time"

	"waitfree/internal/seqspec"
)

// serverCycle runs one full server lifetime: start (with persistence, so
// the appliers and stats loop spawn too), serve a few clients — including
// a pipelined burst, so each connection's writer goroutine carries real
// out-of-order traffic before the shutdown edge — then close.
func serverCycle(t *testing.T, dir string) {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", StatsAddr: "127.0.0.1:0", Shards: 4, Procs: 8, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	for c := 0; c < 3; c++ {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			s.Close()
			t.Fatalf("Dial: %v", err)
		}
		for k := int64(0); k < 8; k++ {
			if _, err := cl.Put(k, k*10); err != nil {
				cl.Close()
				s.Close()
				t.Fatalf("Put: %v", err)
			}
		}
		// Pipelined burst: mixed writes and reads in flight together, so
		// completions traverse both the applier path and the inline fast
		// path while the window is deep.
		pending := map[uint64]bool{}
		for k := int64(0); k < 16; k++ {
			op := seqspec.Op{Kind: "put", Args: []int64{k % 4, k}}
			if k%3 == 0 {
				op = seqspec.Op{Kind: "get", Args: []int64{k % 4}}
			}
			id, err := cl.Send(op)
			if err != nil {
				cl.Close()
				s.Close()
				t.Fatalf("Send: %v", err)
			}
			pending[id] = true
		}
		if err := cl.Flush(); err != nil {
			cl.Close()
			s.Close()
			t.Fatalf("Flush: %v", err)
		}
		for len(pending) > 0 {
			id, _, err := cl.Recv()
			if err != nil || !pending[id] {
				cl.Close()
				s.Close()
				t.Fatalf("Recv: id %d, err %v", id, err)
			}
			delete(pending, id)
		}
		if _, err := cl.Get(1); err != nil {
			cl.Close()
			s.Close()
			t.Fatalf("Get: %v", err)
		}
		cl.Close()
	}
	s.Close()
}

// TestServerGoroutineHygiene pins the //wf:owns contract dynamically: after
// a full start/serve/shutdown cycle every spawned goroutine — accept loop,
// stats server, per-shard appliers, per-connection handlers — has reached
// its declared shutdown mechanism and exited, returning the process to its
// goroutine baseline.
func TestServerGoroutineHygiene(t *testing.T) {
	// A throwaway warm-up cycle absorbs goroutines the runtime and net/http
	// start lazily and never retire (DNS resolver, http server bookkeeping).
	serverCycle(t, t.TempDir())

	// The warm-up's own goroutines may still be draining; settle first.
	deadline := time.Now().Add(5 * time.Second)
	baseline := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n := runtime.NumGoroutine()
		if n <= baseline {
			baseline = n
			break
		}
		baseline = n
		time.Sleep(10 * time.Millisecond)
	}

	serverCycle(t, t.TempDir())

	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines did not return to baseline: %d > %d\n%s", n, baseline, buf)
}

// TestServerGoroutineHygieneInMemory is the same pin for the no-persistence
// configuration (no appliers, no store flusher).
func TestServerGoroutineHygieneInMemory(t *testing.T) {
	serverCycle(t, "")
	deadline := time.Now().Add(5 * time.Second)
	baseline := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n := runtime.NumGoroutine()
		if n <= baseline {
			baseline = n
			break
		}
		baseline = n
		time.Sleep(10 * time.Millisecond)
	}

	serverCycle(t, "")

	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines did not return to baseline: %d > %d\n%s", n, baseline, buf)
}
