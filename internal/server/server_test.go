package server

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"waitfree/internal/linearize"
	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// startServer boots a test server on ephemeral ports and returns it with a
// cleanup. dir == "" runs without persistence.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServerBasicOps: the whole KV surface works over a real socket.
func TestServerBasicOps(t *testing.T) {
	s := startServer(t, Config{Shards: 4, Procs: 8})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	if v, err := cl.Put(1, 10); err != nil || v != seqspec.Empty {
		t.Fatalf("put(1,10) = (%d, %v)", v, err)
	}
	if v, err := cl.Get(1); err != nil || v != 10 {
		t.Fatalf("get(1) = (%d, %v), want 10", v, err)
	}
	if v, err := cl.Len(); err != nil || v != 1 {
		t.Fatalf("len = (%d, %v), want 1", v, err)
	}
	if v, err := cl.Del(1); err != nil || v != 10 {
		t.Fatalf("del(1) = (%d, %v), want 10", v, err)
	}
	if v, err := cl.Get(1); err != nil || v != seqspec.Empty {
		t.Fatalf("get(1) after del = (%d, %v), want Empty", v, err)
	}
}

// TestServerPipelining: many requests queued before one flush each come
// back exactly once, reassembled by id — order is the server's choice (a
// read answered inline may overtake a write), so the test demands the id
// set, not the sequence.
func TestServerPipelining(t *testing.T) {
	s := startServer(t, Config{Shards: 4, Procs: 8})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const n = 100
	pending := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id, err := cl.Send(seqspec.Op{Kind: "put", Args: []int64{int64(i), int64(i * 2)}})
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		if pending[id] {
			t.Fatalf("Send reused id %d", id)
		}
		pending[id] = true
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < n; i++ {
		id, _, err := cl.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if !pending[id] {
			t.Fatalf("response %d has id %d: duplicate or never requested", i, id)
		}
		delete(pending, id)
	}
	if len(pending) != 0 {
		t.Fatalf("%d requests never answered", len(pending))
	}
	if v, err := cl.Get(n - 1); err != nil || v != (n-1)*2 {
		t.Fatalf("get(%d) = (%d, %v), want %d", n-1, v, err, (n-1)*2)
	}
}

// TestServerPipelinedDifferential is the pipelined-client correctness
// test: one client runs a mixed op stream fully pipelined (writes and
// dependent reads in flight together, completions arriving out of order)
// against a persistent server, while the same stream runs sequentially on
// a second fresh server. Program order per connection must be preserved —
// every pipelined response, reassembled by request id, must equal the
// sequential run's response at the same stream position.
func TestServerPipelinedDifferential(t *testing.T) {
	const (
		nOps  = 600
		keys  = 16
		depth = 32
	)
	rng := rand.New(rand.NewSource(42))
	ops := make([]seqspec.Op, nOps)
	for i := range ops {
		k := rng.Int63n(keys)
		switch rng.Intn(6) {
		case 0, 1:
			ops[i] = seqspec.Op{Kind: "put", Args: []int64{k, rng.Int63n(1000)}}
		case 2:
			ops[i] = seqspec.Op{Kind: "del", Args: []int64{k}}
		case 3:
			ops[i] = seqspec.Op{Kind: "len"}
		default:
			ops[i] = seqspec.Op{Kind: "get", Args: []int64{k}}
		}
	}

	run := func(pipelined bool) []int64 {
		s := startServer(t, Config{Shards: 4, Procs: 8, Dir: t.TempDir(), Window: depth})
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer cl.Close()
		out := make([]int64, nOps)
		if !pipelined {
			for i, op := range ops {
				v, err := cl.Do(op)
				if err != nil {
					t.Fatalf("sequential Do(%s): %v", op, err)
				}
				out[i] = v
			}
			return out
		}
		// Pipelined: keep up to depth requests in flight, reassemble by id.
		idx := make(map[uint64]int, depth)
		inFlight := 0
		recv := func() {
			id, v, err := cl.Recv()
			if err != nil {
				t.Fatalf("pipelined Recv: %v", err)
			}
			i, ok := idx[id]
			if !ok {
				t.Fatalf("response id %d: duplicate or never requested", id)
			}
			delete(idx, id)
			out[i] = v
			inFlight--
		}
		for i, op := range ops {
			if inFlight == depth {
				if err := cl.Flush(); err != nil {
					t.Fatalf("Flush: %v", err)
				}
				recv()
			}
			id, err := cl.Send(op)
			if err != nil {
				t.Fatalf("Send: %v", err)
			}
			idx[id] = i
			inFlight++
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		for inFlight > 0 {
			recv()
		}
		return out
	}

	want := run(false)
	got := run(true)
	for i := range ops {
		if got[i] != want[i] {
			t.Fatalf("op %d (%s): pipelined response %d, sequential %d — program order broken",
				i, ops[i], got[i], want[i])
		}
	}
}

// TestServerRefusesBadOps: unknown kinds and wrong arities come back as
// RemoteErrors without killing the connection; the KVRouter panic for
// unknown kinds must never be reachable from the socket.
func TestServerRefusesBadOps(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 4})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	bad := []seqspec.Op{
		{Kind: "enq", Args: []int64{1}},
		{Kind: "put", Args: []int64{1}},
		{Kind: "len", Args: []int64{1}},
		{Kind: ""},
	}
	for _, op := range bad {
		if _, err := cl.Do(op); err == nil {
			t.Fatalf("op %s accepted, want RemoteError", op)
		} else if _, ok := err.(*wire.RemoteError); !ok {
			t.Fatalf("op %s: err = %v, want *wire.RemoteError", op, err)
		}
	}
	// Connection survived the refusals.
	if v, err := cl.Put(5, 50); err != nil || v != seqspec.Empty {
		t.Fatalf("put after refusals = (%d, %v)", v, err)
	}
	if v, err := cl.Get(5); err != nil || v != 50 {
		t.Fatalf("get after refusals = (%d, %v), want 50", v, err)
	}
}

// TestServerMalformedFrame: a syntactically broken payload gets one error
// frame and a hangup, not a panic or a hang.
func TestServerMalformedFrame(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 4})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := wire.ReadFrame(c, nil)
	if err != nil {
		t.Fatalf("expected an error frame before hangup, got %v", err)
	}
	if _, _, err := wire.DecodeReply(payload); err == nil {
		t.Fatalf("reply to garbage decoded as success")
	}
	// Server must now close; next read is EOF.
	if _, err := wire.ReadFrame(c, nil); err == nil {
		t.Fatalf("connection stayed open after malformed request")
	}
}

// TestServerPoolExhausted: with a single pid, a second concurrent
// connection is refused with the documented reason, and the slot frees up
// once the first client leaves.
func TestServerPoolExhausted(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 1})
	first, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := first.Put(1, 1); err != nil {
		t.Fatalf("put: %v", err)
	}
	second, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	_, _, err = second.Recv()
	re, ok := err.(*wire.RemoteError)
	if !ok || re.Reason != errNoFreePid {
		t.Fatalf("second conn err = %v, want RemoteError(%q)", err, errNoFreePid)
	}
	second.Close()
	first.Close()
	// The leased pid must come back: poll until a fresh connection works.
	deadline := time.Now().Add(5 * time.Second)
	for {
		third, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		v, err := third.Get(1)
		third.Close()
		if err == nil && v == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pid never returned to the pool: get = (%d, %v)", v, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerConcurrentLinearizable: concurrent clients over real sockets
// record a history that must linearize against the sequential KV.
func TestServerConcurrentLinearizable(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 16})
	const (
		clients = 6
		ops     = 12
		keys    = 2
	)
	var rec linearize.Recorder
	var wg sync.WaitGroup
	for p := 0; p < clients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(p) * 7919))
			for i := 0; i < ops; i++ {
				var op seqspec.Op
				switch rng.Intn(3) {
				case 0:
					op = seqspec.Op{Kind: "put", Args: []int64{rng.Int63n(keys), rng.Int63n(50)}}
				case 1:
					op = seqspec.Op{Kind: "get", Args: []int64{rng.Int63n(keys)}}
				default:
					op = seqspec.Op{Kind: "del", Args: []int64{rng.Int63n(keys)}}
				}
				ts := rec.Invoke()
				v, err := cl.Do(op)
				if err != nil {
					t.Errorf("Do(%s): %v", op, err)
					return
				}
				rec.Complete(p, op, v, ts)
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	res := linearize.Check(seqspec.KV{}, rec.History())
	if !res.OK {
		t.Fatalf("history over the socket is not linearizable (%d states searched)", res.States)
	}
}

// TestServerLeaseChurnGC is the acceptance test for the departed-client
// fix: under connection churn — clients that connect, write, and leave —
// the decided logs keep retiring entries. Before Detach-on-disconnect,
// every pool pid that had ever served a client pinned the low-water mark
// at that client's last write forever, so Retired() froze and the logs
// grew without bound.
func TestServerLeaseChurnGC(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 4})
	sessions := 60
	if testing.Short() {
		sessions = 20
	}
	const opsPerSession = 24
	var lastRetired int64
	grew := 0
	for sess := 0; sess < sessions; sess++ {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		for i := 0; i < opsPerSession; i++ {
			if _, err := cl.Put(int64(i%8), int64(sess)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		cl.Close()
		if r := s.KV().Retired(); r > lastRetired {
			lastRetired = r
			grew++
		}
	}
	if lastRetired == 0 {
		t.Fatalf("Retired() never advanced over %d churned sessions: departed clients still pin log GC", sessions)
	}
	if grew < 3 {
		t.Fatalf("Retired() advanced only %d times over %d sessions; GC is effectively pinned", grew, sessions)
	}
	t.Logf("retired %d log entries across %d churned sessions", lastRetired, sessions)
}

// TestServerStatsEndpoint: the HTTP side serves JSON with the server and
// shard metrics in it.
func TestServerStatsEndpoint(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Procs: 4, StatsAddr: "127.0.0.1:0"})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := cl.Put(1, 2); err != nil {
		t.Fatalf("put: %v", err)
	}
	cl.Close()

	found := map[string]bool{}
	for _, smp := range s.Metrics().Snapshot() {
		found[smp.Name] = true
	}
	for _, want := range []string{"server.conns_total", "server.ops", "server.conns_active", "shard.imbalance_pct"} {
		if !found[want] {
			t.Errorf("metric %q missing from registry", want)
		}
	}

	c, err := net.Dial("tcp", s.StatsAddr().String())
	if err != nil {
		t.Fatalf("dial stats: %v", err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /stats HTTP/1.0\r\n\r\n")
	buf := make([]byte, 1<<16)
	n, _ := c.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "200 OK") || !strings.Contains(body, "server.ops") {
		t.Fatalf("stats response missing expected content:\n%s", body)
	}
}
