package server

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

// benchConns runs a read-heavy closed-loop workload over `conns` real TCP
// connections against an in-process server and reports ops/s and latency
// percentiles. This is the service-tier headline number: thousands of
// kernel sockets multiplexed onto one wait-free sharded KV.
func benchConns(b *testing.B, conns int, persist bool) {
	cfg := Config{Addr: "127.0.0.1:0", Shards: 16, Procs: conns + 8}
	if persist {
		cfg.Dir = b.TempDir()
		cfg.SnapshotEvery = 1 << 16
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Close()
	addr := s.Addr().String()

	clients := make([]*Client, conns)
	for i := range clients {
		cl, err := Dial(addr)
		if err != nil {
			b.Fatalf("Dial %d: %v", i, err)
		}
		clients[i] = cl
		defer cl.Close()
	}
	// Seed the key space so reads hit.
	const keys = 4096
	for k := int64(0); k < keys; k++ {
		if _, err := clients[0].Put(k, k); err != nil {
			b.Fatalf("seed put: %v", err)
		}
	}

	// Run at least a few ops per connection even on the harness's small
	// first rounds, so the reported percentiles always reflect the full
	// fleet. (The custom metrics are computed from the real op count.)
	total := int64(b.N)
	if min := int64(conns) * 4; total < min {
		total = min
	}
	var remaining atomic.Int64
	remaining.Store(total)
	lats := make([][]time.Duration, conns)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			rng := rand.New(rand.NewSource(int64(w)*9176 + 1))
			mine := make([]time.Duration, 0, 1024)
			for remaining.Add(-1) >= 0 {
				k := rng.Int63n(keys)
				t0 := time.Now()
				var err error
				if rng.Intn(10) == 0 {
					_, err = cl.Put(k, int64(w))
				} else {
					_, err = cl.Get(k)
				}
				if err != nil {
					b.Errorf("conn %d: %v", w, err)
					return
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for _, m := range lats {
		all = append(all, m...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		return float64(all[int(float64(len(all)-1)*p)].Microseconds())
	}
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "ops/s")
	b.ReportMetric(pct(0.50), "p50-µs")
	b.ReportMetric(pct(0.99), "p99-µs")
	b.ReportMetric(pct(0.999), "p999-µs")
}

func BenchmarkServer(b *testing.B) {
	for _, conns := range []int{64, 1024} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			benchConns(b, conns, false)
		})
	}
	b.Run("conns=1024/persist", func(b *testing.B) {
		benchConns(b, 1024, true)
	})
}

// benchPipelined is benchConns with a deep per-connection window: each
// connection runs a sender and a receiver goroutine keeping up to depth
// requests in flight, reassembled by id. Alongside ops/s and latency
// percentiles (from a wfstats histogram, latency measured from each op's
// enqueue instant) it reports the two batching ratios the pipelined hot
// path exists to shrink: write syscalls per op (the writer's coalesced
// flushes) and fsyncs per op (the appliers' group commits).
func benchPipelined(b *testing.B, conns, depth int, persist bool) {
	cfg := Config{Addr: "127.0.0.1:0", Shards: 16, Procs: conns + 8, Window: depth}
	if persist {
		cfg.Dir = b.TempDir()
		cfg.SnapshotEvery = 1 << 16
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	s.Start()
	defer s.Close()
	addr := s.Addr().String()

	clients := make([]*Client, conns)
	for i := range clients {
		cl, err := Dial(addr)
		if err != nil {
			b.Fatalf("Dial %d: %v", i, err)
		}
		clients[i] = cl
		defer cl.Close()
	}
	const keys = 4096
	for k := int64(0); k < keys; k++ {
		if _, err := clients[0].Put(k, k); err != nil {
			b.Fatalf("seed put: %v", err)
		}
	}

	total := int64(b.N)
	if min := int64(conns) * int64(depth) * 2; total < min {
		total = min
	}
	var remaining atomic.Int64
	remaining.Store(total)
	var hist wfstats.Histogram
	flushes0 := s.writerFlushes.Load()
	var fsyncs0 int64
	if persist {
		fsyncs0 = s.store.Stats().Fsyncs
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			rng := rand.New(rand.NewSource(int64(w)*9176 + 1))
			var (
				mu   sync.Mutex
				enqs = make(map[uint64]time.Time, depth)
				done atomic.Bool
			)
			tokens := make(chan struct{}, depth)
			for i := 0; i < depth; i++ {
				tokens <- struct{}{}
			}
			recvDone := make(chan struct{})
			go func() {
				defer close(recvDone)
				for {
					id, _, err := cl.Recv()
					if err != nil {
						if !done.Load() {
							b.Errorf("conn %d recv: %v", w, err)
						}
						return
					}
					mu.Lock()
					enq := enqs[id]
					delete(enqs, id)
					mu.Unlock()
					hist.Observe(time.Since(enq).Microseconds())
					tokens <- struct{}{}
				}
			}()
			for remaining.Add(-1) >= 0 {
				enq := time.Now()
				select {
				case <-tokens:
				default:
					if err := cl.Flush(); err != nil {
						b.Errorf("conn %d flush: %v", w, err)
						return
					}
					<-tokens
				}
				k := rng.Int63n(keys)
				op := seqspec.Op{Kind: "get", Args: []int64{k}}
				if rng.Intn(10) == 0 {
					op = seqspec.Op{Kind: "put", Args: []int64{k, int64(w)}}
				}
				mu.Lock()
				id, err := cl.Send(op)
				if err == nil {
					enqs[id] = enq
				}
				mu.Unlock()
				if err != nil {
					b.Errorf("conn %d send: %v", w, err)
					return
				}
			}
			cl.Flush()
			for i := 0; i < depth; i++ {
				<-tokens
			}
			done.Store(true)
			cl.Close()
			<-recvDone
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if b.Failed() {
		return
	}

	ops := hist.Count()
	if ops == 0 {
		return
	}
	b.ReportMetric(float64(ops)/elapsed.Seconds(), "ops/s")
	b.ReportMetric(float64(hist.Quantile(0.50)), "p50-µs")
	b.ReportMetric(float64(hist.Quantile(0.95)), "p95-µs")
	b.ReportMetric(float64(hist.Quantile(0.99)), "p99-µs")
	b.ReportMetric(float64(s.writerFlushes.Load()-flushes0)/float64(ops), "wsyscalls/op")
	if persist {
		b.ReportMetric(float64(s.store.Stats().Fsyncs-fsyncs0)/float64(ops), "fsyncs/op")
	} else {
		b.ReportMetric(0, "fsyncs/op")
	}
}

func BenchmarkServerPipelined(b *testing.B) {
	b.Run("conns=64/depth=16", func(b *testing.B) { benchPipelined(b, 64, 16, false) })
	b.Run("conns=1024/depth=16", func(b *testing.B) { benchPipelined(b, 1024, 16, false) })
	b.Run("conns=1024/depth=16/persist", func(b *testing.B) { benchPipelined(b, 1024, 16, true) })
}
