package server

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// TestServerPersistRecovery: in-process crash drill — write through the
// socket, Close, reopen the same directory, and every acked write must be
// back, including overwrites and deletes.
func TestServerPersistRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Addr: "127.0.0.1:0", Shards: 4, Procs: 8, Dir: dir, SnapshotEvery: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	expect := map[int64]int64{}
	for k := int64(0); k < 100; k++ {
		if _, err := cl.Put(k, k*k); err != nil {
			t.Fatalf("put: %v", err)
		}
		expect[k] = k * k
	}
	for k := int64(0); k < 100; k += 3 { // overwrites
		if _, err := cl.Put(k, -k); err != nil {
			t.Fatalf("put: %v", err)
		}
		expect[k] = -k
	}
	for k := int64(0); k < 100; k += 7 { // deletes
		if _, err := cl.Del(k); err != nil {
			t.Fatalf("del: %v", err)
		}
		delete(expect, k)
	}
	cl.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{Addr: "127.0.0.1:0", Shards: 4, Procs: 8, Dir: dir, SnapshotEvery: 16})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	s2.Start()
	defer s2.Close()
	cl2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl2.Close()
	for k := int64(0); k < 100; k++ {
		want, ok := expect[k]
		if !ok {
			want = seqspec.Empty
		}
		got, err := cl2.Get(k)
		if err != nil {
			t.Fatalf("get(%d): %v", k, err)
		}
		if got != want {
			t.Fatalf("after recovery get(%d) = %d, want %d", k, got, want)
		}
	}
	if n, err := cl2.Len(); err != nil || n != int64(len(expect)) {
		t.Fatalf("after recovery len = (%d, %v), want %d", n, err, len(expect))
	}
	// Recovered state accepts new writes.
	if _, err := cl2.Put(1000, 1); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
}

// TestServerRecoveryAcrossShardCounts: a store written with one shard
// count refuses to open under a smaller one (records would have nowhere to
// go) instead of silently dropping data.
func TestServerRecoveryAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Addr: "127.0.0.1:0", Shards: 4, Procs: 4, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for k := int64(0); k < 32; k++ {
		if _, err := cl.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	cl.Close()
	s.Close()
	if _, err := New(Config{Addr: "127.0.0.1:0", Shards: 1, Procs: 4, Dir: dir}); err == nil {
		t.Fatalf("New with fewer shards than the store holds succeeded; data would be misrouted")
	}
}

// TestServerKill9Recovery is the real crash drill: build the wfserver
// binary, fill it over a socket, SIGKILL it mid-flight (no shutdown path
// runs), restart on the same directory, and verify every acked write.
func TestServerKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a real binary; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "wfserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/wfserver")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/wfserver: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-dir", dataDir, "-snap-every", "32", "-shards", "4", "-procs", "16")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start wfserver: %v", err)
		}
		return cmd
	}
	srv := start()
	defer func() { srv.Process.Kill(); srv.Wait() }()

	cl := dialRetry(t, addr)
	const keys = 200
	for k := int64(0); k < keys; k++ {
		if _, err := cl.Put(k, k*7); err != nil {
			t.Fatalf("put(%d): %v", k, err)
		}
	}
	cl.Close()

	// SIGKILL: no defer, no flush, no Close — only what is durable counts.
	if err := srv.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	srv.Wait()

	srv = start()
	cl = dialRetry(t, addr)
	defer cl.Close()
	for k := int64(0); k < keys; k++ {
		v, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get(%d) after kill -9: %v", k, err)
		}
		if v != k*7 {
			t.Fatalf("get(%d) after kill -9 = %d, want %d: acked write lost", k, v, k*7)
		}
	}
	// And the restarted server still takes writes.
	if _, err := cl.Put(keys, 1); err != nil {
		t.Fatalf("post-restart put: %v", err)
	}
}

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// freeAddr grabs an ephemeral port and releases it for the child process.
// (The tiny reuse race is acceptable in a test.)
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialRetry polls until the (re)starting server accepts and serves.
func dialRetry(t *testing.T, addr string) *Client {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		cl, err := Dial(addr)
		if err == nil {
			if _, lerr := cl.Len(); lerr == nil {
				return cl
			}
			cl.Close()
			err = fmt.Errorf("len probe failed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never came up: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServerKill9PipelinedRecovery is the crash drill under pipelined
// load: a sender goroutine keeps a deep window of unique-key puts in
// flight while a receiver records which ids were acked, the server is
// SIGKILLed mid-stream (acks still streaming back), and after restart
// every acked write must be present — an acked-but-unpersisted write
// surviving in the ack record but not the store is exactly the bug the
// coalesced-ack path must not introduce.
func TestServerKill9PipelinedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a real binary; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "wfserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/wfserver")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/wfserver: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-dir", dataDir, "-snap-every", "64", "-shards", "4", "-procs", "16")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start wfserver: %v", err)
		}
		return cmd
	}
	srv := start()
	defer func() { srv.Process.Kill(); srv.Wait() }()

	cl := dialRetry(t, addr)

	// Sender: unique keys k with value k*13, as deep a window as the
	// server allows, flushed in small batches. Receiver: records acked
	// ids. Both race the kill below; errors past the kill are expected.
	const maxKeys = 1 << 20
	idKey := make(map[uint64]int64, 4096)
	var mu sync.Mutex
	acked := make(map[int64]bool, 4096)
	sendDone := make(chan struct{})
	recvDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		for k := int64(0); k < maxKeys; k++ {
			mu.Lock()
			id, err := cl.Send(seqspec.Op{Kind: "put", Args: []int64{k, k * 13}})
			if err == nil {
				idKey[id] = k
			}
			mu.Unlock()
			if err != nil {
				return
			}
			if k%16 == 15 {
				if err := cl.Flush(); err != nil {
					return
				}
			}
		}
	}()
	go func() {
		defer close(recvDone)
		for {
			id, _, err := cl.Recv()
			if err != nil {
				if _, ok := err.(*wire.RemoteError); !ok {
					return // transport error: conn died (the kill)
				}
				t.Errorf("pipelined put refused: %v", err)
				continue
			}
			mu.Lock()
			acked[idKey[id]] = true
			mu.Unlock()
		}
	}()

	// Let a few thousand acks accumulate, then SIGKILL mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 2000 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	srv.Wait()
	cl.Close()
	<-sendDone
	<-recvDone
	mu.Lock()
	keys := make([]int64, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	mu.Unlock()
	if len(keys) < 100 {
		t.Fatalf("only %d acked writes before the kill; load generator never got going", len(keys))
	}

	srv = start()
	cl2 := dialRetry(t, addr)
	defer cl2.Close()
	lost := 0
	for _, k := range keys {
		v, err := cl2.Get(k)
		if err != nil {
			t.Fatalf("get(%d) after kill -9: %v", k, err)
		}
		if v != k*13 {
			lost++
			if lost <= 5 {
				t.Errorf("get(%d) after kill -9 = %d, want %d: acked write lost", k, v, k*13)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked pipelined writes lost across kill -9", lost, len(keys))
	}
	t.Logf("all %d acked pipelined writes survived kill -9", len(keys))
}
