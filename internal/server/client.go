package server

import (
	"bufio"
	"net"

	"waitfree/internal/seqspec"
	"waitfree/internal/wire"
)

// Client is a single-connection front end to a Server. It is not safe for
// two goroutines to share a role — but the roles split: exactly one
// goroutine may Send/Flush while exactly one other Recvs, which is the
// shape a pipelined load generator wants (that is the point: one client,
// one leased pid on the server side).
//
// The split Send/Flush/Recv surface exists for pipelining: a sender
// queues several requests and flushes once, a receiver drains the
// responses. Responses may come back in any order — the server answers
// reads inline while earlier writes still wait on their fsync — so a
// pipelined caller must reassemble by the id Send returned and Recv
// reports. Do keeps one request in flight and needs no reassembly.
type Client struct {
	c      net.Conn
	dec    *wire.Decoder
	bw     *bufio.Writer
	nextID uint64
	wbuf   []byte
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		c:   c,
		dec: wire.NewDecoder(c),
		bw:  bufio.NewWriterSize(c, 4096),
	}, nil
}

// Send queues one request without flushing and returns its id.
//
//wf:blocking a full bufio buffer spills to the socket mid-append
func (cl *Client) Send(op seqspec.Op) (uint64, error) {
	cl.nextID++
	id := cl.nextID
	cl.wbuf = wire.AppendRequest(cl.wbuf[:0], id, op)
	return id, wire.WriteFrame(cl.bw, cl.wbuf)
}

// Flush pushes queued requests onto the socket.
func (cl *Client) Flush() error { return cl.bw.Flush() }

// Recv reads the next response — not necessarily the oldest request's;
// match by the returned id. A server-side refusal surfaces as a
// *wire.RemoteError with the id of the refused request. The streaming
// decoder drains whole coalesced ack batches from one read syscall.
//
//wf:blocking waits for the server's response frame
func (cl *Client) Recv() (uint64, int64, error) {
	payload, err := cl.dec.Next()
	if err != nil {
		return 0, 0, err
	}
	return wire.DecodeReply(payload)
}

// Do sends one request and waits for its response.
//
//wf:blocking one full round trip on the socket
func (cl *Client) Do(op seqspec.Op) (int64, error) {
	id, err := cl.Send(op)
	if err != nil {
		return 0, err
	}
	if err := cl.Flush(); err != nil {
		return 0, err
	}
	rid, v, err := cl.Recv()
	if err != nil {
		return 0, err
	}
	if rid != id {
		return 0, &wire.RemoteError{Reason: "response id mismatch"}
	}
	return v, nil
}

// Put stores v under k.
//
//wf:blocking one round trip
func (cl *Client) Put(k, v int64) (int64, error) {
	return cl.Do(seqspec.Op{Kind: "put", Args: []int64{k, v}})
}

// Get reads k (seqspec.Empty when absent).
//
//wf:blocking one round trip
func (cl *Client) Get(k int64) (int64, error) {
	return cl.Do(seqspec.Op{Kind: "get", Args: []int64{k}})
}

// Del removes k.
//
//wf:blocking one round trip
func (cl *Client) Del(k int64) (int64, error) {
	return cl.Do(seqspec.Op{Kind: "del", Args: []int64{k}})
}

// Len reads the map size (a cross-shard sum; see the Sharded contract).
//
//wf:blocking one round trip
func (cl *Client) Len() (int64, error) {
	return cl.Do(seqspec.Op{Kind: "len"})
}

// Close closes the connection (the server Detaches the leased pid).
func (cl *Client) Close() error { return cl.c.Close() }
