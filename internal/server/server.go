// Package server is the networked service tier: a TCP front end that
// multiplexes many client connections onto one waitfree sharded KV, with
// optional crash recovery through internal/logstore.
//
// Division of labour with the core: everything in this package is ordinary
// blocking Go — goroutines, channels, sockets, fsync — while every shared
// datum behind it is the wait-free universal construction. The boundary is
// the pid lease pool: a connection leases a process id for its lifetime,
// drives reads through it, and on disconnect calls Detach(pid) before
// returning the pid to the pool, releasing the departed client's log-GC pin
// (the PR 8 bugfix; without the Detach, every pid that ever went idle pinned
// the low-water mark forever and the decided logs grew without bound under
// connection churn).
//
// Each connection is pipelined: a reader goroutine decodes a stream of
// frames (many per read syscall, through wire.Decoder), and a writer
// goroutine coalesces every ready response into one buffered socket write
// per wakeup. Requests carry ids and may complete out of order — a read
// answered inline from the wait-free fast path overtakes an earlier write
// still waiting on its fsync — and the client reassembles by id. A window
// of slot tokens (Config.Window) bounds the per-connection outstanding
// requests, which is what makes every internal channel send non-blocking
// and the shutdown hand-off (reclaim every slot, then close the completion
// channel) race-free.
//
// Persistence (Config.Dir != "") follows persist-before-apply: writes are
// routed to a per-shard applier goroutine that assigns the shard's next
// dense sequence numbers, appends the whole drained batch to the log store
// as one group (logstore.AppendBatch; concurrent appliers still share one
// fsync through the store's flusher), and only then applies the batch to
// the in-memory KV — through the shard's helping batcher
// (shard.InvokeBatch), one replay pass and one snapshot per drain — and
// acks each client. An acked write is therefore on disk before any client
// observes it, which is exactly what boot-time replay reconstructs —
// durable linearizability. Reads never touch the store; a get is answered
// inline from the connection's leased pid unless this same connection has
// writes still in flight on the key's shard, in which case it is routed
// through the applier FIFO behind them (read-your-writes in program
// order); a len barriers every shard the connection has dirtied.
//
// The package sits at the syscall boundary — sockets, fsync and channels
// block by design, and every function that does carries its own
// //wf:blocking directive — while all wait-freedom claims live below, in
// the objects this package fronts. The persist-before-apply contract is
// machine-checked: //wf:persist / //wf:ack marks pin the ordering for
// wfvet's ackpersist analyzer, and every goroutine declares its shutdown
// edge with //wf:owns for the goown analyzer.
package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"waitfree"
	"waitfree/internal/logstore"
	"waitfree/internal/seqspec"
	"waitfree/internal/shard"
	"waitfree/internal/wfstats"
	"waitfree/internal/wire"
)

// Config parameterises a Server.
type Config struct {
	Addr          string                           // TCP listen address, e.g. ":7450"; ":0" for ephemeral
	StatsAddr     string                           // HTTP stats address; "" disables the stats server
	Shards        int                              // KV shard count (default 8)
	Procs         int                              // connection pid pool size (default 64)
	Window        int                              // max in-flight requests per connection (default 256)
	Dir           string                           // log store directory; "" runs without persistence
	SnapshotEvery int                              // records per shard between snapshots (default 4096)
	Logf          func(format string, args ...any) // nil silences logging
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Procs <= 0 {
		c.Procs = 64
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// kvSpec classifies the service's operation surface; ReadOnly detection is
// what routes gets and lens onto the inline fast path.
var kvSpec = seqspec.KV{}

// completion is one finished request on its way to a connection's writer:
// err != "" acks as a wire error frame, and fatal tells the writer to
// close the connection after the flush that carries it (the stream past a
// malformed request or a failed persist is not trustworthy).
type completion struct {
	id    uint64
	v     int64
	err   string
	fatal bool
}

// connState is the per-connection plumbing shared by the reader goroutine,
// the writer goroutine and the shard appliers a request may pass through.
type connState struct {
	c net.Conn
	// ch carries completions to the writer. Capacity Window and the slot
	// tokens below make every send non-blocking: a request holds a slot
	// from decode to flush, so at most Window completions are ever in
	// flight, and the channel can absorb all of them.
	ch chan completion
	// slots is the window: the reader acquires one token per request, the
	// writer releases one per flushed response. Reclaiming all Window
	// tokens is the reader's proof that nothing references ch any more.
	slots chan struct{}
	// outW[sh] counts this connection's writes handed to shard sh's
	// applier and not yet applied; outWT is the total. The reader consults
	// them to decide whether a read may take the inline fast path or must
	// queue behind the connection's own writes.
	outW  []atomic.Int64
	outWT atomic.Int64
}

// applyReq is one unit handed to a shard applier: a write to persist and
// apply, a read (read == true) queued behind a connection's earlier writes
// on that shard, or a barrier (barrier != nil) closed once everything
// ahead of it has been applied.
type applyReq struct {
	op      seqspec.Op
	id      uint64
	w       *connState
	read    bool
	barrier chan struct{}
}

// Server is a running service-tier instance.
type Server struct {
	cfg   Config
	kv    *shard.Sharded
	store *logstore.Store // nil when running without persistence
	reg   *wfstats.Registry

	ln      net.Listener
	statsLn net.Listener
	pool    chan int // free connection pids

	appliers []chan applyReq // one per shard; nil when store == nil

	connsActive   atomic.Int64
	connsTotal    *wfstats.Counter
	opsServed     *wfstats.Counter
	opsRefused    *wfstats.Counter
	leaseMiss     *wfstats.Counter
	recsLogged    *wfstats.Counter
	snapsTaken    *wfstats.Counter
	writerFlushes *wfstats.Counter // coalesced socket writes
	writerFrames  *wfstats.Counter // response frames carried by those writes

	closed atomic.Bool
	connWG sync.WaitGroup // connection readers and writers
	loopWG sync.WaitGroup // accept loop, stats server, appliers
}

// New builds the KV, replays the log store if a directory is configured,
// and binds the listeners. The server does not accept connections until
// Start.
//
//wf:blocking opens the store, replays the log and seeds the pid pool channel
func New(cfg Config) (*Server, error) {
	cfg.fill()
	reg := wfstats.NewRegistry()
	kv := waitfree.NewShardedKV(cfg.Shards, cfg.Procs+cfg.Shards,
		func() waitfree.FetchAndCons { return waitfree.NewSwapFetchAndCons() },
		waitfree.WithMetrics(reg))
	kv.Instrument(reg)

	s := &Server{
		cfg:           cfg,
		kv:            kv,
		reg:           reg,
		pool:          make(chan int, cfg.Procs),
		connsTotal:    reg.Counter("server.conns_total"),
		opsServed:     reg.Counter("server.ops"),
		opsRefused:    reg.Counter("server.ops_refused"),
		leaseMiss:     reg.Counter("server.lease_miss"),
		recsLogged:    reg.Counter("server.records_logged"),
		snapsTaken:    reg.Counter("server.snapshots"),
		writerFlushes: reg.Counter("server.writer_flushes"),
		writerFrames:  reg.Counter("server.writer_frames"),
	}
	reg.GaugeFunc("server.conns_active", s.connsActive.Load)
	for pid := 0; pid < cfg.Procs; pid++ {
		s.pool <- pid
	}

	if cfg.Dir != "" {
		st, err := logstore.Open(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.startAppliers(); err != nil {
			st.Close()
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopAppliers()
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	s.ln = ln
	if cfg.StatsAddr != "" {
		sln, err := net.Listen("tcp", cfg.StatsAddr)
		if err != nil {
			ln.Close()
			s.stopAppliers()
			if s.store != nil {
				s.store.Close()
			}
			return nil, err
		}
		s.statsLn = sln
	}
	return s, nil
}

// applierPid returns the pid reserved for shard sh's applier goroutine
// (appliers occupy the pid range above the connection pool).
func (s *Server) applierPid(sh int) int { return s.cfg.Procs + sh }

// startAppliers replays the store into the fresh KV and launches one
// applier goroutine per shard. Replay order matches commit order: the
// newest validated snapshot per shard first (its keys hash back to the
// same shard by construction), then every durable log record above it.
//
//wf:blocking replays the store and launches the blocking appliers
func (s *Server) startAppliers() error {
	shadows := make([]map[int64]int64, s.cfg.Shards)
	nextSeq := make([]uint64, s.cfg.Shards)
	for i := range shadows {
		shadows[i] = make(map[int64]int64)
		nextSeq[i] = 1
	}
	snaps, err := s.store.Snapshots()
	if err != nil {
		return err
	}
	for _, snap := range snaps {
		sh := int(snap.Shard)
		if sh >= s.cfg.Shards {
			return fmt.Errorf("server: store has shard %d, server configured with %d shards", sh, s.cfg.Shards)
		}
		pid := s.applierPid(sh)
		for k, v := range snap.State {
			s.kv.Invoke(pid, seqspec.Op{Kind: "put", Args: []int64{k, v}})
			shadows[sh][k] = v
		}
		nextSeq[sh] = snap.Seq + 1
	}
	sinceSnap := make([]int, s.cfg.Shards)
	err = s.store.Replay(func(rec logstore.Record) error {
		sh := int(rec.Shard)
		if sh >= s.cfg.Shards {
			return fmt.Errorf("server: record for shard %d, server configured with %d shards", sh, s.cfg.Shards)
		}
		s.kv.Invoke(s.applierPid(sh), rec.Op)
		applyShadow(shadows[sh], rec.Op)
		nextSeq[sh] = rec.Seq + 1
		sinceSnap[sh]++
		return nil
	})
	if err != nil {
		return err
	}
	s.appliers = make([]chan applyReq, s.cfg.Shards)
	for sh := 0; sh < s.cfg.Shards; sh++ {
		ch := make(chan applyReq, 256)
		s.appliers[sh] = ch
		s.loopWG.Add(1)
		//wf:owns ch stopAppliers closes every applier channel; the range drains and exits
		go s.runApplier(sh, ch, shadows[sh], nextSeq[sh], sinceSnap[sh])
	}
	return nil
}

func applyShadow(shadow map[int64]int64, op seqspec.Op) {
	switch op.Kind {
	case "put":
		shadow[op.Arg(0)] = op.Arg(1)
	case "del":
		delete(shadow, op.Arg(0))
	}
}

// runApplier is shard sh's single writer: it drains a batch of pending
// requests (one blocking receive, then a non-blocking sweep), persists
// every write in the drain as one group through AppendBatch (the store's
// flusher merges groups from concurrent appliers into one fsync), then
// applies the drain in arrival order — contiguous write runs go through
// the shard's helping batcher in one replay pass (shard.InvokeBatch),
// routed reads are answered at their queue position, barriers are closed —
// and builds each completion. Building completions strictly after
// AppendBatch returns is the durability contract — no client can observe
// a write that a crash could lose; wfvet's ackpersist analyzer checks
// that every marked ack below is dominated by the marked group commit.
//
//wf:blocking waits on the applier channel and the store's group commit
func (s *Server) runApplier(sh int, ch chan applyReq, shadow map[int64]int64, seq uint64, sinceSnap int) {
	defer s.loopWG.Done()
	pid := s.applierPid(sh)
	batch := make([]applyReq, 0, 64)
	recs := make([]logstore.Record, 0, 64)
	runOps := make([]seqspec.Op, 0, 64)
	runOut := make([]int64, 64)
	for req := range ch {
		batch = append(batch[:0], req)
	gather:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-ch:
				if !ok {
					break gather
				}
				batch = append(batch, more)
			default:
				break gather
			}
		}
		recs = recs[:0]
		for i := range batch {
			if batch[i].read || batch[i].barrier != nil {
				continue
			}
			recs = append(recs, logstore.Record{Shard: uint32(sh), Seq: seq + uint64(len(recs)), Op: batch[i].op})
		}
		//wf:persist the drain's single group commit: no completion below is built before AppendBatch returns
		if err := s.store.AppendBatch(recs); err != nil {
			for i := range batch {
				it := &batch[i]
				if it.barrier != nil {
					close(it.barrier)
					continue
				}
				if !it.read {
					it.w.outW[sh].Add(-1)
					it.w.outWT.Add(-1)
				}
				it.w.ch <- completion{id: it.id, err: "persist: " + err.Error(), fatal: true} //wf:ack the failure is client-visible too
			}
			continue
		}
		seq += uint64(len(recs))
		s.recsLogged.Add(int64(len(recs)))
		for i := 0; i < len(batch); {
			it := &batch[i]
			if it.barrier != nil {
				close(it.barrier)
				i++
				continue
			}
			if it.read {
				// A read routed here queued behind this connection's own
				// writes; its position in the FIFO is its ordering.
				it.w.ch <- completion{id: it.id, v: s.kv.Invoke(pid, it.op)} //wf:ack ordered behind the conn's persisted writes
				i++
				continue
			}
			j := i + 1
			for j < len(batch) && !batch[j].read && batch[j].barrier == nil {
				j++
			}
			run := batch[i:j]
			runOps = runOps[:0]
			for k := range run {
				runOps = append(runOps, run[k].op)
			}
			s.kv.InvokeBatch(sh, pid, runOps, runOut[:len(run)])
			for k := range run {
				applyShadow(shadow, run[k].op)
				run[k].w.outW[sh].Add(-1)
				run[k].w.outWT.Add(-1)
				run[k].w.ch <- completion{id: run[k].id, v: runOut[k]} //wf:ack durable before visible
			}
			sinceSnap += len(run)
			i = j
		}
		if sinceSnap >= s.cfg.SnapshotEvery {
			sinceSnap = 0
			snap := logstore.Snapshot{Shard: uint32(sh), Seq: seq - 1, State: shadow}
			if err := s.store.WriteSnapshot(snap); err != nil {
				s.cfg.Logf("server: shard %d snapshot: %v", sh, err)
				continue
			}
			s.snapsTaken.Inc()
			if _, err := s.store.Compact(); err != nil {
				s.cfg.Logf("server: compact: %v", err)
			}
		}
	}
}

func (s *Server) stopAppliers() {
	for _, ch := range s.appliers {
		if ch != nil {
			close(ch)
		}
	}
	s.appliers = nil
}

// Start begins accepting connections (and serving stats, if configured).
// It returns immediately; use Close to stop.
//
//wf:blocking launches the blocking accept and stats loops
func (s *Server) Start() {
	s.loopWG.Add(1)
	//wf:owns s.ln Close closes the listener; Accept fails and the loop returns
	go s.acceptLoop()
	if s.statsLn != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			s.reg.WriteJSON(w)
		})
		mux.HandleFunc("/stats.txt", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.reg.WriteText(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			json.NewEncoder(w).Encode(map[string]any{"ok": true, "conns": s.connsActive.Load()})
		})
		srv := &http.Server{Handler: mux}
		s.loopWG.Add(1)
		//wf:owns s.statsLn Close closes the stats listener; Serve returns
		go func() {
			defer s.loopWG.Done()
			srv.Serve(s.statsLn)
		}()
	}
}

// Addr returns the listener's address (useful with Addr ":0" in tests).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// StatsAddr returns the stats listener's address, or nil if disabled.
func (s *Server) StatsAddr() net.Addr {
	if s.statsLn == nil {
		return nil
	}
	return s.statsLn.Addr()
}

// Metrics exposes the server's registry (shared with the KV shards).
func (s *Server) Metrics() *wfstats.Registry { return s.reg }

// KV exposes the underlying sharded object for white-box tests.
func (s *Server) KV() *shard.Sharded { return s.kv }

// Store exposes the log store (nil without persistence) for white-box
// tests and benchmarks.
func (s *Server) Store() *logstore.Store { return s.store }

//wf:blocking accepts until the listener closes
func (s *Server) acceptLoop() {
	defer s.loopWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		//wf:owns c closing the connection (client side or a fatal completion in connWriter) ends the Decoder's read
		go s.serveConn(c)
	}
}

// errNoFreePid is the reason sent (with request id 0) when the pid pool is
// exhausted; the connection is then closed.
const errNoFreePid = "no free pid: connection pool exhausted"

// serveConn runs a connection's lifetime: lease a pid, start the writer,
// run the read loop, then hand the window back. The shutdown edge is the
// slot reclaim: once the reader re-acquires every one of the Window slot
// tokens, every request this connection ever admitted has been flushed
// (or dropped by a failed writer) and released — no applier holds a
// reference to the connection any more — so closing the completion
// channel is safe and the writer's range drains out.
//
//wf:blocking socket reads, pid-pool handoff and the window reclaim
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer c.Close()
	s.connsTotal.Inc()

	var pid int
	select {
	case pid = <-s.pool:
	default:
		s.leaseMiss.Inc()
		wire.WriteFrame(c, wire.AppendError(nil, 0, errNoFreePid))
		return
	}
	s.connsActive.Add(1)
	defer func() {
		// The departed-client fix: swing this pid's observed-prefix
		// register out of every shard's min-scan before the pid goes
		// back in the pool, so an idle pool slot cannot pin log GC.
		s.kv.Detach(pid)
		s.connsActive.Add(-1)
		s.pool <- pid
	}()

	w := &connState{
		c:     c,
		ch:    make(chan completion, s.cfg.Window),
		slots: make(chan struct{}, s.cfg.Window),
		outW:  make([]atomic.Int64, s.cfg.Shards),
	}
	for i := 0; i < s.cfg.Window; i++ {
		w.slots <- struct{}{}
	}
	s.connWG.Add(1)
	//wf:owns w.ch the reader reclaims every window slot (so nothing is in flight) and closes the completion channel; the writer's range drains and exits
	go s.connWriter(w)

	s.readLoop(pid, w)

	for i := 0; i < s.cfg.Window; i++ {
		<-w.slots
	}
	close(w.ch)
}

// readLoop is a connection's reader half: it decodes the pipelined request
// stream and dispatches each request — refusals and in-memory operations
// complete right here, reads go through serveRead's fast path, and durable
// writes are handed to their shard's applier, to complete from there. One
// slot token is held per request from decode to flush.
//
//wf:blocking socket reads, window acquisition and the applier hand-off
func (s *Server) readLoop(pid int, w *connState) {
	dec := wire.NewDecoder(w.c)
	for {
		payload, err := dec.Next()
		if err != nil {
			return // clean EOF, torn frame or oversize — all end the conn
		}
		<-w.slots
		id, op, err := wire.DecodeRequest(payload)
		if err != nil {
			// The stream itself is untrustworthy past a malformed
			// request; answer once and have the writer hang up.
			s.opsRefused.Inc()
			w.ch <- completion{id: id, err: "malformed request: " + err.Error(), fatal: true}
			return
		}
		//wf:persist a durable write group-commits in runApplier before its completion is built; reads, refusals and in-memory operations have nothing to persist
		if reason := validateOp(op); reason != "" {
			// A well-framed but unsupported op is the client's bug, not
			// a protocol failure; refuse it and keep the connection.
			// (KVRouter panics on unknown kinds — a hostile peer must
			// not reach it.)
			s.opsRefused.Inc()
			w.ch <- completion{id: id, err: reason}
			continue
		}
		s.opsServed.Inc()
		if kvSpec.ReadOnly(op) {
			s.serveRead(pid, w, id, op)
			continue
		}
		if s.store != nil {
			sh := s.kv.ShardOf(op.Arg(0))
			w.outW[sh].Add(1)
			w.outWT.Add(1)
			s.appliers[sh] <- applyReq{op: op, id: id, w: w}
			continue
		}
		w.ch <- completion{id: id, v: s.kv.Invoke(pid, op)} //wf:ack in-memory mode: applied and client-visible with nothing to persist
	}
}

// serveRead answers a read-only operation. Reads never touch the store;
// the only question is ordering against the connection's own in-flight
// writes: a get on a shard where this connection still has writes queued
// (and a len while any shard is dirty) must not be answered from
// pre-write state, so it is routed through — or barriered behind — the
// applier FIFO. Otherwise the read completes inline from the wait-free
// read fast path without touching an applier. Nothing is persisted on
// either path.
//
//wf:blocking a routed read or barrier queues behind the applier FIFO
func (s *Server) serveRead(pid int, w *connState, id uint64, op seqspec.Op) {
	if op.Kind == "get" {
		sh := s.kv.ShardOf(op.Arg(0))
		if s.store != nil && w.outW[sh].Load() > 0 {
			s.appliers[sh] <- applyReq{op: op, id: id, w: w, read: true}
			return
		}
		w.ch <- completion{id: id, v: s.kv.Invoke(pid, op)}
		return
	}
	// len is a cross-shard sum; barrier every shard this connection has
	// dirtied before reading.
	if s.store != nil && w.outWT.Load() > 0 {
		s.awaitApplied(w)
	}
	w.ch <- completion{id: id, v: s.kv.Invoke(pid, op)}
}

// awaitApplied blocks until every write this connection has routed to an
// applier is applied: one barrier request per dirty shard, closed by its
// applier at the barrier's queue position. The reader is the only
// goroutine that adds writes, so a shard sampled clean stays clean.
//
//wf:blocking one barrier round trip per dirty shard
func (s *Server) awaitApplied(w *connState) {
	barriers := make([]chan struct{}, 0, len(w.outW))
	for sh := range w.outW {
		if w.outW[sh].Load() > 0 {
			b := make(chan struct{})
			s.appliers[sh] <- applyReq{w: w, barrier: b}
			barriers = append(barriers, b)
		}
	}
	for _, b := range barriers {
		<-b
	}
}

// maxCoalesce bounds the bytes one writer wakeup packs into a single
// socket write; past this the writer flushes and comes back for the rest.
const maxCoalesce = 64 << 10

// connWriter is a connection's writer half and the connection's only
// socket writer: it waits for a completion, then drains every other
// completion already ready (up to maxCoalesce bytes) into one pooled
// buffer and pushes the whole coalesced batch onto the socket with a
// single write syscall. Slot tokens are released only after the flush
// that carried their responses — release is what lets the reader admit
// the next request, and at shutdown, what proves the window is quiet. A
// failed or fatal connection keeps draining and releasing so shutdown
// never deadlocks; the bytes just stop going out.
//
//wf:blocking waits on the completion channel and the socket write
func (s *Server) connWriter(w *connState) {
	defer s.connWG.Done()
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	failed := false
	for c := range w.ch {
		n := 1
		*buf = appendCompletion((*buf)[:0], c)
		fatal := c.fatal
	coalesce:
		for len(*buf) < maxCoalesce {
			select {
			case more, ok := <-w.ch:
				if !ok {
					break coalesce
				}
				*buf = appendCompletion(*buf, more)
				n++
				fatal = fatal || more.fatal
			default:
				break coalesce
			}
		}
		if !failed {
			if _, err := w.c.Write(*buf); err != nil {
				failed = true
				w.c.Close()
			} else {
				s.writerFlushes.Inc()
				s.writerFrames.Add(int64(n))
			}
		}
		for i := 0; i < n; i++ {
			w.slots <- struct{}{}
		}
		if fatal && !failed {
			failed = true
			w.c.Close()
		}
	}
}

// appendCompletion encodes one completion as its wire frame.
func appendCompletion(b []byte, c completion) []byte {
	if c.err != "" {
		return wire.AppendErrorFrame(b, c.id, c.err)
	}
	return wire.AppendResponseFrame(b, c.id, c.v)
}

// validateOp admits exactly the KV surface the router understands; the
// empty string means valid.
func validateOp(op seqspec.Op) string {
	var want int
	switch op.Kind {
	case "put":
		want = 2
	case "get", "del":
		want = 1
	case "len":
		want = 0
	default:
		return "unknown op kind " + fmt.Sprintf("%q", op.Kind)
	}
	if len(op.Args) != want {
		return fmt.Sprintf("op %q takes %d args, got %d", op.Kind, want, len(op.Args))
	}
	return ""
}

// Close stops accepting, waits for in-flight connections, drains the
// appliers (every acked write is already durable) and closes the store.
//
//wf:blocking waits for in-flight connections and loops to drain
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.ln.Close()
	if s.statsLn != nil {
		s.statsLn.Close()
	}
	s.connWG.Wait()
	s.stopAppliers()
	s.loopWG.Wait()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
