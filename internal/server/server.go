// Package server is the networked service tier: a TCP front end that
// multiplexes many client connections onto one waitfree sharded KV, with
// optional crash recovery through internal/logstore.
//
// Division of labour with the core: everything in this package is ordinary
// blocking Go — goroutines, channels, sockets, fsync — while every shared
// datum behind it is the wait-free universal construction. The boundary is
// the pid lease pool: a connection leases a process id for its lifetime,
// drives reads through it, and on disconnect calls Detach(pid) before
// returning the pid to the pool, releasing the departed client's log-GC pin
// (the PR 8 bugfix; without the Detach, every pid that ever went idle pinned
// the low-water mark forever and the decided logs grew without bound under
// connection churn).
//
// Persistence (Config.Dir != "") follows persist-before-apply: writes are
// routed to a per-shard applier goroutine that assigns the shard's next
// dense sequence number, appends the record to the log store (group commit:
// concurrent appliers share one fsync), and only then applies the operation
// to the in-memory KV and acks the client. An acked write is therefore on
// disk before any client observes it, which is exactly what boot-time
// replay reconstructs — durable linearizability. Reads never touch the
// store; they go straight through the connection's leased pid.
//
// The package sits at the syscall boundary — sockets, fsync and channels
// block by design, and every function that does carries its own
// //wf:blocking directive — while all wait-freedom claims live below, in
// the objects this package fronts. The persist-before-apply contract is
// machine-checked: //wf:persist / //wf:ack marks pin the ordering for
// wfvet's ackpersist analyzer, and every goroutine declares its shutdown
// edge with //wf:owns for the goown analyzer.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"waitfree"
	"waitfree/internal/logstore"
	"waitfree/internal/seqspec"
	"waitfree/internal/shard"
	"waitfree/internal/wfstats"
	"waitfree/internal/wire"
)

// Config parameterises a Server.
type Config struct {
	Addr          string                           // TCP listen address, e.g. ":7450"; ":0" for ephemeral
	StatsAddr     string                           // HTTP stats address; "" disables the stats server
	Shards        int                              // KV shard count (default 8)
	Procs         int                              // connection pid pool size (default 64)
	Dir           string                           // log store directory; "" runs without persistence
	SnapshotEvery int                              // records per shard between snapshots (default 4096)
	Logf          func(format string, args ...any) // nil silences logging
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Procs <= 0 {
		c.Procs = 64
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// applyReq is one write handed to a shard applier; resp carries the ack
// back to the connection after the record is durable and applied.
type applyReq struct {
	op   seqspec.Op
	resp chan applyRes
}

type applyRes struct {
	v   int64
	err error
}

// Server is a running service-tier instance.
type Server struct {
	cfg   Config
	kv    *shard.Sharded
	store *logstore.Store // nil when running without persistence
	reg   *wfstats.Registry

	ln      net.Listener
	statsLn net.Listener
	pool    chan int // free connection pids

	appliers []chan applyReq // one per shard; nil when store == nil

	connsActive atomic.Int64
	connsTotal  *wfstats.Counter
	opsServed   *wfstats.Counter
	opsRefused  *wfstats.Counter
	leaseMiss   *wfstats.Counter
	recsLogged  *wfstats.Counter
	snapsTaken  *wfstats.Counter

	closed atomic.Bool
	connWG sync.WaitGroup // connection handlers
	loopWG sync.WaitGroup // accept loop, stats server, appliers
}

// New builds the KV, replays the log store if a directory is configured,
// and binds the listeners. The server does not accept connections until
// Start.
//
//wf:blocking opens the store, replays the log and seeds the pid pool channel
func New(cfg Config) (*Server, error) {
	cfg.fill()
	reg := wfstats.NewRegistry()
	kv := waitfree.NewShardedKV(cfg.Shards, cfg.Procs+cfg.Shards,
		func() waitfree.FetchAndCons { return waitfree.NewSwapFetchAndCons() },
		waitfree.WithMetrics(reg))
	kv.Instrument(reg)

	s := &Server{
		cfg:        cfg,
		kv:         kv,
		reg:        reg,
		pool:       make(chan int, cfg.Procs),
		connsTotal: reg.Counter("server.conns_total"),
		opsServed:  reg.Counter("server.ops"),
		opsRefused: reg.Counter("server.ops_refused"),
		leaseMiss:  reg.Counter("server.lease_miss"),
		recsLogged: reg.Counter("server.records_logged"),
		snapsTaken: reg.Counter("server.snapshots"),
	}
	reg.GaugeFunc("server.conns_active", s.connsActive.Load)
	for pid := 0; pid < cfg.Procs; pid++ {
		s.pool <- pid
	}

	if cfg.Dir != "" {
		st, err := logstore.Open(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.startAppliers(); err != nil {
			st.Close()
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopAppliers()
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	s.ln = ln
	if cfg.StatsAddr != "" {
		sln, err := net.Listen("tcp", cfg.StatsAddr)
		if err != nil {
			ln.Close()
			s.stopAppliers()
			if s.store != nil {
				s.store.Close()
			}
			return nil, err
		}
		s.statsLn = sln
	}
	return s, nil
}

// applierPid returns the pid reserved for shard sh's applier goroutine
// (appliers occupy the pid range above the connection pool).
func (s *Server) applierPid(sh int) int { return s.cfg.Procs + sh }

// startAppliers replays the store into the fresh KV and launches one
// applier goroutine per shard. Replay order matches commit order: the
// newest validated snapshot per shard first (its keys hash back to the
// same shard by construction), then every durable log record above it.
//
//wf:blocking replays the store and launches the blocking appliers
func (s *Server) startAppliers() error {
	shadows := make([]map[int64]int64, s.cfg.Shards)
	nextSeq := make([]uint64, s.cfg.Shards)
	for i := range shadows {
		shadows[i] = make(map[int64]int64)
		nextSeq[i] = 1
	}
	snaps, err := s.store.Snapshots()
	if err != nil {
		return err
	}
	for _, snap := range snaps {
		sh := int(snap.Shard)
		if sh >= s.cfg.Shards {
			return fmt.Errorf("server: store has shard %d, server configured with %d shards", sh, s.cfg.Shards)
		}
		pid := s.applierPid(sh)
		for k, v := range snap.State {
			s.kv.Invoke(pid, seqspec.Op{Kind: "put", Args: []int64{k, v}})
			shadows[sh][k] = v
		}
		nextSeq[sh] = snap.Seq + 1
	}
	sinceSnap := make([]int, s.cfg.Shards)
	err = s.store.Replay(func(rec logstore.Record) error {
		sh := int(rec.Shard)
		if sh >= s.cfg.Shards {
			return fmt.Errorf("server: record for shard %d, server configured with %d shards", sh, s.cfg.Shards)
		}
		s.kv.Invoke(s.applierPid(sh), rec.Op)
		applyShadow(shadows[sh], rec.Op)
		nextSeq[sh] = rec.Seq + 1
		sinceSnap[sh]++
		return nil
	})
	if err != nil {
		return err
	}
	s.appliers = make([]chan applyReq, s.cfg.Shards)
	for sh := 0; sh < s.cfg.Shards; sh++ {
		ch := make(chan applyReq, 256)
		s.appliers[sh] = ch
		s.loopWG.Add(1)
		//wf:owns ch stopAppliers closes every applier channel; the range drains and exits
		go s.runApplier(sh, ch, shadows[sh], nextSeq[sh], sinceSnap[sh])
	}
	return nil
}

func applyShadow(shadow map[int64]int64, op seqspec.Op) {
	switch op.Kind {
	case "put":
		shadow[op.Arg(0)] = op.Arg(1)
	case "del":
		delete(shadow, op.Arg(0))
	}
}

// runApplier is shard sh's single writer: it drains a batch of pending
// writes, persists them as one group (the store's flusher merges groups
// from concurrent appliers into one fsync), then applies and acks each.
// Applying strictly after Append returns is the durability contract —
// no client can observe a write that a crash could lose; wfvet's
// ackpersist analyzer checks that every marked ack below is dominated by
// the marked group commit.
//
//wf:blocking waits on the applier channel and the store's group commit
func (s *Server) runApplier(sh int, ch chan applyReq, shadow map[int64]int64, seq uint64, sinceSnap int) {
	defer s.loopWG.Done()
	pid := s.applierPid(sh)
	batch := make([]applyReq, 0, 64)
	recs := make([]logstore.Record, 0, 64)
	for req := range ch {
		batch = append(batch[:0], req)
	gather:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-ch:
				if !ok {
					break gather
				}
				batch = append(batch, more)
			default:
				break gather
			}
		}
		recs = recs[:0]
		for i := range batch {
			recs = append(recs, logstore.Record{Shard: uint32(sh), Seq: seq + uint64(i), Op: batch[i].op})
		}
		//wf:persist the group commit: no ack below runs before Append returns
		if err := s.store.Append(recs); err != nil {
			for i := range batch {
				batch[i].resp <- applyRes{err: err} //wf:ack the failure is client-visible too
			}
			continue
		}
		seq += uint64(len(batch))
		s.recsLogged.Add(int64(len(batch)))
		for i := range batch {
			v := s.kv.Invoke(pid, batch[i].op)
			applyShadow(shadow, batch[i].op)
			batch[i].resp <- applyRes{v: v} //wf:ack durable before visible
		}
		sinceSnap += len(batch)
		if sinceSnap >= s.cfg.SnapshotEvery {
			sinceSnap = 0
			snap := logstore.Snapshot{Shard: uint32(sh), Seq: seq - 1, State: shadow}
			if err := s.store.WriteSnapshot(snap); err != nil {
				s.cfg.Logf("server: shard %d snapshot: %v", sh, err)
				continue
			}
			s.snapsTaken.Inc()
			if _, err := s.store.Compact(); err != nil {
				s.cfg.Logf("server: compact: %v", err)
			}
		}
	}
}

func (s *Server) stopAppliers() {
	for _, ch := range s.appliers {
		if ch != nil {
			close(ch)
		}
	}
	s.appliers = nil
}

// Start begins accepting connections (and serving stats, if configured).
// It returns immediately; use Close to stop.
//
//wf:blocking launches the blocking accept and stats loops
func (s *Server) Start() {
	s.loopWG.Add(1)
	//wf:owns s.ln Close closes the listener; Accept fails and the loop returns
	go s.acceptLoop()
	if s.statsLn != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			s.reg.WriteJSON(w)
		})
		mux.HandleFunc("/stats.txt", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.reg.WriteText(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			json.NewEncoder(w).Encode(map[string]any{"ok": true, "conns": s.connsActive.Load()})
		})
		srv := &http.Server{Handler: mux}
		s.loopWG.Add(1)
		//wf:owns s.statsLn Close closes the stats listener; Serve returns
		go func() {
			defer s.loopWG.Done()
			srv.Serve(s.statsLn)
		}()
	}
}

// Addr returns the listener's address (useful with Addr ":0" in tests).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// StatsAddr returns the stats listener's address, or nil if disabled.
func (s *Server) StatsAddr() net.Addr {
	if s.statsLn == nil {
		return nil
	}
	return s.statsLn.Addr()
}

// Metrics exposes the server's registry (shared with the KV shards).
func (s *Server) Metrics() *wfstats.Registry { return s.reg }

// KV exposes the underlying sharded object for white-box tests.
func (s *Server) KV() *shard.Sharded { return s.kv }

//wf:blocking accepts until the listener closes
func (s *Server) acceptLoop() {
	defer s.loopWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		//wf:owns c closing the connection (client side or Close's listener teardown) ends ReadFrame
		go s.serveConn(c)
	}
}

// errNoFreePid is the reason sent (with request id 0) when the pid pool is
// exhausted; the connection is then closed.
const errNoFreePid = "no free pid: connection pool exhausted"

//wf:blocking socket reads, pid-pool handoff and the applier round trip
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer c.Close()
	s.connsTotal.Inc()

	var pid int
	select {
	case pid = <-s.pool:
	default:
		s.leaseMiss.Inc()
		wire.WriteFrame(c, wire.AppendError(nil, 0, errNoFreePid))
		return
	}
	s.connsActive.Add(1)
	defer func() {
		// The departed-client fix: swing this pid's observed-prefix
		// register out of every shard's min-scan before the pid goes
		// back in the pool, so an idle pool slot cannot pin log GC.
		s.kv.Detach(pid)
		s.connsActive.Add(-1)
		s.pool <- pid
	}()

	br := bufio.NewReaderSize(c, 4096)
	bw := bufio.NewWriterSize(c, 4096)
	var rbuf, wbuf []byte
	for {
		payload, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			return // clean EOF, torn frame or oversize — all end the conn
		}
		rbuf = payload
		id, op, err := wire.DecodeRequest(payload)
		if err != nil {
			// The stream itself is untrustworthy past a malformed
			// request; answer once and hang up.
			s.opsRefused.Inc()
			wbuf = wire.AppendError(wbuf[:0], id, "malformed request: "+err.Error())
			wire.WriteFrame(bw, wbuf)
			bw.Flush()
			return
		}
		//wf:persist a durable write group-commits inside applyDurable before its response is built; reads and refusals have nothing to persist
		if reason := validateOp(op); reason != "" {
			// A well-framed but unsupported op is the client's bug, not
			// a protocol failure; refuse it and keep the connection.
			// (KVRouter panics on unknown kinds — a hostile peer must
			// not reach it.)
			s.opsRefused.Inc()
			wbuf = wire.AppendError(wbuf[:0], id, reason)
		} else if s.store != nil && (op.Kind == "put" || op.Kind == "del") {
			res := s.applyDurable(op)
			if res.err != nil {
				// A write the store could not commit must not look
				// applied; report and hang up (the in-memory KV was
				// never touched).
				wbuf = wire.AppendError(wbuf[:0], id, "persist: "+res.err.Error())
				wire.WriteFrame(bw, wbuf)
				bw.Flush()
				return
			}
			s.opsServed.Inc()
			wbuf = wire.AppendResponse(wbuf[:0], id, res.v)
		} else {
			s.opsServed.Inc()
			wbuf = wire.AppendResponse(wbuf[:0], id, s.kv.Invoke(pid, op))
		}
		//wf:ack the response frame becomes client-visible here
		if err := wire.WriteFrame(bw, wbuf); err != nil {
			return
		}
		// Pipelining: only pay the syscall when the read side has gone
		// quiet; back-to-back requests share one flush.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// applyDurable routes one write through its shard's applier.
//
//wf:blocking blocks until the applier has persisted and applied the op
func (s *Server) applyDurable(op seqspec.Op) applyRes {
	sh := s.kv.ShardOf(op.Arg(0))
	resp := make(chan applyRes, 1)
	s.appliers[sh] <- applyReq{op: op, resp: resp}
	return <-resp
}

// validateOp admits exactly the KV surface the router understands; the
// empty string means valid.
func validateOp(op seqspec.Op) string {
	var want int
	switch op.Kind {
	case "put":
		want = 2
	case "get", "del":
		want = 1
	case "len":
		want = 0
	default:
		return "unknown op kind " + fmt.Sprintf("%q", op.Kind)
	}
	if len(op.Args) != want {
		return fmt.Sprintf("op %q takes %d args, got %d", op.Kind, want, len(op.Args))
	}
	return ""
}

// Close stops accepting, waits for in-flight connections, drains the
// appliers (every acked write is already durable) and closes the store.
//
//wf:blocking waits for in-flight connections and loops to drain
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.ln.Close()
	if s.statsLn != nil {
		s.statsLn.Close()
	}
	s.connWG.Wait()
	s.stopAppliers()
	s.loopWG.Wait()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
