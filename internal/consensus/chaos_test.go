package consensus

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// chaosCrash is the panic value used to simulate a crash between primitive
// steps of a protocol.
type chaosCrash struct{}

// chaosStress runs consensus trials with a memory hook that (a) yields the
// scheduler at random access points to widen interleavings and (b) crashes
// one chosen process partway through its step sequence. Survivors must
// still agree on a live participant's input — the protocols' memory
// operations are atomic primitives, so a crash between them must be
// harmless (wait-freedom under halting failures, Section 1).
func chaosStress(t *testing.T, n int, mk func() interface {
	Object
	hookable
}, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		obj := mk()
		victim := rng.Intn(n)
		crashAfter := 1 + rng.Intn(6)
		var accesses [16]int
		var mu sync.Mutex
		obj.hook(func(pid int, op string) {
			mu.Lock()
			accesses[pid]++
			hit := pid == victim && accesses[pid] == crashAfter
			flip := rng.Intn(2) == 0 // rng shared across goroutines: keep under mu
			mu.Unlock()
			if hit {
				panic(chaosCrash{})
			}
			if flip {
				runtime.Gosched()
			}
		})

		inputs := make([]int64, n)
		results := make([]int64, n)
		crashed := make([]bool, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			inputs[p] = int64(100*trial + p)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if e := recover(); e != nil {
						if _, ok := e.(chaosCrash); !ok {
							panic(e)
						}
						crashed[p] = true
					}
				}()
				results[p] = obj.Decide(p, inputs[p])
			}()
		}
		wg.Wait()

		first := int64(-1)
		for p := 0; p < n; p++ {
			if crashed[p] {
				continue
			}
			if first == -1 {
				first = results[p]
			} else if results[p] != first {
				t.Fatalf("trial %d (victim P%d after %d accesses): disagreement %d vs %d",
					trial, victim, crashAfter, first, results[p])
			}
		}
		if first != -1 {
			valid := false
			for p := 0; p < n; p++ {
				if inputs[p] == first {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("trial %d: decided %d, not any participant's input", trial, first)
			}
		}
	}
}

// hookable is satisfied by the memory-based protocols via small adapters.
type hookable interface {
	hook(func(pid int, op string))
}

type hookedMove struct{ *Move }

func (h hookedMove) hook(f func(int, string)) { h.mem.SetHook(f) }

type hookedMemSwap struct{ *MemSwap }

func (h hookedMemSwap) hook(f func(int, string)) { h.mem.SetHook(f) }

type hookedAssign struct{ *Assign }

func (h hookedAssign) hook(f func(int, string)) { h.mem.SetHook(f) }

type hookedAssign2 struct{ *Assign2Phase }

func (h hookedAssign2) hook(f func(int, string)) { h.mem.SetHook(f) }

func TestMoveChaos(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			chaosStress(t, n, func() interface {
				Object
				hookable
			} {
				return hookedMove{NewMove(n)}
			}, 300)
		})
	}
}

func TestMemSwapChaos(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			chaosStress(t, n, func() interface {
				Object
				hookable
			} {
				return hookedMemSwap{NewMemSwap(n)}
			}, 300)
		})
	}
}

func TestAssignChaos(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			chaosStress(t, n, func() interface {
				Object
				hookable
			} {
				return hookedAssign{NewAssign(n)}
			}, 300)
		})
	}
}

func TestAssign2PhaseChaos(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		n := 2*m - 2
		t.Run(fmt.Sprintf("m=%d,n=%d", m, n), func(t *testing.T) {
			chaosStress(t, n, func() interface {
				Object
				hookable
			} {
				return hookedAssign2{NewAssign2Phase(m)}
			}, 300)
		})
	}
}
