// Package consensus provides native (goroutine-safe) wait-free consensus
// protocols, one per positive theorem of Herlihy's PODC 1988 paper. Each
// protocol here has an exhaustively model-checked twin in
// internal/protocols; the native forms run on real shared memory
// (internal/registers, internal/queue) and are what the universal
// construction (internal/core) composes.
//
// A consensus object is one-shot: each of the n processes calls Decide at
// most once, with its own process id and its input value; every call
// returns the same agreed value, which is the input of some process that
// participated. Decide is wait-free: it completes in a bounded number of
// steps regardless of the other processes' speeds or failures.
//
//wf:waitfree
package consensus

import (
	"fmt"

	"waitfree/internal/queue"
	"waitfree/internal/registers"
)

// Object is a one-shot n-process consensus object.
type Object interface {
	// Decide submits pid's input and returns the agreed value. pid must be
	// in [0, n); each pid may call Decide at most once.
	//
	//wf:bounded contract: a consensus object is the primitive of Theorem 7 — Decide runs in a bounded number of the caller's own steps; the message-passing and randomized protocols built to demonstrate impossibility opt out with wf:blocking
	//wf:steps n
	Decide(pid int, input int64) int64
}

// Factory creates fresh consensus objects; the universal construction
// consumes one object per round.
type Factory func() Object

// unset marks empty announce registers. Inputs must not equal unset.
const unset int64 = -1 << 62

// announce is the paper's election convention: processes publish inputs in
// per-process atomic registers, protocols elect a winning pid, and everyone
// returns the winner's announced input.
type announce struct {
	regs []registers.Atomic
}

func newAnnounce(n int) *announce {
	a := &announce{regs: make([]registers.Atomic, n)}
	for i := range a.regs {
		a.regs[i].Store(unset)
	}
	return a
}

func (a *announce) publish(pid int, input int64) { a.regs[pid].Store(input) }

func (a *announce) read(pid int) int64 {
	v := a.regs[pid].Load()
	if v == unset {
		panic(fmt.Sprintf("consensus: winner P%d has no announced input", pid))
	}
	return v
}

// CAS is the Theorem 7 protocol: n-process consensus from one
// compare-and-swap register, for arbitrary n.
type CAS struct {
	ann *announce
	r   *registers.RMW
}

// NewCAS builds an n-process compare-and-swap consensus object.
func NewCAS(n int) *CAS {
	return &CAS{ann: newAnnounce(n), r: registers.NewRMW(-1)}
}

// Decide implements Object.
func (c *CAS) Decide(pid int, input int64) int64 {
	c.ann.publish(pid, input)
	old := c.r.CompareAndSwap(-1, int64(pid))
	if old == -1 {
		casStats.record(true)
		return input // my id was installed: I win
	}
	casStats.record(false)
	return c.ann.read(int(old))
}

// RMW2 is the Theorem 4 protocol: two-process consensus from a register
// with any non-trivial read-modify-write operation f. The register starts
// at a value v with f(v) != v; whoever applies f first wins.
type RMW2 struct {
	ann  *announce
	r    *registers.RMW
	init int64
	f    func(int64) int64
}

// NewRMW2 builds a two-process consensus object over f, which must satisfy
// f(init) != init.
func NewRMW2(f func(int64) int64, init int64) *RMW2 {
	if f(init) == init {
		panic("consensus: NewRMW2 requires a non-trivial f at init")
	}
	return &RMW2{ann: newAnnounce(2), r: registers.NewRMW(init), init: init, f: f}
}

// Decide implements Object.
func (p *RMW2) Decide(pid int, input int64) int64 {
	if pid < 0 || pid > 1 {
		panic("consensus: RMW2 is a two-process protocol")
	}
	p.ann.publish(pid, input)
	if p.r.Apply(p.f) == p.init {
		rmw2Stats.record(true)
		return input
	}
	rmw2Stats.record(false)
	return p.ann.read(1 - pid)
}

// rmw2Direct is RMW2 specialized to a single hardware instruction, so the
// Theorem 4 instances exercise the actual primitives (one atomic
// instruction per Decide) rather than the generic CAS-retry Apply.
type rmw2Direct struct {
	ann  *announce
	rmw  func() int64 // performs the instruction, returns the old value
	init int64
}

// Decide implements Object.
func (p *rmw2Direct) Decide(pid int, input int64) int64 {
	if pid < 0 || pid > 1 {
		panic("consensus: RMW2 is a two-process protocol")
	}
	p.ann.publish(pid, input)
	if p.rmw() == p.init {
		rmw2Stats.record(true)
		return input
	}
	rmw2Stats.record(false)
	return p.ann.read(1 - pid)
}

// NewTAS2 builds the test-and-set instance of Theorem 4.
func NewTAS2() Object {
	r := registers.NewRMW(0)
	return &rmw2Direct{ann: newAnnounce(2), rmw: r.TestAndSet, init: 0}
}

// NewSwap2 builds the swap instance of Theorem 4 (swap in 1 over initial
// 0), using the processor swap instruction directly.
func NewSwap2() Object {
	r := registers.NewRMW(0)
	return &rmw2Direct{ann: newAnnounce(2), rmw: func() int64 { return r.Swap(1) }, init: 0}
}

// NewFAA2 builds the fetch-and-add instance of Theorem 4, using the add
// instruction directly.
func NewFAA2() Object {
	r := registers.NewRMW(0)
	return &rmw2Direct{ann: newAnnounce(2), rmw: func() int64 { return r.FetchAndAdd(1) }, init: 0}
}

// Queue2 is the Theorem 9 protocol: two-process consensus from a FIFO queue
// initialized with two marker items; dequeuing the first marker wins.
type Queue2 struct {
	ann *announce
	q   *queue.FIFO
}

// NewQueue2 builds a two-process FIFO-queue consensus object.
func NewQueue2() *Queue2 {
	return &Queue2{ann: newAnnounce(2), q: queue.NewFIFO(0, 1)}
}

// Decide implements Object.
func (p *Queue2) Decide(pid int, input int64) int64 {
	if pid < 0 || pid > 1 {
		panic("consensus: Queue2 is a two-process protocol")
	}
	p.ann.publish(pid, input)
	if p.q.Deq() == 0 {
		queueStats.record(true)
		return input
	}
	queueStats.record(false)
	return p.ann.read(1 - pid)
}

// AugQueue is the Theorem 12 protocol: n-process consensus from the
// augmented queue. Everyone enqueues its id; peek names the winner.
type AugQueue struct {
	ann *announce
	q   *queue.Augmented
}

// NewAugQueue builds an n-process augmented-queue consensus object.
func NewAugQueue(n int) *AugQueue {
	return &AugQueue{ann: newAnnounce(n), q: queue.NewAugmented()}
}

// Decide implements Object.
func (p *AugQueue) Decide(pid int, input int64) int64 {
	p.ann.publish(pid, input)
	p.q.Enq(int64(pid))
	winner := p.q.Peek()
	augStats.record(int(winner) == pid)
	return p.ann.read(int(winner))
}
