package consensus

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stress runs trials of n-process consensus on fresh objects from mk,
// with a random subset of processes participating each trial (a
// non-participant is exactly a crashed process: wait-freedom means the
// others must still decide). It checks agreement and validity.
func stress(t *testing.T, n int, mk func() Object, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		obj := mk()
		// Pick a non-empty participant set.
		var parts []int
		for p := 0; p < n; p++ {
			if rng.Intn(4) > 0 {
				parts = append(parts, p)
			}
		}
		if len(parts) == 0 {
			parts = append(parts, rng.Intn(n))
		}
		inputs := make([]int64, n)
		for p := range inputs {
			inputs[p] = int64(1000*trial + p)
		}
		results := make([]int64, n)
		var wg sync.WaitGroup
		for _, p := range parts {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[p] = obj.Decide(p, inputs[p])
			}()
		}
		wg.Wait()
		// Agreement + validity.
		agreed := results[parts[0]]
		valid := false
		for _, p := range parts {
			if results[p] != agreed {
				t.Fatalf("trial %d: disagreement: P%d=%d vs P%d=%d (participants %v)",
					trial, parts[0], agreed, p, results[p], parts)
			}
			if inputs[p] == agreed {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("trial %d: decided %d, not any participant's input (participants %v)",
				trial, agreed, parts)
		}
	}
}

func TestCASConsensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stress(t, n, func() Object { return NewCAS(n) }, 200)
		})
	}
}

func TestRMW2Consensus(t *testing.T) {
	tests := []struct {
		name string
		mk   func() Object
	}{
		{name: "test-and-set", mk: func() Object { return NewTAS2() }},
		{name: "swap", mk: func() Object { return NewSwap2() }},
		{name: "fetch-and-add", mk: func() Object { return NewFAA2() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			stress(t, 2, tt.mk, 300)
		})
	}
}

func TestQueue2Consensus(t *testing.T) {
	stress(t, 2, func() Object { return NewQueue2() }, 300)
}

func TestAugQueueConsensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stress(t, n, func() Object { return NewAugQueue(n) }, 200)
		})
	}
}

func TestMoveConsensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stress(t, n, func() Object { return NewMove(n) }, 200)
		})
	}
}

func TestMemSwapConsensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stress(t, n, func() Object { return NewMemSwap(n) }, 200)
		})
	}
}

func TestAssignConsensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stress(t, n, func() Object { return NewAssign(n) }, 200)
		})
	}
}

func TestAssign2PhaseConsensus(t *testing.T) {
	for _, m := range []int{2, 3, 5, 9} {
		n := 2*m - 2
		t.Run(fmt.Sprintf("m=%d,n=%d", m, n), func(t *testing.T) {
			stress(t, n, func() Object { return NewAssign2Phase(m) }, 200)
		})
	}
}

// TestSequentialDecide checks the trivial single-participant case for every
// protocol: a lone process must decide its own input (wait-freedom even when
// everyone else has crashed before starting).
func TestSequentialDecide(t *testing.T) {
	tests := []struct {
		name string
		n    int
		mk   func() Object
	}{
		{name: "cas", n: 4, mk: func() Object { return NewCAS(4) }},
		{name: "tas2", n: 2, mk: func() Object { return NewTAS2() }},
		{name: "queue2", n: 2, mk: func() Object { return NewQueue2() }},
		{name: "augqueue", n: 4, mk: func() Object { return NewAugQueue(4) }},
		{name: "move", n: 4, mk: func() Object { return NewMove(4) }},
		{name: "memswap", n: 4, mk: func() Object { return NewMemSwap(4) }},
		{name: "assign", n: 4, mk: func() Object { return NewAssign(4) }},
		{name: "assign2phase", n: 4, mk: func() Object { return NewAssign2Phase(3) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for p := 0; p < tt.n; p++ {
				obj := tt.mk()
				if got := obj.Decide(p, int64(100+p)); got != int64(100+p) {
					t.Errorf("lone P%d decided %d, want its own input %d", p, got, 100+p)
				}
			}
		})
	}
}
