package consensus

import (
	"waitfree/internal/registers"
)

// Move is the Theorem 15 protocol: n-process consensus from atomic
// memory-to-memory move, iterating the paper's two-process move protocol
// round by round. See internal/protocols.Move for the round structure; this
// is the same algorithm over native memory.
type Move struct {
	ann *announce
	n   int
	mem *registers.Memory // rounds: r[j,1] at 2(j-1), r[j,2] at 2(j-1)+1
}

// NewMove builds an n-process move consensus object.
func NewMove(n int) *Move {
	init := make([]int64, 2*n)
	for j := 1; j <= n; j++ {
		init[2*(j-1)] = int64(j)       // r[j,1]
		init[2*(j-1)+1] = int64(j - 1) // r[j,2]
	}
	return &Move{ann: newAnnounce(n), n: n, mem: registers.NewMemory(init)}
}

func (p *Move) r1(j int) int { return 2 * (j - 1) }
func (p *Move) r2(j int) int { return 2*(j-1) + 1 }

// Decide implements Object.
func (p *Move) Decide(pid int, input int64) int64 {
	p.ann.publish(pid, input)
	i := pid + 1 // the paper's rounds are 1-based
	// Play my round: capture r[i,1] into r[i,2].
	p.mem.MovePid(pid, p.r1(i), p.r2(i))
	// Spoil every higher round, in ascending order.
	for j := i + 1; j <= p.n; j++ {
		p.mem.WritePid(pid, p.r1(j), int64(j-1))
	}
	// Scan descending for the highest round won by its owner.
	for j := p.n; j >= 1; j-- {
		if p.mem.ReadPid(pid, p.r2(j)) == int64(j) {
			return p.ann.read(j - 1)
		}
	}
	panic("consensus: Move scan found no winner; protocol invariant broken")
}

// MemSwap is the Theorem 16 protocol: n-process consensus from atomic
// memory-to-memory swap. A token register r starts at 1 and per-process
// cells p[i] start at 0; the first process to swap captures the token.
type MemSwap struct {
	ann *announce
	n   int
	mem *registers.Memory // cells: p[0..n-1], then r at index n
}

// NewMemSwap builds an n-process memory-to-memory swap consensus object.
func NewMemSwap(n int) *MemSwap {
	init := make([]int64, n+1)
	init[n] = 1
	return &MemSwap{ann: newAnnounce(n), n: n, mem: registers.NewMemory(init)}
}

// Decide implements Object.
func (p *MemSwap) Decide(pid int, input int64) int64 {
	p.ann.publish(pid, input)
	p.mem.SwapCellsPid(pid, pid, p.n)
	for k := 0; k < p.n; k++ {
		if p.mem.ReadPid(pid, k) == 1 {
			return p.ann.read(k)
		}
	}
	panic("consensus: MemSwap scan found no token; protocol invariant broken")
}

// Assign is the Theorem 19 protocol: n-process consensus from atomic
// n-register assignment. Each process atomically assigns its id to one
// private register and the n-1 registers it shares pairwise with the
// others; pairwise registers then name the later assigner of each pair, and
// the unique process that loses no comparison within the observed-assigned
// set is the globally earliest. See internal/protocols.Assign for the
// argument.
type Assign struct {
	ann  *announce
	n    int
	mem  *registers.Memory
	sets [][]int
}

// NewAssign builds an n-process assignment consensus object.
func NewAssign(n int) *Assign {
	pairs := n * (n - 1) / 2
	init := make([]int64, n+pairs)
	for i := range init {
		init[i] = -1
	}
	sets := make([][]int, n)
	for i := 0; i < n; i++ {
		set := []int{i}
		for j := 0; j < n; j++ {
			if j != i {
				set = append(set, n+pairCell(n, i, j))
			}
		}
		sets[i] = set
	}
	return &Assign{ann: newAnnounce(n), n: n, mem: registers.NewMemory(init), sets: sets}
}

// pairCell maps an unordered pid pair to a dense index.
func pairCell(n, x, y int) int {
	if x > y {
		x, y = y, x
	}
	return x*(2*n-x-1)/2 + (y - x - 1)
}

// Decide implements Object.
func (p *Assign) Decide(pid int, input int64) int64 {
	p.ann.publish(pid, input)
	p.mem.AssignPid(pid, p.sets[pid], int64(pid))
	// Fix the set A of processes seen assigned; all of them assigned before
	// these reads, so every pairwise register within A is final.
	inA := make([]bool, p.n)
	for j := 0; j < p.n; j++ {
		inA[j] = p.mem.ReadPid(pid, j) != -1
	}
	for a := 0; a < p.n; a++ {
		if !inA[a] {
			continue
		}
		first := true
		for j := 0; j < p.n && first; j++ {
			if j == a || !inA[j] {
				continue
			}
			if p.mem.ReadPid(pid, p.n+pairCell(p.n, a, j)) == int64(a) {
				first = false // a wrote the pair register last: j was earlier
			}
		}
		if first {
			return p.ann.read(a)
		}
	}
	panic("consensus: Assign found no earliest assigner; protocol invariant broken")
}

// Assign2Phase is the Theorems 20/21 protocol: (2m-2)-process consensus
// from m-register assignment, via two groups of m-1 and a cross-group
// source election. See internal/protocols.Assign2Phase for the argument.
type Assign2Phase struct {
	ann *announce
	m   int // assignment width
	g   int // group size m-1
	n   int // processes 2m-2

	mem   *registers.Memory
	sets1 [][]int
	sets2 [][]int

	offPriv1, offPair1, offGres, offPriv2, offPair2 int
}

// NewAssign2Phase builds a (2m-2)-process consensus object from m-register
// assignment.
func NewAssign2Phase(m int) *Assign2Phase {
	if m < 2 {
		panic("consensus: Assign2Phase requires m >= 2")
	}
	g := m - 1
	n := 2 * g
	p := &Assign2Phase{ann: newAnnounce(n), m: m, g: g, n: n}
	p.offPriv1 = 0
	p.offPair1 = n
	p.offGres = p.offPair1 + g*(g-1)
	p.offPriv2 = p.offGres + 2
	p.offPair2 = p.offPriv2 + n
	total := p.offPair2 + g*g
	init := make([]int64, total)
	for i := range init {
		init[i] = -1
	}
	p.mem = registers.NewMemory(init)
	p.sets1 = make([][]int, n)
	p.sets2 = make([][]int, n)
	for i := 0; i < n; i++ {
		s1 := []int{p.offPriv1 + i}
		base := p.group(i) * g
		for j := base; j < base+g; j++ {
			if j != i {
				s1 = append(s1, p.pair1(i, j))
			}
		}
		p.sets1[i] = s1
		s2 := []int{p.offPriv2 + i}
		otherBase := (1 - p.group(i)) * g
		for j := otherBase; j < otherBase+g; j++ {
			s2 = append(s2, p.pair2(i, j))
		}
		p.sets2[i] = s2
	}
	return p
}

// Procs returns the number of processes the object supports (2m-2).
func (p *Assign2Phase) Procs() int { return p.n }

func (p *Assign2Phase) group(pid int) int {
	if pid < p.g {
		return 0
	}
	return 1
}

func (p *Assign2Phase) pair1(x, y int) int {
	gi := p.group(x)
	base := gi * p.g
	return p.offPair1 + gi*(p.g*(p.g-1)/2) + pairCell(p.g, x-base, y-base)
}

func (p *Assign2Phase) pair2(x, y int) int {
	if p.group(x) == 1 {
		x, y = y, x
	}
	return p.offPair2 + x*p.g + (y - p.g)
}

// Decide implements Object.
func (p *Assign2Phase) Decide(pid int, input int64) int64 {
	p.ann.publish(pid, input)
	gi := p.group(pid)
	base := gi * p.g

	// Phase 1: Theorem 19 election within my group.
	p.mem.AssignPid(pid, p.sets1[pid], int64(pid))
	inA := make([]bool, p.n)
	for j := base; j < base+p.g; j++ {
		inA[j] = p.mem.ReadPid(pid, p.offPriv1+j) != -1
	}
	groupVal := int64(-1)
	for a := base; a < base+p.g; a++ {
		if !inA[a] {
			continue
		}
		first := true
		for j := base; j < base+p.g && first; j++ {
			if j == a || !inA[j] {
				continue
			}
			if p.mem.ReadPid(pid, p.pair1(a, j)) == int64(a) {
				first = false
			}
		}
		if first {
			groupVal = p.ann.read(a)
			break
		}
	}
	if groupVal == -1 {
		panic("consensus: Assign2Phase phase 1 found no group winner")
	}
	p.mem.WritePid(pid, p.offGres+gi, groupVal)

	// Phase 2: cross-group source election.
	p.mem.AssignPid(pid, p.sets2[pid], int64(pid))
	inA2 := make([]bool, p.n)
	for j := 0; j < p.n; j++ {
		inA2[j] = p.mem.ReadPid(pid, p.offPriv2+j) != -1
	}
	for a := 0; a < p.n; a++ {
		if !inA2[a] {
			continue
		}
		source := true
		for j := 0; j < p.n && source; j++ {
			if !inA2[j] || p.group(j) == p.group(a) {
				continue
			}
			if p.mem.ReadPid(pid, p.pair2(a, j)) == int64(a) {
				source = false // a assigned after j: j's group may precede
			}
		}
		if source {
			return p.mem.ReadPid(pid, p.offGres+p.group(a))
		}
	}
	panic("consensus: Assign2Phase phase 2 found no source")
}
