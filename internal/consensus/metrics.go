package consensus

import "waitfree/internal/wfstats"

// protoStats holds one protocol family's decide counters. Nil fields are
// the no-op mode, so the zero value records nothing.
type protoStats struct {
	decides *wfstats.Counter
	lost    *wfstats.Counter
}

// record counts one Decide; a loss means the caller adopted another
// process's input (the contended path of the protocol).
func (s *protoStats) record(won bool) {
	s.decides.Inc()
	if !won {
		s.lost.Inc()
	}
}

// Per-protocol counters, package-level: every consensus object of a
// protocol family records into the same pair, giving the process-wide
// picture the Corollary 27 experiments want.
var (
	casStats   protoStats
	rmw2Stats  protoStats
	queueStats protoStats
	augStats   protoStats
)

// Instrument records per-protocol decide counts (consensus.<proto>.decide)
// and contended losses (consensus.<proto>.lost) into reg. The counters are
// package-level and the assignment is not synchronized, so call Instrument
// before any consensus object is used concurrently; a nil reg restores the
// no-op mode. rmw2 covers the generic Theorem 4 protocol and its
// test-and-set, swap and fetch-and-add instances alike.
func Instrument(reg *wfstats.Registry) {
	if reg == nil {
		casStats, rmw2Stats, queueStats, augStats = protoStats{}, protoStats{}, protoStats{}, protoStats{}
		return
	}
	casStats = protoStats{reg.Counter("consensus.cas.decide"), reg.Counter("consensus.cas.lost")}
	rmw2Stats = protoStats{reg.Counter("consensus.rmw2.decide"), reg.Counter("consensus.rmw2.lost")}
	queueStats = protoStats{reg.Counter("consensus.queue2.decide"), reg.Counter("consensus.queue2.lost")}
	augStats = protoStats{reg.Counter("consensus.augqueue.decide"), reg.Counter("consensus.augqueue.lost")}
}
