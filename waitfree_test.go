package waitfree_test

import (
	"fmt"
	"sync"
	"testing"

	"waitfree"
)

func ExampleNew() {
	const n = 2
	fac := waitfree.NewConsensusFetchAndCons(n, func() waitfree.Consensus {
		return waitfree.NewCASConsensus(n)
	})
	q := waitfree.New(waitfree.Queue{}, fac, n)

	q.Invoke(0, waitfree.Op{Kind: "enq", Args: []int64{42}})
	fmt.Println(q.Invoke(1, waitfree.Op{Kind: "deq"}))
	// Output: 42
}

func ExampleNewSwapFetchAndCons() {
	c := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), 1)
	c.Invoke(0, waitfree.Op{Kind: "inc"})
	c.Invoke(0, waitfree.Op{Kind: "add", Args: []int64{41}})
	fmt.Println(c.Invoke(0, waitfree.Op{Kind: "get"}))
	// Output: 42
}

func ExampleNewCASConsensus() {
	obj := waitfree.NewCASConsensus(3)
	// A lone participant decides its own input even if everyone else
	// crashed before starting — that is wait-freedom.
	fmt.Println(obj.Decide(1, 7))
	// Output: 7
}

// TestFacadeConsensusConstructors exercises every consensus constructor
// through the public API.
func TestFacadeConsensusConstructors(t *testing.T) {
	tests := []struct {
		name string
		n    int
		mk   func() waitfree.Consensus
	}{
		{name: "cas", n: 4, mk: func() waitfree.Consensus { return waitfree.NewCASConsensus(4) }},
		{name: "tas", n: 2, mk: func() waitfree.Consensus { return waitfree.NewTASConsensus() }},
		{name: "queue", n: 2, mk: func() waitfree.Consensus { return waitfree.NewQueueConsensus() }},
		{name: "augqueue", n: 4, mk: func() waitfree.Consensus { return waitfree.NewAugQueueConsensus(4) }},
		{name: "move", n: 4, mk: func() waitfree.Consensus { return waitfree.NewMoveConsensus(4) }},
		{name: "memswap", n: 4, mk: func() waitfree.Consensus { return waitfree.NewMemSwapConsensus(4) }},
		{name: "assign", n: 4, mk: func() waitfree.Consensus { return waitfree.NewAssignConsensus(4) }},
		{name: "assign2phase", n: 4, mk: func() waitfree.Consensus { return waitfree.NewAssign2PhaseConsensus(3) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				obj := tt.mk()
				results := make([]int64, tt.n)
				var wg sync.WaitGroup
				for p := 0; p < tt.n; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						results[p] = obj.Decide(p, int64(1000+p))
					}()
				}
				wg.Wait()
				for p := 1; p < tt.n; p++ {
					if results[p] != results[0] {
						t.Fatalf("trial %d: disagreement", trial)
					}
				}
			}
		})
	}
}

// TestFacadeObjects drives each prebuilt sequential spec through the
// universal construction via the public API.
func TestFacadeObjects(t *testing.T) {
	type step struct {
		op   waitfree.Op
		want int64
	}
	tests := []struct {
		name  string
		obj   waitfree.Object
		steps []step
	}{
		{name: "register", obj: waitfree.Register{}, steps: []step{
			{op: waitfree.Op{Kind: "write", Args: []int64{9}}, want: 0},
			{op: waitfree.Op{Kind: "read"}, want: 9},
		}},
		{name: "stack", obj: waitfree.Stack{}, steps: []step{
			{op: waitfree.Op{Kind: "push", Args: []int64{1}}, want: 0},
			{op: waitfree.Op{Kind: "push", Args: []int64{2}}, want: 0},
			{op: waitfree.Op{Kind: "pop"}, want: 2},
		}},
		{name: "set", obj: waitfree.Set{}, steps: []step{
			{op: waitfree.Op{Kind: "insert", Args: []int64{5}}, want: 1},
			{op: waitfree.Op{Kind: "contains", Args: []int64{5}}, want: 1},
			{op: waitfree.Op{Kind: "removeMin"}, want: 5},
		}},
		{name: "pqueue", obj: waitfree.PQueue{}, steps: []step{
			{op: waitfree.Op{Kind: "insert", Args: []int64{9}}, want: 0},
			{op: waitfree.Op{Kind: "insert", Args: []int64{3}}, want: 0},
			{op: waitfree.Op{Kind: "deleteMin"}, want: 3},
		}},
		{name: "kv", obj: waitfree.KV{}, steps: []step{
			{op: waitfree.Op{Kind: "put", Args: []int64{1, 10}}, want: waitfree.Empty},
			{op: waitfree.Op{Kind: "get", Args: []int64{1}}, want: 10},
		}},
		{name: "bank", obj: waitfree.Bank{Accounts: 2}, steps: []step{
			{op: waitfree.Op{Kind: "deposit", Args: []int64{0, 100}}, want: 100},
			{op: waitfree.Op{Kind: "transfer", Args: []int64{0, 1, 30}}, want: 1},
			{op: waitfree.Op{Kind: "balance", Args: []int64{1}}, want: 30},
		}},
		{name: "list", obj: waitfree.List{}, steps: []step{
			{op: waitfree.Op{Kind: "cons", Args: []int64{4}}, want: 0},
			{op: waitfree.Op{Kind: "head"}, want: 4},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			u := waitfree.New(tt.obj, waitfree.NewSwapFetchAndCons(), 1)
			for i, s := range tt.steps {
				if got := u.Invoke(0, s.op); got != s.want {
					t.Fatalf("step %d %s: got %d, want %d", i, s.op, got, s.want)
				}
			}
		})
	}
}

// TestWithoutTruncationOption exercises the option through the façade.
func TestWithoutTruncationOption(t *testing.T) {
	u := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), 2,
		waitfree.WithoutTruncation())
	for i := 0; i < 50; i++ {
		u.Invoke(0, waitfree.Op{Kind: "inc"})
	}
	_, _, max := u.ReplayStats()
	if max < 40 {
		t.Errorf("untruncated replay max = %d, expected to grow with the log", max)
	}
}

// TestHandles: per-process handles drive the object concurrently.
func TestHandles(t *testing.T) {
	const n = 4
	u := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		h := u.Handle(p)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Invoke(waitfree.Op{Kind: "inc"})
			}
		}()
	}
	wg.Wait()
	if got := u.Handle(0).Invoke(waitfree.Op{Kind: "get"}); got != n*100 {
		t.Errorf("count = %d, want %d", got, n*100)
	}
}

// TestSnapshotIntervalOption exercises the option through the façade: the
// construction stays correct while snapshots thin out.
func TestSnapshotIntervalOption(t *testing.T) {
	u := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), 2,
		waitfree.WithSnapshotInterval(8))
	for i := 0; i < 100; i++ {
		u.Invoke(0, waitfree.Op{Kind: "inc"})
	}
	if got := u.Invoke(1, waitfree.Op{Kind: "get"}); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
}

// TestFastReadsFacade: read-only ops are counted as fast reads and agree
// with the write path.
func TestFastReadsFacade(t *testing.T) {
	u := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), 1)
	u.Invoke(0, waitfree.Op{Kind: "put", Args: []int64{1, 42}})
	if got := u.Invoke(0, waitfree.Op{Kind: "get", Args: []int64{1}}); got != 42 {
		t.Fatalf("get = %d, want 42", got)
	}
	if got := u.FastReads(); got != 1 {
		t.Errorf("FastReads = %d, want 1", got)
	}
}

// TestBatchingDefaults pins the option's default surface: off for New, on
// for NewShardedKV, and WithoutBatching switches the sharded default back
// off. Executor passes (BatchStats) are the observable: every batched write
// that is not helped is one pass, so a batched object records passes even
// single-threaded, and an unbatched one records none.
func TestBatchingDefaults(t *testing.T) {
	put := func(k, v int64) waitfree.Op {
		return waitfree.Op{Kind: "put", Args: []int64{k, v}}
	}

	plain := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), 1)
	batched := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), 1,
		waitfree.WithBatching())
	for k := int64(0); k < 10; k++ {
		plain.Invoke(0, put(k, k))
		batched.Invoke(0, put(k, k))
	}
	if b, _, _ := plain.BatchStats(); b != 0 {
		t.Errorf("New default: %d executor passes, want 0 (batching off)", b)
	}
	if b, _, _ := batched.BatchStats(); b != 10 {
		t.Errorf("WithBatching: %d executor passes, want 10", b)
	}

	sharded := waitfree.NewShardedKV(4, 2, waitfree.NewSwapFetchAndCons)
	off := waitfree.NewShardedKV(4, 2, waitfree.NewSwapFetchAndCons,
		waitfree.WithoutBatching())
	for k := int64(0); k < 10; k++ {
		sharded.Invoke(0, put(k, k))
		off.Invoke(0, put(k, k))
	}
	if b, _, _ := sharded.BatchStats(); b != 10 {
		t.Errorf("NewShardedKV default: %d executor passes, want 10 (batching on)", b)
	}
	if b, _, _ := off.BatchStats(); b != 0 {
		t.Errorf("NewShardedKV WithoutBatching: %d executor passes, want 0", b)
	}
	if h := sharded.Helped(); h != 0 {
		t.Errorf("sequential sharded run counted %d helped ops", h)
	}
}

// TestLogGCDefaults pins the facade defaults: New leaves the log GC off
// (the paper-faithful ever-growing log), NewShardedKV turns it on, and
// WithoutLogGC switches the sharded default back off.
func TestLogGCDefaults(t *testing.T) {
	put := func(k, v int64) waitfree.Op {
		return waitfree.Op{Kind: "put", Args: []int64{k, v}}
	}

	plain := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), 1)
	withGC := waitfree.New(waitfree.KV{}, waitfree.NewSwapFetchAndCons(), 1,
		waitfree.WithLogGC(1))
	for i := int64(0); i < 300; i++ {
		plain.Invoke(0, put(i%8, i))
		withGC.Invoke(0, put(i%8, i))
	}
	if r := plain.Retired(); r != 0 {
		t.Errorf("New default retired %d entries, want 0 (log GC off)", r)
	}
	if r := withGC.Retired(); r == 0 {
		t.Error("WithLogGC(1) retired nothing after 300 writes")
	}

	// The sharded default (every = core.DefaultGCEvery = 64) needs enough
	// writes per shard per process for every register to pass a mark.
	sharded := waitfree.NewShardedKV(2, 1, waitfree.NewSwapFetchAndCons)
	off := waitfree.NewShardedKV(2, 1, waitfree.NewSwapFetchAndCons,
		waitfree.WithoutLogGC())
	for i := int64(0); i < 2000; i++ {
		sharded.Invoke(0, put(i%16, i))
		off.Invoke(0, put(i%16, i))
	}
	if r := sharded.Retired(); r == 0 {
		t.Error("NewShardedKV default retired nothing, want log GC on")
	}
	if r := off.Retired(); r != 0 {
		t.Errorf("NewShardedKV WithoutLogGC retired %d entries, want 0", r)
	}
	// Truncation must not disturb state: the last write of key k was
	// put(k, 1984+k) on iteration i = 1984+k.
	for k := int64(0); k < 16; k++ {
		if got, want := sharded.Invoke(0, waitfree.Op{Kind: "get", Args: []int64{k}}), 1984+k; got != want {
			t.Fatalf("get(%d) = %d after GC, want %d", k, got, want)
		}
	}
}

func ExampleNewShardedKV() {
	const shards, procs = 4, 2
	kv := waitfree.NewShardedKV(shards, procs, waitfree.NewSwapFetchAndCons)
	kv.Invoke(0, waitfree.Op{Kind: "put", Args: []int64{7, 700}})
	kv.Invoke(1, waitfree.Op{Kind: "put", Args: []int64{8, 800}})
	fmt.Println(kv.Invoke(0, waitfree.Op{Kind: "get", Args: []int64{8}}))
	fmt.Println(kv.Invoke(1, waitfree.Op{Kind: "len"}))
	// Output:
	// 800
	// 2
}

func ExampleUniversal_Handle() {
	u := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), 2)
	h := u.Handle(0)
	h.Invoke(waitfree.Op{Kind: "inc"})
	fmt.Println(h.Invoke(waitfree.Op{Kind: "get"}), h.Pid())
	// Output: 1 0
}
